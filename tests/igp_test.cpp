// IGP substrate: Dijkstra correctness and failure handling.
#include <gtest/gtest.h>

#include "igp/igp_table.hpp"
#include "util/ip.hpp"

namespace {

using namespace xb::igp;
using xb::util::Ipv4Addr;

Graph diamond() {
  //      b
  //   1 / \ 4
  //    a   d      a-c-d is cheaper (2+1) than a-b-d (1+4)
  //   2 \ / 1
  //      c
  Graph g;
  g.add_node(Ipv4Addr::parse("10.0.0.1"), "a");
  g.add_node(Ipv4Addr::parse("10.0.0.2"), "b");
  g.add_node(Ipv4Addr::parse("10.0.0.3"), "c");
  g.add_node(Ipv4Addr::parse("10.0.0.4"), "d");
  g.add_link(0, 1, 1);
  g.add_link(0, 2, 2);
  g.add_link(1, 3, 4);
  g.add_link(2, 3, 1);
  return g;
}

TEST(Spf, ShortestDistances) {
  auto g = diamond();
  auto spf = shortest_paths(g, 0);
  EXPECT_EQ(spf.dist[0], 0u);
  EXPECT_EQ(spf.dist[1], 1u);
  EXPECT_EQ(spf.dist[2], 2u);
  EXPECT_EQ(spf.dist[3], 3u);  // via c
  EXPECT_EQ(spf.first_hop[3], 2u);
}

TEST(Spf, UnreachableIsInfinite) {
  Graph g;
  g.add_node(Ipv4Addr::parse("10.0.0.1"));
  g.add_node(Ipv4Addr::parse("10.0.0.2"));
  auto spf = shortest_paths(g, 0);
  EXPECT_EQ(spf.dist[1], kInfMetric);
}

TEST(Spf, LinkFailureReroutes) {
  auto g = diamond();
  g.set_link_metric(2, 3, kInfMetric);  // c-d down
  auto spf = shortest_paths(g, 0);
  EXPECT_EQ(spf.dist[3], 5u);  // via b
  EXPECT_EQ(spf.first_hop[3], 1u);
}

TEST(Spf, TriangleInequalityHolds) {
  // Property: for every edge (u,v,m), dist[v] <= dist[u] + m.
  auto g = diamond();
  auto spf = shortest_paths(g, 0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (spf.dist[u] == kInfMetric) continue;
    for (const auto& e : g.edges(u)) {
      if (e.metric == kInfMetric) continue;
      EXPECT_LE(spf.dist[e.to], spf.dist[u] + e.metric);
    }
  }
}

TEST(IgpTable, MetricLookupByLoopback) {
  auto g = diamond();
  IgpTable table(g, 0);
  EXPECT_EQ(table.metric_to(Ipv4Addr::parse("10.0.0.4")), 3u);
  EXPECT_EQ(table.metric_to(Ipv4Addr::parse("10.0.0.1")), 0u);
  EXPECT_EQ(table.metric_to(Ipv4Addr::parse("99.9.9.9")), std::nullopt);
}

TEST(IgpTable, RebuildReflectsTopologyChange) {
  auto g = diamond();
  IgpTable table(g, 0);
  ASSERT_EQ(table.metric_to(Ipv4Addr::parse("10.0.0.4")), 3u);
  g.set_link_metric(2, 3, 1000);  // the paper's §3.1 trick: discourage a link
  table.rebuild(g, 0);
  EXPECT_EQ(table.metric_to(Ipv4Addr::parse("10.0.0.4")), 5u);
}

TEST(Graph, DuplicateLoopbackRejected) {
  Graph g;
  g.add_node(Ipv4Addr::parse("10.0.0.1"));
  EXPECT_THROW(g.add_node(Ipv4Addr::parse("10.0.0.1")), std::invalid_argument);
}

TEST(Graph, LookupByLoopback) {
  Graph g;
  g.add_node(Ipv4Addr::parse("10.0.0.1"), "a");
  NodeId id = 99;
  EXPECT_TRUE(g.lookup(Ipv4Addr::parse("10.0.0.1"), id));
  EXPECT_EQ(id, 0u);
  EXPECT_FALSE(g.lookup(Ipv4Addr::parse("10.0.0.2"), id));
}

}  // namespace
