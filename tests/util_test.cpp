// util: byte I/O, IP types, deterministic RNG.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb::util;

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  const std::uint8_t raw[] = {1, 2, 3};
  w.bytes(raw);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  auto tail = r.bytes(3);
  EXPECT_EQ(tail[2], 3);
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, BigEndianOnTheWire) {
  ByteWriter w;
  w.u32(0x11223344);
  EXPECT_EQ(w.view()[0], 0x11);
  EXPECT_EQ(w.view()[3], 0x44);
}

TEST(Bytes, ReadPastEndThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.view());
  r.u8();
  EXPECT_THROW(r.u8(), BufferError);
  EXPECT_THROW(r.u32(), BufferError);
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0xBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16(), 0xBEEF);
}

TEST(Bytes, SubReaderIsolatesWindow) {
  ByteWriter w;
  w.u32(0xAABBCCDD);
  w.u8(0x7);
  ByteReader r(w.view());
  ByteReader sub = r.sub(4);
  EXPECT_EQ(sub.u32(), 0xAABBCCDDu);
  EXPECT_TRUE(sub.empty());
  EXPECT_EQ(r.u8(), 0x7);
}

TEST(Bytes, EndianHelpers) {
  EXPECT_EQ(host_to_be16(0x1234), 0x3412);
  EXPECT_EQ(host_to_be32(0x11223344), 0x44332211u);
  EXPECT_EQ(be32_to_host(host_to_be32(0xCAFEF00D)), 0xCAFEF00Du);
  EXPECT_EQ(host_to_be64(0x0102030405060708ull), 0x0807060504030201ull);
}

TEST(Ip, ParseAndFormat) {
  auto a = Ipv4Addr::parse("192.168.1.200");
  EXPECT_EQ(a.str(), "192.168.1.200");
  EXPECT_EQ(a.value(), 0xC0A801C8u);
  EXPECT_THROW(Ipv4Addr::parse("300.1.1.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4.5"), std::invalid_argument);
}

TEST(Ip, NetworkOrderConversion) {
  auto a = Ipv4Addr(192, 0, 2, 1);
  EXPECT_EQ(a.to_be(), 0x010200C0u);  // little-endian host assumption of tests
  EXPECT_EQ(Ipv4Addr::from_be(a.to_be()), a);
}

TEST(Prefix, CanonicalisesHostBits) {
  Prefix p(Ipv4Addr::parse("10.1.2.3"), 16);
  EXPECT_EQ(p.str(), "10.1.0.0/16");
  EXPECT_EQ(Prefix::parse("10.1.0.0/16"), p);
}

TEST(Prefix, Covers) {
  auto p16 = Prefix::parse("10.1.0.0/16");
  auto p24 = Prefix::parse("10.1.200.0/24");
  EXPECT_TRUE(p16.covers(p24));
  EXPECT_FALSE(p24.covers(p16));
  EXPECT_TRUE(p16.covers(p16));
  EXPECT_FALSE(p16.covers(Prefix::parse("10.2.0.0/24")));
  EXPECT_TRUE(Prefix::parse("0.0.0.0/0").covers(p16));
}

TEST(Prefix, Contains) {
  auto p = Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Addr::parse("10.1.255.255")));
  EXPECT_FALSE(p.contains(Ipv4Addr::parse("10.2.0.0")));
}

TEST(Prefix, HashDistinguishesLengths) {
  std::hash<Prefix> h;
  EXPECT_NE(h(Prefix::parse("10.0.0.0/8")), h(Prefix::parse("10.0.0.0/16")));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UnitStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.25, 0.01);
}

}  // namespace
