// Additional eBPF coverage: immediate-operand ALU semantics, 32-bit ALU
// sweeps, assembler misuse diagnostics, instruction accounting.
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "ebpf/disasm.hpp"
#include "ebpf/vm.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb::ebpf;

std::uint64_t run_ok(Vm& vm, const Program& p, std::uint64_t r1 = 0) {
  auto res = vm.run(p, r1);
  EXPECT_TRUE(res.ok()) << res.fault.detail;
  return res.value;
}

// --- immediate-operand 64-bit ALU vs reference -------------------------------

struct ImmCase {
  const char* name;
  void (*emit)(Assembler&, Reg, std::int32_t);
  std::uint64_t (*reference)(std::uint64_t, std::int32_t);
};

class AluImmTest : public ::testing::TestWithParam<ImmCase> {};

TEST_P(AluImmTest, MatchesReference) {
  const ImmCase& c = GetParam();
  constexpr std::int32_t kImms[] = {1, 2, 7, 0x7FFFFFFF, -1, -128};
  constexpr std::uint64_t kValues[] = {0, 1, 0xFFFFFFFFull, 0x8000000000000000ull,
                                       0x0123456789ABCDEFull};
  Vm vm;
  for (std::int32_t imm : kImms) {
    Assembler a;
    a.mov64(Reg::R0, Reg::R1);
    c.emit(a, Reg::R0, imm);
    a.exit_();
    const Program p = a.build(c.name);
    for (std::uint64_t x : kValues) {
      EXPECT_EQ(run_ok(vm, p, x), c.reference(x, imm))
          << c.name << "(" << x << ", " << imm << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluImmTest,
    ::testing::Values(
        ImmCase{"add_imm", [](Assembler& a, Reg d, std::int32_t i) { a.add64(d, i); },
                [](std::uint64_t x, std::int32_t i) {
                  return x + static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }},
        ImmCase{"sub_imm", [](Assembler& a, Reg d, std::int32_t i) { a.sub64(d, i); },
                [](std::uint64_t x, std::int32_t i) {
                  return x - static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }},
        ImmCase{"mul_imm", [](Assembler& a, Reg d, std::int32_t i) { a.mul64(d, i); },
                [](std::uint64_t x, std::int32_t i) {
                  return x * static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }},
        ImmCase{"and_imm", [](Assembler& a, Reg d, std::int32_t i) { a.and64(d, i); },
                [](std::uint64_t x, std::int32_t i) {
                  // Immediates sign-extend to 64 bits in eBPF.
                  return x & static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }},
        ImmCase{"or_imm", [](Assembler& a, Reg d, std::int32_t i) { a.or64(d, i); },
                [](std::uint64_t x, std::int32_t i) {
                  return x | static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }},
        ImmCase{"xor_imm", [](Assembler& a, Reg d, std::int32_t i) { a.xor64(d, i); },
                [](std::uint64_t x, std::int32_t i) {
                  return x ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }},
        ImmCase{"mov_imm", [](Assembler& a, Reg d, std::int32_t i) { a.mov64(d, i); },
                [](std::uint64_t, std::int32_t i) {
                  return static_cast<std::uint64_t>(static_cast<std::int64_t>(i));
                }}),
    [](const ::testing::TestParamInfo<ImmCase>& info) { return info.param.name; });

TEST(AluImm, DivModByImmediate) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.div64(Reg::R0, 7);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("div7"), 100), 14u);
  Assembler b;
  b.mov64(Reg::R0, Reg::R1);
  b.mod64(Reg::R0, 7);
  b.exit_();
  EXPECT_EQ(run_ok(vm, b.build("mod7"), 100), 2u);
}

TEST(AluImm, ShiftByImmediate) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.lsh64(Reg::R0, 4);
  a.rsh64(Reg::R0, 1);
  a.arsh64(Reg::R0, 2);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("shifts"), 1), (1ull << 4 >> 1) >> 2);
}

// --- randomized algebraic properties -----------------------------------------

TEST(Property, AddSubIsIdentity) {
  xb::util::Rng rng(77);
  Vm vm;
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.add64(Reg::R0, Reg::R2);
  a.sub64(Reg::R0, Reg::R2);
  a.exit_();
  const Program p = a.build("addsub");
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t x = rng.next();
    auto res = vm.run(p, x, rng.next());
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value, x);
  }
}

TEST(Property, DoubleByteSwapIsIdentity) {
  xb::util::Rng rng(78);
  Vm vm;
  for (std::int32_t width : {16, 32, 64}) {
    Assembler a;
    a.mov64(Reg::R0, Reg::R1);
    a.to_be(Reg::R0, width);
    a.to_be(Reg::R0, width);
    a.exit_();
    const Program p = a.build("swap2");
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t x = rng.next();
      const std::uint64_t masked =
          width == 16 ? (x & 0xFFFF) : width == 32 ? (x & 0xFFFFFFFF) : x;
      EXPECT_EQ(run_ok(vm, p, x), masked);
    }
  }
}

TEST(Property, StoreLoadRoundTripAllSizes) {
  xb::util::Rng rng(79);
  Vm vm;
  struct Case {
    void (Assembler::*store)(Reg, std::int16_t, Reg);
    void (Assembler::*load)(Reg, Reg, std::int16_t);
    std::uint64_t mask;
  };
  // Build per-size roundtrip programs.
  for (int size = 0; size < 4; ++size) {
    Assembler a;
    switch (size) {
      case 0: a.stxb(Reg::R10, -8, Reg::R1); a.ldxb(Reg::R0, Reg::R10, -8); break;
      case 1: a.stxh(Reg::R10, -8, Reg::R1); a.ldxh(Reg::R0, Reg::R10, -8); break;
      case 2: a.stxw(Reg::R10, -8, Reg::R1); a.ldxw(Reg::R0, Reg::R10, -8); break;
      case 3: a.stxdw(Reg::R10, -8, Reg::R1); a.ldxdw(Reg::R0, Reg::R10, -8); break;
    }
    a.exit_();
    const Program p = a.build("roundtrip");
    const std::uint64_t mask = size == 0   ? 0xFFull
                               : size == 1 ? 0xFFFFull
                               : size == 2 ? 0xFFFFFFFFull
                                           : ~0ull;
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t x = rng.next();
      EXPECT_EQ(run_ok(vm, p, x), x & mask);
    }
  }
}

// --- assembler misuse ------------------------------------------------------------

TEST(Assembler, UnplacedLabelRejected) {
  Assembler a;
  auto ghost = a.make_label();
  a.jeq(Reg::R0, 0, ghost);
  a.exit_();
  EXPECT_THROW((void)a.build("ghost"), std::logic_error);
}

TEST(Assembler, DoublePlacementRejected) {
  Assembler a;
  auto l = a.make_label();
  a.place(l);
  EXPECT_THROW(a.place(l), std::logic_error);
}

TEST(Assembler, ByteSwapWidthValidated) {
  Assembler a;
  EXPECT_THROW(a.to_be(Reg::R0, 24), std::logic_error);
  EXPECT_THROW(a.to_le(Reg::R0, 8), std::logic_error);
}

// --- accounting -------------------------------------------------------------------

TEST(Accounting, RetiredInstructionCount) {
  Assembler a;
  a.mov64(Reg::R0, 1);  // 1
  a.add64(Reg::R0, 2);  // 2
  a.exit_();            // 3
  Vm vm;
  const auto before = vm.instructions_retired();
  run_ok(vm, a.build("count"));
  EXPECT_EQ(vm.instructions_retired() - before, 3u);
}

TEST(Accounting, BudgetIsExact) {
  // A program of exactly N instructions must run with budget N and fault
  // with budget N-1.
  Assembler a;
  for (int i = 0; i < 7; ++i) a.add64(Reg::R0, 1);
  a.exit_();  // 8 instructions total
  const Program p = a.build("exact");
  Vm vm;
  vm.set_instruction_budget(8);
  EXPECT_TRUE(vm.run(p).ok());
  vm.set_instruction_budget(7);
  auto res = vm.run(p);
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kBudgetExhausted);
}

TEST(Disasm, CoversEveryInstructionForm) {
  Assembler a;
  auto l = a.make_label();
  a.lddw(Reg::R1, 0x1122334455667788ull);
  a.mov64(Reg::R2, Reg::R1);
  a.add32(Reg::R2, 5);
  a.neg64(Reg::R2);
  a.to_be(Reg::R2, 32);
  a.to_le(Reg::R2, 16);
  a.ldxb(Reg::R3, Reg::R10, -1);
  a.stxh(Reg::R10, -4, Reg::R3);
  a.stw(Reg::R10, -8, 42);
  a.jset(Reg::R2, 1, l);
  a.jsge(Reg::R2, -5, l);
  a.call(3);
  a.place(l);
  a.ja(l);
  const auto text = disassemble(
      Program("all", a.build("tmp").insns(), {3}));
  for (const char* needle :
       {"lddw", "lddw-hi", "mov64", "add32", "neg64", "be32", "le16", "ldxb", "stxh",
        "stw", "jset", "jsge", "call 3", "ja"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
}

}  // namespace
