// Stateful session/config fuzz gate.
//
// Each episode drives a randomly configured router (parallelism, policies,
// extension manifest mix, hold times, latency) with 2-4 scripted chaos
// peers (handshakes, UPDATE churn, malformed frames, resets, silences) and
// judges the run with three oracles — model parity (no silent acceptance),
// Fir-vs-Wren differential parity, and telemetry budgets. See
// docs/fuzzing.md for the model and src/fuzz/stateful.hpp for the details.
//
// Seeding: XBGP_FUZZ_SEED replays a failure; XBGP_FUZZ_EPISODES scales the
// plan count (each plan runs on BOTH hosts, so episodes = 2x plans). The
// stateful_fuzz_gate ctest entry runs 1024 plans = 2048 episodes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/seed.hpp"
#include "fuzz/stateful.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "util/log.hpp"

namespace {

using namespace xb;

constexpr std::uint64_t kDefaultSeed = 0x5E55'F022'2026ull;

// Thousands of episodes each load extensions and tear sessions down on
// purpose; per-episode WARN chatter would swamp the one line that matters
// (the seed announcement).
const bool kQuietLogs = [] {
  util::Log::threshold() = util::LogLevel::kError;
  return true;
}();

/// Runs one plan on both hosts and returns every oracle finding.
std::vector<std::string> run_both(const fuzz::EpisodePlan& plan) {
  const auto fir = fuzz::run_episode<hosts::fir::FirCore>(plan);
  const auto wren = fuzz::run_episode<hosts::wren::WrenCore>(plan);
  std::vector<std::string> findings;
  for (const auto& v : fir.violations) findings.push_back("fir: " + v);
  for (const auto& v : wren.violations) findings.push_back("wren: " + v);
  for (const auto& v : fuzz::diff_snapshots(fir, wren)) {
    findings.push_back("differential (seed " + std::to_string(plan.seed) + "): " + v);
  }
  return findings;
}

TEST(StatefulFuzz, EpisodesHoldAllOraclesAcrossHosts) {
  const std::uint64_t base = fuzz::env_seed(kDefaultSeed);
  fuzz::announce_seed("stateful_fuzz", base);
  const std::uint64_t plans = fuzz::env_u64("XBGP_FUZZ_EPISODES", 256);
  ::testing::Test::RecordProperty("seed", std::to_string(base));
  std::vector<std::string> failures;
  for (std::uint64_t e = 0; e < plans && failures.size() < 10; ++e) {
    const std::uint64_t seed = base + e;
    const auto plan = fuzz::make_plan(seed);
    for (auto& f : run_both(plan)) {
      failures.push_back("plan " + std::to_string(e) + ": " + std::move(f) +
                         "  [replay: XBGP_FUZZ_SEED=" + std::to_string(seed) +
                         " XBGP_FUZZ_EPISODES=1]");
    }
  }
  std::string report;
  for (const auto& f : failures) report += f + "\n";
  EXPECT_TRUE(failures.empty()) << report;
}

TEST(StatefulFuzz, SeedReplayIsDeterministic) {
  const std::uint64_t seed = fuzz::env_seed(kDefaultSeed) ^ 0xD5ull;
  // The plan itself is a pure function of the seed...
  const auto plan_a = fuzz::make_plan(seed);
  const auto plan_b = fuzz::make_plan(seed);
  ASSERT_EQ(plan_a.peers.size(), plan_b.peers.size());
  ASSERT_EQ(plan_a.deadline, plan_b.deadline);
  for (std::size_t p = 0; p < plan_a.peers.size(); ++p) {
    ASSERT_EQ(plan_a.peers[p].events.size(), plan_b.peers[p].events.size());
    for (std::size_t e = 0; e < plan_a.peers[p].events.size(); ++e) {
      ASSERT_EQ(plan_a.peers[p].events[e].at, plan_b.peers[p].events[e].at);
      ASSERT_TRUE(plan_a.peers[p].events[e].bytes == plan_b.peers[p].events[e].bytes);
    }
    ASSERT_TRUE(plan_a.peers[p].notifications == plan_b.peers[p].notifications);
  }
  // ...and so is the execution: two runs of the same plan on the same host
  // must be bit-identical (this is what makes one-line repros possible).
  const auto first = fuzz::run_episode<hosts::fir::FirCore>(plan_a);
  const auto second = fuzz::run_episode<hosts::fir::FirCore>(plan_b);
  EXPECT_TRUE(first.violations.empty() && second.violations.empty());
  const auto diff = fuzz::diff_snapshots(first, second);
  std::string report;
  for (const auto& d : diff) report += d + "\n";
  EXPECT_TRUE(diff.empty()) << report;
}

TEST(StatefulFuzz, FaultInjectionIsDetected) {
  // Gate-of-the-gate: an unmodeled corrupt frame injected mid-episode must
  // trip oracle 1. If this test ever passes with zero violations, the
  // fuzzer has gone blind and the soak gate proves nothing.
  const std::uint64_t seed = fuzz::env_seed(kDefaultSeed) ^ 0xFA'017ull;
  fuzz::PlanOptions opt;
  opt.inject_unmodeled_fault = true;
  const auto plan = fuzz::make_plan(seed, opt);
  const auto snap = fuzz::run_episode<hosts::fir::FirCore>(plan);
  EXPECT_FALSE(snap.violations.empty())
      << "injected fault was silently accepted — the oracle is blind";
}

TEST(StatefulFuzz, CleanPlanPredictsEstablishedSurvivor) {
  // Generator sanity: every plan keeps at least one peer alive to the end,
  // so the differential oracle always has surviving state to compare.
  for (std::uint64_t s = 0; s < 50; ++s) {
    const auto plan = fuzz::make_plan(kDefaultSeed + 7'000 + s);
    bool has_survivor = false;
    for (const auto& pp : plan.peers)
      has_survivor = has_survivor || pp.final_state == bgp::SessionState::kEstablished;
    EXPECT_TRUE(has_survivor) << "seed " << (kDefaultSeed + 7'000 + s);
  }
}

}  // namespace
