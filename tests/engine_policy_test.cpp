// Engine <-> policy-engine integration, multi-reflector topologies, and
// IGP-driven decision behaviour across both host implementations.
#include <gtest/gtest.h>

#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

template <typename T>
class EnginePolicyTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(EnginePolicyTest, RouterTypes);

template <typename RouterT>
using CoreOf = std::conditional_t<std::is_same_v<RouterT, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;

template <typename RouterT>
struct Net {
  net::EventLoop loop;
  std::vector<std::unique_ptr<RouterT>> routers;
  std::vector<std::unique_ptr<net::Duplex>> links;

  RouterT& make(typename RouterT::Config cfg) {
    routers.push_back(std::make_unique<RouterT>(loop, std::move(cfg)));
    return *routers.back();
  }
  void connect(RouterT& a, RouterT& b, bool b_is_client_of_a = false,
               bool a_is_client_of_b = false) {
    links.push_back(std::make_unique<net::Duplex>(loop, 1000));
    a.add_peer(links.back()->a(), {.name = b.config().name, .asn = b.config().asn,
                                   .address = b.config().address,
                                   .rr_client = b_is_client_of_a});
    b.add_peer(links.back()->b(), {.name = a.config().name, .asn = a.config().asn,
                                   .address = a.config().address,
                                   .rr_client = a_is_client_of_b});
  }
  void run(std::uint64_t seconds = 3) {
    for (auto& r : routers) r->start();
    loop.run_until(loop.now() + seconds * kSec);
  }
};

template <typename RouterT>
typename RouterT::Config base_cfg(const char* name, bgp::Asn asn, std::uint8_t idx) {
  typename RouterT::Config cfg;
  cfg.name = name;
  cfg.asn = asn;
  cfg.router_id = 0x0A000000u + idx;
  cfg.address = Ipv4Addr(10, 0, 0, idx);
  return cfg;
}

TYPED_TEST(EnginePolicyTest, ImportPolicyDeniesBogons) {
  const auto import = bgp::policy::standard_import_policy();
  Net<TypeParam> net;
  auto& src = net.make(base_cfg<TypeParam>("src", 65001, 1));
  auto cfg = base_cfg<TypeParam>("dut", 65002, 2);
  cfg.import_policy = &import;
  auto& dut = net.make(std::move(cfg));
  net.connect(src, dut);
  src.originate(Prefix::parse("127.5.0.0/16"));   // bogon
  src.originate(Prefix::parse("203.0.113.0/24"));  // legitimate
  net.run();
  EXPECT_EQ(dut.best(Prefix::parse("127.5.0.0/16")), nullptr);
  EXPECT_NE(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_EQ(dut.stats().prefixes_rejected_in, 1u);
}

TYPED_TEST(EnginePolicyTest, ExportPolicyDeniesPrivateSpace) {
  const auto exp = bgp::policy::standard_export_policy();
  Net<TypeParam> net;
  auto cfg = base_cfg<TypeParam>("dut", 65001, 1);
  cfg.export_policy = &exp;
  auto& dut = net.make(std::move(cfg));
  auto& sink = net.make(base_cfg<TypeParam>("sink", 65002, 2));
  net.connect(dut, sink);
  dut.originate(Prefix::parse("192.168.44.0/24"));  // must not leave
  dut.originate(Prefix::parse("203.0.113.0/24"));
  net.run();
  EXPECT_EQ(sink.best(Prefix::parse("192.168.44.0/24")), nullptr);
  EXPECT_NE(sink.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_GT(dut.stats().exports_rejected, 0u);
}

TYPED_TEST(EnginePolicyTest, CustomerCommunityLiftsLocalPrefAcrossDecision) {
  // Two eBGP paths to the same prefix; the longer one carries the customer
  // community, so the import policy lifts its LOCAL_PREF and it must win.
  const auto import = bgp::policy::standard_import_policy();
  Net<TypeParam> net;
  auto& short_path = net.make(base_cfg<TypeParam>("short", 65001, 1));
  auto& long_path = net.make(base_cfg<TypeParam>("long", 65003, 3));
  auto cfg = base_cfg<TypeParam>("dut", 65002, 2);
  cfg.import_policy = &import;
  auto& dut = net.make(std::move(cfg));
  net.connect(short_path, dut);
  net.connect(long_path, dut);

  const auto prefix = Prefix::parse("203.0.113.0/24");
  short_path.originate(prefix);
  net.run();

  // Manually announce via the long peer with an extra AS hop + the
  // customer community (65000:100).
  bgp::UpdateMessage update;
  update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  update.attrs.put(bgp::AsPath({65003, 64999}).to_attr());
  update.attrs.put(bgp::make_next_hop(long_path.config().address));
  const std::uint32_t comms[] = {(65000u << 16) | 100};
  update.attrs.put(bgp::make_communities(comms));
  update.nlri = {prefix};
  long_path.session(0).send_update(update);
  net.loop.run_until(net.loop.now() + 2 * kSec);

  const auto* best = dut.best(prefix);
  ASSERT_NE(best, nullptr);
  using Core = CoreOf<TypeParam>;
  EXPECT_EQ(Core::first_asn(*best->attrs), 65003u);  // customer route wins
  EXPECT_EQ(Core::local_pref_or(*best->attrs, 100), 200u);
}

TYPED_TEST(EnginePolicyTest, IgpMetricBreaksTieAcrossPeers) {
  // Same AS-path length from two iBGP peers; the decision must prefer the
  // nexthop with the lower IGP metric.
  igp::Graph graph;
  const auto dut_node = graph.add_node(Ipv4Addr(10, 0, 0, 3), "dut");
  const auto near_node = graph.add_node(Ipv4Addr(10, 0, 0, 1), "near");
  const auto far_node = graph.add_node(Ipv4Addr(10, 0, 0, 2), "far");
  graph.add_link(dut_node, near_node, 5);
  graph.add_link(dut_node, far_node, 500);
  igp::IgpTable igp_table(graph, dut_node);

  Net<TypeParam> net;
  auto& near = net.make(base_cfg<TypeParam>("near", 65000, 1));
  auto& far = net.make(base_cfg<TypeParam>("far", 65000, 2));
  auto cfg = base_cfg<TypeParam>("dut", 65000, 3);
  cfg.igp = &igp_table;
  auto& dut = net.make(std::move(cfg));
  net.connect(near, dut);
  net.connect(far, dut);
  const auto prefix = Prefix::parse("203.0.113.0/24");
  near.originate(prefix);
  far.originate(prefix);
  net.run();

  const auto* best = dut.best(prefix);
  ASSERT_NE(best, nullptr);
  using Core = CoreOf<TypeParam>;
  EXPECT_EQ(Core::next_hop(*best->attrs), Ipv4Addr(10, 0, 0, 1));  // near wins
}

TYPED_TEST(EnginePolicyTest, TwoTierReflectionPreservesOriginatorGrowsClusterList) {
  // a -> rr1 -> rr2 -> c, all iBGP, both reflectors native. The route at c
  // must carry a's ORIGINATOR_ID and both cluster ids, in order.
  Net<TypeParam> net;
  auto& a = net.make(base_cfg<TypeParam>("a", 65000, 1));
  auto cfg1 = base_cfg<TypeParam>("rr1", 65000, 2);
  cfg1.native_route_reflector = true;
  cfg1.cluster_id = 0xC1;
  auto& rr1 = net.make(std::move(cfg1));
  auto cfg2 = base_cfg<TypeParam>("rr2", 65000, 3);
  cfg2.native_route_reflector = true;
  cfg2.cluster_id = 0xC2;
  auto& rr2 = net.make(std::move(cfg2));
  auto& c = net.make(base_cfg<TypeParam>("c", 65000, 4));
  net.connect(rr1, a, /*client=*/true);
  net.connect(rr1, rr2, /*b_is_client_of_a=*/true, /*a_is_client_of_b=*/true);
  net.connect(rr2, c, /*client=*/true);

  const auto prefix = Prefix::parse("203.0.113.0/24");
  a.originate(prefix);
  net.run(5);

  const auto* at_c = c.best(prefix);
  ASSERT_NE(at_c, nullptr);
  using Core = CoreOf<TypeParam>;
  EXPECT_EQ(Core::originator_id(*at_c->attrs), a.config().router_id);
  EXPECT_EQ(Core::cluster_list_length(*at_c->attrs), 2u);
  EXPECT_TRUE(Core::cluster_list_contains(*at_c->attrs, 0xC1));
  EXPECT_TRUE(Core::cluster_list_contains(*at_c->attrs, 0xC2));
}

TYPED_TEST(EnginePolicyTest, NativeReflectionLoopPrevention) {
  // Crafted updates against a native reflector: its own cluster id in
  // CLUSTER_LIST or its own router id as ORIGINATOR_ID must be rejected;
  // foreign values must pass (RFC 4456 §8).
  Net<TypeParam> net;
  auto cfg = base_cfg<TypeParam>("rr", 65000, 2);
  cfg.native_route_reflector = true;
  cfg.cluster_id = 0xC1C1C1C1;
  auto& rr = net.make(std::move(cfg));
  auto& feeder = net.make(base_cfg<TypeParam>("feeder", 65000, 1));
  net.connect(feeder, rr);
  net.run(1);

  auto craft = [&](const char* prefix, std::optional<std::uint32_t> cluster,
                   std::optional<bgp::RouterId> originator) {
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath{}.to_attr());
    update.attrs.put(bgp::make_next_hop(feeder.config().address));
    update.attrs.put(bgp::make_local_pref(100));
    if (cluster) {
      const std::uint32_t list[] = {*cluster};
      update.attrs.put(bgp::make_cluster_list(list));
    }
    if (originator) update.attrs.put(bgp::make_originator_id(*originator));
    update.nlri = {Prefix::parse(prefix)};
    feeder.session(0).send_update(update);
    net.loop.run_until(net.loop.now() + kSec);
  };

  craft("203.0.113.0/24", 0xC1C1C1C1, std::nullopt);       // own cluster id
  craft("198.51.100.0/24", std::nullopt, rr.config().router_id);  // own router id
  craft("192.0.2.0/24", 0xDDDDDDDD, 0x0A000009);           // foreign values
  EXPECT_EQ(rr.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_EQ(rr.best(Prefix::parse("198.51.100.0/24")), nullptr);
  EXPECT_NE(rr.best(Prefix::parse("192.0.2.0/24")), nullptr);
  EXPECT_EQ(rr.stats().prefixes_rejected_in, 2u);
}

}  // namespace
