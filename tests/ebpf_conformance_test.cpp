// eBPF conformance: table-driven edge-semantics cases in the spirit of
// ubpf's conformance suite. Each case builds a tiny program, runs it with
// fixed inputs, and checks the exact 64-bit result — on both execution
// tiers, so the fast engine is held to the same edge semantics as the
// reference interpreter.
#include <gtest/gtest.h>

#include <functional>

#include "ebpf/assembler.hpp"
#include "ebpf/ir.hpp"
#include "ebpf/translator.hpp"
#include "ebpf/vm.hpp"

namespace {

using namespace xb::ebpf;

struct Case {
  const char* name;
  std::function<void(Assembler&)> emit;  // program body; r1/r2 preloaded
  std::uint64_t r1 = 0;
  std::uint64_t r2 = 0;
  std::uint64_t expected = 0;
};

class Conformance : public ::testing::TestWithParam<Case> {};

TEST_P(Conformance, Exact) {
  const Case& c = GetParam();
  Assembler a;
  c.emit(a);
  a.exit_();
  const Program p = a.build(c.name);
  Vm vm;
  const auto res = vm.run(p, c.r1, c.r2);
  ASSERT_TRUE(res.ok()) << res.fault.detail;
  EXPECT_EQ(res.value, c.expected) << c.name;

  // Same program, fast tier (no elision facts: fully checked IR), same Vm
  // with the stack re-zeroed so memory cases start from identical state.
  const IrProgram ir = Translator::translate(p);
  vm.zero_stack();
  vm.set_translated(&ir);
  vm.set_exec_mode(ExecMode::kFast);
  ASSERT_EQ(vm.effective_mode(), ExecMode::kFast);
  const auto fast = vm.run(p, c.r1, c.r2);
  ASSERT_TRUE(fast.ok()) << fast.fault.detail;
  EXPECT_EQ(fast.value, c.expected) << c.name << " (fast tier)";
}

const Case kCases[] = {
    // --- mov semantics -------------------------------------------------------
    {"mov32_negative_imm_zero_extends",
     [](Assembler& a) { a.mov32(Reg::R0, -1); }, 0, 0, 0x00000000FFFFFFFFull},
    {"mov64_negative_imm_sign_extends",
     [](Assembler& a) { a.mov64(Reg::R0, -1); }, 0, 0, 0xFFFFFFFFFFFFFFFFull},
    {"mov32_reg_truncates",
     [](Assembler& a) {
       a.mov32(Reg::R0, Reg::R1);
     }, 0xAABBCCDD11223344ull, 0, 0x11223344ull},

    // --- 32-bit arithmetic wraps and zero-extends ------------------------------
    {"add32_wraps",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.add32(Reg::R0, 1);
     }, 0xFFFFFFFFull, 0, 0},
    {"mul32_truncates",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.mul32(Reg::R0, 0x10000);
     }, 0x10001ull, 0, 0x00010000ull},
    {"neg32_wraps",
     [](Assembler& a) {
       a.mov32(Reg::R0, 0);
       a.sub32(Reg::R0, Reg::R1);
     }, 5, 0, 0xFFFFFFFBull},

    // --- shifts mask their amounts ---------------------------------------------
    {"lsh64_by_reg_masks_to_63",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.lsh64(Reg::R0, Reg::R2);
     }, 1, 64, 1},  // 64 & 63 == 0
    {"rsh32_by_reg_masks_to_31",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.rsh32(Reg::R0, 0);  // keep 32-bit context
       a.mov64(Reg::R2, 32);
       a.lsh64(Reg::R0, 0);
     }, 0xF0F0F0F0ull, 0, 0xF0F0F0F0ull},
    {"arsh64_propagates_sign",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.arsh64(Reg::R0, 4);
     }, 0x8000000000000000ull, 0, 0xF800000000000000ull},

    // --- division/modulo -------------------------------------------------------
    {"div64_truncates_toward_zero",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.div64(Reg::R0, Reg::R2);
     }, 7, 2, 3},
    {"div64_is_unsigned",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.div64(Reg::R0, Reg::R2);
     }, 0xFFFFFFFFFFFFFFFFull, 2, 0x7FFFFFFFFFFFFFFFull},
    {"mod64_is_unsigned",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.mod64(Reg::R0, Reg::R2);
     }, 0xFFFFFFFFFFFFFFFFull, 10, 5},
    {"div32_uses_low_words",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.div64(Reg::R0, 1);   // keep r0
       a.mov32(Reg::R0, Reg::R0);
       a.div64(Reg::R0, Reg::R2);
     }, 0xAAAAAAAA00000064ull, 10, 10},  // low word 100 / 10

    // --- bitwise ----------------------------------------------------------------
    {"and_or_xor_chain",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.and64(Reg::R0, 0x0F0F);
       a.or64(Reg::R0, 0x1000);
       a.xor64(Reg::R0, 0x0001);
     }, 0xFFFFull, 0, ((0xFFFFull & 0x0F0F) | 0x1000) ^ 0x0001},

    // --- jumps: unsigned vs signed ------------------------------------------------
    {"jgt_is_unsigned",
     [](Assembler& a) {
       auto t = a.make_label();
       a.mov64(Reg::R0, 0);
       a.jgt(Reg::R1, Reg::R2, t);  // 0xFFFF... > 1 unsigned -> taken
       a.exit_();
       a.place(t);
       a.mov64(Reg::R0, 1);
     }, 0xFFFFFFFFFFFFFFFFull, 1, 1},
    {"jsgt_is_signed",
     [](Assembler& a) {
       auto t = a.make_label();
       a.mov64(Reg::R0, 0);
       a.jsgt(Reg::R1, 1, t);  // -1 > 1 signed -> not taken
       a.exit_();
       a.place(t);
       a.mov64(Reg::R0, 1);
     }, 0xFFFFFFFFFFFFFFFFull, 0, 0},
    {"jset_tests_intersection",
     [](Assembler& a) {
       auto t = a.make_label();
       a.mov64(Reg::R0, 0);
       a.jset(Reg::R1, 0x8, t);
       a.exit_();
       a.place(t);
       a.mov64(Reg::R0, 1);
     }, 0xC, 0, 1},
    {"jeq_imm_sign_extends",
     [](Assembler& a) {
       auto t = a.make_label();
       a.mov64(Reg::R0, 0);
       a.jeq(Reg::R1, -1, t);  // compares against 0xFFFF...FFFF
       a.exit_();
       a.place(t);
       a.mov64(Reg::R0, 1);
     }, 0xFFFFFFFFFFFFFFFFull, 0, 1},

    // --- lddw -----------------------------------------------------------------------
    {"lddw_low_word_not_sign_extended",
     [](Assembler& a) { a.lddw(Reg::R0, 0x00000000FFFFFFFFull); }, 0, 0,
     0x00000000FFFFFFFFull},
    {"lddw_full_64",
     [](Assembler& a) { a.lddw(Reg::R0, 0x8000000000000001ull); }, 0, 0,
     0x8000000000000001ull},

    // --- byte swaps --------------------------------------------------------------------
    {"be16_swaps_low_half",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.to_be(Reg::R0, 16);
     }, 0x1234ull, 0, 0x3412ull},
    {"le64_is_identity_on_le_host",
     [](Assembler& a) {
       a.mov64(Reg::R0, Reg::R1);
       a.to_le(Reg::R0, 64);
     }, 0x0102030405060708ull, 0, 0x0102030405060708ull},

    // --- memory widths --------------------------------------------------------------------
    {"store_byte_load_word_little_endian",
     [](Assembler& a) {
       a.stw(Reg::R10, -4, 0);
       a.stb(Reg::R10, -4, 0xAA);
       a.stb(Reg::R10, -3, 0xBB);
       a.ldxw(Reg::R0, Reg::R10, -4);
     }, 0, 0, 0x0000BBAAull},
    {"store_imm_dw_sign_extends",
     [](Assembler& a) {
       a.stdw(Reg::R10, -8, -2);
       a.ldxdw(Reg::R0, Reg::R10, -8);
     }, 0, 0, 0xFFFFFFFFFFFFFFFEull},
    {"unaligned_access_is_allowed",
     [](Assembler& a) {
       a.stdw(Reg::R10, -16, 0);
       a.stdw(Reg::R10, -8, 0);
       a.lddw(Reg::R1, 0x1122334455667788ull);
       a.stxdw(Reg::R10, -11, Reg::R1);
       a.ldxdw(Reg::R0, Reg::R10, -11);
     }, 0, 0, 0x1122334455667788ull},
};

INSTANTIATE_TEST_SUITE_P(Table, Conformance, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
