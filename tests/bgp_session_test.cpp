// PeerSession: handshake FSM, update delivery, error paths, timers.
#include <gtest/gtest.h>

#include "bgp/aspath.hpp"
#include "bgp/peer_session.hpp"

namespace {

using namespace xb::bgp;
using namespace xb::net;
using xb::util::Ipv4Addr;
using xb::util::Prefix;

struct Pair {
  EventLoop loop;
  Duplex link{loop, 1000};
  PeerSession a;
  PeerSession b;

  explicit Pair(std::uint16_t hold = kDefaultHoldTime, std::uint32_t keepalive = 10)
      : a(loop, link.a(),
          {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
           .local_addr = Ipv4Addr::parse("10.0.0.1"), .peer_addr = Ipv4Addr::parse("10.0.0.2"),
           .hold_time = hold, .keepalive_interval = keepalive}),
        b(loop, link.b(),
          {.local_asn = 65002, .peer_asn = 65001, .local_id = 2,
           .local_addr = Ipv4Addr::parse("10.0.0.2"), .peer_addr = Ipv4Addr::parse("10.0.0.1"),
           .hold_time = hold, .keepalive_interval = keepalive}) {}
};

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(Session, HandshakeReachesEstablished) {
  Pair p;
  int established = 0;
  p.a.on_established = [&] { ++established; };
  p.b.on_established = [&] { ++established; };
  p.a.start();
  p.b.start();
  p.loop.run_until(kSec);
  EXPECT_EQ(p.a.state(), SessionState::kEstablished);
  EXPECT_EQ(p.b.state(), SessionState::kEstablished);
  EXPECT_EQ(established, 2);
  EXPECT_EQ(p.a.peer_id(), 2u);
  EXPECT_EQ(p.b.peer_id(), 1u);
}

TEST(Session, UpdateDeliveredWithRawBytes) {
  Pair p;
  UpdateMessage received;
  std::size_t raw_len = 0;
  p.b.on_update = [&](UpdateMessage&& u, const UpdateNotes& notes,
                      std::span<const std::uint8_t> raw) {
    EXPECT_TRUE(notes.clean());
    received = std::move(u);
    raw_len = raw.size();
  };
  p.a.start();
  p.b.start();
  p.loop.run_until(kSec);

  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({65001}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr::parse("10.0.0.1")));
  update.nlri = {Prefix::parse("192.0.2.0/24")};
  p.a.send_update(update);
  p.loop.run_until(2 * kSec);

  EXPECT_EQ(received, update);
  EXPECT_EQ(raw_len, encode_update(update).size());
  EXPECT_EQ(p.b.updates_received(), 1u);
}

TEST(Session, AsnMismatchTearsDown) {
  EventLoop loop;
  Duplex link(loop, 0);
  PeerSession good(loop, link.a(),
                   {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                    .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  // This side expects 64999 but the peer is 65001.
  PeerSession picky(loop, link.b(),
                    {.local_asn = 65002, .peer_asn = 64999, .local_id = 2,
                     .local_addr = Ipv4Addr(2), .peer_addr = Ipv4Addr(1)});
  std::string reason;
  picky.on_down = [&](const std::string& r) { reason = r; };
  good.start();
  picky.start();
  loop.run_until(kSec);
  EXPECT_EQ(picky.state(), SessionState::kIdle);
  EXPECT_EQ(good.state(), SessionState::kIdle);  // got the NOTIFICATION
  EXPECT_NE(reason.find("unexpected peer AS"), std::string::npos);
}

TEST(Session, HoldTimerExpiresWithoutKeepalives) {
  // a sends keepalives every 10 s, b never does (keepalive 0) -> a's hold
  // timer (30 s) fires.
  EventLoop loop;
  Duplex link(loop, 0);
  PeerSession a(loop, link.a(),
                {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                 .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2),
                 .hold_time = 30, .keepalive_interval = 10});
  PeerSession b(loop, link.b(),
                {.local_asn = 65002, .peer_asn = 65001, .local_id = 2,
                 .local_addr = Ipv4Addr(2), .peer_addr = Ipv4Addr(1),
                 .hold_time = 30, .keepalive_interval = 0});
  std::string reason;
  a.on_down = [&](const std::string& r) { reason = r; };
  a.start();
  b.start();
  loop.run_until(120 * kSec);
  EXPECT_EQ(a.state(), SessionState::kIdle);
  EXPECT_NE(reason.find("hold timer"), std::string::npos);
}

TEST(Session, KeepalivesKeepSessionAlive) {
  Pair p(/*hold=*/30, /*keepalive=*/10);
  p.a.start();
  p.b.start();
  p.loop.run_until(300 * kSec);
  EXPECT_EQ(p.a.state(), SessionState::kEstablished);
  EXPECT_EQ(p.b.state(), SessionState::kEstablished);
}

TEST(Session, StopSendsCease) {
  Pair p;
  p.a.start();
  p.b.start();
  p.loop.run_until(kSec);
  std::string reason;
  p.b.on_down = [&](const std::string& r) { reason = r; };
  p.a.stop();
  p.loop.run_until(2 * kSec);
  EXPECT_EQ(p.a.state(), SessionState::kIdle);
  EXPECT_EQ(p.b.state(), SessionState::kIdle);
  EXPECT_NE(reason.find("NOTIFICATION"), std::string::npos);
}

TEST(Session, UpdateBeforeEstablishedIsFsmError) {
  EventLoop loop;
  Duplex link(loop, 0);
  PeerSession a(loop, link.a(),
                {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                 .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  a.start();
  // Inject an UPDATE directly, before any OPEN.
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  link.b().write(encode_update(update));
  loop.run_until(kSec);
  EXPECT_EQ(a.state(), SessionState::kIdle);
}

TEST(Session, CorruptMarkerTearsDown) {
  Pair p;
  p.a.start();
  p.b.start();
  p.loop.run_until(kSec);
  std::vector<std::uint8_t> garbage(19, 0x00);
  p.link.a().write(garbage);
  p.loop.run_until(2 * kSec);
  EXPECT_EQ(p.b.state(), SessionState::kIdle);
}

TEST(Session, FragmentedDeliveryReassembles) {
  Pair p;
  UpdateMessage received;
  p.b.on_update = [&](UpdateMessage&& u, const UpdateNotes&,
                      std::span<const std::uint8_t>) {
    received = std::move(u);
  };
  p.a.start();
  p.b.start();
  p.loop.run_until(kSec);

  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({65001}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr::parse("10.0.0.1")));
  update.nlri = {Prefix::parse("192.0.2.0/24")};
  const auto wire = encode_update(update);
  // Deliver byte by byte; the session must buffer and reassemble.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    p.link.a().write(std::span(wire.data() + i, 1));
    p.loop.run_until(p.loop.now() + 10);
  }
  p.loop.run_until(p.loop.now() + kSec);
  EXPECT_EQ(received, update);
}

TEST(Session, NotificationInOpenSentGoesDownSilently) {
  // RFC 4271 §8: a NOTIFICATION received in OpenSent tears the session down
  // WITHOUT replying — answering a NOTIFICATION with a NOTIFICATION would
  // ping-pong forever between two conforming speakers.
  EventLoop loop;
  Duplex link(loop, 0);
  PeerSession a(loop, link.a(),
                {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                 .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  std::string reason;
  a.on_down = [&](const std::string& r) { reason = r; };
  a.start();
  ASSERT_EQ(a.state(), SessionState::kOpenSent);
  link.b().write(encode_notification(NotificationMessage{NotifCode::kCease, 0, {}}));
  loop.run_until(kSec);
  EXPECT_EQ(a.state(), SessionState::kIdle);
  EXPECT_EQ(a.notifications_sent(), 0u) << "replied to a NOTIFICATION";
  EXPECT_NE(reason.find("NOTIFICATION received"), std::string::npos);
}

TEST(Session, KeepaliveBeforeOpenIsFsmError) {
  // A KEEPALIVE arriving while we are still waiting for the peer's OPEN is an
  // FSM error: one NOTIFICATION out, session down, nothing counted as traffic.
  EventLoop loop;
  Duplex link(loop, 0);
  PeerSession a(loop, link.a(),
                {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                 .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  std::string reason;
  a.on_down = [&](const std::string& r) { reason = r; };
  a.start();
  ASSERT_EQ(a.state(), SessionState::kOpenSent);
  link.b().write(encode_keepalive());
  loop.run_until(kSec);
  EXPECT_EQ(a.state(), SessionState::kIdle);
  EXPECT_EQ(a.notifications_sent(), 1u);
  EXPECT_EQ(a.updates_received(), 0u);
  EXPECT_NE(reason.find("KEEPALIVE in state"), std::string::npos);
}

TEST(Session, SimultaneousOpenCollisionNegotiatesMinHold) {
  // Both sides fire OPEN in the same tick (connection collision, RFC 4271
  // §6.8 as modelled here: one link, both active). Asymmetric configured hold
  // times must converge to the minimum on BOTH sides and the session must
  // still reach Established without any NOTIFICATION traffic.
  EventLoop loop;
  Duplex link(loop, 1000);
  PeerSession a(loop, link.a(),
                {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                 .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2),
                 .hold_time = 30, .keepalive_interval = 5});
  PeerSession b(loop, link.b(),
                {.local_asn = 65002, .peer_asn = 65001, .local_id = 2,
                 .local_addr = Ipv4Addr(2), .peer_addr = Ipv4Addr(1),
                 .hold_time = 90, .keepalive_interval = 5});
  a.start();
  b.start();  // same tick: both OPENs are already in flight
  loop.run_until(kSec);
  EXPECT_EQ(a.state(), SessionState::kEstablished);
  EXPECT_EQ(b.state(), SessionState::kEstablished);
  EXPECT_EQ(a.config().hold_time, 30);
  EXPECT_EQ(b.config().hold_time, 30);
  EXPECT_EQ(a.notifications_sent(), 0u);
  EXPECT_EQ(b.notifications_sent(), 0u);
  // The negotiated minimum must actually be honoured: with keepalives every
  // 5 s nobody's 30 s hold timer fires over a long quiet stretch.
  loop.run_until(200 * kSec);
  EXPECT_EQ(a.state(), SessionState::kEstablished);
  EXPECT_EQ(b.state(), SessionState::kEstablished);
}

TEST(Session, HoldExpiryMidUpdateCountsNothing) {
  // The peer handshakes, starts an UPDATE, then stalls mid-message. The
  // partial bytes refresh the hold timer once (they are received data), but
  // the frame never completes: the hold timer must eventually fire, the
  // half-received UPDATE must not be counted, and exactly one NOTIFICATION
  // (hold timer expired) goes out.
  EventLoop loop;
  Duplex link(loop, 0);
  PeerSession a(loop, link.a(),
                {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                 .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2),
                 .hold_time = 12, .keepalive_interval = 4});
  std::string reason;
  a.on_down = [&](const std::string& r) { reason = r; };
  a.start();
  OpenMessage open;
  open.asn = 65002;
  open.my_as_2octet = 65002;
  open.hold_time = 12;
  open.bgp_id = 2;
  link.b().write(encode_open(open));
  link.b().write(encode_keepalive());
  loop.run_until(kSec);
  ASSERT_EQ(a.state(), SessionState::kEstablished);

  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({65002}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr(2)));
  update.nlri = {Prefix::parse("192.0.2.0/24")};
  const auto wire = encode_update(update);
  link.b().write(std::span(wire.data(), wire.size() / 2));  // ...and stall
  loop.run_until(60 * kSec);
  EXPECT_EQ(a.state(), SessionState::kIdle);
  EXPECT_EQ(a.updates_received(), 0u) << "counted a half-received UPDATE";
  EXPECT_EQ(a.notifications_sent(), 1u);
  EXPECT_NE(reason.find("hold timer"), std::string::npos);
}

}  // namespace
