// Sharded parallel UPDATE pipeline: determinism across parallelism levels.
//
// The pipeline contract (docs/parallel_pipeline.md) is that `parallelism`
// is a pure throughput knob: for any workload, every shard count produces
// bit-identical RIB contents, identical wire output towards peers, and
// identical Vmm / router statistics. These tests run the same feed through
// DUTs configured with parallelism 1 (the fully serial path), 2 and 8 and
// compare everything observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "bgp/codec.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;
constexpr std::size_t kParallelisms[] = {1, 2, 8};

template <typename T>
class ParallelPipelineTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(ParallelPipelineTest, RouterTypes);

template <typename RouterT>
using CoreOf = std::conditional_t<std::is_same_v<RouterT, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;

const bgp::policy::RouteMap& import_policy() {
  static const auto map = bgp::policy::standard_import_policy();
  return map;
}
const bgp::policy::RouteMap& export_policy() {
  static const auto map = bgp::policy::standard_export_policy();
  return map;
}

/// Everything observable about a run, normalised to wire representation so
/// snapshots from different hosts / shard counts compare with ==.
struct Snapshot {
  std::vector<std::pair<Prefix, bgp::AttributeSet>> loc_rib;
  std::vector<std::pair<Prefix, bgp::AttributeSet>> adj_in_upstream;
  std::vector<std::pair<Prefix, std::uint32_t>> meta_upstream;
  std::vector<std::pair<Prefix, bgp::AttributeSet>> adj_out_downstream;
  std::uint64_t sink_prefixes = 0;
  std::uint64_t sink_withdrawals = 0;
  bgp::UpdateMessage sink_last;

  // Router statistics (field copies; RouterStats has no operator==).
  std::uint64_t updates_in = 0, updates_out = 0, prefixes_in = 0;
  std::uint64_t prefixes_accepted = 0, prefixes_rejected_in = 0;
  std::uint64_t withdrawals_in = 0, exports_rejected = 0, loop_rejected = 0;
  std::uint64_t malformed_updates = 0, extension_faults = 0;
  std::uint64_t ov_valid = 0, ov_invalid = 0, ov_not_found = 0;

  // Folded Vmm statistics.
  std::uint64_t vmm_invocations = 0, vmm_handled = 0, vmm_next_yields = 0;
  std::uint64_t vmm_faults = 0, vmm_native_fallbacks = 0;
};

template <typename RouterT>
Snapshot capture(RouterT& dut, harness::Testbed<RouterT>& bed) {
  using Core = CoreOf<RouterT>;
  constexpr std::size_t kUp = 0, kDown = 1;  // Testbed peer registration order
  Snapshot s;
  for (const auto& prefix : dut.loc_rib_prefixes()) {
    s.loc_rib.emplace_back(prefix, Core::to_wire(*dut.best(prefix)->attrs));
  }
  for (const auto& prefix : dut.adj_rib_in_prefixes(kUp)) {
    s.adj_in_upstream.emplace_back(prefix,
                                   Core::to_wire(**dut.adj_rib_in_lookup(kUp, prefix)));
    s.meta_upstream.emplace_back(prefix, dut.route_meta(kUp, prefix));
  }
  for (const auto& prefix : dut.adj_rib_out_prefixes(kDown)) {
    s.adj_out_downstream.emplace_back(prefix,
                                      Core::to_wire(**dut.adj_rib_out_lookup(kDown, prefix)));
  }
  s.sink_prefixes = bed.sink().prefixes();
  s.sink_withdrawals = bed.sink().withdrawals();
  s.sink_last = bed.sink().last_update();

  const auto& st = dut.stats();
  s.updates_in = st.updates_in;
  s.updates_out = st.updates_out;
  s.prefixes_in = st.prefixes_in;
  s.prefixes_accepted = st.prefixes_accepted;
  s.prefixes_rejected_in = st.prefixes_rejected_in;
  s.withdrawals_in = st.withdrawals_in;
  s.exports_rejected = st.exports_rejected;
  s.loop_rejected = st.loop_rejected;
  s.malformed_updates = st.malformed_updates;
  s.extension_faults = st.extension_faults;
  s.ov_valid = st.ov_valid;
  s.ov_invalid = st.ov_invalid;
  s.ov_not_found = st.ov_not_found;

  const auto vs = dut.vmm().stats();
  s.vmm_invocations = vs.invocations;
  s.vmm_handled = vs.extension_handled;
  s.vmm_next_yields = vs.next_yields;
  s.vmm_faults = vs.faults;
  s.vmm_native_fallbacks = vs.native_fallbacks;
  return s;
}

/// Granular comparison: names the diverging field instead of dumping blobs.
void expect_identical(const Snapshot& base, const Snapshot& got, std::size_t parallelism) {
  SCOPED_TRACE(::testing::Message() << "parallelism=" << parallelism);
  EXPECT_EQ(base.loc_rib == got.loc_rib, true) << "Loc-RIB contents differ";
  EXPECT_EQ(base.adj_in_upstream == got.adj_in_upstream, true)
      << "Adj-RIB-In (upstream) differs";
  EXPECT_EQ(base.meta_upstream == got.meta_upstream, true) << "route meta differs";
  EXPECT_EQ(base.adj_out_downstream == got.adj_out_downstream, true)
      << "Adj-RIB-Out (downstream) differs";
  EXPECT_EQ(base.sink_prefixes, got.sink_prefixes);
  EXPECT_EQ(base.sink_withdrawals, got.sink_withdrawals);
  EXPECT_EQ(base.sink_last == got.sink_last, true) << "last wire UPDATE differs";

  EXPECT_EQ(base.updates_in, got.updates_in);
  EXPECT_EQ(base.updates_out, got.updates_out);
  EXPECT_EQ(base.prefixes_in, got.prefixes_in);
  EXPECT_EQ(base.prefixes_accepted, got.prefixes_accepted);
  EXPECT_EQ(base.prefixes_rejected_in, got.prefixes_rejected_in);
  EXPECT_EQ(base.withdrawals_in, got.withdrawals_in);
  EXPECT_EQ(base.exports_rejected, got.exports_rejected);
  EXPECT_EQ(base.loop_rejected, got.loop_rejected);
  EXPECT_EQ(base.malformed_updates, got.malformed_updates);
  EXPECT_EQ(base.extension_faults, got.extension_faults);
  EXPECT_EQ(base.ov_valid, got.ov_valid);
  EXPECT_EQ(base.ov_invalid, got.ov_invalid);
  EXPECT_EQ(base.ov_not_found, got.ov_not_found);

  EXPECT_EQ(base.vmm_invocations, got.vmm_invocations);
  EXPECT_EQ(base.vmm_handled, got.vmm_handled);
  EXPECT_EQ(base.vmm_next_yields, got.vmm_next_yields);
  EXPECT_EQ(base.vmm_faults, got.vmm_faults);
  EXPECT_EQ(base.vmm_native_fallbacks, got.vmm_native_fallbacks);
}

/// Withdraw every third announced prefix, packed RIS-style into messages.
template <typename RouterT>
void send_withdraw_phase(harness::Testbed<RouterT>& bed, const harness::Workload& workload,
                         net::EventLoop& loop) {
  bgp::UpdateMessage withdraw;
  for (std::size_t i = 0; i < workload.routes.size(); i += 3) {
    withdraw.withdrawn.push_back(workload.routes[i].prefix);
    if (withdraw.withdrawn.size() == 20) {
      bed.feeder().session().send_update(withdraw);
      withdraw.withdrawn.clear();
    }
  }
  if (!withdraw.withdrawn.empty()) bed.feeder().session().send_update(withdraw);
  loop.run_until(loop.now() + 2 * kSec);
}

// --- route reflection (extension bytecode, iBGP both links) -------------------

template <typename RouterT>
Snapshot run_rr(const harness::Workload& workload, std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = parallelism;
  cfg.import_policy = &import_policy();
  cfg.export_policy = &export_policy();
  RouterT dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  send_withdraw_phase(bed, workload, loop);
  EXPECT_EQ(dut.parallelism(), parallelism == 0 ? 1 : parallelism);
  return capture(dut, bed);
}

TYPED_TEST(ParallelPipelineTest, RouteReflectionDeterministicAcrossParallelism) {
  harness::WorkloadParams params;
  params.route_count = 600;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);

  const Snapshot base = run_rr<TypeParam>(workload, 1);
  ASSERT_FALSE(base.loc_rib.empty());
  ASSERT_GT(base.sink_withdrawals, 0u);
  ASSERT_GT(base.vmm_invocations, 0u);
  for (std::size_t parallelism : kParallelisms) {
    if (parallelism == 1) continue;
    const Snapshot got = run_rr<TypeParam>(workload, parallelism);
    expect_identical(base, got, parallelism);
  }
}

// --- origin validation (extension bytecode, eBGP both links) ------------------

template <typename RouterT>
Snapshot run_ov(const harness::Workload& workload, const std::vector<rpki::Roa>& roas,
                std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.parallelism = parallelism;
  RouterT dut(loop, cfg);
  dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
  dut.load_extensions(ext::origin_validation_manifest(roas.size()));
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  return capture(dut, bed);
}

TYPED_TEST(ParallelPipelineTest, OriginValidationDeterministicAcrossParallelism) {
  harness::WorkloadParams params;
  params.route_count = 500;
  const auto workload = harness::make_workload(params);
  rpki::RoaSetParams roa_params;  // 75% valid
  const auto roas = rpki::make_roa_set(workload.routes, roa_params);

  const Snapshot base = run_ov<TypeParam>(workload, roas, 1);
  ASSERT_GT(base.ov_valid, 0u);
  ASSERT_GT(base.ov_invalid, 0u);
  ASSERT_GT(base.ov_not_found, 0u);
  for (std::size_t parallelism : kParallelisms) {
    if (parallelism == 1) continue;
    const Snapshot got = run_ov<TypeParam>(workload, roas, parallelism);
    expect_identical(base, got, parallelism);
  }
}

// --- native-only path (no extensions; route-map policy engine) ----------------

template <typename RouterT>
Snapshot run_native(const harness::Workload& workload, std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.native_route_reflector = true;
  cfg.parallelism = parallelism;
  cfg.import_policy = &import_policy();
  cfg.export_policy = &export_policy();
  RouterT dut(loop, cfg);
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  send_withdraw_phase(bed, workload, loop);
  return capture(dut, bed);
}

TYPED_TEST(ParallelPipelineTest, NativePathDeterministicAcrossParallelism) {
  harness::WorkloadParams params;
  params.route_count = 400;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);

  const Snapshot base = run_native<TypeParam>(workload, 1);
  ASSERT_FALSE(base.loc_rib.empty());
  for (std::size_t parallelism : kParallelisms) {
    if (parallelism == 1) continue;
    const Snapshot got = run_native<TypeParam>(workload, parallelism);
    expect_identical(base, got, parallelism);
  }
}

// --- pre-sharded feeds produce identical results too --------------------------

TYPED_TEST(ParallelPipelineTest, PreShardedFeedMatchesOriginalFeed) {
  harness::WorkloadParams params;
  params.route_count = 400;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);

  const Snapshot base = run_rr<TypeParam>(workload, 4);

  harness::Workload sharded_feed;
  sharded_feed.updates = harness::shard_workload(workload, 4).interleaved();
  sharded_feed.routes = workload.routes;
  sharded_feed.prefix_count = workload.prefix_count;
  const Snapshot got = run_rr<TypeParam>(sharded_feed, 4);

  // Message framing differs (NLRI regrouped per shard), so update counts and
  // the final wire message may differ — but the RIBs must not.
  EXPECT_TRUE(base.loc_rib == got.loc_rib);
  EXPECT_TRUE(base.adj_in_upstream == got.adj_in_upstream);
  EXPECT_TRUE(base.adj_out_downstream == got.adj_out_downstream);
  EXPECT_EQ(base.sink_prefixes, got.sink_prefixes);
}

// --- shard_workload sanity ----------------------------------------------------

TEST(ShardWorkload, PartitionsEveryNlriByPrefixShard) {
  harness::WorkloadParams params;
  params.route_count = 300;
  const auto workload = harness::make_workload(params);

  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const auto sharded = harness::shard_workload(workload, shards);
    ASSERT_EQ(sharded.batches.size(), shards);
    std::size_t total_nlri = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      for (const auto& wire : sharded.batches[s]) {
        const auto frame = bgp::try_frame(wire);
        ASSERT_TRUE(frame.has_value());
        ASSERT_EQ(frame->type, bgp::MessageType::kUpdate);
        const auto update = *bgp::decode_update(frame->body);
        EXPECT_FALSE(update.nlri.empty() && update.withdrawn.empty());
        for (const auto& prefix : update.nlri) {
          EXPECT_EQ(util::prefix_shard(prefix, shards), s);
          ++total_nlri;
        }
        for (const auto& prefix : update.withdrawn) {
          EXPECT_EQ(util::prefix_shard(prefix, shards), s);
        }
      }
    }
    EXPECT_EQ(total_nlri, workload.prefix_count);

    const auto merged = sharded.interleaved();
    std::size_t batch_total = 0;
    for (const auto& batch : sharded.batches) batch_total += batch.size();
    EXPECT_EQ(merged.size(), batch_total);
  }
}

TEST(ShardWorkload, SingleShardPassesMessagesThroughByteIdentically) {
  harness::WorkloadParams params;
  params.route_count = 120;
  const auto workload = harness::make_workload(params);
  const auto sharded = harness::shard_workload(workload, 1);
  ASSERT_EQ(sharded.batches.size(), 1u);
  EXPECT_EQ(sharded.batches[0], workload.updates);
  EXPECT_EQ(sharded.interleaved(), workload.updates);
}

TEST(PrefixShard, StableAndInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Prefix p(Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                   static_cast<std::uint8_t>(8 + rng.below(25)));
    for (std::size_t shards : {1u, 2u, 3u, 8u, 16u}) {
      const auto s = util::prefix_shard(p, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, util::prefix_shard(p, shards));  // pure function of (prefix, shards)
    }
  }
}

}  // namespace
