// Failure injection and robustness: mutated wire input must never crash the
// codec or the routers — every outcome is a typed util::Status classified
// into an RFC 7606 tier (session-reset / treat-as-withdraw / attribute-
// discard), never an exception.
#include <gtest/gtest.h>

#include "bgp/aspath.hpp"
#include "bgp/codec.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb;
using util::ErrorClass;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

std::vector<std::uint8_t> sample_update_wire() {
  bgp::UpdateMessage update;
  update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  update.attrs.put(bgp::AsPath({65001, 65002}).to_attr());
  update.attrs.put(bgp::make_next_hop(Ipv4Addr::parse("10.0.0.1")));
  const std::uint32_t comms[] = {0x00010002};
  update.attrs.put(bgp::make_communities(comms));
  update.nlri = {Prefix::parse("203.0.113.0/24"), Prefix::parse("198.51.100.0/24")};
  return bgp::encode_update(update);
}

/// Frames + decodes and asserts the outcome is a well-formed classification:
/// incomplete, a session-reset Status with a NOTIFICATION code, or a decoded
/// message whose UpdateNotes tier is one of the RFC 7606 tiers.
void expect_classified(std::span<const std::uint8_t> wire) {
  const auto frame = bgp::try_frame(wire);
  if (!frame.has_value()) {
    EXPECT_TRUE(frame.status().is_incomplete() ||
                frame.status().error_class() == ErrorClass::kSessionReset);
    return;
  }
  bgp::UpdateNotes notes;
  const auto body = bgp::decode_body(frame->type, frame->body, &notes);
  if (!body.has_value()) {
    EXPECT_EQ(body.status().error_class(), ErrorClass::kSessionReset);
    EXPECT_NE(body.status().code(), 0);
  } else {
    EXPECT_TRUE(notes.worst == ErrorClass::kNone ||
                notes.worst == ErrorClass::kAttributeDiscard ||
                notes.worst == ErrorClass::kTreatAsWithdraw);
  }
}

TEST(Fuzz, SingleByteMutationsNeverCrashTheCodec) {
  const auto base = sample_update_wire();
  util::Rng rng(0xF022);
  for (int iter = 0; iter < 5000; ++iter) {
    auto wire = base;
    const std::size_t pos = rng.below(wire.size());
    wire[pos] = static_cast<std::uint8_t>(rng.below(256));
    expect_classified(wire);
  }
}

TEST(Fuzz, TruncationsNeverCrashTheCodec) {
  const auto base = sample_update_wire();
  for (std::size_t len = 0; len <= base.size(); ++len) {
    expect_classified(std::span(base.data(), len));
  }
}

TEST(Fuzz, RandomGarbageNeverCrashesTheCodec) {
  util::Rng rng(0xF033);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> wire(rng.below(200));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.below(256));
    // Valid marker sometimes, to exercise deeper paths.
    if (rng.chance(0.5) && wire.size() >= 16) {
      std::fill(wire.begin(), wire.begin() + 16, 0xFF);
    }
    expect_classified(wire);
  }
}

template <typename T>
class RouterRobustnessTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(RouterRobustnessTest, RouterTypes);

TYPED_TEST(RouterRobustnessTest, MissingMandatoryAttributesTreatAsWithdraw) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);
  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();

  // Install normally, then re-announce without NEXT_HOP: RFC 7606
  // treat-as-withdraw must remove it.
  bgp::UpdateMessage good;
  good.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  good.attrs.put(bgp::AsPath({plan.upstream_asn}).to_attr());
  good.attrs.put(bgp::make_next_hop(plan.upstream_addr));
  good.nlri = {Prefix::parse("203.0.113.0/24")};
  bed.feeder().session().send_update(good);
  loop.run_until(loop.now() + kSec);
  ASSERT_NE(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);

  bgp::UpdateMessage bad;
  bad.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  bad.attrs.put(bgp::AsPath({plan.upstream_asn}).to_attr());
  bad.nlri = {Prefix::parse("203.0.113.0/24")};
  bed.feeder().session().send_update(bad);
  loop.run_until(loop.now() + kSec);
  EXPECT_EQ(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_EQ(dut.stats().malformed_updates, 1u);
  EXPECT_EQ(dut.stats().treat_as_withdraw, 1u);
  // Degraded, not reset: the session stayed up.
  EXPECT_TRUE(bed.feeder().established());
}

TYPED_TEST(RouterRobustnessTest, BadOriginTreatAsWithdrawKeepsSessionUp) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);
  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();

  bgp::UpdateMessage good;
  good.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  good.attrs.put(bgp::AsPath({plan.upstream_asn}).to_attr());
  good.attrs.put(bgp::make_next_hop(plan.upstream_addr));
  good.nlri = {Prefix::parse("203.0.113.0/24")};
  bed.feeder().session().send_update(good);
  loop.run_until(loop.now() + kSec);
  ASSERT_NE(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);

  // Same route with a corrupt ORIGIN value: treat-as-withdraw (RFC 7606 §3)
  // flushes it without touching the session.
  auto wire = bgp::encode_update(good);
  bool patched = false;
  for (std::size_t i = bgp::kHeaderSize; i + 3 < wire.size(); ++i) {
    if (wire[i + 1] == bgp::attr_code::kOrigin && wire[i + 2] == 1) {
      wire[i + 3] = 9;
      patched = true;
      break;
    }
  }
  ASSERT_TRUE(patched);
  bed.feeder().session().send_bytes(wire);
  loop.run_until(loop.now() + kSec);

  EXPECT_EQ(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_EQ(dut.stats().treat_as_withdraw, 1u);
  EXPECT_TRUE(bed.feeder().established());
  EXPECT_TRUE(dut.session(0).established());
  EXPECT_EQ(dut.session(0).treat_as_withdraw_count(), 1u);
}

TYPED_TEST(RouterRobustnessTest, MalformedGeoLocIsDiscardedRouteSurvives) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);
  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();

  // Announce with a truncated GeoLoc (optional transitive, wrong length):
  // RFC 7606 attribute-discard strips the attribute but keeps the route.
  bgp::UpdateMessage update;
  update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  update.attrs.put(bgp::AsPath({plan.upstream_asn}).to_attr());
  update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
  bgp::WireAttr geoloc = bgp::make_geoloc(1000, 2000);
  geoloc.value.pop_back();  // 7 bytes instead of 8
  update.attrs.put(geoloc);
  update.nlri = {Prefix::parse("203.0.113.0/24")};
  bed.feeder().session().send_bytes(bgp::encode_update(update));
  loop.run_until(loop.now() + kSec);

  const auto* best = dut.best(Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(dut.stats().attrs_discarded, 1u);
  EXPECT_EQ(dut.stats().treat_as_withdraw, 0u);
  EXPECT_EQ(dut.stats().malformed_updates, 0u);
  EXPECT_TRUE(bed.feeder().established());
  EXPECT_EQ(dut.session(0).attrs_discarded(), 1u);
  // The discarded attribute never reaches the downstream re-advertisement.
  EXPECT_GE(bed.sink().prefixes(), 1u);
  EXPECT_FALSE(bed.sink().last_update().attrs.has(bgp::attr_code::kGeoLoc));
}

TYPED_TEST(RouterRobustnessTest, ImplicitWithdrawReplacesRoute) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);
  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();

  auto announce = [&](std::uint32_t med) {
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath({plan.upstream_asn}).to_attr());
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.attrs.put(bgp::make_med(med));
    update.nlri = {Prefix::parse("203.0.113.0/24")};
    bed.feeder().session().send_update(update);
    loop.run_until(loop.now() + kSec);
  };
  announce(10);
  announce(99);  // implicit withdraw + replace
  using Core = std::conditional_t<std::is_same_v<TypeParam, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;
  const auto* best = dut.best(Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(Core::med(*best->attrs), 99u);
  EXPECT_EQ(dut.adj_rib_in_size(0), 1u);  // replaced, not duplicated
  // Downstream saw the replacement too.
  const auto* relayed = bed.sink().last_update().attrs.find(bgp::attr_code::kMed);
  // MED is stripped on eBGP export by default; presence depends on policy.
  (void)relayed;
  EXPECT_GE(bed.sink().prefixes(), 2u);  // initial + replacement advertisement
}

TYPED_TEST(RouterRobustnessTest, GarbageOnTheWireResetsSessionNotRouter) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);
  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();

  bgp::UpdateMessage good;
  good.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  good.attrs.put(bgp::AsPath({plan.upstream_asn}).to_attr());
  good.attrs.put(bgp::make_next_hop(plan.upstream_addr));
  good.nlri = {Prefix::parse("203.0.113.0/24")};
  bed.feeder().session().send_update(good);
  loop.run_until(loop.now() + kSec);
  ASSERT_EQ(dut.loc_rib_size(), 1u);

  // Corrupt bytes from the feeder: the DUT tears the session down and
  // flushes the learned route, but stays alive for the other peer.
  std::vector<std::uint8_t> garbage(32, 0x00);
  bed.feeder().session().send_bytes(garbage);
  loop.run_until(loop.now() + 2 * kSec);
  EXPECT_EQ(dut.loc_rib_size(), 0u);
  EXPECT_TRUE(dut.session(1).established());  // downstream session unaffected
}

}  // namespace
