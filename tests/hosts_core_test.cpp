// Host attribute cores: conversions, accessors, mutation, and the critical
// cross-host equivalence property (same neutral input -> same neutral
// output through either representation).
#include <gtest/gtest.h>

#include "hosts/fir/fir_core.hpp"
#include "hosts/wren/wren_core.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb;
using namespace xb::bgp;
using hosts::fir::FirCore;
using hosts::wren::WrenCore;
using util::Ipv4Addr;

AttributeSet sample_set() {
  AttributeSet set;
  set.put(make_origin(Origin::kEgp));
  set.put(AsPath({65010, 65020, 65030}).to_attr());
  set.put(make_next_hop(Ipv4Addr::parse("192.0.2.7")));
  set.put(make_med(50));
  set.put(make_local_pref(150));
  const std::uint32_t comms[] = {0x00010002};
  set.put(make_communities(comms));
  set.put(make_originator_id(0x0A0A0A0A));
  const std::uint32_t clusters[] = {7, 8};
  set.put(make_cluster_list(clusters));
  return set;
}

template <typename T>
class CoreTest : public ::testing::Test {};
using CoreTypes = ::testing::Types<FirCore, WrenCore>;
TYPED_TEST_SUITE(CoreTest, CoreTypes);

TYPED_TEST(CoreTest, RoundTripPreservesKnownAttributes) {
  const auto set = sample_set();
  const auto attrs = TypeParam::from_wire(set, {});
  EXPECT_EQ(TypeParam::to_wire(attrs), set);
}

TYPED_TEST(CoreTest, AccessorsMatchNeutralValues) {
  const auto attrs = TypeParam::from_wire(sample_set(), {});
  EXPECT_EQ(TypeParam::next_hop(attrs), Ipv4Addr::parse("192.0.2.7"));
  EXPECT_EQ(TypeParam::local_pref_or(attrs, 100), 150u);
  EXPECT_EQ(TypeParam::med(attrs), 50u);
  EXPECT_EQ(TypeParam::origin(attrs), Origin::kEgp);
  EXPECT_EQ(TypeParam::as_path_length(attrs), 3u);
  EXPECT_EQ(TypeParam::first_asn(attrs), 65010u);
  EXPECT_EQ(TypeParam::origin_asn(attrs), 65030u);
  EXPECT_TRUE(TypeParam::as_path_contains(attrs, 65020));
  EXPECT_FALSE(TypeParam::as_path_contains(attrs, 1));
  EXPECT_EQ(TypeParam::originator_id(attrs), 0x0A0A0A0Au);
  EXPECT_EQ(TypeParam::cluster_list_length(attrs), 2u);
  EXPECT_TRUE(TypeParam::cluster_list_contains(attrs, 8));
  EXPECT_FALSE(TypeParam::cluster_list_contains(attrs, 9));
}

TYPED_TEST(CoreTest, UnknownAttributeDroppedUnlessKept) {
  auto set = sample_set();
  set.put(WireAttr{attr_flag::kOptional | attr_flag::kTransitive, 242, {1, 2, 3, 4, 5, 6, 7, 8}});
  const auto dropped = TypeParam::from_wire(set, {});
  EXPECT_FALSE(TypeParam::get_attr(dropped, 242).has_value());
  const std::uint8_t keep[] = {242};
  const auto kept = TypeParam::from_wire(set, keep);
  ASSERT_TRUE(TypeParam::get_attr(kept, 242).has_value());
  EXPECT_EQ(TypeParam::get_attr(kept, 242)->value.size(), 8u);
}

TYPED_TEST(CoreTest, GetAttrReturnsWireForm) {
  const auto attrs = TypeParam::from_wire(sample_set(), {});
  const auto med = TypeParam::get_attr(attrs, attr_code::kMed);
  ASSERT_TRUE(med);
  EXPECT_EQ(parse_med(*med), 50u);
  const auto path = TypeParam::get_attr(attrs, attr_code::kAsPath);
  ASSERT_TRUE(path);
  auto parsed = AsPath::from_attr(*path);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->length(), 3u);
  EXPECT_FALSE(TypeParam::get_attr(attrs, 200).has_value());
}

TYPED_TEST(CoreTest, SetAttrShadowsNativeField) {
  auto attrs = TypeParam::from_wire(sample_set(), {});
  // Extension overrides ORIGINATOR_ID through the xBGP attribute API.
  TypeParam::set_attr(attrs, make_originator_id(0xDEADBEEF));
  const auto got = TypeParam::get_attr(attrs, attr_code::kOriginatorId);
  ASSERT_TRUE(got);
  EXPECT_EQ(parse_originator_id(*got), 0xDEADBEEFu);
  // Native encoding must not emit the shadowed native value.
  util::ByteWriter w;
  TypeParam::encode_native(attrs, w);
  util::ByteReader r(w.view());
  const auto encoded = AttributeSet::decode(r, w.size());
  EXPECT_FALSE(encoded.has(attr_code::kOriginatorId));
}

TYPED_TEST(CoreTest, EbgpTransformSemantics) {
  auto attrs = TypeParam::from_wire(sample_set(), {});
  TypeParam::strip_ibgp_only(attrs);
  TypeParam::prepend_as(attrs, 64512);
  TypeParam::set_next_hop(attrs, Ipv4Addr::parse("10.9.9.9"));
  EXPECT_EQ(TypeParam::local_pref_or(attrs, 100), 100u);  // stripped
  EXPECT_EQ(TypeParam::med(attrs), std::nullopt);
  EXPECT_EQ(TypeParam::originator_id(attrs), std::nullopt);
  EXPECT_EQ(TypeParam::cluster_list_length(attrs), 0u);
  EXPECT_EQ(TypeParam::as_path_length(attrs), 4u);
  EXPECT_EQ(TypeParam::first_asn(attrs), 64512u);
  EXPECT_EQ(TypeParam::next_hop(attrs), Ipv4Addr::parse("10.9.9.9"));
}

TYPED_TEST(CoreTest, ReflectSetsOriginatorOnceAndPrependsCluster) {
  AttributeSet set;
  set.put(make_origin(Origin::kIgp));
  set.put(AsPath({1}).to_attr());
  set.put(make_next_hop(Ipv4Addr(1)));
  auto attrs = TypeParam::from_wire(set, {});
  TypeParam::reflect(attrs, 0x0A000001, 0xC1);
  EXPECT_EQ(TypeParam::originator_id(attrs), 0x0A000001u);
  EXPECT_EQ(TypeParam::cluster_list_length(attrs), 1u);
  // Second reflection (another RR) keeps the originator, grows the list.
  TypeParam::reflect(attrs, 0x0B000002, 0xC2);
  EXPECT_EQ(TypeParam::originator_id(attrs), 0x0A000001u);
  EXPECT_EQ(TypeParam::cluster_list_length(attrs), 2u);
  EXPECT_TRUE(TypeParam::cluster_list_contains(attrs, 0xC2));
}

TYPED_TEST(CoreTest, EncodeNativeMatchesAttributeSetEncoding) {
  const auto set = sample_set();
  const auto attrs = TypeParam::from_wire(set, {});
  util::ByteWriter native;
  TypeParam::encode_native(attrs, native);
  util::ByteWriter reference;
  set.encode(reference);
  EXPECT_EQ(native.data(), reference.data());
}

// The cross-host property at the heart of xBGP: both representations are
// faithful carriers of the neutral form.
TEST(CrossHost, RandomisedEquivalence) {
  util::Rng rng(555);
  for (int iter = 0; iter < 200; ++iter) {
    AttributeSet set;
    set.put(make_origin(static_cast<Origin>(rng.below(3))));
    std::vector<Asn> path;
    const std::size_t hops = 1 + rng.below(6);
    for (std::size_t i = 0; i < hops; ++i) path.push_back(static_cast<Asn>(1 + rng.below(70000)));
    set.put(AsPath(path).to_attr());
    set.put(make_next_hop(Ipv4Addr(static_cast<std::uint32_t>(rng.next()))));
    if (rng.chance(0.5)) set.put(make_med(static_cast<std::uint32_t>(rng.below(1000))));
    if (rng.chance(0.5)) set.put(make_local_pref(static_cast<std::uint32_t>(rng.below(500))));
    if (rng.chance(0.3)) set.put(make_originator_id(static_cast<RouterId>(rng.next())));

    const auto fir = FirCore::from_wire(set, {});
    const auto wren = WrenCore::from_wire(set, {});
    EXPECT_EQ(FirCore::to_wire(fir), WrenCore::to_wire(wren)) << "iteration " << iter;
    EXPECT_EQ(FirCore::as_path_length(fir), WrenCore::as_path_length(wren));
    EXPECT_EQ(FirCore::next_hop(fir), WrenCore::next_hop(wren));
    EXPECT_EQ(FirCore::med(fir), WrenCore::med(wren));
    EXPECT_EQ(FirCore::local_pref_or(fir, 100), WrenCore::local_pref_or(wren, 100));
    EXPECT_EQ(FirCore::origin_asn(fir), WrenCore::origin_asn(wren));
  }
}

}  // namespace
