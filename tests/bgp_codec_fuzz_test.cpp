// Structure-aware fuzzing of the BGP UPDATE wire codec.
//
// Seeded, deterministic: a corpus of valid UPDATE messages (workload
// generator output plus handcrafted edge cases) is put through >= 10k
// structure-aware mutations — truncations, corrupted header lengths, bad
// attribute flags / lengths, duplicated and deleted attributes, corrupted
// prefix length bytes, random byte flips. The contract under test:
//
//   * try_frame / decode_update NEVER crash: they either produce a message
//     or throw bgp::DecodeError (a clean, NOTIFICATION-carrying error);
//   * anything that decodes re-encodes to a stable fixpoint
//     (decode(encode(decode(x))) == decode(x));
//   * the unmutated corpus round-trips exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/codec.hpp"
#include "harness/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb;
using util::Prefix;

constexpr std::size_t kHeaderSize = 19;  // 16 marker + 2 length + 1 type
constexpr std::size_t kMutations = 12'000;

std::uint16_t be16(const std::vector<std::uint8_t>& b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}
void put_be16(std::vector<std::uint8_t>& b, std::size_t at, std::uint16_t v) {
  b[at] = static_cast<std::uint8_t>(v >> 8);
  b[at + 1] = static_cast<std::uint8_t>(v & 0xFF);
}

/// Byte range of one path attribute inside a valid UPDATE wire message.
struct AttrSpan {
  std::size_t offset = 0;  // of the flags byte
  std::size_t length = 0;  // flags + type + len field(s) + value
};

/// Walks the path-attribute region of a VALID update (corpus entries only).
std::vector<AttrSpan> walk_attrs(const std::vector<std::uint8_t>& wire) {
  std::vector<AttrSpan> out;
  if (wire.size() < kHeaderSize + 4) return out;
  const std::size_t wd_len = be16(wire, kHeaderSize);
  const std::size_t attrs_len_at = kHeaderSize + 2 + wd_len;
  if (attrs_len_at + 2 > wire.size()) return out;
  const std::size_t attrs_len = be16(wire, attrs_len_at);
  std::size_t cursor = attrs_len_at + 2;
  const std::size_t end = cursor + attrs_len;
  while (cursor + 3 <= end && end <= wire.size()) {
    const std::uint8_t flags = wire[cursor];
    const bool extended = (flags & 0x10) != 0;
    std::size_t value_len = 0;
    std::size_t header = 0;
    if (extended) {
      if (cursor + 4 > end) break;
      value_len = be16(wire, cursor + 2);
      header = 4;
    } else {
      value_len = wire[cursor + 2];
      header = 3;
    }
    if (cursor + header + value_len > end) break;
    out.push_back({cursor, header + value_len});
    cursor += header + value_len;
  }
  return out;
}

/// After inserting/removing attribute bytes, patch the two length fields
/// that frame them so the mutant is structurally parseable again.
void fix_lengths(std::vector<std::uint8_t>& wire, std::ptrdiff_t delta) {
  const std::size_t wd_len = be16(wire, kHeaderSize);
  const std::size_t attrs_len_at = kHeaderSize + 2 + wd_len;
  put_be16(wire, attrs_len_at,
           static_cast<std::uint16_t>(be16(wire, attrs_len_at) + delta));
  put_be16(wire, 16, static_cast<std::uint16_t>(be16(wire, 16) + delta));
}

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& original,
                                 util::Rng& rng) {
  std::vector<std::uint8_t> wire = original;
  if (wire.size() < kHeaderSize) {  // already truncated to a stub: just flip
    if (!wire.empty()) wire[rng.below(wire.size())] ^= 0x40;
    return wire;
  }
  const auto attrs = walk_attrs(wire);
  switch (rng.below(9)) {
    case 0:  // truncation (anywhere, including mid-header)
      wire.resize(rng.below(wire.size()) + 1);
      break;
    case 1:  // corrupt the header length field
      put_be16(wire, 16, static_cast<std::uint16_t>(rng.next()));
      break;
    case 2:  // flip a random byte past the marker
      wire[16 + rng.below(wire.size() - 16)] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 3:  // corrupt an attribute's flags (optional/transitive/extended bits)
      if (!attrs.empty()) {
        wire[attrs[rng.below(attrs.size())].offset] ^=
            static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 4:  // corrupt an attribute's length byte
      if (!attrs.empty()) {
        const auto& a = attrs[rng.below(attrs.size())];
        wire[a.offset + 2] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 5:  // duplicate one attribute (length fields fixed up: parseable)
      if (!attrs.empty()) {
        const auto a = attrs[rng.below(attrs.size())];
        std::vector<std::uint8_t> copy(wire.begin() + a.offset,
                                       wire.begin() + a.offset + a.length);
        wire.insert(wire.begin() + a.offset + a.length, copy.begin(), copy.end());
        fix_lengths(wire, static_cast<std::ptrdiff_t>(a.length));
      }
      break;
    case 6:  // delete one attribute (lengths fixed up: e.g. missing mandatory)
      if (!attrs.empty()) {
        const auto a = attrs[rng.below(attrs.size())];
        wire.erase(wire.begin() + a.offset, wire.begin() + a.offset + a.length);
        fix_lengths(wire, -static_cast<std::ptrdiff_t>(a.length));
      }
      break;
    case 7:  // rewrite an attribute's type code
      if (!attrs.empty()) {
        wire[attrs[rng.below(attrs.size())].offset + 1] =
            static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 8:  // corrupt the last byte (NLRI prefix length or its address bytes)
      wire[wire.size() - 1 - rng.below(std::min<std::size_t>(wire.size() - 16, 6))] =
          static_cast<std::uint8_t>(rng.next());
      break;
  }
  return wire;
}

/// Decodes if possible; throws only bgp::DecodeError (anything else, or a
/// crash, fails the test). Returns true when the mutant decoded.
bool exercise(const std::vector<std::uint8_t>& wire) {
  const auto frame = bgp::try_frame(wire);
  if (!frame.has_value()) return false;  // incomplete: clean "need more bytes"
  if (frame->type != bgp::MessageType::kUpdate) return false;
  const bgp::UpdateMessage decoded = bgp::decode_update(frame->body);
  // Whatever decoded must re-encode and re-decode to a stable fixpoint.
  const auto re = bgp::encode_update(decoded);
  const auto frame2 = bgp::try_frame(re);
  EXPECT_TRUE(frame2.has_value());
  EXPECT_EQ(frame2->type, bgp::MessageType::kUpdate);
  const bgp::UpdateMessage decoded2 = bgp::decode_update(frame2->body);
  EXPECT_TRUE(decoded == decoded2) << "decode/encode/decode is not a fixpoint";
  return true;
}

std::vector<std::vector<std::uint8_t>> build_corpus() {
  // Generator output: realistic attribute mixes and NLRI packing.
  harness::WorkloadParams params;
  params.route_count = 150;
  auto corpus = harness::make_workload(params).updates;

  // Withdraw-only message.
  {
    bgp::UpdateMessage m;
    m.withdrawn = {Prefix::parse("10.1.0.0/16"), Prefix::parse("10.2.3.0/24")};
    corpus.push_back(bgp::encode_update(m));
  }
  // End-of-RIB style empty UPDATE.
  corpus.push_back(bgp::encode_update(bgp::UpdateMessage{}));
  // Mixed withdraw + announce with a long AS path and every optional attr.
  {
    bgp::UpdateMessage m;
    m.withdrawn = {Prefix::parse("172.20.0.0/14")};
    m.attrs.put(bgp::make_origin(bgp::Origin::kEgp));
    m.attrs.put(bgp::AsPath({65001, 65002, 65003, 65004, 65005, 65006}).to_attr());
    m.attrs.put(bgp::make_next_hop(util::Ipv4Addr(192, 0, 2, 1)));
    m.attrs.put(bgp::make_med(4096));
    m.attrs.put(bgp::make_local_pref(200));
    const std::uint32_t comms[] = {0xFFFF0000u, 0x00010002u};
    m.attrs.put(bgp::make_communities(comms));
    m.nlri = {Prefix::parse("0.0.0.0/0"), Prefix::parse("203.0.113.0/24"),
              Prefix::parse("198.51.100.128/25"), Prefix::parse("192.0.2.1/32")};
    corpus.push_back(bgp::encode_update(m));
  }
  return corpus;
}

TEST(BgpCodecFuzz, UnmutatedCorpusRoundTripsExactly) {
  for (const auto& wire : build_corpus()) {
    const auto frame = bgp::try_frame(wire);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, bgp::MessageType::kUpdate);
    ASSERT_EQ(frame->total_length, wire.size());
    const auto decoded = bgp::decode_update(frame->body);
    EXPECT_EQ(bgp::encode_update(decoded), wire) << "corpus entry not byte-stable";
  }
}

TEST(BgpCodecFuzz, MutatedUpdatesNeverCrashAndRoundTripOrErrorCleanly) {
  const auto corpus = build_corpus();
  util::Rng rng(0xF022'2026ull);
  std::size_t decoded_ok = 0, clean_errors = 0, incomplete = 0;
  for (std::size_t i = 0; i < kMutations; ++i) {
    auto mutant = mutate(corpus[rng.below(corpus.size())], rng);
    // Occasionally stack a second mutation for compound damage.
    if (rng.chance(0.25)) mutant = mutate(mutant, rng);
    try {
      if (exercise(mutant)) {
        ++decoded_ok;
      } else {
        ++incomplete;
      }
    } catch (const bgp::DecodeError&) {
      ++clean_errors;  // the documented failure mode
    }
  }
  // The mutator must actually produce both outcomes in volume, or it is not
  // exploring the interesting space.
  EXPECT_GT(decoded_ok, kMutations / 20) << "mutator produced too few valid messages";
  EXPECT_GT(clean_errors, kMutations / 20) << "mutator produced too few malformed messages";
  ::testing::Test::RecordProperty("decoded_ok", static_cast<int>(decoded_ok));
  ::testing::Test::RecordProperty("clean_errors", static_cast<int>(clean_errors));
  ::testing::Test::RecordProperty("incomplete", static_cast<int>(incomplete));
}

TEST(BgpCodecFuzz, PureTruncationSweepIsAlwaysClean) {
  // Every prefix of every corpus message: nullopt (need more bytes) or a
  // clean DecodeError once the header length looks satisfied but lies.
  for (const auto& wire : build_corpus()) {
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + len);
      try {
        const auto frame = bgp::try_frame(cut);
        EXPECT_FALSE(frame.has_value()) << "truncated message framed at len " << len;
      } catch (const bgp::DecodeError&) {
        // acceptable: corrupt-looking header
      }
    }
  }
}

}  // namespace
