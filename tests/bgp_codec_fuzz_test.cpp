// Structure-aware fuzzing of the BGP wire codec: UPDATE, OPEN and
// NOTIFICATION frames.
//
// Seeded, deterministic: a corpus of valid messages (workload generator
// output plus handcrafted edge cases — 4-octet ASNs through AS_TRANS,
// degenerate hold times, unknown optional parameters and capabilities) is
// put through >= 10k structure-aware mutations — truncations, corrupted
// header lengths, bad attribute flags / lengths, duplicated and deleted
// attributes, corrupted version / hold-time / capability bytes, corrupted
// prefix length bytes, random byte flips. The contract under test:
//
//   * try_frame / decode_update NEVER throw: every mutant lands in exactly
//     one outcome — incomplete, a session-reset util::Status carrying a
//     valid NOTIFICATION (code, subcode) pair, or a decoded message whose
//     UpdateNotes tier is one of the RFC 7606 tiers (clean /
//     attribute-discard / treat-as-withdraw);
//   * corrupt mandatory attributes are never silently accepted: a decode
//     with clean notes and reachable NLRI has valid ORIGIN/AS_PATH/NEXT_HOP;
//   * anything that decodes re-encodes to a stable fixpoint
//     (decode(encode(decode(x))) == decode(x));
//   * the unmutated corpus round-trips exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/codec.hpp"
#include "fuzz/seed.hpp"
#include "harness/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb;
using util::ErrorClass;
using util::Prefix;

constexpr std::size_t kHeaderSize = 19;  // 16 marker + 2 length + 1 type
constexpr std::size_t kMutations = 12'000;

std::uint16_t be16(const std::vector<std::uint8_t>& b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}
void put_be16(std::vector<std::uint8_t>& b, std::size_t at, std::uint16_t v) {
  b[at] = static_cast<std::uint8_t>(v >> 8);
  b[at + 1] = static_cast<std::uint8_t>(v & 0xFF);
}

/// Byte range of one path attribute inside a valid UPDATE wire message.
struct AttrSpan {
  std::size_t offset = 0;  // of the flags byte
  std::size_t length = 0;  // flags + type + len field(s) + value
};

/// Walks the path-attribute region of a VALID update (corpus entries only).
std::vector<AttrSpan> walk_attrs(const std::vector<std::uint8_t>& wire) {
  std::vector<AttrSpan> out;
  if (wire.size() < kHeaderSize + 4) return out;
  const std::size_t wd_len = be16(wire, kHeaderSize);
  const std::size_t attrs_len_at = kHeaderSize + 2 + wd_len;
  if (attrs_len_at + 2 > wire.size()) return out;
  const std::size_t attrs_len = be16(wire, attrs_len_at);
  std::size_t cursor = attrs_len_at + 2;
  const std::size_t end = cursor + attrs_len;
  while (cursor + 3 <= end && end <= wire.size()) {
    const std::uint8_t flags = wire[cursor];
    const bool extended = (flags & 0x10) != 0;
    std::size_t value_len = 0;
    std::size_t header = 0;
    if (extended) {
      if (cursor + 4 > end) break;
      value_len = be16(wire, cursor + 2);
      header = 4;
    } else {
      value_len = wire[cursor + 2];
      header = 3;
    }
    if (cursor + header + value_len > end) break;
    out.push_back({cursor, header + value_len});
    cursor += header + value_len;
  }
  return out;
}

/// After inserting/removing attribute bytes, patch the two length fields
/// that frame them so the mutant is structurally parseable again.
void fix_lengths(std::vector<std::uint8_t>& wire, std::ptrdiff_t delta) {
  const std::size_t wd_len = be16(wire, kHeaderSize);
  const std::size_t attrs_len_at = kHeaderSize + 2 + wd_len;
  put_be16(wire, attrs_len_at,
           static_cast<std::uint16_t>(be16(wire, attrs_len_at) + delta));
  put_be16(wire, 16, static_cast<std::uint16_t>(be16(wire, 16) + delta));
}

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& original,
                                 util::Rng& rng) {
  std::vector<std::uint8_t> wire = original;
  if (wire.size() < kHeaderSize) {  // already truncated to a stub: just flip
    if (!wire.empty()) wire[rng.below(wire.size())] ^= 0x40;
    return wire;
  }
  const auto attrs = walk_attrs(wire);
  switch (rng.below(9)) {
    case 0:  // truncation (anywhere, including mid-header)
      wire.resize(rng.below(wire.size()) + 1);
      break;
    case 1:  // corrupt the header length field
      put_be16(wire, 16, static_cast<std::uint16_t>(rng.next()));
      break;
    case 2:  // flip a random byte past the marker
      wire[16 + rng.below(wire.size() - 16)] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 3:  // corrupt an attribute's flags (optional/transitive/extended bits)
      if (!attrs.empty()) {
        wire[attrs[rng.below(attrs.size())].offset] ^=
            static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 4:  // corrupt an attribute's length byte
      if (!attrs.empty()) {
        const auto& a = attrs[rng.below(attrs.size())];
        wire[a.offset + 2] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 5:  // duplicate one attribute (length fields fixed up: parseable)
      if (!attrs.empty()) {
        const auto a = attrs[rng.below(attrs.size())];
        std::vector<std::uint8_t> copy(wire.begin() + a.offset,
                                       wire.begin() + a.offset + a.length);
        wire.insert(wire.begin() + a.offset + a.length, copy.begin(), copy.end());
        fix_lengths(wire, static_cast<std::ptrdiff_t>(a.length));
      }
      break;
    case 6:  // delete one attribute (lengths fixed up: e.g. missing mandatory)
      if (!attrs.empty()) {
        const auto a = attrs[rng.below(attrs.size())];
        wire.erase(wire.begin() + a.offset, wire.begin() + a.offset + a.length);
        fix_lengths(wire, -static_cast<std::ptrdiff_t>(a.length));
      }
      break;
    case 7:  // rewrite an attribute's type code
      if (!attrs.empty()) {
        wire[attrs[rng.below(attrs.size())].offset + 1] =
            static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 8:  // corrupt the last byte (NLRI prefix length or its address bytes)
      wire[wire.size() - 1 - rng.below(std::min<std::size_t>(wire.size() - 16, 6))] =
          static_cast<std::uint8_t>(rng.next());
      break;
  }
  return wire;
}

/// Exactly one outcome per mutant.
enum class Outcome {
  kIncomplete,      // try_frame wants more bytes
  kSessionReset,    // typed Status with a NOTIFICATION (code, subcode)
  kDecodedClean,    // decoded, notes.worst == kNone
  kDecodedDiscard,  // decoded, attribute(s) stripped
  kDecodedWithdraw  // decoded, downgraded to withdraw
};

/// Valid (code, subcode) pairs a session-reset Status may carry. The framing
/// layer emits Message Header Error subcodes 1-3; UPDATE body errors are
/// Malformed Attribute List or Invalid Network Field; flipped type bytes can
/// route the body through the OPEN/NOTIFICATION/ROUTE-REFRESH decoders.
void expect_valid_notification(const util::Status& status) {
  const auto code = static_cast<bgp::NotifCode>(status.code());
  switch (code) {
    case bgp::NotifCode::kMessageHeaderError:
      EXPECT_GE(status.subcode(), 1);
      EXPECT_LE(status.subcode(), 3);
      break;
    case bgp::NotifCode::kOpenMessageError:
      EXPECT_LE(status.subcode(), 7);
      break;
    case bgp::NotifCode::kUpdateMessageError:
      EXPECT_TRUE(status.subcode() == bgp::update_err::kMalformedAttributeList ||
                  status.subcode() == bgp::update_err::kInvalidNetworkField)
          << static_cast<int>(status.subcode());
      break;
    case bgp::NotifCode::kFsmError:
    case bgp::NotifCode::kCease:
      break;
    default:
      ADD_FAILURE() << "session-reset with invalid NOTIFICATION code "
                    << static_cast<int>(status.code());
  }
}

/// Decodes a mutant and classifies it. Never throws; any exception escaping
/// the codec fails the whole test binary. Internal EXPECTs enforce that the
/// decoded tier is coherent and that corrupt mandatory attributes are never
/// silently accepted.
Outcome exercise(const std::vector<std::uint8_t>& wire) {
  const auto frame = bgp::try_frame(wire);
  if (!frame.has_value()) {
    if (frame.status().is_incomplete()) return Outcome::kIncomplete;
    EXPECT_EQ(frame.status().error_class(), ErrorClass::kSessionReset);
    expect_valid_notification(frame.status());
    return Outcome::kSessionReset;
  }
  bgp::UpdateNotes notes;
  const auto body = bgp::decode_body(frame->type, frame->body, &notes);
  if (!body.has_value()) {
    EXPECT_FALSE(body.status().is_incomplete());
    EXPECT_EQ(body.status().error_class(), ErrorClass::kSessionReset);
    expect_valid_notification(body.status());
    return Outcome::kSessionReset;
  }
  if (frame->type != bgp::MessageType::kUpdate) return Outcome::kDecodedClean;
  const auto& decoded = std::get<bgp::UpdateMessage>(*body);

  // Tier coherence: a decoded UPDATE is clean, discard, or withdraw — never
  // session-reset-but-decoded, never an unknown tier.
  EXPECT_TRUE(notes.worst == ErrorClass::kNone ||
              notes.worst == ErrorClass::kAttributeDiscard ||
              notes.worst == ErrorClass::kTreatAsWithdraw)
      << util::to_string(notes.worst);
  if (notes.worst == ErrorClass::kTreatAsWithdraw) {
    EXPECT_NE(notes.subcode, 0) << "withdraw tier without a NOTIFICATION subcode";
  }
  if (notes.worst == ErrorClass::kAttributeDiscard) {
    EXPECT_GT(notes.attrs_discarded, 0u);
  }

  // No silent acceptance: clean notes + reachable NLRI implies the mandatory
  // attribute triple survived with valid values.
  if (notes.clean() && !decoded.nlri.empty()) {
    EXPECT_TRUE(decoded.attrs.has(bgp::attr_code::kOrigin));
    EXPECT_TRUE(decoded.attrs.has(bgp::attr_code::kAsPath));
    EXPECT_TRUE(decoded.attrs.has(bgp::attr_code::kNextHop));
    const auto* origin = decoded.attrs.find(bgp::attr_code::kOrigin);
    if (origin != nullptr && origin->value.size() == 1) {
      EXPECT_LE(origin->value[0], 2);
    } else {
      ADD_FAILURE() << "clean decode accepted a corrupt ORIGIN attribute";
    }
    EXPECT_TRUE(bgp::AsPath::from_attr(*decoded.attrs.find(bgp::attr_code::kAsPath))
                    .has_value());
  }

  // Whatever decoded must re-encode and re-decode to a stable fixpoint.
  const auto re = bgp::encode_update(decoded);
  const auto frame2 = bgp::try_frame(re);
  EXPECT_TRUE(frame2.has_value());
  EXPECT_EQ(frame2->type, bgp::MessageType::kUpdate);
  const auto decoded2 = bgp::decode_update(frame2->body);
  EXPECT_TRUE(decoded2.has_value());
  EXPECT_TRUE(decoded == *decoded2) << "decode/encode/decode is not a fixpoint";

  switch (notes.worst) {
    case ErrorClass::kTreatAsWithdraw:
      return Outcome::kDecodedWithdraw;
    case ErrorClass::kAttributeDiscard:
      return Outcome::kDecodedDiscard;
    default:
      return Outcome::kDecodedClean;
  }
}

std::vector<std::vector<std::uint8_t>> build_corpus() {
  // Generator output: realistic attribute mixes and NLRI packing.
  harness::WorkloadParams params;
  params.route_count = 150;
  auto corpus = harness::make_workload(params).updates;

  // Withdraw-only message.
  {
    bgp::UpdateMessage m;
    m.withdrawn = {Prefix::parse("10.1.0.0/16"), Prefix::parse("10.2.3.0/24")};
    corpus.push_back(bgp::encode_update(m));
  }
  // End-of-RIB style empty UPDATE.
  corpus.push_back(bgp::encode_update(bgp::UpdateMessage{}));
  // Mixed withdraw + announce with a long AS path and every optional attr.
  {
    bgp::UpdateMessage m;
    m.withdrawn = {Prefix::parse("172.20.0.0/14")};
    m.attrs.put(bgp::make_origin(bgp::Origin::kEgp));
    m.attrs.put(bgp::AsPath({65001, 65002, 65003, 65004, 65005, 65006}).to_attr());
    m.attrs.put(bgp::make_next_hop(util::Ipv4Addr(192, 0, 2, 1)));
    m.attrs.put(bgp::make_med(4096));
    m.attrs.put(bgp::make_local_pref(200));
    const std::uint32_t comms[] = {0xFFFF0000u, 0x00010002u};
    m.attrs.put(bgp::make_communities(comms));
    m.attrs.put(bgp::make_geoloc(43'600'000, 3'880'000));
    m.nlri = {Prefix::parse("0.0.0.0/0"), Prefix::parse("203.0.113.0/24"),
              Prefix::parse("198.51.100.128/25"), Prefix::parse("192.0.2.1/32")};
    corpus.push_back(bgp::encode_update(m));
  }
  return corpus;
}

TEST(BgpCodecFuzz, UnmutatedCorpusRoundTripsExactly) {
  for (const auto& wire : build_corpus()) {
    const auto frame = bgp::try_frame(wire);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, bgp::MessageType::kUpdate);
    ASSERT_EQ(frame->total_length, wire.size());
    bgp::UpdateNotes notes;
    const auto decoded = bgp::decode_update(frame->body, &notes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(notes.clean());
    EXPECT_EQ(bgp::encode_update(*decoded), wire) << "corpus entry not byte-stable";
  }
}

TEST(BgpCodecFuzz, EveryMutantLandsInExactlyOneTier) {
  const auto corpus = build_corpus();
  const std::uint64_t seed = fuzz::env_seed(0xF022'2026ull);
  fuzz::announce_seed("bgp_codec_fuzz", seed);
  util::Rng rng(seed);
  std::size_t counts[5] = {};
  for (std::size_t i = 0; i < kMutations; ++i) {
    auto mutant = mutate(corpus[rng.below(corpus.size())], rng);
    // Occasionally stack a second mutation for compound damage.
    if (rng.chance(0.25)) mutant = mutate(mutant, rng);
    ++counts[static_cast<std::size_t>(exercise(mutant))];
  }
  const std::size_t clean = counts[static_cast<std::size_t>(Outcome::kDecodedClean)];
  const std::size_t resets = counts[static_cast<std::size_t>(Outcome::kSessionReset)];
  const std::size_t withdraws =
      counts[static_cast<std::size_t>(Outcome::kDecodedWithdraw)];
  const std::size_t discards =
      counts[static_cast<std::size_t>(Outcome::kDecodedDiscard)];
  // The mutator must actually produce every outcome in volume, or it is not
  // exploring the interesting space.
  EXPECT_GT(clean, kMutations / 20) << "mutator produced too few valid messages";
  EXPECT_GT(resets, kMutations / 20) << "mutator produced too few framing errors";
  EXPECT_GT(withdraws, kMutations / 100) << "too few treat-as-withdraw mutants";
  EXPECT_GT(discards, kMutations / 200) << "too few attribute-discard mutants";
  ::testing::Test::RecordProperty("decoded_clean", static_cast<int>(clean));
  ::testing::Test::RecordProperty("session_resets", static_cast<int>(resets));
  ::testing::Test::RecordProperty("treat_as_withdraw", static_cast<int>(withdraws));
  ::testing::Test::RecordProperty("attr_discards", static_cast<int>(discards));
  ::testing::Test::RecordProperty(
      "incomplete", static_cast<int>(counts[static_cast<std::size_t>(Outcome::kIncomplete)]));
}

// ---------------------------------------------------------------------------
// OPEN and NOTIFICATION frames: same one-tier-exactly oracle. These message
// types have no RFC 7606 downgrade tiers — every mutant is incomplete, a
// session-reset Status with a valid NOTIFICATION pair, or decodes clean with
// a stable re-encode fixpoint. Nothing is silently half-accepted.

/// Hand-assembles a framed message so the corpus can carry optional-parameter
/// and capability layouts encode_open() would never produce.
std::vector<std::uint8_t> raw_message(bgp::MessageType type,
                                      const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> wire(16, bgp::kMarkerByte);
  const auto total = static_cast<std::uint16_t>(kHeaderSize + body.size());
  wire.push_back(static_cast<std::uint8_t>(total >> 8));
  wire.push_back(static_cast<std::uint8_t>(total & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(type));
  wire.insert(wire.end(), body.begin(), body.end());
  return wire;
}

std::vector<std::uint8_t> raw_open(std::uint8_t version, std::uint16_t my_as,
                                   std::uint16_t hold, std::uint32_t bgp_id,
                                   const std::vector<std::uint8_t>& params) {
  std::vector<std::uint8_t> body = {version,
                                    static_cast<std::uint8_t>(my_as >> 8),
                                    static_cast<std::uint8_t>(my_as & 0xFF),
                                    static_cast<std::uint8_t>(hold >> 8),
                                    static_cast<std::uint8_t>(hold & 0xFF),
                                    static_cast<std::uint8_t>(bgp_id >> 24),
                                    static_cast<std::uint8_t>(bgp_id >> 16),
                                    static_cast<std::uint8_t>(bgp_id >> 8),
                                    static_cast<std::uint8_t>(bgp_id & 0xFF),
                                    static_cast<std::uint8_t>(params.size())};
  body.insert(body.end(), params.begin(), params.end());
  return raw_message(bgp::MessageType::kOpen, body);
}

std::vector<std::vector<std::uint8_t>> build_control_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  // Encoder-produced OPENs: 2-octet ASN, 4-octet ASN >65535 (AS_TRANS in the
  // My-AS field, real ASN in the RFC 6793 capability), degenerate hold times.
  for (const auto& [asn, hold] :
       std::vector<std::pair<std::uint32_t, std::uint16_t>>{
           {65001, 90}, {4'200'000'000u, 180}, {65010, 0}, {65011, 3},
           {196'608, 65535}}) {
    bgp::OpenMessage open;
    open.asn = asn;
    open.my_as_2octet = asn > 0xFFFF ? bgp::OpenMessage::kAsTrans
                                     : static_cast<std::uint16_t>(asn);
    open.hold_time = hold;
    open.bgp_id = 0x0A000000u + asn % 251;
    corpus.push_back(bgp::encode_open(open));
  }
  // Hand-crafted optional-parameter layouts the encoder never emits:
  // no parameters at all;
  corpus.push_back(raw_open(4, 65020, 90, 0x0A000101, {}));
  // an unknown (non-capability) parameter that must be skipped;
  corpus.push_back(raw_open(4, 65021, 30, 0x0A000102, {0xEE, 0x03, 1, 2, 3}));
  // a capability parameter stacking route-refresh (code 2, empty), an
  // unknown vendor capability, and 4-octet-AS — in that order;
  corpus.push_back(raw_open(4, bgp::OpenMessage::kAsTrans, 45, 0x0A000103,
                            {2, 12, /*rr*/ 2, 0, /*unknown*/ 0x80, 2, 0xAB, 0xCD,
                             /*4-octet AS*/ 65, 4, 0x00, 0x03, 0x00, 0x05}));
  // and a zero-length capability parameter followed by an unknown one.
  corpus.push_back(raw_open(4, 65023, 20, 0x0A000104, {2, 0, 0x7F, 1, 0x55}));

  // NOTIFICATIONs: every code class, with and without a data field.
  for (const auto& [code, subcode, data] :
       std::vector<std::tuple<bgp::NotifCode, std::uint8_t, std::vector<std::uint8_t>>>{
           {bgp::NotifCode::kCease, 0, {}},
           {bgp::NotifCode::kHoldTimerExpired, 0, {}},
           {bgp::NotifCode::kMessageHeaderError, 2, {0x00, 0x13}},
           {bgp::NotifCode::kOpenMessageError, 1, {3}},
           {bgp::NotifCode::kUpdateMessageError, 3, {0xC0, 1, 1, 9}},
       }) {
    bgp::NotificationMessage notif;
    notif.code = code;
    notif.subcode = subcode;
    notif.data = data;
    corpus.push_back(bgp::encode_notification(notif));
  }
  return corpus;
}

/// Structure-aware mutations for fixed-layout control messages. Offsets:
/// version at 19, My-AS at 20, hold time at 22, BGP ID at 24, optional
/// parameter length at 28, parameters from 29 (NOTIFICATION: code at 19,
/// subcode at 20, data from 21).
std::vector<std::uint8_t> mutate_control(const std::vector<std::uint8_t>& original,
                                         util::Rng& rng) {
  std::vector<std::uint8_t> wire = original;
  if (wire.size() < kHeaderSize) {
    if (!wire.empty()) wire[rng.below(wire.size())] ^= 0x40;
    return wire;
  }
  switch (rng.below(9)) {
    case 0:  // truncation (mid-marker, mid-header, mid-body)
      wire.resize(rng.below(wire.size()) + 1);
      break;
    case 1:  // corrupt the header length field
      put_be16(wire, 16, static_cast<std::uint16_t>(rng.next()));
      break;
    case 2:  // flip one bit anywhere, marker and type byte included
      wire[rng.below(wire.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 3:  // rewrite the version byte (OPEN) / error code byte (NOTIFICATION)
      if (wire.size() > 19) wire[19] = static_cast<std::uint8_t>(rng.next());
      break;
    case 4:  // rewrite the hold-time field (OPEN) / data bytes (NOTIFICATION)
      if (wire.size() >= 24) put_be16(wire, 22, static_cast<std::uint16_t>(rng.next()));
      break;
    case 5:  // corrupt the optional-parameters length byte
      if (wire.size() >= 29) wire[28] = static_cast<std::uint8_t>(rng.next());
      break;
    case 6:  // corrupt one byte inside the parameter / capability region
      if (wire.size() > 29) {
        wire[29 + rng.below(wire.size() - 29)] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 7: {  // shrink the body, header length patched: parseable truncation
      const std::size_t cut = rng.below(wire.size() - kHeaderSize + 1);
      wire.resize(wire.size() - cut);
      put_be16(wire, 16, static_cast<std::uint16_t>(wire.size()));
      break;
    }
    case 8: {  // append trailing bytes, header length patched
      const std::size_t extra = rng.below(8) + 1;
      for (std::size_t i = 0; i < extra; ++i) {
        wire.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      put_be16(wire, 16, static_cast<std::uint16_t>(wire.size()));
      break;
    }
  }
  return wire;
}

/// Classifies an OPEN/NOTIFICATION mutant. Bit flips can rewrite the type
/// byte, so any of the five decoders may be on the hook; each accepted
/// decode must hold its type's fixpoint contract.
Outcome exercise_control(const std::vector<std::uint8_t>& wire) {
  const auto frame = bgp::try_frame(wire);
  if (!frame.has_value()) {
    if (frame.status().is_incomplete()) return Outcome::kIncomplete;
    EXPECT_EQ(frame.status().error_class(), ErrorClass::kSessionReset);
    expect_valid_notification(frame.status());
    return Outcome::kSessionReset;
  }
  bgp::UpdateNotes notes;
  const auto body = bgp::decode_body(frame->type, frame->body, &notes);
  if (!body.has_value()) {
    EXPECT_FALSE(body.status().is_incomplete());
    EXPECT_EQ(body.status().error_class(), ErrorClass::kSessionReset);
    expect_valid_notification(body.status());
    return Outcome::kSessionReset;
  }
  if (frame->type == bgp::MessageType::kOpen) {
    const auto& open = std::get<bgp::OpenMessage>(*body);
    // The decoder must never hand the session layer an unsupported version.
    EXPECT_EQ(open.version, 4);
    // Semantic fixpoint: re-encoding preserves everything the session layer
    // consumes (the My-AS field may legally collapse to AS_TRANS), and the
    // second encode round is byte-stable.
    const auto re = bgp::encode_open(open);
    const auto frame2 = bgp::try_frame(re);
    EXPECT_TRUE(frame2.has_value());
    const auto open2 = bgp::decode_open(frame2->body);
    EXPECT_TRUE(open2.has_value());
    if (open2.has_value()) {
      EXPECT_EQ(open2->version, open.version);
      EXPECT_EQ(open2->asn, open.asn);
      EXPECT_EQ(open2->hold_time, open.hold_time);
      EXPECT_EQ(open2->bgp_id, open.bgp_id);
      EXPECT_EQ(bgp::encode_open(*open2), re) << "OPEN re-encode is not stable";
    }
  } else if (frame->type == bgp::MessageType::kNotification) {
    const auto& notif = std::get<bgp::NotificationMessage>(*body);
    // NOTIFICATION bodies round-trip exactly, data field included.
    const auto re = bgp::encode_notification(notif);
    const auto frame2 = bgp::try_frame(re);
    EXPECT_TRUE(frame2.has_value());
    const auto notif2 = bgp::decode_notification(frame2->body);
    EXPECT_TRUE(notif2.has_value());
    if (notif2.has_value()) {
      EXPECT_TRUE(notif == *notif2) << "NOTIFICATION decode/encode is not a fixpoint";
    }
  } else if (frame->type == bgp::MessageType::kUpdate) {
    // A flipped type byte routed the body through the UPDATE decoder; the
    // downgrade tiers still apply.
    EXPECT_TRUE(notes.worst == ErrorClass::kNone ||
                notes.worst == ErrorClass::kAttributeDiscard ||
                notes.worst == ErrorClass::kTreatAsWithdraw)
        << util::to_string(notes.worst);
    if (notes.worst == ErrorClass::kTreatAsWithdraw) return Outcome::kDecodedWithdraw;
    if (notes.worst == ErrorClass::kAttributeDiscard) return Outcome::kDecodedDiscard;
  }
  return Outcome::kDecodedClean;
}

TEST(BgpCodecFuzz, UnmutatedControlCorpusDecodesClean) {
  for (const auto& wire : build_control_corpus()) {
    const auto frame = bgp::try_frame(wire);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->total_length, wire.size());
    EXPECT_EQ(exercise_control(wire), Outcome::kDecodedClean);
  }
}

TEST(BgpCodecFuzz, OpenAndNotificationMutantsLandInExactlyOneTier) {
  const auto corpus = build_control_corpus();
  const std::uint64_t seed = fuzz::env_seed(0x09E4'F022ull) ^ 0x0410ull;
  fuzz::announce_seed("bgp_control_fuzz", seed);
  util::Rng rng(seed);
  std::size_t counts[5] = {};
  for (std::size_t i = 0; i < kMutations; ++i) {
    auto mutant = mutate_control(corpus[rng.below(corpus.size())], rng);
    if (rng.chance(0.25)) mutant = mutate_control(mutant, rng);
    ++counts[static_cast<std::size_t>(exercise_control(mutant))];
  }
  const std::size_t clean = counts[static_cast<std::size_t>(Outcome::kDecodedClean)];
  const std::size_t resets = counts[static_cast<std::size_t>(Outcome::kSessionReset)];
  const std::size_t incomplete =
      counts[static_cast<std::size_t>(Outcome::kIncomplete)];
  EXPECT_GT(clean, kMutations / 20) << "mutator produced too few valid messages";
  EXPECT_GT(resets, kMutations / 20) << "mutator produced too few reset errors";
  EXPECT_GT(incomplete, kMutations / 100) << "too few truncation mutants";
  ::testing::Test::RecordProperty("control_decoded_clean", static_cast<int>(clean));
  ::testing::Test::RecordProperty("control_session_resets", static_cast<int>(resets));
  ::testing::Test::RecordProperty("control_incomplete", static_cast<int>(incomplete));
}

TEST(BgpCodecFuzz, PureTruncationSweepIsAlwaysClean) {
  // Every prefix of every corpus message: incomplete (need more bytes) or a
  // session-reset Status once the header length looks satisfied but lies.
  for (const auto& wire : build_corpus()) {
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + len);
      const auto frame = bgp::try_frame(cut);
      ASSERT_FALSE(frame.has_value()) << "truncated message framed at len " << len;
      EXPECT_TRUE(frame.status().is_incomplete() ||
                  frame.status().error_class() == ErrorClass::kSessionReset);
    }
  }
}

}  // namespace
