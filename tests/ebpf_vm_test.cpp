// Interpreter semantics: ALU, jumps, memory, byte swaps, helper protocol,
// instruction budget, and isolation (bounds-checked memory).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "ebpf/assembler.hpp"
#include "ebpf/disasm.hpp"
#include "ebpf/vm.hpp"

namespace {

using namespace xb::ebpf;

std::uint64_t run_ok(Vm& vm, const Program& p, std::uint64_t r1 = 0, std::uint64_t r2 = 0) {
  auto res = vm.run(p, r1, r2);
  EXPECT_TRUE(res.ok()) << (res.faulted() ? res.fault.detail : "yielded next");
  return res.value;
}

// --- 64-bit ALU semantics, parameterized against a reference computation ----

struct AluCase {
  const char* name;
  void (*emit)(Assembler&, Reg, Reg);
  std::uint64_t (*reference)(std::uint64_t, std::uint64_t);
};

class Alu64Test : public ::testing::TestWithParam<AluCase> {};

TEST_P(Alu64Test, MatchesReference) {
  const AluCase& c = GetParam();
  Assembler a;
  c.emit(a, Reg::R1, Reg::R2);
  a.mov64(Reg::R0, Reg::R1);
  a.exit_();
  const Program p = a.build(c.name);

  constexpr std::uint64_t kValues[] = {
      0, 1, 2, 7, 63, 64, 255, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
      0x100000000ull, 0x7FFFFFFFFFFFFFFFull, 0x8000000000000000ull,
      0xFFFFFFFFFFFFFFFFull, 0x0123456789ABCDEFull};
  Vm vm;
  for (std::uint64_t x : kValues) {
    for (std::uint64_t y : kValues) {
      if ((std::string(c.name) == "div" || std::string(c.name) == "mod") && y == 0) continue;
      EXPECT_EQ(run_ok(vm, p, x, y), c.reference(x, y))
          << c.name << "(" << x << ", " << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, Alu64Test,
    ::testing::Values(
        AluCase{"add", [](Assembler& a, Reg d, Reg s) { a.add64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x + y; }},
        AluCase{"sub", [](Assembler& a, Reg d, Reg s) { a.sub64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x - y; }},
        AluCase{"mul", [](Assembler& a, Reg d, Reg s) { a.mul64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x * y; }},
        AluCase{"div", [](Assembler& a, Reg d, Reg s) { a.div64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x / y; }},
        AluCase{"mod", [](Assembler& a, Reg d, Reg s) { a.mod64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x % y; }},
        AluCase{"or", [](Assembler& a, Reg d, Reg s) { a.or64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x | y; }},
        AluCase{"and", [](Assembler& a, Reg d, Reg s) { a.and64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x & y; }},
        AluCase{"xor", [](Assembler& a, Reg d, Reg s) { a.xor64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x ^ y; }},
        AluCase{"lsh", [](Assembler& a, Reg d, Reg s) { a.lsh64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x << (y & 63); }},
        AluCase{"rsh", [](Assembler& a, Reg d, Reg s) { a.rsh64(d, s); },
                [](std::uint64_t x, std::uint64_t y) { return x >> (y & 63); }},
        AluCase{"arsh", [](Assembler& a, Reg d, Reg s) { a.arsh64(d, s); },
                [](std::uint64_t x, std::uint64_t y) {
                  return static_cast<std::uint64_t>(static_cast<std::int64_t>(x) >> (y & 63));
                }}),
    [](const ::testing::TestParamInfo<AluCase>& info) { return info.param.name; });

// --- 32-bit ALU zero-extension ------------------------------------------------

TEST(Alu32, ResultsAreZeroExtended) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.add32(Reg::R0, Reg::R2);
  a.exit_();
  const Program p = a.build("add32");
  Vm vm;
  // 0xFFFFFFFF + 1 wraps to 0 in 32-bit and must not carry into the high word.
  EXPECT_EQ(run_ok(vm, p, 0xFFFFFFFFull, 1), 0u);
  EXPECT_EQ(run_ok(vm, p, 0xAAAAFFFFFFFFull, 1), 0u);  // high bits cleared too
}

TEST(Alu32, Sub32Wraps) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.sub32(Reg::R0, Reg::R2);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("sub32"), 0, 1), 0xFFFFFFFFull);
}

TEST(Alu, NegNegates) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.neg64(Reg::R0);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("neg"), 5), static_cast<std::uint64_t>(-5));
}

TEST(Alu, DivByZeroRegisterFaults) {
  Assembler a;
  a.mov64(Reg::R0, 7);
  a.div64(Reg::R0, Reg::R2);
  a.exit_();
  Vm vm;
  auto res = vm.run(a.build("div0"), 0, 0);
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kDivisionByZero);
}

// --- lddw -----------------------------------------------------------------------

TEST(Lddw, Loads64BitImmediate) {
  Assembler a;
  a.lddw(Reg::R0, 0xDEADBEEFCAFEF00Dull);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("lddw")), 0xDEADBEEFCAFEF00Dull);
}

// --- byte swap --------------------------------------------------------------------

TEST(ByteSwap, ToBe) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.to_be(Reg::R0, 32);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("be32"), 0x11223344), 0x44332211u);
}

TEST(ByteSwap, ToBe16MasksHighBits) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.to_be(Reg::R0, 16);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("be16"), 0xAABB1122), 0x2211u);
}

TEST(ByteSwap, ToLeIsIdentityOnLittleEndianHost) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.to_le(Reg::R0, 32);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("le32"), 0x11223344), 0x11223344u);
}

TEST(ByteSwap, ToBe64) {
  Assembler a;
  a.mov64(Reg::R0, Reg::R1);
  a.to_be(Reg::R0, 64);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("be64"), 0x0102030405060708ull), 0x0807060504030201ull);
}

// --- jumps -----------------------------------------------------------------------

struct JmpCase {
  const char* name;
  void (*emit)(Assembler&, Reg, Reg, Assembler::Label);
  bool (*reference)(std::uint64_t, std::uint64_t);
};

class JmpTest : public ::testing::TestWithParam<JmpCase> {};

TEST_P(JmpTest, MatchesReference) {
  const JmpCase& c = GetParam();
  Assembler a;
  auto taken = a.make_label();
  c.emit(a, Reg::R1, Reg::R2, taken);
  a.mov64(Reg::R0, 0);
  a.exit_();
  a.place(taken);
  a.mov64(Reg::R0, 1);
  a.exit_();
  const Program p = a.build(c.name);

  constexpr std::uint64_t kValues[] = {0, 1, 2, 0x7FFFFFFFFFFFFFFFull,
                                       0x8000000000000000ull, 0xFFFFFFFFFFFFFFFFull};
  Vm vm;
  for (std::uint64_t x : kValues) {
    for (std::uint64_t y : kValues) {
      EXPECT_EQ(run_ok(vm, p, x, y), c.reference(x, y) ? 1u : 0u)
          << c.name << "(" << x << ", " << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, JmpTest,
    ::testing::Values(
        JmpCase{"jeq", [](Assembler& a, Reg d, Reg s, Assembler::Label l) { a.jeq(d, s, l); },
                [](std::uint64_t x, std::uint64_t y) { return x == y; }},
        JmpCase{"jne", [](Assembler& a, Reg d, Reg s, Assembler::Label l) { a.jne(d, s, l); },
                [](std::uint64_t x, std::uint64_t y) { return x != y; }},
        JmpCase{"jgt", [](Assembler& a, Reg d, Reg s, Assembler::Label l) { a.jgt(d, s, l); },
                [](std::uint64_t x, std::uint64_t y) { return x > y; }},
        JmpCase{"jge", [](Assembler& a, Reg d, Reg s, Assembler::Label l) { a.jge(d, s, l); },
                [](std::uint64_t x, std::uint64_t y) { return x >= y; }},
        JmpCase{"jlt", [](Assembler& a, Reg d, Reg s, Assembler::Label l) { a.jlt(d, s, l); },
                [](std::uint64_t x, std::uint64_t y) { return x < y; }},
        JmpCase{"jle", [](Assembler& a, Reg d, Reg s, Assembler::Label l) { a.jle(d, s, l); },
                [](std::uint64_t x, std::uint64_t y) { return x <= y; }}),
    [](const ::testing::TestParamInfo<JmpCase>& info) { return info.param.name; });

TEST(Jmp, SignedComparisons) {
  Assembler a;
  auto taken = a.make_label();
  a.jsgt(Reg::R1, -5, taken);
  a.mov64(Reg::R0, 0);
  a.exit_();
  a.place(taken);
  a.mov64(Reg::R0, 1);
  a.exit_();
  const Program p = a.build("jsgt");
  Vm vm;
  EXPECT_EQ(run_ok(vm, p, static_cast<std::uint64_t>(-4)), 1u);
  EXPECT_EQ(run_ok(vm, p, static_cast<std::uint64_t>(-6)), 0u);
  EXPECT_EQ(run_ok(vm, p, 3), 1u);
}

// --- memory + stack ------------------------------------------------------------------

TEST(Memory, StackReadWriteAllSizes) {
  Assembler a;
  a.stdw(Reg::R10, -8, 0);
  a.lddw(Reg::R1, 0x1122334455667788ull);
  a.stxdw(Reg::R10, -8, Reg::R1);
  a.ldxw(Reg::R0, Reg::R10, -8);   // low word on little-endian
  a.ldxh(Reg::R2, Reg::R10, -8);
  a.add64(Reg::R0, Reg::R2);
  a.ldxb(Reg::R3, Reg::R10, -8);
  a.add64(Reg::R0, Reg::R3);
  a.exit_();
  Vm vm;
  EXPECT_EQ(run_ok(vm, a.build("stack")), 0x55667788u + 0x7788u + 0x88u);
}

TEST(Memory, OutOfBoundsLoadFaults) {
  Assembler a;
  a.ldxdw(Reg::R0, Reg::R10, -520);  // below the 512-byte stack
  a.exit_();
  Vm vm;
  auto res = vm.run(a.build("oob"));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kBadMemoryAccess);
}

TEST(Memory, StoreAboveStackTopFaults) {
  Assembler a;
  a.stdw(Reg::R10, 0, 1);  // [r10, r10+8) is beyond the stack top
  a.exit_();
  Vm vm;
  auto res = vm.run(a.build("oob2"));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kBadMemoryAccess);
}

TEST(Memory, ArbitraryPointerFaults) {
  Assembler a;
  a.lddw(Reg::R1, 0x400000);
  a.ldxdw(Reg::R0, Reg::R1, 0);
  a.exit_();
  Vm vm;
  auto res = vm.run(a.build("wild"));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kBadMemoryAccess);
}

TEST(Memory, RegisteredRegionIsAccessible) {
  alignas(8) std::uint8_t buf[16] = {};
  std::uint64_t value = 0x0102030405060708ull;
  std::memcpy(buf, &value, 8);
  Assembler a;
  a.ldxdw(Reg::R0, Reg::R1, 0);
  a.exit_();
  Vm vm;
  vm.memory().add_region(buf, sizeof(buf), false, "buf");
  EXPECT_EQ(run_ok(vm, a.build("region"), reinterpret_cast<std::uint64_t>(buf)), value);
}

TEST(Memory, ReadOnlyRegionRejectsStores) {
  std::uint8_t buf[16] = {};
  Assembler a;
  a.stdw(Reg::R1, 0, 42);
  a.exit_();
  Vm vm;
  vm.memory().add_region(buf, sizeof(buf), /*writable=*/false, "ro");
  auto res = vm.run(a.build("ro"), reinterpret_cast<std::uint64_t>(buf));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kBadMemoryAccess);
}

TEST(Memory, StackIsPrivatePerVm) {
  // The stack persists across runs of the SAME VM (ubpf semantics; one VM
  // per attached program, so this only exposes a program to its own past),
  // but a different VM — i.e. a different program — must never see it.
  Assembler w;
  w.stdw(Reg::R10, -8, 0x5EC1);
  w.mov64(Reg::R0, 0);
  w.exit_();
  Assembler r;
  r.ldxdw(Reg::R0, Reg::R10, -8);
  r.exit_();
  const Program writer = w.build("write");
  const Program reader = r.build("read");
  Vm vm;
  run_ok(vm, writer);
  EXPECT_EQ(run_ok(vm, reader), 0x5EC1u);  // same VM: own residue visible
  Vm other;
  EXPECT_EQ(run_ok(other, reader), 0u);  // different VM: zero-initialised
}

// --- budget + helpers ----------------------------------------------------------------

TEST(Budget, InfiniteLoopIsStopped) {
  Assembler a;
  auto top = a.make_label();
  a.place(top);
  a.ja(top);
  Vm vm;
  vm.set_instruction_budget(1000);
  auto res = vm.run(a.build("loop"));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kBudgetExhausted);
}

TEST(Helpers, CallReturnsValueAndClobbersArgRegisters) {
  Assembler a;
  a.mov64(Reg::R6, 99);
  a.mov64(Reg::R1, 7);
  a.call(1);
  a.add64(Reg::R0, Reg::R1);  // r1 must be zeroed by the call
  a.add64(Reg::R0, Reg::R6);  // r6 must be preserved
  a.exit_();
  Vm vm;
  vm.set_helper(1, [](std::uint64_t a1, std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) { return HelperResult::ok(a1 * 2); });
  EXPECT_EQ(run_ok(vm, a.build("call")), 14u + 99u);
}

TEST(Helpers, UnboundHelperFaults) {
  Assembler a;
  a.call(5);
  a.exit_();
  Vm vm;
  auto res = vm.run(a.build("nohelper"));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kUnknownHelper);
}

TEST(Helpers, NextTerminatesImmediately) {
  Assembler a;
  a.call(1);
  a.mov64(Reg::R0, 42);  // must not execute
  a.exit_();
  Vm vm;
  vm.set_helper(1, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) { return HelperResult::next(); });
  auto res = vm.run(a.build("next"));
  EXPECT_TRUE(res.yielded_next());
}

TEST(Helpers, FailureBecomesFault) {
  Assembler a;
  a.call(1);
  a.exit_();
  Vm vm;
  vm.set_helper(1, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) { return HelperResult::fail("boom"); });
  auto res = vm.run(a.build("fail"));
  ASSERT_TRUE(res.faulted());
  EXPECT_EQ(res.fault.kind, FaultKind::kHelperError);
  EXPECT_STREQ(res.fault.detail, "boom");
}

// --- image serialisation ---------------------------------------------------------------

TEST(Image, SerializeDeserializeRoundTrip) {
  Assembler a;
  auto l = a.make_label();
  a.lddw(Reg::R6, 0x1234567890ABCDEFull);
  a.jeq(Reg::R1, Reg::R2, l);
  a.mov64(Reg::R0, 0);
  a.exit_();
  a.place(l);
  a.mov64(Reg::R0, 1);
  a.exit_();
  const Program p = a.build("roundtrip");
  const auto image = p.image();
  EXPECT_EQ(image.size(), p.insns().size() * 8);
  EXPECT_EQ(deserialize(image), p.insns());
}

TEST(Disasm, ProducesOneLinePerSlot) {
  Assembler a;
  a.lddw(Reg::R1, 0xFFFF);
  a.mov64(Reg::R0, 3);
  a.exit_();
  const auto text = disassemble(a.build("d"));
  EXPECT_NE(text.find("lddw r1"), std::string::npos);
  EXPECT_NE(text.find("exit"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

}  // namespace
