// §3.1 end to end: why the community-tagging status quo is "imperfect" and
// the xBGP IGP-cost filter (Listing 1) is not.
//
// The paper's scenario: an ISP announces to its peers only routes learned on
// the same continent. The classic implementation tags routes with a
// community at ingress and filters on export. But when the intra-continent
// links fail and traffic detours over the transatlantic path, "with BGP
// communities, it would continue to advertise these routes after the
// failure" — the tag is static. The Listing-1 filter reads the live IGP
// metric instead and withdraws.
//
// Topology (both variants):
//
//   ext_peer --eBGP--> london --iBGP--> amsterdam --eBGP--> eu_peer
//
// IGP: london--amsterdam direct link (metric 10) plus a transatlantic
// detour (metric 2000). Failure = direct link down; amsterdam's metric to
// london jumps from 10 to 2000.
#include <gtest/gtest.h>

#include "extensions/community_tag.hpp"
#include "extensions/igp_filter.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;
constexpr std::uint32_t kEuropeTag = (65000u << 16) | 1;

template <typename T>
class Scenario301 : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(Scenario301, RouterTypes);

template <typename RouterT>
struct Isp {
  net::EventLoop loop;
  igp::Graph graph;
  igp::NodeId london_node, amsterdam_node, transit_node;
  std::unique_ptr<igp::IgpTable> ams_igp;
  std::unique_ptr<RouterT> ext_peer, london, amsterdam, eu_peer;
  std::vector<std::unique_ptr<net::Duplex>> links;

  explicit Isp(bool use_igp_filter) {
    // IGP: direct London-Amsterdam link (10) and a transatlantic detour via
    // a US hub (1000 each way), as §3.1 configures.
    london_node = graph.add_node(Ipv4Addr(10, 0, 0, 1), "london");
    amsterdam_node = graph.add_node(Ipv4Addr(10, 0, 0, 2), "amsterdam");
    transit_node = graph.add_node(Ipv4Addr(10, 0, 0, 9), "us-hub");
    graph.add_link(london_node, amsterdam_node, 10);
    graph.add_link(london_node, transit_node, 1000);
    graph.add_link(amsterdam_node, transit_node, 1000);
    ams_igp = std::make_unique<igp::IgpTable>(graph, amsterdam_node);

    auto cfg = [](const char* name, bgp::Asn asn, std::uint8_t idx) {
      typename RouterT::Config c;
      c.name = name;
      c.asn = asn;
      c.router_id = 0x0A000000u + idx;
      c.address = Ipv4Addr(10, 0, 0, idx);
      return c;
    };
    ext_peer = std::make_unique<RouterT>(loop, cfg("ext", 64999, 8));
    london = std::make_unique<RouterT>(loop, cfg("london", 65000, 1));
    auto ams_cfg = cfg("amsterdam", 65000, 2);
    ams_cfg.igp = ams_igp.get();
    amsterdam = std::make_unique<RouterT>(loop, ams_cfg);
    eu_peer = std::make_unique<RouterT>(loop, cfg("eu", 65100, 3));

    if (use_igp_filter) {
      // Listing 1 on the export router.
      amsterdam->set_xtra_u32(xbgp::xtra::kMaxMetric, 100);
      amsterdam->load_extensions(ext::igp_filter_manifest());
    } else {
      // Classic approach: tag at ingress, filter on export.
      london->set_xtra_u32(xbgp::xtra::kRegionTag, kEuropeTag);
      london->load_extensions(ext::community_tag_manifest(/*ingress=*/true,
                                                          /*export=*/false));
      amsterdam->set_xtra_u32(xbgp::xtra::kRequiredTag, kEuropeTag);
      amsterdam->load_extensions(ext::community_tag_manifest(/*ingress=*/false,
                                                             /*export=*/true));
    }

    connect(*ext_peer, *london);
    // London sets next-hop-self towards the iBGP core, so Amsterdam's IGP
    // metric to the nexthop is the metric to London (10, then 2000).
    connect(*london, *amsterdam, /*clients=*/false, /*a_next_hop_self=*/true);
    connect(*amsterdam, *eu_peer);

    ext_peer->originate(Prefix::parse("203.0.113.0/24"));
    ext_peer->start();
    london->start();
    amsterdam->start();
    eu_peer->start();
    loop.run_until(loop.now() + 5 * kSec);
  }

  template <typename A, typename B>
  void connect(A& a, B& b, bool clients = false, bool a_next_hop_self = false) {
    links.push_back(std::make_unique<net::Duplex>(loop, 1000));
    a.add_peer(links.back()->a(), {.name = b.config().name, .asn = b.config().asn,
                                   .address = b.config().address, .rr_client = clients,
                                   .next_hop_self = a_next_hop_self});
    b.add_peer(links.back()->b(), {.name = a.config().name, .asn = a.config().asn,
                                   .address = a.config().address, .rr_client = clients});
  }

  /// The §3.1 failure: the direct London-Amsterdam link dies; Amsterdam's
  /// IGP reconverges over the transatlantic detour and BGP re-runs export
  /// policy (as a daemon does after SPF).
  void fail_direct_link() {
    graph.set_link_metric(london_node, amsterdam_node, igp::kInfMetric);
    ams_igp->rebuild(graph, amsterdam_node);
    amsterdam->reevaluate_exports();
    loop.run_until(loop.now() + 5 * kSec);
  }

  [[nodiscard]] bool eu_peer_has_route() const {
    return eu_peer->best(Prefix::parse("203.0.113.0/24")) != nullptr;
  }
};

TYPED_TEST(Scenario301, CommunityTaggingAdvertisesBeforeFailure) {
  Isp<TypeParam> isp(/*use_igp_filter=*/false);
  EXPECT_TRUE(isp.eu_peer_has_route());
  // The route carries the region tag stamped by the ingress bytecode.
  const auto* at_ams = isp.amsterdam->best(Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(at_ams, nullptr);
  using Core = std::conditional_t<std::is_same_v<TypeParam, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;
  const auto communities = Core::get_attr(*at_ams->attrs, bgp::attr_code::kCommunities);
  ASSERT_TRUE(communities.has_value());
  const auto parsed = bgp::parse_communities(*communities);
  EXPECT_NE(std::find(parsed.begin(), parsed.end(), kEuropeTag), parsed.end());
}

TYPED_TEST(Scenario301, CommunityTaggingIsStaleAfterFailure) {
  Isp<TypeParam> isp(/*use_igp_filter=*/false);
  ASSERT_TRUE(isp.eu_peer_has_route());
  isp.fail_direct_link();
  // The paper's complaint: the tag doesn't know about the failure, so the
  // route keeps being advertised over the expensive detour.
  EXPECT_TRUE(isp.eu_peer_has_route());
}

TYPED_TEST(Scenario301, IgpFilterAdvertisesBeforeFailure) {
  Isp<TypeParam> isp(/*use_igp_filter=*/true);
  EXPECT_TRUE(isp.eu_peer_has_route());  // metric 10 <= 100
}

TYPED_TEST(Scenario301, IgpFilterWithdrawsAfterFailure) {
  Isp<TypeParam> isp(/*use_igp_filter=*/true);
  ASSERT_TRUE(isp.eu_peer_has_route());
  isp.fail_direct_link();
  // Listing 1 reads the live metric (now 2000 > 100) and withdraws.
  EXPECT_FALSE(isp.eu_peer_has_route());
  EXPECT_GT(isp.amsterdam->stats().exports_rejected +
                isp.amsterdam->vmm().stats().extension_handled,
            0u);
}

}  // namespace
