// UpdateBuilder: wire-level packing of advertisements and withdrawals.
#include <gtest/gtest.h>

#include "bgp/codec.hpp"
#include "hosts/engine/update_builder.hpp"

namespace {

using namespace xb;
using hosts::engine::UpdateBuilder;
using util::Ipv4Addr;
using util::Prefix;

std::vector<std::uint8_t> attrs_bytes() {
  bgp::AttributeSet set;
  set.put(bgp::make_origin(bgp::Origin::kIgp));
  set.put(bgp::make_next_hop(Ipv4Addr(10, 0, 0, 1)));
  util::ByteWriter w;
  set.encode(w);
  return std::move(w).take();
}

TEST(UpdateBuilder, PacksPrefixesIntoOneMessage) {
  UpdateBuilder builder;
  const auto attrs = attrs_bytes();
  builder.begin_group(attrs);
  for (int i = 0; i < 10; ++i) {
    builder.add_prefix(Prefix(Ipv4Addr(20, 0, static_cast<std::uint8_t>(i), 0), 24));
  }
  const auto messages = builder.finish();
  ASSERT_EQ(messages.size(), 1u);
  const auto frame = bgp::try_frame(messages[0]);
  ASSERT_TRUE(frame);
  const auto update = *bgp::decode_update(frame->body);
  EXPECT_EQ(update.nlri.size(), 10u);
  EXPECT_TRUE(update.withdrawn.empty());
  EXPECT_TRUE(update.attrs.has(bgp::attr_code::kOrigin));
}

TEST(UpdateBuilder, SplitsAtMessageSizeLimit) {
  UpdateBuilder builder;
  const auto attrs = attrs_bytes();
  builder.begin_group(attrs);
  // /32 prefixes take 5 bytes each; force multiple messages.
  for (std::uint32_t i = 0; i < 2000; ++i) {
    builder.add_prefix(Prefix(Ipv4Addr(0x14000000u + i), 32));
  }
  const auto messages = builder.finish();
  EXPECT_GT(messages.size(), 1u);
  std::size_t total = 0;
  for (const auto& wire : messages) {
    ASSERT_LE(wire.size(), bgp::kMaxMessageSize);
    const auto frame = bgp::try_frame(wire);
    ASSERT_TRUE(frame);
    const auto update = *bgp::decode_update(frame->body);
    // Every message of the group carries the same attribute bytes.
    EXPECT_TRUE(update.attrs.has(bgp::attr_code::kNextHop));
    total += update.nlri.size();
  }
  EXPECT_EQ(total, 2000u);
}

TEST(UpdateBuilder, NewGroupFlushesPrevious) {
  UpdateBuilder builder;
  const auto attrs = attrs_bytes();
  builder.begin_group(attrs);
  builder.add_prefix(Prefix::parse("20.0.0.0/24"));
  builder.begin_group(attrs);
  builder.add_prefix(Prefix::parse("20.0.1.0/24"));
  const auto messages = builder.finish();
  EXPECT_EQ(messages.size(), 2u);
}

TEST(UpdateBuilder, WithdrawalsGoInSeparateMessages) {
  UpdateBuilder builder;
  builder.begin_group(attrs_bytes());
  builder.add_prefix(Prefix::parse("20.0.0.0/24"));
  builder.withdraw_prefix(Prefix::parse("20.9.0.0/16"));
  const auto messages = builder.finish();
  ASSERT_EQ(messages.size(), 2u);
  // One carries NLRI, the other withdrawals.
  std::size_t nlri = 0, withdrawn = 0;
  for (const auto& wire : messages) {
    const auto update = *bgp::decode_update(bgp::try_frame(wire)->body);
    nlri += update.nlri.size();
    withdrawn += update.withdrawn.size();
  }
  EXPECT_EQ(nlri, 1u);
  EXPECT_EQ(withdrawn, 1u);
}

TEST(UpdateBuilder, ManyWithdrawalsSplit) {
  UpdateBuilder builder;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    builder.withdraw_prefix(Prefix(Ipv4Addr(0x14000000u + i), 32));
  }
  const auto messages = builder.finish();
  EXPECT_GT(messages.size(), 1u);
  std::size_t total = 0;
  for (const auto& wire : messages) {
    ASSERT_LE(wire.size(), bgp::kMaxMessageSize);
    total += bgp::decode_update(bgp::try_frame(wire)->body)->withdrawn.size();
  }
  EXPECT_EQ(total, 2000u);
}

TEST(UpdateBuilder, FinishIsReusable) {
  UpdateBuilder builder;
  builder.begin_group(attrs_bytes());
  builder.add_prefix(Prefix::parse("20.0.0.0/24"));
  EXPECT_EQ(builder.finish().size(), 1u);
  EXPECT_TRUE(builder.finish().empty());  // nothing pending
  builder.begin_group(attrs_bytes());
  builder.add_prefix(Prefix::parse("20.0.1.0/24"));
  EXPECT_EQ(builder.finish().size(), 1u);
}

}  // namespace
