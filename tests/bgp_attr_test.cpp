// Path attributes: typed builders/parsers, the attribute set, AS_PATH model,
// and property-style encode/decode round trips.
#include <gtest/gtest.h>

#include "bgp/aspath.hpp"
#include "bgp/attr.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb::bgp;
using xb::util::ByteReader;
using xb::util::ByteWriter;
using xb::util::Ipv4Addr;

TEST(AttributeSet, PutKeepsAscendingCodeOrder) {
  AttributeSet set;
  set.put(make_local_pref(100));
  set.put(make_origin(Origin::kIgp));
  set.put(make_next_hop(Ipv4Addr::parse("10.0.0.1")));
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.all()[0].code, attr_code::kOrigin);
  EXPECT_EQ(set.all()[1].code, attr_code::kNextHop);
  EXPECT_EQ(set.all()[2].code, attr_code::kLocalPref);
}

TEST(AttributeSet, PutReplacesSameCode) {
  AttributeSet set;
  set.put(make_med(1));
  set.put(make_med(2));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(parse_med(*set.find(attr_code::kMed)), 2u);
}

TEST(AttributeSet, RemoveAndFind) {
  AttributeSet set;
  set.put(make_med(1));
  EXPECT_TRUE(set.has(attr_code::kMed));
  EXPECT_TRUE(set.remove(attr_code::kMed));
  EXPECT_FALSE(set.remove(attr_code::kMed));
  EXPECT_EQ(set.find(attr_code::kMed), nullptr);
}

TEST(AttributeSet, EncodeDecodeRoundTrip) {
  AttributeSet set;
  set.put(make_origin(Origin::kEgp));
  set.put(AsPath({65001, 65002}).to_attr());
  set.put(make_next_hop(Ipv4Addr::parse("192.0.2.1")));
  set.put(make_med(777));
  set.put(make_local_pref(200));
  const std::uint32_t comms[] = {0x00010002, 0xFFFF0000};
  set.put(make_communities(comms));
  set.put(make_originator_id(0x0A000001));
  const std::uint32_t clusters[] = {1, 2, 3};
  set.put(make_cluster_list(clusters));
  set.put(make_geoloc(50'850'000, -4'350'000));

  ByteWriter w;
  set.encode(w);
  ByteReader r(w.view());
  const AttributeSet decoded = AttributeSet::decode(r, w.size());
  EXPECT_EQ(decoded, set);
}

TEST(AttributeSet, ExtendedLengthRoundTrip) {
  // A value longer than 255 bytes forces the extended-length encoding.
  WireAttr big;
  big.flags = attr_flag::kOptional | attr_flag::kTransitive;
  big.code = 200;
  big.value.assign(300, 0xAB);
  AttributeSet set;
  set.put(big);
  ByteWriter w;
  set.encode(w);
  ByteReader r(w.view());
  const AttributeSet decoded = AttributeSet::decode(r, w.size());
  ASSERT_TRUE(decoded.has(200));
  EXPECT_EQ(decoded.find(200)->value.size(), 300u);
  EXPECT_EQ(decoded, set);
}

TEST(AttributeSet, RandomisedRoundTrip) {
  // Property sweep: random attribute sets survive encode -> decode.
  xb::util::Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    AttributeSet set;
    const std::size_t n = rng.below(8);
    for (std::size_t i = 0; i < n; ++i) {
      WireAttr attr;
      attr.code = static_cast<std::uint8_t>(11 + rng.below(200));
      attr.flags = attr_flag::kOptional |
                   (rng.chance(0.5) ? attr_flag::kTransitive : std::uint8_t{0});
      attr.value.resize(rng.below(300));
      for (auto& b : attr.value) b = static_cast<std::uint8_t>(rng.below(256));
      set.put(std::move(attr));
    }
    ByteWriter w;
    set.encode(w);
    ByteReader r(w.view());
    EXPECT_EQ(AttributeSet::decode(r, w.size()), set) << "iteration " << iter;
  }
}

TEST(TypedAttrs, OriginRejectsBadValues) {
  EXPECT_EQ(parse_origin(WireAttr{0x40, attr_code::kOrigin, {3}}), std::nullopt);
  EXPECT_EQ(parse_origin(WireAttr{0x40, attr_code::kOrigin, {0, 0}}), std::nullopt);
  EXPECT_EQ(parse_origin(make_origin(Origin::kIgp)), Origin::kIgp);
}

TEST(TypedAttrs, NextHopSize) {
  EXPECT_EQ(parse_next_hop(WireAttr{0x40, attr_code::kNextHop, {1, 2, 3}}), std::nullopt);
  EXPECT_EQ(parse_next_hop(make_next_hop(Ipv4Addr::parse("1.2.3.4"))),
            Ipv4Addr::parse("1.2.3.4"));
}

TEST(TypedAttrs, GeoLocRoundTrip) {
  auto attr = make_geoloc(-33'868'800, 151'209'300);  // Sydney
  auto parsed = parse_geoloc(attr);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->lat_microdeg, -33'868'800);
  EXPECT_EQ(parsed->lon_microdeg, 151'209'300);
}

TEST(TypedAttrs, CommunitiesRoundTrip) {
  const std::uint32_t comms[] = {0xFFFF029A, 0x00640001};
  auto parsed = parse_communities(make_communities(comms));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], 0xFFFF029Au);
}

// --- AS_PATH -------------------------------------------------------------------

TEST(AsPath, PrependBuildsSequence) {
  AsPath path;
  path.prepend(3);
  path.prepend(2);
  path.prepend(1);
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.first_asn(), 1u);
  EXPECT_EQ(path.origin_asn(), 3u);
  EXPECT_EQ(path.flatten(), (std::vector<Asn>{1, 2, 3}));
}

TEST(AsPath, SetCountsOnce) {
  AsPath path({1, 2});
  // Manually add an AS_SET segment via the wire form.
  auto attr = path.to_attr();
  attr.value.push_back(1);  // type AS_SET
  attr.value.push_back(2);  // two members
  for (Asn asn : {Asn{7}, Asn{8}}) {
    attr.value.push_back(static_cast<std::uint8_t>(asn >> 24));
    attr.value.push_back(static_cast<std::uint8_t>(asn >> 16));
    attr.value.push_back(static_cast<std::uint8_t>(asn >> 8));
    attr.value.push_back(static_cast<std::uint8_t>(asn));
  }
  auto parsed = AsPath::from_attr(attr);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->length(), 3u);  // 2 + 1 for the set
  EXPECT_TRUE(parsed->contains(8));
  EXPECT_EQ(parsed->origin_asn(), std::nullopt);  // path ends in a set
}

TEST(AsPath, ContainsAdjacentPair) {
  AsPath path({10, 20, 30});
  EXPECT_TRUE(path.contains_adjacent_pair(10, 20));
  EXPECT_TRUE(path.contains_adjacent_pair(20, 30));
  EXPECT_FALSE(path.contains_adjacent_pair(30, 20));
  EXPECT_FALSE(path.contains_adjacent_pair(10, 30));
}

TEST(AsPath, WireRoundTrip) {
  xb::util::Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Asn> asns;
    const std::size_t n = 1 + rng.below(12);
    for (std::size_t i = 0; i < n; ++i) asns.push_back(static_cast<Asn>(rng.below(1u << 31)));
    AsPath path(asns);
    auto parsed = AsPath::from_attr(path.to_attr());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, path);
  }
}

TEST(AsPath, FromAttrRejectsMalformed) {
  EXPECT_EQ(AsPath::from_attr(WireAttr{0x40, attr_code::kAsPath, {2}}), std::nullopt);
  EXPECT_EQ(AsPath::from_attr(WireAttr{0x40, attr_code::kAsPath, {9, 1, 0, 0, 0, 1}}),
            std::nullopt);  // bad segment type
  EXPECT_EQ(AsPath::from_attr(WireAttr{0x40, attr_code::kAsPath, {2, 2, 0, 0, 0, 1}}),
            std::nullopt);  // count says 2, bytes for 1
  EXPECT_EQ(AsPath::from_attr(WireAttr{0x40, attr_code::kAsPath, {2, 0}}),
            std::nullopt);  // zero-length segment
}

TEST(AsPath, PrependSplitsFullSegment) {
  AsPath path;
  for (int i = 0; i < 256; ++i) path.prepend(static_cast<Asn>(i + 1));
  EXPECT_EQ(path.length(), 256u);
  ASSERT_EQ(path.segments().size(), 2u);
  EXPECT_EQ(path.segments()[0].asns.size(), 1u);
  EXPECT_EQ(path.segments()[1].asns.size(), 255u);
  auto parsed = AsPath::from_attr(path.to_attr());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, path);
}

}  // namespace
