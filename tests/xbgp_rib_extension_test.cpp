// The §2.1 "hidden arguments" RIB access: an extension installs routes into
// the router's RIB through the rib_add_route helper — state the bytecode
// itself could never reach, mediated by the execution context.
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using ebpf::Assembler;
using ebpf::Reg;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

/// For every exported route, additionally installs a host route (/32 of the
/// prefix address) towards a fixed "monitoring" nexthop — a miniature
/// version of the backup-route / telemetry-injection use cases §2.1 hints
/// at, exercising ctx_malloc-free stack composition + the RIB helper.
ebpf::Program rib_mirror_program() {
  Assembler a;
  auto yield = a.make_label();

  a.mov64(Reg::R1, xbgp::arg::kPrefix);
  a.call(xbgp::helper::kGetArg);
  a.jeq(Reg::R0, 0, yield);
  // Copy the PrefixArg to the stack and override the length with 32.
  a.ldxdw(Reg::R2, Reg::R0, 0);
  a.stxdw(Reg::R10, -8, Reg::R2);
  a.stb(Reg::R10, -4, 32);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, -8);
  a.lddw(Reg::R2, 0x7F000001);  // 127.0.0.1 as the marker nexthop
  a.call(xbgp::helper::kRibAddRoute);

  a.place(yield);
  a.call(xbgp::helper::kNext);
  a.mov64(Reg::R0, 0);
  a.exit_();
  return a.build("rib_mirror");
}

template <typename T>
class RibExtensionTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(RibExtensionTest, RouterTypes);

TYPED_TEST(RibExtensionTest, ExtensionInstallsHostRoutesViaHiddenRibAccess) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);

  xbgp::Manifest manifest;
  manifest.attach("rib_mirror", xbgp::Op::kOutboundFilter, rib_mirror_program());
  dut.load_extensions(manifest);

  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = 50;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);

  // Every exported prefix produced a /32 host route towards the marker.
  std::size_t mirrored = 0;
  for (const auto& route : workload.routes) {
    const auto host = dut.fib_lookup(Prefix(route.prefix.addr(), 32));
    if (host && *host == Ipv4Addr(0x7F000001)) ++mirrored;
    // The regular BGP FIB entry is untouched.
    EXPECT_EQ(dut.fib_lookup(route.prefix), plan.upstream_addr) << route.prefix.str();
  }
  EXPECT_EQ(mirrored, workload.prefix_count);
  EXPECT_EQ(dut.stats().extension_faults, 0u);
}

}  // namespace
