// Differential gate for the RibOut peer-group export engine: the per-peer
// engine is the oracle. The SAME scenario — establishment storm, announce
// waves, withdraw/re-announce churn, a route refresh of one group member,
// reevaluate_exports(), a peer loss, local origination and a runtime
// extension load (which re-keys the peer groups) — must leave every peer
// with a bit-identical wire byte stream and an identical Adj-RIB-Out view
// under both engines, on both hosts, at parallelism 1 / 2 / 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "extensions/route_reflection.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "util/bytes.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

using Fir = hosts::fir::FirRouter;
using Wren = hosts::wren::WrenRouter;
using hosts::engine::ExportEngine;

constexpr std::uint64_t kSec = 1'000'000'000ull;

template <typename RouterT>
using CoreOf = std::conditional_t<std::is_same_v<RouterT, Fir>, hosts::fir::FirCore,
                                  hosts::wren::WrenCore>;

template <typename T>
class ExportDifferentialTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<Fir, Wren>;
TYPED_TEST_SUITE(ExportDifferentialTest, RouterTypes);

/// The six DUT peers: two iBGP reflector clients, one iBGP plain, one iBGP
/// with nexthop-self, two eBGP neighbours in distinct ASes — five RibOut
/// keys, one of them shared by two members.
struct PeerSpec {
  bgp::Asn asn;
  bool rr_client;
  bool next_hop_self;
};
constexpr PeerSpec kPeers[] = {
    {65000, true, false},  {65000, true, false},  {65000, false, false},
    {65000, false, true},  {65201, false, false}, {65202, false, false},
};
constexpr std::size_t kPeerCount = std::size(kPeers);

/// Everything the two engines must agree on, per peer.
struct ExportSnapshot {
  /// Raw UPDATE wire streams, per peer, in arrival order.
  std::vector<std::vector<std::vector<std::uint8_t>>> raw;
  /// Adj-RIB-Out views: (prefix, wire attr bytes), sorted by prefix.
  std::vector<std::vector<std::pair<Prefix, std::vector<std::uint8_t>>>> adj_out;
  std::vector<Prefix> loc_rib;
  std::uint64_t exports_rejected = 0;
  std::uint64_t updates_out = 0;
  /// Messages other peers received while ONLY peer 1's refresh was pending
  /// (must be zero: a refresh replays the group RIB to that member alone).
  std::uint64_t refresh_spill = 0;
  /// Advertisements of the double-announced prefix observed by peer 0 after
  /// the duplicate-queue burst (must be 1: work lists dedupe per cycle).
  std::uint64_t dup_burst_messages = 0;
};

std::vector<std::uint8_t> attr_bytes(const bgp::AttributeSet& set) {
  util::ByteWriter w;
  set.encode(w);
  return {w.view().begin(), w.view().end()};
}

template <typename RouterT>
ExportSnapshot run_scenario(ExportEngine engine, std::size_t parallelism) {
  using Core = CoreOf<RouterT>;
  net::EventLoop loop;

  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = parallelism;
  cfg.export_engine = engine;
  RouterT dut(loop, cfg);

  // Scripted raw eBGP feeder (withdraw/re-announce needs a raw session).
  net::Duplex feed(loop, 1000);
  dut.add_peer(feed.a(), {.name = "feed", .asn = 65100, .address = Ipv4Addr(10, 0, 0, 9)});

  std::vector<std::unique_ptr<net::Duplex>> links;
  std::vector<std::unique_ptr<harness::Sink>> sinks;
  std::vector<hosts::engine::PeerId> ids;
  for (std::size_t i = 0; i < kPeerCount; ++i) {
    const PeerSpec& ps = kPeers[i];
    links.push_back(std::make_unique<net::Duplex>(loop, 1000));
    const Ipv4Addr addr(10, 0, 1, static_cast<std::uint8_t>(i + 1));
    ids.push_back(dut.add_peer(links.back()->a(), {.name = "peer",
                                                   .asn = ps.asn,
                                                   .address = addr,
                                                   .rr_client = ps.rr_client,
                                                   .next_hop_self = ps.next_hop_self}));
    bgp::PeerSession::Config sc;
    sc.local_asn = ps.asn;
    sc.peer_asn = 65000;
    sc.local_id = 0x0A000100 + static_cast<std::uint32_t>(i);
    sc.local_addr = addr;
    sc.peer_addr = cfg.address;
    sinks.push_back(std::make_unique<harness::Sink>(loop, links.back()->b(), sc));
    sinks.back()->record_raw(true);
  }

  dut.start();
  for (auto& sink : sinks) sink->start();

  bgp::OpenMessage open;
  open.asn = 65100;
  open.my_as_2octet = 65100;
  open.hold_time = 90;
  open.bgp_id = 0x0A000009;
  feed.b().write(bgp::encode_open(open));
  feed.b().write(bgp::encode_keepalive());
  loop.run_until(kSec);

  auto prefix_at = [](std::size_t i) {
    return Prefix(Ipv4Addr(10, 70, static_cast<std::uint8_t>(i), 0), 24);
  };
  auto announce = [&](std::size_t lo, std::size_t hi, std::uint32_t med) {
    bgp::UpdateMessage m;
    m.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    m.attrs.put(bgp::AsPath({65100, static_cast<bgp::Asn>(64000 + med % 5)}).to_attr());
    m.attrs.put(bgp::make_next_hop(Ipv4Addr(10, 0, 0, 9)));
    m.attrs.put(bgp::make_med(med));
    for (std::size_t i = lo; i < hi; ++i) m.nlri.push_back(prefix_at(i));
    feed.b().write(bgp::encode_update(m));
  };
  auto withdraw = [&](std::size_t lo, std::size_t hi) {
    bgp::UpdateMessage m;
    for (std::size_t i = lo; i < hi; ++i) m.withdrawn.push_back(prefix_at(i));
    feed.b().write(bgp::encode_update(m));
  };
  auto messages_seen = [&] {
    std::vector<std::size_t> counts;
    for (auto& sink : sinks) counts.push_back(sink->raw().size());
    return counts;
  };

  // Announce waves: three attribute groups across 24 prefixes.
  announce(0, 10, 100);
  announce(10, 18, 100);
  announce(18, 24, 5);
  loop.run_until(loop.now() + kSec);

  // Churn: withdraw a slice, re-announce an overlapping slice with new
  // attributes — withdraw-then-announce through the builders.
  withdraw(4, 9);
  announce(6, 12, 40);
  loop.run_until(loop.now() + kSec);

  // Duplicate-queue burst: the same prefix queued twice within one flush
  // cycle (two back-to-back implicit replacements) must reach the peers as
  // ONE advertisement carrying the final attributes.
  const auto before_dup = messages_seen();
  announce(3, 4, 71);
  announce(3, 4, 72);
  loop.run_until(loop.now() + kSec);
  ExportSnapshot snap;
  {
    std::uint64_t dup_msgs = 0;
    const auto& raw = sinks[0]->raw();
    for (std::size_t m = before_dup[0]; m < raw.size(); ++m) {
      const auto frame = bgp::try_frame(raw[m]);
      const auto update = bgp::decode_update(frame->body);
      for (const auto& p : update->nlri) {
        if (p == prefix_at(3)) ++dup_msgs;
      }
    }
    snap.dup_burst_messages = dup_msgs;
  }

  // RFC 2918 refresh of ONE member of the shared (rr_client) group: the
  // group RIB replays to that member alone; no other peer hears anything.
  const auto before_refresh = messages_seen();
  sinks[1]->session().send_route_refresh();
  loop.run_until(loop.now() + kSec);
  for (std::size_t i = 0; i < kPeerCount; ++i) {
    if (i == 1) continue;
    snap.refresh_spill += sinks[i]->raw().size() - before_refresh[i];
  }

  // Outbound policy "changed": re-run export processing for everything.
  dut.reevaluate_exports();
  loop.run_until(loop.now() + kSec);

  // Peer loss mid-run: one member of the shared eBGP-65201... peer 4 is a
  // solo group here, peer 1 shares with 0 — drop peer 1 so the group
  // continues with a single member.
  sinks[1]->session().stop();
  withdraw(20, 22);
  announce(2, 5, 9);
  loop.run_until(loop.now() + kSec);

  // Local origination joins the export stream.
  dut.originate(Prefix::parse("203.0.113.0/24"));
  loop.run_until(loop.now() + kSec);

  // Runtime extension load: outbound/encode extensions change the export
  // identity — RibOut mode re-keys every peer group — then more churn.
  dut.load_extensions(ext::route_reflection_manifest());
  announce(12, 16, 7);
  withdraw(0, 1);
  loop.run_until(loop.now() + 2 * kSec);

  snap.raw.reserve(kPeerCount);
  for (auto& sink : sinks) snap.raw.push_back(sink->raw());
  for (std::size_t i = 0; i < kPeerCount; ++i) {
    std::vector<std::pair<Prefix, std::vector<std::uint8_t>>> view;
    dut.for_each_adj_rib_out(ids[i], [&](const Prefix& prefix, const auto& attrs) {
      view.emplace_back(prefix, attr_bytes(Core::to_wire(*attrs)));
    });
    std::sort(view.begin(), view.end());
    snap.adj_out.push_back(std::move(view));
  }
  snap.loc_rib = dut.loc_rib_prefixes();
  snap.exports_rejected = dut.stats().exports_rejected;
  snap.updates_out = dut.stats().updates_out;
  return snap;
}

void expect_equal(const ExportSnapshot& ribout, const ExportSnapshot& oracle,
                  std::size_t parallelism) {
  ASSERT_EQ(ribout.raw.size(), oracle.raw.size());
  for (std::size_t peer = 0; peer < oracle.raw.size(); ++peer) {
    ASSERT_EQ(ribout.raw[peer].size(), oracle.raw[peer].size())
        << "peer " << peer << " message count differs at parallelism " << parallelism;
    for (std::size_t m = 0; m < oracle.raw[peer].size(); ++m) {
      EXPECT_EQ(ribout.raw[peer][m], oracle.raw[peer][m])
          << "peer " << peer << " message " << m << " wire bytes differ at parallelism "
          << parallelism;
    }
  }
  ASSERT_EQ(ribout.adj_out.size(), oracle.adj_out.size());
  for (std::size_t peer = 0; peer < oracle.adj_out.size(); ++peer) {
    EXPECT_EQ(ribout.adj_out[peer], oracle.adj_out[peer])
        << "peer " << peer << " Adj-RIB-Out view differs at parallelism " << parallelism;
  }
  EXPECT_EQ(ribout.loc_rib, oracle.loc_rib);
  EXPECT_EQ(ribout.exports_rejected, oracle.exports_rejected);
  EXPECT_EQ(ribout.updates_out, oracle.updates_out);
}

TYPED_TEST(ExportDifferentialTest, RibOutMatchesPerPeerOracle) {
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto oracle = run_scenario<TypeParam>(ExportEngine::kPerPeer, parallelism);
    const auto ribout = run_scenario<TypeParam>(ExportEngine::kRibOut, parallelism);

    // The scenario must leave real state on every live peer or the
    // comparison is hollow.
    for (std::size_t peer = 0; peer < kPeerCount; ++peer) {
      if (peer == 1) continue;  // dropped mid-run
      ASSERT_FALSE(oracle.adj_out[peer].empty()) << "peer " << peer;
      ASSERT_FALSE(oracle.raw[peer].empty()) << "peer " << peer;
    }
    ASSERT_TRUE(oracle.adj_out[1].empty());  // down peer advertises nothing

    // S1 regression: the double-queued prefix went out exactly once.
    EXPECT_EQ(oracle.dup_burst_messages, 1u);
    EXPECT_EQ(ribout.dup_burst_messages, 1u);
    // A refresh of one group member replayed to that member only.
    EXPECT_EQ(oracle.refresh_spill, 0u);
    EXPECT_EQ(ribout.refresh_spill, 0u);

    expect_equal(ribout, oracle, parallelism);
  }
}

/// Across parallelism levels the advertised *views* are invariant. (The raw
/// streams are not comparable across parallelism: flush boundaries follow
/// ingest batching, so the same routes pack into different message splits —
/// equally true of the per-peer engine, which is why bit-identity is gated
/// against the oracle at each level above, not across levels.)
TYPED_TEST(ExportDifferentialTest, RibOutViewsParallelismInvariant) {
  const auto p1 = run_scenario<TypeParam>(ExportEngine::kRibOut, 1);
  const auto p8 = run_scenario<TypeParam>(ExportEngine::kRibOut, 8);
  ASSERT_EQ(p8.adj_out.size(), p1.adj_out.size());
  for (std::size_t peer = 0; peer < p1.adj_out.size(); ++peer) {
    EXPECT_EQ(p8.adj_out[peer], p1.adj_out[peer])
        << "peer " << peer << " Adj-RIB-Out view differs across parallelism";
  }
  EXPECT_EQ(p8.loc_rib, p1.loc_rib);
}

}  // namespace
