// The policy engine: match clauses, set actions, entry ordering, defaults,
// and the FRR-style `match rpki` semantics.
#include <gtest/gtest.h>

#include "bgp/policy.hpp"
#include "rpki/roa_hash.hpp"
#include "rpki/rtr_client.hpp"

namespace {

using namespace xb;
using namespace xb::bgp::policy;
using util::Ipv4Addr;
using util::Prefix;

RouteFacts facts_for(const char* prefix, std::vector<bgp::Asn> path = {65001},
                     std::vector<std::uint32_t> comms = {}) {
  static std::vector<bgp::Asn> path_storage;
  static std::vector<std::uint32_t> comm_storage;
  path_storage = std::move(path);
  comm_storage = std::move(comms);
  RouteFacts facts;
  facts.prefix = Prefix::parse(prefix);
  facts.as_path = path_storage;
  facts.origin_asn = path_storage.empty() ? std::nullopt
                                          : std::optional(path_storage.back());
  facts.communities = comm_storage;
  return facts;
}

TEST(Policy, EmptyMapUsesDefaultAction) {
  RouteMap deny("D", Action::kDeny);
  RouteMap permit("P", Action::kPermit);
  auto facts = facts_for("10.0.0.0/8");
  EXPECT_FALSE(deny.evaluate(facts).permitted);
  EXPECT_TRUE(permit.evaluate(facts).permitted);
  EXPECT_EQ(deny.evaluate(facts).decided_by_seq, -1);
}

TEST(Policy, EntriesEvaluateInSeqOrder) {
  RouteMap map("M", Action::kDeny);
  map.add_entry(20, Action::kDeny);    // matches everything (no clauses)
  map.add_entry(10, Action::kPermit);  // added later but lower seq
  auto facts = facts_for("10.0.0.0/8");
  const auto verdict = map.evaluate(facts);
  EXPECT_TRUE(verdict.permitted);
  EXPECT_EQ(verdict.decided_by_seq, 10);
}

TEST(Policy, AllMatchesMustHold) {
  RouteMap map("M", Action::kPermit);
  auto& entry = map.add_entry(10, Action::kDeny);
  entry.matches.push_back(std::make_unique<MatchAsPathContains>(666));
  entry.matches.push_back(std::make_unique<MatchCommunity>(0x00010002));
  // Only one of the two clauses holds -> entry does not match -> default.
  auto facts = facts_for("10.0.0.0/8", {666, 65001});
  EXPECT_TRUE(map.evaluate(facts).permitted);
  // Both hold -> deny.
  auto facts2 = facts_for("10.0.0.0/8", {666}, {0x00010002});
  EXPECT_FALSE(map.evaluate(facts2).permitted);
}

TEST(Policy, PrefixListGeLe) {
  MatchPrefixList match({PrefixRule{Prefix::parse("10.0.0.0/8"), 16, 24}});
  auto inside = facts_for("10.1.0.0/16");
  auto too_short = facts_for("10.0.0.0/12");
  auto too_long = facts_for("10.1.2.128/25");
  auto other = facts_for("11.0.0.0/16");
  EXPECT_TRUE(match.matches(inside));
  EXPECT_FALSE(match.matches(too_short));
  EXPECT_FALSE(match.matches(too_long));
  EXPECT_FALSE(match.matches(other));
}

TEST(Policy, PrefixListGeZeroMeansExactLengthLowerBound) {
  MatchPrefixList match({PrefixRule{Prefix::parse("10.0.0.0/8"), 0, 32}});
  auto exact = facts_for("10.0.0.0/8");
  auto longer = facts_for("10.255.0.0/16");
  EXPECT_TRUE(match.matches(exact));
  EXPECT_TRUE(match.matches(longer));
}

TEST(Policy, AsPathLengthBounds) {
  MatchAsPathLength match(2, 3);
  auto one = facts_for("10.0.0.0/8", {1});
  auto two = facts_for("10.0.0.0/8", {1, 2});
  auto four = facts_for("10.0.0.0/8", {1, 2, 3, 4});
  EXPECT_FALSE(match.matches(one));
  EXPECT_TRUE(match.matches(two));
  EXPECT_FALSE(match.matches(four));
}

TEST(Policy, NexthopMetricClause) {
  MatchNexthopMetricAtMost match(100);
  auto facts = facts_for("10.0.0.0/8");
  facts.igp_metric_to_nexthop = 100;
  EXPECT_TRUE(match.matches(facts));
  facts.igp_metric_to_nexthop = 101;
  EXPECT_FALSE(match.matches(facts));
}

TEST(Policy, SetActionsApplyOnlyOnMatchingEntry) {
  RouteMap map("M", Action::kDeny);
  auto& miss = map.add_entry(10, Action::kPermit);
  miss.matches.push_back(std::make_unique<MatchAsPathContains>(999));
  miss.sets.push_back(std::make_unique<SetLocalPref>(50));
  auto& hit = map.add_entry(20, Action::kPermit);
  hit.sets.push_back(std::make_unique<SetLocalPref>(200));
  hit.sets.push_back(std::make_unique<SetMed>(5));
  hit.sets.push_back(std::make_unique<AddCommunity>(0xFFFF0001));

  auto facts = facts_for("10.0.0.0/8");
  EXPECT_TRUE(map.evaluate(facts).permitted);
  EXPECT_EQ(facts.new_local_pref, 200u);
  EXPECT_EQ(facts.new_med, 5u);
  ASSERT_EQ(facts.added_communities.size(), 1u);
  EXPECT_EQ(facts.added_communities[0], 0xFFFF0001u);
}

TEST(Policy, MatchRpkiComputesAndRecordsState) {
  rpki::RoaHashTable table;
  table.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  MatchRpki valid(&table, MatchRpki::Want::kValid);
  MatchRpki invalid(&table, MatchRpki::Want::kInvalid);
  MatchRpki any(&table, MatchRpki::Want::kAny);

  auto good = facts_for("10.1.0.0/16", {65001});
  EXPECT_TRUE(valid.matches(good));
  EXPECT_EQ(good.new_meta, static_cast<std::uint32_t>(rpki::Validity::kValid));

  auto bad = facts_for("10.1.0.0/16", {64999});
  EXPECT_TRUE(invalid.matches(bad));
  EXPECT_EQ(bad.new_meta, static_cast<std::uint32_t>(rpki::Validity::kInvalid));

  auto unknown = facts_for("192.0.2.0/24", {65001});
  EXPECT_TRUE(any.matches(unknown));
  EXPECT_EQ(unknown.new_meta, static_cast<std::uint32_t>(rpki::Validity::kNotFound));
}

TEST(Policy, MatchRpkiNoOriginIsNotFound) {
  rpki::RoaHashTable table;
  table.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  MatchRpki any(&table, MatchRpki::Want::kAny);
  auto facts = facts_for("10.0.0.0/8", {});
  EXPECT_TRUE(any.matches(facts));
  EXPECT_EQ(facts.new_meta, static_cast<std::uint32_t>(rpki::Validity::kNotFound));
}

TEST(Policy, StandardImportPolicyDropsBogons) {
  const auto map = standard_import_policy();
  auto bogon = facts_for("127.1.2.0/24");
  EXPECT_FALSE(map.evaluate(bogon).permitted);
  auto multicast = facts_for("224.1.0.0/16");
  EXPECT_FALSE(map.evaluate(multicast).permitted);
  auto normal = facts_for("193.0.0.0/21");
  EXPECT_TRUE(map.evaluate(normal).permitted);
}

TEST(Policy, StandardImportPolicyLiftsCustomerPreference) {
  const auto map = standard_import_policy();
  auto customer = facts_for("193.0.0.0/21", {65001}, {(65000u << 16) | 100});
  EXPECT_TRUE(map.evaluate(customer).permitted);
  EXPECT_EQ(customer.new_local_pref, 200u);
}

TEST(Policy, StandardImportPolicyDropsAbsurdPaths) {
  const auto map = standard_import_policy();
  std::vector<bgp::Asn> long_path(70, 65001);
  auto facts = facts_for("193.0.0.0/21", std::move(long_path));
  EXPECT_FALSE(map.evaluate(facts).permitted);
}

TEST(Policy, StandardImportWithRpkiTagsEveryPermittedRoute) {
  rpki::RoaHashTable table;
  table.add({Prefix::parse("193.0.0.0/21"), 24, 65001});
  const auto map = standard_import_policy(&table);
  auto facts = facts_for("193.0.0.0/21", {65001});
  EXPECT_TRUE(map.evaluate(facts).permitted);
  EXPECT_EQ(facts.new_meta, static_cast<std::uint32_t>(rpki::Validity::kValid));
}

TEST(Policy, StandardExportPolicyDropsPrivateSpace) {
  const auto map = standard_export_policy();
  auto rfc1918 = facts_for("192.168.10.0/24");
  EXPECT_FALSE(map.evaluate(rfc1918).permitted);
  auto public_prefix = facts_for("193.0.0.0/21");
  EXPECT_TRUE(map.evaluate(public_prefix).permitted);
}

TEST(Policy, ClauseTelemetryAccumulates) {
  const auto map = standard_import_policy();
  auto facts = facts_for("193.0.0.0/21");
  (void)map.evaluate(facts);
  EXPECT_GT(map.clauses_evaluated(), 0u);
}

TEST(Policy, DescribeRendersReadableConfig) {
  const auto map = standard_import_policy();
  const auto text = map.describe();
  EXPECT_NE(text.find("route-map IMPORT"), std::string::npos);
  EXPECT_NE(text.find("prefix-list"), std::string::npos);
  EXPECT_NE(text.find("permit 40"), std::string::npos);
}

TEST(LockedRoaTable, DelegatesWithSameSemantics) {
  rpki::RoaHashTable inner;
  rpki::LockedRoaTable locked(inner);
  locked.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  EXPECT_EQ(locked.size(), 1u);
  EXPECT_EQ(locked.validate(Prefix::parse("10.1.0.0/16"), 65001), rpki::Validity::kValid);
  EXPECT_EQ(locked.validate(Prefix::parse("10.1.0.0/16"), 64999), rpki::Validity::kInvalid);
  EXPECT_EQ(locked.validate(Prefix::parse("192.0.2.0/24"), 65001), rpki::Validity::kNotFound);
}

}  // namespace
