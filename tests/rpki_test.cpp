// RPKI substrate: RFC 6811 semantics, trie/hash equivalence, loader.
#include <gtest/gtest.h>

#include "rpki/loader.hpp"
#include "rpki/roa_lpfst.hpp"
#include "rpki/roa_hash.hpp"
#include "rpki/roa_trie.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb::rpki;
using xb::util::Ipv4Addr;
using xb::util::Prefix;

template <typename Table>
Table with(std::vector<Roa> roas) {
  Table t;
  for (const auto& r : roas) t.add(r);
  return t;
}

// Typed tests: both structures must implement identical semantics.
template <typename T>
class RoaTableTest : public ::testing::Test {};
using TableTypes = ::testing::Types<RoaTrie, RoaHashTable, LpfstRoaTable>;
TYPED_TEST_SUITE(RoaTableTest, TableTypes);

TYPED_TEST(RoaTableTest, NotFoundWhenNoCoveringRoa) {
  auto t = with<TypeParam>({{Prefix::parse("10.0.0.0/8"), 24, 65001}});
  EXPECT_EQ(t.validate(Prefix::parse("192.0.2.0/24"), 65001), Validity::kNotFound);
}

TYPED_TEST(RoaTableTest, ValidExactMatch) {
  auto t = with<TypeParam>({{Prefix::parse("10.0.0.0/8"), 24, 65001}});
  EXPECT_EQ(t.validate(Prefix::parse("10.0.0.0/8"), 65001), Validity::kValid);
}

TYPED_TEST(RoaTableTest, ValidMoreSpecificWithinMaxLength) {
  auto t = with<TypeParam>({{Prefix::parse("10.0.0.0/8"), 24, 65001}});
  EXPECT_EQ(t.validate(Prefix::parse("10.1.2.0/24"), 65001), Validity::kValid);
}

TYPED_TEST(RoaTableTest, InvalidWhenTooSpecific) {
  auto t = with<TypeParam>({{Prefix::parse("10.0.0.0/8"), 16, 65001}});
  EXPECT_EQ(t.validate(Prefix::parse("10.1.2.0/24"), 65001), Validity::kInvalid);
}

TYPED_TEST(RoaTableTest, InvalidWhenWrongOrigin) {
  auto t = with<TypeParam>({{Prefix::parse("10.0.0.0/8"), 24, 65001}});
  EXPECT_EQ(t.validate(Prefix::parse("10.1.2.0/24"), 65999), Validity::kInvalid);
}

TYPED_TEST(RoaTableTest, AnyMatchingRoaMakesValid) {
  // Two ROAs cover; one matches. RFC 6811: Valid wins over Invalid.
  auto t = with<TypeParam>({{Prefix::parse("10.0.0.0/8"), 24, 65001},
                            {Prefix::parse("10.1.0.0/16"), 24, 65002}});
  EXPECT_EQ(t.validate(Prefix::parse("10.1.2.0/24"), 65002), Validity::kValid);
  EXPECT_EQ(t.validate(Prefix::parse("10.1.2.0/24"), 65001), Validity::kValid);
  EXPECT_EQ(t.validate(Prefix::parse("10.1.2.0/24"), 64999), Validity::kInvalid);
}

TYPED_TEST(RoaTableTest, EmptyTableIsAllNotFound) {
  TypeParam t;
  EXPECT_EQ(t.validate(Prefix::parse("10.0.0.0/8"), 1), Validity::kNotFound);
  EXPECT_EQ(t.size(), 0u);
}

TYPED_TEST(RoaTableTest, DefaultRouteRoaCoversEverything) {
  auto t = with<TypeParam>({{Prefix::parse("0.0.0.0/0"), 32, 65001}});
  EXPECT_EQ(t.validate(Prefix::parse("203.0.113.0/24"), 65001), Validity::kValid);
  EXPECT_EQ(t.validate(Prefix::parse("203.0.113.0/24"), 65002), Validity::kInvalid);
}

// Property: the two structures agree on random workloads.
TEST(RoaEquivalence, AllStructuresAgreeOnRandomInput) {
  xb::util::Rng rng(20200604);
  RoaTrie trie;
  RoaHashTable hash;
  LpfstRoaTable lpfst;
  std::vector<Roa> roas;
  for (int i = 0; i < 2000; ++i) {
    const auto len = static_cast<std::uint8_t>(8 + rng.below(17));  // 8..24
    Roa roa{Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.next())), len),
            static_cast<std::uint8_t>(len + rng.below(static_cast<std::uint64_t>(33 - len))),
            static_cast<xb::bgp::Asn>(1 + rng.below(100))};
    trie.add(roa);
    hash.add(roa);
    lpfst.add(roa);
    roas.push_back(roa);
  }
  for (int i = 0; i < 5000; ++i) {
    Prefix q(Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
             static_cast<std::uint8_t>(rng.below(33)));
    const auto origin = static_cast<xb::bgp::Asn>(1 + rng.below(100));
    const auto expected = trie.validate(q, origin);
    EXPECT_EQ(expected, hash.validate(q, origin)) << q.str() << " origin " << origin;
    EXPECT_EQ(expected, lpfst.validate(q, origin)) << q.str() << " origin " << origin;
  }
}

TEST(RoaEquivalence, LpfstRedescendsPerCoveringNode) {
  // The rtrlib cost model: k covering nodes -> k+1 descents.
  LpfstRoaTable lpfst;
  lpfst.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  lpfst.add({Prefix::parse("10.1.0.0/16"), 24, 65001});
  RoaTrie trie;
  trie.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  trie.add({Prefix::parse("10.1.0.0/16"), 24, 65001});
  (void)lpfst.validate(Prefix::parse("10.1.2.0/24"), 65001);
  (void)trie.validate(Prefix::parse("10.1.2.0/24"), 65001);
  // Three descents (2 covering + 1 empty) against the trie's single walk.
  EXPECT_GT(lpfst.nodes_visited(), 2 * trie.nodes_visited());
}

TEST(RoaLoader, ValidFractionRespected) {
  std::vector<AnnouncedRoute> routes;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    routes.push_back({Prefix(Ipv4Addr(0x14000000u + (i << 8)), 24),
                      static_cast<xb::bgp::Asn>(100 + i % 50)});
  }
  RoaSetParams params;  // 75% valid
  const auto roas = make_roa_set(routes, params);
  RoaHashTable table;
  fill_table(table, roas);
  std::size_t valid = 0, invalid = 0, not_found = 0;
  for (const auto& r : routes) {
    switch (table.validate(r.prefix, r.origin)) {
      case Validity::kValid: ++valid; break;
      case Validity::kInvalid: ++invalid; break;
      case Validity::kNotFound: ++not_found; break;
    }
  }
  EXPECT_NEAR(valid / static_cast<double>(routes.size()), 0.75, 0.02);
  EXPECT_GT(invalid, 0u);
  EXPECT_GT(not_found, 0u);
}

TEST(RoaLoader, TextRoundTrip) {
  std::vector<Roa> roas{{Prefix::parse("10.0.0.0/8"), 24, 65001},
                        {Prefix::parse("192.0.2.0/24"), 24, 4200000000u}};
  const auto text = to_text(roas);
  EXPECT_EQ(from_text(text), roas);
}

TEST(RoaLoader, TextRejectsGarbage) {
  EXPECT_THROW(from_text("not a roa line"), std::invalid_argument);
}

TEST(RoaLoader, TextSkipsCommentsAndBlanks) {
  const auto roas = from_text("# comment\n\n10.0.0.0/8-24 65001\n");
  ASSERT_EQ(roas.size(), 1u);
  EXPECT_EQ(roas[0].origin, 65001u);
}

TEST(RoaTelemetry, TrieCountsNodeVisits) {
  RoaTrie trie;
  trie.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  (void)trie.validate(Prefix::parse("10.1.2.0/24"), 65001);
  EXPECT_GT(trie.nodes_visited(), 0u);
}

TEST(RoaTelemetry, HashCountsProbes) {
  RoaHashTable hash;
  hash.add({Prefix::parse("10.0.0.0/8"), 24, 65001});
  (void)hash.validate(Prefix::parse("10.1.2.0/24"), 65001);
  EXPECT_GT(hash.probes(), 0u);
}

}  // namespace
