// Simulated network: event loop ordering and byte-stream pipes.
#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "net/event_loop.hpp"

namespace {

using namespace xb::net;

TEST(EventLoop, RunsInTimeThenFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(20, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(10, [&] { order.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 20u);
}

TEST(EventLoop, PostRunsAtCurrentTime) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(5, [&] {
    order.push_back(1);
    loop.post([&] { order.push_back(2); });
  });
  loop.schedule(6, [&] { order.push_back(3); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, RunUntilLeavesLaterEvents) {
  EventLoop loop;
  int ran = 0;
  loop.schedule(10, [&] { ++ran; });
  loop.schedule(100, [&] { ++ran; });
  loop.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 50u);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, LivelockGuardThrows) {
  EventLoop loop;
  std::function<void()> self = [&] { loop.post(self); };
  loop.post(self);
  EXPECT_THROW(loop.run_until_idle(1000), std::runtime_error);
}

TEST(Pipe, DeliversAfterLatency) {
  EventLoop loop;
  Pipe pipe(loop, 500);
  const std::uint8_t data[] = {1, 2, 3};
  bool notified = false;
  pipe.on_readable([&] { notified = true; });
  pipe.write(data);
  EXPECT_EQ(pipe.readable_bytes(), 0u);  // not yet delivered
  loop.run_until_idle();
  EXPECT_TRUE(notified);
  EXPECT_EQ(loop.now(), 500u);
  EXPECT_EQ(pipe.read_all(), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Pipe, CoalescesWritesInFlight) {
  EventLoop loop;
  Pipe pipe(loop, 100);
  int notifications = 0;
  pipe.on_readable([&] { ++notifications; });
  const std::uint8_t a[] = {1};
  const std::uint8_t b[] = {2, 3};
  pipe.write(a);
  pipe.write(b);
  loop.run_until_idle();
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(pipe.read_all().size(), 3u);
  EXPECT_EQ(pipe.bytes_written(), 3u);
}

TEST(Pipe, PreservesByteOrderAcrossDeliveries) {
  EventLoop loop;
  Pipe pipe(loop, 10);
  std::vector<std::uint8_t> received;
  pipe.on_readable([&] {
    auto chunk = pipe.read_all();
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  for (std::uint8_t i = 0; i < 10; ++i) {
    pipe.write(std::span(&i, 1));
    loop.run_until_idle();
  }
  EXPECT_EQ(received.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

TEST(Duplex, EndsAreCrossConnected) {
  EventLoop loop;
  Duplex duplex(loop, 0);
  auto a = duplex.a();
  auto b = duplex.b();
  const std::uint8_t ping[] = {42};
  a.write(ping);
  loop.run_until_idle();
  EXPECT_EQ(b.read_all(), (std::vector<std::uint8_t>{42}));
  const std::uint8_t pong[] = {24};
  b.write(pong);
  loop.run_until_idle();
  EXPECT_EQ(a.read_all(), (std::vector<std::uint8_t>{24}));
}

TEST(Pipe, CloseSignalsEof) {
  EventLoop loop;
  Duplex duplex(loop, 0);
  auto a = duplex.a();
  auto b = duplex.b();
  int wakeups = 0;
  b.on_readable([&] { ++wakeups; });
  a.close();
  loop.run_until_idle();
  EXPECT_GE(wakeups, 1);
  EXPECT_TRUE(b.peer_closed());
}

}  // namespace
