// Differential fir/wren conformance: the SAME workload and the SAME
// extension bytecode run through both host implementations must leave
// attribute-for-attribute identical RIBs and emit equivalent wire output.
//
// This is the paper's portability claim turned into an oracle: Fir stores
// attributes FRR-style (decoded structs), Wren BIRD-style (cached wire
// blobs); normalising both through Core::to_wire exposes any divergence in
// decode, API conversion, chain execution or encode. All four paper use
// cases are covered: route reflection (§3.2), origin validation (§3.4),
// GeoLoc tagging (§2) and valley-free filtering (§3.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "extensions/geoloc.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "extensions/valley_free.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

using Fir = hosts::fir::FirRouter;
using Wren = hosts::wren::WrenRouter;

constexpr std::uint64_t kSec = 1'000'000'000ull;

template <typename RouterT>
using CoreOf = std::conditional_t<std::is_same_v<RouterT, Fir>, hosts::fir::FirCore,
                                  hosts::wren::WrenCore>;

/// Host-independent view of a run: every stored attribute set normalised to
/// its wire representation, plus the stats both engines should agree on.
struct HostSnapshot {
  std::vector<std::pair<Prefix, bgp::AttributeSet>> loc_rib;
  std::vector<std::pair<Prefix, bgp::AttributeSet>> adj_in_upstream;
  std::vector<std::pair<Prefix, std::uint32_t>> meta_upstream;
  std::vector<std::pair<Prefix, bgp::AttributeSet>> adj_out_downstream;
  std::uint64_t sink_prefixes = 0;
  std::uint64_t sink_withdrawals = 0;
  bgp::UpdateMessage sink_last;
  std::uint64_t prefixes_accepted = 0, prefixes_rejected_in = 0;
  std::uint64_t exports_rejected = 0, extension_faults = 0;
  std::uint64_t ov_valid = 0, ov_invalid = 0, ov_not_found = 0;
  std::uint64_t malformed_updates = 0, treat_as_withdraw = 0, attrs_discarded = 0;
};

template <typename RouterT>
HostSnapshot capture(RouterT& dut, harness::Testbed<RouterT>& bed) {
  using Core = CoreOf<RouterT>;
  constexpr std::size_t kUp = 0, kDown = 1;  // Testbed peer registration order
  HostSnapshot s;
  for (const auto& prefix : dut.loc_rib_prefixes()) {
    s.loc_rib.emplace_back(prefix, Core::to_wire(*dut.best(prefix)->attrs));
  }
  dut.for_each_adj_rib_in(kUp, [&](const Prefix& prefix, const auto& attrs) {
    s.adj_in_upstream.emplace_back(prefix, Core::to_wire(*attrs));
    s.meta_upstream.emplace_back(prefix, dut.route_meta(kUp, prefix));
  });
  std::sort(s.adj_in_upstream.begin(), s.adj_in_upstream.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(s.meta_upstream.begin(), s.meta_upstream.end());
  dut.for_each_adj_rib_out(kDown, [&](const Prefix& prefix, const auto& attrs) {
    s.adj_out_downstream.emplace_back(prefix, Core::to_wire(*attrs));
  });
  std::sort(s.adj_out_downstream.begin(), s.adj_out_downstream.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  s.sink_prefixes = bed.sink().prefixes();
  s.sink_withdrawals = bed.sink().withdrawals();
  s.sink_last = bed.sink().last_update();
  const auto& st = dut.stats();
  s.prefixes_accepted = st.prefixes_accepted;
  s.prefixes_rejected_in = st.prefixes_rejected_in;
  s.exports_rejected = st.exports_rejected;
  s.extension_faults = st.extension_faults;
  s.ov_valid = st.ov_valid;
  s.ov_invalid = st.ov_invalid;
  s.ov_not_found = st.ov_not_found;
  s.malformed_updates = st.malformed_updates;
  s.treat_as_withdraw = st.treat_as_withdraw;
  s.attrs_discarded = st.attrs_discarded;
  return s;
}

/// Attribute-for-attribute comparison, reporting the first diverging prefix
/// rather than dumping both tables.
void expect_equal_rib(const char* what,
                      const std::vector<std::pair<Prefix, bgp::AttributeSet>>& fir,
                      const std::vector<std::pair<Prefix, bgp::AttributeSet>>& wren) {
  ASSERT_EQ(fir.size(), wren.size()) << what << ": table sizes differ";
  for (std::size_t i = 0; i < fir.size(); ++i) {
    EXPECT_TRUE(fir[i].first == wren[i].first)
        << what << "[" << i << "]: prefix order differs";
    EXPECT_TRUE(fir[i].second == wren[i].second)
        << what << "[" << i << "]: attributes differ for a prefix";
  }
}

void expect_equivalent(const HostSnapshot& fir, const HostSnapshot& wren) {
  expect_equal_rib("Loc-RIB", fir.loc_rib, wren.loc_rib);
  expect_equal_rib("Adj-RIB-In(upstream)", fir.adj_in_upstream, wren.adj_in_upstream);
  expect_equal_rib("Adj-RIB-Out(downstream)", fir.adj_out_downstream,
                   wren.adj_out_downstream);
  EXPECT_TRUE(fir.meta_upstream == wren.meta_upstream) << "route meta differs";
  EXPECT_EQ(fir.sink_prefixes, wren.sink_prefixes);
  EXPECT_EQ(fir.sink_withdrawals, wren.sink_withdrawals);
  EXPECT_TRUE(fir.sink_last == wren.sink_last) << "last wire UPDATE differs";
  EXPECT_EQ(fir.prefixes_accepted, wren.prefixes_accepted);
  EXPECT_EQ(fir.prefixes_rejected_in, wren.prefixes_rejected_in);
  EXPECT_EQ(fir.exports_rejected, wren.exports_rejected);
  EXPECT_EQ(fir.extension_faults, wren.extension_faults);
  EXPECT_EQ(fir.ov_valid, wren.ov_valid);
  EXPECT_EQ(fir.ov_invalid, wren.ov_invalid);
  EXPECT_EQ(fir.ov_not_found, wren.ov_not_found);
  EXPECT_EQ(fir.malformed_updates, wren.malformed_updates);
  EXPECT_EQ(fir.treat_as_withdraw, wren.treat_as_withdraw);
  EXPECT_EQ(fir.attrs_discarded, wren.attrs_discarded);
}

// --- §3.2 route reflection ----------------------------------------------------

template <typename RouterT>
HostSnapshot run_rr(const harness::Workload& workload, std::size_t parallelism,
                    hosts::engine::ExportEngine engine = hosts::engine::ExportEngine::kRibOut) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = parallelism;
  cfg.export_engine = engine;
  RouterT dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  return capture(dut, bed);
}

TEST(DifferentialHost, RouteReflection) {
  harness::WorkloadParams params;
  params.route_count = 400;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  // parallelism 2 on both hosts: the differential oracle doubles as a data
  // race probe when this test runs under TSan (tools/check.sh thread mode).
  const auto fir = run_rr<Fir>(workload, 2);
  const auto wren = run_rr<Wren>(workload, 2);
  ASSERT_FALSE(fir.loc_rib.empty());
  EXPECT_EQ(fir.extension_faults, 0u);
  expect_equivalent(fir, wren);
  // Reflection actually happened: the reflected routes carry ORIGINATOR_ID.
  EXPECT_NE(fir.sink_last.attrs.find(bgp::attr_code::kOriginatorId), nullptr);
}

// Peer-group export engine under the same oracle: the RibOut engine must
// leave RIBs, wire output and counters identical to the per-peer engine, to
// the other host, and to itself across parallelism 1 / 2 / 8. The full churn
// scenario lives in export_differential_test.cpp; this covers the cross-host
// axis with an extension loaded.
TEST(DifferentialHost, PeerGroupEngineAgreesAcrossHostsAndParallelism) {
  harness::WorkloadParams params;
  params.route_count = 300;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  std::vector<HostSnapshot> fir_runs;
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto fir = run_rr<Fir>(workload, parallelism, hosts::engine::ExportEngine::kRibOut);
    const auto wren = run_rr<Wren>(workload, parallelism, hosts::engine::ExportEngine::kRibOut);
    const auto oracle =
        run_rr<Fir>(workload, parallelism, hosts::engine::ExportEngine::kPerPeer);
    ASSERT_FALSE(fir.loc_rib.empty());
    expect_equivalent(fir, wren);
    expect_equivalent(fir, oracle);
    fir_runs.push_back(fir);
  }
  expect_equivalent(fir_runs[0], fir_runs[1]);
  expect_equivalent(fir_runs[0], fir_runs[2]);
}

// --- flight recorder parity ---------------------------------------------------

/// One provenance record rendered host-independently (program / peer ids are
/// load-order indices, identical on both hosts).
std::string prov_str(const Prefix& prefix, const obs::Provenance* p) {
  if (p == nullptr) return prefix.str() + " none";
  std::string s = prefix.str() + " serial=" + std::to_string(p->ingest_serial) +
                  " src=" + std::to_string(p->src_peer) +
                  " step=" + std::to_string(p->decision_step) + " muts=";
  for (std::size_t i = 0; i < p->mutator_entries(); ++i) {
    s += std::to_string(p->mutators[i]) + ":" +
         std::to_string(p->mutator_ops[i]) + ",";
  }
  return s;
}

/// Host- and parallelism-independent view of the flight recorder: the
/// provenance tables (ingest serials are assigned in arrival order on the
/// main thread, so their VALUES are deterministic at every parallelism),
/// the event stream stripped of its nondeterministic interleaving (event
/// serial, slot, timestamp) and sorted by content, and the flap verdict.
struct RecorderSnapshot {
  std::vector<std::string> loc, in_up, out_down;
  std::vector<std::tuple<std::uint8_t, std::uint32_t, std::uint8_t, std::uint32_t,
                         std::uint32_t, std::uint16_t, std::uint8_t, std::uint64_t,
                         std::uint64_t>>
      events;
  bool quiescent = false;
  std::size_t tracked = 0;
  std::uint64_t changes = 0, max_penalty = 0, recorded = 0;
};

template <typename RouterT>
RecorderSnapshot run_recorder_rr(const harness::Workload& workload,
                                 std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = parallelism;
  RouterT dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);

  RecorderSnapshot s;
  constexpr std::size_t kUp = 0, kDown = 1;
  for (const auto& prefix : dut.loc_rib_prefixes()) {
    s.loc.push_back(prov_str(prefix, dut.loc_rib_provenance(prefix)));
    s.in_up.push_back(prov_str(prefix, dut.adj_rib_in_provenance(kUp, prefix)));
    s.out_down.push_back(prov_str(prefix, dut.adj_rib_out_provenance(kDown, prefix)));
  }
  for (const auto& e : dut.telemetry().events().collect()) {
    s.events.emplace_back(static_cast<std::uint8_t>(e.kind), e.prefix_addr,
                          e.prefix_len, e.peer, e.old_peer, e.program, e.op,
                          e.route_serial, e.old_route_serial);
  }
  std::sort(s.events.begin(), s.events.end());
  const obs::FlapVerdict v = dut.flap_verdict();
  s.quiescent = v.quiescent;
  s.tracked = v.tracked_prefixes;
  s.changes = v.total_changes;
  s.max_penalty = v.max_penalty;
  // recorded_total is parallelism-invariant (same events, different slots);
  // dropped_total is NOT (per-slot rings), so it stays out of the snapshot.
  s.recorded = dut.telemetry().events().recorded_total();
  return s;
}

void expect_recorder_equal(const RecorderSnapshot& a, const RecorderSnapshot& b) {
  EXPECT_EQ(a.loc, b.loc) << "Loc-RIB provenance differs";
  EXPECT_EQ(a.in_up, b.in_up) << "Adj-RIB-In provenance differs";
  EXPECT_EQ(a.out_down, b.out_down) << "Adj-RIB-Out provenance differs";
  EXPECT_EQ(a.events, b.events) << "flight-recorder event content differs";
  EXPECT_EQ(a.quiescent, b.quiescent);
  EXPECT_EQ(a.tracked, b.tracked);
  EXPECT_EQ(a.changes, b.changes);
  EXPECT_EQ(a.max_penalty, b.max_penalty);
  EXPECT_EQ(a.recorded, b.recorded);
}

// The observability layer is subject to the same portability oracle as the
// RIBs: provenance records, event content and the flap verdict must agree
// between Fir and Wren, and each host must agree with itself across
// parallelism 1 / 2 / 8.
TEST(DifferentialHost, FlightRecorderAgreesAcrossHostsAndParallelism) {
  harness::WorkloadParams params;
  params.route_count = 180;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  std::vector<RecorderSnapshot> fir_runs;
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto fir = run_recorder_rr<Fir>(workload, parallelism);
    const auto wren = run_recorder_rr<Wren>(workload, parallelism);
    ASSERT_FALSE(fir.loc.empty());
    EXPECT_GT(fir.recorded, 0u);
    EXPECT_GT(fir.changes, 0u);
    expect_recorder_equal(fir, wren);
    fir_runs.push_back(fir);
  }
  expect_recorder_equal(fir_runs[0], fir_runs[1]);
  expect_recorder_equal(fir_runs[0], fir_runs[2]);
}

// --- §3.4 origin validation ---------------------------------------------------

template <typename RouterT>
HostSnapshot run_ov(const harness::Workload& workload, const std::vector<rpki::Roa>& roas,
                    std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.parallelism = parallelism;
  RouterT dut(loop, cfg);
  dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
  dut.load_extensions(ext::origin_validation_manifest(roas.size()));
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  return capture(dut, bed);
}

TEST(DifferentialHost, OriginValidation) {
  harness::WorkloadParams params;
  params.route_count = 400;
  const auto workload = harness::make_workload(params);
  rpki::RoaSetParams roa_params;  // 75% valid
  const auto roas = rpki::make_roa_set(workload.routes, roa_params);
  const auto fir = run_ov<Fir>(workload, roas, 2);
  const auto wren = run_ov<Wren>(workload, roas, 2);
  ASSERT_GT(fir.ov_valid, 0u);
  ASSERT_GT(fir.ov_invalid, 0u);
  EXPECT_EQ(fir.extension_faults, 0u);
  expect_equivalent(fir, wren);
}

// --- §2 GeoLoc ----------------------------------------------------------------

template <typename RouterT>
HostSnapshot run_geoloc(const harness::Workload& workload) {
  net::EventLoop loop;
  auto plan = harness::TestbedPlan::ebgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "edge";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  RouterT dut(loop, cfg);
  std::vector<std::uint8_t> coords(8);
  const std::int32_t lat = 50'000'000, lon = 4'000'000;
  std::memcpy(coords.data(), &lat, 4);
  std::memcpy(coords.data() + 4, &lon, 4);
  dut.set_xtra(xbgp::xtra::kGeoCoord, coords);
  dut.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/false));
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  return capture(dut, bed);
}

TEST(DifferentialHost, GeoLocTagging) {
  harness::WorkloadParams params;
  params.route_count = 100;
  const auto workload = harness::make_workload(params);
  const auto fir = run_geoloc<Fir>(workload);
  const auto wren = run_geoloc<Wren>(workload);
  EXPECT_EQ(fir.extension_faults, 0u);
  expect_equivalent(fir, wren);
  // The custom attribute made it into both Loc-RIBs and onto the wire.
  ASSERT_FALSE(fir.loc_rib.empty());
  EXPECT_TRUE(fir.loc_rib.front().second.find(bgp::attr_code::kGeoLoc) != nullptr);
  EXPECT_NE(fir.sink_last.attrs.find(bgp::attr_code::kGeoLoc), nullptr);
}

// --- RFC 7606 degradation -----------------------------------------------------

struct MalformedFeed {
  harness::Workload workload;
  std::uint64_t expect_withdraw_updates = 0;
  std::uint64_t expect_discards = 0;
};

/// Takes a clean full-table feed and deterministically corrupts part of it:
/// every 5th UPDATE gets either an invalid ORIGIN value (treat-as-withdraw
/// tier) or a truncated GeoLoc appended (attribute-discard tier). Both hosts
/// must degrade identically — same RIBs, same counters, sessions up.
MalformedFeed make_malformed_feed() {
  harness::WorkloadParams params;
  params.route_count = 300;
  MalformedFeed feed;
  feed.workload = harness::make_workload(params);
  auto& updates = feed.workload.updates;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (i % 5 != 2 && i % 5 != 4) continue;
    const auto frame = bgp::try_frame(updates[i]);
    auto update = *bgp::decode_update(frame->body);
    if (i % 5 == 2) {
      update.attrs.put(
          bgp::WireAttr{bgp::attr_flag::kTransitive, bgp::attr_code::kOrigin, {9}});
      ++feed.expect_withdraw_updates;
    } else {
      bgp::WireAttr geoloc = bgp::make_geoloc(1000, 2000);
      geoloc.value.pop_back();  // 7 bytes instead of 8
      update.attrs.put(geoloc);
      ++feed.expect_discards;
    }
    updates[i] = bgp::encode_update(update);
  }
  return feed;
}

template <typename RouterT>
HostSnapshot run_malformed(const harness::Workload& workload, std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.parallelism = parallelism;
  RouterT dut(loop, cfg);
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.feeder().send_all(workload.updates);
  loop.run_until(loop.now() + 2 * kSec);
  // RFC 7606 degradation must never cost the session.
  EXPECT_TRUE(bed.feeder().established());
  EXPECT_EQ(dut.session(0).notifications_sent(), 0u);
  return capture(dut, bed);
}

TEST(DifferentialHost, MalformedFeedDegradesIdentically) {
  const auto feed = make_malformed_feed();
  ASSERT_GT(feed.expect_withdraw_updates, 0u);
  ASSERT_GT(feed.expect_discards, 0u);

  std::vector<HostSnapshot> fir_runs;
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto fir = run_malformed<Fir>(feed.workload, parallelism);
    const auto wren = run_malformed<Wren>(feed.workload, parallelism);
    ASSERT_FALSE(fir.loc_rib.empty());
    EXPECT_EQ(fir.malformed_updates, feed.expect_withdraw_updates);
    EXPECT_EQ(fir.treat_as_withdraw, feed.expect_withdraw_updates);
    EXPECT_EQ(fir.attrs_discarded, feed.expect_discards);
    // No surviving route carries the corrupt GeoLoc.
    for (const auto& [prefix, attrs] : fir.loc_rib) {
      EXPECT_FALSE(attrs.has(bgp::attr_code::kGeoLoc)) << prefix.str();
    }
    expect_equivalent(fir, wren);
    fir_runs.push_back(fir);
  }
  // Bit-identical degradation at parallelism 1 / 2 / 8.
  expect_equivalent(fir_runs[0], fir_runs[1]);
  expect_equivalent(fir_runs[0], fir_runs[2]);
}

// --- §3.3 valley-free ---------------------------------------------------------

template <typename RouterT>
std::vector<bool> run_valley_free(const std::vector<std::vector<bgp::Asn>>& paths) {
  const bgp::Asn kSpine1 = 65201, kSpine2 = 65202, kLeaf12 = 65112, kLeaf13 = 65113,
                 kTor = 65023;
  std::vector<xbgp::ValleyPair> pairs{{kLeaf12, kSpine1}, {kLeaf12, kSpine2},
                                      {kLeaf13, kSpine1}, {kLeaf13, kSpine2},
                                      {kTor, kLeaf12},    {kTor, kLeaf13}};
  std::vector<std::uint8_t> blob(pairs.size() * sizeof(xbgp::ValleyPair));
  std::memcpy(blob.data(), pairs.data(), blob.size());

  net::EventLoop loop;
  harness::TestbedPlan plan = harness::TestbedPlan::ebgp_plan();
  plan.dut_asn = kSpine2;
  plan.upstream_asn = kLeaf12;
  typename RouterT::Config cfg;
  cfg.name = "spine2";
  cfg.asn = kSpine2;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  RouterT dut(loop, cfg);
  dut.set_xtra(xbgp::xtra::kValleyPairs, blob);
  dut.load_extensions(ext::valley_free_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();

  // One prefix per candidate path, announced over the ascent session.
  std::vector<Prefix> prefixes;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    prefixes.push_back(Prefix(Ipv4Addr(0xC0000200u + (static_cast<std::uint32_t>(i) << 8)), 24));
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath(paths[i]).to_attr());
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.nlri = {prefixes.back()};
    bed.feeder().session().send_update(update);
  }
  loop.run_until(loop.now() + 2 * kSec);

  std::vector<bool> accepted;
  for (const auto& prefix : prefixes) accepted.push_back(dut.best(prefix) != nullptr);
  EXPECT_EQ(dut.stats().extension_faults, 0u);
  return accepted;
}

// --- telemetry parity ---------------------------------------------------------

/// Counter-kind registry series, with host-incomparable series dropped:
/// pool/timing series depend on wall clock and scheduling, not semantics.
template <typename RouterT>
std::vector<std::pair<std::string, std::uint64_t>> counter_series(RouterT& dut) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& mv : dut.telemetry().registry().snapshot().metrics) {
    if (mv.kind != obs::MetricKind::kCounter) continue;
    if (mv.name.rfind("xbgp_pool_", 0) == 0) continue;
    if (mv.name.find("_ns") != std::string::npos) continue;
    out.emplace_back(mv.name, mv.value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <typename RouterT>
std::vector<std::pair<std::string, std::uint64_t>> run_rr_metrics(
    const harness::Workload& workload, std::size_t parallelism) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = parallelism;
  RouterT dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  return counter_series(dut);
}

TEST(DifferentialHost, MetricSeriesAgreeAcrossHosts) {
  harness::WorkloadParams params;
  params.route_count = 200;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  const auto fir = run_rr_metrics<Fir>(workload, 2);
  const auto wren = run_rr_metrics<Wren>(workload, 2);
  ASSERT_FALSE(fir.empty());
  ASSERT_EQ(fir.size(), wren.size());
  for (std::size_t i = 0; i < fir.size(); ++i) {
    EXPECT_EQ(fir[i].first, wren[i].first) << "series " << i << " name differs";
    EXPECT_EQ(fir[i].second, wren[i].second)
        << "metric " << fir[i].first << " differs between Fir and Wren";
  }
}

TEST(DifferentialHost, ValleyFreeFiltering) {
  const bgp::Asn kSpine1 = 65201, kLeaf12 = 65112, kLeaf13 = 65113, kTor = 65023;
  const std::vector<std::vector<bgp::Asn>> paths = {
      {kLeaf12, kTor},                           // normal ascent
      {kLeaf12, kSpine1, kLeaf13, kTor},         // valley: already descended once
      {kLeaf12, kTor, kLeaf13, kSpine1, kLeaf13},  // descent pair deeper in path
      {kLeaf12},                                 // direct leaf announcement
  };
  const auto fir = run_valley_free<Fir>(paths);
  const auto wren = run_valley_free<Wren>(paths);
  EXPECT_EQ(fir, wren);
  EXPECT_EQ(fir, (std::vector<bool>{true, false, false, true}));
}

}  // namespace
