// Static verifier: every rejection class, plus acceptance of valid programs.
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "ebpf/opcodes.hpp"
#include "ebpf/verifier.hpp"

namespace {

using namespace xb::ebpf;

std::optional<VerifyError> verify(const Program& p,
                                  std::set<std::int32_t> helpers = {}) {
  return Verifier::verify(p, helpers);
}

Program raw(std::vector<Insn> insns) { return Program("raw", std::move(insns), {}); }

TEST(Verifier, AcceptsMinimalProgram) {
  Assembler a;
  a.mov64(Reg::R0, 0);
  a.exit_();
  EXPECT_FALSE(verify(a.build("ok")).has_value());
}

TEST(Verifier, RejectsEmptyProgram) {
  auto err = verify(raw({}));
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("empty"), std::string::npos);
}

TEST(Verifier, RejectsOversizedProgram) {
  std::vector<Insn> insns(Verifier::kMaxInsns + 1,
                          Insn{static_cast<std::uint8_t>(kClsAlu64 | kAluMov), 0, 0, 0, 0});
  insns.back() = Insn{kClsJmp | kJmpExit, 0, 0, 0, 0};
  EXPECT_TRUE(verify(raw(std::move(insns))));
}

TEST(Verifier, RejectsFallOffEnd) {
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kAluMov, 0, 0, 0, 5}})));
}

TEST(Verifier, RejectsUnknownOpcode) {
  auto err = verify(raw({Insn{0xFF, 0, 0, 0, 0}, Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}}));
  ASSERT_TRUE(err);
  EXPECT_EQ(err->insn_index, 0u);
}

TEST(Verifier, RejectsWriteToFramePointer) {
  Assembler a;
  a.mov64(Reg::R10, 0);
  a.exit_();
  auto err = verify(a.build("r10"));
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("frame pointer"), std::string::npos);
}

TEST(Verifier, RejectsJumpOutOfBounds) {
  EXPECT_TRUE(verify(raw({Insn{kClsJmp | kJmpJa, 0, 0, 5, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
  EXPECT_TRUE(verify(raw({Insn{kClsJmp | kJmpJa, 0, 0, -3, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsJumpIntoLddwTail) {
  // lddw occupies slots 0-1; a jump targeting slot 1 is invalid
  // (slot 2, offset -2 -> target = 2 + 1 - 2 = 1).
  EXPECT_TRUE(verify(raw({Insn{kOpLddw, 0, 0, 0, 1}, Insn{0, 0, 0, 0, 2},
                          Insn{kClsJmp | kJmpJa, 0, 0, -2, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsLddwMissingTail) {
  EXPECT_TRUE(verify(raw({Insn{kOpLddw, 0, 0, 0, 1}})));
}

TEST(Verifier, RejectsLddwBadTail) {
  EXPECT_TRUE(verify(raw({Insn{kOpLddw, 0, 0, 0, 1},
                          Insn{kClsAlu64 | kAluMov, 0, 0, 0, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsDivByZeroImmediate) {
  Assembler a;
  a.mov64(Reg::R0, 4);
  a.div64(Reg::R0, 0);
  a.exit_();
  auto err = verify(a.build("div0"));
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("division by zero"), std::string::npos);
}

TEST(Verifier, RejectsShiftOutOfRange) {
  Assembler a;
  a.mov64(Reg::R0, 4);
  a.lsh64(Reg::R0, 64);
  a.exit_();
  EXPECT_TRUE(verify(a.build("shift")));
}

TEST(Verifier, RejectsShift32OutOfRange) {
  Assembler a;
  a.mov32(Reg::R0, 4);
  a.lsh32(Reg::R0, 33);
  a.exit_();
  EXPECT_TRUE(verify(a.build("shift32")));
}

TEST(Verifier, RejectsCallOutsideWhitelist) {
  Assembler a;
  a.call(7);
  a.exit_();
  auto err = verify(a.build("call"), {1, 2});
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("whitelist"), std::string::npos);
}

TEST(Verifier, AcceptsWhitelistedCall) {
  Assembler a;
  a.call(7);
  a.exit_();
  EXPECT_FALSE(verify(a.build("call"), {7}).has_value());
}

TEST(Verifier, RejectsInvalidRegisterNumbers) {
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kAluMov, 12, 0, 0, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kSrcX | kAluMov, 0, 13, 0, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsBadByteSwapWidth) {
  EXPECT_TRUE(verify(raw({Insn{kClsAlu | kSrcX | kAluEnd, 0, 0, 0, 24},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsProgramWithoutExit) {
  // Ends with a backwards JA but no EXIT anywhere.
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kAluMov, 0, 0, 0, 0},
                          Insn{kClsJmp | kJmpJa, 0, 0, -2, 0}})));
}

TEST(Verifier, AcceptsEveryUseCaseProgram) {
  // The shipped extension programs must all verify under their own helper
  // requirement sets (this is what Vmm::load enforces).
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 10);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  EXPECT_FALSE(verify(a.build("loop")).has_value());
}

}  // namespace
