// Static verifier: every rejection class, plus acceptance of valid programs.
// Covers pass 0 (structural), the CFG layer, and the abstract-interpretation
// analyzer (pass 1+) with a table-driven negative suite — one crafted program
// per diagnostic — and an accept-corpus over every shipped extension.
#include <gtest/gtest.h>

#include "ebpf/analyzer.hpp"
#include "ebpf/assembler.hpp"
#include "ebpf/cfg.hpp"
#include "ebpf/opcodes.hpp"
#include "ebpf/verifier.hpp"
#include "extensions/registry.hpp"
#include "xbgp/api.hpp"
#include "xbgp/manifest.hpp"

namespace {

using namespace xb::ebpf;

std::optional<VerifyError> verify(const Program& p,
                                  std::set<std::int32_t> helpers = {}) {
  return Verifier::verify(p, helpers);
}

AnalysisResult analyze(const Program& p, std::set<std::int32_t> helpers = {}) {
  Analyzer::Options opts;
  opts.helper_arity = xb::xbgp::helper_arity_table();
  opts.helper_contracts = xb::xbgp::helper_contract_table();
  return Analyzer::analyze(p, helpers, opts);
}

/// True when some diagnostic has the given severity and mentions `needle`.
bool has_diag(const AnalysisResult& r, Severity sev, const std::string& needle) {
  for (const auto& d : r.diagnostics) {
    if (d.severity == sev && d.reason.find(needle) != std::string::npos) return true;
  }
  return false;
}

Program raw(std::vector<Insn> insns) { return Program("raw", std::move(insns), {}); }

TEST(Verifier, AcceptsMinimalProgram) {
  Assembler a;
  a.mov64(Reg::R0, 0);
  a.exit_();
  EXPECT_FALSE(verify(a.build("ok")).has_value());
}

TEST(Verifier, RejectsEmptyProgram) {
  auto err = verify(raw({}));
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("empty"), std::string::npos);
}

TEST(Verifier, RejectsOversizedProgram) {
  std::vector<Insn> insns(Verifier::kMaxInsns + 1,
                          Insn{static_cast<std::uint8_t>(kClsAlu64 | kAluMov), 0, 0, 0, 0});
  insns.back() = Insn{kClsJmp | kJmpExit, 0, 0, 0, 0};
  EXPECT_TRUE(verify(raw(std::move(insns))));
}

TEST(Verifier, RejectsFallOffEnd) {
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kAluMov, 0, 0, 0, 5}})));
}

TEST(Verifier, RejectsUnknownOpcode) {
  auto err = verify(raw({Insn{0xFF, 0, 0, 0, 0}, Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}}));
  ASSERT_TRUE(err);
  EXPECT_EQ(err->insn_index, 0u);
}

TEST(Verifier, RejectsWriteToFramePointer) {
  Assembler a;
  a.mov64(Reg::R10, 0);
  a.exit_();
  auto err = verify(a.build("r10"));
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("frame pointer"), std::string::npos);
}

TEST(Verifier, RejectsJumpOutOfBounds) {
  EXPECT_TRUE(verify(raw({Insn{kClsJmp | kJmpJa, 0, 0, 5, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
  EXPECT_TRUE(verify(raw({Insn{kClsJmp | kJmpJa, 0, 0, -3, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsJumpIntoLddwTail) {
  // lddw occupies slots 0-1; a jump targeting slot 1 is invalid
  // (slot 2, offset -2 -> target = 2 + 1 - 2 = 1).
  EXPECT_TRUE(verify(raw({Insn{kOpLddw, 0, 0, 0, 1}, Insn{0, 0, 0, 0, 2},
                          Insn{kClsJmp | kJmpJa, 0, 0, -2, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsLddwMissingTail) {
  EXPECT_TRUE(verify(raw({Insn{kOpLddw, 0, 0, 0, 1}})));
}

TEST(Verifier, RejectsLddwBadTail) {
  EXPECT_TRUE(verify(raw({Insn{kOpLddw, 0, 0, 0, 1},
                          Insn{kClsAlu64 | kAluMov, 0, 0, 0, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsDivByZeroImmediate) {
  Assembler a;
  a.mov64(Reg::R0, 4);
  a.div64(Reg::R0, 0);
  a.exit_();
  auto err = verify(a.build("div0"));
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("division by zero"), std::string::npos);
}

TEST(Verifier, RejectsShiftOutOfRange) {
  Assembler a;
  a.mov64(Reg::R0, 4);
  a.lsh64(Reg::R0, 64);
  a.exit_();
  EXPECT_TRUE(verify(a.build("shift")));
}

TEST(Verifier, RejectsShift32OutOfRange) {
  Assembler a;
  a.mov32(Reg::R0, 4);
  a.lsh32(Reg::R0, 33);
  a.exit_();
  EXPECT_TRUE(verify(a.build("shift32")));
}

TEST(Verifier, RejectsCallOutsideWhitelist) {
  Assembler a;
  a.call(7);
  a.exit_();
  auto err = verify(a.build("call"), {1, 2});
  ASSERT_TRUE(err);
  EXPECT_NE(err->reason.find("whitelist"), std::string::npos);
}

TEST(Verifier, AcceptsWhitelistedCall) {
  Assembler a;
  a.call(7);
  a.exit_();
  EXPECT_FALSE(verify(a.build("call"), {7}).has_value());
}

TEST(Verifier, RejectsInvalidRegisterNumbers) {
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kAluMov, 12, 0, 0, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kSrcX | kAluMov, 0, 13, 0, 0},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, RejectsBadByteSwapWidth) {
  EXPECT_TRUE(verify(raw({Insn{kClsAlu | kSrcX | kAluEnd, 0, 0, 0, 24},
                          Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}})));
}

TEST(Verifier, AcceptsByteSwapInAlu32Class) {
  // kAluEnd belongs to the 32-bit ALU class (the imm selects the width).
  for (std::int32_t width : {16, 32, 64}) {
    Assembler a;
    a.mov64(Reg::R0, 0x1234);
    a.to_be(Reg::R0, width);
    a.exit_();
    EXPECT_FALSE(verify(a.build("swap")).has_value()) << "width " << width;
  }
}

TEST(Verifier, RejectsByteSwapInAlu64Class) {
  // 0xd7 (kClsAlu64 | kAluEnd) is unassigned in the ISA; accepting it would
  // execute an undefined operation.
  auto err = verify(raw({Insn{kClsAlu64 | kAluEnd, 0, 0, 0, 16},
                         Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}}));
  ASSERT_TRUE(err);
  EXPECT_EQ(err->insn_index, 0u);
  EXPECT_NE(err->reason.find("byte swap is only valid in the 32-bit ALU class"),
            std::string::npos);
}

TEST(Verifier, RejectsJa32) {
  // The JMP32 class holds conditional branches only; JA has no 32-bit form.
  auto err = verify(raw({Insn{kClsJmp32 | kJmpJa, 0, 0, 0, 0},
                         Insn{kClsJmp | kJmpExit, 0, 0, 0, 0}}));
  ASSERT_TRUE(err);
  EXPECT_EQ(err->insn_index, 0u);
  EXPECT_NE(err->reason.find("unconditional jump has no 32-bit form"), std::string::npos);
}

TEST(Verifier, RejectsProgramWithoutExit) {
  // Ends with a backwards JA but no EXIT anywhere.
  EXPECT_TRUE(verify(raw({Insn{kClsAlu64 | kAluMov, 0, 0, 0, 0},
                          Insn{kClsJmp | kJmpJa, 0, 0, -2, 0}})));
}

TEST(Verifier, AcceptsEveryUseCaseProgram) {
  // The shipped extension programs must all verify under their own helper
  // requirement sets (this is what Vmm::load enforces).
  Assembler a;
  auto loop = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 10);
  a.place(loop);
  a.jeq(Reg::R6, 0, out);
  a.sub64(Reg::R6, 1);
  a.ja(loop);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  EXPECT_FALSE(verify(a.build("loop")).has_value());
}

// --- CFG layer ---------------------------------------------------------------

TEST(Cfg, DiamondShape) {
  Assembler a;
  auto then_ = a.make_label();
  auto join = a.make_label();
  a.jeq(Reg::R1, 0, then_);   // L0: branch
  a.mov64(Reg::R0, 1);        // L1: else arm
  a.ja(join);
  a.place(then_);
  a.mov64(Reg::R0, 2);        // L2: then arm
  a.place(join);
  a.exit_();                  // L3: join
  const auto cfg = Cfg::build(a.build("diamond"));

  ASSERT_EQ(cfg.blocks().size(), 4u);
  EXPECT_EQ(cfg.blocks()[0].succs, (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(cfg.blocks()[3].preds.size(), 2u);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_TRUE(cfg.reachable(b));
  EXPECT_TRUE(cfg.dominates(0, 3));
  EXPECT_FALSE(cfg.dominates(1, 3));
  EXPECT_TRUE(cfg.back_edges().empty());
  EXPECT_TRUE(cfg.loops().empty());
  EXPECT_EQ(Cfg::label(2), "L2");
}

TEST(Cfg, DetectsNaturalLoop) {
  Assembler a;
  auto top = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 8);
  a.place(top);
  a.jeq(Reg::R6, 0, out);
  a.sub64(Reg::R6, 1);
  a.ja(top);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const auto cfg = Cfg::build(a.build("loop"));

  ASSERT_EQ(cfg.loops().size(), 1u);
  const auto& loop = cfg.loops()[0];
  EXPECT_TRUE(loop.contains(loop.header));
  ASSERT_EQ(cfg.back_edges().size(), 1u);
  EXPECT_EQ(cfg.back_edges()[0].to, loop.header);
  EXPECT_TRUE(cfg.irreducible_edges().empty());
}

TEST(Cfg, LddwTailStaysInsideItsBlock) {
  Assembler a;
  a.lddw(Reg::R0, 0x1122334455667788ull);
  a.exit_();
  const auto cfg = Cfg::build(a.build("lddw"));
  EXPECT_FALSE(cfg.is_lddw_tail(0));
  EXPECT_TRUE(cfg.is_lddw_tail(1));
  EXPECT_EQ(cfg.block_of(1), cfg.block_of(0));
}

// --- Abstract-interpretation analyzer: negative suite ------------------------
//
// One crafted program per diagnostic the analyzer can emit.  Each case names
// the expected severity and a distinctive substring of the reason text, so a
// regression in either the check or its message is caught.

struct AnalyzerCase {
  const char* name;
  Program (*build)();
  Severity severity;
  const char* needle;
};

const AnalyzerCase kNegativeCases[] = {
    {"uninit_read",
     [] {
       // r1-r5 carry arguments at entry; r6-r9 start uninitialized.
       Assembler a;
       a.mov64(Reg::R0, Reg::R6);
       a.exit_();
       return a.build("uninit_read");
     },
     Severity::kError, "read of uninitialized register r6"},
    {"stack_read_oob",
     [] {
       Assembler a;
       a.ldxdw(Reg::R0, Reg::R10, -520);  // below the 512-byte frame
       a.exit_();
       return a.build("stack_read_oob");
     },
     Severity::kError, "stack access out of bounds"},
    {"stack_write_oob",
     [] {
       Assembler a;
       a.stdw(Reg::R10, -4, 1);  // bytes [-4, 4) run past the frame top
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("stack_write_oob");
     },
     Severity::kError, "stack access out of bounds"},
    {"misaligned_store",
     [] {
       Assembler a;
       a.mov64(Reg::R0, 0);
       a.stxdw(Reg::R10, -13, Reg::R0);  // in-bounds but not 8-byte aligned
       a.ldxdw(Reg::R0, Reg::R10, -13);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("misaligned_store");
     },
     Severity::kWarning, "misaligned stack access"},
    {"unbounded_loop",
     [] {
       Assembler a;
       auto top = a.make_label();
       a.mov64(Reg::R0, 0);
       a.place(top);
       a.ja(top);  // no path leaves the loop
       a.exit_();
       return a.build("unbounded_loop");
     },
     Severity::kError, "unbounded loop"},
    {"no_induction_loop",
     [] {
       // The loop exits on r1 == 0, but nothing inside changes r1: no
       // monotone induction register bounds the trip count.
       Assembler a;
       auto top = a.make_label();
       auto out = a.make_label();
       a.place(top);
       a.jeq(Reg::R1, 0, out);
       a.ja(top);
       a.place(out);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("no_induction_loop");
     },
     Severity::kError, "cannot bound loop trip count"},
    {"r0_unset_exit",
     [] {
       Assembler a;
       a.mov64(Reg::R6, 1);
       a.exit_();
       return a.build("r0_unset_exit");
     },
     Severity::kError, "r0 is not set before exit"},
    {"unreachable_block",
     [] {
       Assembler a;
       a.mov64(Reg::R0, 0);
       a.exit_();
       a.mov64(Reg::R0, 1);  // never executed
       a.exit_();
       return a.build("unreachable_block");
     },
     Severity::kWarning, "unreachable code"},
    {"dead_store",
     [] {
       Assembler a;
       a.stdw(Reg::R10, -8, 1);  // overwritten before anyone loads it
       a.stdw(Reg::R10, -8, 2);
       a.ldxdw(Reg::R0, Reg::R10, -8);
       a.exit_();
       return a.build("dead_store");
     },
     Severity::kWarning, "dead store to stack slot [r10-8]"},
    {"helper_uninit_arg",
     [] {
       // The first call clobbers r1-r5 (eBPF calling convention); get_attr
       // has arity 1, so the second call reads a dead r1.
       Assembler a;
       a.call(xb::xbgp::helper::kNext);
       a.call(xb::xbgp::helper::kGetAttr);
       a.exit_();
       return a.build("helper_uninit_arg");
     },
     Severity::kError, "uninitialized argument r1"},
    {"unchecked_helper_return",
     [] {
       // get_attr can return NULL; dereferencing without a null check keeps
       // the runtime check and earns a warning.
       Assembler a;
       a.mov64(Reg::R1, 1);
       a.call(xb::xbgp::helper::kGetAttr);
       a.ldxb(Reg::R6, Reg::R0, 0);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("unchecked_helper_return");
     },
     Severity::kWarning, "possibly-NULL"},
    {"tainted_offset",
     [] {
       // A wire-derived byte loaded from the attribute buffer steers a
       // pointer offset: the runtime bounds check is load-bearing.
       Assembler a;
       auto ok = a.make_label();
       a.mov64(Reg::R1, 1);
       a.call(xb::xbgp::helper::kGetAttr);
       a.jne(Reg::R0, 0, ok);
       a.mov64(Reg::R0, 0);
       a.exit_();
       a.place(ok);
       a.ldxb(Reg::R6, Reg::R0, 0);  // tainted scalar
       a.mov64(Reg::R7, Reg::R0);
       a.add64(Reg::R7, Reg::R6);    // tainted offset into the buffer
       a.ldxb(Reg::R8, Reg::R7, 0);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("tainted_offset");
     },
     Severity::kWarning, "tainted offset"},
    {"helper_object_oob",
     [] {
       // get_peer_info's contract is an exact 32-byte object; bytes [32, 40)
       // are past its end even behind a null check.
       Assembler a;
       auto ok = a.make_label();
       a.call(xb::xbgp::helper::kGetPeerInfo);
       a.jne(Reg::R0, 0, ok);
       a.mov64(Reg::R0, 0);
       a.exit_();
       a.place(ok);
       a.ldxdw(Reg::R6, Reg::R0, 32);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("helper_object_oob");
     },
     Severity::kWarning, "past the end"},
    {"ptr_plus_ptr_oob",
     [] {
       // The sum of two stack pointers is a host-address-scale scalar, not
       // the sum of their frame offsets.  Folding it back into r10 must NOT
       // yield a stack pointer with a "proven" small offset (which would
       // elide the bounds check on a wild out-of-frame store).
       Assembler a;
       a.mov64(Reg::R6, Reg::R10);
       a.add64(Reg::R6, Reg::R10);  // ptr+ptr: unknown scalar, ~2*r10 at run time
       a.mov64(Reg::R7, Reg::R10);
       a.add64(Reg::R7, Reg::R6);   // r7 is nowhere near the frame
       a.stxdw(Reg::R7, -8, Reg::R6);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("ptr_plus_ptr_oob");
     },
     Severity::kError, "stack access out of bounds"},
    {"overflow_chain_oob",
     [] {
       // INT64_MAX + INT64_MAX wraps to -2; a saturating interval would
       // claim INT64_MAX, the sub then exactly 0, and the store would be
       // elided at a "proven" in-frame offset while the real address is
       // r10 + INT64_MAX.  Overflowing arithmetic must widen to unknown.
       Assembler a;
       a.lddw(Reg::R6, 0x7FFFFFFFFFFFFFFFull);
       a.lddw(Reg::R7, 0x7FFFFFFFFFFFFFFFull);
       a.add64(Reg::R6, Reg::R7);  // actually -2
       a.sub64(Reg::R6, Reg::R7);  // actually INT64_MAX
       a.mov64(Reg::R8, Reg::R10);
       a.add64(Reg::R8, Reg::R6);
       a.stxdw(Reg::R8, -8, Reg::R7);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("overflow_chain_oob");
     },
     Severity::kError, "stack access out of bounds"},
    {"neg_int64min_oob",
     [] {
       // neg64 of a range containing INT64_MIN wraps (INT64_MIN negates to
       // itself); a saturating claim of [1, INT64_MAX] would pass the s>8
       // guard's refinement and elide the store at a "proven" frame offset.
       Assembler a;
       auto neg_path = a.make_label();
       auto out = a.make_label();
       a.jslt(Reg::R1, 0, neg_path);
       a.mov64(Reg::R0, 0);
       a.exit_();
       a.place(neg_path);
       a.neg64(Reg::R1);            // r1 in [INT64_MIN, -1]: result may wrap
       a.jsgt(Reg::R1, 8, out);
       a.mov64(Reg::R7, Reg::R10);
       a.add64(Reg::R7, Reg::R1);
       a.stxb(Reg::R7, -16, Reg::R1);
       a.place(out);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("neg_int64min_oob");
     },
     Severity::kError, "stack access out of bounds"},
    {"tainted_stack_roundtrip",
     [] {
       // Spilling a wire-derived scalar to the frame and reloading it must
       // not launder the taint: the reloaded value steering a pointer
       // offset still warrants the tainted-offset warning.
       Assembler a;
       auto ok = a.make_label();
       a.mov64(Reg::R1, 1);
       a.call(xb::xbgp::helper::kGetAttr);
       a.jne(Reg::R0, 0, ok);
       a.mov64(Reg::R0, 0);
       a.exit_();
       a.place(ok);
       a.ldxb(Reg::R6, Reg::R0, 0);      // tainted scalar
       a.stxdw(Reg::R10, -16, Reg::R6);  // spill
       a.ldxdw(Reg::R7, Reg::R10, -16);  // reload: taint must survive
       a.mov64(Reg::R8, Reg::R0);
       a.add64(Reg::R8, Reg::R7);        // tainted offset into the buffer
       a.ldxb(Reg::R9, Reg::R8, 0);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("tainted_stack_roundtrip");
     },
     Severity::kWarning, "tainted offset"},
    {"widened_loop_offset_oob",
     [] {
       // The loop counter is widened at the header; the exit test only
       // bounds it to [0, 1000], so the derived stack offset escapes the
       // 512-byte frame — widening must surface this, not time out.
       Assembler a;
       auto top = a.make_label();
       auto out = a.make_label();
       a.mov64(Reg::R6, 0);
       a.place(top);
       a.jgt(Reg::R6, 1000, out);
       a.mov64(Reg::R7, Reg::R10);
       a.sub64(Reg::R7, 8);
       a.add64(Reg::R7, Reg::R6);
       a.stxb(Reg::R7, 0, Reg::R6);
       a.add64(Reg::R6, 1);
       a.ja(top);
       a.place(out);
       a.mov64(Reg::R0, 0);
       a.exit_();
       return a.build("widened_loop_offset_oob");
     },
     Severity::kError, "stack access out of bounds"},
};

class AnalyzerNegative : public ::testing::TestWithParam<AnalyzerCase> {};

TEST_P(AnalyzerNegative, EmitsExpectedDiagnostic) {
  const auto& c = GetParam();
  const Program p = c.build();
  const auto result = analyze(p, {xb::xbgp::helper::kNext, xb::xbgp::helper::kGetAttr,
                                  xb::xbgp::helper::kGetPeerInfo});
  EXPECT_TRUE(has_diag(result, c.severity, c.needle))
      << "expected a " << to_string(c.severity) << " containing '" << c.needle
      << "'; got " << result.diagnostics.size() << " diagnostic(s):"
      << [&] {
           std::string all;
           for (const auto& d : result.diagnostics) all += "\n  " + d.to_string();
           return all;
         }();
  if (c.severity == Severity::kError) {
    EXPECT_FALSE(result.ok());
  } else {
    EXPECT_TRUE(result.ok()) << "warning-only case must not block attachment";
  }
}

INSTANTIATE_TEST_SUITE_P(Table, AnalyzerNegative, ::testing::ValuesIn(kNegativeCases),
                         [](const auto& info) { return std::string(info.param.name); });

// --- Analyzer: behaviours beyond the table -----------------------------------

TEST(Analyzer, AcceptsBoundedDownCountLoop) {
  Assembler a;
  auto top = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 100);
  a.place(top);
  a.jeq(Reg::R6, 0, out);
  a.sub64(Reg::R6, 1);
  a.ja(top);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const auto result = analyze(a.build("down"));
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(Analyzer, DiagnosticCarriesIndexRegisterAndSeverity) {
  Assembler a;
  a.mov64(Reg::R0, 0);         // insn 0
  a.add64(Reg::R0, Reg::R7);   // insn 1: r7 is uninitialized
  a.exit_();
  const auto result = analyze(a.build("fields"));
  const auto* err = result.first_error();
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->insn_index, 1u);
  EXPECT_EQ(err->reg, 7);
  EXPECT_EQ(err->severity, Severity::kError);
  EXPECT_EQ(err->to_string().rfind("error at insn 1 (r7): ", 0), 0u) << err->to_string();
}

TEST(Analyzer, WarningsCanBeSuppressed) {
  Assembler a;
  a.mov64(Reg::R0, 0);
  a.stxdw(Reg::R10, -13, Reg::R0);  // misaligned -> warning
  a.exit_();
  Analyzer::Options opts;
  opts.warnings = false;
  const auto result = Analyzer::analyze(a.build("quiet"), {}, opts);
  EXPECT_EQ(result.warning_count(), 0u);
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(Analyzer, StructuralFailureSurfacesAsPass0Error) {
  // Pass 0 findings flow through the same diagnostic stream.
  const auto result = analyze(raw({}));
  EXPECT_FALSE(result.ok());
  ASSERT_NE(result.first_error(), nullptr);
  EXPECT_NE(result.first_error()->reason.find("empty"), std::string::npos);
}

TEST(Analyzer, HelperCallDefinesR0) {
  // r0 is dead at entry, but a helper call defines it; exiting afterwards
  // must be accepted.
  Assembler a;
  a.call(xb::xbgp::helper::kNext);
  a.exit_();
  const auto result = analyze(a.build("helper_r0"), {xb::xbgp::helper::kNext});
  EXPECT_EQ(result.error_count(), 0u);
}

TEST(Analyzer, WideningWithRefinementKeepsStackAccessBounded) {
  // The counter is widened at the loop header, but the exit test refines the
  // body in-state back to [0, 7]; the derived stack access stays inside the
  // frame and is proven elidable — widening must not destroy the proof.
  Assembler a;
  auto top = a.make_label();
  auto out = a.make_label();
  a.mov64(Reg::R6, 0);
  a.place(top);
  a.jgt(Reg::R6, 7, out);
  a.mov64(Reg::R7, Reg::R10);
  a.sub64(Reg::R7, 8);
  a.add64(Reg::R7, Reg::R6);
  a.stxb(Reg::R7, 0, Reg::R6);
  a.add64(Reg::R6, 1);
  a.ja(top);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const auto result = analyze(a.build("widened_bounded"));
  EXPECT_EQ(result.error_count(), 0u);
  bool found = false;
  for (const auto& f : result.facts.mem) {
    if (f.region == Region::kStack && f.elide && f.lo == -8 && f.hi == 0) found = true;
  }
  EXPECT_TRUE(found) << "expected an elidable stack fact with window [-8, 0)";
}

TEST(Analyzer, NullCheckedHelperObjectReadProducesElidableFact) {
  // A field read inside get_peer_info's 32-byte contract, behind a null
  // check taken while the pointer offset is still zero, needs no runtime
  // bounds probe — the fact the translator consumes for object elision.
  Assembler a;
  auto ok = a.make_label();
  a.call(xb::xbgp::helper::kGetPeerInfo);
  a.jne(Reg::R0, 0, ok);
  a.mov64(Reg::R0, 0);
  a.exit_();
  a.place(ok);
  a.ldxw(Reg::R6, Reg::R0, 8);
  a.mov64(Reg::R0, Reg::R6);
  a.exit_();
  const auto result = analyze(a.build("peer_field"), {xb::xbgp::helper::kGetPeerInfo});
  EXPECT_EQ(result.error_count(), 0u);
  EXPECT_EQ(result.warning_count(), 0u);
  bool found = false;
  for (const auto& f : result.facts.mem) {
    if (f.region == Region::kCtx && f.elide && f.lo == 8 && f.hi == 12) found = true;
  }
  EXPECT_TRUE(found) << "expected an elidable ctx fact with window [8, 12)";
  ASSERT_EQ(result.facts.calls.count(0), 1u);
  EXPECT_EQ(result.facts.calls.at(0).helper, xb::xbgp::helper::kGetPeerInfo);
}

TEST(Analyzer, AcceptsEveryShippedExtension) {
  // The accept-corpus: all programs in the registry must pass the full
  // pipeline with zero errors under their own helper requirement sets —
  // exactly what Vmm::load enforces at attach time — and each accepted
  // program must publish a full proof table for the translator.
  const auto registry = xb::ext::default_registry();
  const auto names = registry.names();
  ASSERT_FALSE(names.empty());
  std::size_t elidable_total = 0;
  for (const auto& name : names) {
    const auto* program = registry.find(name);
    ASSERT_NE(program, nullptr) << name;
    const auto result = analyze(*program, program->required_helpers());
    EXPECT_EQ(result.error_count(), 0u) << name << ": " << [&] {
      std::string all;
      for (const auto& d : result.diagnostics) all += "\n  " + d.to_string();
      return all;
    }();
    EXPECT_TRUE(result.facts.covers(program->insns().size())) << name;
    for (const auto& f : result.facts.mem) elidable_total += f.elide ? 1 : 0;
  }
  // The shipped extensions lean on the stack and on null-checked helper
  // objects; the corpus as a whole must prove a healthy share of its checks.
  EXPECT_GT(elidable_total, 0u);
}

}  // namespace
