// RFC 2918 ROUTE-REFRESH: codec, session delivery, and the operational use
// the paper motivates — applying a freshly loaded extension to already
// received routes without flapping sessions.
#include <gtest/gtest.h>

#include "extensions/igp_filter.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "util/bytes.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(RouteRefresh, CodecRoundTrip) {
  const bgp::RouteRefreshMessage refresh{1, 1};
  const auto wire = bgp::encode_route_refresh(refresh);
  const auto frame = bgp::try_frame(wire);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, bgp::MessageType::kRouteRefresh);
  const auto body = bgp::decode_body(frame->type, frame->body);
  ASSERT_TRUE(body.has_value());
  const auto decoded = std::get<bgp::RouteRefreshMessage>(*body);
  EXPECT_EQ(decoded, refresh);
}

TEST(RouteRefresh, BadLengthRejected) {
  auto wire = bgp::encode_route_refresh(bgp::RouteRefreshMessage{});
  wire.pop_back();
  wire[17] = static_cast<std::uint8_t>(wire.size());  // fix header length
  const auto frame = bgp::try_frame(wire);
  ASSERT_TRUE(frame.has_value());
  const auto body = bgp::decode_body(frame->type, frame->body);
  ASSERT_FALSE(body.has_value());
  EXPECT_EQ(body.status().error_class(), util::ErrorClass::kSessionReset);
}

TEST(RouteRefresh, SessionDeliversCallback) {
  net::EventLoop loop;
  net::Duplex link(loop, 1000);
  bgp::PeerSession a(loop, link.a(),
                     {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                      .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  bgp::PeerSession b(loop, link.b(),
                     {.local_asn = 65002, .peer_asn = 65001, .local_id = 2,
                      .local_addr = Ipv4Addr(2), .peer_addr = Ipv4Addr(1)});
  int refreshes = 0;
  b.on_route_refresh = [&] { ++refreshes; };
  a.start();
  b.start();
  loop.run_until(kSec);
  a.send_route_refresh();
  loop.run_until(2 * kSec);
  EXPECT_EQ(refreshes, 1);
  EXPECT_TRUE(a.established());
}

TEST(RouteRefresh, OutsideEstablishedIsFsmError) {
  net::EventLoop loop;
  net::Duplex link(loop, 0);
  bgp::PeerSession a(loop, link.a(),
                     {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                      .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  a.start();
  link.b().write(bgp::encode_route_refresh(bgp::RouteRefreshMessage{}));
  loop.run_until(kSec);
  EXPECT_EQ(a.state(), bgp::SessionState::kIdle);
}

template <typename T>
class RefreshEngineTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(RefreshEngineTest, RouterTypes);

TYPED_TEST(RefreshEngineTest, LoadExtensionThenRefreshReappliesExportPolicy) {
  // DUT learns routes and re-exports them. The downstream router then
  // requests a refresh AFTER the DUT loads the Listing-1 export filter:
  // the refresh re-runs export processing, the filter now rejects, and the
  // downstream receives nothing new while the DUT keeps the routes.
  net::EventLoop loop;
  igp::Graph graph;
  const auto dut_node = graph.add_node(Ipv4Addr(10, 0, 0, 2), "dut");
  const auto up_node = graph.add_node(Ipv4Addr(10, 0, 0, 1), "up");
  graph.add_link(dut_node, up_node, 1000);
  igp::IgpTable igp_table(graph, dut_node);

  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  cfg.igp = &igp_table;
  TypeParam dut(loop, cfg);

  typename TypeParam::Config uc;
  uc.name = "up";
  uc.asn = 65000;
  uc.router_id = 0x0A000001;
  uc.address = Ipv4Addr(10, 0, 0, 1);
  TypeParam up(loop, uc);

  typename TypeParam::Config dc;
  dc.name = "down";
  dc.asn = 65100;
  dc.router_id = 0x0A000003;
  dc.address = Ipv4Addr(10, 0, 0, 3);
  TypeParam down(loop, dc);

  net::Duplex l1(loop, 1000), l2(loop, 1000);
  up.add_peer(l1.a(), {.name = "dut", .asn = 65000, .address = cfg.address});
  dut.add_peer(l1.b(), {.name = "up", .asn = 65000, .address = uc.address});
  dut.add_peer(l2.a(), {.name = "down", .asn = 65100, .address = dc.address});
  const auto down_to_dut = down.add_peer(l2.b(), {.name = "dut", .asn = 65000,
                                                  .address = cfg.address});

  up.originate(Prefix::parse("203.0.113.0/24"));
  up.start();
  dut.start();
  down.start();
  loop.run_until(3 * kSec);
  ASSERT_NE(down.best(Prefix::parse("203.0.113.0/24")), nullptr);

  // Load the extension at runtime, then let the downstream refresh.
  dut.set_xtra_u32(xbgp::xtra::kMaxMetric, 100);  // metric to nexthop is 1000
  dut.load_extensions(ext::igp_filter_manifest());
  down.request_route_refresh(down_to_dut);
  loop.run_until(loop.now() + 3 * kSec);

  // The refresh re-ran the export filter: the route is now withdrawn from
  // the downstream, while the DUT still holds it.
  EXPECT_EQ(down.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_NE(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_GT(dut.stats().exports_rejected + dut.vmm().stats().extension_handled, 0u);
}

// ---------------------------------------------------------------------------
// ROUTE-REFRESH under in-flight UPDATE churn, parallel vs serial.
//
// A scripted feeder drives announce/withdraw/re-announce churn into the DUT
// while a downstream router fires ROUTE-REFRESH requests between churn
// bursts that have NOT yet quiesced. The engine promises bit-identical
// results at every parallelism level; the refresh path (a full Adj-RIB-Out
// re-export racing fresh imports across shards) is exactly where that
// promise is easiest to break, so it gets its own differential gate:
// parallelism 8 must produce the same Adj-RIB-Out, byte for byte, as a
// serial (parallelism 1) replay of the identical script.

/// Wire bytes of an attribute set — the "bit-identical" currency.
std::vector<std::uint8_t> attr_bytes(const bgp::AttributeSet& set) {
  util::ByteWriter w;
  set.encode(w);
  return {w.view().begin(), w.view().end()};
}

template <typename RouterT>
struct ChurnSnapshot {
  std::vector<std::pair<Prefix, std::vector<std::uint8_t>>> adj_out;  // dut -> down
  std::vector<Prefix> down_rib;
};

template <typename RouterT>
ChurnSnapshot<RouterT> run_refresh_churn(std::size_t parallelism) {
  using Core = typename RouterT::CoreType;
  net::EventLoop loop;

  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  cfg.parallelism = parallelism;
  RouterT dut(loop, cfg);

  typename RouterT::Config dc;
  dc.name = "down";
  dc.asn = 65200;
  dc.router_id = 0x0A000003;
  dc.address = Ipv4Addr(10, 0, 0, 3);
  RouterT down(loop, dc);

  // Feeder: a raw scripted eBGP peer, so the script can withdraw and
  // re-announce with changed attributes (routers only originate).
  net::Duplex feed(loop, 1000), l2(loop, 1000);
  const auto dut_to_down = dut.add_peer(l2.a(), {.name = "down", .asn = 65200,
                                                 .address = dc.address});
  const auto down_to_dut = down.add_peer(l2.b(), {.name = "dut", .asn = 65000,
                                                  .address = cfg.address});
  dut.add_peer(feed.a(), {.name = "feed", .asn = 65100,
                          .address = Ipv4Addr(10, 0, 0, 9)});
  dut.start();
  down.start();

  bgp::OpenMessage open;
  open.asn = 65100;
  open.my_as_2octet = 65100;
  open.hold_time = 90;
  open.bgp_id = 0x0A000009;
  feed.b().write(bgp::encode_open(open));
  feed.b().write(bgp::encode_keepalive());
  loop.run_until(kSec);

  auto prefix_at = [](std::size_t i) {
    return Prefix(Ipv4Addr(10, 60, static_cast<std::uint8_t>(i), 0), 24);
  };
  auto announce = [&](std::size_t lo, std::size_t hi, std::uint32_t med) {
    bgp::UpdateMessage m;
    m.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    m.attrs.put(bgp::AsPath({65100, static_cast<bgp::Asn>(64000 + med % 7)}).to_attr());
    m.attrs.put(bgp::make_next_hop(Ipv4Addr(10, 0, 0, 9)));
    m.attrs.put(bgp::make_med(med));
    for (std::size_t i = lo; i < hi; ++i) m.nlri.push_back(prefix_at(i));
    feed.b().write(bgp::encode_update(m));
  };
  auto withdraw = [&](std::size_t lo, std::size_t hi) {
    bgp::UpdateMessage m;
    for (std::size_t i = lo; i < hi; ++i) m.withdrawn.push_back(prefix_at(i));
    feed.b().write(bgp::encode_update(m));
  };

  // Churn script. Every refresh fires right after a burst, with those
  // UPDATEs still in flight through the DUT's import pipeline.
  announce(0, 8, 100);
  announce(8, 16, 100);
  loop.run_until(loop.now() + kSec / 10);
  down.request_route_refresh(down_to_dut);
  withdraw(2, 6);
  announce(4, 10, 40);  // overlaps the withdraw range: 4,5 come straight back
  down.request_route_refresh(down_to_dut);
  loop.run_until(loop.now() + kSec / 10);
  announce(12, 16, 7);  // better MED replaces the first announcement
  withdraw(0, 1);
  down.request_route_refresh(down_to_dut);
  loop.run_until(loop.now() + 5 * kSec);

  EXPECT_EQ(dut.session(dut_to_down).state(), bgp::SessionState::kEstablished);
  ChurnSnapshot<RouterT> snap;
  for (const auto& p : dut.adj_rib_out_prefixes(dut_to_down)) {
    snap.adj_out.emplace_back(p, attr_bytes(Core::to_wire(**dut.adj_rib_out_lookup(dut_to_down, p))));
  }
  snap.down_rib = down.loc_rib_prefixes();
  return snap;
}

// ---------------------------------------------------------------------------
// ROUTE-REFRESH under peer groups (RibOut export engine, the default).
//
// Three eBGP neighbours in one remote AS share a RibOut; a fourth sits in a
// different AS (its own group). A refresh from ONE group member must replay
// the advertised table to that member alone — groupmates and the other group
// hear nothing — while reevaluate_exports() replays to every peer.

TYPED_TEST(RefreshEngineTest, RefreshOfOneGroupMemberReplaysToThatPeerOnly) {
  net::EventLoop loop;
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  TypeParam dut(loop, cfg);

  net::Duplex feed(loop, 1000);
  dut.add_peer(feed.a(), {.name = "feed", .asn = 65100, .address = Ipv4Addr(10, 0, 0, 9)});

  constexpr std::size_t kSinks = 4;  // 0,1,2 share AS 65200; 3 is AS 65201
  std::vector<std::unique_ptr<net::Duplex>> links;
  std::vector<std::unique_ptr<harness::Sink>> sinks;
  for (std::size_t i = 0; i < kSinks; ++i) {
    const bgp::Asn asn = i < 3 ? 65200 : 65201;
    links.push_back(std::make_unique<net::Duplex>(loop, 1000));
    const Ipv4Addr addr(10, 0, 1, static_cast<std::uint8_t>(i + 1));
    dut.add_peer(links.back()->a(), {.name = "sink", .asn = asn, .address = addr});
    bgp::PeerSession::Config sc;
    sc.local_asn = asn;
    sc.peer_asn = 65000;
    sc.local_id = 0x0A000100 + static_cast<std::uint32_t>(i);
    sc.local_addr = addr;
    sc.peer_addr = cfg.address;
    sinks.push_back(std::make_unique<harness::Sink>(loop, links.back()->b(), sc));
    sinks.back()->record_raw(true);
  }
  dut.start();
  for (auto& sink : sinks) sink->start();

  bgp::OpenMessage open;
  open.asn = 65100;
  open.my_as_2octet = 65100;
  open.hold_time = 90;
  open.bgp_id = 0x0A000009;
  feed.b().write(bgp::encode_open(open));
  feed.b().write(bgp::encode_keepalive());
  loop.run_until(kSec);

  bgp::UpdateMessage m;
  m.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  m.attrs.put(bgp::AsPath({65100}).to_attr());
  m.attrs.put(bgp::make_next_hop(Ipv4Addr(10, 0, 0, 9)));
  constexpr std::size_t kRoutes = 12;
  for (std::size_t i = 0; i < kRoutes; ++i)
    m.nlri.push_back(Prefix(Ipv4Addr(10, 61, static_cast<std::uint8_t>(i), 0), 24));
  feed.b().write(bgp::encode_update(m));
  loop.run_until(loop.now() + 2 * kSec);

  for (auto& sink : sinks) ASSERT_EQ(sink->prefixes(), kRoutes);
  // 3 groups: the feeder's AS, the shared 65200 group, the solo 65201 group.
  EXPECT_EQ(dut.ribout_group_count(), 3u);

  auto raw_counts = [&] {
    std::vector<std::size_t> counts;
    for (auto& sink : sinks) counts.push_back(sink->raw().size());
    return counts;
  };

  const auto before = raw_counts();
  sinks[1]->session().send_route_refresh();
  loop.run_until(loop.now() + 2 * kSec);
  const auto after = raw_counts();
  EXPECT_GT(after[1], before[1]) << "refreshed member got no replay";
  for (std::size_t i = 0; i < kSinks; ++i) {
    if (i == 1) continue;
    EXPECT_EQ(after[i], before[i]) << "refresh of a groupmate leaked to sink " << i;
  }
  // The replay is a clean re-advertisement: full table, no withdrawals.
  EXPECT_EQ(sinks[1]->prefixes(), 2 * kRoutes);
  EXPECT_EQ(sinks[1]->withdrawals(), 0u);

  // reevaluate_exports() replays to EVERY peer (policy may have changed).
  dut.reevaluate_exports();
  loop.run_until(loop.now() + 2 * kSec);
  const auto reeval = raw_counts();
  for (std::size_t i = 0; i < kSinks; ++i) {
    EXPECT_GT(reeval[i], after[i]) << "reevaluation skipped sink " << i;
    EXPECT_EQ(sinks[i]->withdrawals(), 0u);
  }
  // Group membership is intact after the refreshed member resynced.
  EXPECT_EQ(dut.ribout_group_count(), 3u);
}

TYPED_TEST(RefreshEngineTest, ParallelRefreshChurnMatchesSerialReplay) {
  const auto parallel = run_refresh_churn<TypeParam>(8);
  const auto serial = run_refresh_churn<TypeParam>(1);

  // The script must leave real surviving state or the comparison is hollow:
  // 16 announced, minus {2,3} withdrawn and never re-announced, minus {0}.
  ASSERT_EQ(serial.adj_out.size(), 13u);
  ASSERT_EQ(serial.down_rib.size(), 13u);

  ASSERT_EQ(parallel.adj_out.size(), serial.adj_out.size());
  for (std::size_t i = 0; i < serial.adj_out.size(); ++i) {
    EXPECT_EQ(parallel.adj_out[i].first, serial.adj_out[i].first);
    EXPECT_EQ(parallel.adj_out[i].second, serial.adj_out[i].second)
        << "Adj-RIB-Out attrs for " << parallel.adj_out[i].first.str()
        << " differ between parallelism 8 and serial replay";
  }
  EXPECT_EQ(parallel.down_rib, serial.down_rib);
}

}  // namespace
