// RFC 2918 ROUTE-REFRESH: codec, session delivery, and the operational use
// the paper motivates — applying a freshly loaded extension to already
// received routes without flapping sessions.
#include <gtest/gtest.h>

#include "extensions/igp_filter.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(RouteRefresh, CodecRoundTrip) {
  const bgp::RouteRefreshMessage refresh{1, 1};
  const auto wire = bgp::encode_route_refresh(refresh);
  const auto frame = bgp::try_frame(wire);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, bgp::MessageType::kRouteRefresh);
  const auto body = bgp::decode_body(frame->type, frame->body);
  ASSERT_TRUE(body.has_value());
  const auto decoded = std::get<bgp::RouteRefreshMessage>(*body);
  EXPECT_EQ(decoded, refresh);
}

TEST(RouteRefresh, BadLengthRejected) {
  auto wire = bgp::encode_route_refresh(bgp::RouteRefreshMessage{});
  wire.pop_back();
  wire[17] = static_cast<std::uint8_t>(wire.size());  // fix header length
  const auto frame = bgp::try_frame(wire);
  ASSERT_TRUE(frame.has_value());
  const auto body = bgp::decode_body(frame->type, frame->body);
  ASSERT_FALSE(body.has_value());
  EXPECT_EQ(body.status().error_class(), util::ErrorClass::kSessionReset);
}

TEST(RouteRefresh, SessionDeliversCallback) {
  net::EventLoop loop;
  net::Duplex link(loop, 1000);
  bgp::PeerSession a(loop, link.a(),
                     {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                      .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  bgp::PeerSession b(loop, link.b(),
                     {.local_asn = 65002, .peer_asn = 65001, .local_id = 2,
                      .local_addr = Ipv4Addr(2), .peer_addr = Ipv4Addr(1)});
  int refreshes = 0;
  b.on_route_refresh = [&] { ++refreshes; };
  a.start();
  b.start();
  loop.run_until(kSec);
  a.send_route_refresh();
  loop.run_until(2 * kSec);
  EXPECT_EQ(refreshes, 1);
  EXPECT_TRUE(a.established());
}

TEST(RouteRefresh, OutsideEstablishedIsFsmError) {
  net::EventLoop loop;
  net::Duplex link(loop, 0);
  bgp::PeerSession a(loop, link.a(),
                     {.local_asn = 65001, .peer_asn = 65002, .local_id = 1,
                      .local_addr = Ipv4Addr(1), .peer_addr = Ipv4Addr(2)});
  a.start();
  link.b().write(bgp::encode_route_refresh(bgp::RouteRefreshMessage{}));
  loop.run_until(kSec);
  EXPECT_EQ(a.state(), bgp::SessionState::kIdle);
}

template <typename T>
class RefreshEngineTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(RefreshEngineTest, RouterTypes);

TYPED_TEST(RefreshEngineTest, LoadExtensionThenRefreshReappliesExportPolicy) {
  // DUT learns routes and re-exports them. The downstream router then
  // requests a refresh AFTER the DUT loads the Listing-1 export filter:
  // the refresh re-runs export processing, the filter now rejects, and the
  // downstream receives nothing new while the DUT keeps the routes.
  net::EventLoop loop;
  igp::Graph graph;
  const auto dut_node = graph.add_node(Ipv4Addr(10, 0, 0, 2), "dut");
  const auto up_node = graph.add_node(Ipv4Addr(10, 0, 0, 1), "up");
  graph.add_link(dut_node, up_node, 1000);
  igp::IgpTable igp_table(graph, dut_node);

  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  cfg.igp = &igp_table;
  TypeParam dut(loop, cfg);

  typename TypeParam::Config uc;
  uc.name = "up";
  uc.asn = 65000;
  uc.router_id = 0x0A000001;
  uc.address = Ipv4Addr(10, 0, 0, 1);
  TypeParam up(loop, uc);

  typename TypeParam::Config dc;
  dc.name = "down";
  dc.asn = 65100;
  dc.router_id = 0x0A000003;
  dc.address = Ipv4Addr(10, 0, 0, 3);
  TypeParam down(loop, dc);

  net::Duplex l1(loop, 1000), l2(loop, 1000);
  up.add_peer(l1.a(), {.name = "dut", .asn = 65000, .address = cfg.address});
  dut.add_peer(l1.b(), {.name = "up", .asn = 65000, .address = uc.address});
  dut.add_peer(l2.a(), {.name = "down", .asn = 65100, .address = dc.address});
  const auto down_to_dut = down.add_peer(l2.b(), {.name = "dut", .asn = 65000,
                                                  .address = cfg.address});

  up.originate(Prefix::parse("203.0.113.0/24"));
  up.start();
  dut.start();
  down.start();
  loop.run_until(3 * kSec);
  ASSERT_NE(down.best(Prefix::parse("203.0.113.0/24")), nullptr);

  // Load the extension at runtime, then let the downstream refresh.
  dut.set_xtra_u32(xbgp::xtra::kMaxMetric, 100);  // metric to nexthop is 1000
  dut.load_extensions(ext::igp_filter_manifest());
  down.request_route_refresh(down_to_dut);
  loop.run_until(loop.now() + 3 * kSec);

  // The refresh re-ran the export filter: the route is now withdrawn from
  // the downstream, while the DUT still holds it.
  EXPECT_EQ(down.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_NE(dut.best(Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_GT(dut.stats().exports_rejected + dut.vmm().stats().extension_handled, 0u);
}

}  // namespace
