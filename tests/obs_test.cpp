// The telemetry spine (src/obs/): registry semantics (per-slot cells,
// fold-on-read, idempotent registration), histogram bucket placement and
// quantiles, trace ring wraparound, the exposition formats, the
// component-tagged logger, ThreadPool region stats, RTR session counters
// and end-to-end span capture through a real Fir testbed run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "extensions/route_reflection.hpp"
#include "obs/eventlog.hpp"
#include "obs/flap.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rpki/roa_hash.hpp"
#include "rpki/rtr_session.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace xb;

// --- registry -------------------------------------------------------------------

TEST(Registry, FoldsCountersAcrossSlots) {
  obs::Registry reg(/*slots=*/4);
  const auto id = reg.counter("t_total", "test");
  reg.add(id, 1, 0);
  reg.add(id, 10, 1);
  reg.add(id, 100, 2);
  reg.add(id, 1000, 3);
  EXPECT_EQ(reg.value(id), 1111u);

  const auto snap = reg.snapshot();
  const obs::MetricValue* mv = snap.find("t_total");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->value, 1111u);
  EXPECT_EQ(mv->kind, obs::MetricKind::kCounter);
}

TEST(Registry, RegistrationIsIdempotentByName) {
  obs::Registry reg;
  const auto a = reg.counter("x_total", "x");
  const auto b = reg.counter("x_total", "x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.series_count(), 1u);
  // Same name, different kind: a wiring bug, reported loudly.
  EXPECT_THROW((void)reg.gauge("x_total", "x"), std::logic_error);
}

TEST(Registry, GaugeSetOverwrites) {
  obs::Registry reg(2);
  const auto id = reg.gauge("depth", "queue depth");
  reg.gauge_set(id, 7, 0);
  reg.gauge_set(id, 3, 0);
  reg.gauge_set(id, 5, 1);
  EXPECT_EQ(reg.value(id), 8u);  // folded = sum of slot cells
}

TEST(Registry, DisabledRegistryIsInert) {
  obs::Registry reg(/*slots=*/2, /*enabled=*/false);
  const auto c = reg.counter("c_total", "c");
  const auto h = reg.histogram("h_ns", "h");
  reg.add(c, 5, 0);
  reg.observe(h, 123, 1);
  EXPECT_EQ(reg.value(c), 0u);
  EXPECT_EQ(reg.value(h), 0u);
  EXPECT_FALSE(reg.enabled());
}

TEST(Registry, ResetZeroesCellsButKeepsSeries) {
  obs::Registry reg;
  const auto id = reg.counter("r_total", "r");
  reg.add(id, 9);
  reg.reset();
  EXPECT_EQ(reg.value(id), 0u);
  EXPECT_EQ(reg.series_count(), 1u);
  reg.add(id, 2);
  EXPECT_EQ(reg.value(id), 2u);
}

TEST(Registry, CollectorsRunAtSnapshotTime) {
  obs::Registry reg;
  int calls = 0;
  reg.add_collector([&](obs::Snapshot& out) {
    ++calls;
    out.counter("pulled_total", "from collector", 42);
  });
  EXPECT_EQ(calls, 0);
  const auto snap = reg.snapshot();
  EXPECT_EQ(calls, 1);
  const auto* mv = snap.find("pulled_total");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->value, 42u);
}

// --- histograms -----------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  obs::Registry reg(2);
  const std::uint64_t bounds[] = {10, 20};
  const auto id = reg.histogram("lat_ns", "latency", bounds);
  reg.observe(id, 10, 0);  // == bound: lands in bucket le=10
  reg.observe(id, 11, 0);  // bucket le=20
  reg.observe(id, 20, 1);  // bucket le=20, other slot
  reg.observe(id, 21, 1);  // +Inf
  EXPECT_EQ(reg.value(id), 4u);  // histogram value() == observation count

  const auto snap = reg.snapshot();
  const auto* mv = snap.find("lat_ns");
  ASSERT_NE(mv, nullptr);
  ASSERT_EQ(mv->buckets.size(), 3u);  // two bounds + +Inf
  EXPECT_EQ(mv->buckets[0], 1u);
  EXPECT_EQ(mv->buckets[1], 2u);  // folded across slots
  EXPECT_EQ(mv->buckets[2], 1u);
  EXPECT_EQ(mv->count, 4u);
  EXPECT_EQ(mv->sum, 10u + 11u + 20u + 21u);
}

TEST(Histogram, QuantilesInterpolate) {
  obs::Registry reg;
  const std::uint64_t bounds[] = {100, 200, 400};
  const auto id = reg.histogram("q_ns", "q", bounds);
  for (int i = 0; i < 90; ++i) reg.observe(id, 50);    // le=100
  for (int i = 0; i < 10; ++i) reg.observe(id, 300);   // le=400
  const auto snap = reg.snapshot();
  const auto* mv = snap.find("q_ns");
  ASSERT_NE(mv, nullptr);
  EXPECT_LE(mv->quantile(0.5), 100.0);
  EXPECT_GT(mv->quantile(0.99), 200.0);
  EXPECT_LE(mv->quantile(0.99), 400.0);
  EXPECT_EQ(mv->quantile(0.0), 0.0);
}

// --- trace ring -----------------------------------------------------------------

TEST(TraceRing, WrapsAroundKeepingNewestSpans) {
  obs::TraceRing ring(/*capacity_per_slot=*/4, /*slots=*/1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::Span* s = ring.append(0);
    s->start_ns = 100 + i;
    s->duration_ns = i;
    obs::set_span_program(*s, "prog");
  }
  EXPECT_EQ(ring.recorded_total(), 6u);
  EXPECT_EQ(ring.dropped_total(), 2u);

  const auto spans = ring.collect();
  ASSERT_EQ(spans.size(), 4u);
  // The two oldest (start 100, 101) were overwritten; order is by start_ns.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_ns, 102u + i);
  }
  EXPECT_STREQ(spans.front().program, "prog");
}

TEST(TraceRing, CollectsAcrossSlotsSortedByTime) {
  obs::TraceRing ring(8, /*slots=*/2);
  ring.append(1)->start_ns = 30;
  ring.append(0)->start_ns = 10;
  ring.append(1)->start_ns = 20;
  const auto spans = ring.collect();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].start_ns, 10u);
  EXPECT_EQ(spans[1].start_ns, 20u);
  EXPECT_EQ(spans[2].start_ns, 30u);
  ring.clear();
  EXPECT_EQ(ring.collect().size(), 0u);
  EXPECT_EQ(ring.recorded_total(), 0u);
}

TEST(TraceRing, SpanProgramNameTruncates) {
  obs::Span s;
  obs::set_span_program(s, std::string(100, 'a'));
  EXPECT_EQ(std::strlen(s.program), sizeof(s.program) - 1);
}

// --- exposition -----------------------------------------------------------------

TEST(Exposition, PrometheusEmitsOneHeaderPerFamily) {
  obs::Registry reg;
  reg.add(reg.counter("xbgp_ov_total{state=\"valid\"}", "ov"), 3);
  reg.add(reg.counter("xbgp_ov_total{state=\"invalid\"}", "ov"), 1);
  const std::uint64_t bounds[] = {10, 20};
  const auto h = reg.histogram("xbgp_lat_ns", "lat", bounds);
  reg.observe(h, 5);
  reg.observe(h, 25);

  const std::string text = obs::to_prometheus(reg.snapshot());
  // Labelled series share one HELP/TYPE header for the base name.
  EXPECT_EQ(text.find("# HELP xbgp_ov_total"),
            text.rfind("# HELP xbgp_ov_total"));
  EXPECT_NE(text.find("xbgp_ov_total{state=\"valid\"} 3"), std::string::npos);
  EXPECT_NE(text.find("xbgp_ov_total{state=\"invalid\"} 1"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, sum and count.
  EXPECT_NE(text.find("# TYPE xbgp_lat_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("xbgp_lat_ns_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("xbgp_lat_ns_bucket{le=\"20\"} 1"), std::string::npos);
  EXPECT_NE(text.find("xbgp_lat_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("xbgp_lat_ns_sum 30"), std::string::npos);
  EXPECT_NE(text.find("xbgp_lat_ns_count 2"), std::string::npos);
}

TEST(Exposition, JsonlEmitsOneObjectPerSpan) {
  std::vector<obs::Span> spans(2);
  spans[0].start_ns = 1;
  spans[0].duration_ns = 10;
  spans[0].op = 2;
  spans[0].verdict = obs::SpanVerdict::kHandled;
  obs::set_span_program(spans[0], "rr");
  spans[1].start_ns = 2;
  spans[1].verdict = obs::SpanVerdict::kFault;
  spans[1].fault_class = 1;
  obs::set_span_program(spans[1], "bad\"prog");

  const std::string out = obs::to_jsonl(
      spans, [](std::uint8_t op) { return std::string_view(op == 2 ? "INBOUND" : "?"); },
      [](std::uint8_t) { return std::string_view("budget"); });
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("\"point\":\"INBOUND\""), std::string::npos);
  EXPECT_NE(out.find("\"program\":\"rr\""), std::string::npos);
  EXPECT_NE(out.find("\"verdict\":\"fault\""), std::string::npos);
  EXPECT_NE(out.find("\"fault\":\"budget\""), std::string::npos);
  EXPECT_NE(out.find("bad\\\"prog"), std::string::npos);  // JSON-escaped
}

// --- logger ---------------------------------------------------------------------

struct CapturedLine {
  util::LogLevel level;
  std::string component;
  std::string msg;
};

TEST(Log, ComponentThresholdOverridesGlobal) {
  std::vector<CapturedLine> lines;
  auto old_sink = util::Log::sink();
  const auto old_threshold = util::Log::threshold();
  util::Log::sink() = [&](util::LogLevel level, std::string_view component,
                          const std::string& msg) {
    lines.push_back({level, std::string(component), msg});
  };
  util::Log::threshold() = util::LogLevel::kWarn;
  util::Log::set_component_threshold("vmm", util::LogLevel::kDebug);

  constexpr util::Logger vmm{"vmm"};
  constexpr util::Logger engine{"engine"};
  vmm.debug("verbose ", 42);   // passes the per-component override
  engine.debug("dropped");     // below the global threshold
  engine.warn("kept");

  util::Log::clear_component_thresholds();
  vmm.debug("dropped after clear");

  util::Log::sink() = old_sink;
  util::Log::threshold() = old_threshold;

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].component, "vmm");
  EXPECT_EQ(lines[0].msg, "verbose 42");
  EXPECT_EQ(lines[0].level, util::LogLevel::kDebug);
  EXPECT_EQ(lines[1].component, "engine");
  EXPECT_EQ(lines[1].msg, "kept");
}

// --- thread pool stats ----------------------------------------------------------

TEST(ThreadPoolStats, CountsRegionsAndIndices) {
  util::ThreadPool pool(1);
  pool.run_indexed(4, [](std::size_t) {});
  pool.run_indexed(2, [](std::size_t) {});
  const auto& st = pool.stats();
  EXPECT_EQ(st.regions, 2u);
  EXPECT_EQ(st.indices, 6u);
  EXPECT_EQ(st.max_indices, 4u);
  EXPECT_GE(st.region_ns, st.max_region_ns);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().regions, 0u);
}

// --- RTR session counters -------------------------------------------------------

TEST(RtrTelemetry, CountsSyncAndRoas) {
  obs::Registry reg;
  net::EventLoop loop;
  net::Duplex link(loop, 0);
  rpki::rtr::CacheServer server(loop, /*session_id=*/7);
  rpki::RoaHashTable table;
  rpki::rtr::RtrClient client(loop, link.b(), table);
  server.attach(link.a());
  client.set_telemetry(&reg);

  server.announce(rpki::Roa{util::Prefix::parse("10.0.0.0/8"), 24, 65001});
  server.announce(rpki::Roa{util::Prefix::parse("192.0.2.0/24"), 24, 65002});
  client.start();
  loop.run_until(loop.now() + 1'000'000'000ull);

  ASSERT_TRUE(client.synchronized());
  const auto snap = reg.snapshot();
  const auto* roas = snap.find("xbgp_rtr_roas_applied_total");
  ASSERT_NE(roas, nullptr);
  EXPECT_EQ(roas->value, 2u);
  const auto* syncs = snap.find("xbgp_rtr_syncs_total");
  ASSERT_NE(syncs, nullptr);
  EXPECT_EQ(syncs->value, 1u);
  const auto* pdus = snap.find("xbgp_rtr_pdus_rx_total");
  ASSERT_NE(pdus, nullptr);
  EXPECT_GE(pdus->value, 4u);  // CacheResponse + 2 prefixes + EndOfData
}

// --- end-to-end: spans and counters through a real host run ---------------------

// --- flight recorder: event log -----------------------------------------------

TEST(EventLog, WrapsAroundCountingDrops) {
  obs::EventLog log(/*capacity_per_slot=*/4, /*slots=*/1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::Event* e = log.append(0);
    e->kind = obs::EventKind::kRouteLearned;
    e->route_serial = i + 1;
  }
  EXPECT_EQ(log.recorded_total(), 6u);
  EXPECT_EQ(log.dropped_total(), 2u);

  const auto events = log.collect();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest were overwritten; the survivors come back serial-sorted.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].serial, 3u + i);
    EXPECT_EQ(events[i].route_serial, 3u + i);
  }
  log.clear();
  EXPECT_EQ(log.recorded_total(), 0u);
  EXPECT_TRUE(log.collect().empty());
}

TEST(EventLog, ParallelAppendAcrossEightSlots) {
  constexpr std::size_t kSlots = 8, kCap = 64, kPerSlot = 200;
  obs::EventLog log(kCap, kSlots);
  std::vector<std::thread> threads;
  threads.reserve(kSlots);
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    threads.emplace_back([&log, slot] {
      for (std::size_t i = 0; i < kPerSlot; ++i) {
        obs::Event* e = log.append(slot);
        e->kind = obs::EventKind::kBestChanged;
        e->prefix_addr = static_cast<std::uint32_t>(slot * kPerSlot + i);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(log.recorded_total(), kSlots * kPerSlot);
  EXPECT_EQ(log.dropped_total(), kSlots * (kPerSlot - kCap));
  const auto events = log.collect();
  ASSERT_EQ(events.size(), kSlots * kCap);
  // Serials are globally unique and collect() returns them ascending.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].serial, events[i].serial);
  }
  // Each slot kept exactly its newest kCap events.
  std::size_t per_slot[kSlots] = {};
  for (const auto& e : events) ++per_slot[e.slot];
  for (std::size_t s = 0; s < kSlots; ++s) EXPECT_EQ(per_slot[s], kCap);
}

// --- flight recorder: flap detector -------------------------------------------

TEST(FlapDetector, PenaltyDecaysWithHalfLife) {
  obs::FlapOptions opt;  // penalty 1000, half-life 15s, quiet 2s
  obs::FlapDetector det(opt, /*shards=*/1);
  const std::uint64_t t0 = 1'000'000'000ull;
  det.on_change(0, obs::flap_key(0x0A000000, 24), t0);

  EXPECT_EQ(det.verdict(t0).max_penalty, opt.penalty_per_change);
  const auto later = det.verdict(t0 + opt.half_life_ns);
  EXPECT_NEAR(static_cast<double>(later.max_penalty),
              static_cast<double>(opt.penalty_per_change) / 2.0, 8.0);
  EXPECT_EQ(later.total_changes, 1u);
  // One isolated change, quiet window long past: quiescent.
  EXPECT_TRUE(later.quiescent);
}

TEST(FlapDetector, SuppressionHoldsPastTheQuietWindow) {
  obs::FlapOptions opt;
  obs::FlapDetector det(opt, /*shards=*/2);
  const std::uint64_t key = obs::flap_key(0xC0000200, 24);
  std::uint64_t now = 1'000'000'000ull;
  for (int i = 0; i < 4; ++i) {  // 4000 penalty, over the 3000 threshold
    det.on_change(1, key, now);
    now += 100'000'000ull;
  }
  // Within the quiet window: active and suppressed.
  auto v = det.verdict(now);
  EXPECT_FALSE(v.quiescent);
  EXPECT_EQ(v.active_prefixes, 1u);
  EXPECT_EQ(v.suppressed_prefixes, 1u);
  // Past the quiet window the penalty has barely decayed: still suppressed,
  // still not quiescent — this is what the oracle keys on.
  v = det.verdict(now + opt.quiet_ns + 1);
  EXPECT_FALSE(v.quiescent);
  EXPECT_EQ(v.active_prefixes, 0u);
  EXPECT_EQ(v.suppressed_prefixes, 1u);
  EXPECT_GT(v.max_penalty, 3000u);
  // Minutes later the penalty has decayed under the threshold: quiescent.
  v = det.verdict(now + 10 * opt.half_life_ns);
  EXPECT_TRUE(v.quiescent);
  EXPECT_EQ(v.suppressed_prefixes, 0u);
}

TEST(FlapDetector, SweepReportsBurstDurationsOnce) {
  obs::FlapOptions opt;
  obs::FlapDetector det(opt, /*shards=*/1);
  const std::uint64_t t0 = 5'000'000'000ull;
  const std::uint64_t key = obs::flap_key(0x0A010000, 16);
  det.on_change(0, key, t0);
  det.on_change(0, key, t0 + 1'000'000'000ull);  // same burst, 1s apart

  std::vector<std::uint64_t> bursts;
  auto observe = [&bursts](std::uint64_t ns) { bursts.push_back(ns); };
  // Still inside the quiet window: the burst is open, nothing reported.
  det.sweep(t0 + 1'500'000'000ull, observe);
  EXPECT_TRUE(bursts.empty());
  // Stable for quiet_ns: the burst closes, duration = last - first change.
  det.sweep(t0 + 1'000'000'000ull + opt.quiet_ns + 1, observe);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0], 1'000'000'000ull);
  // Idempotent: a closed burst is reported exactly once.
  det.sweep(t0 + 100'000'000'000ull, observe);
  EXPECT_EQ(bursts.size(), 1u);
}

// --- flight recorder: exposition ----------------------------------------------

TEST(Exposition, PrometheusEscapesLabelValues) {
  // A peer name with a quote, a backslash and a newline must come out
  // escaped per the 0.0.4 text format, not spliced raw into the series.
  const std::string peer = "we\"ird\\peer\nx";
  obs::Registry reg;
  reg.add(reg.counter("xbgp_session_updates_received_total{peer=\"" + peer + "\"}",
                      "updates per peer"),
          7, 0);
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("peer=\"we\\\"ird\\\\peer\\nx\""), std::string::npos);
  // No line of the exposition may carry an unescaped quote-breaking value.
  EXPECT_EQ(text.find("peer=\"we\"ird"), std::string::npos);
}

TEST(Exposition, EventJsonlRendersKindsNamesAndEscapes) {
  std::vector<obs::Event> events;
  obs::Event learned;
  learned.serial = 1;
  learned.ts_ns = 42;
  learned.kind = obs::EventKind::kRouteLearned;
  learned.prefix_addr = 0x0A000100;  // 10.0.1.0
  learned.prefix_len = 24;
  learned.peer = 2;
  learned.route_serial = 9;
  events.push_back(learned);

  obs::Event mutation;
  mutation.serial = 2;
  mutation.kind = obs::EventKind::kExtensionMutation;
  mutation.program = 1;
  mutation.op = static_cast<std::uint8_t>(xbgp::Op::kReceiveMessage);
  events.push_back(mutation);

  obs::Event down;
  down.serial = 3;
  down.kind = obs::EventKind::kSessionDown;
  down.peer = 2;
  events.push_back(down);

  const std::string jsonl = obs::to_jsonl(
      events,
      [](std::uint32_t id) {
        return id == 2 ? std::string_view("up\"stream") : std::string_view{};
      },
      [](std::uint8_t o) {
        return std::string_view(to_string(static_cast<xbgp::Op>(o)));
      },
      [](std::uint16_t p) {
        return p == 1 ? std::string_view("geo") : std::string_view{};
      });

  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("\"kind\":\"route-learned\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"prefix\":\"10.0.1.0/24\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"route_serial\":9"), std::string::npos);
  // Peer names pass through the JSON escaper.
  EXPECT_NE(jsonl.find("\"peer\":\"up\\\"stream\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"program\":\"geo\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"extension-mutation\""), std::string::npos);
  // Session events carry no prefix field.
  const auto last = jsonl.rfind("{");
  EXPECT_EQ(jsonl.find("\"prefix\"", last), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"session-down\"", last), std::string::npos);
}

TEST(EndToEnd, TracedRunRecordsSpansAndRegistrySeries) {
  using Fir = hosts::fir::FirRouter;
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  Fir::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = 2;
  cfg.obs.tracing = true;
  Fir dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<Fir> bed(loop, dut, plan);
  bed.establish();

  harness::WorkloadParams params;
  params.route_count = 50;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);

  // Registry: the engine series exist and agree with the stats() shim.
  const auto stats = dut.stats();
  EXPECT_GT(stats.prefixes_accepted, 0u);
  const auto snap = dut.telemetry().registry().snapshot();
  const auto* accepted = snap.find("xbgp_router_prefixes_accepted_total");
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->value, stats.prefixes_accepted);
  // The collector-backed Vmm series made it into the snapshot too.
  ASSERT_NE(snap.find("xbgp_vmm_invocations_total"), nullptr);
  EXPECT_GT(snap.find("xbgp_vmm_invocations_total")->value, 0u);

  // Tracing: spans were recorded for the inbound filter, with the program
  // name and a terminal verdict, and the per-point histogram has samples.
  const auto spans = dut.telemetry().trace().collect();
  ASSERT_FALSE(spans.empty());
  bool saw_inbound = false;
  for (const auto& s : spans) {
    if (static_cast<xbgp::Op>(s.op) != xbgp::Op::kInboundFilter) continue;
    saw_inbound = true;
    EXPECT_GT(std::strlen(s.program), 0u);
    EXPECT_LT(s.slot, 2);
  }
  EXPECT_TRUE(saw_inbound);
  const auto* hist =
      snap.find("xbgp_vmm_exec_ns{point=\"BGP_INBOUND_FILTER\"}");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count, 0u);
  EXPECT_NE(obs::to_prometheus(snap).find("xbgp_vmm_exec_ns"), std::string::npos);
}

TEST(EndToEnd, TracingOffRecordsCountersButNoSpans) {
  using Fir = hosts::fir::FirRouter;
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  Fir::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  Fir dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<Fir> bed(loop, dut, plan);
  bed.establish();

  harness::WorkloadParams params;
  params.route_count = 20;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);

  EXPECT_EQ(dut.telemetry().trace().recorded_total(), 0u);
  EXPECT_GT(dut.stats().prefixes_accepted, 0u);
  // Per-peer session series carry the peer label.
  const auto snap = dut.telemetry().registry().snapshot();
  const auto* rx = snap.find("xbgp_session_updates_received_total{peer=\"upstream\"}");
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->value, dut.session(0).updates_received());
  EXPECT_GT(rx->value, 0u);
}

}  // namespace
