// Tier-2 JIT decline/fallback coverage (docs/execution_engine.md, fallback
// matrix). Every way a compilation can decline — env knob, allocation
// failure, unsupported op — must leave the program running tier 1 with
// bit-identical results, bump the right fallbacks counter, and never surface
// as an error. The fault-for-fault execution parity itself is gated by
// ebpf_differential_test.cpp; this file covers the paths where tier 2 is
// *absent*.
#include <gtest/gtest.h>

#include <cstdlib>

#include "ebpf/analyzer.hpp"
#include "ebpf/assembler.hpp"
#include "ebpf/codebuf.hpp"
#include "ebpf/jit.hpp"
#include "ebpf/translator.hpp"
#include "ebpf/vm.hpp"
#include "xbgp/vmm.hpp"

namespace {

using namespace xb;
using namespace xb::ebpf;
using xbgp::Manifest;
using xbgp::Op;
using xbgp::Vmm;

/// Minimal host: the test programs never touch the host API.
class StubHost : public xbgp::HostApi {
 public:
  bool peer_info(const xbgp::ExecContext&, xbgp::PeerInfo&) override { return false; }
  bool src_peer_info(const xbgp::ExecContext&, xbgp::PeerInfo&) override { return false; }
  std::optional<bgp::WireAttr> get_attr(const xbgp::ExecContext&, std::uint8_t) override {
    return std::nullopt;
  }
  bool set_attr(xbgp::ExecContext&, bgp::WireAttr) override { return false; }
  bool add_attr(xbgp::ExecContext&, bgp::WireAttr) override { return false; }
  bool nexthop_info(const xbgp::ExecContext&, xbgp::NexthopInfo&) override { return false; }
  std::span<const std::uint8_t> get_xtra(std::string_view) override { return {}; }
  bool write_buf(xbgp::ExecContext&, std::span<const std::uint8_t>) override { return false; }
  bool rib_add_route(const util::Prefix&, util::Ipv4Addr) override { return false; }
  std::optional<util::Ipv4Addr> rib_lookup(const util::Prefix&) override {
    return std::nullopt;
  }
  bool set_route_meta(xbgp::ExecContext&, std::uint32_t) override { return false; }
  std::optional<std::uint32_t> get_route_meta(const xbgp::ExecContext&) override {
    return std::nullopt;
  }
  void notify_extension_fault(const xbgp::FaultInfo&) override {}
  void ebpf_print(std::string_view) override {}
};

/// Scoped XBGP_JIT override; restores the previous value on destruction.
class EnvGuard {
 public:
  explicit EnvGuard(const char* value) {
    const char* old = std::getenv("XBGP_JIT");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("XBGP_JIT", value, 1);
    } else {
      ::unsetenv("XBGP_JIT");
    }
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv("XBGP_JIT", old_.c_str(), 1);
    } else {
      ::unsetenv("XBGP_JIT");
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

Program arith_loop_program(const char* name) {
  Assembler a;
  auto head = a.make_label();
  auto done = a.make_label();
  a.mov64(Reg::R0, 0);
  a.mov64(Reg::R2, 0);
  a.place(head);
  a.jge(Reg::R2, 16, done);
  a.add64(Reg::R0, Reg::R2);
  a.xor64(Reg::R0, 0x21);
  a.add64(Reg::R2, 1);
  a.ja(head);
  a.place(done);
  a.exit_();
  return a.build(name);
}

IrProgram translate(const Program& p) {
  AnalysisResult analysis = Analyzer::analyze(p, p.required_helpers());
  return Translator::translate(p, analysis.ok() ? &analysis.facts : nullptr);
}

RunResult run_mode(Vm& vm, const Program& p, const IrProgram* ir, const JitProgram* jit,
                   ExecMode mode) {
  vm.zero_stack();
  vm.set_translated(ir);
  vm.set_jit(jit);
  vm.set_exec_mode(mode);
  return vm.run(p);
}

TEST(JitFallback, EnvKnobDisablesCompilation) {
  if (!Jit::supported()) GTEST_SKIP() << "tier 2 unsupported on this host";
  const Program p = arith_loop_program("env_knob");
  const IrProgram ir = translate(p);
  {
    EnvGuard off("off");
    EXPECT_FALSE(Jit::enabled_by_env());
    const Jit::Result r = Jit::compile(ir);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.declined, JitFallback::kDisabled);
  }
  {
    EnvGuard zero("0");
    EXPECT_FALSE(Jit::enabled_by_env());
  }
  {
    EnvGuard on("on");
    EXPECT_TRUE(Jit::enabled_by_env());
    EXPECT_TRUE(Jit::compile(ir).ok());
  }
}

TEST(JitFallback, AllocationFailureDeclines) {
  if (!Jit::supported()) GTEST_SKIP() << "tier 2 unsupported on this host";
  EnvGuard on(nullptr);
  const Program p = arith_loop_program("alloc_fail");
  const IrProgram ir = translate(p);
  CodeBuf::set_fail_allocations_for_test(true);
  const Jit::Result r = Jit::compile(ir);
  CodeBuf::set_fail_allocations_for_test(false);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.declined, JitFallback::kAllocFailed);
  EXPECT_TRUE(Jit::compile(ir).ok()) << "hook must not stick";
}

TEST(JitFallback, UnsupportedOpDeclines) {
  if (!Jit::supported()) GTEST_SKIP() << "tier 2 unsupported on this host";
  EnvGuard on(nullptr);
  const Program p = arith_loop_program("reject_ops");
  const IrProgram ir = translate(p);
  Jit::Options opts;
  opts.reject_ops_for_test = true;
  const Jit::Result r = Jit::compile(ir, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.declined, JitFallback::kUnsupportedOp);
}

TEST(JitFallback, DeclinedProgramRunsTier1Identically) {
  const Program p = arith_loop_program("declined");
  const IrProgram ir = translate(p);
  Vm vm;
  // kJit requested but no native image attached (the compile declined):
  // effective_mode degrades to the fast tier, results unchanged.
  const RunResult ref = run_mode(vm, p, &ir, nullptr, ExecMode::kReference);
  const std::uint64_t retired_ref = vm.instructions_retired();
  const RunResult degraded = run_mode(vm, p, &ir, nullptr, ExecMode::kJit);
  EXPECT_EQ(vm.effective_mode(), ExecMode::kFast);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.value, ref.value);
  EXPECT_EQ(vm.instructions_retired(), 2 * retired_ref);
}

TEST(JitFallback, VmmCountsDisabledFallbackAndRunsTier1) {
  if (!Jit::supported()) GTEST_SKIP() << "tier 2 unsupported on this host";
  EnvGuard off("off");
  StubHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("p", Op::kInboundFilter, arith_loop_program("p"));
  vmm.load(m);

  const Vmm::TranslationStats& t = vmm.translation_stats();
  EXPECT_EQ(t.jit_compiled, 0u);
  EXPECT_EQ(t.jit_code_bytes, 0u);
  EXPECT_EQ(t.jit_fallbacks[static_cast<std::size_t>(JitFallback::kDisabled)], 1u);

  xbgp::ExecContext ctx;
  const std::uint64_t got = vmm.execute(Op::kInboundFilter, ctx, [] { return 1ull; });
  EXPECT_EQ(vmm.stats().tier_runs[static_cast<std::size_t>(ExecMode::kFast)], 1u);
  EXPECT_EQ(vmm.stats().tier_runs[static_cast<std::size_t>(ExecMode::kJit)], 0u);

  // Same manifest with the JIT engaged: same value, tier-2 run counter.
  EnvGuard on("on");
  Vmm vmm2(host);
  vmm2.load(m);
  const Vmm::TranslationStats& t2 = vmm2.translation_stats();
  EXPECT_EQ(t2.jit_compiled, 1u);
  EXPECT_GT(t2.jit_code_bytes, 0u);
  xbgp::ExecContext ctx2;
  EXPECT_EQ(vmm2.execute(Op::kInboundFilter, ctx2, [] { return 1ull; }), got);
  EXPECT_EQ(vmm2.stats().tier_runs[static_cast<std::size_t>(ExecMode::kJit)], 1u);
}

TEST(JitProgramMeta, ElisionCountersCarryOverFromIr) {
  if (!Jit::supported()) GTEST_SKIP() << "tier 2 unsupported on this host";
  EnvGuard on(nullptr);
  Assembler a;
  a.stdw(Reg::R10, -8, 42);
  a.ldxdw(Reg::R0, Reg::R10, -8);
  a.exit_();
  const Program p = a.build("elide_me");
  const IrProgram ir = translate(p);
  ASSERT_EQ(ir.elided_checks, 2u);
  const Jit::Result r = Jit::compile(ir);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program->elided_checks(), 2u);
  EXPECT_EQ(r.program->elided_obj_checks(), 0u);
  EXPECT_EQ(r.program->checked_accesses(), 0u);
  EXPECT_GT(r.program->code_bytes(), 0u);

  Vm vm;
  const RunResult res = run_mode(vm, p, &ir, r.program.get(), ExecMode::kJit);
  EXPECT_EQ(vm.effective_mode(), ExecMode::kJit);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value, 42u);
}

TEST(JitPreferredMode, MatchesHostSupport) {
  if (Jit::supported()) {
    EXPECT_EQ(Jit::preferred_exec_mode(), ExecMode::kJit);
  } else {
    EXPECT_EQ(Jit::preferred_exec_mode(), ExecMode::kFast);
  }
}

}  // namespace
