// Message codec: framing, OPEN/UPDATE/NOTIFICATION/KEEPALIVE round trips,
// malformed-input handling mapped to RFC 4271 error codes on the typed
// Status spine (no exceptions on the decode path).
#include <gtest/gtest.h>

#include "bgp/aspath.hpp"
#include "bgp/codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb::bgp;
using xb::util::ErrorClass;
using xb::util::Ipv4Addr;
using xb::util::Prefix;

Message roundtrip(const Message& m) {
  const auto wire = encode(m);
  const auto frame = try_frame(wire);
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(frame->total_length, wire.size());
  auto decoded = decode_body(frame->type, frame->body);
  EXPECT_TRUE(decoded.has_value()) << decoded.status().message();
  return *std::move(decoded);
}

TEST(Codec, KeepaliveRoundTrip) {
  const auto wire = encode_keepalive();
  EXPECT_EQ(wire.size(), kHeaderSize);
  auto m = roundtrip(KeepaliveMessage{});
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(m));
}

TEST(Codec, OpenRoundTripWith4OctetAs) {
  OpenMessage open;
  open.asn = 396558;  // > 16 bits: needs the RFC 6793 capability
  open.hold_time = 180;
  open.bgp_id = 0xC0000201;
  auto m = roundtrip(open);
  auto& decoded = std::get<OpenMessage>(m);
  EXPECT_EQ(decoded.asn, 396558u);
  EXPECT_EQ(decoded.my_as_2octet, OpenMessage::kAsTrans);
  EXPECT_EQ(decoded.hold_time, 180);
  EXPECT_EQ(decoded.bgp_id, 0xC0000201u);
}

TEST(Codec, OpenSmallAsn) {
  OpenMessage open;
  open.asn = 65001;
  open.bgp_id = 1;
  auto decoded = std::get<OpenMessage>(roundtrip(open));
  EXPECT_EQ(decoded.asn, 65001u);
  EXPECT_EQ(decoded.my_as_2octet, 65001);
}

TEST(Codec, UpdateRoundTrip) {
  UpdateMessage update;
  update.withdrawn = {Prefix::parse("10.0.0.0/8"), Prefix::parse("192.0.2.128/25")};
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({65001}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr::parse("10.0.0.1")));
  update.nlri = {Prefix::parse("0.0.0.0/0"), Prefix::parse("203.0.113.0/24"),
                 Prefix::parse("1.2.3.4/32")};
  auto decoded = std::get<UpdateMessage>(roundtrip(update));
  EXPECT_EQ(decoded, update);
}

TEST(Codec, NotificationRoundTrip) {
  NotificationMessage notif{NotifCode::kUpdateMessageError, update_err::kMalformedAsPath,
                            {1, 2, 3}};
  auto decoded = std::get<NotificationMessage>(roundtrip(notif));
  EXPECT_EQ(decoded, notif);
}

TEST(Codec, PrefixEncodingUsesMinimalBytes) {
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({1}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr(1, 2, 3, 4)));
  update.nlri = {Prefix::parse("10.0.0.0/8")};
  const auto wire8 = encode_update(update);
  update.nlri = {Prefix::parse("10.1.2.0/24")};
  const auto wire24 = encode_update(update);
  EXPECT_EQ(wire24.size(), wire8.size() + 2);  // /24 needs 2 more address bytes
}

TEST(Framing, IncompleteReturnsIncompleteStatus) {
  const auto wire = encode_keepalive();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto frame = try_frame(std::span(wire.data(), len));
    EXPECT_FALSE(frame.has_value()) << len;
    EXPECT_TRUE(frame.status().is_incomplete()) << len;
  }
}

TEST(Framing, TwoMessagesBackToBack) {
  auto wire = encode_keepalive();
  const auto second = encode_keepalive();
  wire.insert(wire.end(), second.begin(), second.end());
  auto frame = try_frame(wire);
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->total_length, kHeaderSize);
}

TEST(Framing, BadMarkerResetsSession) {
  auto wire = encode_keepalive();
  wire[3] = 0x00;
  const auto frame = try_frame(wire);
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(frame.status().code(), static_cast<std::uint8_t>(NotifCode::kMessageHeaderError));
  EXPECT_EQ(frame.status().subcode(), 1);
}

TEST(Framing, BadLengthResetsSession) {
  auto wire = encode_keepalive();
  wire[16] = 0xFF;  // length 0xFF13 > 4096
  wire[17] = 0x13;
  auto frame = try_frame(wire);
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(frame.status().subcode(), 2);
  // Data field carries the erroneous Length field (RFC 4271 §6.1).
  EXPECT_EQ(frame.status().data(), (std::vector<std::uint8_t>{0xFF, 0x13}));
  wire[16] = 0;
  wire[17] = 5;  // < header size
  frame = try_frame(wire);
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(frame.status().subcode(), 2);
}

TEST(Framing, BadTypeResetsSession) {
  auto wire = encode_keepalive();
  wire[18] = 9;
  const auto frame = try_frame(wire);
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(frame.status().subcode(), 3);
  EXPECT_EQ(frame.status().data(), std::vector<std::uint8_t>{9});
}

TEST(Decode, TruncatedUpdateResetsSession) {
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.nlri = {Prefix::parse("10.0.0.0/8")};
  auto wire = encode_update(update);
  // Chop into the middle of the attribute section (the ORIGIN attribute is
  // the last 4 body bytes before the 2-byte NLRI).
  std::span<const std::uint8_t> body(wire.data() + kHeaderSize,
                                     wire.size() - kHeaderSize - 5);
  const auto decoded = decode_update(body);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(decoded.status().code(),
            static_cast<std::uint8_t>(NotifCode::kUpdateMessageError));
  EXPECT_EQ(decoded.status().subcode(), update_err::kMalformedAttributeList);
}

TEST(Decode, PrefixLengthOver32ResetsSession) {
  // Craft: 0 withdrawn, 0 attrs, one NLRI with length 40.
  std::vector<std::uint8_t> body{0, 0, 0, 0, 40, 1, 2, 3, 4, 5};
  const auto decoded = decode_update(body);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(decoded.status().subcode(), update_err::kInvalidNetworkField);
  EXPECT_EQ(decoded.status().data(), std::vector<std::uint8_t>{40});
}

TEST(Decode, KeepaliveWithBodyResetsSession) {
  std::vector<std::uint8_t> body{1};
  const auto decoded = decode_body(MessageType::kKeepalive, body);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(decoded.status().code(),
            static_cast<std::uint8_t>(NotifCode::kMessageHeaderError));
}

TEST(Decode, OpenBadVersionResetsSession) {
  OpenMessage open;
  open.asn = 1;
  open.bgp_id = 1;
  auto wire = encode_open(open);
  wire[kHeaderSize] = 3;  // version byte
  std::span<const std::uint8_t> body(wire.data() + kHeaderSize, wire.size() - kHeaderSize);
  const auto decoded = decode_open(body);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().error_class(), ErrorClass::kSessionReset);
  EXPECT_EQ(decoded.status().code(),
            static_cast<std::uint8_t>(NotifCode::kOpenMessageError));
  EXPECT_EQ(decoded.status().subcode(), 1);
  EXPECT_EQ(decoded.status().data(), std::vector<std::uint8_t>{3});
}

TEST(Decode, MalformedOptionalTransitiveIsDiscardTier) {
  // GeoLoc with a wrong length: known optional transitive -> stripped, the
  // rest of the UPDATE survives (attribute-discard, RFC 7606).
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({65001}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr(10, 0, 0, 1)));
  WireAttr geoloc = make_geoloc(1000, 2000);
  geoloc.value.pop_back();  // 7 bytes instead of 8
  update.attrs.put(geoloc);
  update.nlri = {Prefix::parse("203.0.113.0/24")};
  const auto wire = encode_update(update);
  UpdateNotes notes;
  const auto decoded =
      decode_update(std::span(wire).subspan(kHeaderSize), &notes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(notes.worst, ErrorClass::kAttributeDiscard);
  EXPECT_EQ(notes.attrs_discarded, 1u);
  EXPECT_FALSE(decoded->attrs.has(attr_code::kGeoLoc));
  EXPECT_TRUE(decoded->attrs.has(attr_code::kOrigin));
  EXPECT_EQ(decoded->nlri.size(), 1u);
}

TEST(Decode, BadOriginValueIsTreatAsWithdrawTier) {
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  update.attrs.put(AsPath({65001}).to_attr());
  update.attrs.put(make_next_hop(Ipv4Addr(10, 0, 0, 1)));
  update.nlri = {Prefix::parse("203.0.113.0/24")};
  auto wire = encode_update(update);
  // Patch the ORIGIN value byte (flags, code=1, len=1, value).
  bool patched = false;
  for (std::size_t i = kHeaderSize; i + 3 < wire.size(); ++i) {
    if (wire[i + 1] == attr_code::kOrigin && wire[i + 2] == 1) {
      wire[i + 3] = 9;  // invalid origin value
      patched = true;
      break;
    }
  }
  ASSERT_TRUE(patched);
  UpdateNotes notes;
  const auto decoded =
      decode_update(std::span(wire).subspan(kHeaderSize), &notes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(notes.worst, ErrorClass::kTreatAsWithdraw);
  EXPECT_EQ(notes.subcode, update_err::kInvalidOrigin);
  // Data field carries the offending attribute bytes (RFC 4271 §6.3).
  EXPECT_FALSE(notes.data.empty());
}

TEST(Decode, MissingMandatoryIsTreatAsWithdrawTier) {
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));  // no AS_PATH, no NEXT_HOP
  update.nlri = {Prefix::parse("10.0.0.0/8")};
  const auto wire = encode_update(update);
  UpdateNotes notes;
  const auto decoded =
      decode_update(std::span(wire).subspan(kHeaderSize), &notes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(notes.worst, ErrorClass::kTreatAsWithdraw);
  EXPECT_EQ(notes.subcode, update_err::kMissingWellKnown);
  EXPECT_EQ(notes.data, std::vector<std::uint8_t>{attr_code::kAsPath});
}

TEST(Codec, OversizedUpdateThrows) {
  UpdateMessage update;
  update.attrs.put(make_origin(Origin::kIgp));
  for (std::uint32_t i = 0; i < 1200; ++i) {
    update.nlri.push_back(Prefix(Ipv4Addr(i << 8), 24));
  }
  EXPECT_THROW((void)encode_update(update), std::length_error);
}

TEST(Codec, RandomisedUpdateRoundTrip) {
  xb::util::Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    UpdateMessage update;
    update.attrs.put(make_origin(Origin::kIgp));
    std::vector<Asn> path;
    for (std::size_t i = 0; i < 1 + rng.below(5); ++i) {
      path.push_back(static_cast<Asn>(1 + rng.below(1 << 30)));
    }
    update.attrs.put(AsPath(path).to_attr());
    update.attrs.put(make_next_hop(Ipv4Addr(static_cast<std::uint32_t>(rng.next()))));
    const std::size_t n = 1 + rng.below(20);
    for (std::size_t i = 0; i < n; ++i) {
      update.nlri.push_back(Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                                   static_cast<std::uint8_t>(rng.below(33))));
    }
    auto decoded = std::get<UpdateMessage>(roundtrip(update));
    EXPECT_EQ(decoded, update) << "iteration " << iter;
  }
}

}  // namespace
