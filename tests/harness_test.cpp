// Harness: workload generator invariants, testbed wiring, statistics,
// the Fig. 1 dataset shape.
#include <gtest/gtest.h>

#include <unordered_set>

#include "bgp/codec.hpp"
#include "harness/rfc_dataset.hpp"
#include "harness/stats.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"

namespace {

using namespace xb;
using namespace xb::harness;

TEST(Workload, DeterministicForSameSeed) {
  WorkloadParams params;
  params.route_count = 2000;
  const auto a = make_workload(params);
  const auto b = make_workload(params);
  ASSERT_EQ(a.updates.size(), b.updates.size());
  EXPECT_EQ(a.updates, b.updates);
  params.seed += 1;
  const auto c = make_workload(params);
  EXPECT_NE(a.updates, c.updates);
}

TEST(Workload, PrefixesAreUniqueAndCounted) {
  WorkloadParams params;
  params.route_count = 5000;
  const auto w = make_workload(params);
  EXPECT_EQ(w.prefix_count, 5000u);
  EXPECT_EQ(w.routes.size(), 5000u);
  std::unordered_set<util::Prefix> seen;
  for (const auto& r : w.routes) {
    EXPECT_TRUE(seen.insert(r.prefix).second) << "duplicate " << r.prefix.str();
  }
}

TEST(Workload, UpdatesDecodeAndGroupPrefixes) {
  WorkloadParams params;
  params.route_count = 3000;
  const auto w = make_workload(params);
  std::size_t total = 0;
  for (const auto& wire : w.updates) {
    const auto frame = bgp::try_frame(wire);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, bgp::MessageType::kUpdate);
    const auto update = *bgp::decode_update(frame->body);
    EXPECT_TRUE(update.attrs.has(bgp::attr_code::kOrigin));
    EXPECT_TRUE(update.attrs.has(bgp::attr_code::kAsPath));
    EXPECT_TRUE(update.attrs.has(bgp::attr_code::kNextHop));
    EXPECT_FALSE(update.nlri.empty());
    total += update.nlri.size();
  }
  EXPECT_EQ(total, 3000u);
  // Packing: far fewer updates than prefixes (mean group size ~3).
  EXPECT_LT(w.updates.size(), 2000u);
  EXPECT_GT(w.updates.size(), 500u);
}

TEST(Workload, LocalPrefOnlyWhenRequested) {
  WorkloadParams params;
  params.route_count = 100;
  const auto ebgp = make_workload(params);
  const auto frame = bgp::try_frame(ebgp.updates[0]);
  EXPECT_FALSE(bgp::decode_update(frame->body)->attrs.has(bgp::attr_code::kLocalPref));
  params.with_local_pref = true;
  const auto ibgp = make_workload(params);
  const auto frame2 = bgp::try_frame(ibgp.updates[0]);
  EXPECT_TRUE(bgp::decode_update(frame2->body)->attrs.has(bgp::attr_code::kLocalPref));
}

TEST(Workload, RoaBlobPacksEntries) {
  std::vector<rpki::Roa> roas{{util::Prefix::parse("10.0.0.0/8"), 24, 65001}};
  const auto blob = pack_roa_blob(roas);
  ASSERT_EQ(blob.size(), sizeof(xbgp::RoaEntry));
  xbgp::RoaEntry entry;
  std::memcpy(&entry, blob.data(), sizeof(entry));
  EXPECT_EQ(entry.addr, util::Ipv4Addr::parse("10.0.0.0").value());
  EXPECT_EQ(entry.prefix_len, 8);
  EXPECT_EQ(entry.max_len, 24);
  EXPECT_EQ(entry.origin, 65001u);
}

TEST(Testbed, FeedsAndCounts) {
  net::EventLoop loop;
  const auto plan = TestbedPlan::ibgp_plan();
  hosts::fir::FirRouter::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.native_route_reflector = true;
  hosts::fir::FirRouter dut(loop, cfg);
  Testbed<hosts::fir::FirRouter> bed(loop, dut, plan);
  bed.establish();
  WorkloadParams params;
  params.route_count = 300;
  params.with_local_pref = true;
  const auto w = make_workload(params);
  const double elapsed = bed.run(w, w.prefix_count);
  EXPECT_GT(elapsed, 0.0);
  EXPECT_EQ(bed.sink().prefixes(), 300u);
  EXPECT_EQ(dut.loc_rib_size(), 300u);
}

TEST(Stats, BoxplotQuartiles) {
  const auto box = boxplot({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(box.min, 1);
  EXPECT_DOUBLE_EQ(box.median, 5);
  EXPECT_DOUBLE_EQ(box.q1, 3);
  EXPECT_DOUBLE_EQ(box.q3, 7);
  EXPECT_DOUBLE_EQ(box.max, 9);
  EXPECT_DOUBLE_EQ(box.mean, 5);
}

TEST(Stats, BoxplotSingleValue) {
  const auto box = boxplot({4.2});
  EXPECT_DOUBLE_EQ(box.min, 4.2);
  EXPECT_DOUBLE_EQ(box.max, 4.2);
  EXPECT_DOUBLE_EQ(box.median, 4.2);
}

TEST(Stats, RelativeImpact) {
  const auto rel = relative_impact({1.2, 1.0, 0.9}, 1.0);
  EXPECT_NEAR(rel[0], 20.0, 1e-9);
  EXPECT_NEAR(rel[1], 0.0, 1e-9);
  EXPECT_NEAR(rel[2], -10.0, 1e-9);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(boxplot({}), std::invalid_argument);
}

TEST(RfcDataset, FortyEntriesFig1Shape) {
  const auto data = idr_rfc_dataset();
  EXPECT_EQ(data.size(), 40u);
  const auto delays = standardization_delays_sorted();
  ASSERT_EQ(delays.size(), 40u);
  EXPECT_TRUE(std::is_sorted(delays.begin(), delays.end()));
  // Paper: "the median delay before RFC publication is 3.5 years, and some
  // features required up to ten years".
  const double median = quantile_sorted(delays, 0.5);
  EXPECT_NEAR(median, 3.5, 0.5);
  EXPECT_NEAR(delays.back(), 10.0, 0.5);
  EXPECT_GT(delays.front(), 0.0);
  for (const auto& e : data) {
    EXPECT_GT(e.delay_years(), 0.0) << "RFC " << e.rfc;
    EXPECT_GE(e.rfc_year, e.draft_year) << "RFC " << e.rfc;
  }
}

}  // namespace
