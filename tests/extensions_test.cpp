// Use-case extensions: the SAME bytecode runs on both host implementations
// and reproduces (or replaces) native behaviour — the paper's central claim.
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "extensions/geoloc.hpp"
#include "extensions/igp_filter.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/registry.hpp"
#include "extensions/route_reflection.hpp"
#include "extensions/valley_free.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

template <typename T>
class ExtTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(ExtTest, RouterTypes);

template <typename RouterT>
using CoreOf = std::conditional_t<std::is_same_v<RouterT, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;

// All shipped programs pass the verifier under their own helper sets.
TEST(Programs, AllVerifyAndSerialise) {
  const auto reg = ext::default_registry();
  for (const char* name :
       {"igp_filter", "rr_inbound", "rr_outbound", "rr_encode", "ov_init", "ov_inbound",
        "geoloc_receive", "geoloc_inbound", "geoloc_outbound", "geoloc_encode",
        "geoloc_decision", "valley_free", "valley_exempt", "ctag_ingress",
        "ctag_export"}) {
    const auto* program = reg.find(name);
    ASSERT_NE(program, nullptr) << name;
    const auto err = ebpf::Verifier::verify(*program, program->required_helpers());
    EXPECT_FALSE(err.has_value())
        << name << " rejected at insn " << (err ? err->insn_index : 0) << ": "
        << (err ? err->reason : "");
    // The image is the portable artifact: serialise -> deserialise identity.
    EXPECT_EQ(ebpf::deserialize(program->image()), program->insns()) << name;
  }
}

// --- §3.1 IGP-cost export filter (Listing 1) --------------------------------

TYPED_TEST(ExtTest, IgpFilterRejectsHighMetricNexthops) {
  net::EventLoop loop;
  igp::Graph graph;
  const auto dut_node = graph.add_node(Ipv4Addr(10, 0, 0, 2), "dut");
  const auto edge_node = graph.add_node(Ipv4Addr(10, 0, 0, 1), "edge");
  graph.add_link(dut_node, edge_node, 1000);  // "transatlantic" metric
  igp::IgpTable igp_table(graph, dut_node);

  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  cfg.igp = &igp_table;
  TypeParam dut(loop, cfg);
  dut.set_xtra_u32(xbgp::xtra::kMaxMetric, 100);
  dut.load_extensions(ext::igp_filter_manifest());

  // iBGP feeder (nexthop preserved) and eBGP consumer.
  typename TypeParam::Config fc;
  fc.name = "feeder";
  fc.asn = 65000;
  fc.router_id = 0x0A000001;
  fc.address = Ipv4Addr(10, 0, 0, 1);
  TypeParam feeder(loop, fc);
  typename TypeParam::Config cc;
  cc.name = "consumer";
  cc.asn = 65100;
  cc.router_id = 0x0A000003;
  cc.address = Ipv4Addr(10, 0, 0, 3);
  TypeParam consumer(loop, cc);

  net::Duplex feed(loop, 1000), out(loop, 1000);
  feeder.add_peer(feed.a(), {.name = "dut", .asn = 65000, .address = cfg.address});
  dut.add_peer(feed.b(), {.name = "feeder", .asn = 65000, .address = fc.address});
  dut.add_peer(out.a(), {.name = "consumer", .asn = 65100, .address = cc.address});
  consumer.add_peer(out.b(), {.name = "dut", .asn = 65000, .address = cfg.address});

  feeder.originate(Prefix::parse("192.0.2.0/24"));
  feeder.start();
  dut.start();
  consumer.start();
  loop.run_until(3 * kSec);

  // The DUT accepted the route (metric only filters the eBGP export).
  EXPECT_NE(dut.best(Prefix::parse("192.0.2.0/24")), nullptr);
  // Export to the eBGP consumer was rejected: nexthop metric 1000 > 100.
  EXPECT_EQ(consumer.best(Prefix::parse("192.0.2.0/24")), nullptr);
  EXPECT_GT(dut.vmm().stats().extension_handled, 0u);

  // Raise the threshold and flap: now it passes (the filter calls next()).
  dut.set_xtra_u32(xbgp::xtra::kMaxMetric, 2000);
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn = {Prefix::parse("192.0.2.0/24")};
  feeder.session(0).send_update(withdraw);
  loop.run_until(loop.now() + kSec);
  feeder.session(0).send_update([&] {
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath{}.to_attr());
    update.attrs.put(bgp::make_next_hop(fc.address));
    update.attrs.put(bgp::make_local_pref(100));
    update.nlri = {Prefix::parse("192.0.2.0/24")};
    return update;
  }());
  loop.run_until(loop.now() + 2 * kSec);
  EXPECT_NE(consumer.best(Prefix::parse("192.0.2.0/24")), nullptr);
}

// --- §3.2 route reflection ----------------------------------------------------

template <typename RouterT>
bgp::UpdateMessage reflect_once(bool use_extension, std::uint64_t* faults = nullptr) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.native_route_reflector = !use_extension;
  RouterT dut(loop, cfg);
  if (use_extension) dut.load_extensions(ext::route_reflection_manifest());

  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = 50;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);
  if (faults != nullptr) *faults = dut.stats().extension_faults;
  return bed.sink().last_update();
}

TYPED_TEST(ExtTest, RouteReflectionExtensionMatchesNative) {
  std::uint64_t faults = 0;
  const auto native = reflect_once<TypeParam>(false);
  const auto extension = reflect_once<TypeParam>(true, &faults);
  EXPECT_EQ(faults, 0u);
  ASSERT_FALSE(native.nlri.empty());
  ASSERT_FALSE(extension.nlri.empty());
  // Byte-identical reflection attributes in both modes.
  const auto* native_orig = native.attrs.find(bgp::attr_code::kOriginatorId);
  const auto* ext_orig = extension.attrs.find(bgp::attr_code::kOriginatorId);
  ASSERT_NE(native_orig, nullptr);
  ASSERT_NE(ext_orig, nullptr);
  EXPECT_EQ(native_orig->value, ext_orig->value);
  const auto* native_cl = native.attrs.find(bgp::attr_code::kClusterList);
  const auto* ext_cl = extension.attrs.find(bgp::attr_code::kClusterList);
  ASSERT_NE(native_cl, nullptr);
  ASSERT_NE(ext_cl, nullptr);
  EXPECT_EQ(native_cl->value, ext_cl->value);
  EXPECT_EQ(bgp::parse_originator_id(*ext_orig), 0x0A000001u);  // upstream's id
  const auto clusters = bgp::parse_cluster_list(*ext_cl);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], 0xC1C1C1C1u);
  // The whole attribute sets agree.
  EXPECT_EQ(native.attrs, extension.attrs);
}

TYPED_TEST(ExtTest, RrExtensionLoopPrevention) {
  // Feed the DUT (extension RR) a route carrying its own cluster id; the
  // inbound bytecode must reject it.
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  TypeParam dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();

  bgp::UpdateMessage update;
  update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  update.attrs.put(bgp::AsPath{}.to_attr());
  update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
  update.attrs.put(bgp::make_local_pref(100));
  const std::uint32_t clusters[] = {0xC1C1C1C1};
  update.attrs.put(bgp::make_cluster_list(clusters));
  update.nlri = {Prefix::parse("192.0.2.0/24")};
  bed.feeder().session().send_update(update);
  loop.run_until(loop.now() + 2 * kSec);
  EXPECT_EQ(dut.best(Prefix::parse("192.0.2.0/24")), nullptr);
  EXPECT_GT(dut.stats().prefixes_rejected_in, 0u);

  // Same with ORIGINATOR_ID == the DUT's router id.
  bgp::UpdateMessage update2;
  update2.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  update2.attrs.put(bgp::AsPath{}.to_attr());
  update2.attrs.put(bgp::make_next_hop(plan.upstream_addr));
  update2.attrs.put(bgp::make_local_pref(100));
  update2.attrs.put(bgp::make_originator_id(cfg.router_id));
  update2.nlri = {Prefix::parse("198.51.100.0/24")};
  bed.feeder().session().send_update(update2);
  loop.run_until(loop.now() + 2 * kSec);
  EXPECT_EQ(dut.best(Prefix::parse("198.51.100.0/24")), nullptr);
}

// --- §3.4 origin validation ------------------------------------------------------

TYPED_TEST(ExtTest, OriginValidationExtensionMatchesNativeVerdicts) {
  harness::WorkloadParams params;
  params.route_count = 500;
  const auto workload = harness::make_workload(params);
  rpki::RoaSetParams roa_params;
  const auto roas = rpki::make_roa_set(workload.routes, roa_params);
  rpki::RoaHashTable native_table;
  rpki::fill_table(native_table, roas);

  auto run_one = [&](bool use_extension) {
    net::EventLoop loop;
    const auto plan = harness::TestbedPlan::ebgp_plan();
    typename TypeParam::Config cfg;
    cfg.name = "dut";
    cfg.asn = plan.dut_asn;
    cfg.router_id = 0x0A000002;
    cfg.address = plan.dut_addr;
    if (!use_extension) cfg.roa_table = &native_table;
    TypeParam dut(loop, cfg);
    if (use_extension) {
      dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
      dut.load_extensions(ext::origin_validation_manifest(roas.size()));
    }
    harness::Testbed<TypeParam> bed(loop, dut, plan);
    bed.establish();
    bed.run(workload, workload.prefix_count);
    EXPECT_EQ(dut.stats().extension_faults, 0u);
    return std::tuple(dut.stats().ov_valid, dut.stats().ov_invalid,
                      dut.stats().ov_not_found);
  };

  const auto native = run_one(false);
  const auto extension = run_one(true);
  EXPECT_EQ(native, extension);
  EXPECT_GT(std::get<0>(native), 0u);
  EXPECT_GT(std::get<1>(native), 0u);
  EXPECT_GT(std::get<2>(native), 0u);
  // Roughly 75% valid, as configured.
  EXPECT_NEAR(static_cast<double>(std::get<0>(native)) / workload.prefix_count, 0.75, 0.05);
}

// --- §2 GeoLoc -----------------------------------------------------------------------

TYPED_TEST(ExtTest, GeoLocTagsAtEbgpEdgeAndFiltersByDistance) {
  net::EventLoop loop;
  typename TypeParam::Config cfg;
  cfg.name = "edge";
  cfg.asn = 65000;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  TypeParam edge(loop, cfg);
  std::vector<std::uint8_t> coords(8);
  const std::int32_t lat = 50'000'000, lon = 4'000'000;
  std::memcpy(coords.data(), &lat, 4);
  std::memcpy(coords.data() + 4, &lon, 4);
  edge.set_xtra(xbgp::xtra::kGeoCoord, coords);
  edge.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/false));

  harness::TestbedPlan plan = harness::TestbedPlan::ebgp_plan();
  plan.ibgp = false;
  harness::Testbed<TypeParam> bed(loop, edge, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = 10;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);

  // Every stored route carries the GeoLoc attribute with our coordinates.
  using Core = CoreOf<TypeParam>;
  const auto& route = *edge.best(workload.routes.front().prefix);
  const auto attr = Core::get_attr(*route.attrs, bgp::attr_code::kGeoLoc);
  ASSERT_TRUE(attr.has_value());
  const auto parsed = bgp::parse_geoloc(*attr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lat_microdeg, lat);
  EXPECT_EQ(parsed->lon_microdeg, lon);
  // And the downstream sink received it on the wire (encode hook ran).
  const auto* wire_attr = bed.sink().last_update().attrs.find(bgp::attr_code::kGeoLoc);
  ASSERT_NE(wire_attr, nullptr);
  EXPECT_EQ(bgp::parse_geoloc(*wire_attr)->lat_microdeg, lat);
}

TYPED_TEST(ExtTest, GeoLocDistanceFilterBoundary) {
  // Two routers at distance exactly on/over the threshold.
  auto run_with_distance = [](std::int32_t remote_lat, std::uint32_t max_dist) {
    net::EventLoop loop;
    typename TypeParam::Config cfg;
    cfg.name = "dut";
    cfg.asn = 65000;
    cfg.router_id = 0x0A000002;
    cfg.address = Ipv4Addr(10, 0, 0, 2);
    TypeParam dut(loop, cfg);
    std::vector<std::uint8_t> coords(8);
    const std::int32_t lat = 0, lon = 0;
    std::memcpy(coords.data(), &lat, 4);
    std::memcpy(coords.data() + 4, &lon, 4);
    dut.set_xtra(xbgp::xtra::kGeoCoord, coords);
    dut.set_xtra_u32(xbgp::xtra::kGeoMaxDist, max_dist);
    dut.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/true));

    const auto plan = harness::TestbedPlan::ibgp_plan();
    harness::Testbed<TypeParam> bed(loop, dut, plan);
    bed.establish();
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath{}.to_attr());
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.attrs.put(bgp::make_local_pref(100));
    update.attrs.put(bgp::make_geoloc(remote_lat, 0));
    update.nlri = {Prefix::parse("192.0.2.0/24")};
    bed.feeder().session().send_update(update);
    loop.run_until(loop.now() + 2 * kSec);
    return dut.best(Prefix::parse("192.0.2.0/24")) != nullptr;
  };

  EXPECT_TRUE(run_with_distance(1'000'000, 1'000'000));   // exactly at threshold
  EXPECT_FALSE(run_with_distance(1'000'001, 1'000'000));  // one micro-degree over
  EXPECT_TRUE(run_with_distance(-999'999, 1'000'000));    // negative coordinates
}

// --- §3.3 valley-free ---------------------------------------------------------------

TYPED_TEST(ExtTest, ValleyFreeFilterSemantics) {
  // (relaxed-variant coverage lives in ValleyFreeRelaxedExemption below)
  // DUT is a spine (AS 65201) receiving from leaf L12 (AS 65112): an ascent
  // session. Paths containing a manifest pair (descent) must be rejected.
  const bgp::Asn kSpine1 = 65201, kSpine2 = 65202, kLeaf12 = 65112, kLeaf13 = 65113,
                 kTor = 65023;
  std::vector<xbgp::ValleyPair> pairs{{kLeaf12, kSpine1}, {kLeaf12, kSpine2},
                                      {kLeaf13, kSpine1}, {kLeaf13, kSpine2},
                                      {kTor, kLeaf12},    {kTor, kLeaf13}};
  std::vector<std::uint8_t> blob(pairs.size() * sizeof(xbgp::ValleyPair));
  std::memcpy(blob.data(), pairs.data(), blob.size());

  auto accepts = [&](std::vector<bgp::Asn> path) {
    net::EventLoop loop;
    harness::TestbedPlan plan = harness::TestbedPlan::ebgp_plan();
    plan.dut_asn = kSpine2;
    plan.upstream_asn = kLeaf12;
    typename TypeParam::Config cfg;
    cfg.name = "spine2";
    cfg.asn = kSpine2;
    cfg.router_id = 0x0A000002;
    cfg.address = plan.dut_addr;
    TypeParam dut(loop, cfg);
    dut.set_xtra(xbgp::xtra::kValleyPairs, blob);
    dut.load_extensions(ext::valley_free_manifest());
    harness::Testbed<TypeParam> bed(loop, dut, plan);
    bed.establish();
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath(path).to_attr());
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.nlri = {Prefix::parse("192.0.2.0/24")};
    bed.feeder().session().send_update(update);
    loop.run_until(loop.now() + 2 * kSec);
    return dut.best(Prefix::parse("192.0.2.0/24")) != nullptr;
  };

  // Normal ascent: leaf heard it from its ToR. No descent pair in the path.
  EXPECT_TRUE(accepts({kLeaf12, kTor}));
  // Valley: the path already descended once (L12 learned from S1).
  EXPECT_FALSE(accepts({kLeaf12, kSpine1, kLeaf13, kTor}));
  // Descent pair deeper in the path is still a valley.
  EXPECT_FALSE(accepts({kLeaf12, kTor, kLeaf13, kSpine1, kLeaf13}));
  // Pair in the wrong order (upper then lower = normal down-advertisement
  // read right-to-left) is not a valley.
  EXPECT_TRUE(accepts({kLeaf12}));
}

TYPED_TEST(ExtTest, ValleyFreeRelaxedExemption) {
  // Same valley path as above, but the destination prefix is listed as
  // critical: the exemption stage accepts it before the strict filter runs.
  const bgp::Asn kSpine1 = 65201, kSpine2 = 65202, kLeaf12 = 65112, kLeaf13 = 65113,
                 kTor = 65023;
  std::vector<xbgp::ValleyPair> pairs{{kLeaf12, kSpine1}, {kLeaf12, kSpine2},
                                      {kLeaf13, kSpine1}, {kLeaf13, kSpine2},
                                      {kTor, kLeaf12},    {kTor, kLeaf13}};
  std::vector<std::uint8_t> blob(pairs.size() * sizeof(xbgp::ValleyPair));
  std::memcpy(blob.data(), pairs.data(), blob.size());

  auto accepts = [&](const char* prefix_text, bool critical) {
    net::EventLoop loop;
    harness::TestbedPlan plan = harness::TestbedPlan::ebgp_plan();
    plan.dut_asn = kSpine2;
    plan.upstream_asn = kLeaf12;
    typename TypeParam::Config cfg;
    cfg.name = "spine2";
    cfg.asn = kSpine2;
    cfg.router_id = 0x0A000002;
    cfg.address = plan.dut_addr;
    TypeParam dut(loop, cfg);
    dut.set_xtra(xbgp::xtra::kValleyPairs, blob);
    if (critical) {
      const auto p = Prefix::parse(prefix_text);
      xbgp::PrefixArg parg{p.addr().value(), p.length(), {}};
      std::vector<std::uint8_t> crit(sizeof(parg));
      std::memcpy(crit.data(), &parg, sizeof(parg));
      dut.set_xtra(xbgp::xtra::kCriticalPrefixes, crit);
    }
    dut.load_extensions(ext::valley_free_relaxed_manifest());
    harness::Testbed<TypeParam> bed(loop, dut, plan);
    bed.establish();
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath({kLeaf12, kSpine1, kLeaf13, kTor}).to_attr());  // valley
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.nlri = {Prefix::parse(prefix_text)};
    bed.feeder().session().send_update(update);
    loop.run_until(loop.now() + 2 * kSec);
    return dut.best(Prefix::parse(prefix_text)) != nullptr;
  };

  EXPECT_FALSE(accepts("192.0.2.0/24", /*critical=*/false));  // still filtered
  EXPECT_TRUE(accepts("192.0.2.0/24", /*critical=*/true));    // exempted
}

TYPED_TEST(ExtTest, GeoLocDecisionPrefersCloserRoute) {
  // Two iBGP peers announce the same prefix with different GeoLoc tags.
  // Natively the lower router-id wins; the BGP_DECISION extension overrides
  // with "geographically closer wins", in either arrival order.
  for (const bool near_first : {false, true}) {
    net::EventLoop loop;
    typename TypeParam::Config cfg;
    cfg.name = "dut";
    cfg.asn = 65000;
    cfg.router_id = 0x0A000003;
    cfg.address = Ipv4Addr(10, 0, 0, 3);
    TypeParam dut(loop, cfg);
    std::vector<std::uint8_t> coords(8, 0);  // at the origin
    dut.set_xtra(xbgp::xtra::kGeoCoord, coords);
    dut.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/false,
                                             /*with_decision=*/true));

    // Two feeder sessions (lower router-id on the FAR peer).
    net::Duplex l1(loop, 1000), l2(loop, 1000);
    dut.add_peer(l1.b(), {.name = "far", .asn = 65000, .address = Ipv4Addr(10, 0, 0, 1)});
    dut.add_peer(l2.b(), {.name = "near", .asn = 65000, .address = Ipv4Addr(10, 0, 0, 2)});
    bgp::PeerSession far(loop, l1.a(),
                         {.local_asn = 65000, .peer_asn = 65000, .local_id = 0x0A000001,
                          .local_addr = Ipv4Addr(10, 0, 0, 1), .peer_addr = cfg.address});
    bgp::PeerSession near(loop, l2.a(),
                          {.local_asn = 65000, .peer_asn = 65000, .local_id = 0x0A000002,
                           .local_addr = Ipv4Addr(10, 0, 0, 2), .peer_addr = cfg.address});
    dut.start();
    far.start();
    near.start();
    loop.run_until(loop.now() + kSec);
    ASSERT_TRUE(far.established());
    ASSERT_TRUE(near.established());

    auto announce = [&](bgp::PeerSession& session, util::Ipv4Addr nexthop,
                        std::int32_t lat_micro) {
      bgp::UpdateMessage update;
      update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
      update.attrs.put(bgp::AsPath{}.to_attr());
      update.attrs.put(bgp::make_next_hop(nexthop));
      update.attrs.put(bgp::make_local_pref(100));
      update.attrs.put(bgp::make_geoloc(lat_micro, 0));
      update.nlri = {Prefix::parse("203.0.113.0/24")};
      session.send_update(update);
      loop.run_until(loop.now() + kSec);
    };
    if (near_first) {
      announce(near, Ipv4Addr(10, 0, 0, 2), 1'000'000);   // 1 degree away
      announce(far, Ipv4Addr(10, 0, 0, 1), 50'000'000);   // 50 degrees away
    } else {
      announce(far, Ipv4Addr(10, 0, 0, 1), 50'000'000);
      announce(near, Ipv4Addr(10, 0, 0, 2), 1'000'000);
    }

    const auto* best = dut.best(Prefix::parse("203.0.113.0/24"));
    ASSERT_NE(best, nullptr);
    using Core = CoreOf<TypeParam>;
    EXPECT_EQ(Core::next_hop(*best->attrs), Ipv4Addr(10, 0, 0, 2))
        << "near_first=" << near_first;  // the closer route wins
    EXPECT_EQ(dut.stats().extension_faults, 0u);
  }
}

// --- fault injection: a buggy extension falls back to native ---------------------

TYPED_TEST(ExtTest, FaultyExtensionFallsBackToNative) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  TypeParam dut(loop, cfg);

  // A filter that dereferences a wild pointer on every route.
  ebpf::Assembler a;
  a.lddw(ebpf::Reg::R1, 0x1000);
  a.ldxdw(ebpf::Reg::R0, ebpf::Reg::R1, 0);
  a.exit_();
  xbgp::Manifest manifest;
  manifest.attach("crashy", xbgp::Op::kInboundFilter, a.build("crashy"));
  dut.load_extensions(manifest);

  harness::Testbed<TypeParam> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = 20;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);  // sink still receives everything

  EXPECT_EQ(dut.loc_rib_size(), workload.prefix_count);  // native default accepted
  EXPECT_GT(dut.stats().extension_faults, 0u);
  EXPECT_EQ(dut.vmm().stats().faults, dut.stats().extension_faults);
}

}  // namespace
