// The shared BGP engine over both host cores: propagation, RIBs, decision,
// split horizon, native route reflection, origin validation, withdrawals,
// session loss.
#include <gtest/gtest.h>

#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

template <typename RouterT>
struct Env {
  net::EventLoop loop;
  std::vector<std::unique_ptr<RouterT>> routers;
  std::vector<std::unique_ptr<net::Duplex>> links;

  RouterT& make(const char* name, bgp::Asn asn, std::uint8_t idx,
                bool native_rr = false, const rpki::RoaTable* roa = nullptr) {
    typename RouterT::Config cfg;
    cfg.name = name;
    cfg.asn = asn;
    cfg.router_id = 0x0A000000u + idx;
    cfg.address = Ipv4Addr(10, 0, 0, idx);
    cfg.native_route_reflector = native_rr;
    cfg.roa_table = roa;
    routers.push_back(std::make_unique<RouterT>(loop, cfg));
    return *routers.back();
  }

  std::pair<std::size_t, std::size_t> connect(RouterT& a, RouterT& b, bool a_client = false,
                                              bool b_client = false) {
    links.push_back(std::make_unique<net::Duplex>(loop, 1000));
    auto& link = *links.back();
    const auto pa = a.add_peer(link.a(), {.name = b.config().name, .asn = b.config().asn,
                                          .address = b.config().address, .rr_client = b_client});
    const auto pb = b.add_peer(link.b(), {.name = a.config().name, .asn = a.config().asn,
                                          .address = a.config().address, .rr_client = a_client});
    return {pa, pb};
  }

  void run(std::uint64_t seconds = 2) {
    for (auto& r : routers) r->start();
    loop.run_until(loop.now() + seconds * kSec);
  }
};

template <typename T>
class EngineTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(EngineTest, RouterTypes);

TYPED_TEST(EngineTest, EbgpPropagationPrependsAsAndSetsNexthopSelf) {
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  auto& c = env.make("c", 65003, 3);
  env.connect(a, b);
  env.connect(b, c);
  a.originate(Prefix::parse("192.0.2.0/24"));
  env.run();

  const auto* at_c = c.best(Prefix::parse("192.0.2.0/24"));
  ASSERT_NE(at_c, nullptr);
  using Core = std::conditional_t<std::is_same_v<TypeParam, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;
  EXPECT_EQ(Core::as_path_length(*at_c->attrs), 2u);  // 65002, 65001
  EXPECT_EQ(Core::first_asn(*at_c->attrs), 65002u);
  EXPECT_EQ(Core::origin_asn(*at_c->attrs), 65001u);
  EXPECT_EQ(Core::next_hop(*at_c->attrs), b.config().address);
  // FIB updated.
  EXPECT_EQ(c.fib_lookup(Prefix::parse("192.0.2.0/24")), b.config().address);
}

TYPED_TEST(EngineTest, EbgpLoopPrevention) {
  // a -- b and a -- c -- b triangle: b must drop paths containing its own AS.
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  env.connect(a, b);
  env.connect(b, a);  // second parallel session: a re-advertises b's route back
  b.originate(Prefix::parse("10.7.0.0/16"));
  env.run();
  // a learned the prefix; re-advertising to b over the other session puts
  // 65001,65002 in the path, which b rejects (its own AS).
  EXPECT_GT(b.stats().loop_rejected + a.stats().loop_rejected, 0u);
}

TYPED_TEST(EngineTest, IbgpRoutesNotForwardedToIbgpWithoutRr) {
  Env<TypeParam> env;
  auto& a = env.make("a", 65000, 1);
  auto& mid = env.make("mid", 65000, 2);
  auto& c = env.make("c", 65000, 3);
  env.connect(a, mid);
  env.connect(mid, c);
  a.originate(Prefix::parse("192.0.2.0/24"));
  env.run();
  EXPECT_NE(mid.best(Prefix::parse("192.0.2.0/24")), nullptr);
  EXPECT_EQ(c.best(Prefix::parse("192.0.2.0/24")), nullptr);  // blocked by the iBGP rule
  EXPECT_GT(mid.stats().exports_rejected, 0u);
}

TYPED_TEST(EngineTest, NativeRouteReflectionForwardsWithAttributes) {
  // The rr_client flag lives in the PeerConfig the reflector holds for each
  // neighbour, so the links are wired manually here.
  Env<TypeParam> env;
  auto& a2 = env.make("a", 65000, 1);
  auto& rr2 = env.make("rr", 65000, 2, /*native_rr=*/true);
  auto& c2 = env.make("c", 65000, 3);
  env.links.push_back(std::make_unique<net::Duplex>(env.loop, 1000));
  a2.add_peer(env.links.back()->a(), {.name = "rr", .asn = 65000,
                                      .address = rr2.config().address});
  rr2.add_peer(env.links.back()->b(), {.name = "a", .asn = 65000,
                                       .address = a2.config().address, .rr_client = true});
  env.links.push_back(std::make_unique<net::Duplex>(env.loop, 1000));
  rr2.add_peer(env.links.back()->a(), {.name = "c", .asn = 65000,
                                       .address = c2.config().address, .rr_client = true});
  c2.add_peer(env.links.back()->b(), {.name = "rr", .asn = 65000,
                                      .address = rr2.config().address});
  a2.originate(Prefix::parse("192.0.2.0/24"));
  env.run();

  const auto* reflected = c2.best(Prefix::parse("192.0.2.0/24"));
  ASSERT_NE(reflected, nullptr);
  using Core = std::conditional_t<std::is_same_v<TypeParam, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;
  EXPECT_EQ(Core::originator_id(*reflected->attrs), a2.config().router_id);
  EXPECT_EQ(Core::cluster_list_length(*reflected->attrs), 1u);
  EXPECT_TRUE(Core::cluster_list_contains(*reflected->attrs, rr2.config().router_id));
  // Nexthop unchanged across reflection.
  EXPECT_EQ(Core::next_hop(*reflected->attrs), a2.config().address);
}

TYPED_TEST(EngineTest, WithdrawalPropagates) {
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  auto& c = env.make("c", 65003, 3);
  env.connect(a, b);
  env.connect(b, c);
  a.originate(Prefix::parse("192.0.2.0/24"));
  env.run();
  ASSERT_NE(c.best(Prefix::parse("192.0.2.0/24")), nullptr);

  // Withdraw by sending an UPDATE with the prefix in withdrawn routes.
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn = {Prefix::parse("192.0.2.0/24")};
  a.session(0).send_update(withdraw);
  env.loop.run_until(env.loop.now() + 2 * kSec);
  EXPECT_EQ(c.best(Prefix::parse("192.0.2.0/24")), nullptr);
  EXPECT_EQ(c.loc_rib_size(), 0u);
}

TYPED_TEST(EngineTest, SessionLossInvalidatesLearnedRoutes) {
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  auto& c = env.make("c", 65003, 3);
  auto [a_to_b, b_from_a] = env.connect(a, b);
  env.connect(b, c);
  a.originate(Prefix::parse("192.0.2.0/24"));
  env.run();
  ASSERT_NE(c.best(Prefix::parse("192.0.2.0/24")), nullptr);

  a.session(a_to_b).stop();
  env.loop.run_until(env.loop.now() + 2 * kSec);
  EXPECT_EQ(b.best(Prefix::parse("192.0.2.0/24")), nullptr);
  EXPECT_EQ(c.best(Prefix::parse("192.0.2.0/24")), nullptr);  // withdrawal cascaded
  (void)b_from_a;
}

TYPED_TEST(EngineTest, DecisionPrefersShorterPathAcrossPeers) {
  // d hears 192.0.2.0/24 from a directly (path length 1) and via b->c
  // (length 2): the direct route must win.
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  auto& d = env.make("d", 65004, 4);
  env.connect(a, b);
  env.connect(a, d);
  env.connect(b, d);
  a.originate(Prefix::parse("192.0.2.0/24"));
  env.run();
  const auto* best = d.best(Prefix::parse("192.0.2.0/24"));
  ASSERT_NE(best, nullptr);
  using Core = std::conditional_t<std::is_same_v<TypeParam, hosts::fir::FirRouter>,
                                  hosts::fir::FirCore, hosts::wren::WrenCore>;
  EXPECT_EQ(Core::as_path_length(*best->attrs), 1u);
  EXPECT_EQ(Core::first_asn(*best->attrs), 65001u);
}

TYPED_TEST(EngineTest, NativeOriginValidationTagsRoutes) {
  rpki::RoaHashTable table;
  table.add({Prefix::parse("192.0.2.0/24"), 24, 65001});   // valid for a's AS
  table.add({Prefix::parse("198.51.100.0/24"), 24, 64999});  // wrong origin
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& dut = env.make("dut", 65002, 2, false, &table);
  env.connect(a, dut);
  a.originate(Prefix::parse("192.0.2.0/24"));
  a.originate(Prefix::parse("198.51.100.0/24"));
  a.originate(Prefix::parse("203.0.113.0/24"));  // no ROA
  env.run();
  EXPECT_EQ(dut.stats().ov_valid, 1u);
  EXPECT_EQ(dut.stats().ov_invalid, 1u);
  EXPECT_EQ(dut.stats().ov_not_found, 1u);
  EXPECT_EQ(dut.loc_rib_size(), 3u);  // tag, don't discard (paper §3.4)
  EXPECT_EQ(dut.route_meta(0, Prefix::parse("198.51.100.0/24")),
            static_cast<std::uint32_t>(rpki::Validity::kInvalid));
}

TYPED_TEST(EngineTest, NativeOvRejectInvalidWhenConfigured) {
  rpki::RoaHashTable table;
  table.add({Prefix::parse("198.51.100.0/24"), 24, 64999});
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  typename TypeParam::Config cfg;
  cfg.name = "dut";
  cfg.asn = 65002;
  cfg.router_id = 0x0A000002;
  cfg.address = Ipv4Addr(10, 0, 0, 2);
  cfg.roa_table = &table;
  cfg.ov_reject_invalid = true;
  env.routers.push_back(std::make_unique<TypeParam>(env.loop, cfg));
  auto& dut = *env.routers.back();
  env.connect(a, dut);
  a.originate(Prefix::parse("198.51.100.0/24"));
  env.run();
  EXPECT_EQ(dut.loc_rib_size(), 0u);
  EXPECT_GT(dut.stats().prefixes_rejected_in, 0u);
}

TYPED_TEST(EngineTest, LocalRoutesWinOverLearned) {
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  env.connect(a, b);
  a.originate(Prefix::parse("10.50.0.0/16"));
  b.originate(Prefix::parse("10.50.0.0/16"));
  env.run();
  const auto* best = b.best(Prefix::parse("10.50.0.0/16"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->from, hosts::engine::kLocalRoute);
}

TYPED_TEST(EngineTest, StatsCountUpdatesAndPrefixes) {
  Env<TypeParam> env;
  auto& a = env.make("a", 65001, 1);
  auto& b = env.make("b", 65002, 2);
  env.connect(a, b);
  for (int i = 0; i < 5; ++i) {
    a.originate(Prefix(Ipv4Addr(static_cast<std::uint32_t>(0x0A000000 + (i << 16))), 16));
  }
  env.run();
  EXPECT_EQ(b.stats().prefixes_in, 5u);
  EXPECT_EQ(b.stats().prefixes_accepted, 5u);
  EXPECT_GT(b.stats().updates_in, 0u);
  EXPECT_GT(a.stats().updates_out, 0u);
  EXPECT_EQ(b.adj_rib_in_size(0), 5u);
  EXPECT_EQ(a.adj_rib_out_size(0), 5u);
}

}  // namespace
