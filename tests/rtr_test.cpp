// The RPKI-to-Router protocol (RFC 6810): PDU codec, full and incremental
// synchronisation, cache reset, error handling, ROA-store removal.
#include <gtest/gtest.h>

#include "rpki/roa_hash.hpp"
#include "rpki/roa_lpfst.hpp"
#include "rpki/roa_trie.hpp"
#include "rpki/rtr_session.hpp"

namespace {

using namespace xb;
using namespace xb::rpki;
using namespace xb::rpki::rtr;
using util::Ipv4Addr;
using util::Prefix;

Roa roa(const char* prefix, std::uint8_t max_len, bgp::Asn origin) {
  return Roa{Prefix::parse(prefix), max_len, origin};
}

// --- PDU codec ------------------------------------------------------------------

class PduRoundTrip : public ::testing::TestWithParam<Pdu> {};

TEST_P(PduRoundTrip, EncodeDecodeIdentity) {
  const Pdu& pdu = GetParam();
  const auto wire = encode(pdu);
  const auto frame = try_decode(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->consumed, wire.size());
  EXPECT_EQ(frame->pdu, pdu);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, PduRoundTrip,
    ::testing::Values(Pdu{SerialNotify{7, 42}}, Pdu{SerialQuery{7, 41}}, Pdu{ResetQuery{}},
                      Pdu{CacheResponse{7}},
                      Pdu{Ipv4Prefix{true, Roa{Prefix::parse("10.0.0.0/8"), 24, 65001}}},
                      Pdu{Ipv4Prefix{false, Roa{Prefix::parse("192.0.2.0/24"), 24, 4200000000u}}},
                      Pdu{EndOfData{7, 42}}, Pdu{CacheReset{}},
                      Pdu{ErrorReport{ErrorCode::kCorruptData, {1, 2, 3}, "broken"}}),
    [](const ::testing::TestParamInfo<Pdu>& info) {
      switch (type_of(info.param)) {
        case PduType::kSerialNotify: return std::string("SerialNotify");
        case PduType::kSerialQuery: return std::string("SerialQuery");
        case PduType::kResetQuery: return std::string("ResetQuery");
        case PduType::kCacheResponse: return std::string("CacheResponse");
        case PduType::kIpv4Prefix:
          return std::get<Ipv4Prefix>(info.param).announce ? std::string("Ipv4Announce")
                                                           : std::string("Ipv4Withdraw");
        case PduType::kEndOfData: return std::string("EndOfData");
        case PduType::kCacheReset: return std::string("CacheReset");
        case PduType::kErrorReport: return std::string("ErrorReport");
        default: return std::string("Other");
      }
    });

TEST(PduCodec, IncompleteBufferReturnsNullopt) {
  const auto wire = encode(Pdu{EndOfData{1, 2}});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(try_decode(std::span(wire.data(), len)).has_value()) << len;
  }
}

TEST(PduCodec, BadVersionThrows) {
  auto wire = encode(Pdu{ResetQuery{}});
  wire[0] = 1;
  EXPECT_THROW((void)try_decode(wire), RtrError);
}

TEST(PduCodec, UnknownTypeThrows) {
  auto wire = encode(Pdu{ResetQuery{}});
  wire[1] = 99;
  EXPECT_THROW((void)try_decode(wire), RtrError);
}

TEST(PduCodec, Ipv6PrefixRejected) {
  auto wire = encode(Pdu{ResetQuery{}});
  wire[1] = static_cast<std::uint8_t>(PduType::kIpv6Prefix);
  try {
    (void)try_decode(wire);
    FAIL() << "expected RtrError";
  } catch (const RtrError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupportedPduType);
  }
}

TEST(PduCodec, BadPrefixLengthsThrow) {
  auto wire = encode(Pdu{Ipv4Prefix{true, roa("10.0.0.0/8", 24, 1)}});
  wire[9] = 33;  // prefix length byte
  EXPECT_THROW((void)try_decode(wire), RtrError);
  wire[9] = 24;
  wire[10] = 8;  // max_len < len
  EXPECT_THROW((void)try_decode(wire), RtrError);
}

// --- client/server synchronisation ------------------------------------------------

struct RtrPair {
  net::EventLoop loop;
  net::Duplex link{loop, 1000};
  CacheServer server{loop, /*session_id=*/7};
  RoaHashTable table;
  RtrClient client{loop, link.b(), table};

  RtrPair() { server.attach(link.a()); }
  void run() { loop.run_until(loop.now() + 1'000'000'000ull); }
};

TEST(RtrSession, FullSynchronisation) {
  RtrPair pair;
  pair.server.announce(roa("10.0.0.0/8", 24, 65001));
  pair.server.announce(roa("192.0.2.0/24", 24, 65002));
  pair.client.start();
  pair.run();
  EXPECT_TRUE(pair.client.synchronized());
  EXPECT_EQ(pair.client.serial(), 2u);
  EXPECT_EQ(pair.table.size(), 2u);
  EXPECT_EQ(pair.table.validate(Prefix::parse("10.1.0.0/16"), 65001), Validity::kValid);
}

TEST(RtrSession, IncrementalAnnounceAndWithdraw) {
  RtrPair pair;
  pair.server.announce(roa("10.0.0.0/8", 24, 65001));
  pair.client.start();
  pair.run();
  ASSERT_EQ(pair.table.size(), 1u);

  int syncs = 0;
  pair.client.on_synchronized = [&] { ++syncs; };
  // Live update: a new ROA arrives, an old one is revoked.
  pair.server.announce(roa("203.0.113.0/24", 24, 65009));
  pair.run();
  pair.server.withdraw(roa("10.0.0.0/8", 24, 65001));
  pair.run();

  EXPECT_GE(syncs, 2);
  EXPECT_EQ(pair.client.serial(), 3u);
  EXPECT_EQ(pair.table.size(), 1u);
  EXPECT_EQ(pair.table.validate(Prefix::parse("203.0.113.0/24"), 65009), Validity::kValid);
  EXPECT_EQ(pair.table.validate(Prefix::parse("10.1.0.0/16"), 65001), Validity::kNotFound);
}

TEST(RtrSession, BatchedDeltasAreOneSerial) {
  RtrPair pair;
  pair.client.start();
  pair.run();
  pair.server.apply({Delta{true, roa("10.0.0.0/8", 24, 1)},
                     Delta{true, roa("11.0.0.0/8", 24, 2)},
                     Delta{true, roa("12.0.0.0/8", 24, 3)}});
  pair.run();
  EXPECT_EQ(pair.client.serial(), 1u);
  EXPECT_EQ(pair.table.size(), 3u);
}

TEST(RtrSession, StaleSerialGetsCacheResetThenResyncs) {
  RtrPair pair;
  pair.server.announce(roa("10.0.0.0/8", 24, 65001));
  pair.client.start();
  pair.run();
  ASSERT_EQ(pair.table.size(), 1u);

  // The cache drops its history; the next delta forces a Cache Reset. Use a
  // fresh table semantic check: after resync the table reflects the cache.
  pair.server.forget_history();
  pair.server.announce(roa("203.0.113.0/24", 24, 65009));
  pair.run();
  EXPECT_TRUE(pair.client.synchronized());
  EXPECT_EQ(pair.client.serial(), 2u);
  // Full snapshot re-announced both ROAs; the first one is duplicated in
  // the multiset-style store but validation semantics are unchanged.
  EXPECT_EQ(pair.table.validate(Prefix::parse("203.0.113.0/24"), 65009), Validity::kValid);
  EXPECT_EQ(pair.table.validate(Prefix::parse("10.1.0.0/16"), 65001), Validity::kValid);
}

TEST(RtrSession, ServerRejectsUnknownSessionSerialQuery) {
  net::EventLoop loop;
  net::Duplex link(loop, 0);
  CacheServer server(loop, 7);
  server.attach(link.a());
  auto client_end = link.b();
  std::vector<std::uint8_t> received;
  client_end.on_readable([&] {
    auto chunk = client_end.read_all();
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  client_end.write(encode(Pdu{SerialQuery{/*session=*/99, /*serial=*/0}}));
  loop.run_until_idle();
  const auto frame = try_decode(received);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(type_of(frame->pdu), PduType::kCacheReset);
}

TEST(RtrSession, MalformedInputGetsErrorReport) {
  net::EventLoop loop;
  net::Duplex link(loop, 0);
  CacheServer server(loop, 7);
  server.attach(link.a());
  auto client_end = link.b();
  std::vector<std::uint8_t> received;
  client_end.on_readable([&] {
    auto chunk = client_end.read_all();
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  std::vector<std::uint8_t> garbage{9, 9, 9, 9, 0, 0, 0, 8};  // bad version
  client_end.write(garbage);
  loop.run_until_idle();
  const auto frame = try_decode(received);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(type_of(frame->pdu), PduType::kErrorReport);
  EXPECT_EQ(std::get<ErrorReport>(frame->pdu).code, ErrorCode::kUnsupportedVersion);
}

// --- store removal across all three structures --------------------------------------

template <typename T>
class RoaRemoveTest : public ::testing::Test {};
using Stores = ::testing::Types<RoaTrie, RoaHashTable, LpfstRoaTable>;
TYPED_TEST_SUITE(RoaRemoveTest, Stores);

TYPED_TEST(RoaRemoveTest, RemoveDeletesExactRecordOnly) {
  TypeParam store;
  store.add(roa("10.0.0.0/8", 24, 65001));
  store.add(roa("10.0.0.0/8", 24, 65002));  // same prefix, different origin
  ASSERT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.remove(roa("10.0.0.0/8", 24, 65001)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.validate(Prefix::parse("10.1.0.0/16"), 65001), Validity::kInvalid);
  EXPECT_EQ(store.validate(Prefix::parse("10.1.0.0/16"), 65002), Validity::kValid);
  EXPECT_FALSE(store.remove(roa("10.0.0.0/8", 24, 65001)));  // already gone
  EXPECT_FALSE(store.remove(roa("99.0.0.0/8", 24, 65001)));  // never existed
  EXPECT_TRUE(store.remove(roa("10.0.0.0/8", 24, 65002)));
  EXPECT_EQ(store.validate(Prefix::parse("10.1.0.0/16"), 65002), Validity::kNotFound);
}

}  // namespace
