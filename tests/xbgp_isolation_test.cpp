// Isolation guarantees end to end: what extension bytecode must NOT be able
// to do, and how the VMM contains it (paper §2.1: "An extension code has its
// own dedicated memory space and it cannot directly access the memory of
// other extension codes or the host implementation").
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "extensions/common.hpp"
#include "harness/testbed.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using ebpf::Assembler;
using ebpf::Reg;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

template <typename T>
class IsolationTest : public ::testing::Test {};
using RouterTypes = ::testing::Types<hosts::fir::FirRouter, hosts::wren::WrenRouter>;
TYPED_TEST_SUITE(IsolationTest, RouterTypes);

template <typename RouterT>
struct Dut {
  net::EventLoop loop;
  RouterT router;
  harness::Testbed<RouterT> bed;

  Dut()
      : router(loop, make_cfg()),
        bed(loop, router, harness::TestbedPlan::ebgp_plan()) {}

  static typename RouterT::Config make_cfg() {
    typename RouterT::Config cfg;
    cfg.name = "dut";
    cfg.asn = harness::TestbedPlan::ebgp_plan().dut_asn;
    cfg.router_id = 0x0A000002;
    cfg.address = harness::TestbedPlan::ebgp_plan().dut_addr;
    return cfg;
  }

  void feed_some(std::size_t n = 10) {
    bed.establish();
    harness::WorkloadParams params;
    params.route_count = n;
    const auto workload = harness::make_workload(params);
    bed.run(workload, workload.prefix_count);
  }
};

TYPED_TEST(IsolationTest, WriteToXtraBlobFaults) {
  // get_xtra exposes configuration read-only: a store through the returned
  // pointer must fault and fall back to native behaviour.
  Dut<TypeParam> dut;
  dut.router.set_xtra_u32(xbgp::xtra::kMaxMetric, 99);
  Assembler a;
  auto done = a.make_label();
  ext::emit_get_xtra(a, -16, xbgp::xtra::kMaxMetric);
  a.jeq(Reg::R0, 0, done);
  a.stdw(Reg::R0, 0, 0xEE);  // attempt to overwrite the router's config
  a.place(done);
  a.mov64(Reg::R0, static_cast<std::int32_t>(xbgp::kFilterAccept));
  a.exit_();
  xbgp::Manifest m;
  m.attach("config_writer", xbgp::Op::kInboundFilter, a.build("config_writer"));
  dut.router.load_extensions(m);

  dut.feed_some();
  EXPECT_GT(dut.router.stats().extension_faults, 0u);
  // Routes still flowed through the native default.
  EXPECT_EQ(dut.router.loc_rib_size(), 10u);
  // And the configuration survived untouched.
  xbgp::ExecContext probe;
  auto blob = dut.router.get_xtra(xbgp::xtra::kMaxMetric);
  std::uint32_t value = 0;
  std::memcpy(&value, blob.data(), 4);
  EXPECT_EQ(value, 99u);
  (void)probe;
}

TYPED_TEST(IsolationTest, RunawayLoopIsStoppedByBudget) {
  // The loop below satisfies the static analyzer — r6 counts down from a
  // huge bound with unit steps, so the trip count is provably finite — but
  // it dwarfs the instruction budget by twelve orders of magnitude.  The
  // runtime budget is the backstop for statically-plausible-but-hostile
  // programs.
  Dut<TypeParam> dut;
  Assembler a;
  auto top = a.make_label();
  auto out = a.make_label();
  a.lddw(Reg::R6, 0x7FFFFFFFFFFFFFFFll);
  a.place(top);
  a.jeq(Reg::R6, 0, out);
  a.sub64(Reg::R6, 1);
  a.ja(top);
  a.place(out);
  a.mov64(Reg::R0, 0);
  a.exit_();
  xbgp::Manifest m;
  m.attach("spinner", xbgp::Op::kInboundFilter, a.build("spinner"));
  dut.router.load_extensions(m);

  dut.feed_some();
  EXPECT_GT(dut.router.stats().extension_faults, 0u);
  EXPECT_EQ(dut.router.loc_rib_size(), 10u);  // native fallback accepted
}

TYPED_TEST(IsolationTest, EphemeralArenaExhaustionFaultsCleanly) {
  Dut<TypeParam> dut;
  Assembler a;
  auto loop_label = a.make_label();
  auto fail = a.make_label();
  // Allocate 4 KiB chunks until ctx_malloc returns 0 (the arena is finite),
  // then dereference the null pointer -> clean fault, native fallback.
  // r6 bounds the loop for the static analyzer; the arena (64 KiB / 4 KiB =
  // 16 allocations) runs dry long before the counter does.
  a.mov64(Reg::R6, 0);
  a.place(loop_label);
  a.mov64(Reg::R1, 4096);
  a.call(xbgp::helper::kCtxMalloc);
  a.jeq(Reg::R0, 0, fail);
  a.add64(Reg::R6, 1);
  a.jne(Reg::R6, 1 << 20, loop_label);
  a.place(fail);
  a.ldxdw(Reg::R0, Reg::R0, 0);  // null deref -> kBadMemoryAccess
  a.exit_();
  xbgp::Manifest m;
  m.attach("hoarder", xbgp::Op::kInboundFilter, a.build("hoarder"));
  dut.router.load_extensions(m);

  dut.feed_some();
  EXPECT_GT(dut.router.stats().extension_faults, 0u);
  EXPECT_EQ(dut.router.loc_rib_size(), 10u);
}

TYPED_TEST(IsolationTest, EphemeralMemoryDoesNotLeakBetweenPrograms) {
  // Program A writes a marker into ctx_malloc memory. Program B (different
  // group, later in the chain) allocates and must be able to observe only
  // its own arena contents — and crucially can never *address* A's shared
  // pool: shmget on A's key returns 0 in B's group.
  Dut<TypeParam> dut;

  Assembler writer;
  writer.mov64(Reg::R1, 1);   // shm key 1 in group A
  writer.mov64(Reg::R2, 8);
  writer.call(xbgp::helper::kShmNew);
  {
    auto skip = writer.make_label();
    writer.jeq(Reg::R0, 0, skip);
    writer.lddw(Reg::R1, 0x5EC2E7);
    writer.stxdw(Reg::R0, 0, Reg::R1);
    writer.place(skip);
  }
  writer.call(xbgp::helper::kNext);
  writer.mov64(Reg::R0, 0);
  writer.exit_();

  Assembler prober;
  prober.mov64(Reg::R1, 1);  // same key, different group
  prober.call(xbgp::helper::kShmGet);
  {
    // If the pool were shared, r0 would be non-zero: report by REJECTING
    // every route (observable as an empty Loc-RIB).
    auto clean = prober.make_label();
    prober.jeq(Reg::R0, 0, clean);
    prober.mov64(Reg::R0, static_cast<std::int32_t>(xbgp::kFilterReject));
    prober.exit_();
    prober.place(clean);
  }
  prober.call(xbgp::helper::kNext);
  prober.mov64(Reg::R0, 0);
  prober.exit_();

  xbgp::Manifest m;
  m.attach("writer", xbgp::Op::kInboundFilter, writer.build("writer"), 0, 0, "groupA");
  m.attach("prober", xbgp::Op::kInboundFilter, prober.build("prober"), 1, 0, "groupB");
  dut.router.load_extensions(m);

  dut.feed_some();
  EXPECT_EQ(dut.router.loc_rib_size(), 10u);  // prober saw no foreign memory
  EXPECT_EQ(dut.router.stats().extension_faults, 0u);
}

TYPED_TEST(IsolationTest, FaultInOneChainDoesNotDetachOthers) {
  // A crashing inbound program must not affect the outbound chain.
  Dut<TypeParam> dut;
  Assembler crash;
  crash.lddw(Reg::R1, 0x60);
  crash.ldxdw(Reg::R0, Reg::R1, 0);
  crash.exit_();
  Assembler tag;  // outbound: set a MED through the attribute API
  tag.stb(Reg::R10, -4, 0);
  tag.stb(Reg::R10, -3, 0);
  tag.stb(Reg::R10, -2, 0);
  tag.stb(Reg::R10, -1, 77);
  tag.mov64(Reg::R1, bgp::attr_code::kMed);
  tag.mov64(Reg::R2, bgp::attr_flag::kOptional);
  tag.mov64(Reg::R3, Reg::R10);
  tag.add64(Reg::R3, -4);
  tag.mov64(Reg::R4, 4);
  tag.call(xbgp::helper::kSetAttr);
  tag.mov64(Reg::R0, static_cast<std::int32_t>(xbgp::kFilterAccept));
  tag.exit_();

  xbgp::Manifest m;
  m.attach("crash", xbgp::Op::kInboundFilter, crash.build("crash"));
  m.attach("tagger", xbgp::Op::kOutboundFilter, tag.build("tagger"));
  dut.router.load_extensions(m);

  dut.feed_some();
  EXPECT_GT(dut.router.stats().extension_faults, 0u);  // inbound crashed
  EXPECT_EQ(dut.router.loc_rib_size(), 10u);
  // The outbound tagger still ran: the sink's last update carries MED 77
  // via the extension-managed attribute... which native encode skips; the
  // observable effect is in the adj-rib-out attrs.
  EXPECT_GT(dut.router.vmm().stats().extension_handled, 0u);
}

}  // namespace
