// The VMM: verification at load, next() chaining, ordering, fault fallback,
// memory pools, helper maps, isolation.
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "xbgp/vmm.hpp"

namespace {

using namespace xb;
using namespace xb::xbgp;
using ebpf::Assembler;
using ebpf::Reg;

/// Minimal host for VMM-level tests.
class FakeHost : public HostApi {
 public:
  bool peer_info(const ExecContext&, PeerInfo& out) override {
    out = peer;
    return peer_available;
  }
  bool src_peer_info(const ExecContext&, PeerInfo& out) override {
    out = peer;
    return peer_available;
  }
  std::optional<bgp::WireAttr> get_attr(const ExecContext&, std::uint8_t code) override {
    for (const auto& a : attrs) {
      if (a.code == code) return a;
    }
    return std::nullopt;
  }
  bool set_attr(ExecContext&, bgp::WireAttr attr) override {
    set_attrs.push_back(attr);
    return true;
  }
  bool add_attr(ExecContext&, bgp::WireAttr attr) override {
    added_attrs.push_back(attr);
    return true;
  }
  bool nexthop_info(const ExecContext&, NexthopInfo& out) override {
    out = nexthop;
    return true;
  }
  std::span<const std::uint8_t> get_xtra(std::string_view key) override {
    auto it = xtra.find(std::string(key));
    if (it == xtra.end()) return {};
    return it->second;
  }
  bool write_buf(ExecContext&, std::span<const std::uint8_t> data) override {
    written.insert(written.end(), data.begin(), data.end());
    return true;
  }
  bool rib_add_route(const util::Prefix& prefix, util::Ipv4Addr nh) override {
    rib[prefix] = nh;
    return true;
  }
  std::optional<util::Ipv4Addr> rib_lookup(const util::Prefix& prefix) override {
    auto it = rib.find(prefix);
    return it == rib.end() ? std::nullopt : std::optional(it->second);
  }
  bool set_route_meta(ExecContext&, std::uint32_t value) override {
    meta = value;
    return true;
  }
  std::optional<std::uint32_t> get_route_meta(const ExecContext&) override { return meta; }
  void notify_extension_fault(const FaultInfo& fault) override {
    ++faults;
    last_fault = std::string(to_string(fault.op)) + "/" + std::string(fault.program) + ": " +
                 std::string(fault.detail);
    last_fault_class = fault.cls;
  }
  void ebpf_print(std::string_view message) override { printed.push_back(std::string(message)); }

  PeerInfo peer{};
  bool peer_available = true;
  NexthopInfo nexthop{};
  std::vector<bgp::WireAttr> attrs;
  std::vector<bgp::WireAttr> set_attrs;
  std::vector<bgp::WireAttr> added_attrs;
  std::map<std::string, std::vector<std::uint8_t>> xtra;
  std::vector<std::uint8_t> written;
  std::map<util::Prefix, util::Ipv4Addr> rib;
  std::uint32_t meta = 0;
  int faults = 0;
  std::string last_fault;
  FaultClass last_fault_class = FaultClass::kVerify;
  std::vector<std::string> printed;
};

ebpf::Program const_program(const char* name, std::int32_t value) {
  Assembler a;
  a.mov64(Reg::R0, value);
  a.exit_();
  return a.build(name);
}

ebpf::Program next_program(const char* name) {
  Assembler a;
  a.call(helper::kNext);
  a.mov64(Reg::R0, 0);
  a.exit_();
  return a.build(name);
}

ebpf::Program faulting_program(const char* name) {
  Assembler a;
  a.lddw(Reg::R1, 0x1234);  // wild pointer
  a.ldxdw(Reg::R0, Reg::R1, 0);
  a.exit_();
  return a.build(name);
}

TEST(Vmm, NoChainRunsNativeDefault) {
  FakeHost host;
  Vmm vmm(host);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 7u);
  EXPECT_EQ(vmm.stats().invocations, 0u);  // chain empty: no VM involvement
}

TEST(Vmm, ExtensionResultOverridesDefault) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("p", Op::kInboundFilter, const_program("p", 42));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 42u);
  EXPECT_EQ(vmm.stats().extension_handled, 1u);
}

TEST(Vmm, NextFallsBackToDefault) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("p", Op::kInboundFilter, next_program("p"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 7u);
  EXPECT_EQ(vmm.stats().next_yields, 1u);
  EXPECT_EQ(vmm.stats().native_fallbacks, 1u);
}

TEST(Vmm, NextChainsToSecondProgram) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("first", Op::kInboundFilter, next_program("first"), /*order=*/0);
  m.attach("second", Op::kInboundFilter, const_program("second", 9), /*order=*/1);
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 9u);
}

TEST(Vmm, ManifestOrderControlsExecution) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  // Attached in reverse order; `order` must win.
  m.attach("late", Op::kInboundFilter, const_program("late", 1), /*order=*/5);
  m.attach("early", Op::kInboundFilter, const_program("early", 2), /*order=*/1);
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 2u);
}

TEST(Vmm, FaultFallsBackAndNotifiesHost) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("bad", Op::kInboundFilter, faulting_program("bad"));
  // A second program after the faulting one must NOT run (paper: stop +
  // fall back to the default function).
  m.attach("after", Op::kInboundFilter, const_program("after", 5), /*order=*/1);
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 7u);
  EXPECT_EQ(host.faults, 1);
  EXPECT_NE(host.last_fault.find("bad"), std::string::npos);
  EXPECT_EQ(vmm.stats().faults, 1u);
}

TEST(Vmm, VerifyStatsCountPerInsertionPoint) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("a", Op::kInboundFilter, const_program("a", 1), /*order=*/0);
  m.attach("b", Op::kInboundFilter, next_program("b"), /*order=*/1);
  // A warning-severity finding (unreachable code) still attaches, but the
  // warning is counted against its insertion point.
  Assembler w;
  w.mov64(Reg::R0, 0);
  w.exit_();
  w.mov64(Reg::R0, 1);  // unreachable
  w.exit_();
  m.attach("warner", Op::kOutboundFilter, w.build("warner"));
  vmm.load(m);

  EXPECT_EQ(vmm.verify_stats(Op::kInboundFilter).verified, 2u);
  EXPECT_EQ(vmm.verify_stats(Op::kInboundFilter).rejected, 0u);
  EXPECT_EQ(vmm.verify_stats(Op::kInboundFilter).warnings, 0u);
  EXPECT_EQ(vmm.verify_stats(Op::kOutboundFilter).verified, 1u);
  EXPECT_EQ(vmm.verify_stats(Op::kOutboundFilter).warnings, 1u);
}

TEST(Vmm, LoadRejectsAnalyzerError) {
  // Value-level badness (r0 dead at exit) is caught at load time by the
  // abstract-interpretation pass, not just structural pass 0.
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.mov64(Reg::R6, 0);
  a.exit_();  // r0 never set
  m.attach("bad", Op::kInboundFilter, a.build("bad"));
  EXPECT_THROW(vmm.load(m), std::invalid_argument);
  EXPECT_EQ(vmm.verify_stats(Op::kInboundFilter).rejected, 1u);
  EXPECT_EQ(vmm.verify_stats(Op::kInboundFilter).verified, 0u);
}

TEST(Vmm, LoadRejectsUnverifiableProgram) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.mov64(Reg::R0, 0);  // no exit: falls off the end
  ManifestEntry entry;
  entry.name = "broken";
  entry.point = Op::kInboundFilter;
  entry.program = ebpf::Program("broken", a.build("tmp").insns(), {});
  // Strip the exit by truncating: rebuild raw.
  entry.program = ebpf::Program("broken", {{0xb7, 0, 0, 0, 0}}, {});
  m.entries.push_back(entry);
  EXPECT_THROW(vmm.load(m), std::invalid_argument);
}

TEST(Vmm, LoadRejectsUndeclaredHelper) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.call(helper::kGetPeerInfo);
  a.exit_();
  ManifestEntry entry;
  entry.name = "sneaky";
  entry.point = Op::kInboundFilter;
  entry.program = a.build("sneaky");
  entry.allowed_helpers = {};  // manifest does not declare get_peer_info
  m.entries.push_back(entry);
  EXPECT_THROW(vmm.load(m), std::invalid_argument);
}

TEST(Vmm, GetArgCopiesIntoArena) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.mov64(Reg::R1, 1);
  a.call(helper::kGetArg);
  a.ldxw(Reg::R0, Reg::R0, 0);
  a.exit_();
  m.attach("arg", Op::kReceiveMessage, a.build("arg"));
  vmm.load(m);

  const std::uint32_t payload = 0xAABBCCDD;
  ExecContext ctx;
  ctx.add_arg(1, std::span(reinterpret_cast<const std::uint8_t*>(&payload), 4));
  EXPECT_EQ(vmm.execute(Op::kReceiveMessage, ctx, [] { return 0ull; }), 0xAABBCCDDu);
}

TEST(Vmm, MissingArgReturnsNull) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.mov64(Reg::R1, 9);
  a.call(helper::kGetArg);
  a.exit_();
  m.attach("arg", Op::kReceiveMessage, a.build("arg"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kReceiveMessage, ctx, [] { return 5ull; }), 0u);
}

TEST(Vmm, PeerInfoStructReachable) {
  FakeHost host;
  host.peer.asn = 65123;
  host.peer.peer_type = kPeerTypeEbgp;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.call(helper::kGetPeerInfo);
  a.ldxw(Reg::R0, Reg::R0, 4);  // PeerInfo::asn
  a.exit_();
  m.attach("peer", Op::kInboundFilter, a.build("peer"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 65123u);
}

TEST(Vmm, SetAttrValidatesPointer) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  Assembler a;
  a.mov64(Reg::R1, 9);
  a.mov64(Reg::R2, 0x80);
  a.lddw(Reg::R3, 0xDEAD0000);  // not a valid VM pointer
  a.mov64(Reg::R4, 4);
  a.call(helper::kSetAttr);
  a.exit_();
  m.attach("evil", Op::kOutboundFilter, a.build("evil"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kOutboundFilter, ctx, [] { return 3ull; }), 3u);  // fault -> default
  EXPECT_EQ(host.faults, 1);
  EXPECT_TRUE(host.set_attrs.empty());
}

TEST(Vmm, ShmSharedWithinGroupIsolatedAcrossGroups) {
  FakeHost host;
  Vmm vmm(host);
  // writer stores 77 at shm key 1; readers in the same/other group read it.
  Assembler w;
  w.mov64(Reg::R1, 1);
  w.mov64(Reg::R2, 8);
  w.call(helper::kShmNew);
  w.stxdw(Reg::R0, 0, Reg::R0);  // store something non-zero (the pointer)
  w.mov64(Reg::R0, 0);
  w.exit_();
  Assembler r;
  r.mov64(Reg::R1, 1);
  r.call(helper::kShmGet);
  r.exit_();  // returns pointer (0 if absent)

  Manifest m;
  m.attach("writer", Op::kInit, w.build("writer"), 0, 0, "groupA");
  m.attach("reader_same", Op::kInboundFilter, r.build("reader_same"), 0, 0, "groupA");
  m.attach("reader_other", Op::kOutboundFilter, r.build("reader_other"), 0, 0, "groupB");
  vmm.load(m);

  ExecContext ctx;
  EXPECT_NE(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 0u);
  ExecContext ctx2;
  EXPECT_EQ(vmm.execute(Op::kOutboundFilter, ctx2, [] { return 0ull; }), 0u);
}

TEST(Vmm, MapUpdateLookupAcrossGroupPrograms) {
  FakeHost host;
  Vmm vmm(host);
  Assembler w;
  w.mov64(Reg::R1, 1);   // map id
  w.mov64(Reg::R2, 10);  // k1
  w.mov64(Reg::R3, 20);  // k2
  w.mov64(Reg::R4, 99);  // value
  w.call(helper::kMapUpdate);
  w.mov64(Reg::R0, 0);
  w.exit_();
  Assembler r;
  r.mov64(Reg::R1, 1);
  r.mov64(Reg::R2, 10);
  r.mov64(Reg::R3, 20);
  r.call(helper::kMapLookup);
  r.exit_();
  Manifest m;
  m.attach("w", Op::kInit, w.build("w"), 0, 100, "g");
  m.attach("r", Op::kInboundFilter, r.build("r"), 0, 100, "g");
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 99u);
}

TEST(Vmm, XtraBlobReadableAndHonoursLength) {
  FakeHost host;
  host.xtra["key1"] = {0x11, 0x22, 0x33, 0x44};
  Vmm vmm(host);
  Assembler a;
  // "key1" on the stack (little-endian byte packing: 'k' 'e' 'y' '1').
  a.lddw(Reg::R1, 0x3179656Bull);
  a.stxdw(Reg::R10, -8, Reg::R1);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, -8);
  a.mov64(Reg::R2, 4);
  a.call(helper::kGetXtra);
  a.ldxw(Reg::R0, Reg::R0, 0);
  a.exit_();
  Manifest m;
  m.attach("x", Op::kInboundFilter, a.build("x"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 0x44332211u);
}

TEST(Vmm, WriteBufAppendsToHost) {
  FakeHost host;
  Vmm vmm(host);
  Assembler a;
  a.stb(Reg::R10, -4, 0xAB);
  a.stb(Reg::R10, -3, 0xCD);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, -4);
  a.mov64(Reg::R2, 2);
  a.call(helper::kWriteBuf);
  a.exit_();
  Manifest m;
  m.attach("wb", Op::kEncodeMessage, a.build("wb"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kEncodeMessage, ctx, [] { return 0ull; }), 2u);
  EXPECT_EQ(host.written, (std::vector<std::uint8_t>{0xAB, 0xCD}));
}

TEST(Vmm, InitRunsAtLoadTime) {
  FakeHost host;
  Vmm vmm(host);
  Assembler a;
  a.mov64(Reg::R1, 1);
  a.mov64(Reg::R2, 2);
  a.mov64(Reg::R3, 3);
  a.mov64(Reg::R4, 4);
  a.call(helper::kMapUpdate);
  a.mov64(Reg::R0, 0);
  a.exit_();
  Manifest m;
  m.attach("init", Op::kInit, a.build("init"));
  vmm.load(m);  // runs immediately; would only be observable via map state
  EXPECT_EQ(vmm.stats().faults, 0u);
}

TEST(Vmm, InitFaultNotifies) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("badinit", Op::kInit, faulting_program("badinit"));
  vmm.load(m);
  EXPECT_EQ(host.faults, 1);
}

TEST(Vmm, RibHelpersRoundTrip) {
  FakeHost host;
  Vmm vmm(host);
  Assembler a;
  // PrefixArg {addr=0x0A000000, len=8} at r10-8; add route nh=0x0A000001.
  a.lddw(Reg::R1, 0x0000'0008'0A00'0000ull);
  a.stxdw(Reg::R10, -8, Reg::R1);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, -8);
  a.lddw(Reg::R2, 0x0A000001);
  a.call(helper::kRibAddRoute);
  a.mov64(Reg::R1, Reg::R10);
  a.add64(Reg::R1, -8);
  a.call(helper::kRibLookup);
  a.exit_();
  Manifest m;
  m.attach("rib", Op::kInboundFilter, a.build("rib"));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 0x0A000001u);
  EXPECT_EQ(host.rib.size(), 1u);
}

TEST(Vmm, UnloadAllRestoresNative) {
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("p", Op::kInboundFilter, const_program("p", 42));
  vmm.load(m);
  vmm.unload_all();
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 7u);
  EXPECT_FALSE(vmm.any_attached(Op::kInboundFilter));
}

TEST(Vmm, PreferredTierIsDefaultAndCounted) {
  // The default engine is the JIT where the host supports it (and the env
  // does not veto it), the fast interpreter otherwise; either way the run
  // lands on that tier's counter and never on the reference tier.
  FakeHost host;
  Vmm vmm(host);
  Manifest m;
  m.attach("p", Op::kInboundFilter, const_program("p", 42));
  vmm.load(m);
  const auto& tstats = vmm.translation_stats();
  EXPECT_EQ(tstats.programs, 1u);
  EXPECT_GT(tstats.ir_insns, 0u);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 42u);
  const auto preferred = ebpf::Jit::preferred_exec_mode();
  EXPECT_EQ(vmm.stats().tier_runs[static_cast<std::size_t>(preferred)], 1u);
  EXPECT_EQ(vmm.stats().tier_runs[static_cast<std::size_t>(ebpf::ExecMode::kReference)], 0u);
}

TEST(Vmm, TiersAgreeOnHelperHeavyProgram) {
  // The same loaded program, executed on both tiers through the full VMM
  // helper surface (attr read, route meta, shared memory), must produce the
  // same value and the same host-visible side effects.
  FakeHost host;
  host.attrs.push_back(bgp::WireAttr{0x40, 1, {2}});
  auto build = [] {
    Assembler a;
    a.mov64(Reg::R1, 77);
    a.call(helper::kSetRouteMeta);
    a.call(helper::kGetRouteMeta);
    a.stxdw(Reg::R10, -8, Reg::R0);
    a.mov64(Reg::R1, 1);  // attr code ORIGIN
    a.call(helper::kGetAttr);
    a.ldxdw(Reg::R0, Reg::R10, -8);
    a.exit_();
    return a.build("both_tiers");
  };
  std::uint64_t values[2];
  for (int tier = 0; tier < 2; ++tier) {
    Vmm::Options opts;
    opts.exec_mode = tier == 0 ? ebpf::ExecMode::kReference : ebpf::ExecMode::kFast;
    Vmm vmm(host, opts);
    Manifest m;
    m.attach("both_tiers", Op::kInboundFilter, build());
    vmm.load(m);
    ExecContext ctx;
    values[tier] = vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; });
    EXPECT_EQ(vmm.stats().tier_runs[tier], 1u) << "tier " << tier;
    EXPECT_EQ(vmm.stats().faults, 0u) << "tier " << tier;
  }
  EXPECT_EQ(values[0], 77u);
  EXPECT_EQ(values[1], values[0]);
  EXPECT_EQ(host.meta, 77u);
}

TEST(Vmm, SetExecModeSwitchesTiersAtRunTime) {
  FakeHost host;
  Vmm vmm(host);  // preferred tier (jit where supported) by default
  Manifest m;
  m.attach("p", Op::kInboundFilter, const_program("p", 42));
  vmm.load(m);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 42u);
  EXPECT_TRUE(vmm.set_exec_mode("p", ebpf::ExecMode::kReference));
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 42u);
  EXPECT_FALSE(vmm.set_exec_mode("no_such_program", ebpf::ExecMode::kFast));
  vmm.set_exec_mode(ebpf::ExecMode::kFast);  // global switch: force tier 1
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 42u);
  // Run 1 lands on the preferred tier, run 2 on the reference tier, run 3 on
  // the fast tier; on hosts without a JIT the preferred tier IS the fast tier.
  const auto stats = vmm.stats();
  const bool jit_preferred = ebpf::Jit::preferred_exec_mode() == ebpf::ExecMode::kJit;
  EXPECT_EQ(stats.tier_runs[static_cast<std::size_t>(ebpf::ExecMode::kJit)],
            jit_preferred ? 1u : 0u);
  EXPECT_EQ(stats.tier_runs[static_cast<std::size_t>(ebpf::ExecMode::kFast)],
            jit_preferred ? 1u : 2u);
  EXPECT_EQ(stats.tier_runs[static_cast<std::size_t>(ebpf::ExecMode::kReference)], 1u);
}

TEST(Vmm, FaultDetailSurvivesFastTier) {
  // Fault literals reach FaultInfo unchanged regardless of tier.
  for (const auto mode : {ebpf::ExecMode::kReference, ebpf::ExecMode::kFast}) {
    FakeHost host;
    Vmm::Options opts;
    opts.exec_mode = mode;
    Vmm vmm(host, opts);
    Manifest m;
    m.attach("bad", Op::kInboundFilter, faulting_program("bad"));
    vmm.load(m);
    ExecContext ctx;
    EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 7ull; }), 7u);
    EXPECT_EQ(host.faults, 1);
    EXPECT_NE(host.last_fault.find("memory read out of bounds"), std::string::npos)
        << host.last_fault;
    EXPECT_EQ(host.last_fault_class, FaultClass::kMemoryBounds);
  }
}

TEST(Vmm, TranslationElidesProvenStackChecks) {
  FakeHost host;
  Vmm vmm(host);
  Assembler a;
  a.stdw(Reg::R10, -8, 41);
  a.ldxdw(Reg::R0, Reg::R10, -8);
  a.add64(Reg::R0, 1);
  a.exit_();
  Manifest m;
  m.attach("stack", Op::kInboundFilter, a.build("stack"));
  vmm.load(m);
  const auto& tstats = vmm.translation_stats();
  EXPECT_EQ(tstats.elided_checks, 2u);
  EXPECT_EQ(tstats.checked_accesses, 0u);
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 42u);
}

TEST(Vmm, SqrtHelper) {
  FakeHost host;
  Vmm vmm(host);
  Assembler a;
  a.mov64(Reg::R1, Reg::R1);
  a.call(helper::kSqrtU64);
  a.exit_();
  Manifest m;
  m.attach("sqrt", Op::kInboundFilter, a.build("sqrt"));
  vmm.load(m);
  // Run via the chain: r1 at entry is the op id (2 for inbound filter), so
  // result must be isqrt(2) = 1.
  ExecContext ctx;
  EXPECT_EQ(vmm.execute(Op::kInboundFilter, ctx, [] { return 0ull; }), 1u);
}

}  // namespace
