// The RFC 4271 decision process: each tie-break step, ordering properties.
#include <gtest/gtest.h>

#include "bgp/decision.hpp"
#include "igp/graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace xb::bgp;
using xb::util::Ipv4Addr;

RouteView base() {
  RouteView v;
  v.local_pref = 100;
  v.as_path_length = 3;
  v.origin = Origin::kIgp;
  v.med = 0;
  v.neighbor_as = 65001;
  v.peer_type = PeerType::kEbgp;
  v.igp_metric_to_nexthop = 10;
  v.cluster_list_length = 0;
  v.peer_router_id = 0x0A000001;
  v.peer_addr = Ipv4Addr::parse("10.0.0.1");
  return v;
}

TEST(Decision, HigherLocalPrefWins) {
  auto a = base();
  auto b = base();
  a.local_pref = 200;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kLocalPref);
}

TEST(Decision, ShorterAsPathWins) {
  auto a = base();
  auto b = base();
  b.as_path_length = 5;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kAsPathLength);
}

TEST(Decision, LowerOriginWins) {
  auto a = base();
  auto b = base();
  b.origin = Origin::kIncomplete;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kOrigin);
}

TEST(Decision, MedComparedOnlyWithinSameNeighborAs) {
  auto a = base();
  auto b = base();
  a.med = 10;
  b.med = 20;
  EXPECT_EQ(compare_routes(a, b).decided_by, DecisionStep::kMed);
  EXPECT_TRUE(compare_routes(a, b).first_is_better);
  b.neighbor_as = 65999;  // different neighbour: MED skipped
  EXPECT_NE(compare_routes(a, b).decided_by, DecisionStep::kMed);
}

TEST(Decision, MissingMedTreatedAsZero) {
  auto a = base();
  auto b = base();
  a.med.reset();
  b.med = 5;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kMed);
}

TEST(Decision, EbgpBeatsIbgp) {
  auto a = base();
  auto b = base();
  b.peer_type = PeerType::kIbgp;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kPeerType);
}

TEST(Decision, LowerIgpMetricWins) {
  auto a = base();
  auto b = base();
  b.igp_metric_to_nexthop = 100;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kIgpMetric);
}

TEST(Decision, ShorterClusterListWins) {
  auto a = base();
  auto b = base();
  b.cluster_list_length = 2;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kClusterListLength);
}

TEST(Decision, LowerRouterIdWins) {
  auto a = base();
  auto b = base();
  b.peer_router_id = 0x0A000002;
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kRouterId);
}

TEST(Decision, PeerAddrIsFinalTieBreak) {
  auto a = base();
  auto b = base();
  b.peer_addr = Ipv4Addr::parse("10.0.0.9");
  auto cmp = compare_routes(a, b);
  EXPECT_TRUE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kPeerAddr);
}

TEST(Decision, IdenticalRoutesAreEqual) {
  auto cmp = compare_routes(base(), base());
  EXPECT_FALSE(cmp.first_is_better);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kEqual);
}

TEST(Decision, StepPrecedenceLocalPrefOverEverything) {
  auto a = base();
  auto b = base();
  a.local_pref = 101;           // a better on step (a)
  a.as_path_length = 10;        // a worse on every later step
  a.origin = Origin::kIncomplete;
  a.igp_metric_to_nexthop = 999;
  EXPECT_TRUE(better(a, b));
}

// Antisymmetry property under random views: exactly one of better(a,b),
// better(b,a) unless fully tied.
TEST(Decision, AntisymmetryProperty) {
  xb::util::Rng rng(3);
  for (int iter = 0; iter < 500; ++iter) {
    auto mk = [&rng] {
      RouteView v;
      v.local_pref = static_cast<std::uint32_t>(rng.below(3)) * 50 + 100;
      v.as_path_length = rng.below(4);
      v.origin = static_cast<Origin>(rng.below(3));
      if (rng.chance(0.5)) v.med = static_cast<std::uint32_t>(rng.below(3));
      v.neighbor_as = 65000 + static_cast<Asn>(rng.below(2));
      v.peer_type = rng.chance(0.5) ? PeerType::kEbgp : PeerType::kIbgp;
      v.igp_metric_to_nexthop = static_cast<std::uint32_t>(rng.below(3));
      v.cluster_list_length = rng.below(3);
      v.peer_router_id = static_cast<RouterId>(rng.below(4));
      v.peer_addr = Ipv4Addr(static_cast<std::uint32_t>(rng.below(4)));
      return v;
    };
    const auto a = mk();
    const auto b = mk();
    const auto ab = compare_routes(a, b);
    const auto ba = compare_routes(b, a);
    if (ab.decided_by == DecisionStep::kEqual) {
      EXPECT_EQ(ba.decided_by, DecisionStep::kEqual);
      EXPECT_FALSE(ab.first_is_better);
      EXPECT_FALSE(ba.first_is_better);
    } else {
      EXPECT_NE(ab.first_is_better, ba.first_is_better) << "iteration " << iter;
      EXPECT_EQ(ab.decided_by, ba.decided_by);
    }
  }
}

}  // namespace
