// Cross-implementation interoperability: Fir and Wren speak RFC 4271 to
// each other and run the SAME extension bytecode — the paper's core claim
// ("the same code can be executed on different implementations").
#include <gtest/gtest.h>

#include "extensions/geoloc.hpp"
#include "extensions/route_reflection.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"

namespace {

using namespace xb;
using util::Ipv4Addr;
using util::Prefix;

constexpr std::uint64_t kSec = 1'000'000'000ull;

struct MixedNet {
  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Duplex>> links;

  template <typename A, typename B>
  void connect(A& a, B& b, bool b_client = false, bool a_client = false) {
    links.push_back(std::make_unique<net::Duplex>(loop, 1000));
    a.add_peer(links.back()->a(), {.name = b.config().name, .asn = b.config().asn,
                                   .address = b.config().address, .rr_client = b_client});
    b.add_peer(links.back()->b(), {.name = a.config().name, .asn = a.config().asn,
                                   .address = a.config().address, .rr_client = a_client});
  }
};

template <typename RouterT>
typename RouterT::Config cfg_for(const char* name, bgp::Asn asn, std::uint8_t idx) {
  typename RouterT::Config cfg;
  cfg.name = name;
  cfg.asn = asn;
  cfg.router_id = 0x0A000000u + idx;
  cfg.address = Ipv4Addr(10, 0, 0, idx);
  return cfg;
}

TEST(Interop, FirAndWrenExchangeFullAttributeSets) {
  MixedNet net;
  hosts::fir::FirRouter fir(net.loop, cfg_for<hosts::fir::FirRouter>("fir", 65001, 1));
  hosts::wren::WrenRouter wren(net.loop, cfg_for<hosts::wren::WrenRouter>("wren", 65002, 2));
  net.connect(fir, wren);

  fir.originate(Prefix::parse("203.0.113.0/24"));
  wren.originate(Prefix::parse("198.51.100.0/24"));
  fir.start();
  wren.start();
  net.loop.run_until(3 * kSec);

  const auto* at_wren = wren.best(Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(at_wren, nullptr);
  EXPECT_EQ(hosts::wren::WrenCore::first_asn(*at_wren->attrs), 65001u);
  const auto* at_fir = fir.best(Prefix::parse("198.51.100.0/24"));
  ASSERT_NE(at_fir, nullptr);
  EXPECT_EQ(hosts::fir::FirCore::first_asn(*at_fir->attrs), 65002u);
}

TEST(Interop, MixedReflectorChainRunsIdenticalBytecode) {
  // iBGP chain: client(Fir) -> RR(Fir, extension) -> RR(Wren, extension)
  // -> client(Wren). The SAME three Program objects drive both reflectors.
  MixedNet net;
  hosts::fir::FirRouter a(net.loop, cfg_for<hosts::fir::FirRouter>("a", 65000, 1));
  auto rr1_cfg = cfg_for<hosts::fir::FirRouter>("rr1", 65000, 2);
  rr1_cfg.cluster_id = 0xC1;
  hosts::fir::FirRouter rr1(net.loop, rr1_cfg);
  auto rr2_cfg = cfg_for<hosts::wren::WrenRouter>("rr2", 65000, 3);
  rr2_cfg.cluster_id = 0xC2;
  hosts::wren::WrenRouter rr2(net.loop, rr2_cfg);
  hosts::wren::WrenRouter c(net.loop, cfg_for<hosts::wren::WrenRouter>("c", 65000, 4));

  const auto manifest = ext::route_reflection_manifest();
  rr1.load_extensions(manifest);
  rr2.load_extensions(manifest);
  // Identical program images attached to both hosts.
  ASSERT_EQ(manifest.entries.size(), 3u);
  for (const auto& entry : manifest.entries) {
    EXPECT_FALSE(entry.program.image().empty());
  }

  net.connect(rr1, a, /*b_client=*/true);
  net.connect(rr1, rr2, /*b_client=*/true, /*a_client=*/true);
  net.connect(rr2, c, /*b_client=*/true);

  const auto prefix = Prefix::parse("203.0.113.0/24");
  a.originate(prefix);
  a.start();
  rr1.start();
  rr2.start();
  c.start();
  net.loop.run_until(5 * kSec);

  const auto* at_c = c.best(prefix);
  ASSERT_NE(at_c, nullptr);
  using W = hosts::wren::WrenCore;
  EXPECT_EQ(W::originator_id(*at_c->attrs), a.config().router_id);
  EXPECT_EQ(W::cluster_list_length(*at_c->attrs), 2u);
  EXPECT_TRUE(W::cluster_list_contains(*at_c->attrs, 0xC1));
  EXPECT_TRUE(W::cluster_list_contains(*at_c->attrs, 0xC2));
  EXPECT_EQ(rr1.stats().extension_faults, 0u);
  EXPECT_EQ(rr2.stats().extension_faults, 0u);
  EXPECT_GT(rr1.vmm().stats().extension_handled, 0u);
  EXPECT_GT(rr2.vmm().stats().extension_handled, 0u);
}

TEST(Interop, GeoLocSurvivesMixedHostChain) {
  // eBGP feed into a Fir edge, iBGP across a Wren core, iBGP to a Fir exit:
  // the attribute added by bytecode at the edge must arrive intact at the
  // exit after traversing a host with completely different internals.
  MixedNet net;
  hosts::wren::WrenRouter feeder(net.loop,
                                 cfg_for<hosts::wren::WrenRouter>("feeder", 64999, 9));
  hosts::fir::FirRouter edge(net.loop, cfg_for<hosts::fir::FirRouter>("edge", 65000, 1));
  auto core_cfg = cfg_for<hosts::wren::WrenRouter>("core", 65000, 2);
  core_cfg.native_route_reflector = true;  // needs to reflect edge -> exit
  hosts::wren::WrenRouter core(net.loop, core_cfg);
  hosts::fir::FirRouter exit_r(net.loop, cfg_for<hosts::fir::FirRouter>("exit", 65000, 3));

  std::vector<std::uint8_t> coords(8);
  const std::int32_t lat = 50'850'000, lon = 4'350'000;
  std::memcpy(coords.data(), &lat, 4);
  std::memcpy(coords.data() + 4, &lon, 4);
  edge.set_xtra(xbgp::xtra::kGeoCoord, coords);

  const auto manifest = ext::geoloc_manifest(/*with_distance_filter=*/false);
  edge.load_extensions(manifest);
  core.load_extensions(manifest);
  exit_r.load_extensions(manifest);

  net.connect(feeder, edge);
  net.connect(edge, core, /*b_client=*/false, /*a_client=*/true);
  net.connect(core, exit_r, /*b_client=*/true);

  const auto prefix = Prefix::parse("203.0.113.0/24");
  feeder.originate(prefix);
  feeder.start();
  edge.start();
  core.start();
  exit_r.start();
  net.loop.run_until(5 * kSec);

  const auto* at_exit = exit_r.best(prefix);
  ASSERT_NE(at_exit, nullptr);
  const auto geoloc = hosts::fir::FirCore::get_attr(*at_exit->attrs, bgp::attr_code::kGeoLoc);
  ASSERT_TRUE(geoloc.has_value());
  const auto parsed = bgp::parse_geoloc(*geoloc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lat_microdeg, lat);
  EXPECT_EQ(parsed->lon_microdeg, lon);
}

}  // namespace
