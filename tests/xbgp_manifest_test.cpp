// Manifest model, text parser, program registry, helper-name tables.
#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "xbgp/manifest.hpp"

namespace {

using namespace xb::xbgp;
using xb::ebpf::Assembler;
using xb::ebpf::Reg;

xb::ebpf::Program trivial(const char* name) {
  Assembler a;
  a.call(helper::kNext);
  a.mov64(Reg::R0, 0);
  a.exit_();
  return a.build(name);
}

TEST(Manifest, AttachDerivesHelpersFromProgram) {
  Manifest m;
  m.attach("p", Op::kInboundFilter, trivial("p"));
  ASSERT_EQ(m.entries.size(), 1u);
  EXPECT_TRUE(m.entries[0].allowed_helpers.contains(helper::kNext));
  EXPECT_EQ(m.entries[0].group, "p");
}

TEST(Manifest, HelperNamesRoundTrip) {
  EXPECT_EQ(helper_id_by_name("next"), helper::kNext);
  EXPECT_EQ(helper_id_by_name("get_peer_info"), helper::kGetPeerInfo);
  EXPECT_EQ(helper_id_by_name("write_buf"), helper::kWriteBuf);
  EXPECT_EQ(helper_id_by_name("nonsense"), -1);
  EXPECT_STREQ(helper_name_by_id(helper::kGetAttr), "get_attr");
  EXPECT_STREQ(helper_name_by_id(999), "?");
}

TEST(Manifest, OpNames) {
  EXPECT_EQ(op_by_name("BGP_RECEIVE_MESSAGE"), Op::kReceiveMessage);
  EXPECT_EQ(op_by_name("BGP_INBOUND_FILTER"), Op::kInboundFilter);
  EXPECT_EQ(op_by_name("BGP_DECISION"), Op::kDecision);
  EXPECT_EQ(op_by_name("BGP_OUTBOUND_FILTER"), Op::kOutboundFilter);
  EXPECT_EQ(op_by_name("BGP_ENCODE_MESSAGE"), Op::kEncodeMessage);
  EXPECT_EQ(op_by_name("XBGP_INIT"), Op::kInit);
  EXPECT_THROW((void)op_by_name("BGP_BOGUS"), std::invalid_argument);
}

TEST(ManifestParser, ParsesFullForm) {
  ProgramRegistry reg;
  reg.add(trivial("export_igp"));
  reg.add(trivial("rr_in"));
  const char* text = R"(
    # the Listing-1 filter
    extension export_igp {
      insertion_point BGP_OUTBOUND_FILTER
      order 2
      helpers next get_peer_info get_nexthop get_xtra
      map_capacity 1000
      group filters
    }
    extension rr_in {
      insertion_point BGP_INBOUND_FILTER
      helpers next
    }
  )";
  const Manifest m = parse_manifest(text, reg);
  ASSERT_EQ(m.entries.size(), 2u);
  EXPECT_EQ(m.entries[0].name, "export_igp");
  EXPECT_EQ(m.entries[0].point, Op::kOutboundFilter);
  EXPECT_EQ(m.entries[0].order, 2);
  EXPECT_EQ(m.entries[0].map_capacity_hint, 1000u);
  EXPECT_EQ(m.entries[0].group, "filters");
  EXPECT_TRUE(m.entries[0].allowed_helpers.contains(helper::kGetNexthop));
  EXPECT_EQ(m.entries[1].point, Op::kInboundFilter);
  EXPECT_EQ(m.entries[1].group, "rr_in");  // defaults to the entry name
}

TEST(ManifestParser, RejectsUnknownProgram) {
  ProgramRegistry reg;
  EXPECT_THROW(parse_manifest("extension ghost { insertion_point XBGP_INIT }", reg),
               std::invalid_argument);
}

TEST(ManifestParser, RejectsMissingInsertionPoint) {
  ProgramRegistry reg;
  reg.add(trivial("p"));
  EXPECT_THROW(parse_manifest("extension p { order 1 }", reg), std::invalid_argument);
}

TEST(ManifestParser, RejectsUnknownHelperName) {
  ProgramRegistry reg;
  reg.add(trivial("p"));
  EXPECT_THROW(parse_manifest(
                   "extension p { insertion_point XBGP_INIT\nhelpers warp_speed\n }", reg),
               std::invalid_argument);
}

TEST(ManifestParser, RejectsUnknownKey) {
  ProgramRegistry reg;
  reg.add(trivial("p"));
  EXPECT_THROW(parse_manifest("extension p { insertion_point XBGP_INIT banana 1 }", reg),
               std::invalid_argument);
}

TEST(Registry, FindByName) {
  ProgramRegistry reg;
  reg.add(trivial("alpha"));
  EXPECT_NE(reg.find("alpha"), nullptr);
  EXPECT_EQ(reg.find("beta"), nullptr);
}

}  // namespace
