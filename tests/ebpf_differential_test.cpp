// Differential execution gate for the three-tier engine (docs/execution_engine.md).
//
// The fast tier (Translator + vm_fast.cpp) and the tier-2 x86-64 JIT
// (Jit + jit.cpp) must be observationally identical to the tier-0 reference
// interpreter for every pass-0-valid program:
//
//   * identical RunResult — status, value, fault kind, fault pc, fault
//     detail literal,
//   * identical helper-call sequences — same ids, same argument registers,
//     in the same order,
//   * identical instruction retirement and helper-call accounting.
//
// Three sources of programs hold it to that:
//
//   1. a structure-aware mutant corpus: seed programs covering every
//      instruction family, field-mutated under a fixed-seed RNG, filtered by
//      the structural verifier (pass 0 is the translator's contract), then
//      run through every tier — with the analyzer's safety facts driving
//      check elision whenever the mutant also passes the abstract
//      interpreter;
//   2. every extension shipped in src/extensions (the programs that attach
//      in production), executed against recording helpers;
//   3. crafted fault-parity cases pinning each fault kind's pc and detail.
//
// tools/check.sh fast-vm repeats this binary under both dispatch strategies
// (computed goto and -DXBGP_SWITCH_DISPATCH=ON) and under TSan/UBSan;
// tools/check.sh jit repeats it under ASan and UBSan with the JIT engaged.
// On hosts where the JIT is unsupported the tier-2 leg self-skips and the
// two-tier comparison still runs in full.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "ebpf/analyzer.hpp"
#include "ebpf/assembler.hpp"
#include "fuzz/seed.hpp"
#include "ebpf/ir.hpp"
#include "ebpf/jit.hpp"
#include "ebpf/translator.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"
#include "extensions/registry.hpp"

namespace {

using namespace xb::ebpf;

// ---------------------------------------------------------------------------
// Recording harness: runs one program through every tier on the SAME Vm (so
// helper tables, memory regions and accounting baselines match exactly) and
// compares every observable.

struct HelperCall {
  std::int32_t id;
  std::array<std::uint64_t, 5> args;

  bool operator==(const HelperCall&) const = default;
};

struct Observation {
  RunResult result;
  std::vector<HelperCall> calls;
  std::uint64_t retired = 0;
  std::uint64_t helper_calls = 0;
};

class DifferentialHarness {
 public:
  explicit DifferentialHarness(std::uint64_t budget = 65536) {
    vm_.set_instruction_budget(budget);
    vm_.memory().add_region(scratch_.data(), scratch_.size(), /*writable=*/true, "scratch");
    vm_.memory().mark_base();
    // Deterministic recorders for every xBGP helper id plus a few spares.
    for (std::int32_t id = 1; id <= 32; ++id) bind_recorder(id);
  }

  Vm& vm() { return vm_; }

  /// Runs `program` on one tier from a canonical start state.
  Observation run_tier(const Program& program, const IrProgram* ir, const JitProgram* jit,
                       ExecMode mode, std::uint64_t r1, std::uint64_t r2) {
    calls_.clear();
    scratch_.fill(0);
    vm_.zero_stack();
    vm_.set_translated(ir);
    vm_.set_jit(jit);
    vm_.set_exec_mode(mode);
    const std::uint64_t retired0 = vm_.instructions_retired();
    const std::uint64_t helpers0 = vm_.helper_calls();
    Observation obs;
    obs.result = vm_.run(program, r1, r2);
    obs.calls = calls_;
    obs.retired = vm_.instructions_retired() - retired0;
    obs.helper_calls = vm_.helper_calls() - helpers0;
    return obs;
  }

  /// Asserts that `got` matches the reference observation bit-for-bit.
  static void expect_identical(const Observation& got, const Observation& ref,
                               const std::string& name, const char* tier) {
    EXPECT_EQ(static_cast<int>(got.result.status), static_cast<int>(ref.result.status))
        << name << " [" << tier << "]";
    EXPECT_EQ(got.result.value, ref.result.value) << name << " [" << tier << "]";
    EXPECT_EQ(static_cast<int>(got.result.fault.kind), static_cast<int>(ref.result.fault.kind))
        << name << " [" << tier << "]";
    EXPECT_EQ(got.result.fault.pc, ref.result.fault.pc) << name << " [" << tier << "]";
    EXPECT_STREQ(got.result.fault.detail, ref.result.fault.detail)
        << name << " [" << tier << "]";
    EXPECT_EQ(got.retired, ref.retired) << name << " [" << tier << "]";
    EXPECT_EQ(got.helper_calls, ref.helper_calls) << name << " [" << tier << "]";
    EXPECT_EQ(got.calls, ref.calls)
        << name << " [" << tier << "]: helper-call sequences diverge";
  }

  /// True when tier 2 can actually execute in this build/host/env.
  static bool jit_available() { return Jit::supported() && Jit::enabled_by_env(); }

  /// Runs every available tier and asserts bit-identical observables.
  /// Returns the reference observation for further checks.
  Observation compare(const Program& program, const IrProgram& ir, std::uint64_t r1 = 0,
                      std::uint64_t r2 = 0) {
    const Observation ref = run_tier(program, nullptr, nullptr, ExecMode::kReference, r1, r2);
    const Observation fast = run_tier(program, &ir, nullptr, ExecMode::kFast, r1, r2);
    expect_identical(fast, ref, program.name(), "fast");
    if (jit_available()) {
      const Jit::Result jr = Jit::compile(ir);
      EXPECT_TRUE(jr.ok()) << program.name() << ": JIT declined (" << to_string(jr.declined)
                           << ") on a supported host";
      if (jr.ok()) {
        const Observation jit =
            run_tier(program, &ir, jr.program.get(), ExecMode::kJit, r1, r2);
        expect_identical(jit, ref, program.name(), "jit");
      }
    }
    return ref;
  }

 private:
  void bind_recorder(std::int32_t id) {
    const std::uint64_t scratch_base = reinterpret_cast<std::uintptr_t>(scratch_.data());
    vm_.set_helper(id, [this, id, scratch_base](std::uint64_t a1, std::uint64_t a2,
                                                std::uint64_t a3, std::uint64_t a4,
                                                std::uint64_t a5) {
      calls_.push_back(HelperCall{id, {a1, a2, a3, a4, a5}});
      // Deterministic, id-dependent behaviour so control flow downstream of
      // helper returns diverges per id: pointer-ish helpers hand back the
      // scratch region, id 18 (print) yields next() every 4th call, and the
      // rest return a mixed scalar.
      if (id == 2 || id == 6 || id == 13 || id == 15 || id == 17)
        return HelperResult::ok(scratch_base);
      if (id == 18 && calls_.size() % 4 == 0) return HelperResult::next();
      return HelperResult::ok((static_cast<std::uint64_t>(id) << 32) ^ (a1 + a2 + a3) ^
                              (calls_.size() * 0x9E3779B97F4A7C15ull));
    });
  }

  Vm vm_;
  std::vector<HelperCall> calls_;
  std::array<std::uint8_t, 4096> scratch_{};
};

/// Translates with the analyzer's facts when the program passes the abstract
/// interpreter (the production path), without them otherwise — pass-0-valid
/// programs that fail pass 1 still execute, just fully checked.
IrProgram translate_like_vmm(const Program& p, const std::set<std::int32_t>& helpers) {
  AnalysisResult analysis = Analyzer::analyze(p, helpers);
  return Translator::translate(p, analysis.ok() ? &analysis.facts : nullptr);
}

// ---------------------------------------------------------------------------
// 1. Structure-aware mutant corpus.

std::set<std::int32_t> all_helper_ids() {
  std::set<std::int32_t> ids;
  for (std::int32_t id = 0; id < 64; ++id) ids.insert(id);
  return ids;
}

/// Seed programs exercising every instruction family; mutation explores the
/// neighbourhood of each.
std::vector<Program> seed_corpus() {
  std::vector<Program> seeds;

  {  // ALU mix, 64- and 32-bit, imm and reg forms.
    Assembler a;
    a.mov64(Reg::R0, 7);
    a.mov64(Reg::R2, Reg::R1);
    a.add64(Reg::R0, Reg::R2);
    a.mul64(Reg::R0, 3);
    a.xor64(Reg::R0, 0x55);
    a.mov32(Reg::R3, -1);
    a.add32(Reg::R0, Reg::R3);
    a.lsh64(Reg::R0, 5);
    a.arsh64(Reg::R0, 2);
    a.div64(Reg::R0, 3);
    a.neg64(Reg::R0);
    a.to_be(Reg::R0, 32);
    a.exit_();
    seeds.push_back(a.build("seed_alu"));
  }
  {  // Bounded loop with memory traffic on the stack.
    Assembler a;
    auto head = a.make_label();
    auto done = a.make_label();
    a.mov64(Reg::R0, 0);
    a.mov64(Reg::R2, 0);
    a.stdw(Reg::R10, -8, 0);
    a.place(head);
    a.jge(Reg::R2, 32, done);
    a.ldxdw(Reg::R3, Reg::R10, -8);
    a.add64(Reg::R3, Reg::R2);
    a.stxdw(Reg::R10, -8, Reg::R3);
    a.add64(Reg::R2, 1);
    a.ja(head);
    a.place(done);
    a.ldxdw(Reg::R0, Reg::R10, -8);
    a.exit_();
    seeds.push_back(a.build("seed_loop_mem"));
  }
  {  // Mixed-width loads/stores at varied frame offsets.
    Assembler a;
    a.stb(Reg::R10, -1, 0x7F);
    a.sth(Reg::R10, -4, 0x1234);
    a.stw(Reg::R10, -8, -5);
    a.stdw(Reg::R10, -16, 99);
    a.ldxb(Reg::R0, Reg::R10, -1);
    a.ldxh(Reg::R2, Reg::R10, -4);
    a.add64(Reg::R0, Reg::R2);
    a.ldxw(Reg::R2, Reg::R10, -8);
    a.add64(Reg::R0, Reg::R2);
    a.ldxdw(Reg::R2, Reg::R10, -16);
    a.add64(Reg::R0, Reg::R2);
    a.exit_();
    seeds.push_back(a.build("seed_mem_widths"));
  }
  {  // Helper calls feeding conditional control flow.
    Assembler a;
    auto alt = a.make_label();
    a.mov64(Reg::R1, 11);
    a.mov64(Reg::R2, 22);
    a.call(2);  // recorder returns scratch pointer
    a.mov64(Reg::R6, Reg::R0);
    a.mov64(Reg::R1, Reg::R6);
    a.call(26);  // recorder returns mixed scalar
    a.jset(Reg::R0, 0x1, alt);
    a.mov64(Reg::R0, 1);
    a.exit_();
    a.place(alt);
    a.stxdw(Reg::R10, -8, Reg::R0);
    a.ldxdw(Reg::R0, Reg::R10, -8);
    a.exit_();
    seeds.push_back(a.build("seed_helpers"));
  }
  {  // Signed/unsigned jump ladder plus lddw and 32-bit jumps.
    Assembler a;
    auto l1 = a.make_label();
    auto l2 = a.make_label();
    a.lddw(Reg::R3, 0x8000000000000001ull);
    a.mov64(Reg::R0, 0);
    a.jslt(Reg::R3, 0, l1);
    a.exit_();
    a.place(l1);
    a.jlt(Reg::R1, Reg::R3, l2);
    a.mov64(Reg::R0, 2);
    a.exit_();
    a.place(l2);
    a.mov64(Reg::R0, 3);
    a.exit_();
    seeds.push_back(a.build("seed_jumps"));
  }
  return seeds;
}

/// Field-level structure-aware mutation: keeps the Insn vector shape, nudges
/// opcode/dst/src/offset/imm so most mutants stay near the valid envelope.
std::vector<Insn> mutate(std::vector<Insn> insns, std::mt19937& rng) {
  if (insns.empty()) return insns;
  const int n_mutations = 1 + static_cast<int>(rng() % 3);
  for (int m = 0; m < n_mutations; ++m) {
    Insn& insn = insns[rng() % insns.size()];
    switch (rng() % 6) {
      case 0:  // flip a bit in the opcode (changes op/class/src within family)
        insn.opcode ^= static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      case 1:
        insn.dst = static_cast<std::uint8_t>(rng() % 11);
        break;
      case 2:
        insn.src = static_cast<std::uint8_t>(rng() % 11);
        break;
      case 3:  // small offset jitter: jump targets and memory offsets
        insn.offset = static_cast<std::int16_t>(insn.offset + static_cast<int>(rng() % 9) - 4);
        break;
      case 4:
        insn.imm = static_cast<std::int32_t>(rng());
        break;
      case 5:  // byte-granular imm jitter keeps helper ids / shifts in range
        insn.imm ^= static_cast<std::int32_t>(1u << (rng() % 8));
        break;
    }
  }
  return insns;
}

TEST(DifferentialFuzz, MutantCorpusRunsIdenticallyOnAllTiers) {
  const std::set<std::int32_t> helpers = all_helper_ids();
  const std::vector<Program> seeds = seed_corpus();
  DifferentialHarness harness(4096);  // small budget: exercises exhaustion parity

  const std::uint64_t seed = xb::fuzz::env_seed(0xB67F00D5u);
  xb::fuzz::announce_seed("ebpf_differential_fuzz", seed);
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  constexpr int kMutants = 4000;
  int accepted = 0;
  int faulted = 0;
  int exhausted = 0;
  for (int i = 0; i < kMutants; ++i) {
    const Program& seed = seeds[rng() % seeds.size()];
    Program mutant("mutant_" + std::to_string(i), mutate(seed.insns(), rng),
                   seed.required_helpers());
    if (Verifier::verify(mutant, helpers).has_value()) continue;  // pass 0 is the contract
    ++accepted;
    const IrProgram ir = translate_like_vmm(mutant, helpers);
    const std::uint64_t r1 = rng();
    const std::uint64_t r2 = rng();
    const Observation ref = harness.compare(mutant, ir, r1, r2);
    if (ref.result.faulted()) {
      ++faulted;
      if (ref.result.fault.kind == FaultKind::kBudgetExhausted) ++exhausted;
    }
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first divergence at mutant " << i << " (seed " << seed.name() << ")";
      break;
    }
  }
  // The corpus must be meaningful: plenty of verifier-accepted mutants, and
  // both clean runs and fault paths exercised.
  EXPECT_GT(accepted, kMutants / 10) << "mutator drifted: too few pass-0-valid mutants";
  EXPECT_GT(faulted, 20) << "corpus no longer reaches runtime fault paths";
  EXPECT_GT(exhausted, 0) << "corpus no longer reaches budget exhaustion";
  EXPECT_GT(accepted - faulted, 100) << "corpus no longer reaches clean exits";
}

// ---------------------------------------------------------------------------
// 2. Every shipped extension, on recording helpers.

TEST(DifferentialFuzz, ShippedExtensionsRunIdenticallyOnAllTiers) {
  const xb::xbgp::ProgramRegistry registry = xb::ext::default_registry();
  const std::vector<std::string> names = registry.names();
  ASSERT_FALSE(names.empty());
  DifferentialHarness harness;
  for (const std::string& name : names) {
    const Program* p = registry.find(name);
    ASSERT_NE(p, nullptr) << name;
    ASSERT_FALSE(Verifier::verify(*p, p->required_helpers()).has_value()) << name;
    const IrProgram ir = translate_like_vmm(*p, p->required_helpers());
    // A few argument shapes: null args, small scalars, large scalars.
    harness.compare(*p, ir, 0, 0);
    harness.compare(*p, ir, 1, 2);
    harness.compare(*p, ir, 0xFFFFFFFFFFFFFFFFull, 0x8000000000000000ull);
    if (::testing::Test::HasFailure()) FAIL() << "divergence in shipped extension " << name;
  }
}

// ---------------------------------------------------------------------------
// 3. Crafted fault parity: each fault kind's (kind, pc, detail) is pinned.

struct FaultCase {
  const char* name;
  std::function<void(Assembler&)> emit;
  std::uint64_t r1 = 0;
  std::uint64_t budget = 65536;
};

void expect_fault_parity(const FaultCase& c) {
  Assembler a;
  c.emit(a);
  const Program p = a.build(c.name);
  ASSERT_FALSE(Verifier::verify(p, all_helper_ids()).has_value()) << c.name;
  const IrProgram ir = translate_like_vmm(p, all_helper_ids());
  DifferentialHarness harness(c.budget);
  harness.compare(p, ir, c.r1, 0);
}

TEST(DifferentialFault, DivisionByZeroReg) {
  expect_fault_parity({"div0_reg",
                       [](Assembler& a) {
                         a.mov64(Reg::R0, 9);
                         a.mov64(Reg::R2, 0);
                         a.div64(Reg::R0, Reg::R2);
                         a.exit_();
                       }});
}

TEST(DifferentialFault, ModuloByZero32Reg) {
  expect_fault_parity({"mod0_reg32",
                       [](Assembler& a) {
                         a.mov64(Reg::R0, 9);
                         a.mov64(Reg::R2, Reg::R1);  // r1 = 0 at run time
                         a.mod64(Reg::R0, Reg::R2);
                         a.exit_();
                       }});
}

TEST(DifferentialFault, OutOfBoundsStackRead) {
  expect_fault_parity({"oob_read",
                       [](Assembler& a) {
                         a.mov64(Reg::R2, Reg::R10);
                         a.ldxdw(Reg::R0, Reg::R2, -520);  // 8 bytes past the frame
                         a.exit_();
                       }});
}

TEST(DifferentialFault, OutOfBoundsStackWrite) {
  expect_fault_parity({"oob_write",
                       [](Assembler& a) {
                         a.mov64(Reg::R2, Reg::R10);
                         a.stxdw(Reg::R2, 1, Reg::R2);  // past the frame top
                         a.mov64(Reg::R0, 0);
                         a.exit_();
                       }});
}

TEST(DifferentialFault, ScalarPointerDereference) {
  expect_fault_parity({"scalar_deref",
                       [](Assembler& a) {
                         a.mov64(Reg::R2, 0x1234);
                         a.ldxw(Reg::R0, Reg::R2, 0);
                         a.exit_();
                       }});
}

TEST(DifferentialFault, BudgetExhaustedInLoop) {
  expect_fault_parity({"tight_loop",
                       [](Assembler& a) {
                         auto head = a.make_label();
                         a.mov64(Reg::R0, 0);
                         a.place(head);
                         a.add64(Reg::R0, 1);
                         a.jlt(Reg::R0, 1000000, head);
                         a.exit_();
                       },
                       0, /*budget=*/777});
}

TEST(DifferentialFault, UnboundHelper) {
  // Helper id 63 is whitelisted for pass 0 but never bound in the harness.
  expect_fault_parity({"unbound_helper",
                       [](Assembler& a) {
                         a.mov64(Reg::R1, 1);
                         a.call(63);
                         a.exit_();
                       }});
}

TEST(DifferentialFault, HelperReportsError) {
  Assembler a;
  a.mov64(Reg::R1, 5);
  a.call(3);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("helper_error");
  const IrProgram ir = Translator::translate(p);
  DifferentialHarness harness;
  harness.vm().set_helper(3, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                                std::uint64_t) { return HelperResult::fail("boom"); });
  const Observation ref = harness.run_tier(p, nullptr, nullptr, ExecMode::kReference, 0, 0);
  ASSERT_TRUE(ref.result.faulted());
  EXPECT_EQ(static_cast<int>(ref.result.fault.kind), static_cast<int>(FaultKind::kHelperError));
  EXPECT_STREQ(ref.result.fault.detail, "boom");
  const Observation fast = harness.run_tier(p, &ir, nullptr, ExecMode::kFast, 0, 0);
  DifferentialHarness::expect_identical(fast, ref, p.name(), "fast");
  if (DifferentialHarness::jit_available()) {
    const Jit::Result jr = Jit::compile(ir);
    ASSERT_TRUE(jr.ok());
    const Observation jit = harness.run_tier(p, &ir, jr.program.get(), ExecMode::kJit, 0, 0);
    DifferentialHarness::expect_identical(jit, ref, p.name(), "jit");
  }
}

TEST(DifferentialFault, HelperYieldsNext) {
  Assembler a;
  a.call(1);  // recorder id 1 returns a scalar; rebind to next()
  a.mov64(Reg::R0, 7);
  a.exit_();
  const Program p = a.build("helper_next");
  const IrProgram ir = Translator::translate(p);
  DifferentialHarness harness;
  harness.vm().set_helper(1, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                                std::uint64_t) { return HelperResult::next(); });
  const Observation ref = harness.run_tier(p, nullptr, nullptr, ExecMode::kReference, 0, 0);
  const Observation fast = harness.run_tier(p, &ir, nullptr, ExecMode::kFast, 0, 0);
  EXPECT_TRUE(ref.result.yielded_next());
  EXPECT_TRUE(fast.result.yielded_next());
  EXPECT_EQ(fast.retired, ref.retired);
  if (DifferentialHarness::jit_available()) {
    const Jit::Result jr = Jit::compile(ir);
    ASSERT_TRUE(jr.ok());
    const Observation jit = harness.run_tier(p, &ir, jr.program.get(), ExecMode::kJit, 0, 0);
    EXPECT_TRUE(jit.result.yielded_next());
    EXPECT_EQ(jit.retired, ref.retired);
  }
}

// ---------------------------------------------------------------------------
// 4. Translator and elision unit checks.

TEST(Translator, ElidesAnalyzerProvenStackChecks) {
  Assembler a;
  a.stdw(Reg::R10, -8, 42);
  a.ldxdw(Reg::R0, Reg::R10, -8);
  a.exit_();
  const Program p = a.build("elide_me");
  const AnalysisResult analysis = Analyzer::analyze(p, {});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis.facts.covers(p.insns().size()));
  const IrProgram ir = Translator::translate(p, &analysis.facts);
  EXPECT_EQ(ir.elided_checks, 2u);
  EXPECT_EQ(ir.checked_accesses, 0u);

  Vm vm;
  vm.set_translated(&ir);
  vm.set_exec_mode(ExecMode::kFast);
  const auto res = vm.run(p);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value, 42u);
  EXPECT_EQ(vm.effective_mode(), ExecMode::kFast);
}

TEST(Translator, RetainsChecksWithoutFacts) {
  Assembler a;
  a.stdw(Reg::R10, -8, 42);
  a.ldxdw(Reg::R0, Reg::R10, -8);
  a.exit_();
  const Program p = a.build("checked");
  const IrProgram ir = Translator::translate(p);  // no facts
  EXPECT_EQ(ir.elided_checks, 0u);
  EXPECT_EQ(ir.checked_accesses, 2u);
}

TEST(Translator, IgnoresSizeMismatchedFacts) {
  Assembler a;
  a.stdw(Reg::R10, -8, 1);
  a.mov64(Reg::R0, 0);
  a.exit_();
  const Program p = a.build("stale_facts");
  ProofTable stale;  // wrong length: must be ignored wholesale
  stale.mem.assign(1, ProofTable::MemFact{Region::kStack, -8, 0, 8, true});
  const IrProgram ir = Translator::translate(p, &stale);
  EXPECT_EQ(ir.elided_checks, 0u);
  EXPECT_EQ(ir.checked_accesses, 1u);
}

TEST(Translator, RejectedProgramYieldsNoFacts) {
  Assembler a;
  a.stdw(Reg::R10, -8, 1);     // provably safe on its own...
  a.mov64(Reg::R0, Reg::R9);   // ...but reading uninitialized r9 rejects the
  a.exit_();                   // program, so ALL facts must be withdrawn
  const Program p = a.build("rejected");
  const AnalysisResult analysis = Analyzer::analyze(p, {});
  ASSERT_FALSE(analysis.ok());
  EXPECT_TRUE(analysis.facts.empty());
}

TEST(Translator, FusesLddwAndResolvesJumps) {
  Assembler a;
  auto t = a.make_label();
  a.lddw(Reg::R0, 0x1122334455667788ull);
  a.ja(t);
  a.mov64(Reg::R0, 0);
  a.place(t);
  a.exit_();
  const Program p = a.build("fuse");
  const IrProgram ir = Translator::translate(p);
  // 5 source slots (lddw is two) -> 4 IR ops + trap sentinel.
  ASSERT_EQ(ir.insns.size(), 5u);
  EXPECT_EQ(ir.insns[0].op, IrOp::kLddw);
  EXPECT_EQ(ir.insns[0].imm, 0x1122334455667788ull);
  EXPECT_EQ(ir.insns[1].op, IrOp::kJa);
  EXPECT_EQ(ir.insns[1].jt, 3);  // resolved to exit's IR index (source pc 4)
  EXPECT_EQ(ir.insns.back().op, IrOp::kTrapEnd);
  EXPECT_EQ(ir.source_len, 5u);
}

// ---------------------------------------------------------------------------
// 5. Elision oracle: the analyzer's ProofTable may only remove checks that
// provably always pass.  Every mutant and every shipped extension runs five
// ways — tier 0, tier 1 with all checks retained, tier 1 with proven checks
// elided, and (where supported) tier 2 compiled from each IR — and all
// observations (result, fault kind/pc/detail, helper sequence, retirement)
// must be identical.  An unsound proof shows up here as a divergence (or a
// crash under the sanitizer gates, which re-run this binary).

/// Contracts matching the recorder helpers bound by DifferentialHarness:
/// ids 2/6/13/15/17 always return the 4096-byte writable scratch region and
/// never NULL.  These are the strongest claims the harness runtime honours,
/// so every fact proven under them must hold when the recorders execute.
/// (The production table in manifest.cpp is NOT usable here: it covers
/// helpers like get_peer_info whose recorders return plain scalars.)
Analyzer::Options harness_contract_options() {
  Analyzer::Options opts;
  opts.warnings = false;  // the oracle cares about proofs, not diagnostics
  for (std::int32_t id : {2, 6, 13, 15, 17}) {
    HelperContract c;
    c.returns_pointer = true;
    c.region = Region::kCtx;
    c.extent = 4096;
    c.writable = true;
    c.may_return_null = false;
    opts.helper_contracts[id] = c;
  }
  return opts;
}

/// Seeds whose mutants explore the object-elision envelope: loads and stores
/// through helper-returned pointers, with and without null checks, at
/// offsets near the extent boundary.
std::vector<Program> elision_seed_corpus() {
  std::vector<Program> seeds = seed_corpus();
  {  // Null-checked object traffic well inside the 4096-byte extent.
    Assembler a;
    auto out = a.make_label();
    a.mov64(Reg::R1, 5);
    a.call(2);  // recorder: scratch pointer, never null
    a.mov64(Reg::R6, Reg::R0);
    a.jeq(Reg::R6, 0, out);
    a.stdw(Reg::R6, 8, 77);
    a.ldxdw(Reg::R0, Reg::R6, 8);
    a.ldxw(Reg::R2, Reg::R6, 128);
    a.add64(Reg::R0, Reg::R2);
    a.stxdw(Reg::R10, -8, Reg::R0);
    a.ldxdw(Reg::R0, Reg::R10, -8);
    a.exit_();
    a.place(out);
    a.mov64(Reg::R0, 0);
    a.exit_();
    seeds.push_back(a.build("seed_obj_checked"));
  }
  {  // Pointer arithmetic toward the extent edge; mixed widths, no null check
    // (the harness contract proves the recorders non-null).
    Assembler a;
    a.call(6);
    a.mov64(Reg::R7, Reg::R0);
    a.ldxb(Reg::R3, Reg::R7, 0);
    a.add64(Reg::R7, 4088);
    a.stxdw(Reg::R7, 0, Reg::R3);   // bytes [4088, 4096): last elidable slot
    a.ldxh(Reg::R4, Reg::R7, -4);
    a.add64(Reg::R3, Reg::R4);
    a.mov64(Reg::R0, Reg::R3);
    a.exit_();
    seeds.push_back(a.build("seed_obj_edge"));
  }
  {  // Pointer+pointer arithmetic fed back into a frame pointer.  The sum of
    // two stack pointers is a host-address-scale scalar, NOT a small offset;
    // an analyzer that models it as the sum of region-relative offsets would
    // "prove" the r7 store in-frame, elide the bounds check, and hand the
    // fast tier a wild host write.  Its mutants keep probing that envelope.
    Assembler a;
    a.mov64(Reg::R6, Reg::R10);
    a.add64(Reg::R6, Reg::R10);   // r6 = 2 * r10 (host scale)
    a.mov64(Reg::R7, Reg::R10);
    a.add64(Reg::R7, Reg::R6);    // r7 = 3 * r10: far out of frame
    a.stxdw(Reg::R7, -8, Reg::R6);
    a.ldxdw(Reg::R0, Reg::R10, -8);
    a.exit_();
    seeds.push_back(a.build("seed_ptr_plus_ptr"));
  }
  {  // Overflowing add/sub chain feeding a stack offset.  INT64_MAX +
    // INT64_MAX wraps to -2 at run time; a saturating interval claims
    // INT64_MAX, the following sub then claims exactly 0, and the r8 access
    // would be elided at a "proven" in-frame offset while the real address
    // is r10 + INT64_MAX.
    Assembler a;
    a.lddw(Reg::R6, 0x7FFFFFFFFFFFFFFFull);
    a.lddw(Reg::R7, 0x7FFFFFFFFFFFFFFFull);
    a.add64(Reg::R6, Reg::R7);    // actual -2, saturated claim INT64_MAX
    a.sub64(Reg::R6, Reg::R7);    // actual INT64_MAX, saturated claim 0
    a.mov64(Reg::R8, Reg::R10);
    a.add64(Reg::R8, Reg::R6);
    a.stxdw(Reg::R8, -8, Reg::R7);
    a.ldxdw(Reg::R0, Reg::R10, -8);
    a.exit_();
    seeds.push_back(a.build("seed_overflow_chain"));
  }
  return seeds;
}

void oracle_compare(DifferentialHarness& harness, const Program& p, const IrProgram& checked,
                    const IrProgram& elided, std::uint64_t r1, std::uint64_t r2) {
  const Observation ref = harness.run_tier(p, nullptr, nullptr, ExecMode::kReference, r1, r2);
  const Observation a = harness.run_tier(p, &checked, nullptr, ExecMode::kFast, r1, r2);
  DifferentialHarness::expect_identical(a, ref, p.name(), "fast-checked");
  const Observation b = harness.run_tier(p, &elided, nullptr, ExecMode::kFast, r1, r2);
  DifferentialHarness::expect_identical(b, ref, p.name(), "fast-elided");
  if (DifferentialHarness::jit_available()) {
    // Tier 2 must honour the same proofs: a native image compiled from the
    // fully-checked IR and one compiled from the elided IR both match tier 0.
    const Jit::Result jc = Jit::compile(checked);
    const Jit::Result je = Jit::compile(elided);
    EXPECT_TRUE(jc.ok() && je.ok()) << p.name() << ": JIT declined on a supported host";
    if (jc.ok()) {
      const Observation c =
          harness.run_tier(p, &checked, jc.program.get(), ExecMode::kJit, r1, r2);
      DifferentialHarness::expect_identical(c, ref, p.name(), "jit-checked");
    }
    if (je.ok()) {
      EXPECT_EQ(je.program->elided_checks(), elided.elided_checks) << p.name();
      EXPECT_EQ(je.program->elided_obj_checks(), elided.elided_obj_checks) << p.name();
      const Observation d =
          harness.run_tier(p, &elided, je.program.get(), ExecMode::kJit, r1, r2);
      DifferentialHarness::expect_identical(d, ref, p.name(), "jit-elided");
    }
  }
}

TEST(ElisionOracle, MutantCorpusIdenticalWithChecksElided) {
  const std::set<std::int32_t> helpers = all_helper_ids();
  const std::vector<Program> seeds = elision_seed_corpus();
  const Analyzer::Options contracts = harness_contract_options();
  DifferentialHarness harness(4096);

  const std::uint64_t seed = xb::fuzz::env_seed(0x0E11DE0Fu);
  xb::fuzz::announce_seed("elision_oracle_fuzz", seed);
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  constexpr int kMutants = 4000;
  int accepted = 0;
  std::uint64_t obj_elided = 0;
  std::uint64_t stack_elided = 0;
  for (int i = 0; i < kMutants; ++i) {
    const Program& seed = seeds[rng() % seeds.size()];
    Program mutant("elide_mutant_" + std::to_string(i), mutate(seed.insns(), rng),
                   seed.required_helpers());
    if (Verifier::verify(mutant, helpers).has_value()) continue;
    ++accepted;
    const AnalysisResult analysis = Analyzer::analyze(mutant, helpers, contracts);
    const IrProgram checked = Translator::translate(mutant);
    const IrProgram elided =
        Translator::translate(mutant, analysis.ok() ? &analysis.facts : nullptr);
    obj_elided += elided.elided_obj_checks;
    stack_elided += elided.elided_checks - elided.elided_obj_checks;
    oracle_compare(harness, mutant, checked, elided, rng(), rng());
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first elision divergence at mutant " << i << " (seed " << seed.name()
                    << ")";
      break;
    }
  }
  // The oracle must actually exercise both elision families.
  EXPECT_GT(accepted, kMutants / 10) << "too few pass-0-valid mutants";
  EXPECT_GT(obj_elided, 0u) << "no object checks were ever elided: oracle is vacuous";
  EXPECT_GT(stack_elided, 0u) << "no stack checks were ever elided: oracle is vacuous";
}

TEST(ElisionOracle, ShippedExtensionsIdenticalWithChecksElided) {
  const xb::xbgp::ProgramRegistry registry = xb::ext::default_registry();
  const Analyzer::Options contracts = harness_contract_options();
  DifferentialHarness harness;
  std::uint64_t elided_total = 0;
  for (const std::string& name : registry.names()) {
    const Program* p = registry.find(name);
    ASSERT_NE(p, nullptr) << name;
    const AnalysisResult analysis =
        Analyzer::analyze(*p, p->required_helpers(), contracts);
    ASSERT_TRUE(analysis.ok()) << name;
    const IrProgram checked = Translator::translate(*p);
    const IrProgram elided = Translator::translate(*p, &analysis.facts);
    elided_total += elided.elided_checks;
    oracle_compare(harness, *p, checked, elided, 0, 0);
    oracle_compare(harness, *p, checked, elided, 1, 2);
    oracle_compare(harness, *p, checked, elided, 0xFFFFFFFFFFFFFFFFull,
                   0x8000000000000000ull);
    if (::testing::Test::HasFailure()) FAIL() << "elision divergence in " << name;
  }
  EXPECT_GT(elided_total, 0u) << "no checks elided across shipped extensions";
}

TEST(Translator, RejectsNonPass0Programs) {
  // A jump past the end of the program: pass 0 rejects it, and the
  // translator's jump-resolution refuses it too (its contract is pass-0
  // validity; it must fail loudly rather than emit a wild IR target).
  std::vector<Insn> insns = {
      Insn{0x05, 0, 0, /*offset=*/10, 0},  // ja +10 — way out of bounds
      Insn{0x95, 0, 0, 0, 0},              // exit
  };
  const Program p("bad", insns, {});
  ASSERT_TRUE(Verifier::verify(p, {}).has_value());
  EXPECT_THROW(Translator::translate(p), std::invalid_argument);
}

}  // namespace
