// Extension memory: arenas, shared pools, helper maps, execution context.
#include <gtest/gtest.h>

#include "xbgp/context.hpp"
#include "xbgp/mempool.hpp"

namespace {

using namespace xb::xbgp;

TEST(Arena, AllocationsAreAligned) {
  Arena arena(256);
  for (int i = 0; i < 8; ++i) {
    void* p = arena.alloc(3);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  }
}

TEST(Arena, ExhaustionReturnsNull) {
  Arena arena(64);
  EXPECT_NE(arena.alloc(32), nullptr);
  EXPECT_NE(arena.alloc(32), nullptr);
  EXPECT_EQ(arena.alloc(1), nullptr);
  EXPECT_EQ(arena.used(), 64u);
}

TEST(Arena, OversizeRequestFails) {
  Arena arena(64);
  EXPECT_EQ(arena.alloc(65), nullptr);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, ResetReclaimsEverything) {
  Arena arena(64);
  (void)arena.alloc(64);
  arena.reset();
  EXPECT_NE(arena.alloc(64), nullptr);
}

TEST(Arena, StoreCopiesBytes) {
  Arena arena(64);
  const std::uint8_t data[] = {1, 2, 3, 4};
  auto* p = static_cast<std::uint8_t*>(arena.store(data, sizeof(data)));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[3], 4);
}

TEST(SharedPool, GetOrCreateZeroesAndPersists) {
  SharedPool pool(256);
  auto* p = static_cast<std::uint8_t*>(pool.get_or_create(7, 16));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p[i], 0);
  p[0] = 42;
  EXPECT_EQ(pool.get(7), p);
  EXPECT_EQ(static_cast<std::uint8_t*>(pool.get(7))[0], 42);
}

TEST(SharedPool, SameKeySameBlock) {
  SharedPool pool(256);
  void* a = pool.get_or_create(1, 16);
  void* b = pool.get_or_create(1, 16);
  EXPECT_EQ(a, b);
}

TEST(SharedPool, BiggerRequestOnExistingKeyFails) {
  SharedPool pool(256);
  ASSERT_NE(pool.get_or_create(1, 16), nullptr);
  EXPECT_EQ(pool.get_or_create(1, 32), nullptr);
}

TEST(SharedPool, MissingKeyIsNull) {
  SharedPool pool(64);
  EXPECT_EQ(pool.get(99), nullptr);
}

TEST(ExtMap, UpdateLookupAndAbsent) {
  ExtMap map;
  map.update(1, 2, 42);
  EXPECT_EQ(map.lookup(1, 2), 42u);
  EXPECT_EQ(map.lookup(2, 1), 0u);  // key order matters
  EXPECT_EQ(map.lookup(9, 9), 0u);
  map.update(1, 2, 7);  // overwrite
  EXPECT_EQ(map.lookup(1, 2), 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(ExtMap, ManyEntries) {
  ExtMap map;
  map.reserve(10'000);
  for (std::uint64_t i = 0; i < 10'000; ++i) map.update(i, i * 3, i + 1);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_EQ(map.lookup(i, i * 3), i + 1) << i;
  }
}

TEST(ExecContext, ArgLookup) {
  ExecContext ctx;
  const std::uint8_t a[] = {1};
  const std::uint8_t b[] = {2, 2};
  ctx.add_arg(1, a);
  ctx.add_arg(2, b);
  ASSERT_NE(ctx.find_arg(1), nullptr);
  EXPECT_EQ(ctx.find_arg(1)->data.size(), 1u);
  EXPECT_EQ(ctx.find_arg(2)->data.size(), 2u);
  EXPECT_EQ(ctx.find_arg(3), nullptr);
}

}  // namespace
