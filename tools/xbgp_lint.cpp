// Offline analyzer for xBGP extension bytecode: runs the full verification
// pipeline (structural pass 0, CFG construction, abstract interpretation,
// loop-bound induction check) and prints findings inline with a
// CFG-annotated disassembly — the same checks the VMM applies at attach
// time, available before deployment.
//
// Usage:
//   xbgp_lint --all                     # lint every built-in program
//   xbgp_lint valley_free ov_inbound    # lint named built-in programs
//   xbgp_lint --manifest FILE           # lint all entries of a text manifest
//   xbgp_lint -q ...                    # findings only, no disassembly
//
// Exit status: 0 when no error-severity finding was reported, 1 otherwise
// (2 for usage / I/O problems).

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ebpf/analyzer.hpp"
#include "ebpf/cfg.hpp"
#include "ebpf/disasm.hpp"
#include "ebpf/verifier.hpp"
#include "extensions/registry.hpp"
#include "xbgp/manifest.hpp"

namespace {

using xb::ebpf::AnalysisResult;
using xb::ebpf::Analyzer;
using xb::ebpf::Cfg;
using xb::ebpf::Diagnostic;
using xb::ebpf::Program;
using xb::ebpf::Severity;

struct LintTarget {
  std::string title;  // program name plus attach info when known
  Program program;
  std::set<std::int32_t> allowed_helpers;
};

Analyzer::Options analyzer_options() {
  Analyzer::Options opts;
  opts.helper_arity = xb::xbgp::helper_arity_table();
  return opts;
}

/// Findings grouped by instruction, printed inline under the disassembly.
void print_annotated(const LintTarget& target, const AnalysisResult& result) {
  std::multimap<std::size_t, const Diagnostic*> by_insn;
  for (const auto& d : result.diagnostics) by_insn.emplace(d.insn_index, &d);

  const Cfg cfg = Cfg::build(target.program);
  const auto& insns = target.program.insns();
  for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
    std::printf("%s:%s\n", Cfg::label(b).c_str(), cfg.reachable(b) ? "" : "  ; unreachable");
    const auto& bb = cfg.blocks()[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      const std::string text = xb::ebpf::disassemble_insn(insns[i], cfg.is_lddw_tail(i));
      const std::string annot = xb::ebpf::jump_annotation(target.program, cfg, i);
      std::printf("  %4zu: %s%s%s\n", i, text.c_str(), annot.empty() ? "" : "  ",
                  annot.c_str());
      auto [lo, hi] = by_insn.equal_range(i);
      for (auto it = lo; it != hi; ++it) {
        const Diagnostic& d = *it->second;
        std::printf("        ^ %s: %s%s\n", to_string(d.severity), d.reason.c_str(),
                    d.reg >= 0 ? ("  [r" + std::to_string(d.reg) + "]").c_str() : "");
      }
    }
  }
}

/// Returns the number of error-severity findings.
std::size_t lint_one(const LintTarget& target, bool quiet) {
  const AnalysisResult result =
      Analyzer::analyze(target.program, target.allowed_helpers, analyzer_options());
  std::printf("== %s ==\n", target.title.c_str());

  // A pass-0 (structural) failure means the CFG is not well-defined; fall
  // back to the plain listing.
  const bool structural_failure =
      !result.ok() && xb::ebpf::Verifier::verify(target.program, target.allowed_helpers);
  if (quiet || structural_failure) {
    for (const auto& d : result.diagnostics) std::printf("  %s\n", d.to_string().c_str());
  } else {
    print_annotated(target, result);
  }
  std::printf("%s: %zu error(s), %zu warning(s)\n\n", target.title.c_str(),
              result.error_count(), result.warning_count());
  return result.error_count();
}

int usage() {
  std::fprintf(stderr,
               "usage: xbgp_lint [-q] --all | --manifest FILE | PROGRAM...\n"
               "  --all            lint every built-in extension program\n"
               "  --manifest FILE  lint each entry of a text manifest\n"
               "  -q, --quiet      findings only, no annotated disassembly\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = xb::ext::default_registry();
  bool quiet = false;
  bool all = false;
  std::string manifest_path;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--manifest") {
      if (++i >= argc) return usage();
      manifest_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      names.push_back(arg);
    }
  }
  if (!all && manifest_path.empty() && names.empty()) return usage();

  std::vector<LintTarget> targets;
  if (!manifest_path.empty()) {
    std::ifstream in(manifest_path);
    if (!in) {
      std::fprintf(stderr, "xbgp_lint: cannot read '%s'\n", manifest_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const auto manifest = xb::xbgp::parse_manifest(text.str(), registry);
      for (const auto& entry : manifest.entries) {
        targets.push_back({entry.name + " @ " + xb::xbgp::to_string(entry.point) + " order " +
                               std::to_string(entry.order),
                           entry.program, entry.allowed_helpers});
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "xbgp_lint: %s\n", e.what());
      return 2;
    }
  }
  if (all) {
    for (const auto& name : registry.names()) names.push_back(name);
  }
  for (const auto& name : names) {
    const auto* program = registry.find(name);
    if (program == nullptr) {
      std::fprintf(stderr, "xbgp_lint: unknown program '%s'\n", name.c_str());
      return 2;
    }
    // Offline mode mirrors Manifest::attach: the whitelist defaults to the
    // helpers the program declares it needs.
    targets.push_back({name, *program, program->required_helpers()});
  }

  std::size_t errors = 0;
  for (const auto& target : targets) errors += lint_one(target, quiet);
  if (errors > 0) {
    std::printf("xbgp_lint: %zu error(s) across %zu program(s)\n", errors, targets.size());
    return 1;
  }
  return 0;
}
