// Offline analyzer for xBGP extension bytecode: runs the full verification
// pipeline (structural pass 0, CFG construction, multi-domain abstract
// interpretation, loop-bound induction check) and prints findings inline
// with a CFG-annotated disassembly — the same checks the VMM applies at
// attach time, available before deployment.
//
// Usage:
//   xbgp_lint --all                     # lint every built-in program
//   xbgp_lint valley_free ov_inbound    # lint named built-in programs
//   xbgp_lint --manifest FILE           # lint all entries of a text manifest
//   xbgp_lint --facts ...               # dump the per-instruction ProofTable
//   xbgp_lint -q ...                    # findings only, no disassembly
//
// Exit status:
//   0  no findings of any severity
//   1  at least one error-severity finding (program would be rejected)
//   2  usage or I/O problem
//   3  warning-severity findings only (programs load, but review advised)

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ebpf/analyzer.hpp"
#include "ebpf/cfg.hpp"
#include "ebpf/disasm.hpp"
#include "ebpf/verifier.hpp"
#include "extensions/registry.hpp"
#include "xbgp/manifest.hpp"

namespace {

using xb::ebpf::AnalysisResult;
using xb::ebpf::Analyzer;
using xb::ebpf::Cfg;
using xb::ebpf::Diagnostic;
using xb::ebpf::Program;
using xb::ebpf::ProofTable;
using xb::ebpf::Region;
using xb::ebpf::Severity;

struct LintTarget {
  std::string title;  // program name plus attach info when known
  Program program;
  std::set<std::int32_t> allowed_helpers;
};

Analyzer::Options analyzer_options() {
  Analyzer::Options opts;
  opts.helper_arity = xb::xbgp::helper_arity_table();
  opts.helper_contracts = xb::xbgp::helper_contract_table();
  return opts;
}

/// Findings grouped by instruction, printed inline under the disassembly.
void print_annotated(const LintTarget& target, const AnalysisResult& result) {
  std::multimap<std::size_t, const Diagnostic*> by_insn;
  for (const auto& d : result.diagnostics) by_insn.emplace(d.insn_index, &d);

  const Cfg cfg = Cfg::build(target.program);
  const auto& insns = target.program.insns();
  for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
    std::printf("%s:%s\n", Cfg::label(b).c_str(), cfg.reachable(b) ? "" : "  ; unreachable");
    const auto& bb = cfg.blocks()[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      const std::string text = xb::ebpf::disassemble_insn(insns[i], cfg.is_lddw_tail(i));
      const std::string annot = xb::ebpf::jump_annotation(target.program, cfg, i);
      std::printf("  %4zu: %s%s%s\n", i, text.c_str(), annot.empty() ? "" : "  ",
                  annot.c_str());
      auto [lo, hi] = by_insn.equal_range(i);
      for (auto it = lo; it != hi; ++it) {
        const Diagnostic& d = *it->second;
        std::printf("        ^ %s: %s%s\n", to_string(d.severity), d.reason.c_str(),
                    d.reg >= 0 ? ("  [r" + std::to_string(d.reg) + "]").c_str() : "");
      }
    }
  }
}

/// Renders an interval endpoint; the saturation points print symbolically so
/// "unknown" does not masquerade as a concrete 19-digit bound.
std::string bound(std::int64_t v) {
  if (v == std::numeric_limits<std::int64_t>::min()) return "min";
  if (v == std::numeric_limits<std::int64_t>::max()) return "max";
  return std::to_string(v);
}

/// Dumps the ProofTable: per memory op the proven region, offset window,
/// alignment and elision verdict; per call the proven argument ranges.
void print_facts(const AnalysisResult& result) {
  const ProofTable& facts = result.facts;
  if (facts.empty()) {
    std::printf("  (no facts: program was rejected, proofs withdrawn)\n");
    return;
  }
  std::size_t mem_ops = 0;
  for (std::size_t i = 0; i < facts.mem.size(); ++i) {
    const auto& f = facts.mem[i];
    if (f.region != Region::kNone) {
      ++mem_ops;
      std::printf("  %4zu: mem   region=%-7s window=[%s, %s) align=%u  %s\n", i,
                  to_string(f.region), bound(f.lo).c_str(), bound(f.hi).c_str(),
                  static_cast<unsigned>(f.align), f.elide ? "ELIDE" : "checked");
    }
    const auto it = facts.calls.find(i);
    if (it != facts.calls.end()) {
      const auto& c = it->second;
      std::string args;
      for (int r = 0; r < c.arity; ++r) {
        if (!args.empty()) args += ", ";
        args += "r" + std::to_string(r + 1) + "=[" + bound(c.arg_lo[r]) + ", " +
                bound(c.arg_hi[r]) + "]";
      }
      std::printf("  %4zu: call  %s (helper %" PRId32 ")%s%s\n", i,
                  xb::xbgp::helper_name_by_id(c.helper), c.helper,
                  args.empty() ? "" : "  ", args.c_str());
    }
  }
  std::printf("  elidable checks: %zu of %zu memory operation(s)\n", facts.elidable(),
              mem_ops);
}

struct LintCounts {
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

LintCounts lint_one(const LintTarget& target, bool quiet, bool facts) {
  const AnalysisResult result =
      Analyzer::analyze(target.program, target.allowed_helpers, analyzer_options());
  std::printf("== %s ==\n", target.title.c_str());

  // A pass-0 (structural) failure means the CFG is not well-defined; fall
  // back to the plain listing.
  const bool structural_failure =
      !result.ok() && xb::ebpf::Verifier::verify(target.program, target.allowed_helpers);
  if (quiet || structural_failure) {
    for (const auto& d : result.diagnostics) std::printf("  %s\n", d.to_string().c_str());
  } else {
    print_annotated(target, result);
  }
  if (facts) print_facts(result);
  std::printf("%s: %zu error(s), %zu warning(s)\n\n", target.title.c_str(),
              result.error_count(), result.warning_count());
  return {result.error_count(), result.warning_count()};
}

int usage() {
  std::fprintf(stderr,
               "usage: xbgp_lint [-q] [--facts] --all | --manifest FILE | PROGRAM...\n"
               "  --all            lint every built-in extension program\n"
               "  --manifest FILE  lint each entry of a text manifest\n"
               "  --facts          dump the per-instruction proof table\n"
               "  -q, --quiet      findings only, no annotated disassembly\n"
               "exit status: 0 clean, 1 errors, 2 usage/I-O, 3 warnings only\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = xb::ext::default_registry();
  bool quiet = false;
  bool all = false;
  bool facts = false;
  std::string manifest_path;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--facts") {
      facts = true;
    } else if (arg == "--manifest") {
      if (++i >= argc) return usage();
      manifest_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      names.push_back(arg);
    }
  }
  if (!all && manifest_path.empty() && names.empty()) return usage();

  std::vector<LintTarget> targets;
  if (!manifest_path.empty()) {
    std::ifstream in(manifest_path);
    if (!in) {
      std::fprintf(stderr, "xbgp_lint: cannot read '%s'\n", manifest_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const auto manifest = xb::xbgp::parse_manifest(text.str(), registry);
      for (const auto& entry : manifest.entries) {
        targets.push_back({entry.name + " @ " + xb::xbgp::to_string(entry.point) + " order " +
                               std::to_string(entry.order),
                           entry.program, entry.allowed_helpers});
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "xbgp_lint: %s\n", e.what());
      return 2;
    }
  }
  if (all) {
    for (const auto& name : registry.names()) names.push_back(name);
  }
  for (const auto& name : names) {
    const auto* program = registry.find(name);
    if (program == nullptr) {
      std::fprintf(stderr, "xbgp_lint: unknown program '%s'\n", name.c_str());
      return 2;
    }
    // Offline mode mirrors Manifest::attach: the whitelist defaults to the
    // helpers the program declares it needs.
    targets.push_back({name, *program, program->required_helpers()});
  }

  LintCounts totals;
  for (const auto& target : targets) {
    const LintCounts c = lint_one(target, quiet, facts);
    totals.errors += c.errors;
    totals.warnings += c.warnings;
  }
  if (totals.errors > 0) {
    std::printf("xbgp_lint: %zu error(s), %zu warning(s) across %zu program(s)\n",
                totals.errors, totals.warnings, targets.size());
    return 1;
  }
  if (totals.warnings > 0) {
    std::printf("xbgp_lint: %zu warning(s) across %zu program(s)\n", totals.warnings,
                targets.size());
    return 3;
  }
  return 0;
}
