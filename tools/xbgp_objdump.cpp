// Inspection tool for the shipped extension bytecode: disassembly, image
// size/digest, and the helper requirements that a manifest must whitelist.
//
// Usage:
//   xbgp_objdump              # list all programs
//   xbgp_objdump rr_inbound   # disassemble one program

#include <cstdio>
#include <string>

#include "ebpf/disasm.hpp"
#include "extensions/registry.hpp"
#include "xbgp/manifest.hpp"

namespace {

/// FNV-1a over the serialised image — a stable fingerprint proving two hosts
/// load the same artifact.
std::uint64_t image_digest(const xb::ebpf::Program& program) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t byte : program.image()) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void dump(const xb::ebpf::Program& program, bool full) {
  std::printf("%-18s %4zu insns  %5zu bytes  digest %016llx  helpers:", program.name().c_str(),
              program.insns().size(), program.image().size(),
              static_cast<unsigned long long>(image_digest(program)));
  for (auto id : program.required_helpers()) {
    std::printf(" %s", xb::xbgp::helper_name_by_id(id));
  }
  std::printf("\n");
  if (full) {
    std::printf("%s", xb::ebpf::disassemble(program).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = xb::ext::default_registry();
  const char* names[] = {"igp_filter",      "rr_inbound",     "rr_outbound",
                         "rr_encode",       "ov_init",        "ov_inbound",
                         "geoloc_receive",  "geoloc_inbound", "geoloc_outbound",
                         "geoloc_encode",   "geoloc_decision", "valley_free",
                         "valley_exempt",   "ctag_ingress",   "ctag_export"};
  if (argc > 1) {
    const auto* program = registry.find(argv[1]);
    if (program == nullptr) {
      std::fprintf(stderr, "unknown program '%s'\n", argv[1]);
      return 1;
    }
    dump(*program, /*full=*/true);
    return 0;
  }
  for (const char* name : names) {
    const auto* program = registry.find(name);
    if (program != nullptr) dump(*program, /*full=*/false);
  }
  return 0;
}
