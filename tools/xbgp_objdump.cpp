// Inspection tool for the shipped extension bytecode: disassembly, image
// size/digest, and the helper requirements that a manifest must whitelist.
//
// Usage:
//   xbgp_objdump              # list all programs
//   xbgp_objdump rr_inbound   # disassemble one program, CFG-annotated
//
// Single-program dumps print basic-block labels and jump-target annotations
// from the CFG layer, so `xbgp_lint` findings can be read against them.

#include <cstdio>
#include <string>

#include "ebpf/cfg.hpp"
#include "ebpf/disasm.hpp"
#include "extensions/registry.hpp"
#include "xbgp/manifest.hpp"

namespace {

/// FNV-1a over the serialised image — a stable fingerprint proving two hosts
/// load the same artifact.
std::uint64_t image_digest(const xb::ebpf::Program& program) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t byte : program.image()) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void dump(const xb::ebpf::Program& program, bool full) {
  std::printf("%-18s %4zu insns  %5zu bytes  digest %016llx  helpers:", program.name().c_str(),
              program.insns().size(), program.image().size(),
              static_cast<unsigned long long>(image_digest(program)));
  for (auto id : program.required_helpers()) {
    std::printf(" %s", xb::xbgp::helper_name_by_id(id));
  }
  std::printf("\n");
  if (full) {
    const auto cfg = xb::ebpf::Cfg::build(program);
    std::printf("%s", xb::ebpf::disassemble_with_cfg(program, cfg).c_str());
    std::printf("%zu basic blocks, %zu loops\n", cfg.blocks().size(), cfg.loops().size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto registry = xb::ext::default_registry();
  if (argc > 1) {
    const auto* program = registry.find(argv[1]);
    if (program == nullptr) {
      std::fprintf(stderr, "unknown program '%s'\n", argv[1]);
      return 1;
    }
    dump(*program, /*full=*/true);
    return 0;
  }
  for (const auto& name : registry.names()) {
    const auto* program = registry.find(name);
    if (program != nullptr) dump(*program, /*full=*/false);
  }
  return 0;
}
