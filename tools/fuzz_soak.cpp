// Long-haul soak driver over the stateful session/config fuzzer.
//
// Churns seeded episodes at parallelism 8 on both hosts until a wall-clock
// budget runs out, applying all three oracles each iteration plus a
// process-level memory bound (no unbounded growth across iterations). Meant
// to run under TSan and ASan via `tools/check.sh soak`.
//
// Knobs:
//   XBGP_SOAK_SECONDS   wall-clock budget (default 8; the soak gate uses 60,
//                       hours-scale runs just set it higher)
//   XBGP_FUZZ_SEED      base seed (printed on start for replay)
//   --fault-inject      inject an unmodeled corrupt frame into every episode;
//                       the run MUST then exit non-zero (gate validation)
//
// Exit status: 0 clean, 1 oracle violations or memory growth, 2 usage.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "fuzz/seed.hpp"
#include "fuzz/stateful.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "util/log.hpp"

namespace {

using namespace xb;

/// Resident set size in KiB (0 when /proc is unavailable).
std::uint64_t rss_kib() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return resident * (static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE)) / 1024);
#else
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  bool fault_inject = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-inject") == 0) {
      fault_inject = true;
    } else {
      std::fprintf(stderr, "usage: %s [--fault-inject]\n", argv[0]);
      return 2;
    }
  }
  if (fuzz::env_u64("XBGP_SOAK_FAULT_INJECT", 0) != 0) fault_inject = true;

  util::Log::threshold() = util::LogLevel::kError;  // episodes tear sessions down on purpose
  const std::uint64_t seed = fuzz::env_seed(0x50AC'2026ull);
  fuzz::announce_seed("fuzz_soak", seed);
  const std::uint64_t budget_s = fuzz::env_u64("XBGP_SOAK_SECONDS", 8);
  std::printf("[fuzz_soak] budget=%llus parallelism=8 fault_inject=%d\n",
              static_cast<unsigned long long>(budget_s), fault_inject ? 1 : 0);

  fuzz::PlanOptions opt;
  opt.force_parallelism = 8;
  opt.inject_unmodeled_fault = fault_inject;

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration_cast<std::chrono::seconds>(std::chrono::steady_clock::now() -
                                                            start)
        .count();
  };

  std::uint64_t episodes = 0;
  std::uint64_t iteration = 0;
  std::uint64_t rss_base = 0;
  std::vector<std::string> violations;
  while (static_cast<std::uint64_t>(elapsed_s()) < budget_s && violations.size() < 20) {
    const std::uint64_t plan_seed = seed + iteration;
    const auto plan = fuzz::make_plan(plan_seed, opt);
    const auto fir = fuzz::run_episode<hosts::fir::FirCore>(plan);
    const auto wren = fuzz::run_episode<hosts::wren::WrenCore>(plan);
    for (const auto& v : fir.violations) violations.push_back("fir: " + v);
    for (const auto& v : wren.violations) violations.push_back("wren: " + v);
    for (const auto& v : fuzz::diff_snapshots(fir, wren))
      violations.push_back("differential (seed " + std::to_string(plan_seed) + "): " + v);
    episodes += 2;
    ++iteration;
    // Allocator pools and sanitizer runtimes settle after a few episodes;
    // the growth bound is taken from there.
    if (iteration == 4) rss_base = rss_kib();
  }

  for (const auto& v : violations)
    std::printf("[fuzz_soak] VIOLATION: %s\n", v.c_str());
  if (!violations.empty())
    std::printf("[fuzz_soak] replay: XBGP_FUZZ_SEED=%llu %s\n",
                static_cast<unsigned long long>(seed), fault_inject ? "--fault-inject" : "");

  bool rss_ok = true;
  const std::uint64_t rss_end = rss_kib();
  if (rss_base != 0 && rss_end > rss_base + 256 * 1024) {
    rss_ok = false;
    std::printf("[fuzz_soak] MEMORY GROWTH: rss %llu KiB -> %llu KiB across %llu episodes\n",
                static_cast<unsigned long long>(rss_base),
                static_cast<unsigned long long>(rss_end),
                static_cast<unsigned long long>(episodes));
  }

  std::printf("[fuzz_soak] %llu episodes in %llds, %zu violations, rss %llu KiB\n",
              static_cast<unsigned long long>(episodes), static_cast<long long>(elapsed_s()),
              violations.size(), static_cast<unsigned long long>(rss_end));
  return (violations.empty() && rss_ok) ? 0 : 1;
}
