// xbgp_stats: runs the paper's four use cases (route reflection §3.2,
// origin validation §3.4, GeoLoc §2, valley-free §3.3) on both host
// implementations with tracing enabled and renders the telemetry spine —
// per-insertion-point invocation counts and latency quantiles, fault-class
// breakdowns, and optional Prometheus / JSONL dumps.
//
//   xbgp_stats [--routes N] [--parallelism N] [--prom FILE] [--jsonl FILE]
//
// Exits non-zero if any traced run records a fault or produces no spans —
// which makes the ctest smoke entry (xbgp_stats_smoke) a real end-to-end
// check of the spine, not just of the table formatting.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ebpf/jit.hpp"
#include "extensions/geoloc.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "extensions/valley_free.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "hosts/wren/wren_router.hpp"
#include "obs/export.hpp"

namespace {

using namespace xb;
using Fir = hosts::fir::FirRouter;
using Wren = hosts::wren::WrenRouter;

constexpr std::uint64_t kSec = 1'000'000'000ull;

struct Options {
  std::size_t routes = 400;
  std::size_t parallelism = 2;
  std::string prom_path;
  std::string jsonl_path;
  /// When non-zero, pretty-print the first N surviving flight-recorder
  /// events of every run as JSONL (docs/observability.md).
  std::size_t events = 0;
};

struct Report {
  std::string prom;   // accumulated Prometheus text across runs
  std::string jsonl;  // accumulated span lines across runs
  std::uint64_t faults = 0;
  std::uint64_t spans = 0;
  std::uint64_t jit_compiled = 0;  // tier-2 images built across runs
  std::uint64_t jit_runs = 0;      // executions on the native tier
  bool jit_series_missing = false; // any tier-2 telemetry series absent
};

const char* verdict_name(std::uint8_t cls) {
  return to_string(static_cast<xbgp::FaultClass>(cls));
}

/// Renders one (host, use case) run from its telemetry and folds the
/// exposition output into the report.
template <typename RouterT>
void render(const char* host, const char* use_case, RouterT& dut, Report& rep,
            const Options& opt, std::uint64_t now) {
  const obs::Snapshot snap = dut.telemetry().registry().snapshot();
  const auto spans = dut.telemetry().trace().collect();
  rep.spans += spans.size();

  std::printf("%s / %s\n", host, use_case);
  std::printf("  %-22s %10s %10s %10s %10s\n", "insertion point", "runs", "p50 us",
              "p99 us", "max-ish us");
  for (std::uint8_t o = 1; o < xbgp::kOpCount; ++o) {
    const auto op = static_cast<xbgp::Op>(o);
    const std::string point = to_string(op);
    const auto* hist = snap.find("xbgp_vmm_exec_ns{point=\"" + point + "\"}");
    const auto* runs = snap.find("xbgp_vmm_program_runs_total{point=\"" + point + "\"}");
    if (runs == nullptr || runs->value == 0) continue;
    const double p50 = hist != nullptr ? hist->quantile(0.50) / 1000.0 : 0.0;
    const double p99 = hist != nullptr ? hist->quantile(0.99) / 1000.0 : 0.0;
    const double p999 = hist != nullptr ? hist->quantile(0.999) / 1000.0 : 0.0;
    std::printf("  %-22s %10llu %10.2f %10.2f %10.2f\n", point.c_str(),
                static_cast<unsigned long long>(runs->value), p50, p99, p999);
  }

  std::uint64_t faults = 0;
  std::string fault_line;
  for (std::uint8_t c = 0; c < xbgp::kFaultClassCount; ++c) {
    const auto* mv = snap.find(std::string("xbgp_vmm_faults_by_class_total{class=\"") +
                               verdict_name(c) + "\"}");
    if (mv == nullptr || mv->value == 0) continue;
    faults += mv->value;
    fault_line += std::string("  ") + verdict_name(c) + "=" + std::to_string(mv->value);
  }
  rep.faults += faults;

  const auto* invocations = snap.find("xbgp_vmm_invocations_total");
  const auto* fallbacks = snap.find("xbgp_vmm_native_fallbacks_total");
  std::printf("  invocations=%llu native_fallbacks=%llu spans=%zu faults=%llu%s\n",
              static_cast<unsigned long long>(invocations ? invocations->value : 0),
              static_cast<unsigned long long>(fallbacks ? fallbacks->value : 0),
              spans.size(), static_cast<unsigned long long>(faults),
              fault_line.c_str());

  // Tier-2 JIT telemetry: compiled images, native code footprint, executions
  // on the native tier, and declined compilations by reason. The smoke gate
  // requires every series to exist, and — on hosts where the JIT is engaged —
  // at least one compiled image and one native run across the use cases.
  const auto* jit_compiled = snap.find("xbgp_vmm_jit_compiled_total");
  const auto* jit_bytes = snap.find("xbgp_vmm_jit_code_bytes");
  const auto* jit_runs = snap.find("xbgp_vmm_tier_runs_total{tier=\"jit\"}");
  std::uint64_t jit_declined = 0;
  bool fallback_series_present = true;
  for (std::size_t i = 1; i < ebpf::kJitFallbackCount; ++i) {
    const auto* mv =
        snap.find(std::string("xbgp_vmm_jit_fallbacks_total{reason=\"") +
                  to_string(static_cast<ebpf::JitFallback>(i)) + "\"}");
    if (mv == nullptr) fallback_series_present = false;
    else jit_declined += mv->value;
  }
  std::printf("  jit: compiled=%llu code_bytes=%llu native_runs=%llu declined=%llu\n",
              static_cast<unsigned long long>(jit_compiled ? jit_compiled->value : 0),
              static_cast<unsigned long long>(jit_bytes ? jit_bytes->value : 0),
              static_cast<unsigned long long>(jit_runs ? jit_runs->value : 0),
              static_cast<unsigned long long>(jit_declined));
  rep.jit_compiled += jit_compiled ? jit_compiled->value : 0;
  rep.jit_runs += jit_runs ? jit_runs->value : 0;
  if (jit_compiled == nullptr || jit_bytes == nullptr || jit_runs == nullptr ||
      !fallback_series_present) {
    rep.jit_series_missing = true;
  }

  // Per-prefix churn from the flap oracle: the worst offenders by decayed
  // penalty, plus the router-wide quiescence verdict.
  const obs::FlapVerdict fv = dut.flap_verdict();
  std::printf("  flap: quiescent=%d tracked=%zu active=%zu suppressed=%zu changes=%llu\n",
              fv.quiescent ? 1 : 0, fv.tracked_prefixes, fv.active_prefixes,
              fv.suppressed_prefixes, static_cast<unsigned long long>(fv.total_changes));
  const auto top = dut.telemetry().flap().top(5, now);
  for (const auto& e : top) {
    const util::Prefix p(util::Ipv4Addr(static_cast<std::uint32_t>(e.key >> 8)),
                         static_cast<std::uint8_t>(e.key & 0xFF));
    std::printf("    %-18s changes=%-6llu penalty=%llu\n", p.str().c_str(),
                static_cast<unsigned long long>(e.changes),
                static_cast<unsigned long long>(e.penalty));
  }

  if (opt.events > 0) {
    auto events = dut.telemetry().events().collect();
    const std::size_t total = events.size();
    if (events.size() > opt.events) events.resize(opt.events);
    std::printf("  events (%zu of %zu surviving, %llu recorded, %llu dropped):\n",
                events.size(), total,
                static_cast<unsigned long long>(dut.telemetry().events().recorded_total()),
                static_cast<unsigned long long>(dut.telemetry().events().dropped_total()));
    const std::string lines = obs::to_jsonl(
        events,
        [&dut](std::uint32_t id) { return dut.peer_display_name(id); },
        [](std::uint8_t o) { return std::string_view(to_string(static_cast<xbgp::Op>(o))); },
        [&dut](std::uint16_t p) { return dut.extension_name(p); });
    std::fputs(lines.c_str(), stdout);
  }
  std::printf("\n");

  if (!opt.prom_path.empty()) {
    rep.prom += "# run: " + std::string(host) + "/" + use_case + "\n";
    rep.prom += obs::to_prometheus(snap);
  }
  if (!opt.jsonl_path.empty()) {
    rep.jsonl += obs::to_jsonl(
        spans,
        [](std::uint8_t o) { return std::string_view(to_string(static_cast<xbgp::Op>(o))); },
        [](std::uint8_t c) { return std::string_view(verdict_name(c)); });
  }
}

template <typename RouterT>
typename RouterT::Config base_config(const harness::TestbedPlan& plan,
                                     const Options& opt) {
  typename RouterT::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.parallelism = opt.parallelism;
  cfg.obs.tracing = true;
  return cfg;
}

// --- the four paper use cases -----------------------------------------------------

template <typename RouterT>
void run_rr(const char* host, const Options& opt, Report& rep) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  auto cfg = base_config<RouterT>(plan, opt);
  cfg.cluster_id = 0xC1C1C1C1;
  RouterT dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = opt.routes;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);
  render(host, "route-reflection", dut, rep, opt, loop.now());
}

template <typename RouterT>
void run_ov(const char* host, const Options& opt, Report& rep) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  auto cfg = base_config<RouterT>(plan, opt);
  RouterT dut(loop, cfg);
  harness::WorkloadParams params;
  params.route_count = opt.routes;
  const auto workload = harness::make_workload(params);
  const auto roas = rpki::make_roa_set(workload.routes, rpki::RoaSetParams{});
  dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
  dut.load_extensions(ext::origin_validation_manifest(roas.size()));
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  bed.run(workload, workload.prefix_count);
  render(host, "origin-validation", dut, rep, opt, loop.now());
}

template <typename RouterT>
void run_geoloc(const char* host, const Options& opt, Report& rep) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ebgp_plan();
  auto cfg = base_config<RouterT>(plan, opt);
  RouterT dut(loop, cfg);
  std::vector<std::uint8_t> coords(8);
  const std::int32_t lat = 50'000'000, lon = 4'000'000;
  std::memcpy(coords.data(), &lat, 4);
  std::memcpy(coords.data() + 4, &lon, 4);
  dut.set_xtra(xbgp::xtra::kGeoCoord, coords);
  dut.load_extensions(ext::geoloc_manifest(/*with_distance_filter=*/false));
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = opt.routes;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);
  render(host, "geoloc", dut, rep, opt, loop.now());
}

template <typename RouterT>
void run_valley_free(const char* host, const Options& opt, Report& rep) {
  const bgp::Asn kSpine1 = 65201, kSpine2 = 65202, kLeaf12 = 65112, kLeaf13 = 65113,
                 kTor = 65023;
  std::vector<xbgp::ValleyPair> pairs{{kLeaf12, kSpine1}, {kLeaf12, kSpine2},
                                      {kLeaf13, kSpine1}, {kLeaf13, kSpine2},
                                      {kTor, kLeaf12},    {kTor, kLeaf13}};
  std::vector<std::uint8_t> blob(pairs.size() * sizeof(xbgp::ValleyPair));
  std::memcpy(blob.data(), pairs.data(), blob.size());
  const std::vector<std::vector<bgp::Asn>> paths = {
      {kLeaf12, kTor},
      {kLeaf12, kSpine1, kLeaf13, kTor},
      {kLeaf12, kTor, kLeaf13, kSpine1, kLeaf13},
      {kLeaf12},
  };

  net::EventLoop loop;
  harness::TestbedPlan plan = harness::TestbedPlan::ebgp_plan();
  plan.dut_asn = kSpine2;
  plan.upstream_asn = kLeaf12;
  auto cfg = base_config<RouterT>(plan, opt);
  cfg.name = "spine2";
  cfg.asn = kSpine2;
  RouterT dut(loop, cfg);
  dut.set_xtra(xbgp::xtra::kValleyPairs, blob);
  dut.load_extensions(ext::valley_free_manifest());
  harness::Testbed<RouterT> bed(loop, dut, plan);
  bed.establish();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    bgp::UpdateMessage update;
    update.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
    update.attrs.put(bgp::AsPath(paths[i]).to_attr());
    update.attrs.put(bgp::make_next_hop(plan.upstream_addr));
    update.nlri = {util::Prefix(
        util::Ipv4Addr(0xC0000200u + (static_cast<std::uint32_t>(i) << 8)), 24)};
    bed.feeder().session().send_update(update);
  }
  loop.run_until(loop.now() + 2 * kSec);
  render(host, "valley-free", dut, rep, opt, loop.now());
}

void usage() {
  std::printf(
      "usage: xbgp_stats [--routes N] [--parallelism N] [--prom FILE] [--jsonl FILE]\n"
      "                  [--events N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--routes") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.routes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--parallelism") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.parallelism = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--prom") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.prom_path = v;
    } else if (arg == "--jsonl") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.jsonl_path = v;
    } else if (arg == "--events") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.events = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else {
      usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  Report rep;
  try {
    run_rr<Fir>("fir", opt, rep);
    run_rr<Wren>("wren", opt, rep);
    run_ov<Fir>("fir", opt, rep);
    run_ov<Wren>("wren", opt, rep);
    run_geoloc<Fir>("fir", opt, rep);
    run_geoloc<Wren>("wren", opt, rep);
    run_valley_free<Fir>("fir", opt, rep);
    run_valley_free<Wren>("wren", opt, rep);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbgp_stats: run failed: %s\n", e.what());
    return 1;
  }

  if (!opt.prom_path.empty()) {
    std::ofstream(opt.prom_path) << rep.prom;
    std::printf("wrote %s\n", opt.prom_path.c_str());
  }
  if (!opt.jsonl_path.empty()) {
    std::ofstream(opt.jsonl_path) << rep.jsonl;
    std::printf("wrote %s\n", opt.jsonl_path.c_str());
  }

  if (rep.spans == 0) {
    std::fprintf(stderr, "xbgp_stats: traced runs recorded no spans\n");
    return 1;
  }
  if (rep.faults != 0) {
    std::fprintf(stderr, "xbgp_stats: %llu extension fault(s) during the runs\n",
                 static_cast<unsigned long long>(rep.faults));
    return 1;
  }
  if (rep.jit_series_missing) {
    std::fprintf(stderr, "xbgp_stats: tier-2 JIT telemetry series missing\n");
    return 1;
  }
  if (ebpf::Jit::supported() && ebpf::Jit::enabled_by_env() &&
      (rep.jit_compiled == 0 || rep.jit_runs == 0)) {
    std::fprintf(stderr,
                 "xbgp_stats: JIT engaged but no compiled image / native run recorded\n");
    return 1;
  }
  return 0;
}
