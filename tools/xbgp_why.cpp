// xbgp_why: the flight-recorder query CLI (docs/observability.md).
//
// Default mode runs the paper's route-reflection workload on the Fir host
// with the recorder on, then answers "why is this prefix routed this way"
// from the provenance views: source peer, the decision step that selected
// the route, the extension programs that mutated attributes on the way, and
// the ingest serial — plus the surviving flight-recorder events for the
// prefix as JSONL.
//
//   xbgp_why [--prefix A.B.C.D/L] [--routes N] [--parallelism N]
//   xbgp_why --oracle [--routes N]
//
// --oracle exercises the flap/divergence oracle end to end: a scripted
// announce/withdraw oscillation across two net-connected engine routers
// must be flagged non-quiescent with a nonzero decayed penalty, while the
// steady route-reflection and origin-validation workloads must converge to
// a quiescent verdict with a bounded convergence-time histogram. Exits
// non-zero when either side of the oracle misbehaves, which makes the ctest
// smoke entry a real end-to-end gate.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bgp/decision.hpp"
#include "extensions/origin_validation.hpp"
#include "extensions/route_reflection.hpp"
#include "harness/testbed.hpp"
#include "harness/workload.hpp"
#include "hosts/fir/fir_router.hpp"
#include "net/channel.hpp"
#include "obs/export.hpp"

namespace {

using namespace xb;
using Fir = hosts::fir::FirRouter;

constexpr std::uint64_t kMs = 1'000'000ull;
constexpr std::uint64_t kSec = 1'000'000'000ull;

struct Options {
  std::string prefix;
  std::size_t routes = 400;
  std::size_t parallelism = 2;
  bool oracle = false;
};

std::string step_name(std::uint8_t step) {
  switch (step) {
    case obs::kProvStepUnset: return "unset";
    case obs::kProvStepExtension: return "extension";
    case obs::kProvStepOnlyRoute: return "only-route";
    case obs::kProvStepLocal: return "local";
    default: return std::string(bgp::to_string(static_cast<bgp::DecisionStep>(step)));
  }
}

std::string peer_label(const Fir& dut, std::uint32_t id) {
  if (id == obs::kProvNoPeer) return "local";
  const std::string_view name = dut.peer_display_name(id);
  return name.empty() ? "peer-" + std::to_string(id) : std::string(name);
}

std::string mutator_list(const Fir& dut, const obs::Provenance& prov) {
  if (prov.mutation_count == 0) return "none";
  std::string out;
  for (std::size_t i = 0; i < prov.mutator_entries(); ++i) {
    if (!out.empty()) out += ", ";
    const std::string_view name = dut.extension_name(prov.mutators[i]);
    out += name.empty() ? "program-" + std::to_string(prov.mutators[i]) : std::string(name);
    out += '@';
    out += to_string(static_cast<xbgp::Op>(prov.mutator_ops[i]));
  }
  if (prov.mutation_count > prov.mutator_entries()) {
    out += " (+" + std::to_string(prov.mutation_count - prov.mutator_entries()) +
           " more mutations)";
  }
  return out;
}

void print_provenance(const Fir& dut, const char* where, const obs::Provenance* prov) {
  if (prov == nullptr) {
    std::printf("  %-24s (no recorded provenance)\n", where);
    return;
  }
  std::printf("  %-24s from=%s serial=%llu decided-by=%s mutators=%s\n", where,
              peer_label(dut, prov->src_peer).c_str(),
              static_cast<unsigned long long>(prov->ingest_serial),
              step_name(prov->decision_step).c_str(), mutator_list(dut, *prov).c_str());
}

/// Default mode: run the RR workload, then explain one prefix.
int run_why(const Options& opt) {
  net::EventLoop loop;
  const auto plan = harness::TestbedPlan::ibgp_plan();
  Fir::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  cfg.cluster_id = 0xC1C1C1C1;
  cfg.parallelism = opt.parallelism;
  Fir dut(loop, cfg);
  dut.load_extensions(ext::route_reflection_manifest());
  harness::Testbed<Fir> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = opt.routes;
  params.with_local_pref = true;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);

  util::Prefix prefix;
  if (!opt.prefix.empty()) {
    try {
      prefix = util::Prefix::parse(opt.prefix);
    } catch (const std::exception&) {
      std::fprintf(stderr, "xbgp_why: cannot parse prefix '%s'\n", opt.prefix.c_str());
      return 2;
    }
  } else {
    const auto prefixes = dut.loc_rib_prefixes();
    if (prefixes.empty()) {
      std::fprintf(stderr, "xbgp_why: Loc-RIB is empty after the workload\n");
      return 1;
    }
    prefix = prefixes.front();
  }

  std::printf("why %s (fir / route-reflection, %zu routes, parallelism %zu)\n",
              prefix.str().c_str(), opt.routes, opt.parallelism);
  const obs::Provenance* loc = dut.loc_rib_provenance(prefix);
  print_provenance(dut, "loc-rib", loc);
  for (std::size_t id = 0; id < 2; ++id) {
    std::string where = "adj-rib-in[" + peer_label(dut, static_cast<std::uint32_t>(id)) + "]";
    if (const obs::Provenance* p = dut.adj_rib_in_provenance(id, prefix)) {
      print_provenance(dut, where.c_str(), p);
    }
    where = "adj-rib-out[" + peer_label(dut, static_cast<std::uint32_t>(id)) + "]";
    if (const obs::Provenance* p = dut.adj_rib_out_provenance(id, prefix)) {
      print_provenance(dut, where.c_str(), p);
    }
  }

  const auto events = dut.telemetry().events().collect();
  std::vector<obs::Event> matching;
  for (const obs::Event& e : events) {
    if (e.prefix_addr == prefix.addr().value() && e.prefix_len == prefix.length()) {
      matching.push_back(e);
    }
  }
  std::printf("events for %s (%zu of %zu surviving, %llu recorded, %llu dropped):\n",
              prefix.str().c_str(), matching.size(), events.size(),
              static_cast<unsigned long long>(dut.telemetry().events().recorded_total()),
              static_cast<unsigned long long>(dut.telemetry().events().dropped_total()));
  const std::string jsonl = obs::to_jsonl(
      matching,
      [&dut](std::uint32_t id) { return dut.peer_display_name(id); },
      [](std::uint8_t o) { return std::string_view(to_string(static_cast<xbgp::Op>(o))); },
      [&dut](std::uint16_t p) { return dut.extension_name(p); });
  std::fputs(jsonl.c_str(), stdout);

  if (loc == nullptr) {
    std::fprintf(stderr, "xbgp_why: no Loc-RIB provenance recorded for %s\n",
                 prefix.str().c_str());
    return 1;
  }
  if (matching.empty()) {
    std::fprintf(stderr, "xbgp_why: no flight-recorder events for %s\n",
                 prefix.str().c_str());
    return 1;
  }
  return 0;
}

// --- the flap / divergence oracle -------------------------------------------------

/// Two engine routers on one net link, an eBGP feeder oscillating a prefix
/// into the first: both flap detectors must flag the churn.
bool oracle_oscillation() {
  net::EventLoop loop;
  net::Duplex feed_link(loop, /*latency=*/0);
  net::Duplex ab_link(loop, /*latency=*/0);

  Fir::Config cfg_a;
  cfg_a.name = "osc-a";
  cfg_a.asn = 65100;
  cfg_a.router_id = 0x0A000001;
  cfg_a.address = util::Ipv4Addr(10, 1, 0, 1);
  Fir a(loop, cfg_a);
  a.add_peer(feed_link.b(), {.name = "feed",
                             .asn = 65001,
                             .address = util::Ipv4Addr(10, 1, 0, 9)});
  a.add_peer(ab_link.a(), {.name = "b",
                           .asn = 65200,
                           .address = util::Ipv4Addr(10, 1, 0, 2),
                           .next_hop_self = true});

  Fir::Config cfg_b;
  cfg_b.name = "osc-b";
  cfg_b.asn = 65200;
  cfg_b.router_id = 0x0A000002;
  cfg_b.address = util::Ipv4Addr(10, 1, 0, 2);
  Fir b(loop, cfg_b);
  b.add_peer(ab_link.b(), {.name = "a",
                           .asn = 65100,
                           .address = util::Ipv4Addr(10, 1, 0, 1)});

  bgp::PeerSession::Config fc;
  fc.local_asn = 65001;
  fc.peer_asn = 65100;
  fc.local_id = 0x0A000009;
  fc.local_addr = util::Ipv4Addr(10, 1, 0, 9);
  fc.peer_addr = util::Ipv4Addr(10, 1, 0, 1);
  harness::Feeder feeder(loop, feed_link.a(), fc);

  a.start();
  b.start();
  feeder.start();
  loop.run_until(loop.now() + kSec);
  if (!feeder.established()) {
    std::fprintf(stderr, "oracle: oscillation sessions failed to establish\n");
    return false;
  }

  const util::Prefix prefix(util::Ipv4Addr(192, 0, 2, 0), 24);
  bgp::UpdateMessage announce;
  announce.attrs.put(bgp::make_origin(bgp::Origin::kIgp));
  announce.attrs.put(bgp::AsPath({65001}).to_attr());
  announce.attrs.put(bgp::make_next_hop(util::Ipv4Addr(10, 1, 0, 9)));
  announce.nlri = {prefix};
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn = {prefix};

  constexpr int kCycles = 20;
  for (int i = 0; i < kCycles; ++i) {
    feeder.session().send_update(announce);
    loop.run_until(loop.now() + 100 * kMs);
    feeder.session().send_update(withdraw);
    loop.run_until(loop.now() + 100 * kMs);
  }

  bool ok = true;
  for (auto* r : {&a, &b}) {
    const obs::FlapVerdict v = r->flap_verdict();
    std::printf(
        "oracle %-6s oscillating: quiescent=%d tracked=%zu active=%zu suppressed=%zu "
        "changes=%llu penalty_max=%llu events=%llu\n",
        r->config().name.c_str(), v.quiescent ? 1 : 0, v.tracked_prefixes,
        v.active_prefixes, v.suppressed_prefixes,
        static_cast<unsigned long long>(v.total_changes),
        static_cast<unsigned long long>(v.max_penalty),
        static_cast<unsigned long long>(r->telemetry().events().recorded_total()));
    if (v.quiescent || v.max_penalty == 0 ||
        v.total_changes < static_cast<std::uint64_t>(kCycles)) {
      std::fprintf(stderr, "oracle: %s failed to flag the oscillation\n",
                   r->config().name.c_str());
      ok = false;
    }
    if (r->telemetry().events().recorded_total() == 0) {
      std::fprintf(stderr, "oracle: %s recorded no flight-recorder events\n",
                   r->config().name.c_str());
      ok = false;
    }
  }
  return ok;
}

/// A steady fig-4 workload must converge: quiescent verdict, every change
/// burst closed into a bounded convergence histogram.
template <typename Load>
bool oracle_quiescent(const char* label, Load&& load) {
  net::EventLoop loop;
  const bool ibgp = std::strcmp(label, "route-reflection") == 0;
  const auto plan =
      ibgp ? harness::TestbedPlan::ibgp_plan() : harness::TestbedPlan::ebgp_plan();
  Fir::Config cfg;
  cfg.name = "dut";
  cfg.asn = plan.dut_asn;
  cfg.router_id = 0x0A000002;
  cfg.address = plan.dut_addr;
  if (ibgp) cfg.cluster_id = 0xC1C1C1C1;
  Fir dut(loop, cfg);
  load(dut);
  harness::Testbed<Fir> bed(loop, dut, plan);
  bed.establish();
  harness::WorkloadParams params;
  params.route_count = 200;
  params.with_local_pref = ibgp;
  const auto workload = harness::make_workload(params);
  bed.run(workload, workload.prefix_count);

  // Let the quiet window elapse, then ask the oracle.
  loop.run_until(loop.now() + 3 * kSec);
  const obs::FlapVerdict v = dut.flap_verdict();
  const obs::Snapshot snap = dut.telemetry().registry().snapshot();
  const obs::MetricValue* hist = snap.find("xbgp_convergence_ns");
  const std::uint64_t samples = hist != nullptr ? hist->count : 0;
  const double p999 = hist != nullptr ? hist->quantile(0.999) : 0.0;
  std::printf(
      "oracle %-17s steady: quiescent=%d tracked=%zu changes=%llu convergence_samples=%llu "
      "p999_ms=%.3f\n",
      label, v.quiescent ? 1 : 0, v.tracked_prefixes,
      static_cast<unsigned long long>(v.total_changes),
      static_cast<unsigned long long>(samples), p999 / 1e6);
  if (!v.quiescent || v.total_changes == 0 || samples == 0 ||
      p999 > 2.0 * static_cast<double>(kSec)) {
    std::fprintf(stderr, "oracle: steady %s workload failed the quiescence gate\n", label);
    return false;
  }
  return true;
}

int run_oracle() {
  bool ok = oracle_oscillation();
  ok = oracle_quiescent("route-reflection",
                        [](Fir& dut) {
                          dut.load_extensions(ext::route_reflection_manifest());
                        }) &&
       ok;
  ok = oracle_quiescent("origin-validation",
                        [](Fir& dut) {
                          harness::WorkloadParams params;
                          params.route_count = 200;
                          const auto workload = harness::make_workload(params);
                          const auto roas =
                              rpki::make_roa_set(workload.routes, rpki::RoaSetParams{});
                          dut.set_xtra(xbgp::xtra::kRoaTable, harness::pack_roa_blob(roas));
                          dut.load_extensions(ext::origin_validation_manifest(roas.size()));
                        }) &&
       ok;
  std::printf("oracle verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

void usage() {
  std::printf(
      "usage: xbgp_why [--prefix A.B.C.D/L] [--routes N] [--parallelism N] [--oracle]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--prefix") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.prefix = v;
    } else if (arg == "--routes") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.routes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--parallelism") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opt.parallelism = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--oracle") {
      opt.oracle = true;
    } else {
      usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  try {
    return opt.oracle ? run_oracle() : run_why(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xbgp_why: %s\n", e.what());
    return 1;
  }
}
