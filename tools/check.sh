#!/bin/sh
# Sanitized verification gate: configure a separate build tree with
# XBGP_SANITIZE, build, and run tests under the sanitizer.  Usage:
#
#   tools/check.sh                 # address sanitizer (default)
#   tools/check.sh undefined       # UBSan, full suite
#   tools/check.sh address,undefined
#   tools/check.sh thread          # TSan: parallel pipeline + differential
#                                  # host tests (the multi-threaded code)
#   tools/check.sh ubsan           # UBSan: codec fuzz + robustness suites
#                                  # (the malformed-input surface)
#   tools/check.sh obs             # telemetry overhead gate: unsanitized
#                                  # build, obs_overhead must stay under the
#                                  # 2% budget, xbgp_stats must smoke-run
#   tools/check.sh fast-vm         # execution-engine gate: differential
#                                  # fuzz + conformance under BOTH dispatch
#                                  # strategies (computed goto and the
#                                  # portable switch), then again under TSan
#                                  # and UBSan
#
# The `thread` mode builds only the tests that actually spawn worker
# threads (the UPDATE pipeline at parallelism > 1); everything else is
# single-threaded by design and covered by the other modes. The `ubsan`
# mode builds only the tests that push mutated and malformed wire input
# through the decode path, where undefined behaviour would hide — the
# RFC 7606 error-classification surface.
#
# Exits non-zero if configuration, the build, or any test fails.
set -eu

MODE="${1:-address}"
SANITIZER="$MODE"
if [ "$MODE" = "ubsan" ]; then
  SANITIZER=undefined
fi
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# The obs mode measures overhead, so it must NOT run under a sanitizer:
# plain release-ish build tree, run the gate binaries directly.
if [ "$MODE" = "obs" ]; then
  BUILD="$ROOT/build-obs"
  cmake -B "$BUILD" -S "$ROOT"
  cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
    --target obs_overhead xbgp_stats
  # 120k routes keeps individual runs ~0.6s: the fast execution tier cut the
  # workload time ~30%, and shorter runs put the 2% budget under the
  # machine's scheduling-noise floor.
  "$BUILD/bench/obs_overhead" "${2:-120000}" "${3:-7}" "${4:-2.0}"
  "$BUILD/tools/xbgp_stats" --routes 120
  exit 0
fi

# The fast-vm mode cross-checks the fast execution tier against the
# reference interpreter: the differential fuzz gate and the two-tier
# conformance table, built with computed-goto dispatch (the default) and
# with -DXBGP_SWITCH_DISPATCH=ON, then repeated inside the existing TSan
# and UBSan trees so data races and UB in the dispatch loop can't hide.
if [ "$MODE" = "fast-vm" ]; then
  NPROC="$(nproc 2>/dev/null || echo 4)"
  FILTER='DifferentialFuzz|DifferentialFault|Translator\.|Conformance'

  BUILD="$ROOT/build-fastvm"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_SWITCH_DISPATCH=OFF
  cmake --build "$BUILD" -j "$NPROC" \
    --target ebpf_differential_test ebpf_conformance_test
  ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

  BUILD="$ROOT/build-fastvm-switch"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_SWITCH_DISPATCH=ON
  cmake --build "$BUILD" -j "$NPROC" \
    --target ebpf_differential_test ebpf_conformance_test
  ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

  for SAN_MODE in thread ubsan; do
    SAN=thread
    [ "$SAN_MODE" = "ubsan" ] && SAN=undefined
    BUILD="$ROOT/build-san-$SAN_MODE"
    cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SAN"
    cmake --build "$BUILD" -j "$NPROC" --target ebpf_differential_test
    ctest --test-dir "$BUILD" --output-on-failure \
      -R 'DifferentialFuzz|DifferentialFault'
  done
  exit 0
fi

BUILD="$ROOT/build-san-$(printf '%s' "$MODE" | tr ',' '-')"

cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SANITIZER"

case "$MODE" in
  thread)
    cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
      --target parallel_pipeline_test differential_host_test
    ctest --test-dir "$BUILD" --output-on-failure \
      -R 'ParallelPipeline|DifferentialHost|ShardWorkload|PrefixShard'
    ;;
  ubsan)
    cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
      --target bgp_codec_fuzz_test robustness_test bgp_codec_test
    ctest --test-dir "$BUILD" --output-on-failure \
      -R 'BgpCodecFuzz|Fuzz\.|RouterRobustness|Codec\.|Framing\.|Decode\.'
    ;;
  *)
    cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"
    ctest --test-dir "$BUILD" --output-on-failure
    ;;
esac
