#!/bin/sh
# Sanitized verification gate: configure a separate build tree with
# XBGP_SANITIZE, build everything, and run the full test suite under the
# sanitizer.  Usage:
#
#   tools/check.sh                 # address sanitizer (default)
#   tools/check.sh undefined       # UBSan
#   tools/check.sh address,undefined
#
# Exits non-zero if configuration, the build, or any test fails.
set -eu

SANITIZER="${1:-address}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-san-$(printf '%s' "$SANITIZER" | tr ',' '-')"

cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SANITIZER"
cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$BUILD" --output-on-failure
