#!/bin/sh
# Sanitized verification gate: configure a separate build tree with
# XBGP_SANITIZE, build, and run tests under the sanitizer.  Usage:
#
#   tools/check.sh                 # address sanitizer (default)
#   tools/check.sh undefined       # UBSan
#   tools/check.sh address,undefined
#   tools/check.sh thread          # TSan: parallel pipeline + differential
#                                  # host tests (the multi-threaded code)
#
# The `thread` mode builds only the tests that actually spawn worker
# threads (the UPDATE pipeline at parallelism > 1); everything else is
# single-threaded by design and covered by the other modes.
#
# Exits non-zero if configuration, the build, or any test fails.
set -eu

SANITIZER="${1:-address}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-san-$(printf '%s' "$SANITIZER" | tr ',' '-')"

cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SANITIZER"

if [ "$SANITIZER" = "thread" ]; then
  cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
    --target parallel_pipeline_test differential_host_test
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'ParallelPipeline|DifferentialHost|ShardWorkload|PrefixShard'
else
  cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"
  ctest --test-dir "$BUILD" --output-on-failure
fi
