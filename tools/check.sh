#!/bin/sh
# Sanitized verification gate: configure a separate build tree with
# XBGP_SANITIZE, build, and run tests under the sanitizer.  Usage:
#
#   tools/check.sh                 # address sanitizer (default)
#   tools/check.sh undefined       # UBSan, full suite
#   tools/check.sh address,undefined
#   tools/check.sh thread          # TSan: parallel pipeline + differential
#                                  # host tests (the multi-threaded code)
#   tools/check.sh ubsan           # UBSan: codec fuzz + robustness suites
#                                  # (the malformed-input surface)
#   tools/check.sh obs             # telemetry overhead gate: unsanitized
#                                  # build, obs_overhead must stay under the
#                                  # 2% budget, xbgp_stats must smoke-run
#   tools/check.sh fast-vm         # execution-engine gate: differential
#                                  # fuzz + conformance under BOTH dispatch
#                                  # strategies (computed goto and the
#                                  # portable switch), then again under TSan
#                                  # and UBSan
#   tools/check.sh jit             # tier-2 JIT gate: the three-tier
#                                  # differential fuzz + conformance + JIT
#                                  # fallback suites with the native backend
#                                  # engaged, under both tier-1 dispatch
#                                  # strategies (the deopt target), then
#                                  # again under ASan and UBSan
#   tools/check.sh static          # static-analysis gate: -Werror build,
#                                  # xbgp_lint over every shipped extension
#                                  # diffed against tools/lint_baseline.txt
#                                  # (new diagnostics are regressions), then
#                                  # the elision-oracle fuzz tests
#   tools/check.sh export          # export-engine gate: the RibOut peer-group
#                                  # engine vs the per-peer oracle (bit-identical
#                                  # wire streams + Adj-RIB-Out views at
#                                  # parallelism 1/2/8, both hosts) under TSan
#                                  # then ASan
#   tools/check.sh soak            # stateful-fuzzer soak gate: fuzz_soak at
#                                  # parallelism 8 under TSan then ASan for
#                                  # XBGP_SOAK_SECONDS each (default 60; set
#                                  # it higher for hours-scale runs), then a
#                                  # fault-injection run that must FAIL
#
# The `thread` mode builds only the tests that actually spawn worker
# threads (the UPDATE pipeline at parallelism > 1); everything else is
# single-threaded by design and covered by the other modes. The `ubsan`
# mode builds only the tests that push mutated and malformed wire input
# through the decode path, where undefined behaviour would hide — the
# RFC 7606 error-classification surface.
#
# Exits non-zero if configuration, the build, or any test fails.
set -eu

MODE="${1:-address}"
SANITIZER="$MODE"
if [ "$MODE" = "ubsan" ]; then
  SANITIZER=undefined
fi
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# The obs mode measures overhead, so it must NOT run under a sanitizer:
# plain release-ish build tree, run the gate binaries directly.
if [ "$MODE" = "obs" ]; then
  BUILD="$ROOT/build-obs"
  cmake -B "$BUILD" -S "$ROOT"
  cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
    --target obs_overhead xbgp_stats xbgp_why
  # 120k routes keeps individual runs ~0.6s: the fast execution tier cut the
  # workload time ~30%, and shorter runs put the 2% budget under the
  # machine's scheduling-noise floor.
  "$BUILD/bench/obs_overhead" "${2:-120000}" "${3:-7}" "${4:-2.0}"
  "$BUILD/tools/xbgp_stats" --routes 120 --events 5
  # Flight-recorder gate: the two-router oscillation must be flagged
  # non-quiescent with a nonzero penalty, the steady RR/OV workloads must
  # converge quiescent with bounded convergence histograms.
  "$BUILD/tools/xbgp_why" --oracle
  exit 0
fi

# The fast-vm mode cross-checks the fast execution tier against the
# reference interpreter: the differential fuzz gate and the two-tier
# conformance table, built with computed-goto dispatch (the default) and
# with -DXBGP_SWITCH_DISPATCH=ON, then repeated inside the existing TSan
# and UBSan trees so data races and UB in the dispatch loop can't hide.
if [ "$MODE" = "fast-vm" ]; then
  NPROC="$(nproc 2>/dev/null || echo 4)"
  FILTER='DifferentialFuzz|DifferentialFault|ElisionOracle|Translator\.|Conformance'

  BUILD="$ROOT/build-fastvm"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_SWITCH_DISPATCH=OFF
  cmake --build "$BUILD" -j "$NPROC" \
    --target ebpf_differential_test ebpf_conformance_test
  ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

  BUILD="$ROOT/build-fastvm-switch"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_SWITCH_DISPATCH=ON
  cmake --build "$BUILD" -j "$NPROC" \
    --target ebpf_differential_test ebpf_conformance_test
  ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

  for SAN_MODE in thread ubsan; do
    SAN=thread
    [ "$SAN_MODE" = "ubsan" ] && SAN=undefined
    BUILD="$ROOT/build-san-$SAN_MODE"
    cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SAN"
    cmake --build "$BUILD" -j "$NPROC" --target ebpf_differential_test
    ctest --test-dir "$BUILD" --output-on-failure \
      -R 'DifferentialFuzz|DifferentialFault|ElisionOracle'
  done
  exit 0
fi

# The jit mode is the tier-2 gate: the three-tier differential fuzz (every
# tier must be fault-for-fault identical to the reference interpreter), the
# conformance table, and the fallback/decline suite, with the JIT engaged.
# It runs under both tier-1 dispatch strategies — the deopt path resumes in
# that interpreter, so both of its builds must agree with native code — and
# then under ASan and UBSan: generated code runs inside the sanitized
# process, so the shims, the deopt resume and every C++ edge of the
# trampoline ABI are fully instrumented.
if [ "$MODE" = "jit" ]; then
  NPROC="$(nproc 2>/dev/null || echo 4)"
  FILTER='DifferentialFuzz|DifferentialFault|ElisionOracle|JitFallback|JitProgramMeta|JitPreferredMode|Conformance'

  BUILD="$ROOT/build-fastvm"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_SWITCH_DISPATCH=OFF
  cmake --build "$BUILD" -j "$NPROC" \
    --target ebpf_differential_test ebpf_conformance_test ebpf_jit_test
  ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

  BUILD="$ROOT/build-fastvm-switch"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_SWITCH_DISPATCH=ON
  cmake --build "$BUILD" -j "$NPROC" \
    --target ebpf_differential_test ebpf_conformance_test ebpf_jit_test
  ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

  for SAN_MODE in address ubsan; do
    SAN=address
    [ "$SAN_MODE" = "ubsan" ] && SAN=undefined
    BUILD="$ROOT/build-san-$SAN_MODE"
    cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SAN"
    cmake --build "$BUILD" -j "$NPROC" --target ebpf_differential_test ebpf_jit_test
    ctest --test-dir "$BUILD" --output-on-failure \
      -R 'DifferentialFuzz|DifferentialFault|ElisionOracle|JitFallback'
  done
  exit 0
fi

# The static mode is the analyzer's own gate: the build must be warning-free
# under -Werror, every shipped extension must lint without errors AND without
# new diagnostics relative to the committed baseline (an analyzer change that
# starts flagging shipped code must update the baseline deliberately), and
# the elision-oracle differential tests must hold — no check the analyzer
# removes may ever change an observable outcome.
if [ "$MODE" = "static" ]; then
  NPROC="$(nproc 2>/dev/null || echo 4)"
  BUILD="$ROOT/build-static"
  cmake -B "$BUILD" -S "$ROOT" -DXBGP_WERROR=ON
  cmake --build "$BUILD" -j "$NPROC" --target xbgp_lint ebpf_differential_test

  OUT="$("$BUILD/tools/xbgp_lint" -q --all)" && STATUS=0 || STATUS=$?
  if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 3 ]; then
    printf '%s\n' "$OUT"
    echo "check.sh static: xbgp_lint reported errors (exit $STATUS)" >&2
    exit 1
  fi
  printf '%s\n' "$OUT" | grep -E '^[a-z_]+: [0-9]+ error' > "$BUILD/lint_summary.txt"
  if ! diff -u "$ROOT/tools/lint_baseline.txt" "$BUILD/lint_summary.txt"; then
    echo "check.sh static: lint findings diverge from tools/lint_baseline.txt" >&2
    echo "(new analyzer diagnostics on shipped extensions are regressions;" >&2
    echo " update the baseline only with the diagnostic's justification)" >&2
    exit 1
  fi

  ctest --test-dir "$BUILD" --output-on-failure -R 'ElisionOracle'
  exit 0
fi

# The export mode is the RibOut engine's differential gate: the per-peer
# export path is the oracle, and the same churn scenario (refresh, peer loss,
# reevaluation, origination, a runtime extension load that re-keys the peer
# groups) must produce bit-identical per-peer wire bytes and Adj-RIB-Out
# views on both hosts at parallelism 1, 2 and 8 — under TSan so the
# shared-group structures can't hide races, then under ASan so the interner's
# weak-table lifetime can't hide use-after-free.
if [ "$MODE" = "export" ]; then
  NPROC="$(nproc 2>/dev/null || echo 4)"
  for SAN in thread address; do
    BUILD="$ROOT/build-san-$SAN"
    cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SAN"
    cmake --build "$BUILD" -j "$NPROC" --target export_differential_test
    ctest --test-dir "$BUILD" --output-on-failure -R 'ExportDifferential'
  done
  exit 0
fi

# The soak mode runs the stateful session/config fuzzer's long-haul driver
# (tools/fuzz_soak) under both TSan and ASan at parallelism 8, then proves
# the gate can actually fail by injecting an unmodeled corrupt frame — that
# run exiting zero would mean the oracles have gone blind.
if [ "$MODE" = "soak" ]; then
  NPROC="$(nproc 2>/dev/null || echo 4)"
  BUDGET="${XBGP_SOAK_SECONDS:-60}"
  for SAN in thread address; do
    BUILD="$ROOT/build-san-$SAN"
    cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SAN"
    cmake --build "$BUILD" -j "$NPROC" --target fuzz_soak
    XBGP_SOAK_SECONDS="$BUDGET" "$BUILD/tools/fuzz_soak"
  done
  if XBGP_SOAK_SECONDS=2 "$ROOT/build-san-address/tools/fuzz_soak" --fault-inject; then
    echo "check.sh soak: fault-injection run passed — the oracles are blind" >&2
    exit 1
  fi
  echo "check.sh soak: fault injection detected as expected"
  exit 0
fi

BUILD="$ROOT/build-san-$(printf '%s' "$MODE" | tr ',' '-')"

cmake -B "$BUILD" -S "$ROOT" -DXBGP_SANITIZE="$SANITIZER"

case "$MODE" in
  thread)
    cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
      --target parallel_pipeline_test differential_host_test stateful_fuzz_test
    # The stateful fuzzer spins the parallelism-8 pipeline per episode; a
    # reduced episode budget keeps the TSan run in CI time (the full budget
    # runs unsanitized in stateful_fuzz_gate, and under sanitizers in the
    # soak gate).
    XBGP_FUZZ_EPISODES="${XBGP_FUZZ_EPISODES:-48}" \
      ctest --test-dir "$BUILD" --output-on-failure \
      -R 'ParallelPipeline|DifferentialHost|ShardWorkload|PrefixShard|StatefulFuzz'
    ;;
  ubsan)
    cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" \
      --target bgp_codec_fuzz_test robustness_test bgp_codec_test
    ctest --test-dir "$BUILD" --output-on-failure \
      -R 'BgpCodecFuzz|Fuzz\.|RouterRobustness|Codec\.|Framing\.|Decode\.'
    ;;
  *)
    cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"
    ctest --test-dir "$BUILD" --output-on-failure
    ;;
esac
