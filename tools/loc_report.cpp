// §2.1 in-text table analogue: lines of code per integration component.
//
// The paper quantifies the xBGP integration effort: 589 LoC added to
// FRRouting, 400 to BIRD, libxbgp itself at 432 lines of header code, plus
// 30/10 fix-up lines. This tool prints the equivalent inventory for this
// repository. Ours are full from-scratch implementations rather than
// patches to existing daemons, so the absolute numbers differ; what should
// (and does) match is the *ordering*: the FRR-like host needs more
// integration code than the BIRD-like one, because of representation
// conversion (see src/hosts/fir/fir_core.cpp).
//
// Usage: loc_report [source_root]   (default: compile-time source dir)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Component {
  const char* label;
  std::vector<const char*> dirs;
  const char* paper_note;
};

std::size_t count_lines(const fs::path& file) {
  std::ifstream in(file);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

std::size_t count_dir(const fs::path& dir) {
  std::size_t total = 0;
  if (!fs::exists(dir)) return 0;
  if (fs::is_regular_file(dir)) return count_lines(dir);
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".cpp" || ext == ".hpp") total += count_lines(entry.path());
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef XB_SOURCE_DIR
  fs::path root = argc > 1 ? argv[1] : XB_SOURCE_DIR;
#else
  fs::path root = argc > 1 ? argv[1] : ".";
#endif

  const std::vector<Component> components = {
      {"libxbgp (API+manifest+VMM)", {"src/xbgp"}, "paper: 432 header lines"},
      {"eBPF virtual machine", {"src/ebpf"}, "paper: reused ubpf"},
      {"Fir host (FRR-like)", {"src/hosts/fir"}, "paper: +589 LoC to FRRouting"},
      {"Wren host (BIRD-like)", {"src/hosts/wren"}, "paper: +400 LoC to BIRD"},
      {"shared engine", {"src/hosts/engine"}, "paper: the daemons themselves"},
      {"BGP substrate", {"src/bgp"}, "paper: provided by FRR/BIRD"},
      {"other substrates", {"src/net", "src/igp", "src/rpki", "src/util"}, "testbed/VMs in paper"},
      {"telemetry spine", {"src/obs"}, "paper: vendor show commands"},
      {"use-case extensions", {"src/extensions"}, "paper: C compiled to eBPF"},
      {"harness", {"src/harness"}, "paper: shell + RIS data"},
      {"stateful fuzzer", {"src/fuzz"}, "paper: none (robustness gate)"},
      {"tests", {"tests"}, ""},
      {"benchmarks", {"bench"}, ""},
      {"examples", {"examples"}, ""},
  };

  std::printf("%-30s %8s   %s\n", "component", "LoC", "paper counterpart");
  std::size_t grand = 0;
  std::size_t fir = 0, wren = 0;
  for (const auto& c : components) {
    std::size_t total = 0;
    for (const char* dir : c.dirs) total += count_dir(root / dir);
    std::printf("%-30s %8zu   %s\n", c.label, total, c.paper_note);
    grand += total;
    if (std::string(c.label).starts_with("Fir")) fir = total;
    if (std::string(c.label).starts_with("Wren")) wren = total;
  }
  std::printf("%-30s %8zu\n", "total", grand);

  // The paper's LoC figures measure *patch size against an existing daemon*;
  // ours measure whole-host implementation size, so the absolute numbers are
  // not comparable. The conversion-heavy part of Fir (fir_core.cpp) is the
  // analogue of FRRouting's larger integration patch.
  std::printf("\nFir host: %zu LoC, Wren host: %zu LoC (informational; see header)\n", fir,
              wren);

  // The typed error spine (docs/error_handling.md): counted inside the
  // substrate rows above, broken out here because it cross-cuts every layer.
  const std::size_t spine = count_dir(root / "src/util/status.hpp");
  std::printf("error spine (src/util/status.hpp): %zu LoC, shared by codec, "
              "sessions, engine and VMM\n", spine);

  // The fast execution tier (docs/execution_engine.md): part of the eBPF row
  // above, broken out because it is the perf-critical subset.
  std::size_t engine = 0;
  for (const char* f : {"src/ebpf/ir.hpp", "src/ebpf/translator.hpp", "src/ebpf/translator.cpp",
                        "src/ebpf/vm_fast.cpp"}) {
    engine += count_dir(root / f);
  }
  std::printf("execution engine (ir+translator+vm_fast): %zu LoC, tier 1 of the "
              "three-tier eBPF VM\n", engine);

  // The tier-2 x86-64 JIT (docs/execution_engine.md): also part of the eBPF
  // row, broken out because it is the native-code backend.
  std::size_t jit = 0;
  for (const char* f : {"src/ebpf/jit.hpp", "src/ebpf/jit.cpp", "src/ebpf/codebuf.hpp",
                        "src/ebpf/codebuf.cpp"}) {
    jit += count_dir(root / f);
  }
  std::printf("jit backend (jit+codebuf): %zu LoC, tier 2 of the three-tier "
              "eBPF VM\n", jit);

  // The control-plane flight recorder (docs/observability.md): part of the
  // telemetry-spine row above, broken out because it is the provenance /
  // convergence-oracle subset.
  std::size_t recorder = 0;
  for (const char* f : {"src/obs/eventlog.hpp", "src/obs/eventlog.cpp",
                        "src/obs/provenance.hpp", "src/obs/flap.hpp",
                        "src/obs/flap.cpp"}) {
    recorder += count_dir(root / f);
  }
  std::printf("flight recorder (eventlog+provenance+flap): %zu LoC, the route "
              "provenance and flap/divergence oracle\n", recorder);

  // The peer-group export engine (docs/export_engine.md): part of the shared
  // engine and BGP substrate rows above, broken out because it is the
  // export-path perf subsystem (RibOut groups + attribute interning + packed
  // UPDATE fan-out).
  std::size_t exporter = count_dir(root / "src/hosts/engine/update_builder.hpp") +
                         count_dir(root / "src/bgp/attr.hpp");
  std::printf("export engine (update_builder+attr interner): %zu LoC, RibOut "
              "fan-out core\n", exporter);
  return 0;
}
