// Synthetic Internet-table workload generation.
//
// Substitute for the paper's RIPE RIS snapshot (June 2020, 724k IPv4
// routes): a deterministic generator producing a full-table-shaped feed —
// realistic prefix-length mix, AS-path length distribution, optional MED /
// communities, and RIS-like packing of prefixes that share one attribute
// set into a single UPDATE. The Fig. 4 experiments measure *relative*
// slowdown, which depends on table size and attribute shape rather than the
// concrete prefixes, so a seeded synthetic table preserves the comparison
// (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/message.hpp"
#include "rpki/loader.hpp"
#include "util/ip.hpp"

namespace xb::harness {

struct WorkloadParams {
  std::size_t route_count = 100'000;
  std::uint64_t seed = 2020'06;
  /// Nexthop carried in the generated routes (the feeding router's address
  /// for iBGP, rewritten by the DUT for eBGP).
  util::Ipv4Addr next_hop = util::Ipv4Addr(0x0A000001);  // 10.0.0.1
  /// Leftmost AS of every path (the feeder's eBGP neighbour).
  std::uint32_t first_hop_asn = 2914;
  double med_probability = 0.25;
  double communities_probability = 0.5;
  /// Mean number of prefixes sharing one attribute set (RIS tables pack
  /// multiple NLRI per UPDATE; geometric distribution around this mean).
  double mean_group_size = 3.0;
  /// Attach LOCAL_PREF (iBGP feeds carry it; eBGP feeds must not).
  bool with_local_pref = false;
};

struct Workload {
  /// Pre-encoded UPDATE wire messages, ready to feed through a session.
  std::vector<std::vector<std::uint8_t>> updates;
  /// Every announced (prefix, origin AS), e.g. for ROA-set construction.
  std::vector<rpki::AnnouncedRoute> routes;
  std::size_t prefix_count = 0;
};

[[nodiscard]] Workload make_workload(const WorkloadParams& params);

/// A workload re-packed for the parallel UPDATE pipeline: every message in
/// `batches[s]` carries only NLRI whose util::prefix_shard() is `s`, so a
/// DUT running with `parallelism == shards` never splits a message across
/// shards. Attribute groups and per-shard announcement order are preserved.
struct ShardedWorkload {
  std::size_t shards = 1;
  /// Pre-encoded UPDATE wire messages, one batch per shard.
  std::vector<std::vector<std::vector<std::uint8_t>>> batches;
  std::vector<rpki::AnnouncedRoute> routes;
  std::size_t prefix_count = 0;

  /// The batches merged round-robin into one feed (per-shard order kept) —
  /// what a single session delivers to a sharded DUT.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> interleaved() const;
};

/// Splits every UPDATE of `base` by prefix shard and re-encodes; messages
/// whose NLRI all land in one shard are passed through byte-identically.
[[nodiscard]] ShardedWorkload shard_workload(const Workload& base, std::size_t shards);

/// Packs ROAs into the "roa_v1" xtra blob format (xbgp::RoaEntry array).
[[nodiscard]] std::vector<std::uint8_t> pack_roa_blob(const std::vector<rpki::Roa>& roas);

}  // namespace xb::harness
