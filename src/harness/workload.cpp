#include "harness/workload.hpp"

#include <cstring>
#include <stdexcept>

#include "bgp/aspath.hpp"
#include "bgp/codec.hpp"
#include "util/rng.hpp"
#include "xbgp/api.hpp"

namespace xb::harness {

namespace {

/// Hands out non-overlapping prefixes with a full-table-like length mix
/// (heavily /24 with /19../23 and a tail of shorter aggregates). Allocation
/// advances a cursor, so uniqueness holds by construction; reserved /
/// special-use ranges are skipped (a real table never announces them, and
/// standard import policy would drop them).
class PrefixAllocator {
 public:
  explicit PrefixAllocator(util::Rng& rng) : rng_(rng) {}

  util::Prefix next() {
    const double draw = rng_.unit();
    std::uint8_t len;
    if (draw < 0.55) len = 24;
    else if (draw < 0.70) len = 23;
    else if (draw < 0.80) len = 22;
    else if (draw < 0.87) len = 21;
    else if (draw < 0.92) len = 20;
    else if (draw < 0.96) len = 19;
    else if (draw < 0.985) len = 18;
    else len = 16;

    const std::uint32_t size = 1u << (32 - len);
    std::uint32_t aligned = (cursor_ + size - 1) & ~(size - 1);
    aligned = skip_reserved(aligned, size);
    // 224.0.0.0 onwards is multicast/reserved: the unicast space is spent.
    if (aligned >= 0xE0000000u || aligned + size - 1 >= 0xE0000000u) {
      throw std::runtime_error("workload generator exhausted unicast IPv4 space");
    }
    cursor_ = aligned + size;
    return util::Prefix(util::Ipv4Addr(aligned), len);
  }

 private:
  /// Bumps the candidate block past any reserved range it touches.
  static std::uint32_t skip_reserved(std::uint32_t aligned, std::uint32_t size) {
    struct Range {
      std::uint32_t first;
      std::uint32_t last;
    };
    // Special-use IPv4 space (RFC 6890 selection, ascending, plus class D/E).
    static constexpr Range kReserved[] = {
        {0x00000000, 0x00FFFFFF},  // 0.0.0.0/8
        {0x0A000000, 0x0AFFFFFF},  // 10.0.0.0/8
        {0x64400000, 0x647FFFFF},  // 100.64.0.0/10
        {0x7F000000, 0x7FFFFFFF},  // 127.0.0.0/8
        {0xA9FE0000, 0xA9FEFFFF},  // 169.254.0.0/16
        {0xAC100000, 0xAC1FFFFF},  // 172.16.0.0/12
        {0xC0000000, 0xC00000FF},  // 192.0.0.0/24
        {0xC0A80000, 0xC0A8FFFF},  // 192.168.0.0/16
        {0xC6120000, 0xC613FFFF},  // 198.18.0.0/15
    };
    bool moved = true;
    while (moved) {
      moved = false;
      for (const auto& range : kReserved) {
        if (aligned <= range.last && aligned + size - 1 >= range.first) {
          aligned = ((range.last + 1) + size - 1) & ~(size - 1);
          moved = true;
        }
      }
    }
    return aligned;
  }

  util::Rng& rng_;
  std::uint32_t cursor_ = 0x14000000;  // 20.0.0.0
};

}  // namespace

Workload make_workload(const WorkloadParams& params) {
  util::Rng rng(params.seed);
  PrefixAllocator alloc(rng);
  Workload out;
  out.routes.reserve(params.route_count);

  const double continue_group = params.mean_group_size > 1.0
                                    ? 1.0 - 1.0 / params.mean_group_size
                                    : 0.0;

  std::size_t made = 0;
  while (made < params.route_count) {
    // One attribute set per group.
    bgp::AttributeSet attrs;
    const double origin_draw = rng.unit();
    attrs.put(bgp::make_origin(origin_draw < 0.6   ? bgp::Origin::kIgp
                               : origin_draw < 0.8 ? bgp::Origin::kIncomplete
                                                   : bgp::Origin::kEgp));
    // AS path: feeder's neighbour first, then 0-5 further hops.
    std::vector<bgp::Asn> path{params.first_hop_asn};
    const std::size_t extra_hops = rng.below(6);
    for (std::size_t i = 0; i < extra_hops; ++i) {
      path.push_back(static_cast<bgp::Asn>(1000 + rng.below(60'000)));
    }
    attrs.put(bgp::AsPath(std::move(path)).to_attr());
    attrs.put(bgp::make_next_hop(params.next_hop));
    if (rng.chance(params.med_probability)) {
      attrs.put(bgp::make_med(static_cast<std::uint32_t>(rng.below(1000))));
    }
    if (params.with_local_pref) attrs.put(bgp::make_local_pref(100));
    if (rng.chance(params.communities_probability)) {
      std::uint32_t communities[3];
      const std::size_t n = 1 + rng.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        communities[i] = static_cast<std::uint32_t>((65000u << 16) | rng.below(1000));
      }
      attrs.put(bgp::make_communities(std::span(communities, n)));
    }

    bgp::UpdateMessage update;
    update.attrs = std::move(attrs);
    const bgp::Asn origin_as = [&update] {
      auto path_attr = update.attrs.find(bgp::attr_code::kAsPath);
      auto parsed = bgp::AsPath::from_attr(*path_attr);
      return parsed->origin_asn().value_or(0);
    }();

    // Geometric group size (at least 1 prefix, capped by remaining budget).
    do {
      const util::Prefix prefix = alloc.next();
      update.nlri.push_back(prefix);
      out.routes.push_back(rpki::AnnouncedRoute{prefix, origin_as});
      ++made;
    } while (made < params.route_count && rng.unit() < continue_group);

    out.updates.push_back(bgp::encode_update(update));
  }
  out.prefix_count = made;
  return out;
}

ShardedWorkload shard_workload(const Workload& base, std::size_t shards) {
  if (shards == 0) shards = 1;
  ShardedWorkload out;
  out.shards = shards;
  out.batches.resize(shards);
  out.routes = base.routes;
  out.prefix_count = base.prefix_count;

  std::vector<std::vector<util::Prefix>> nlri_of(shards);
  std::vector<std::vector<util::Prefix>> withdrawn_of(shards);
  for (const auto& wire : base.updates) {
    const auto frame = bgp::try_frame(wire);
    if (!frame.has_value() || frame->type != bgp::MessageType::kUpdate) {
      throw std::runtime_error("shard_workload: workload holds a non-UPDATE message");
    }
    auto decoded = bgp::decode_update(frame->body);
    if (!decoded.has_value()) {
      throw std::runtime_error("shard_workload: undecodable UPDATE in workload");
    }
    bgp::UpdateMessage update = *std::move(decoded);

    for (auto& list : nlri_of) list.clear();
    for (auto& list : withdrawn_of) list.clear();
    for (const auto& prefix : update.nlri) {
      nlri_of[util::prefix_shard(prefix, shards)].push_back(prefix);
    }
    for (const auto& prefix : update.withdrawn) {
      withdrawn_of[util::prefix_shard(prefix, shards)].push_back(prefix);
    }

    for (std::size_t s = 0; s < shards; ++s) {
      if (nlri_of[s].empty() && withdrawn_of[s].empty()) continue;
      bgp::UpdateMessage part;
      part.withdrawn = withdrawn_of[s];
      part.nlri = nlri_of[s];
      if (!part.nlri.empty()) part.attrs = update.attrs;
      out.batches[s].push_back(bgp::encode_update(part));
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> ShardedWorkload::interleaved() const {
  std::vector<std::vector<std::uint8_t>> out;
  std::size_t total = 0;
  for (const auto& batch : batches) total += batch.size();
  out.reserve(total);
  std::vector<std::size_t> cursor(batches.size(), 0);
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (std::size_t s = 0; s < batches.size(); ++s) {
      if (cursor[s] < batches[s].size()) {
        out.push_back(batches[s][cursor[s]++]);
        advanced = true;
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> pack_roa_blob(const std::vector<rpki::Roa>& roas) {
  std::vector<std::uint8_t> blob(roas.size() * sizeof(xbgp::RoaEntry));
  std::uint8_t* cursor = blob.data();
  for (const auto& roa : roas) {
    xbgp::RoaEntry entry;
    entry.addr = roa.prefix.addr().value();
    entry.prefix_len = roa.prefix.length();
    entry.max_len = roa.max_length;
    entry.origin = roa.origin;
    std::memcpy(cursor, &entry, sizeof(entry));
    cursor += sizeof(entry);
  }
  return blob;
}

}  // namespace xb::harness
