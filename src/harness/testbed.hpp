// The Fig. 3 experimental setup.
//
//     [ upstream ] --L1--> [ DUT ] --L2--> [ downstream ]
//
// The upstream router feeds a full table over L1; the DUT processes it and
// re-advertises over L2; we measure "the delay between the announcement of
// the first prefix by the upstream router and the reception of the last
// prefix ... on the downstream router" (§3.2). L1/L2 are iBGP for the route
// reflection experiment and eBGP for origin validation (§3.4).
//
// Upstream and downstream are lightweight speakers (a real session + a
// pre-encoded feed / a prefix-counting sink); the DUT is a full Fir or Wren
// router — the implementation under test, exactly as in the paper.
#pragma once

#include <chrono>
#include <memory>
#include <stdexcept>

#include "bgp/peer_session.hpp"
#include "harness/workload.hpp"
#include "net/channel.hpp"
#include "net/event_loop.hpp"

namespace xb::harness {

/// Feeds pre-encoded UPDATE messages through an established session.
class Feeder {
 public:
  Feeder(net::EventLoop& loop, net::Duplex::End end, bgp::PeerSession::Config config)
      : session_(std::make_unique<bgp::PeerSession>(loop, end, config)) {}

  void start() { session_->start(); }
  [[nodiscard]] bool established() const { return session_->established(); }

  void send_all(const std::vector<std::vector<std::uint8_t>>& updates) {
    for (const auto& wire : updates) session_->send_bytes(wire);
  }

  [[nodiscard]] bgp::PeerSession& session() { return *session_; }

 private:
  std::unique_ptr<bgp::PeerSession> session_;
};

/// Counts prefixes received through an established session.
class Sink {
 public:
  Sink(net::EventLoop& loop, net::Duplex::End end, bgp::PeerSession::Config config)
      : session_(std::make_unique<bgp::PeerSession>(loop, end, config)) {
    session_->on_update = [this](bgp::UpdateMessage&& update, const bgp::UpdateNotes&,
                                 std::span<const std::uint8_t> raw) {
      prefixes_ += update.nlri.size();
      withdrawals_ += update.withdrawn.size();
      if (record_raw_) raw_.emplace_back(raw.begin(), raw.end());
      last_update_ = std::move(update);
    };
  }

  void start() { session_->start(); }
  [[nodiscard]] bool established() const { return session_->established(); }
  [[nodiscard]] std::uint64_t prefixes() const noexcept { return prefixes_; }
  [[nodiscard]] std::uint64_t withdrawals() const noexcept { return withdrawals_; }
  /// Most recently received UPDATE (attribute checks in tests).
  [[nodiscard]] const bgp::UpdateMessage& last_update() const { return last_update_; }
  [[nodiscard]] bgp::PeerSession& session() { return *session_; }

  /// Records every received UPDATE's raw wire bytes (differential gates
  /// compare the exact byte stream, not the decoded form).
  void record_raw(bool on) { record_raw_ = on; }
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& raw() const { return raw_; }

 private:
  std::unique_ptr<bgp::PeerSession> session_;
  std::uint64_t prefixes_ = 0;
  std::uint64_t withdrawals_ = 0;
  bool record_raw_ = false;
  std::vector<std::vector<std::uint8_t>> raw_;
  bgp::UpdateMessage last_update_;
};

/// Addressing plan shared by every Fig. 3 instantiation.
struct TestbedPlan {
  bool ibgp = true;  // iBGP on L1/L2 (route reflection) or eBGP (OV)
  bgp::Asn dut_asn = 65000;
  bgp::Asn upstream_asn = 65000;    // overridden for eBGP below
  bgp::Asn downstream_asn = 65000;
  util::Ipv4Addr upstream_addr = util::Ipv4Addr(10, 0, 0, 1);
  util::Ipv4Addr dut_addr = util::Ipv4Addr(10, 0, 0, 2);
  util::Ipv4Addr downstream_addr = util::Ipv4Addr(10, 0, 0, 3);

  static TestbedPlan ibgp_plan() { return TestbedPlan{}; }
  static TestbedPlan ebgp_plan() {
    TestbedPlan plan;
    plan.ibgp = false;
    plan.upstream_asn = 65101;
    plan.downstream_asn = 65102;
    return plan;
  }
};

/// Wires upstream/feeder -> DUT -> downstream/sink around a caller-provided
/// DUT router and runs the measurement.
template <typename Dut>
class Testbed {
 public:
  Testbed(net::EventLoop& loop, Dut& dut, const TestbedPlan& plan)
      : loop_(loop),
        dut_(dut),
        l1_(loop, /*latency=*/0),
        l2_(loop, /*latency=*/0) {
    // DUT side of both links.
    dut_.add_peer(l1_.b(), {.name = "upstream",
                            .asn = plan.upstream_asn,
                            .address = plan.upstream_addr,
                            .rr_client = true});
    dut_.add_peer(l2_.a(), {.name = "downstream",
                            .asn = plan.downstream_asn,
                            .address = plan.downstream_addr,
                            .rr_client = true});

    bgp::PeerSession::Config up;
    up.local_asn = plan.upstream_asn;
    up.peer_asn = plan.dut_asn;
    up.local_id = 0x0A000001;
    up.local_addr = plan.upstream_addr;
    up.peer_addr = plan.dut_addr;
    feeder_ = std::make_unique<Feeder>(loop, l1_.a(), up);

    bgp::PeerSession::Config down;
    down.local_asn = plan.downstream_asn;
    down.peer_asn = plan.dut_asn;
    down.local_id = 0x0A000003;
    down.local_addr = plan.downstream_addr;
    down.peer_addr = plan.dut_addr;
    sink_ = std::make_unique<Sink>(loop, l2_.b(), down);
  }

  /// Establishes all sessions (virtual time advances by `settle` ns).
  void establish(net::Duration settle = 1'000'000'000ull) {
    dut_.start();
    feeder_->start();
    sink_->start();
    loop_.run_until(loop_.now() + settle);
    if (!feeder_->established() || !sink_->established()) {
      throw std::runtime_error("testbed sessions failed to establish");
    }
  }

  /// Feeds the workload and returns the wall-clock seconds between the first
  /// announcement and the sink having received `expected` prefixes.
  double run(const Workload& workload, std::uint64_t expected) {
    const auto start = std::chrono::steady_clock::now();
    feeder_->send_all(workload.updates);
    loop_.run_until(loop_.now() + 1'000'000'000ull);
    const auto stop = std::chrono::steady_clock::now();
    if (sink_->prefixes() < expected) {
      throw std::runtime_error("sink received " + std::to_string(sink_->prefixes()) +
                               " prefixes, expected " + std::to_string(expected));
    }
    return std::chrono::duration<double>(stop - start).count();
  }

  [[nodiscard]] Feeder& feeder() { return *feeder_; }
  [[nodiscard]] Sink& sink() { return *sink_; }
  [[nodiscard]] Dut& dut() { return dut_; }

 private:
  net::EventLoop& loop_;
  Dut& dut_;
  net::Duplex l1_;
  net::Duplex l2_;
  std::unique_ptr<Feeder> feeder_;
  std::unique_ptr<Sink> sink_;
};

}  // namespace xb::harness
