// Small statistics helpers for the benchmark harness (boxplot summaries,
// as the paper's Fig. 4 reports over 15 runs).
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace xb::harness {

struct BoxPlot {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
};

/// Linear-interpolation quantile over a sorted sample.
inline double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty sample");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

inline BoxPlot boxplot(std::vector<double> sample) {
  if (sample.empty()) throw std::invalid_argument("boxplot of empty sample");
  std::sort(sample.begin(), sample.end());
  BoxPlot out;
  out.min = sample.front();
  out.max = sample.back();
  out.q1 = quantile_sorted(sample, 0.25);
  out.median = quantile_sorted(sample, 0.5);
  out.q3 = quantile_sorted(sample, 0.75);
  double sum = 0;
  for (double v : sample) sum += v;
  out.mean = sum / static_cast<double>(sample.size());
  return out;
}

/// Per-run relative performance impact (%) against the reference median —
/// the quantity Fig. 4 plots for extension code vs native code.
inline std::vector<double> relative_impact(const std::vector<double>& runs,
                                           double reference_median) {
  std::vector<double> out;
  out.reserve(runs.size());
  for (double v : runs) out.push_back((v / reference_median - 1.0) * 100.0);
  return out;
}

}  // namespace xb::harness
