// Dataset behind Fig. 1: "Delay between the publication of the first IETF
// draft and the published version of the last 40 BGP RFCs".
//
// The entries approximate public IETF datatracker metadata (first working-
// group draft -> RFC publication) for 40 BGP-related RFCs up to mid-2020.
// Dates carry month precision; the resulting CDF reproduces the paper's
// shape: median ≈ 3.5 years, tail reaching ten years.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace xb::harness {

struct RfcEntry {
  int rfc = 0;
  const char* title = "";
  int draft_year = 0;
  int draft_month = 0;
  int rfc_year = 0;
  int rfc_month = 0;

  [[nodiscard]] double delay_years() const {
    return (rfc_year - draft_year) + (rfc_month - draft_month) / 12.0;
  }
};

/// The 40-entry dataset.
[[nodiscard]] std::span<const RfcEntry> idr_rfc_dataset();

/// Sorted delays (the CDF's x values).
[[nodiscard]] std::vector<double> standardization_delays_sorted();

}  // namespace xb::harness
