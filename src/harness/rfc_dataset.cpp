#include "harness/rfc_dataset.hpp"

#include <algorithm>
#include <array>

namespace xb::harness {

namespace {
constexpr std::array<RfcEntry, 40> kDataset{{
    {4271, "A Border Gateway Protocol 4 (BGP-4)", 1997, 9, 2006, 1},
    {4272, "BGP Security Vulnerabilities Analysis", 2002, 10, 2006, 1},
    {4273, "Definitions of Managed Objects for BGP-4", 1998, 2, 2006, 1},
    {4360, "BGP Extended Communities Attribute", 2000, 3, 2006, 2},
    {4456, "BGP Route Reflection", 2005, 4, 2006, 4},
    {4486, "Subcodes for BGP Cease Notification Message", 2003, 1, 2006, 4},
    {4724, "Graceful Restart Mechanism for BGP", 2000, 11, 2007, 1},
    {4760, "Multiprotocol Extensions for BGP-4", 2005, 1, 2007, 1},
    {4893, "BGP Support for Four-octet AS Number Space", 2001, 5, 2007, 5},
    {5004, "Avoid BGP Best Path Transitions from One External to Another", 2004, 6, 2007, 9},
    {5065, "Autonomous System Confederations for BGP", 2005, 6, 2007, 8},
    {5291, "Outbound Route Filtering Capability for BGP-4", 1998, 8, 2008, 8},
    {5292, "Address-Prefix-Based Outbound Route Filter for BGP-4", 2002, 4, 2008, 8},
    {5396, "Textual Representation of AS Numbers", 2006, 11, 2008, 12},
    {5398, "AS Number Reservation for Documentation Use", 2006, 12, 2008, 12},
    {5492, "Capabilities Advertisement with BGP-4", 2006, 10, 2009, 2},
    {5575, "Dissemination of Flow Specification Rules", 2004, 5, 2009, 8},
    {5668, "4-Octet AS Specific BGP Extended Community", 2006, 6, 2009, 10},
    {6286, "AS-Wide Unique BGP Identifier for BGP-4", 2003, 12, 2011, 6},
    {6368, "Internal BGP as the PE-CE Protocol", 2008, 7, 2011, 9},
    {6472, "Recommendation for Not Using AS_SET and AS_CONFED_SET", 2010, 6, 2011, 12},
    {6608, "Subcodes for BGP Finite State Machine Error", 2010, 11, 2012, 5},
    {6774, "Distribution of Diverse BGP Paths", 2010, 10, 2012, 11},
    {6793, "BGP Support for Four-Octet AS Number Space (bis)", 2010, 11, 2012, 12},
    {6810, "The RPKI to Router Protocol", 2009, 10, 2013, 1},
    {6811, "BGP Prefix Origin Validation", 2009, 11, 2013, 1},
    {7311, "Accumulated IGP Metric Attribute for BGP", 2010, 3, 2014, 8},
    {7313, "Enhanced Route Refresh Capability for BGP-4", 2010, 11, 2014, 7},
    {7606, "Revised Error Handling for BGP UPDATE Messages", 2011, 8, 2015, 8},
    {7607, "Codification of AS 0 Processing", 2014, 8, 2015, 8},
    {7705, "Autonomous System Migration Mechanisms", 2014, 1, 2015, 11},
    {7911, "Advertisement of Multiple Paths in BGP", 2010, 4, 2016, 7},
    {7947, "Internet Exchange BGP Route Server", 2015, 1, 2016, 9},
    {7999, "BLACKHOLE Community", 2015, 10, 2016, 10},
    {8092, "BGP Large Communities Attribute", 2016, 9, 2017, 2},
    {8097, "BGP Prefix Origin Validation State Extended Community", 2012, 4, 2017, 3},
    {8203, "BGP Administrative Shutdown Communication", 2016, 11, 2017, 7},
    {8205, "BGPsec Protocol Specification", 2011, 10, 2017, 9},
    {8212, "Default External BGP Route Propagation Behavior", 2016, 1, 2017, 7},
    {8654, "Extended Message Support for BGP", 2015, 7, 2019, 10},
}};
}  // namespace

std::span<const RfcEntry> idr_rfc_dataset() { return kDataset; }

std::vector<double> standardization_delays_sorted() {
  std::vector<double> delays;
  delays.reserve(kDataset.size());
  for (const auto& e : kDataset) delays.push_back(e.delay_years());
  std::sort(delays.begin(), delays.end());
  return delays;
}

}  // namespace xb::harness
