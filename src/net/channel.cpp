#include "net/channel.hpp"

namespace xb::net {

void Pipe::write(std::span<const std::uint8_t> data) {
  if (closed_) return;  // writes after close are silently dropped, like TCP RST-drop
  bytes_written_ += data.size();
  in_flight_.insert(in_flight_.end(), data.begin(), data.end());
  if (delivery_pending_) return;
  delivery_pending_ = true;
  loop_.schedule(latency_, [this] {
    delivery_pending_ = false;
    readable_.insert(readable_.end(), in_flight_.begin(), in_flight_.end());
    in_flight_.clear();
    if (on_readable_ && !readable_.empty()) on_readable_();
  });
}

std::vector<std::uint8_t> Pipe::read_all() {
  std::vector<std::uint8_t> out;
  out.swap(readable_);
  return out;
}

void Pipe::close() {
  if (closed_) return;
  loop_.schedule(latency_, [this] {
    closed_ = true;
    if (on_readable_) on_readable_();
  });
}

}  // namespace xb::net
