#include "net/event_loop.hpp"

#include <stdexcept>

namespace xb::net {

std::size_t EventLoop::run_until_idle(std::size_t max_events) {
  std::size_t ran = 0;
  while (!queue_.empty()) {
    if (ran >= max_events) throw std::runtime_error("event loop livelock guard tripped");
    // priority_queue::top() is const; the task must be moved out before pop.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.task();
    ++ran;
  }
  return ran;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.task();
    ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

}  // namespace xb::net
