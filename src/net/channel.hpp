// In-process byte-stream channels standing in for TCP connections.
//
// A Pipe is one direction of an established connection: a reliable, ordered
// byte stream with configurable one-way latency. A Duplex bundles two pipes,
// giving each endpoint a read side and a write side — the transport under
// every BGP session in the testbed (paper Fig. 3 runs these over virtual
// links between VMs; relative timing is preserved in-process).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/event_loop.hpp"

namespace xb::net {

/// One direction of a connection. Written bytes become readable after
/// `latency` of virtual time; the reader's callback fires once per delivery.
class Pipe {
 public:
  Pipe(EventLoop& loop, Duration latency) : loop_(loop), latency_(latency) {}

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// Appends bytes to the stream. Delivery is scheduled on the loop.
  void write(std::span<const std::uint8_t> data);

  /// Drains everything currently readable.
  [[nodiscard]] std::vector<std::uint8_t> read_all();

  /// Registers the reader-side notification. Replaces any previous callback.
  void on_readable(std::function<void()> cb) { on_readable_ = std::move(cb); }

  [[nodiscard]] std::size_t readable_bytes() const noexcept { return readable_.size(); }
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  /// Half-close: readers see remaining bytes, then EOF.
  void close();

  /// Total bytes ever written (for traffic accounting in benches).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }

 private:
  EventLoop& loop_;
  Duration latency_;
  std::vector<std::uint8_t> readable_;
  std::function<void()> on_readable_;
  bool closed_ = false;
  bool delivery_pending_ = false;
  std::vector<std::uint8_t> in_flight_;
  std::uint64_t bytes_written_ = 0;
};

/// A bidirectional connection between endpoints A and B.
class Duplex {
 public:
  Duplex(EventLoop& loop, Duration latency)
      : a_to_b_(loop, latency), b_to_a_(loop, latency) {}

  /// Endpoint view: write() feeds the peer, read side is our inbound pipe.
  struct End {
    Pipe* out;
    Pipe* in;
    void write(std::span<const std::uint8_t> data) { out->write(data); }
    [[nodiscard]] std::vector<std::uint8_t> read_all() { return in->read_all(); }
    void on_readable(std::function<void()> cb) { in->on_readable(std::move(cb)); }
    void close() { out->close(); }
    [[nodiscard]] bool peer_closed() const { return in->closed() && in->readable_bytes() == 0; }
  };

  [[nodiscard]] End a() { return End{&a_to_b_, &b_to_a_}; }
  [[nodiscard]] End b() { return End{&b_to_a_, &a_to_b_}; }

 private:
  Pipe a_to_b_;
  Pipe b_to_a_;
};

}  // namespace xb::net
