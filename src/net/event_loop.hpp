// Deterministic single-threaded event loop with virtual time.
//
// The testbed runs every router in one process on one loop: all I/O and
// protocol timers are callbacks ordered by (virtual time, sequence number),
// so a given seed and topology always replays identically. Virtual time only
// advances when the loop runs a scheduled event — never with wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xb::net {

using TimePoint = std::uint64_t;  // nanoseconds of virtual time
using Duration = std::uint64_t;

class EventLoop {
 public:
  using Task = std::function<void()>;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Runs `task` after `delay` ns of virtual time. FIFO among equal times.
  void schedule(Duration delay, Task task) {
    queue_.push(Event{now_ + delay, seq_++, std::move(task)});
  }

  /// Runs `task` at the current virtual time, after already-queued events
  /// for this instant.
  void post(Task task) { schedule(0, std::move(task)); }

  /// Processes events until the queue drains. Returns the number of events
  /// run. Throws std::runtime_error after `max_events` as a livelock guard.
  std::size_t run_until_idle(std::size_t max_events = 100'000'000);

  /// Processes events with time <= deadline; leaves later events queued.
  std::size_t run_until(TimePoint deadline);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace xb::net
