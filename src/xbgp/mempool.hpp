// Extension memory: ephemeral per-invocation arenas and persistent
// per-program pools (paper §2.1, "extension utilities").
//
// Each extension program gets its own memory spaces; isolation between
// programs and from the host is enforced by the eBPF region table — only a
// program's own arenas are ever registered with its VM.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace xb::xbgp {

/// Bump allocator over a fixed buffer. Reset between invocations — the paper:
/// "ephemeral memory is automatically freed when the extension code
/// terminates its execution".
class Arena {
 public:
  explicit Arena(std::size_t capacity) : buf_(capacity) {}

  /// 8-byte-aligned allocation; nullptr when exhausted.
  void* alloc(std::size_t size) {
    const std::size_t aligned = (size + 7) & ~std::size_t{7};
    if (aligned > buf_.size() - used_) return nullptr;
    void* out = buf_.data() + used_;
    used_ += aligned;
    return out;
  }

  /// Copies `data` into the arena; nullptr when exhausted.
  void* store(const void* data, std::size_t size) {
    void* out = alloc(size);
    if (out != nullptr && size > 0) std::memcpy(out, data, size);
    return out;
  }

  void reset() noexcept { used_ = 0; }

  [[nodiscard]] void* base() noexcept { return buf_.data(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t used_ = 0;
};

/// Persistent keyed allocations shared by the extension codes of one xBGP
/// program ("extension code belonging to the same xBGP program can share a
/// dedicated persistent memory space", §2.1). Backed by one arena so a
/// single region registration makes every allocation reachable.
class SharedPool {
 public:
  explicit SharedPool(std::size_t capacity) : arena_(capacity) {}

  /// Allocates `size` zeroed bytes under `key`; returns the existing block
  /// if the key is already allocated (with matching or larger size), or
  /// nullptr when out of memory.
  void* get_or_create(std::uint64_t key, std::size_t size) {
    auto it = blocks_.find(key);
    if (it != blocks_.end()) return it->second.size >= size ? it->second.ptr : nullptr;
    void* p = arena_.alloc(size);
    if (p == nullptr) return nullptr;
    std::memset(p, 0, size);
    blocks_.emplace(key, Block{p, size});
    return p;
  }

  /// Looks up an existing block; nullptr if the key was never allocated.
  [[nodiscard]] void* get(std::uint64_t key) const {
    auto it = blocks_.find(key);
    return it == blocks_.end() ? nullptr : it->second.ptr;
  }

  [[nodiscard]] Arena& arena() noexcept { return arena_; }

 private:
  struct Block {
    void* ptr;
    std::size_t size;
  };
  Arena arena_;
  std::unordered_map<std::uint64_t, Block> blocks_;
};

/// Host-side hash map owned by one extension program and reachable only
/// through the map_update / map_lookup helpers. Keys are 128-bit (two u64
/// words); the value 0 is reserved to signal "absent" on lookup.
class ExtMap {
 public:
  void update(std::uint64_t k1, std::uint64_t k2, std::uint64_t value) {
    map_[Key{k1, k2}] = value;
  }

  [[nodiscard]] std::uint64_t lookup(std::uint64_t k1, std::uint64_t k2) const {
    auto it = map_.find(Key{k1, k2});
    return it == map_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  struct Key {
    std::uint64_t k1;
    std::uint64_t k2;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // splitmix-style mix of both words.
      std::uint64_t x = k.k1 ^ (k.k2 * 0x9E3779B97F4A7C15ull);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  std::unordered_map<Key, std::uint64_t, KeyHash> map_;
};

}  // namespace xb::xbgp
