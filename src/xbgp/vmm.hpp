// The Virtual Machine Manager — the heart of libxbgp (paper §2.1).
//
// The VMM attaches verified extension bytecodes to insertion points, exposes
// the xBGP API to their virtual machines, and multiplexes execution:
//
//   "It first checks if there are attached extension bytecodes to the called
//    xBGP operation. If not, the VMM executes the default function provided
//    by the implementation. Otherwise, it runs the first extension code
//    mentioned in the manifest. Two outcomes are possible. First, the
//    extension code provides a result ... Second, the extension code
//    delegates the outcome to another one by calling next(). ... While
//    running extension codes, the VMM also monitors their execution and
//    stops them in case of error. In this case, it falls back to the default
//    function and notifies the host implementation of the error."
//
// Threading model (sharded pipeline): the VMM owns `execution_contexts`
// independent execution slots. Each slot holds its own interpreter instance
// per attached program (instantiated from the one verified bytecode), its
// own ephemeral arena, and its own Stats counters, so concurrent
// execute_on() calls on *distinct* slots never share mutable state. The
// persistent per-group structures (shared pool, helper maps) remain shared
// across slots and are mutex-guarded inside the helpers. load(),
// unload_all(), stats() and reset_stats() are serial-phase operations: call
// them only while no slot is executing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ebpf/analyzer.hpp"
#include "ebpf/ir.hpp"
#include "ebpf/jit.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"
#include "obs/telemetry.hpp"
#include "xbgp/context.hpp"
#include "xbgp/host_api.hpp"
#include "xbgp/manifest.hpp"
#include "xbgp/mempool.hpp"

namespace xb::xbgp {

class Vmm {
 public:
  struct Options {
    std::size_t arena_size = 64 * 1024;          // ephemeral, per invocation
    std::size_t shared_pool_size = 1024 * 1024;  // persistent, per program
    std::uint64_t instruction_budget = 1'000'000;
    /// Budget for kInit programs (they may build large tables).
    std::uint64_t init_instruction_budget = 200'000'000;
    /// Independent execution slots (one per pipeline shard/worker). Slot 0
    /// is the default used by the serial execute() path.
    std::size_t execution_contexts = 1;
    /// Execution tier for loaded programs: the JIT (tier 2) where the host
    /// supports it, the fast interpreter (tier 1) otherwise. Tier 0 stays
    /// available for cross-checking, selectable per program via
    /// set_exec_mode(). Identical observable behaviour on every tier; a
    /// declined JIT compilation silently degrades that program to tier 1.
    ebpf::ExecMode exec_mode = ebpf::Jit::preferred_exec_mode();
  };

  struct Stats {
    std::uint64_t invocations = 0;         // execute() calls with a chain attached
    std::uint64_t extension_handled = 0;   // a program returned a result
    std::uint64_t next_yields = 0;         // next() delegations
    std::uint64_t faults = 0;              // programs stopped on error
    std::uint64_t native_fallbacks = 0;    // chain exhausted or fault -> default
    /// Program executions by effective tier (index = ebpf::ExecMode).
    std::uint64_t tier_runs[3] = {};
    /// Faults by insertion point (index = Op) and by FaultClass: the same
    /// taxonomy the host sees in FaultInfo, so host- and VMM-side error
    /// accounting can be cross-checked bit-identically.
    std::uint64_t faults_by_op[kOpCount] = {};
    std::uint64_t faults_by_class[kFaultClassCount] = {};
  };

  /// Load-time verification outcomes, tallied per insertion point.
  struct VerifyStats {
    std::uint64_t verified = 0;   // programs that passed the analyzer and attached
    std::uint64_t rejected = 0;   // programs refused at load time
    std::uint64_t warnings = 0;   // warning-severity findings on attached programs
  };

  /// Load-time translation outcomes (one translation per manifest entry;
  /// the IR image is shared read-only across all per-slot VMs).
  struct TranslationStats {
    std::uint64_t programs = 0;          // bytecodes lowered to IR
    std::uint64_t ns = 0;                // wall-clock spent translating
    std::uint64_t ir_insns = 0;          // IR instructions emitted
    std::uint64_t elided_checks = 0;     // bounds checks dropped (analyzer-proven)
    std::uint64_t elided_obj_checks = 0; // subset: helper-returned ctx/attr objects
    std::uint64_t checked_accesses = 0;  // bounds checks retained
    std::uint64_t jit_compiled = 0;      // manifest entries with a native image
    std::uint64_t jit_code_bytes = 0;    // native code emitted across them
    /// JIT compilations declined, by reason (index = ebpf::JitFallback;
    /// kNone stays zero).
    std::uint64_t jit_fallbacks[ebpf::kJitFallbackCount] = {};
  };

  explicit Vmm(HostApi& host);  // default Options
  Vmm(HostApi& host, Options options);
  ~Vmm();

  Vmm(const Vmm&) = delete;
  Vmm& operator=(const Vmm&) = delete;

  /// Verifies every entry (structural pass 0 plus the CFG-based abstract
  /// interpreter) and attaches it; throws std::invalid_argument with the
  /// first error-severity diagnostic on rejection.  Warning-severity
  /// findings are logged and counted but do not block attachment.  kInit
  /// programs run immediately, in manifest order; an init fault unloads
  /// that program and notifies the host.  The verified bytecode is
  /// instantiated once per execution slot so each shard runs its own VM.
  void load(const Manifest& manifest);

  /// Detaches everything (native behaviour everywhere).
  void unload_all();

  [[nodiscard]] bool any_attached(Op op) const noexcept {
    return !chains_[static_cast<std::size_t>(op)].empty();
  }
  [[nodiscard]] std::size_t attached_count(Op op) const noexcept {
    return chains_[static_cast<std::size_t>(op)].size();
  }
  [[nodiscard]] std::size_t execution_contexts() const noexcept { return slots_.size(); }

  /// Runs the extension chain for `op` on slot 0; falls back to
  /// `native_default` when no chain is attached, every program yields
  /// next(), or a program faults. `native_default` must be callable as
  /// std::uint64_t().
  template <typename F>
  std::uint64_t execute(Op op, ExecContext& ctx, F&& native_default) {
    return execute_on(op, ctx, std::forward<F>(native_default), 0);
  }

  /// Same as execute(), pinned to one execution slot. Calls on distinct
  /// slots may run concurrently; two concurrent calls on the same slot are
  /// undefined behaviour.
  template <typename F>
  std::uint64_t execute_on(Op op, ExecContext& ctx, F&& native_default, std::size_t slot) {
    auto& chain = chains_[static_cast<std::size_t>(op)];
    if (chain.empty()) return native_default();
    ++slots_[slot]->stats.invocations;
    const ChainOutcome outcome = run_chain(chain, ctx, op, slot);
    if (outcome.handled) return outcome.value;
    ++slots_[slot]->stats.native_fallbacks;
    return native_default();
  }

  /// Attaches the telemetry spine (serial-phase, call once before traffic).
  /// Registers per-insertion-point run counters and latency histograms in
  /// the registry, a pull collector folding the per-slot Stats and
  /// VerifyStats at snapshot time, and — when telemetry->tracing() is on —
  /// records one trace span per program execution. Passing nullptr detaches.
  void set_telemetry(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept { return telemetry_; }

  /// Per-slot counters folded on demand (serial-phase only).
  [[nodiscard]] Stats stats() const noexcept;
  void reset_stats() noexcept;

  /// Folded fault count for one insertion point (serial-phase only).
  [[nodiscard]] std::uint64_t fault_count(Op op) const noexcept {
    return stats().faults_by_op[static_cast<std::size_t>(op)];
  }

  /// Load-time verification counters for one insertion point.
  [[nodiscard]] const VerifyStats& verify_stats(Op op) const noexcept {
    return verify_stats_[static_cast<std::size_t>(op)];
  }

  /// Load-time translation counters (serial-phase only).
  [[nodiscard]] const TranslationStats& translation_stats() const noexcept {
    return translation_stats_;
  }

  /// Serial-phase: switches the execution tier of one loaded program on
  /// every slot; returns false when no program has that name. Both tiers
  /// are observationally identical, so this is safe at any quiesce point.
  bool set_exec_mode(std::string_view program, ebpf::ExecMode mode) noexcept;

  /// Serial-phase: switches every loaded program (and future loads default
  /// to this tier).
  void set_exec_mode(ebpf::ExecMode mode) noexcept;

  [[nodiscard]] HostApi& host() noexcept { return host_; }

  /// Resolves a provenance / flight-recorder program id (the program's load
  /// index, stamped into ExecContext::current_program while it runs) back to
  /// its manifest name; empty when out of range.
  [[nodiscard]] std::string_view program_name(std::uint16_t index) const noexcept {
    return index < programs_.size() ? std::string_view(programs_[index]->entry.name)
                                    : std::string_view{};
  }
  [[nodiscard]] std::size_t program_count() const noexcept { return programs_.size(); }

 private:
  /// Persistent state shared by all extension codes of one xBGP program
  /// group: the keyed shared-memory pool and the helper maps. Shared across
  /// execution slots, hence the mutex.
  struct GroupState {
    SharedPool pool;
    std::unordered_map<std::uint32_t, ExtMap> maps;
    std::size_t map_capacity_hint = 0;
    std::mutex mu;

    explicit GroupState(std::size_t pool_size) : pool(pool_size) {}
  };

  /// Shard-local execution state: one interpreter per loaded program is
  /// registered against this slot, all sharing the slot's arena.
  struct ExecSlot {
    Arena arena;
    Stats stats;
    ExecContext* current_ctx = nullptr;  // valid while run_chain is on the stack

    explicit ExecSlot(std::size_t arena_size) : arena(arena_size) {}
  };

  struct LoadedProgram {
    ManifestEntry entry;
    /// One interpreter per execution slot, all running `entry.program`.
    std::vector<std::unique_ptr<ebpf::Vm>> vms;
    /// Pre-decoded IR, translated once at load with the analyzer's safety
    /// facts; shared read-only by every slot's VM (fast tier).
    std::unique_ptr<const ebpf::IrProgram> ir;
    /// Native tier-2 image compiled from `ir` at load time; null when the
    /// JIT declined (the program then runs tier 1). Shared read-only by
    /// every slot's VM; must be destroyed before `ir` (member order below).
    std::unique_ptr<const ebpf::JitProgram> jit;
    GroupState* group = nullptr;  // owned by Vmm::groups_
    /// Stable position in programs_ — the provenance / event-log program id
    /// (program_name() resolves it back; unload_all clears everything, so
    /// indices never dangle).
    std::uint16_t index = 0;
    std::atomic<std::uint64_t> runs{0};

    explicit LoadedProgram(ManifestEntry e) : entry(std::move(e)) {}
  };

  struct ChainOutcome {
    bool handled = false;
    std::uint64_t value = 0;
  };

  ChainOutcome run_chain(std::vector<LoadedProgram*>& chain, ExecContext& ctx, Op op,
                         std::size_t slot_index);
  void bind_helpers(LoadedProgram& prog, std::size_t slot);
  void run_init(LoadedProgram& prog);
  void detach_everywhere(const LoadedProgram* prog);

  /// Registry handles for the always-on per-insertion-point run counter and
  /// the tracing-gated latency histogram.
  struct OpTelemetry {
    obs::Registry::Id runs = 0;
    obs::Registry::Id exec_ns = 0;
  };

  HostApi& host_;
  Options options_;
  std::unordered_map<std::string, std::unique_ptr<GroupState>> groups_;
  std::vector<std::unique_ptr<LoadedProgram>> programs_;
  std::vector<LoadedProgram*> chains_[kOpCount];
  std::vector<std::unique_ptr<ExecSlot>> slots_;
  VerifyStats verify_stats_[kOpCount];
  TranslationStats translation_stats_;
  obs::Telemetry* telemetry_ = nullptr;
  OpTelemetry op_telemetry_[kOpCount] = {};
};

}  // namespace xb::xbgp
