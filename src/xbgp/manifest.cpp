#include "xbgp/manifest.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace xb::xbgp {

Manifest& Manifest::attach(std::string name, Op point, ebpf::Program program, int order,
                           std::size_t map_capacity_hint, std::string group) {
  ManifestEntry entry;
  entry.group = group.empty() ? name : std::move(group);
  entry.name = std::move(name);
  entry.point = point;
  entry.order = order;
  entry.allowed_helpers = program.required_helpers();
  entry.program = std::move(program);
  entry.map_capacity_hint = map_capacity_hint;
  entries.push_back(std::move(entry));
  return *this;
}

namespace {
// FNV-1a, 64-bit: stable across platforms (the signature only needs to be
// a process-local equality witness, but determinism keeps logs comparable).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }
}  // namespace

ExportManifestIdentity export_identity(const Manifest& manifest) {
  ExportManifestIdentity id;
  std::uint64_t h = kFnvOffset;
  bool any = false;
  for (const auto& entry : manifest.entries) {
    if (entry.point != Op::kOutboundFilter && entry.point != Op::kEncodeMessage) continue;
    any = true;
    fnv_u64(h, static_cast<std::uint64_t>(entry.point));
    fnv_u64(h, static_cast<std::uint64_t>(entry.order));
    fnv_bytes(h, entry.name.data(), entry.name.size());
    fnv_u64(h, entry.name.size());
    for (std::int32_t helper : entry.allowed_helpers) {
      fnv_u64(h, static_cast<std::uint64_t>(helper));
      if (helper == helper::kGetPeerInfo || helper == helper::kGetSrcPeerInfo) {
        id.peer_scoped = true;
      }
    }
    const auto image = entry.program.image();
    fnv_bytes(h, image.data(), image.size());
    fnv_u64(h, image.size());
  }
  id.signature = any ? (h == 0 ? 1 : h) : 0;
  return id;
}

ExportManifestIdentity combine_export_identity(ExportManifestIdentity acc,
                                               const ExportManifestIdentity& next) {
  if (next.signature == 0) return acc;
  if (acc.signature == 0) return next;
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, acc.signature);
  fnv_u64(h, next.signature);
  acc.signature = h == 0 ? 1 : h;
  acc.peer_scoped = acc.peer_scoped || next.peer_scoped;
  return acc;
}

void ProgramRegistry::add(ebpf::Program program) {
  auto name = program.name();
  programs_.insert_or_assign(std::move(name), std::move(program));
}

const ebpf::Program* ProgramRegistry::find(const std::string& name) const {
  auto it = programs_.find(name);
  return it == programs_.end() ? nullptr : &it->second;
}

std::vector<std::string> ProgramRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [name, program] : programs_) out.push_back(name);
  return out;
}

namespace {
struct HelperName {
  const char* name;
  std::int32_t id;
};
constexpr std::array<HelperName, 27> kHelperNames{{
    {"next", helper::kNext},
    {"get_arg", helper::kGetArg},
    {"get_arg_len", helper::kGetArgLen},
    {"get_peer_info", helper::kGetPeerInfo},
    {"get_src_peer_info", helper::kGetSrcPeerInfo},
    {"get_attr", helper::kGetAttr},
    {"set_attr", helper::kSetAttr},
    {"add_attr", helper::kAddAttr},
    {"get_nexthop", helper::kGetNexthop},
    {"get_xtra", helper::kGetXtra},
    {"get_xtra_len", helper::kGetXtraLen},
    {"write_buf", helper::kWriteBuf},
    {"ctx_malloc", helper::kCtxMalloc},
    {"ctx_shmnew", helper::kShmNew},
    {"ctx_shmget", helper::kShmGet},
    {"map_update", helper::kMapUpdate},
    {"map_lookup", helper::kMapLookup},
    {"ebpf_print", helper::kPrint},
    {"ebpf_memcpy", helper::kMemcpy},
    {"rib_add_route", helper::kRibAddRoute},
    {"rib_lookup", helper::kRibLookup},
    {"set_route_meta", helper::kSetRouteMeta},
    {"get_route_meta", helper::kGetRouteMeta},
    {"bpf_htonl", helper::kHtonl},
    {"bpf_ntohl", helper::kNtohl},
    {"sqrt_u64", helper::kSqrtU64},
    {"get_attr_alt", helper::kGetAttrAlt},
}};
}  // namespace

const std::map<std::int32_t, int>& helper_arity_table() {
  // Mirrors the signatures documented in api.hpp; trailing unused argument
  // slots are not counted.
  static const std::map<std::int32_t, int> kArity{
      {helper::kNext, 0},          {helper::kGetArg, 1},
      {helper::kGetArgLen, 1},     {helper::kGetPeerInfo, 0},
      {helper::kGetSrcPeerInfo, 0},{helper::kGetAttr, 1},
      {helper::kSetAttr, 4},       {helper::kAddAttr, 4},
      {helper::kGetNexthop, 0},    {helper::kGetXtra, 2},
      {helper::kGetXtraLen, 2},    {helper::kWriteBuf, 2},
      {helper::kCtxMalloc, 1},     {helper::kShmNew, 2},
      {helper::kShmGet, 1},        {helper::kMapUpdate, 4},
      {helper::kMapLookup, 3},     {helper::kPrint, 2},
      {helper::kMemcpy, 3},        {helper::kRibAddRoute, 2},
      {helper::kRibLookup, 1},     {helper::kSetRouteMeta, 1},
      {helper::kGetRouteMeta, 0},  {helper::kHtonl, 1},
      {helper::kNtohl, 1},         {helper::kSqrtU64, 1},
      {helper::kGetAttrAlt, 1},
  };
  return kArity;
}

const std::map<std::int32_t, ebpf::HelperContract>& helper_contract_table() {
  using ebpf::HelperContract;
  using ebpf::Region;
  // Every claim below is an invariant of the bindings in Vmm::bind_helpers:
  //   * all pointer-returning helpers can return 0 (missing argument or
  //     attribute, exhausted arena, absent peer/nexthop, unknown shm key),
  //   * non-null get_peer_info / get_src_peer_info point at exactly
  //     sizeof(PeerInfo) == 32 bytes, get_nexthop at sizeof(NexthopInfo)
  //     == 16, inside the read-only context window,
  //   * non-null get_attr / get_attr_alt point at an AttrHdr (4 bytes)
  //     followed by the attribute payload — 4 is a guaranteed floor, not an
  //     exact size,
  //   * ctx_malloc(size) and ctx_shmnew(key, size) return `size` writable
  //     bytes from the ephemeral arena / shared pool,
  //   * get_arg / get_attr / get_attr_alt expose wire-derived bytes, and
  //     get_arg_len returns a wire-derived length (taint sources).
  static const std::map<std::int32_t, HelperContract> kContracts = [] {
    std::map<std::int32_t, HelperContract> table;
    auto* m = &table;
    auto ptr = [](Region region, std::uint32_t extent, bool exact, bool writable,
                  bool tainted) {
      HelperContract c;
      c.returns_pointer = true;
      c.region = region;
      c.extent = extent;
      c.exact_extent = exact;
      c.writable = writable;
      c.may_return_null = true;
      c.tainted_data = tainted;
      return c;
    };
    (*m)[helper::kGetArg] = ptr(Region::kAttr, 0, false, false, true);
    (*m)[helper::kGetAttr] = ptr(Region::kAttr, 4, false, false, true);
    (*m)[helper::kGetAttrAlt] = ptr(Region::kAttr, 4, false, false, true);
    (*m)[helper::kGetPeerInfo] = ptr(Region::kCtx, 32, true, false, false);
    (*m)[helper::kGetSrcPeerInfo] = ptr(Region::kCtx, 32, true, false, false);
    (*m)[helper::kGetNexthop] = ptr(Region::kCtx, 16, true, false, false);
    (*m)[helper::kGetXtra] = ptr(Region::kCtx, 0, false, false, false);
    {
      HelperContract c = ptr(Region::kCtx, 0, true, true, false);
      c.extent_from_arg1 = true;
      c.size_arg_mask = 0b00001;  // r1: allocation size
      (*m)[helper::kCtxMalloc] = c;
    }
    {
      HelperContract c = ptr(Region::kCtx, 0, true, true, false);
      c.extent_from_arg2 = true;
      c.size_arg_mask = 0b00010;  // r2: allocation size
      (*m)[helper::kShmNew] = c;
    }
    (*m)[helper::kShmGet] = ptr(Region::kCtx, 0, false, true, false);
    {
      HelperContract c;
      c.tainted_return = true;  // length of a wire-derived argument
      (*m)[helper::kGetArgLen] = c;
    }
    auto sizes = [&](std::int32_t id, std::uint8_t mask) {
      HelperContract c;
      c.size_arg_mask = mask;
      (*m)[id] = c;
    };
    sizes(helper::kMemcpy, 0b00100);    // r3: byte count
    sizes(helper::kWriteBuf, 0b00010);  // r2: byte count
    sizes(helper::kPrint, 0b00010);     // r2: buffer length
    sizes(helper::kSetAttr, 0b01000);   // r4: attribute length
    sizes(helper::kAddAttr, 0b01000);   // r4: attribute length
    return table;
  }();
  return kContracts;
}

int helper_arity_by_id(std::int32_t id) {
  const auto& table = helper_arity_table();
  auto it = table.find(id);
  return it == table.end() ? 0 : it->second;
}

std::int32_t helper_id_by_name(const std::string& name) {
  for (const auto& h : kHelperNames) {
    if (name == h.name) return h.id;
  }
  return -1;
}

const char* helper_name_by_id(std::int32_t id) {
  for (const auto& h : kHelperNames) {
    if (id == h.id) return h.name;
  }
  return "?";
}

Op op_by_name(const std::string& name) {
  if (name == "BGP_RECEIVE_MESSAGE") return Op::kReceiveMessage;
  if (name == "BGP_INBOUND_FILTER") return Op::kInboundFilter;
  if (name == "BGP_DECISION") return Op::kDecision;
  if (name == "BGP_OUTBOUND_FILTER") return Op::kOutboundFilter;
  if (name == "BGP_ENCODE_MESSAGE") return Op::kEncodeMessage;
  if (name == "XBGP_INIT") return Op::kInit;
  throw std::invalid_argument("unknown insertion point: " + name);
}

Manifest parse_manifest(const std::string& text, const ProgramRegistry& registry) {
  Manifest manifest;
  std::istringstream is(text);
  std::string token;

  auto expect = [&](const std::string& want) {
    std::string got;
    if (!(is >> got) || got != want) {
      throw std::invalid_argument("manifest: expected '" + want + "', got '" + got + "'");
    }
  };

  while (is >> token) {
    if (token[0] == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    if (token != "extension") {
      throw std::invalid_argument("manifest: expected 'extension', got '" + token + "'");
    }
    ManifestEntry entry;
    if (!(is >> entry.name)) throw std::invalid_argument("manifest: missing extension name");
    expect("{");

    const ebpf::Program* program = registry.find(entry.name);
    if (program == nullptr) {
      throw std::invalid_argument("manifest: unknown program '" + entry.name + "'");
    }
    entry.program = *program;

    bool have_point = false;
    std::string key;
    while (is >> key && key != "}") {
      if (key[0] == '#') {
        std::string rest;
        std::getline(is, rest);
        continue;
      }
      if (key == "insertion_point") {
        std::string point_name;
        is >> point_name;
        entry.point = op_by_name(point_name);
        have_point = true;
      } else if (key == "order") {
        is >> entry.order;
      } else if (key == "group") {
        is >> entry.group;
      } else if (key == "map_capacity") {
        is >> entry.map_capacity_hint;
      } else if (key == "helpers") {
        std::string rest;
        std::getline(is, rest);
        std::istringstream hs(rest);
        std::string helper_name;
        while (hs >> helper_name) {
          const std::int32_t id = helper_id_by_name(helper_name);
          if (id < 0) {
            throw std::invalid_argument("manifest: unknown helper '" + helper_name + "'");
          }
          entry.allowed_helpers.insert(id);
        }
      } else {
        throw std::invalid_argument("manifest: unknown key '" + key + "'");
      }
    }
    if (!have_point) {
      throw std::invalid_argument("manifest: extension '" + entry.name +
                                  "' lacks insertion_point");
    }
    if (entry.group.empty()) entry.group = entry.name;
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

}  // namespace xb::xbgp
