// The xBGP API: the vendor-neutral ABI between extension bytecode and any
// BGP implementation (paper §2).
//
// Everything here is part of the *stable contract*: insertion-point ids,
// helper-function ids, argument ids, return codes, and the byte layouts of
// the structures helpers hand to bytecode. Extension programs are compiled
// against these constants once and run unchanged on every compliant host.
//
// Byte-order convention (paper §2.1): BGP message and attribute bytes cross
// the API in network byte order — the neutral representation — and each host
// converts to its internal storage format. Scalar fields of API structs
// (peer info, nexthop info) and xtra config blobs use host byte order.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xb::xbgp {

// --- Insertion points (the five green circles of Fig. 2, plus INIT) ----------
enum class Op : std::uint8_t {
  kReceiveMessage = 1,  // after an UPDATE arrives, before installation
  kInboundFilter = 2,   // import policy, before Adj-RIB-In
  kDecision = 3,        // best-route comparison
  kOutboundFilter = 4,  // export policy, before Adj-RIB-Out
  kEncodeMessage = 5,   // while serialising an outgoing UPDATE
  kInit = 6,            // once at attach time (extension state setup)
};
inline constexpr std::size_t kOpCount = 7;  // index 0 unused

[[nodiscard]] constexpr const char* to_string(Op op) {
  switch (op) {
    case Op::kReceiveMessage: return "BGP_RECEIVE_MESSAGE";
    case Op::kInboundFilter: return "BGP_INBOUND_FILTER";
    case Op::kDecision: return "BGP_DECISION";
    case Op::kOutboundFilter: return "BGP_OUTBOUND_FILTER";
    case Op::kEncodeMessage: return "BGP_ENCODE_MESSAGE";
    case Op::kInit: return "XBGP_INIT";
  }
  return "?";
}

// --- Return codes -------------------------------------------------------------
// Filters (kInboundFilter / kOutboundFilter):
inline constexpr std::uint64_t kFilterReject = 0;
inline constexpr std::uint64_t kFilterAccept = 1;
// kDecision: which route wins the pairwise comparison.
inline constexpr std::uint64_t kDecisionKeepOld = 0;
inline constexpr std::uint64_t kDecisionTakeNew = 1;
// kReceiveMessage / kEncodeMessage / kInit:
inline constexpr std::uint64_t kOpOk = 0;

// --- Helper function ids (stable ABI) ------------------------------------------
namespace helper {
inline constexpr std::int32_t kNext = 1;           // delegate to next program
inline constexpr std::int32_t kGetArg = 2;         // (arg_id) -> ptr | 0
inline constexpr std::int32_t kGetArgLen = 3;      // (arg_id) -> len | -1
inline constexpr std::int32_t kGetPeerInfo = 4;    // () -> PeerInfo*
inline constexpr std::int32_t kGetSrcPeerInfo = 5; // () -> PeerInfo* (learned-from)
inline constexpr std::int32_t kGetAttr = 6;        // (code) -> AttrHdr* | 0
inline constexpr std::int32_t kSetAttr = 7;        // (code, flags, ptr, len) -> bool
inline constexpr std::int32_t kAddAttr = 8;        // (code, flags, ptr, len) -> bool
inline constexpr std::int32_t kGetNexthop = 9;     // () -> NexthopInfo*
inline constexpr std::int32_t kGetXtra = 10;       // (key_ptr, key_len) -> ptr | 0
inline constexpr std::int32_t kGetXtraLen = 11;    // (key_ptr, key_len) -> len | -1
inline constexpr std::int32_t kWriteBuf = 12;      // (ptr, len) -> written
inline constexpr std::int32_t kCtxMalloc = 13;     // (size) -> ptr | 0 (ephemeral)
inline constexpr std::int32_t kShmNew = 14;        // (key, size) -> ptr | 0 (persistent)
inline constexpr std::int32_t kShmGet = 15;        // (key) -> ptr | 0
inline constexpr std::int32_t kMapUpdate = 16;     // (map_id, k1, k2, value) -> bool
inline constexpr std::int32_t kMapLookup = 17;     // (map_id, k1, k2) -> value | 0
inline constexpr std::int32_t kPrint = 18;         // (str_ptr, len) -> 0
inline constexpr std::int32_t kMemcpy = 19;        // (dst, src, len) -> dst
inline constexpr std::int32_t kRibAddRoute = 20;   // (prefix_ptr, nh_addr) -> bool
inline constexpr std::int32_t kRibLookup = 21;     // (prefix_ptr) -> nh_addr | 0
inline constexpr std::int32_t kSetRouteMeta = 22;  // (value) -> bool
inline constexpr std::int32_t kGetRouteMeta = 23;  // () -> value
inline constexpr std::int32_t kHtonl = 24;         // (v) -> byte-swapped 32-bit
inline constexpr std::int32_t kNtohl = 25;         // (v) -> byte-swapped 32-bit
inline constexpr std::int32_t kSqrtU64 = 26;       // (v) -> integer sqrt (GeoLoc distance)
/// kDecision only: reads an attribute of the comparison's *other* route
/// (the current best), mirroring get_attr on the candidate.
inline constexpr std::int32_t kGetAttrAlt = 27;    // (code) -> AttrHdr* | 0
}  // namespace helper

// --- Visible argument ids -------------------------------------------------------
namespace arg {
/// Full wire bytes of the UPDATE being processed (kReceiveMessage).
inline constexpr std::uint8_t kRawMessage = 1;
/// PrefixArg for the route under consideration (filter/decision/encode ops).
inline constexpr std::uint8_t kPrefix = 2;
/// PrefixArg + attrs of the *current best* route (kDecision only), id 3 is
/// the candidate's prefix arg, id 4 the current best's.
inline constexpr std::uint8_t kCandidatePrefix = 3;
inline constexpr std::uint8_t kBestPrefix = 4;
}  // namespace arg

// --- Structures handed to bytecode (fixed layouts, host byte order) -------------

/// What get_peer_info / get_src_peer_info return.
struct PeerInfo {
  std::uint32_t router_id = 0;
  std::uint32_t asn = 0;
  std::uint32_t addr = 0;       // IPv4, host order
  std::uint8_t peer_type = 0;   // 1 = iBGP session, 2 = eBGP session
  std::uint8_t rr_client = 0;   // this peer is our route-reflection client
  std::uint8_t pad0[2] = {};
  std::uint32_t local_router_id = 0;
  std::uint32_t local_asn = 0;
  std::uint32_t local_addr = 0;
  std::uint8_t pad1[4] = {};
};
static_assert(sizeof(PeerInfo) == 32);
inline constexpr std::uint8_t kPeerTypeIbgp = 1;
inline constexpr std::uint8_t kPeerTypeEbgp = 2;

/// What get_nexthop returns.
struct NexthopInfo {
  std::uint32_t igp_metric = 0;  // 0xFFFFFFFF when unreachable
  std::uint32_t addr = 0;        // IPv4, host order
  std::uint8_t reachable = 0;
  std::uint8_t pad[7] = {};
};
static_assert(sizeof(NexthopInfo) == 16);

/// Header of what get_attr returns; `len` bytes of wire-format (network
/// byte order) attribute value follow immediately after this header.
struct AttrHdr {
  std::uint8_t flags = 0;
  std::uint8_t code = 0;
  std::uint16_t len = 0;  // host order
};
static_assert(sizeof(AttrHdr) == 4);

/// Layout of the kPrefix / kCandidatePrefix / kBestPrefix arguments.
struct PrefixArg {
  std::uint32_t addr = 0;  // IPv4, host order
  std::uint8_t len = 0;
  std::uint8_t pad[3] = {};
};
static_assert(sizeof(PrefixArg) == 8);

/// Entry layout of the "roa_v1" xtra blob (packed array).
struct RoaEntry {
  std::uint32_t addr = 0;       // prefix address, host order
  std::uint8_t prefix_len = 0;
  std::uint8_t max_len = 0;
  std::uint8_t pad[2] = {};
  std::uint32_t origin = 0;
};
static_assert(sizeof(RoaEntry) == 12);

/// Entry layout of the "valley_pairs" xtra blob (packed array): an eBGP
/// session from a level-i router to a level-i+1 router (paper §3.3).
struct ValleyPair {
  std::uint32_t lower_asn = 0;   // AS of the level-i (lower) router
  std::uint32_t upper_asn = 0;   // AS of the level-i+1 (upper) router
};
static_assert(sizeof(ValleyPair) == 8);

// --- Well-known xtra keys ---------------------------------------------------------
namespace xtra {
inline constexpr const char* kRouterId = "router_id";       // u32
inline constexpr const char* kClusterId = "cluster_id";     // u32
inline constexpr const char* kGeoCoord = "geo_coord";       // 2 x i32 (micro-degrees)
inline constexpr const char* kMaxMetric = "max_metric";     // u32 (Listing 1)
inline constexpr const char* kGeoMaxDist = "geo_max_dist";  // u32 (micro-degree distance)
inline constexpr const char* kValleyPairs = "valley_pairs"; // ValleyPair[]
/// Prefixes exempted from valley-free filtering (packed PrefixArg array).
inline constexpr const char* kCriticalPrefixes = "critical_prefixes";
/// §3.1 community approach: the region community stamped at ingress and the
/// community required on export (u32 each).
inline constexpr const char* kRegionTag = "region_tag";
inline constexpr const char* kRequiredTag = "required_tag";
inline constexpr const char* kRoaTable = "roa_v1";          // RoaEntry[]
}  // namespace xtra

/// Route metadata values used by the origin-validation use case
/// (mirrors rpki::Validity).
inline constexpr std::uint32_t kMetaOvNotFound = 0;
inline constexpr std::uint32_t kMetaOvValid = 1;
inline constexpr std::uint32_t kMetaOvInvalid = 2;

}  // namespace xb::xbgp
