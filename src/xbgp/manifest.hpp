// The xBGP manifest: which extension bytecodes attach where, in what order,
// and which API functions each may call (paper §2.1).
//
// "The VMM is initialized with a manifest containing the extension bytecodes
// and the points where they must be inserted. Different extension codes can
// be attached to the same insertion point, and the manifest defines in which
// order they are executed. The manifest also lists the different xBGP API
// functions that the bytecode uses."
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ebpf/analyzer.hpp"
#include "ebpf/program.hpp"
#include "xbgp/api.hpp"

namespace xb::xbgp {

struct ManifestEntry {
  std::string name;
  Op point = Op::kInit;
  int order = 0;  // ascending execution order within the insertion point
  std::set<std::int32_t> allowed_helpers;
  ebpf::Program program;
  /// Extension codes with the same group share one persistent memory space
  /// and one helper-map namespace (paper §2.1: "extension code belonging to
  /// the same xBGP program can share a dedicated persistent memory space").
  /// Empty -> the entry name (no sharing).
  std::string group;
  /// Expected entry count for the group's helper maps (pre-sizing hint).
  std::size_t map_capacity_hint = 0;
};

struct Manifest {
  std::vector<ManifestEntry> entries;

  Manifest& attach(std::string name, Op point, ebpf::Program program, int order = 0,
                   std::size_t map_capacity_hint = 0, std::string group = {});
};

/// Identity of a manifest's *export-side* behaviour, used by the engine's
/// RibOut peer-group formation: two routers (or two peer groups) whose
/// loaded manifests have equal outbound identity run the same outbound
/// filter / encode chains and therefore produce the same export attributes
/// for the same input route.
struct ExportManifestIdentity {
  /// Fingerprint over every BGP_OUTBOUND_FILTER / BGP_ENCODE_MESSAGE entry
  /// (name, order, point, helpers, program image). 0 when no extension is
  /// attached at either point.
  std::uint64_t signature = 0;
  /// True when any outbound/encode entry may call get_peer_info or
  /// get_src_peer_info: its verdict can depend on *which* member of a peer
  /// group it runs for, so grouping must fall back to one group per peer.
  bool peer_scoped = false;
};

/// Computes the outbound identity of one manifest. Identities of manifests
/// loaded in sequence combine with combine_export_identity().
[[nodiscard]] ExportManifestIdentity export_identity(const Manifest& manifest);

/// Folds `next` into `acc` (order-sensitive, mirroring Vmm::load chaining).
[[nodiscard]] ExportManifestIdentity combine_export_identity(ExportManifestIdentity acc,
                                                             const ExportManifestIdentity& next);

/// Named programs available to the text-form manifest parser.
class ProgramRegistry {
 public:
  void add(ebpf::Program program);
  [[nodiscard]] const ebpf::Program* find(const std::string& name) const;
  /// All registered program names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, ebpf::Program> programs_;
};

/// Helper-name <-> id mapping for manifests and diagnostics.
[[nodiscard]] std::int32_t helper_id_by_name(const std::string& name);  // -1 if unknown
[[nodiscard]] const char* helper_name_by_id(std::int32_t id);           // "?" if unknown

/// Argument count per helper (how many of r1..r5 a call consumes), as
/// declared by the API contract in api.hpp.  Feeds the static analyzer's
/// helper-call model; unknown ids map to 0.
[[nodiscard]] int helper_arity_by_id(std::int32_t id);
[[nodiscard]] const std::map<std::int32_t, int>& helper_arity_table();

/// Pointer/taint contracts per helper, feeding the analyzer's region and
/// taint domains.  Part of the trusted base: every claim (returned-object
/// extent, writability, nullability) must be an invariant of the runtime
/// helper bindings in vmm.cpp, because proven facts built on a claim can
/// remove the corresponding runtime bounds check.
[[nodiscard]] const std::map<std::int32_t, ebpf::HelperContract>& helper_contract_table();

/// Insertion-point name -> Op. Throws std::invalid_argument on bad name.
[[nodiscard]] Op op_by_name(const std::string& name);

/// Parses the text manifest format:
///
///   # comment
///   extension geoloc_receive {
///     insertion_point BGP_RECEIVE_MESSAGE
///     order 0
///     helpers next get_arg get_peer_info add_attr
///     map_capacity 1000
///   }
///
/// Programs are resolved by extension name from `registry`.
/// Throws std::invalid_argument on syntax errors or unknown names.
[[nodiscard]] Manifest parse_manifest(const std::string& text, const ProgramRegistry& registry);

}  // namespace xb::xbgp
