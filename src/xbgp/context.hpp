// The execution context of one insertion-point invocation (paper §2.1).
//
// "Each API function is called with a context of execution. This context is
// hidden within the extension code but visible in the host BGP
// implementation." Visible arguments are exposed to bytecode through
// get_arg; hidden arguments (host route objects, peer objects, the output
// writer) are reachable only from helper implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "xbgp/api.hpp"

namespace xb::util {
class ByteWriter;
}
namespace xb::bgp {
class AttributeSet;
}
namespace xb::obs {
struct Provenance;
}

namespace xb::xbgp {

struct ExecContext {
  Op op = Op::kInit;

  /// Visible arguments, exposed to bytecode via the get_arg helper. The
  /// spans borrow host storage that must outlive the invocation.
  struct Arg {
    std::uint8_t id = 0;
    std::span<const std::uint8_t> data;
  };
  std::vector<Arg> args;

  void add_arg(std::uint8_t id, std::span<const std::uint8_t> data) {
    args.push_back(Arg{id, data});
  }
  [[nodiscard]] const Arg* find_arg(std::uint8_t id) const {
    for (const auto& a : args) {
      if (a.id == id) return &a;
    }
    return nullptr;
  }

  // --- hidden arguments (host-side only; opaque to bytecode) -----------------
  /// Host-internal representation of the route under consideration.
  void* route = nullptr;
  /// kDecision only: the comparison's other route (the current best).
  void* route_alt = nullptr;
  /// Host-internal peer objects: `peer` is the session the operation applies
  /// to (source for inbound ops, destination for outbound/encode ops);
  /// `src_peer` is the learned-from session for outbound/encode ops.
  void* peer = nullptr;
  void* src_peer = nullptr;
  /// Parsed-but-not-yet-installed attribute set (kReceiveMessage only).
  bgp::AttributeSet* incoming = nullptr;
  /// Output message under construction (kEncodeMessage only).
  util::ByteWriter* out = nullptr;

  /// Attribute codes added via add_attr during kReceiveMessage. The host
  /// preserves these through its internal conversion even when it would
  /// normally drop unknown attributes.
  std::vector<std::uint8_t> ext_added_codes;

  // --- flight-recorder plumbing (set by the VMM / host; opaque to bytecode) --
  /// Index of the program currently executing (Vmm::program_name resolves
  /// it); 0xFFFF outside run_chain.
  std::uint16_t current_program = 0xFFFF;
  /// Execution slot the chain runs on — where mutation events are recorded.
  std::uint16_t exec_slot = 0;
  /// When set, attribute mutations made through the host API are attributed
  /// to this provenance record (obs::Provenance::note_mutation).
  obs::Provenance* prov = nullptr;
};

}  // namespace xb::xbgp
