#include "xbgp/vmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ebpf/translator.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

namespace xb::xbgp {

using ebpf::HelperResult;

namespace {

constexpr util::Logger kLog{"vmm"};

/// Maps the interpreter's raw fault kind onto the xBGP fault taxonomy.
FaultClass classify_fault(ebpf::FaultKind kind) {
  switch (kind) {
    case ebpf::FaultKind::kBudgetExhausted: return FaultClass::kInstructionBudget;
    case ebpf::FaultKind::kBadMemoryAccess: return FaultClass::kMemoryBounds;
    case ebpf::FaultKind::kUnknownHelper: return FaultClass::kHelperDenied;
    case ebpf::FaultKind::kHelperError: return FaultClass::kHelperError;
    case ebpf::FaultKind::kDivisionByZero:
    case ebpf::FaultKind::kIllegalInstruction:
    case ebpf::FaultKind::kNone: return FaultClass::kVerify;
  }
  return FaultClass::kVerify;
}

}  // namespace

Vmm::Vmm(HostApi& host) : Vmm(host, Options{}) {}

Vmm::Vmm(HostApi& host, Options options) : host_(host), options_(options) {
  const std::size_t contexts = std::max<std::size_t>(1, options_.execution_contexts);
  slots_.reserve(contexts);
  for (std::size_t i = 0; i < contexts; ++i) {
    slots_.push_back(std::make_unique<ExecSlot>(options_.arena_size));
  }
}

Vmm::~Vmm() = default;

void Vmm::load(const Manifest& manifest) {
  ebpf::Analyzer::Options verify_opts;
  verify_opts.helper_arity = helper_arity_table();
  verify_opts.helper_contracts = helper_contract_table();

  std::vector<LoadedProgram*> loaded_now;
  for (const auto& entry : manifest.entries) {
    auto& vstats = verify_stats_[static_cast<std::size_t>(entry.point)];
    const auto analysis =
        ebpf::Analyzer::analyze(entry.program, entry.allowed_helpers, verify_opts);
    if (const auto* err = analysis.first_error()) {
      ++vstats.rejected;
      throw std::invalid_argument("verifier rejected '" + entry.name + "' at insn " +
                                  std::to_string(err->insn_index) + ": " + err->reason);
    }
    for (const auto& diag : analysis.diagnostics) {
      if (diag.severity != ebpf::Severity::kWarning) continue;
      ++vstats.warnings;
      kLog.warn("extension '", entry.name, "': ", diag.to_string());
    }
    ++vstats.verified;
    auto prog = std::make_unique<LoadedProgram>(entry);
    // One translation per manifest entry: lower the verified bytecode to
    // pre-decoded IR, eliding the bounds checks the analyzer just proved
    // safe. The image is immutable and shared by every slot's VM.
    {
      const std::uint64_t t0 = obs::now_ns();
      auto ir = std::make_unique<const ebpf::IrProgram>(
          ebpf::Translator::translate(entry.program, &analysis.facts));
      translation_stats_.ns += obs::now_ns() - t0;
      ++translation_stats_.programs;
      translation_stats_.ir_insns += ir->insns.size();
      translation_stats_.elided_checks += ir->elided_checks;
      translation_stats_.elided_obj_checks += ir->elided_obj_checks;
      translation_stats_.checked_accesses += ir->checked_accesses;
      prog->ir = std::move(ir);
    }
    // Compile the IR to native code once per manifest entry (tier 2). A
    // decline is never an error: the program simply runs tier 1, and the
    // reason lands in the jit_fallbacks counters. Compilation is attempted
    // even when the configured tier is lower so a later set_exec_mode(kJit)
    // can take effect without a reload.
    {
      ebpf::Jit::Result jr = ebpf::Jit::compile(*prog->ir);
      if (jr.ok()) {
        ++translation_stats_.jit_compiled;
        translation_stats_.jit_code_bytes += jr.program->code_bytes();
        prog->jit = std::move(jr.program);
      } else {
        ++translation_stats_.jit_fallbacks[static_cast<std::size_t>(jr.declined)];
      }
    }
    const std::string& group_name = entry.group.empty() ? entry.name : entry.group;
    auto [git, created] = groups_.try_emplace(group_name, nullptr);
    if (created) git->second = std::make_unique<GroupState>(options_.shared_pool_size);
    git->second->map_capacity_hint =
        std::max(git->second->map_capacity_hint, entry.map_capacity_hint);
    prog->group = git->second.get();
    // One interpreter per execution slot, all instantiated from the single
    // verified bytecode — shard-local mutable state, shared immutable code.
    prog->vms.reserve(slots_.size());
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      prog->vms.push_back(std::make_unique<ebpf::Vm>());
      prog->vms.back()->set_instruction_budget(entry.point == Op::kInit
                                                   ? options_.init_instruction_budget
                                                   : options_.instruction_budget);
      prog->vms.back()->set_translated(prog->ir.get());
      prog->vms.back()->set_jit(prog->jit.get());
      prog->vms.back()->set_exec_mode(options_.exec_mode);
      bind_helpers(*prog, slot);
    }
    prog->index = static_cast<std::uint16_t>(programs_.size());
    chains_[static_cast<std::size_t>(entry.point)].push_back(prog.get());
    loaded_now.push_back(prog.get());
    programs_.push_back(std::move(prog));
  }
  // The manifest defines execution order within each insertion point.
  for (auto& chain : chains_) {
    std::stable_sort(chain.begin(), chain.end(),
                     [](const LoadedProgram* a, const LoadedProgram* b) {
                       return a->entry.order < b->entry.order;
                     });
  }
  // Initialisation programs run once, immediately, in chain order.
  for (LoadedProgram* prog : chains_[static_cast<std::size_t>(Op::kInit)]) {
    if (std::find(loaded_now.begin(), loaded_now.end(), prog) != loaded_now.end()) {
      run_init(*prog);
    }
  }
}

void Vmm::unload_all() {
  for (auto& chain : chains_) chain.clear();
  programs_.clear();
  groups_.clear();
}

bool Vmm::set_exec_mode(std::string_view program, ebpf::ExecMode mode) noexcept {
  bool found = false;
  for (auto& prog : programs_) {
    if (prog->entry.name != program) continue;
    for (auto& vm : prog->vms) vm->set_exec_mode(mode);
    found = true;
  }
  return found;
}

void Vmm::set_exec_mode(ebpf::ExecMode mode) noexcept {
  options_.exec_mode = mode;
  for (auto& prog : programs_) {
    for (auto& vm : prog->vms) vm->set_exec_mode(mode);
  }
}

Vmm::Stats Vmm::stats() const noexcept {
  Stats total;
  for (const auto& slot : slots_) {
    total.invocations += slot->stats.invocations;
    total.extension_handled += slot->stats.extension_handled;
    total.next_yields += slot->stats.next_yields;
    total.faults += slot->stats.faults;
    total.native_fallbacks += slot->stats.native_fallbacks;
    total.tier_runs[0] += slot->stats.tier_runs[0];
    total.tier_runs[1] += slot->stats.tier_runs[1];
    total.tier_runs[2] += slot->stats.tier_runs[2];
    for (std::size_t i = 0; i < kOpCount; ++i) {
      total.faults_by_op[i] += slot->stats.faults_by_op[i];
    }
    for (std::size_t i = 0; i < kFaultClassCount; ++i) {
      total.faults_by_class[i] += slot->stats.faults_by_class[i];
    }
  }
  return total;
}

void Vmm::reset_stats() noexcept {
  for (auto& slot : slots_) slot->stats = Stats{};
}

void Vmm::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& reg = telemetry_->registry();
  // Ops start at 1 (see api.hpp); index 0 stays unused.
  for (std::size_t i = 1; i < kOpCount; ++i) {
    const std::string point(to_string(static_cast<Op>(i)));
    op_telemetry_[i].runs =
        reg.counter("xbgp_vmm_program_runs_total{point=\"" + point + "\"}",
                    "Extension program executions per insertion point");
    op_telemetry_[i].exec_ns =
        reg.histogram("xbgp_vmm_exec_ns{point=\"" + point + "\"}",
                      "Wall-clock ns per extension program execution (tracing only)");
  }
  // Pull collector: the per-slot Stats/VerifyStats already fold on read, so
  // exposing them costs nothing on the hot path.
  reg.add_collector([this](obs::Snapshot& out) {
    const Stats s = stats();
    out.counter("xbgp_vmm_invocations_total",
                "execute() calls that found a chain attached", s.invocations);
    out.counter("xbgp_vmm_extension_handled_total",
                "Chain executions where an extension returned a result",
                s.extension_handled);
    out.counter("xbgp_vmm_next_yields_total", "next() delegations", s.next_yields);
    out.counter("xbgp_vmm_faults_total", "Programs stopped on a monitored error",
                s.faults);
    out.counter("xbgp_vmm_native_fallbacks_total",
                "Chains that fell back to the host's native default",
                s.native_fallbacks);
    out.counter("xbgp_vmm_tier_runs_total{tier=\"reference\"}",
                "Program executions on the tier-0 reference interpreter",
                s.tier_runs[0]);
    out.counter("xbgp_vmm_tier_runs_total{tier=\"fast\"}",
                "Program executions on the fast pre-decoded IR tier",
                s.tier_runs[1]);
    out.counter("xbgp_vmm_tier_runs_total{tier=\"jit\"}",
                "Program executions on the tier-2 native JIT",
                s.tier_runs[2]);
    const TranslationStats& t = translation_stats_;
    out.counter("xbgp_vmm_translations_total",
                "Bytecodes lowered to pre-decoded IR at load time", t.programs);
    out.counter("xbgp_vmm_translation_ns_total",
                "Wall-clock ns spent translating at load time", t.ns);
    out.counter("xbgp_vmm_translation_ir_insns_total",
                "IR instructions emitted by the translator", t.ir_insns);
    out.counter("xbgp_vmm_checks_elided_total",
                "Runtime bounds checks dropped via analyzer-proven facts",
                t.elided_checks);
    out.counter("xbgp_vmm_checks_elided_obj_total",
                "Elided checks on helper-returned ctx/attr objects (subset)",
                t.elided_obj_checks);
    out.counter("xbgp_vmm_checks_retained_total",
                "Runtime bounds checks kept on translated accesses",
                t.checked_accesses);
    out.counter("xbgp_vmm_jit_compiled_total",
                "Manifest entries compiled to a native tier-2 image",
                t.jit_compiled);
    out.counter("xbgp_vmm_jit_code_bytes",
                "Native code bytes emitted by the tier-2 JIT", t.jit_code_bytes);
    for (std::size_t i = 1; i < ebpf::kJitFallbackCount; ++i) {
      out.counter(std::string("xbgp_vmm_jit_fallbacks_total{reason=\"") +
                      to_string(static_cast<ebpf::JitFallback>(i)) + "\"}",
                  "JIT compilations declined (program runs tier 1)",
                  t.jit_fallbacks[i]);
    }
    for (std::size_t i = 1; i < kOpCount; ++i) {
      const std::string point(to_string(static_cast<Op>(i)));
      out.counter("xbgp_vmm_faults_by_point_total{point=\"" + point + "\"}",
                  "Extension faults per insertion point", s.faults_by_op[i]);
      const VerifyStats& vs = verify_stats_[i];
      out.counter("xbgp_vmm_verified_total{point=\"" + point + "\"}",
                  "Programs that passed load-time verification", vs.verified);
      out.counter("xbgp_vmm_verify_rejected_total{point=\"" + point + "\"}",
                  "Programs refused at load time", vs.rejected);
      out.counter("xbgp_vmm_verify_warnings_total{point=\"" + point + "\"}",
                  "Warning-severity findings on attached programs", vs.warnings);
    }
    for (std::size_t c = 0; c < kFaultClassCount; ++c) {
      out.counter(std::string("xbgp_vmm_faults_by_class_total{class=\"") +
                      to_string(static_cast<FaultClass>(c)) + "\"}",
                  "Extension faults per FaultClass", s.faults_by_class[c]);
    }
  });
}

void Vmm::run_init(LoadedProgram& prog) {
  ExecContext ctx;
  ctx.op = Op::kInit;
  ctx.current_program = prog.index;
  ctx.exec_slot = 0;
  ExecSlot& slot = *slots_[0];
  slot.current_ctx = &ctx;
  slot.arena.reset();
  auto& vm = *prog.vms[0];
  auto& mem = vm.memory();
  mem.reset_to_base();
  mem.add_region(slot.arena.base(), slot.arena.capacity(), true, "ephemeral-arena");
  mem.add_region(prog.group->pool.arena().base(), prog.group->pool.arena().capacity(), true,
                 "shared-pool");
  obs::Telemetry* const tel = telemetry_;
  const bool tracing = tel != nullptr && tel->tracing();
  std::uint64_t t0 = 0, insns0 = 0, helpers0 = 0;
  if (tracing) {
    t0 = obs::now_ns();
    insns0 = vm.instructions_retired();
    helpers0 = vm.helper_calls();
  }
  const auto res = vm.run(prog.entry.program, static_cast<std::uint64_t>(Op::kInit));
  prog.runs.fetch_add(1, std::memory_order_relaxed);
  ++slot.stats.tier_runs[static_cast<std::size_t>(vm.effective_mode())];
  constexpr std::size_t op_idx = static_cast<std::size_t>(Op::kInit);
  if (tel != nullptr) tel->registry().add(op_telemetry_[op_idx].runs, 1, 0);
  obs::Span* span = nullptr;
  if (tracing) {
    const std::uint64_t t1 = obs::now_ns();
    tel->registry().observe(op_telemetry_[op_idx].exec_ns, t1 - t0, 0);
    span = tel->trace().append(0);
    span->start_ns = t0;
    span->duration_ns = t1 - t0;
    span->instructions = static_cast<std::uint32_t>(vm.instructions_retired() - insns0);
    span->helper_calls = static_cast<std::uint32_t>(vm.helper_calls() - helpers0);
    span->op = static_cast<std::uint8_t>(Op::kInit);
    span->verdict = obs::SpanVerdict::kHandled;
    span->fault_class = obs::kSpanNoFault;
    span->slot = 0;
    obs::set_span_program(*span, prog.entry.name);
  }
  slot.current_ctx = nullptr;
  if (res.faulted()) {
    const FaultClass cls = classify_fault(res.fault.kind);
    if (span != nullptr) {
      span->verdict = obs::SpanVerdict::kFault;
      span->fault_class = static_cast<std::uint8_t>(cls);
    }
    ++slot.stats.faults;
    ++slot.stats.faults_by_op[op_idx];
    ++slot.stats.faults_by_class[static_cast<std::size_t>(cls)];
    host_.notify_extension_fault(
        FaultInfo{Op::kInit, cls, prog.entry.name, res.fault.detail, 0});
  }
}

Vmm::ChainOutcome Vmm::run_chain(std::vector<LoadedProgram*>& chain, ExecContext& ctx, Op op,
                                 std::size_t slot_index) {
  ExecSlot& slot = *slots_[slot_index];
  obs::Telemetry* const tel = telemetry_;
  const bool tracing = tel != nullptr && tel->tracing();
  const std::size_t op_idx = static_cast<std::size_t>(op);
  slot.current_ctx = &ctx;
  ChainOutcome out;
  obs::Span* last_span = nullptr;
  for (LoadedProgram* prog : chain) {
    // Stamp the running program into the context so host-API mutation
    // funnels can attribute attribute rewrites (provenance + event log).
    ctx.current_program = prog->index;
    ctx.exec_slot = static_cast<std::uint16_t>(slot_index);
    slot.arena.reset();
    auto& vm = *prog->vms[slot_index];
    auto& mem = vm.memory();
    mem.reset_to_base();
    mem.add_region(slot.arena.base(), slot.arena.capacity(), true, "ephemeral-arena");
    mem.add_region(prog->group->pool.arena().base(), prog->group->pool.arena().capacity(),
                   true, "shared-pool");
    std::uint64_t t0 = 0, insns0 = 0, helpers0 = 0;
    if (tracing) {
      t0 = obs::now_ns();
      insns0 = vm.instructions_retired();
      helpers0 = vm.helper_calls();
    }
    const auto res = vm.run(prog->entry.program, static_cast<std::uint64_t>(op));
    prog->runs.fetch_add(1, std::memory_order_relaxed);
    ++slot.stats.tier_runs[static_cast<std::size_t>(vm.effective_mode())];
    if (tel != nullptr) tel->registry().add(op_telemetry_[op_idx].runs, 1, slot_index);
    obs::Span* span = nullptr;
    if (tracing) {
      const std::uint64_t t1 = obs::now_ns();
      tel->registry().observe(op_telemetry_[op_idx].exec_ns, t1 - t0, slot_index);
      span = tel->trace().append(slot_index);
      span->start_ns = t0;
      span->duration_ns = t1 - t0;
      span->instructions = static_cast<std::uint32_t>(vm.instructions_retired() - insns0);
      span->helper_calls = static_cast<std::uint32_t>(vm.helper_calls() - helpers0);
      span->op = static_cast<std::uint8_t>(op);
      span->verdict = obs::SpanVerdict::kHandled;
      span->fault_class = obs::kSpanNoFault;
      span->slot = static_cast<std::uint8_t>(slot_index);
      obs::set_span_program(*span, prog->entry.name);
      last_span = span;
    }
    if (res.ok()) {
      ++slot.stats.extension_handled;
      out.handled = true;
      out.value = res.value;
      break;
    }
    if (res.yielded_next()) {
      if (span != nullptr) span->verdict = obs::SpanVerdict::kNext;
      ++slot.stats.next_yields;
      continue;  // "delegates the outcome to another one by calling next()"
    }
    // Monitored error: stop, classify, notify, fall back to the native
    // default.
    const FaultClass cls = classify_fault(res.fault.kind);
    if (span != nullptr) {
      span->verdict = obs::SpanVerdict::kFault;
      span->fault_class = static_cast<std::uint8_t>(cls);
    }
    ++slot.stats.faults;
    ++slot.stats.faults_by_op[op_idx];
    ++slot.stats.faults_by_class[static_cast<std::size_t>(cls)];
    host_.notify_extension_fault(
        FaultInfo{op, cls, prog->entry.name, res.fault.detail, slot_index});
    break;
  }
  // Chain exhausted with every program yielding next(): the host's native
  // default runs — amend the trailing span so the trace shows the fallback.
  if (!out.handled && last_span != nullptr && last_span->verdict == obs::SpanVerdict::kNext)
    last_span->verdict = obs::SpanVerdict::kNativeFallback;
  slot.current_ctx = nullptr;
  return out;
}

namespace {

/// Reads `len` bytes of VM memory into a span after bounds validation.
bool vm_read(const ebpf::Vm& vm, std::uint64_t ptr, std::size_t len,
             std::span<const std::uint8_t>& out) {
  if (len > 0 && !vm.memory().check(ptr, len, /*write=*/false)) return false;
  out = std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(ptr), len);
  return true;
}

std::uint64_t to_vm_ptr(void* p) { return reinterpret_cast<std::uint64_t>(p); }

}  // namespace

void Vmm::bind_helpers(LoadedProgram& prog, std::size_t slot_index) {
  LoadedProgram* lp = &prog;
  // Slot-local captures: this helper table belongs to exactly one
  // (program, slot) pair, so every mutable object it touches is either
  // slot-local (vm, arena, current context) or mutex-guarded (group state).
  ExecSlot* slot = slots_[slot_index].get();
  ebpf::Vm* vmp = prog.vms[slot_index].get();
  auto& vm = *vmp;

  vm.set_helper(helper::kNext, [](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                                  std::uint64_t) { return HelperResult::next(); });

  vm.set_helper(helper::kGetArg, [slot](std::uint64_t id, std::uint64_t, std::uint64_t,
                                        std::uint64_t, std::uint64_t) {
    const auto* a = slot->current_ctx->find_arg(static_cast<std::uint8_t>(id));
    if (a == nullptr) return HelperResult::ok(0);
    void* copy = slot->arena.store(a->data.data(), a->data.size());
    if (copy == nullptr) return HelperResult::fail("ephemeral arena exhausted in get_arg");
    return HelperResult::ok(to_vm_ptr(copy));
  });

  vm.set_helper(helper::kGetArgLen, [slot](std::uint64_t id, std::uint64_t, std::uint64_t,
                                           std::uint64_t, std::uint64_t) {
    const auto* a = slot->current_ctx->find_arg(static_cast<std::uint8_t>(id));
    return HelperResult::ok(a == nullptr ? static_cast<std::uint64_t>(-1) : a->data.size());
  });

  auto bind_peer = [this, slot](bool src) {
    return [this, slot, src](std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                             std::uint64_t) {
      PeerInfo info;
      const bool ok = src ? host_.src_peer_info(*slot->current_ctx, info)
                          : host_.peer_info(*slot->current_ctx, info);
      if (!ok) return HelperResult::ok(0);
      void* copy = slot->arena.store(&info, sizeof(info));
      if (copy == nullptr) return HelperResult::fail("ephemeral arena exhausted in peer_info");
      return HelperResult::ok(to_vm_ptr(copy));
    };
  };
  vm.set_helper(helper::kGetPeerInfo, bind_peer(false));
  vm.set_helper(helper::kGetSrcPeerInfo, bind_peer(true));

  auto bind_get_attr = [this, slot](bool alt) {
    return [this, slot, alt](std::uint64_t code, std::uint64_t, std::uint64_t, std::uint64_t,
                             std::uint64_t) {
      auto attr = alt ? host_.get_attr_alt(*slot->current_ctx, static_cast<std::uint8_t>(code))
                      : host_.get_attr(*slot->current_ctx, static_cast<std::uint8_t>(code));
      if (!attr) return HelperResult::ok(0);
      void* block = slot->arena.alloc(sizeof(AttrHdr) + attr->value.size());
      if (block == nullptr) return HelperResult::fail("ephemeral arena exhausted in get_attr");
      AttrHdr hdr;
      hdr.flags = attr->flags;
      hdr.code = attr->code;
      hdr.len = static_cast<std::uint16_t>(attr->value.size());
      std::memcpy(block, &hdr, sizeof(hdr));
      if (!attr->value.empty()) {
        std::memcpy(static_cast<std::uint8_t*>(block) + sizeof(hdr), attr->value.data(),
                    attr->value.size());
      }
      return HelperResult::ok(to_vm_ptr(block));
    };
  };
  vm.set_helper(helper::kGetAttr, bind_get_attr(false));
  vm.set_helper(helper::kGetAttrAlt, bind_get_attr(true));

  auto bind_put_attr = [this, slot, vmp](bool add) {
    return [this, slot, vmp, add](std::uint64_t code, std::uint64_t flags, std::uint64_t ptr,
                                  std::uint64_t len, std::uint64_t) {
      std::span<const std::uint8_t> data;
      if (!vm_read(*vmp, ptr, len, data)) {
        return HelperResult::fail(add ? "add_attr: bad value pointer"
                                      : "set_attr: bad value pointer");
      }
      bgp::WireAttr attr;
      attr.flags = static_cast<std::uint8_t>(flags);
      attr.code = static_cast<std::uint8_t>(code);
      attr.value.assign(data.begin(), data.end());
      const bool ok = add ? host_.add_attr(*slot->current_ctx, std::move(attr))
                          : host_.set_attr(*slot->current_ctx, std::move(attr));
      return HelperResult::ok(ok ? 1 : 0);
    };
  };
  vm.set_helper(helper::kSetAttr, bind_put_attr(false));
  vm.set_helper(helper::kAddAttr, bind_put_attr(true));

  vm.set_helper(helper::kGetNexthop, [this, slot](std::uint64_t, std::uint64_t, std::uint64_t,
                                                  std::uint64_t, std::uint64_t) {
    NexthopInfo info;
    if (!host_.nexthop_info(*slot->current_ctx, info)) return HelperResult::ok(0);
    void* copy = slot->arena.store(&info, sizeof(info));
    if (copy == nullptr) return HelperResult::fail("ephemeral arena exhausted in get_nexthop");
    return HelperResult::ok(to_vm_ptr(copy));
  });

  auto read_key = [vmp](std::uint64_t key_ptr, std::uint64_t key_len, std::string& out) {
    if (key_len == 0 || key_len > 64) return false;
    std::span<const std::uint8_t> data;
    if (!vm_read(*vmp, key_ptr, key_len, data)) return false;
    out.assign(reinterpret_cast<const char*>(data.data()), data.size());
    return true;
  };

  vm.set_helper(helper::kGetXtra, [this, vmp, read_key](std::uint64_t key_ptr,
                                                        std::uint64_t key_len, std::uint64_t,
                                                        std::uint64_t, std::uint64_t) {
    std::string key;
    if (!read_key(key_ptr, key_len, key)) return HelperResult::fail("get_xtra: bad key");
    auto blob = host_.get_xtra(key);
    if (blob.empty()) return HelperResult::ok(0);
    // Expose the host blob read-only for the remainder of this invocation.
    vmp->memory().add_region(blob.data(), blob.size(), /*writable=*/false, "xtra:" + key);
    return HelperResult::ok(to_vm_ptr(const_cast<std::uint8_t*>(blob.data())));
  });

  vm.set_helper(helper::kGetXtraLen, [this, read_key](std::uint64_t key_ptr,
                                                      std::uint64_t key_len, std::uint64_t,
                                                      std::uint64_t, std::uint64_t) {
    std::string key;
    if (!read_key(key_ptr, key_len, key)) return HelperResult::fail("get_xtra_len: bad key");
    auto blob = host_.get_xtra(key);
    return HelperResult::ok(blob.empty() ? static_cast<std::uint64_t>(-1) : blob.size());
  });

  vm.set_helper(helper::kWriteBuf, [this, slot, vmp](std::uint64_t ptr, std::uint64_t len,
                                                     std::uint64_t, std::uint64_t,
                                                     std::uint64_t) {
    std::span<const std::uint8_t> data;
    if (!vm_read(*vmp, ptr, len, data)) return HelperResult::fail("write_buf: bad pointer");
    return HelperResult::ok(host_.write_buf(*slot->current_ctx, data) ? len : 0);
  });

  vm.set_helper(helper::kCtxMalloc, [slot](std::uint64_t size, std::uint64_t, std::uint64_t,
                                           std::uint64_t, std::uint64_t) {
    if (size == 0 || size > slot->arena.capacity()) return HelperResult::ok(0);
    void* p = slot->arena.alloc(size);
    return HelperResult::ok(p == nullptr ? 0 : to_vm_ptr(p));
  });

  vm.set_helper(helper::kShmNew, [lp](std::uint64_t key, std::uint64_t size, std::uint64_t,
                                      std::uint64_t, std::uint64_t) {
    if (size == 0) return HelperResult::ok(0);
    std::lock_guard<std::mutex> lock(lp->group->mu);
    void* p = lp->group->pool.get_or_create(key, size);
    return HelperResult::ok(p == nullptr ? 0 : to_vm_ptr(p));
  });

  vm.set_helper(helper::kShmGet, [lp](std::uint64_t key, std::uint64_t, std::uint64_t,
                                      std::uint64_t, std::uint64_t) {
    std::lock_guard<std::mutex> lock(lp->group->mu);
    void* p = lp->group->pool.get(key);
    return HelperResult::ok(p == nullptr ? 0 : to_vm_ptr(p));
  });

  vm.set_helper(helper::kMapUpdate, [lp](std::uint64_t map_id, std::uint64_t k1,
                                         std::uint64_t k2, std::uint64_t value,
                                         std::uint64_t) {
    std::lock_guard<std::mutex> lock(lp->group->mu);
    auto [it, inserted] = lp->group->maps.try_emplace(static_cast<std::uint32_t>(map_id));
    if (inserted && lp->group->map_capacity_hint > 0) {
      it->second.reserve(lp->group->map_capacity_hint);
    }
    it->second.update(k1, k2, value);
    return HelperResult::ok(1);
  });

  vm.set_helper(helper::kMapLookup, [lp](std::uint64_t map_id, std::uint64_t k1,
                                         std::uint64_t k2, std::uint64_t, std::uint64_t) {
    std::lock_guard<std::mutex> lock(lp->group->mu);
    auto it = lp->group->maps.find(static_cast<std::uint32_t>(map_id));
    if (it == lp->group->maps.end()) return HelperResult::ok(0);
    return HelperResult::ok(it->second.lookup(k1, k2));
  });

  vm.set_helper(helper::kPrint, [this, vmp](std::uint64_t ptr, std::uint64_t len, std::uint64_t,
                                            std::uint64_t, std::uint64_t) {
    if (len > 4096) return HelperResult::fail("ebpf_print: message too long");
    std::span<const std::uint8_t> data;
    if (!vm_read(*vmp, ptr, len, data)) return HelperResult::fail("ebpf_print: bad pointer");
    host_.ebpf_print(std::string_view(reinterpret_cast<const char*>(data.data()), data.size()));
    return HelperResult::ok(0);
  });

  vm.set_helper(helper::kMemcpy, [vmp](std::uint64_t dst, std::uint64_t src, std::uint64_t len,
                                       std::uint64_t, std::uint64_t) {
    if (len == 0) return HelperResult::ok(dst);
    if (!vmp->memory().check(dst, len, /*write=*/true) ||
        !vmp->memory().check(src, len, /*write=*/false)) {
      return HelperResult::fail("ebpf_memcpy: bad pointers");
    }
    std::memmove(reinterpret_cast<void*>(dst), reinterpret_cast<const void*>(src), len);
    return HelperResult::ok(dst);
  });

  vm.set_helper(helper::kRibAddRoute, [this, vmp](std::uint64_t prefix_ptr, std::uint64_t nh,
                                                  std::uint64_t, std::uint64_t, std::uint64_t) {
    std::span<const std::uint8_t> data;
    if (!vm_read(*vmp, prefix_ptr, sizeof(PrefixArg), data)) {
      return HelperResult::fail("rib_add_route: bad prefix pointer");
    }
    PrefixArg arg;
    std::memcpy(&arg, data.data(), sizeof(arg));
    const bool ok = host_.rib_add_route(util::Prefix(util::Ipv4Addr(arg.addr), arg.len),
                                        util::Ipv4Addr(static_cast<std::uint32_t>(nh)));
    return HelperResult::ok(ok ? 1 : 0);
  });

  vm.set_helper(helper::kRibLookup, [this, vmp](std::uint64_t prefix_ptr, std::uint64_t,
                                                std::uint64_t, std::uint64_t, std::uint64_t) {
    std::span<const std::uint8_t> data;
    if (!vm_read(*vmp, prefix_ptr, sizeof(PrefixArg), data)) {
      return HelperResult::fail("rib_lookup: bad prefix pointer");
    }
    PrefixArg arg;
    std::memcpy(&arg, data.data(), sizeof(arg));
    auto nh = host_.rib_lookup(util::Prefix(util::Ipv4Addr(arg.addr), arg.len));
    return HelperResult::ok(nh ? nh->value() : 0);
  });

  vm.set_helper(helper::kSetRouteMeta, [this, slot](std::uint64_t value, std::uint64_t,
                                                    std::uint64_t, std::uint64_t,
                                                    std::uint64_t) {
    return HelperResult::ok(
        host_.set_route_meta(*slot->current_ctx, static_cast<std::uint32_t>(value)) ? 1 : 0);
  });

  vm.set_helper(helper::kGetRouteMeta, [this, slot](std::uint64_t, std::uint64_t, std::uint64_t,
                                                    std::uint64_t, std::uint64_t) {
    auto meta = host_.get_route_meta(*slot->current_ctx);
    return HelperResult::ok(meta.value_or(0));
  });

  auto swap32 = [](std::uint64_t v, std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t) {
    return HelperResult::ok(util::host_to_be32(static_cast<std::uint32_t>(v)));
  };
  vm.set_helper(helper::kHtonl, swap32);
  vm.set_helper(helper::kNtohl, swap32);

  vm.set_helper(helper::kSqrtU64, [](std::uint64_t v, std::uint64_t, std::uint64_t,
                                     std::uint64_t, std::uint64_t) {
    auto root = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(v)));
    while (root > 0 && root * root > v) --root;
    while ((root + 1) * (root + 1) <= v) ++root;
    return HelperResult::ok(root);
  });
}

}  // namespace xb::xbgp
