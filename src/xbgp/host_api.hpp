// The host side of the xBGP API.
//
// Every xBGP-compliant implementation provides this interface; the VMM's
// helper bindings translate bytecode helper calls into these methods. This
// is precisely the integration surface §2.1 quantifies (589 LoC in
// FRRouting, 400 in BIRD): the host converts between its internal attribute
// storage and the neutral network-byte-order representation here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "bgp/attr.hpp"
#include "util/ip.hpp"
#include "xbgp/api.hpp"
#include "xbgp/context.hpp"

namespace xb::xbgp {

/// Extension fault taxonomy — the VMM side of the typed error spine. Every
/// monitored execution error ("stops them in case of error", §2.1) is
/// classified into one of these before the host is notified, so hosts can
/// count and react per class instead of parsing detail strings.
enum class FaultClass : std::uint8_t {
  kVerify = 0,             // illegal instruction / div-by-zero: a verifier gap
  kInstructionBudget = 1,  // instruction budget exhausted (runaway loop)
  kMemoryBounds = 2,       // load/store outside the granted regions
  kHelperDenied = 3,       // call to an unknown or unbound helper
  kHelperError = 4,        // a bound helper reported failure
};
inline constexpr std::size_t kFaultClassCount = 5;

[[nodiscard]] constexpr const char* to_string(FaultClass cls) {
  switch (cls) {
    case FaultClass::kVerify: return "verify";
    case FaultClass::kInstructionBudget: return "instruction-budget";
    case FaultClass::kMemoryBounds: return "memory-bounds";
    case FaultClass::kHelperDenied: return "helper-denied";
    case FaultClass::kHelperError: return "helper-error";
  }
  return "?";
}

/// Structured fault report handed to the host on every extension fault.
/// The string views borrow from the VMM's loaded program / run result and
/// are only valid for the duration of the notify call.
struct FaultInfo {
  Op op = Op::kInit;
  FaultClass cls = FaultClass::kVerify;
  std::string_view program;
  std::string_view detail;
  /// Execution slot the faulting chain ran on. Lets the host attribute the
  /// fault to per-slot telemetry cells without taking a lock: the notify
  /// call runs on the thread that owns this slot.
  std::size_t slot = 0;
};

class HostApi {
 public:
  virtual ~HostApi() = default;

  /// Peer the operation applies to (ctx.peer). Returns false if absent.
  virtual bool peer_info(const ExecContext& ctx, PeerInfo& out) = 0;
  /// Peer the route was learned from (ctx.src_peer).
  virtual bool src_peer_info(const ExecContext& ctx, PeerInfo& out) = 0;

  /// Reads an attribute of the context route in neutral wire form. For
  /// kReceiveMessage contexts this consults the incoming attribute set.
  virtual std::optional<bgp::WireAttr> get_attr(const ExecContext& ctx, std::uint8_t code) = 0;
  /// kDecision only: reads an attribute of the comparison's other route
  /// (ctx.route_alt). Default: absent.
  virtual std::optional<bgp::WireAttr> get_attr_alt(const ExecContext& ctx, std::uint8_t code) {
    (void)ctx;
    (void)code;
    return std::nullopt;
  }
  /// Writes/replaces an attribute on the context route (neutral wire form in,
  /// host representation inside).
  virtual bool set_attr(ExecContext& ctx, bgp::WireAttr attr) = 0;
  /// Adds an attribute to the incoming, not-yet-installed route
  /// (kReceiveMessage only).
  virtual bool add_attr(ExecContext& ctx, bgp::WireAttr attr) = 0;

  /// Nexthop of the context route, with its IGP metric.
  virtual bool nexthop_info(const ExecContext& ctx, NexthopInfo& out) = 0;

  /// Named configuration blob ("xtra" data: router id, coordinates, ROA
  /// table, ...). The span must stay valid for the router's lifetime.
  virtual std::span<const std::uint8_t> get_xtra(std::string_view key) = 0;

  /// Appends raw bytes (pre-encoded attributes) to the outgoing UPDATE
  /// (kEncodeMessage only).
  virtual bool write_buf(ExecContext& ctx, std::span<const std::uint8_t> data) = 0;

  /// Installs a route into the router's RIB / looks one up — the "hidden
  /// arguments" example of §2.1.
  virtual bool rib_add_route(const util::Prefix& prefix, util::Ipv4Addr nexthop) = 0;
  virtual std::optional<util::Ipv4Addr> rib_lookup(const util::Prefix& prefix) = 0;

  /// Per-route metadata word (e.g. RFC 6811 validation state).
  virtual bool set_route_meta(ExecContext& ctx, std::uint32_t value) = 0;
  virtual std::optional<std::uint32_t> get_route_meta(const ExecContext& ctx) = 0;

  /// Called by the VMM when an extension faults and the operation fell back
  /// to the native default ("notifies the host implementation of the
  /// error", §2.1). The fault is pre-classified (FaultClass) so the host
  /// can fold it into per-class counters.
  virtual void notify_extension_fault(const FaultInfo& fault) = 0;

  /// Debug print from bytecode.
  virtual void ebpf_print(std::string_view message) = 0;
};

}  // namespace xb::xbgp
