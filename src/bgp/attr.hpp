// The neutral path-attribute representation: wire bytes.
//
// xBGP mandates that attribute data crosses the vendor-neutral API in network
// byte order (paper §2.1). WireAttr *is* that representation: flags, type
// code and the raw value bytes exactly as they appear in an UPDATE. Host
// implementations convert between WireAttr and their own internals — Wren
// stores WireAttrs nearly as-is, Fir decomposes them into host-order structs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/types.hpp"
#include "util/bytes.hpp"

namespace xb::bgp {

struct WireAttr {
  std::uint8_t flags = 0;
  std::uint8_t code = 0;
  std::vector<std::uint8_t> value;

  [[nodiscard]] bool optional() const noexcept { return flags & attr_flag::kOptional; }
  [[nodiscard]] bool transitive() const noexcept { return flags & attr_flag::kTransitive; }
  [[nodiscard]] bool partial() const noexcept { return flags & attr_flag::kPartial; }

  friend bool operator==(const WireAttr&, const WireAttr&) = default;
};

/// An ordered set of path attributes (ascending type code, unique codes),
/// mirroring the canonical encoding order in an UPDATE message.
class AttributeSet {
 public:
  AttributeSet() = default;

  /// Inserts or replaces the attribute with `attr.code`.
  void put(WireAttr attr);
  /// Removes the attribute if present; returns true if it was there.
  bool remove(std::uint8_t code);
  [[nodiscard]] const WireAttr* find(std::uint8_t code) const noexcept;
  [[nodiscard]] bool has(std::uint8_t code) const noexcept { return find(code) != nullptr; }

  [[nodiscard]] const std::vector<WireAttr>& all() const noexcept { return attrs_; }
  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return attrs_.empty(); }

  /// Encodes the "Path Attributes" portion of an UPDATE (without the
  /// 2-byte total length, which the message codec writes).
  void encode(util::ByteWriter& w) const;
  static void encode_one(util::ByteWriter& w, const WireAttr& attr);

  /// Decodes exactly `len` bytes of path attributes.
  /// Throws util::BufferError / std::invalid_argument on malformed input.
  static AttributeSet decode(util::ByteReader& r, std::size_t len);

  friend bool operator==(const AttributeSet&, const AttributeSet&) = default;

 private:
  std::vector<WireAttr> attrs_;
};

// --- Typed constructors/parsers for well-known attributes --------------------
// Builders produce canonical flags; parsers return nullopt on wrong size.

WireAttr make_origin(Origin origin);
std::optional<Origin> parse_origin(const WireAttr& attr);

WireAttr make_next_hop(util::Ipv4Addr nh);
std::optional<util::Ipv4Addr> parse_next_hop(const WireAttr& attr);

WireAttr make_med(std::uint32_t med);
std::optional<std::uint32_t> parse_med(const WireAttr& attr);

WireAttr make_local_pref(std::uint32_t pref);
std::optional<std::uint32_t> parse_local_pref(const WireAttr& attr);

WireAttr make_communities(std::span<const std::uint32_t> communities);
std::vector<std::uint32_t> parse_communities(const WireAttr& attr);

WireAttr make_originator_id(RouterId id);
std::optional<RouterId> parse_originator_id(const WireAttr& attr);

WireAttr make_cluster_list(std::span<const std::uint32_t> clusters);
std::vector<std::uint32_t> parse_cluster_list(const WireAttr& attr);

/// GeoLoc (paper §2): latitude then longitude in signed micro-degrees
/// (1e-6 °), big-endian. Integer fixed-point keeps the attribute computable
/// by eBPF extension code, which has no floating point. Optional transitive,
/// code attr_code::kGeoLoc.
WireAttr make_geoloc(std::int32_t lat_microdeg, std::int32_t lon_microdeg);
struct GeoLoc {
  std::int32_t lat_microdeg = 0;
  std::int32_t lon_microdeg = 0;
};
std::optional<GeoLoc> parse_geoloc(const WireAttr& attr);

}  // namespace xb::bgp
