// The neutral path-attribute representation: wire bytes.
//
// xBGP mandates that attribute data crosses the vendor-neutral API in network
// byte order (paper §2.1). WireAttr *is* that representation: flags, type
// code and the raw value bytes exactly as they appear in an UPDATE. Host
// implementations convert between WireAttr and their own internals — Wren
// stores WireAttrs nearly as-is, Fir decomposes them into host-order structs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/types.hpp"
#include "util/bytes.hpp"

namespace xb::bgp {

struct WireAttr {
  std::uint8_t flags = 0;
  std::uint8_t code = 0;
  std::vector<std::uint8_t> value;

  [[nodiscard]] bool optional() const noexcept { return flags & attr_flag::kOptional; }
  [[nodiscard]] bool transitive() const noexcept { return flags & attr_flag::kTransitive; }
  [[nodiscard]] bool partial() const noexcept { return flags & attr_flag::kPartial; }

  friend bool operator==(const WireAttr&, const WireAttr&) = default;
};

/// An ordered set of path attributes (ascending type code, unique codes),
/// mirroring the canonical encoding order in an UPDATE message.
class AttributeSet {
 public:
  AttributeSet() = default;

  /// Inserts or replaces the attribute with `attr.code`.
  void put(WireAttr attr);
  /// Removes the attribute if present; returns true if it was there.
  bool remove(std::uint8_t code);
  [[nodiscard]] const WireAttr* find(std::uint8_t code) const noexcept;
  [[nodiscard]] bool has(std::uint8_t code) const noexcept { return find(code) != nullptr; }

  [[nodiscard]] const std::vector<WireAttr>& all() const noexcept { return attrs_; }
  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return attrs_.empty(); }

  /// Encodes the "Path Attributes" portion of an UPDATE (without the
  /// 2-byte total length, which the message codec writes).
  void encode(util::ByteWriter& w) const;
  static void encode_one(util::ByteWriter& w, const WireAttr& attr);

  /// Decodes exactly `len` bytes of path attributes.
  /// Throws util::BufferError / std::invalid_argument on malformed input.
  static AttributeSet decode(util::ByteReader& r, std::size_t len);

  friend bool operator==(const AttributeSet&, const AttributeSet&) = default;

 private:
  std::vector<WireAttr> attrs_;
};

// --- Typed constructors/parsers for well-known attributes --------------------
// Builders produce canonical flags; parsers return nullopt on wrong size.

WireAttr make_origin(Origin origin);
std::optional<Origin> parse_origin(const WireAttr& attr);

WireAttr make_next_hop(util::Ipv4Addr nh);
std::optional<util::Ipv4Addr> parse_next_hop(const WireAttr& attr);

WireAttr make_med(std::uint32_t med);
std::optional<std::uint32_t> parse_med(const WireAttr& attr);

WireAttr make_local_pref(std::uint32_t pref);
std::optional<std::uint32_t> parse_local_pref(const WireAttr& attr);

WireAttr make_communities(std::span<const std::uint32_t> communities);
std::vector<std::uint32_t> parse_communities(const WireAttr& attr);

WireAttr make_originator_id(RouterId id);
std::optional<RouterId> parse_originator_id(const WireAttr& attr);

WireAttr make_cluster_list(std::span<const std::uint32_t> clusters);
std::vector<std::uint32_t> parse_cluster_list(const WireAttr& attr);

// --- Hash-consed attribute interning ----------------------------------------

/// Running counters of an Interner. `entries` is the live table size at the
/// time stats() was called; the other fields are monotonic.
struct InternStats {
  std::uint64_t hits = 0;       // intern() returned an existing object
  std::uint64_t misses = 0;     // intern() admitted a new canonical object
  std::uint64_t evictions = 0;  // canonical objects dropped (refcount zero)
  std::uint64_t entries = 0;    // live table size at snapshot time
};

/// Hash-consing table for immutable host attribute sets.
///
/// Keyed on a canonical byte string (each host core derives it from the
/// attribute set's wire encoding, see Core::canonical_key), the table maps
/// every distinct attribute *value* to one shared canonical object, so
/// Adj-RIBs, the Loc-RIB and the per-group Adj-RIB-Outs store one pointer
/// per distinct attribute vector and value equality is pointer comparison.
///
/// Lifetime is reference-counted by construction: the table holds weak
/// references, and the canonical shared_ptr's deleter removes the table
/// slot when the last RIB entry drops it. The deleter keeps the internal
/// State alive (shared_ptr), so canonical objects may safely outlive the
/// Interner handle itself. intern() and stats() are thread-safe; pipeline
/// workers may intern concurrently with each other (never concurrently with
/// an eviction of the same key, which the mutex serialises anyway).
template <typename T>
class Interner {
 public:
  Interner() : state_(std::make_shared<State>()) {}

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the canonical object for `key`, admitting `value` as the new
  /// canonical representative when the key is unseen (or its previous
  /// holder is mid-eviction).
  std::shared_ptr<const T> intern(std::shared_ptr<const T> value, std::string key) {
    std::shared_ptr<State> state = state_;
    std::lock_guard<std::mutex> lock(state->mu);
    auto [it, inserted] = state->table.try_emplace(std::move(key));
    if (!inserted) {
      if (auto existing = it->second.lock()) {
        ++state->hits;
        return existing;
      }
      // The previous holder's refcount hit zero but its deleter has not
      // erased the slot yet; revive the slot with the new object. The late
      // deleter sees a non-expired slot and leaves it alone.
    }
    ++state->misses;
    const T* raw = value.get();  // before the move: argument order is unspecified
    std::shared_ptr<const T> canonical(raw, EntryDeleter{state, std::move(value), it->first});
    it->second = canonical;
    return canonical;
  }

  [[nodiscard]] InternStats stats() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    InternStats s;
    s.hits = state_->hits;
    s.misses = state_->misses;
    s.evictions = state_->evictions;
    s.entries = state_->table.size();
    return s;
  }

 private:
  struct State {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::weak_ptr<const T>> table;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  struct EntryDeleter {
    std::shared_ptr<State> state;
    std::shared_ptr<const T> storage;  // owns the object via its original control block
    std::string key;                   // own copy: the map node may already be gone
    void operator()(const T*) {
      std::lock_guard<std::mutex> lock(state->mu);
      auto it = state->table.find(key);
      if (it != state->table.end() && it->second.expired()) {
        state->table.erase(it);
        ++state->evictions;
      }
      storage.reset();  // the actual delete, via the original deleter
    }
  };

  std::shared_ptr<State> state_;
};

/// GeoLoc (paper §2): latitude then longitude in signed micro-degrees
/// (1e-6 °), big-endian. Integer fixed-point keeps the attribute computable
/// by eBPF extension code, which has no floating point. Optional transitive,
/// code attr_code::kGeoLoc.
WireAttr make_geoloc(std::int32_t lat_microdeg, std::int32_t lon_microdeg);
struct GeoLoc {
  std::int32_t lat_microdeg = 0;
  std::int32_t lon_microdeg = 0;
};
std::optional<GeoLoc> parse_geoloc(const WireAttr& attr);

}  // namespace xb::bgp
