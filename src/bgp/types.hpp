// Core BGP value types and protocol constants (RFC 4271).
#pragma once

#include <cstdint>

#include "util/ip.hpp"

namespace xb::bgp {

using Asn = std::uint32_t;       // 4-octet AS numbers throughout (RFC 6793)
using RouterId = std::uint32_t;  // BGP identifier, conventionally an IPv4 addr

enum class PeerType : std::uint8_t {
  kIbgp = 1,
  kEbgp = 2,
};

enum class Origin : std::uint8_t {
  kIgp = 0,
  kEgp = 1,
  kIncomplete = 2,
};

// --- Message types (RFC 4271 §4.1) -----------------------------------------
enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
  kRouteRefresh = 5,  // RFC 2918
};

inline constexpr std::size_t kHeaderSize = 19;     // marker(16)+len(2)+type(1)
inline constexpr std::size_t kMaxMessageSize = 4096;
inline constexpr std::uint8_t kMarkerByte = 0xFF;

// --- Path attribute type codes (IANA registry) -------------------------------
namespace attr_code {
inline constexpr std::uint8_t kOrigin = 1;
inline constexpr std::uint8_t kAsPath = 2;
inline constexpr std::uint8_t kNextHop = 3;
inline constexpr std::uint8_t kMed = 4;
inline constexpr std::uint8_t kLocalPref = 5;
inline constexpr std::uint8_t kAtomicAggregate = 6;
inline constexpr std::uint8_t kAggregator = 7;
inline constexpr std::uint8_t kCommunities = 8;
inline constexpr std::uint8_t kOriginatorId = 9;   // RFC 4456 route reflection
inline constexpr std::uint8_t kClusterList = 10;   // RFC 4456 route reflection
// Codes 241-254 are reserved for development (RFC 2042 / IANA); the paper's
// GeoLoc attribute was never standardised, so it lives in that range.
inline constexpr std::uint8_t kGeoLoc = 242;
}  // namespace attr_code

// --- Path attribute flag bits (RFC 4271 §4.3) --------------------------------
namespace attr_flag {
inline constexpr std::uint8_t kOptional = 0x80;
inline constexpr std::uint8_t kTransitive = 0x40;
inline constexpr std::uint8_t kPartial = 0x20;
inline constexpr std::uint8_t kExtendedLength = 0x10;
}  // namespace attr_flag

// --- NOTIFICATION error codes (RFC 4271 §4.5) --------------------------------
enum class NotifCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
};

// Update message error subcodes (§6.3).
namespace update_err {
inline constexpr std::uint8_t kMalformedAttributeList = 1;
inline constexpr std::uint8_t kUnrecognizedWellKnown = 2;
inline constexpr std::uint8_t kMissingWellKnown = 3;
inline constexpr std::uint8_t kAttributeFlagsError = 4;
inline constexpr std::uint8_t kAttributeLengthError = 5;
inline constexpr std::uint8_t kInvalidOrigin = 6;
inline constexpr std::uint8_t kInvalidNextHop = 8;
inline constexpr std::uint8_t kOptionalAttributeError = 9;
inline constexpr std::uint8_t kInvalidNetworkField = 10;
inline constexpr std::uint8_t kMalformedAsPath = 11;
}  // namespace update_err

/// Default protocol timers, in seconds of virtual time.
inline constexpr std::uint32_t kDefaultHoldTime = 90;
inline constexpr std::uint32_t kDefaultKeepaliveTime = 30;

}  // namespace xb::bgp
