#include "bgp/decision.hpp"

namespace xb::bgp {

std::string_view to_string(DecisionStep s) noexcept {
  switch (s) {
    case DecisionStep::kLocalPref: return "local-pref";
    case DecisionStep::kAsPathLength: return "as-path-length";
    case DecisionStep::kOrigin: return "origin";
    case DecisionStep::kMed: return "med";
    case DecisionStep::kPeerType: return "peer-type";
    case DecisionStep::kIgpMetric: return "igp-metric";
    case DecisionStep::kClusterListLength: return "cluster-list-length";
    case DecisionStep::kRouterId: return "router-id";
    case DecisionStep::kPeerAddr: return "peer-addr";
    case DecisionStep::kEqual: return "equal";
  }
  return "?";
}

Comparison compare_routes(const RouteView& a, const RouteView& b) noexcept {
  // a. Highest LOCAL_PREF.
  if (a.local_pref != b.local_pref) {
    return {a.local_pref > b.local_pref, DecisionStep::kLocalPref};
  }
  // b. Shortest AS_PATH.
  if (a.as_path_length != b.as_path_length) {
    return {a.as_path_length < b.as_path_length, DecisionStep::kAsPathLength};
  }
  // c. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
  if (a.origin != b.origin) {
    return {static_cast<std::uint8_t>(a.origin) < static_cast<std::uint8_t>(b.origin),
            DecisionStep::kOrigin};
  }
  // d. Lowest MED, compared only between routes from the same neighbour AS;
  //    a missing MED counts as 0 (the FRR/BIRD default, not "worst").
  if (a.neighbor_as && b.neighbor_as && *a.neighbor_as == *b.neighbor_as) {
    const std::uint32_t med_a = a.med.value_or(0);
    const std::uint32_t med_b = b.med.value_or(0);
    if (med_a != med_b) return {med_a < med_b, DecisionStep::kMed};
  }
  // e. eBGP-learned preferred over iBGP-learned.
  if (a.peer_type != b.peer_type) {
    return {a.peer_type == PeerType::kEbgp, DecisionStep::kPeerType};
  }
  // f. Lowest IGP metric to the BGP nexthop.
  if (a.igp_metric_to_nexthop != b.igp_metric_to_nexthop) {
    return {a.igp_metric_to_nexthop < b.igp_metric_to_nexthop, DecisionStep::kIgpMetric};
  }
  // RFC 4456 §9: shortest CLUSTER_LIST.
  if (a.cluster_list_length != b.cluster_list_length) {
    return {a.cluster_list_length < b.cluster_list_length, DecisionStep::kClusterListLength};
  }
  // g. Lowest BGP identifier (ORIGINATOR_ID substitution handled by caller).
  if (a.peer_router_id != b.peer_router_id) {
    return {a.peer_router_id < b.peer_router_id, DecisionStep::kRouterId};
  }
  // h. Lowest peer address.
  if (a.peer_addr != b.peer_addr) {
    return {a.peer_addr < b.peer_addr, DecisionStep::kPeerAddr};
  }
  return {false, DecisionStep::kEqual};
}

}  // namespace xb::bgp
