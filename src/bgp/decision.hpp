// The BGP decision process (RFC 4271 §9.1.2.2, plus the RFC 4456 route
// reflection tie-breaker).
//
// Hosts store attributes in their own internal formats; for route selection
// they each materialise this plain view and call the shared comparator. The
// *cost* of building the view differs per host (Fir reads decomposed structs,
// Wren scans its ea_list); the *logic* is identical, as RFC 4271 demands.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace xb::bgp {

struct RouteView {
  std::uint32_t local_pref = 100;
  std::size_t as_path_length = 0;
  Origin origin = Origin::kIncomplete;
  std::optional<std::uint32_t> med;
  /// Leftmost AS of AS_PATH; MEDs are only comparable between routes learned
  /// from the same neighbouring AS.
  std::optional<Asn> neighbor_as;
  PeerType peer_type = PeerType::kEbgp;
  /// IGP metric to the BGP nexthop; igp::kInfMetric when unreachable.
  std::uint32_t igp_metric_to_nexthop = 0;
  /// RFC 4456 §9: shorter CLUSTER_LIST wins before router-id comparison.
  std::size_t cluster_list_length = 0;
  RouterId peer_router_id = 0;
  util::Ipv4Addr peer_addr;
};

/// Result of one pairwise comparison step, with the step that decided it
/// (exposed so tests and the xBGP BGP_DECISION hook can introspect).
enum class DecisionStep : std::uint8_t {
  kLocalPref,
  kAsPathLength,
  kOrigin,
  kMed,
  kPeerType,
  kIgpMetric,
  kClusterListLength,
  kRouterId,
  kPeerAddr,
  kEqual,
};

/// Printable step name for provenance / CLI output ("local-pref", ...).
[[nodiscard]] std::string_view to_string(DecisionStep s) noexcept;

struct Comparison {
  bool first_is_better = false;
  DecisionStep decided_by = DecisionStep::kEqual;
};

/// Full decision process: compares two candidate routes for the same prefix.
[[nodiscard]] Comparison compare_routes(const RouteView& a, const RouteView& b) noexcept;

/// Convenience wrapper: true if `a` must be preferred over `b`.
[[nodiscard]] inline bool better(const RouteView& a, const RouteView& b) noexcept {
  return compare_routes(a, b).first_is_better;
}

}  // namespace xb::bgp
