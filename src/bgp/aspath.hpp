// AS_PATH attribute: segment model, wire codec, and path predicates.
//
// AS numbers are carried as 4 octets (RFC 6793 "4-octet AS" encoding is the
// only one this library speaks; all simulated speakers are AS4-capable).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/attr.hpp"
#include "bgp/types.hpp"

namespace xb::bgp {

enum class SegmentType : std::uint8_t {
  kAsSet = 1,
  kAsSequence = 2,
};

struct AsSegment {
  SegmentType type = SegmentType::kAsSequence;
  std::vector<Asn> asns;

  friend bool operator==(const AsSegment&, const AsSegment&) = default;
};

class AsPath {
 public:
  AsPath() = default;
  /// Convenience: a single AS_SEQUENCE.
  explicit AsPath(std::vector<Asn> sequence);

  /// Prepends `asn` to the leading AS_SEQUENCE (creating one if needed) —
  /// what a speaker does when propagating over eBGP (RFC 4271 §5.1.2).
  void prepend(Asn asn);

  /// Path length as used by the decision process: each sequence member
  /// counts 1, each AS_SET counts 1 in total (RFC 4271 §9.1.2.2.a).
  [[nodiscard]] std::size_t length() const noexcept;

  [[nodiscard]] bool contains(Asn asn) const noexcept;

  /// True if `first` is immediately followed by `second` somewhere in the
  /// flattened sequence — the §3.3 valley-free check consumes this shape.
  [[nodiscard]] bool contains_adjacent_pair(Asn first, Asn second) const noexcept;

  /// First (most recently prepended) AS, i.e. the neighbour the route came
  /// from; nullopt for empty (locally originated iBGP) paths.
  [[nodiscard]] std::optional<Asn> first_asn() const noexcept;
  /// Last AS in the path — the route's origin AS; nullopt when the path ends
  /// in an AS_SET (aggregated route with ambiguous origin) or is empty.
  [[nodiscard]] std::optional<Asn> origin_asn() const noexcept;

  /// Flattened ASNs in path order (sets flattened in member order).
  [[nodiscard]] std::vector<Asn> flatten() const;

  [[nodiscard]] const std::vector<AsSegment>& segments() const noexcept { return segments_; }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// AS_PATH attribute value bytes <-> model.
  [[nodiscard]] WireAttr to_attr() const;
  static std::optional<AsPath> from_attr(const WireAttr& attr);

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsSegment> segments_;
};

}  // namespace xb::bgp
