#include "bgp/peer_session.hpp"

#include "util/log.hpp"

namespace xb::bgp {

namespace {
constexpr std::uint64_t kSecond = 1'000'000'000ull;  // virtual ns

std::vector<std::uint8_t> be32_bytes(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}
}  // namespace

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

PeerSession::PeerSession(net::EventLoop& loop, net::Duplex::End end, Config config)
    : loop_(loop), end_(end), config_(config) {
  end_.on_readable([this] { handle_readable(); });
}

void PeerSession::start() {
  if (started_) return;
  started_ = true;
  OpenMessage open;
  open.asn = config_.local_asn;
  open.hold_time = config_.hold_time;
  open.bgp_id = config_.local_id;
  end_.write(encode_open(open));
  state_ = SessionState::kOpenSent;
  last_rx_ = loop_.now();
  arm_hold_timer();
}

void PeerSession::stop() {
  if (state_ == SessionState::kIdle) return;
  end_.write(encode_notification(NotificationMessage{NotifCode::kCease, 0, {}}));
  bump(obs_.notifications_sent, notifications_sent_);
  go_down("administratively stopped");
}

void PeerSession::handle_readable() {
  auto chunk = end_.read_all();
  rx_buffer_.insert(rx_buffer_.end(), chunk.begin(), chunk.end());
  last_rx_ = loop_.now();

  while (true) {
    std::span<const std::uint8_t> pending(rx_buffer_.data() + rx_consumed_,
                                          rx_buffer_.size() - rx_consumed_);
    auto frame = try_frame(pending);
    if (!frame.has_value()) {
      if (frame.status().is_incomplete()) break;  // wait for more bytes
      fail(frame.status());
      return;
    }
    process_frame(*frame, pending.first(frame->total_length));
    if (state_ == SessionState::kIdle) return;  // torn down while processing
    rx_consumed_ += frame->total_length;
  }
  // Compact once the consumed prefix dominates, amortising the memmove.
  if (rx_consumed_ > 0 && rx_consumed_ * 2 >= rx_buffer_.size()) {
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() + static_cast<std::ptrdiff_t>(rx_consumed_));
    rx_consumed_ = 0;
  }
}

void PeerSession::process_frame(const Frame& frame, std::span<const std::uint8_t> raw) {
  switch (frame.type) {
    case MessageType::kOpen: {
      auto open = decode_open(frame.body);
      if (!open.has_value()) {
        fail(open.status());
        return;
      }
      handle_open(*open);
      return;
    }
    case MessageType::kKeepalive:
      handle_keepalive();
      return;
    case MessageType::kUpdate: {
      if (state_ != SessionState::kEstablished) {
        fail(NotifCode::kFsmError, 0, "UPDATE outside Established");
        return;
      }
      UpdateNotes notes;
      auto update = decode_update(frame.body, &notes);
      if (!update.has_value()) {
        // Session-reset tier: the message could not be parsed at all.
        fail(update.status());
        return;
      }
      // Recoverable degradation (RFC 7606): count it, keep the session up,
      // and let the router above install withdraws / see stripped attrs.
      if (notes.worst == util::ErrorClass::kTreatAsWithdraw)
        bump(obs_.treat_as_withdraw, treat_as_withdraw_);
      if (notes.attrs_discarded > 0)
        bump(obs_.attrs_discarded, attrs_discarded_, notes.attrs_discarded);
      bump(obs_.updates_received, updates_received_);
      if (on_update) on_update(*std::move(update), notes, raw);
      return;
    }
    case MessageType::kNotification: {
      auto notif = decode_notification(frame.body);
      if (!notif.has_value()) {
        go_down("truncated NOTIFICATION received");
        return;
      }
      go_down("NOTIFICATION received (code " +
              std::to_string(static_cast<int>(notif->code)) + ")");
      return;
    }
    case MessageType::kRouteRefresh: {
      if (state_ != SessionState::kEstablished) {
        fail(NotifCode::kFsmError, 0, "ROUTE-REFRESH outside Established");
        return;
      }
      auto refresh = decode_route_refresh(frame.body);
      if (!refresh.has_value()) {
        fail(refresh.status());
        return;
      }
      if (on_route_refresh) on_route_refresh();
      return;
    }
  }
}

void PeerSession::handle_open(const OpenMessage& open) {
  if (state_ != SessionState::kOpenSent) {
    fail(NotifCode::kFsmError, 0, "OPEN in state " + std::string(to_string(state_)));
    return;
  }
  if (open.asn != config_.peer_asn) {
    fail(NotifCode::kOpenMessageError, 2, "unexpected peer AS " + std::to_string(open.asn),
         be32_bytes(open.asn));
    return;
  }
  if (open.bgp_id == 0 || open.bgp_id == config_.local_id) {
    fail(NotifCode::kOpenMessageError, 3, "bad BGP identifier", be32_bytes(open.bgp_id));
    return;
  }
  peer_id_ = open.bgp_id;
  // Negotiated hold time is the minimum of both proposals (RFC 4271 §4.2).
  if (open.hold_time < config_.hold_time) config_.hold_time = open.hold_time;
  end_.write(encode_keepalive());
  state_ = SessionState::kOpenConfirm;
}

void PeerSession::handle_keepalive() {
  switch (state_) {
    case SessionState::kOpenConfirm:
      state_ = SessionState::kEstablished;
      arm_keepalive_timer();
      if (on_established) on_established();
      return;
    case SessionState::kEstablished:
      return;  // hold timer already refreshed in handle_readable
    default:
      fail(NotifCode::kFsmError, 0, "KEEPALIVE in state " + std::string(to_string(state_)));
  }
}

void PeerSession::fail(NotifCode code, std::uint8_t subcode, const std::string& reason,
                       std::vector<std::uint8_t> data) {
  end_.write(encode_notification(NotificationMessage{code, subcode, std::move(data)}));
  bump(obs_.notifications_sent, notifications_sent_);
  go_down(reason);
}

void PeerSession::fail(const util::Status& status) {
  fail(static_cast<NotifCode>(status.code()), status.subcode(), status.message(),
       status.data());
}

void PeerSession::go_down(const std::string& reason) {
  const bool was_up = state_ != SessionState::kIdle;
  state_ = SessionState::kIdle;  // pending timer callbacks see Idle and stop
  util::Logger("session").info("peer ", config_.peer_addr.str(), " down: ", reason);
  if (was_up && on_down) on_down(reason);
}

void PeerSession::arm_hold_timer() {
  if (config_.hold_time == 0) return;  // hold time 0 disables the timer
  const std::uint64_t deadline_ns = static_cast<std::uint64_t>(config_.hold_time) * kSecond;
  loop_.schedule(deadline_ns, [this, deadline_ns] {
    if (state_ == SessionState::kIdle) return;  // ends the timer chain
    if (loop_.now() - last_rx_ >= deadline_ns) {
      fail(NotifCode::kHoldTimerExpired, 0, "hold timer expired");
      return;
    }
    arm_hold_timer();
  });
}

void PeerSession::arm_keepalive_timer() {
  if (config_.keepalive_interval == 0) return;
  loop_.schedule(static_cast<std::uint64_t>(config_.keepalive_interval) * kSecond, [this] {
    if (state_ != SessionState::kEstablished) return;  // ends the timer chain
    end_.write(encode_keepalive());
    arm_keepalive_timer();
  });
}

}  // namespace xb::bgp
