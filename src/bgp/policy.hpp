// The policy engine: an interpreted route-map / filter machinery.
//
// Real BGP daemons never hard-code import/export policy: FRRouting evaluates
// route-maps (ordered entries of match/set clauses) and BIRD runs routes
// through its interpreted filter language. Both are generic, per-route
// interpreted machinery — and both matter for the paper's measurements:
// FRRouting's native origin validation is a route-map `match rpki` clause
// that "browses a dedicated trie ... each time a prefix needs to be checked"
// (§3.4). This module models that machinery once, shared by both hosts.
//
// A RouteMap is an ordered list of entries. Each entry has match clauses
// (all must match) and set actions (applied when the entry matches). The
// first matching entry decides: kPermit or kDeny. No entry matching -> the
// map's default (deny, like FRR's implicit deny).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "rpki/roa.hpp"
#include "util/ip.hpp"

namespace xb::bgp::policy {

/// Everything a clause may inspect or mutate, materialised by the host from
/// its internal representation for the duration of one evaluation.
struct RouteFacts {
  util::Prefix prefix;
  std::optional<Asn> origin_asn;
  std::span<const Asn> as_path;            // flattened path, host order
  std::optional<util::Ipv4Addr> next_hop;
  std::uint32_t igp_metric_to_nexthop = 0;
  std::uint32_t local_pref = 100;
  std::optional<std::uint32_t> med;
  std::span<const std::uint32_t> communities;
  PeerType peer_type = PeerType::kEbgp;
  Asn peer_asn = 0;

  // --- evaluation outputs (set actions write here) ---------------------------
  std::optional<std::uint32_t> new_local_pref;
  std::optional<std::uint32_t> new_med;
  std::vector<std::uint32_t> added_communities;
  /// Route metadata word (e.g. RFC 6811 validation state from `match rpki`).
  std::optional<std::uint32_t> new_meta;
};

enum class Action : std::uint8_t { kPermit, kDeny };

// --- match clauses ----------------------------------------------------------------

/// A prefix-list entry: matches prefixes covered by `prefix` whose length
/// lies within [ge, le] (FRR `ip prefix-list ... ge N le M` semantics).
struct PrefixRule {
  util::Prefix prefix;
  std::uint8_t ge = 0;   // 0 -> prefix.length()
  std::uint8_t le = 32;
};

class Match {
 public:
  virtual ~Match() = default;
  [[nodiscard]] virtual bool matches(RouteFacts& facts) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Matches when any rule of the list covers the route's prefix.
class MatchPrefixList final : public Match {
 public:
  explicit MatchPrefixList(std::vector<PrefixRule> rules) : rules_(std::move(rules)) {}
  bool matches(RouteFacts& facts) const override;
  std::string describe() const override;

 private:
  std::vector<PrefixRule> rules_;
};

/// Matches when the AS path contains the given ASN.
class MatchAsPathContains final : public Match {
 public:
  explicit MatchAsPathContains(Asn asn) : asn_(asn) {}
  bool matches(RouteFacts& facts) const override;
  std::string describe() const override;

 private:
  Asn asn_;
};

/// Matches when the route carries the community.
class MatchCommunity final : public Match {
 public:
  explicit MatchCommunity(std::uint32_t community) : community_(community) {}
  bool matches(RouteFacts& facts) const override;
  std::string describe() const override;

 private:
  std::uint32_t community_;
};

/// Matches on AS-path length bounds (inclusive).
class MatchAsPathLength final : public Match {
 public:
  MatchAsPathLength(std::size_t min_len, std::size_t max_len)
      : min_(min_len), max_(max_len) {}
  bool matches(RouteFacts& facts) const override;
  std::string describe() const override;

 private:
  std::size_t min_;
  std::size_t max_;
};

/// FRR's `match rpki <valid|invalid|notfound>`: validates the route against
/// the RPKI table *on every evaluation* — the per-prefix "browse" of §3.4 —
/// and records the state in the route metadata as a side effect.
class MatchRpki final : public Match {
 public:
  /// kAny matches every state (used to tag without filtering).
  enum class Want : std::uint8_t { kValid, kInvalid, kNotFound, kAny };

  MatchRpki(const rpki::RoaTable* table, Want want) : table_(table), want_(want) {}
  bool matches(RouteFacts& facts) const override;
  std::string describe() const override;

 private:
  const rpki::RoaTable* table_;
  Want want_;
};

/// Matches when the IGP metric to the nexthop is at most `max_metric`
/// (the native analogue of the paper's Listing 1).
class MatchNexthopMetricAtMost final : public Match {
 public:
  explicit MatchNexthopMetricAtMost(std::uint32_t max_metric) : max_(max_metric) {}
  bool matches(RouteFacts& facts) const override;
  std::string describe() const override;

 private:
  std::uint32_t max_;
};

// --- set actions -------------------------------------------------------------------

class SetAction {
 public:
  virtual ~SetAction() = default;
  virtual void apply(RouteFacts& facts) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

class SetLocalPref final : public SetAction {
 public:
  explicit SetLocalPref(std::uint32_t value) : value_(value) {}
  void apply(RouteFacts& facts) const override { facts.new_local_pref = value_; }
  std::string describe() const override;

 private:
  std::uint32_t value_;
};

class SetMed final : public SetAction {
 public:
  explicit SetMed(std::uint32_t value) : value_(value) {}
  void apply(RouteFacts& facts) const override { facts.new_med = value_; }
  std::string describe() const override;

 private:
  std::uint32_t value_;
};

class AddCommunity final : public SetAction {
 public:
  explicit AddCommunity(std::uint32_t community) : community_(community) {}
  void apply(RouteFacts& facts) const override {
    facts.added_communities.push_back(community_);
  }
  std::string describe() const override;

 private:
  std::uint32_t community_;
};

// --- the route map -------------------------------------------------------------------

struct Entry {
  int seq = 10;
  Action action = Action::kPermit;
  std::vector<std::unique_ptr<Match>> matches;   // all must match
  std::vector<std::unique_ptr<SetAction>> sets;  // applied on match
};

struct Verdict {
  bool permitted = false;
  int decided_by_seq = -1;  // -1: implicit default
};

class RouteMap {
 public:
  explicit RouteMap(std::string name, Action default_action = Action::kDeny)
      : name_(std::move(name)), default_action_(default_action) {}

  // The atomic counter would otherwise delete the moves builders rely on.
  RouteMap(RouteMap&& other) noexcept
      : name_(std::move(other.name_)),
        default_action_(other.default_action_),
        entries_(std::move(other.entries_)),
        clauses_evaluated_(other.clauses_evaluated_.load(std::memory_order_relaxed)) {}
  RouteMap& operator=(RouteMap&& other) noexcept {
    name_ = std::move(other.name_);
    default_action_ = other.default_action_;
    entries_ = std::move(other.entries_);
    clauses_evaluated_.store(other.clauses_evaluated_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    return *this;
  }

  /// Builder-style entry addition; entries evaluate in ascending seq order.
  Entry& add_entry(int seq, Action action);

  /// Evaluates the map: first entry whose matches all hold decides.
  [[nodiscard]] Verdict evaluate(RouteFacts& facts) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::string describe() const;

  /// Cumulative number of clause evaluations (benchmark telemetry).
  [[nodiscard]] std::uint64_t clauses_evaluated() const noexcept {
    return clauses_evaluated_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  Action default_action_;
  std::vector<Entry> entries_;  // kept sorted by seq
  // Atomic: one RouteMap is shared by every pipeline shard (the knob in
  // engine::Router::Config); relaxed is enough for a telemetry counter.
  mutable std::atomic<std::uint64_t> clauses_evaluated_{0};
};

/// A permit-everything map with FRR-ish boilerplate (bogon prefix filter,
/// long-path guard, customer-community preference), the baseline policy a
/// production eBGP session carries. When `rpki_table` is non-null the final
/// permit entry additionally carries `match rpki any` — FRR's native origin
/// validation configuration, which looks the route up in the table on every
/// evaluation and records the state in the route metadata.
[[nodiscard]] RouteMap standard_import_policy(const rpki::RoaTable* rpki_table = nullptr);
[[nodiscard]] RouteMap standard_export_policy();

}  // namespace xb::bgp::policy
