// BGP wire codec: RFC 4271 message framing, encoding and decoding.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "bgp/message.hpp"

namespace xb::bgp {

/// Decoding failure carrying the NOTIFICATION the receiver must send.
class DecodeError : public std::runtime_error {
 public:
  DecodeError(NotifCode code, std::uint8_t subcode, const std::string& what)
      : std::runtime_error(what), code_(code), subcode_(subcode) {}
  [[nodiscard]] NotifCode code() const noexcept { return code_; }
  [[nodiscard]] std::uint8_t subcode() const noexcept { return subcode_; }

 private:
  NotifCode code_;
  std::uint8_t subcode_;
};

// --- encoding -----------------------------------------------------------------
std::vector<std::uint8_t> encode(const Message& message);
std::vector<std::uint8_t> encode_open(const OpenMessage& open);
std::vector<std::uint8_t> encode_update(const UpdateMessage& update);
std::vector<std::uint8_t> encode_notification(const NotificationMessage& notif);
std::vector<std::uint8_t> encode_keepalive();
std::vector<std::uint8_t> encode_route_refresh(const RouteRefreshMessage& refresh);

/// Encodes one NLRI prefix (length byte + ceil(len/8) address bytes).
void encode_prefix(util::ByteWriter& w, const util::Prefix& prefix);

// --- decoding -----------------------------------------------------------------

/// Result of scanning a receive buffer for one complete message.
struct Frame {
  MessageType type;
  std::size_t total_length = 0;  // header + body, bytes consumed from buffer
  std::span<const std::uint8_t> body;
};

/// Returns the first complete message framed in `buffer`, or nullopt if more
/// bytes are needed. Throws DecodeError on a corrupt header (bad marker,
/// bad length, unknown type).
std::optional<Frame> try_frame(std::span<const std::uint8_t> buffer);

/// Decodes a framed body. Throws DecodeError on malformed contents.
Message decode_body(MessageType type, std::span<const std::uint8_t> body);

OpenMessage decode_open(std::span<const std::uint8_t> body);
UpdateMessage decode_update(std::span<const std::uint8_t> body);
NotificationMessage decode_notification(std::span<const std::uint8_t> body);
RouteRefreshMessage decode_route_refresh(std::span<const std::uint8_t> body);

util::Prefix decode_prefix(util::ByteReader& r);

}  // namespace xb::bgp
