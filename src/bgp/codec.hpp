// BGP wire codec: RFC 4271 message framing, encoding and decoding.
//
// The decode side is exception-free and returns util::Result values on the
// typed Status spine. Errors carry the RFC 4271 NOTIFICATION triple (code,
// subcode, offending data) plus an RFC 7606 ErrorClass so callers know how
// to degrade: only true framing/header errors are session-reset; path
// attribute errors are classified treat-as-withdraw or attribute-discard and
// reported out-of-band through UpdateNotes while decoding continues.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/message.hpp"
#include "util/status.hpp"

namespace xb::bgp {

// --- encoding -----------------------------------------------------------------
std::vector<std::uint8_t> encode(const Message& message);
std::vector<std::uint8_t> encode_open(const OpenMessage& open);
std::vector<std::uint8_t> encode_update(const UpdateMessage& update);
std::vector<std::uint8_t> encode_notification(const NotificationMessage& notif);
std::vector<std::uint8_t> encode_keepalive();
std::vector<std::uint8_t> encode_route_refresh(const RouteRefreshMessage& refresh);

/// Encodes one NLRI prefix (length byte + ceil(len/8) address bytes).
void encode_prefix(util::ByteWriter& w, const util::Prefix& prefix);

// --- decoding -----------------------------------------------------------------

/// Result of scanning a receive buffer for one complete message.
struct Frame {
  MessageType type;
  std::size_t total_length = 0;  // header + body, bytes consumed from buffer
  std::span<const std::uint8_t> body;
};

/// RFC 7606 degradation report for one decoded UPDATE. The decode itself
/// succeeds (the Result carries a message) while the notes say how the
/// receiver must degrade: `worst` is the highest tier hit, with the
/// NOTIFICATION subcode and offending attribute bytes that tier produced.
/// attrs_discarded counts attributes stripped at the discard tier (the
/// returned AttributeSet no longer contains them, so every host sees the
/// same canonical set).
struct UpdateNotes {
  util::ErrorClass worst = util::ErrorClass::kNone;
  std::uint8_t subcode = 0;             // UPDATE Message Error subcode of `worst`
  std::vector<std::uint8_t> data;       // offending bytes for the NOTIFICATION
  std::uint64_t attrs_discarded = 0;    // attribute-discard tier strips
  std::string detail;                   // human-readable description of `worst`

  /// Records one classified error, keeping the triple of the worst tier seen.
  void note(util::ErrorClass cls, std::uint8_t sub, std::vector<std::uint8_t> bytes,
            std::string what) {
    if (cls > worst) {
      worst = cls;
      subcode = sub;
      data = std::move(bytes);
      detail = std::move(what);
    }
  }
  [[nodiscard]] bool clean() const noexcept { return worst == util::ErrorClass::kNone; }
};

/// Returns the first complete message framed in `buffer`. A Status with
/// ErrorClass kIncomplete means more bytes are needed; kSessionReset means a
/// corrupt header (bad marker, bad length, unknown type) with the
/// NOTIFICATION triple filled in.
util::Result<Frame> try_frame(std::span<const std::uint8_t> buffer);

/// Decodes a framed body. Error Results are always session-reset tier; for
/// UPDATEs, recoverable attribute errors are classified into `notes` instead
/// (treat-as-withdraw / attribute-discard) and decoding continues.
util::Result<Message> decode_body(MessageType type, std::span<const std::uint8_t> body,
                                  UpdateNotes* notes = nullptr);

util::Result<OpenMessage> decode_open(std::span<const std::uint8_t> body);
util::Result<UpdateMessage> decode_update(std::span<const std::uint8_t> body,
                                          UpdateNotes* notes = nullptr);
util::Result<NotificationMessage> decode_notification(std::span<const std::uint8_t> body);
util::Result<RouteRefreshMessage> decode_route_refresh(std::span<const std::uint8_t> body);

util::Result<util::Prefix> decode_prefix(util::ByteReader& r);

}  // namespace xb::bgp
