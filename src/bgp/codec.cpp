#include "bgp/codec.hpp"

#include "util/bytes.hpp"

namespace xb::bgp {

namespace {

// Optional-parameter and capability codes used in OPEN.
constexpr std::uint8_t kParamCapability = 2;
constexpr std::uint8_t kCapFourOctetAs = 65;  // RFC 6793

std::vector<std::uint8_t> with_header(MessageType type, std::span<const std::uint8_t> body) {
  util::ByteWriter w(kHeaderSize + body.size());
  w.fill(kMarkerByte, 16);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + body.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(body);
  return std::move(w).take();
}

}  // namespace

MessageType type_of(const Message& m) {
  if (std::holds_alternative<OpenMessage>(m)) return MessageType::kOpen;
  if (std::holds_alternative<UpdateMessage>(m)) return MessageType::kUpdate;
  if (std::holds_alternative<NotificationMessage>(m)) return MessageType::kNotification;
  if (std::holds_alternative<RouteRefreshMessage>(m)) return MessageType::kRouteRefresh;
  return MessageType::kKeepalive;
}

void encode_prefix(util::ByteWriter& w, const util::Prefix& prefix) {
  w.u8(prefix.length());
  const std::uint32_t addr = prefix.addr().value();
  const std::size_t nbytes = (prefix.length() + 7) / 8;
  for (std::size_t i = 0; i < nbytes; ++i) {
    w.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

util::Prefix decode_prefix(util::ByteReader& r) {
  const std::uint8_t len = r.u8();
  if (len > 32) {
    throw DecodeError(NotifCode::kUpdateMessageError, update_err::kInvalidNetworkField,
                      "prefix length > 32");
  }
  const std::size_t nbytes = (len + 7) / 8;
  std::uint32_t addr = 0;
  for (std::size_t i = 0; i < nbytes; ++i) {
    addr |= static_cast<std::uint32_t>(r.u8()) << (24 - 8 * i);
  }
  return util::Prefix(util::Ipv4Addr(addr), len);
}

std::vector<std::uint8_t> encode_open(const OpenMessage& open) {
  util::ByteWriter body;
  body.u8(open.version);
  body.u16(open.asn > 0xFFFF ? OpenMessage::kAsTrans
                             : (open.my_as_2octet ? open.my_as_2octet
                                                  : static_cast<std::uint16_t>(open.asn)));
  body.u16(open.hold_time);
  body.u32(open.bgp_id);
  // Optional parameters: one capability parameter with the 4-octet-AS cap.
  body.u8(8);                   // optional params total length
  body.u8(kParamCapability);    // param type
  body.u8(6);                   // param length
  body.u8(kCapFourOctetAs);     // capability code
  body.u8(4);                   // capability length
  body.u32(open.asn);
  return with_header(MessageType::kOpen, body.view());
}

OpenMessage decode_open(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  OpenMessage open;
  try {
    open.version = r.u8();
    open.my_as_2octet = r.u16();
    open.hold_time = r.u16();
    open.bgp_id = r.u32();
    open.asn = open.my_as_2octet;  // until a 4-octet capability says otherwise
    const std::size_t params_len = r.u8();
    util::ByteReader params = r.sub(params_len);
    while (!params.empty()) {
      const std::uint8_t param_type = params.u8();
      const std::size_t param_len = params.u8();
      util::ByteReader param = params.sub(param_len);
      if (param_type != kParamCapability) continue;
      while (!param.empty()) {
        const std::uint8_t cap_code = param.u8();
        const std::size_t cap_len = param.u8();
        util::ByteReader cap = param.sub(cap_len);
        if (cap_code == kCapFourOctetAs && cap_len == 4) {
          open.asn = cap.u32();
        }
      }
    }
  } catch (const util::BufferError&) {
    throw DecodeError(NotifCode::kOpenMessageError, 0, "truncated OPEN");
  }
  if (open.version != 4) {
    throw DecodeError(NotifCode::kOpenMessageError, 1, "unsupported version");
  }
  return open;
}

std::vector<std::uint8_t> encode_update(const UpdateMessage& update) {
  util::ByteWriter body;
  // Withdrawn routes.
  body.u16(0);  // patched below
  const std::size_t withdrawn_start = body.size();
  for (const auto& p : update.withdrawn) encode_prefix(body, p);
  body.patch_u16(0, static_cast<std::uint16_t>(body.size() - withdrawn_start));
  // Path attributes.
  const std::size_t attr_len_at = body.size();
  body.u16(0);  // patched below
  const std::size_t attrs_start = body.size();
  update.attrs.encode(body);
  body.patch_u16(attr_len_at, static_cast<std::uint16_t>(body.size() - attrs_start));
  // NLRI.
  for (const auto& p : update.nlri) encode_prefix(body, p);
  if (kHeaderSize + body.size() > kMaxMessageSize) {
    throw std::length_error("UPDATE exceeds 4096 bytes");
  }
  return with_header(MessageType::kUpdate, body.view());
}

UpdateMessage decode_update(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  UpdateMessage update;
  try {
    const std::size_t withdrawn_len = r.u16();
    util::ByteReader withdrawn = r.sub(withdrawn_len);
    while (!withdrawn.empty()) update.withdrawn.push_back(decode_prefix(withdrawn));
    const std::size_t attrs_len = r.u16();
    update.attrs = AttributeSet::decode(r, attrs_len);
    while (!r.empty()) update.nlri.push_back(decode_prefix(r));
  } catch (const util::BufferError&) {
    throw DecodeError(NotifCode::kUpdateMessageError, update_err::kMalformedAttributeList,
                      "truncated UPDATE");
  }
  return update;
}

std::vector<std::uint8_t> encode_notification(const NotificationMessage& notif) {
  util::ByteWriter body;
  body.u8(static_cast<std::uint8_t>(notif.code));
  body.u8(notif.subcode);
  body.bytes(notif.data);
  return with_header(MessageType::kNotification, body.view());
}

NotificationMessage decode_notification(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  NotificationMessage notif;
  try {
    notif.code = static_cast<NotifCode>(r.u8());
    notif.subcode = r.u8();
    auto rest = r.bytes(r.remaining());
    notif.data.assign(rest.begin(), rest.end());
  } catch (const util::BufferError&) {
    throw DecodeError(NotifCode::kMessageHeaderError, 2, "truncated NOTIFICATION");
  }
  return notif;
}

std::vector<std::uint8_t> encode_keepalive() {
  return with_header(MessageType::kKeepalive, {});
}

std::vector<std::uint8_t> encode_route_refresh(const RouteRefreshMessage& refresh) {
  util::ByteWriter body;
  body.u16(refresh.afi);
  body.u8(0);  // reserved
  body.u8(refresh.safi);
  return with_header(MessageType::kRouteRefresh, body.view());
}

RouteRefreshMessage decode_route_refresh(std::span<const std::uint8_t> body) {
  if (body.size() != 4) {
    throw DecodeError(NotifCode::kMessageHeaderError, 2, "bad ROUTE-REFRESH length");
  }
  RouteRefreshMessage refresh;
  refresh.afi = static_cast<std::uint16_t>((body[0] << 8) | body[1]);
  refresh.safi = body[3];
  return refresh;
}

std::vector<std::uint8_t> encode(const Message& message) {
  return std::visit(
      [](const auto& m) -> std::vector<std::uint8_t> {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) return encode_open(m);
        else if constexpr (std::is_same_v<T, UpdateMessage>) return encode_update(m);
        else if constexpr (std::is_same_v<T, NotificationMessage>) return encode_notification(m);
        else if constexpr (std::is_same_v<T, RouteRefreshMessage>) return encode_route_refresh(m);
        else return encode_keepalive();
      },
      message);
}

std::optional<Frame> try_frame(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  for (std::size_t i = 0; i < 16; ++i) {
    if (buffer[i] != kMarkerByte) {
      throw DecodeError(NotifCode::kMessageHeaderError, 1, "bad marker");
    }
  }
  const std::size_t total =
      (static_cast<std::size_t>(buffer[16]) << 8) | buffer[17];
  if (total < kHeaderSize || total > kMaxMessageSize) {
    throw DecodeError(NotifCode::kMessageHeaderError, 2, "bad message length");
  }
  const std::uint8_t type = buffer[18];
  if (type < 1 || type > 5) {
    throw DecodeError(NotifCode::kMessageHeaderError, 3, "bad message type");
  }
  if (buffer.size() < total) return std::nullopt;
  return Frame{static_cast<MessageType>(type), total,
               buffer.subspan(kHeaderSize, total - kHeaderSize)};
}

Message decode_body(MessageType type, std::span<const std::uint8_t> body) {
  switch (type) {
    case MessageType::kOpen: return decode_open(body);
    case MessageType::kUpdate: return decode_update(body);
    case MessageType::kNotification: return decode_notification(body);
    case MessageType::kKeepalive:
      if (!body.empty()) {
        throw DecodeError(NotifCode::kMessageHeaderError, 2, "KEEPALIVE with body");
      }
      return KeepaliveMessage{};
    case MessageType::kRouteRefresh:
      return decode_route_refresh(body);
  }
  throw DecodeError(NotifCode::kMessageHeaderError, 3, "bad message type");
}

}  // namespace xb::bgp
