#include "bgp/codec.hpp"

#include "bgp/aspath.hpp"
#include "util/bytes.hpp"

namespace xb::bgp {

namespace {

// Optional-parameter and capability codes used in OPEN.
constexpr std::uint8_t kParamCapability = 2;
constexpr std::uint8_t kCapFourOctetAs = 65;  // RFC 6793

std::vector<std::uint8_t> with_header(MessageType type, std::span<const std::uint8_t> body) {
  util::ByteWriter w(kHeaderSize + body.size());
  w.fill(kMarkerByte, 16);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + body.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(body);
  return std::move(w).take();
}

util::Status reset(NotifCode code, std::uint8_t subcode, std::string message,
                   std::vector<std::uint8_t> data = {}) {
  return util::Status::error(util::ErrorClass::kSessionReset, static_cast<std::uint8_t>(code),
                             subcode, std::move(message), std::move(data));
}

/// Re-encodes one attribute (flags, code, length, value) for the
/// NOTIFICATION data field: RFC 4271 §6.3 requires the erroneous attribute.
std::vector<std::uint8_t> attr_bytes(const WireAttr& attr) {
  util::ByteWriter w;
  AttributeSet::encode_one(w, attr);
  return std::move(w).take();
}

// --- RFC 7606 §7 per-attribute error-handling table ---------------------------
// For each known attribute: the flag bits it must carry (compared over the
// Optional and Transitive bits; Partial and Extended-Length are encoding
// detail) and the degradation tier a malformed occurrence maps to.
// Attributes that feed the decision process degrade treat-as-withdraw;
// purely informational ones (ATOMIC_AGGREGATE, AGGREGATOR, GeoLoc)
// attribute-discard. Anything structural that prevents parsing the rest of
// the message stays session-reset and is handled by the callers below.
struct AttrSpec {
  std::uint8_t expected_flags;  // over kOptional|kTransitive
  util::ErrorClass tier;        // tier when this attribute is malformed
};

const AttrSpec* attr_spec(std::uint8_t code) {
  static constexpr std::uint8_t kWellKnown = attr_flag::kTransitive;
  static constexpr std::uint8_t kOptTrans = attr_flag::kOptional | attr_flag::kTransitive;
  static constexpr std::uint8_t kOptNonTrans = attr_flag::kOptional;
  static const AttrSpec kOriginSpec{kWellKnown, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kAsPathSpec{kWellKnown, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kNextHopSpec{kWellKnown, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kMedSpec{kOptNonTrans, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kLocalPrefSpec{kWellKnown, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kAtomicSpec{kWellKnown, util::ErrorClass::kAttributeDiscard};
  static const AttrSpec kAggregatorSpec{kOptTrans, util::ErrorClass::kAttributeDiscard};
  static const AttrSpec kCommunitiesSpec{kOptTrans, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kOriginatorSpec{kOptNonTrans, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kClusterSpec{kOptNonTrans, util::ErrorClass::kTreatAsWithdraw};
  static const AttrSpec kGeoLocSpec{kOptTrans, util::ErrorClass::kAttributeDiscard};
  switch (code) {
    case attr_code::kOrigin: return &kOriginSpec;
    case attr_code::kAsPath: return &kAsPathSpec;
    case attr_code::kNextHop: return &kNextHopSpec;
    case attr_code::kMed: return &kMedSpec;
    case attr_code::kLocalPref: return &kLocalPrefSpec;
    case attr_code::kAtomicAggregate: return &kAtomicSpec;
    case attr_code::kAggregator: return &kAggregatorSpec;
    case attr_code::kCommunities: return &kCommunitiesSpec;
    case attr_code::kOriginatorId: return &kOriginatorSpec;
    case attr_code::kClusterList: return &kClusterSpec;
    case attr_code::kGeoLoc: return &kGeoLocSpec;
    default: return nullptr;
  }
}

/// Value-level validation for a known attribute whose flags already checked
/// out. Returns 0 if well-formed, else the UPDATE error subcode.
std::uint8_t check_attr_value(const WireAttr& attr) {
  const auto len = attr.value.size();
  switch (attr.code) {
    case attr_code::kOrigin:
      if (len != 1) return update_err::kAttributeLengthError;
      if (attr.value[0] > 2) return update_err::kInvalidOrigin;
      return 0;
    case attr_code::kAsPath:
      return AsPath::from_attr(attr) ? 0 : update_err::kMalformedAsPath;
    case attr_code::kNextHop:
      return len == 4 ? 0 : update_err::kAttributeLengthError;
    case attr_code::kMed:
    case attr_code::kLocalPref:
    case attr_code::kOriginatorId:
      return len == 4 ? 0 : update_err::kAttributeLengthError;
    case attr_code::kAtomicAggregate:
      return len == 0 ? 0 : update_err::kAttributeLengthError;
    case attr_code::kAggregator:
      // 4-octet-AS world (RFC 6793): 4 bytes ASN + 4 bytes aggregator id.
      return len == 8 ? 0 : update_err::kAttributeLengthError;
    case attr_code::kCommunities:
    case attr_code::kClusterList:
      return len % 4 == 0 ? 0 : update_err::kOptionalAttributeError;
    case attr_code::kGeoLoc:
      return len == 8 ? 0 : update_err::kOptionalAttributeError;
    default: return 0;
  }
}

/// Parses and classifies the path attribute list. Never fails the decode:
/// structural overruns inside the (already length-delimited) list degrade
/// treat-as-withdraw, per-attribute errors degrade per the §7 table, and
/// discard-tier attributes are stripped so every host sees the same set.
void decode_attrs(util::ByteReader& body, AttributeSet& out, UpdateNotes& notes) {
  while (!body.empty()) {
    // Attribute header: flags, code, 1- or 2-byte length.
    if (!body.has(2)) {
      notes.note(util::ErrorClass::kTreatAsWithdraw, update_err::kMalformedAttributeList, {},
                 "attribute header overruns attribute list");
      body.skip(body.remaining());
      break;
    }
    WireAttr attr;
    attr.flags = body.u8();
    attr.code = body.u8();
    std::size_t value_len = 0;
    const bool extended = attr.flags & attr_flag::kExtendedLength;
    if (!body.has(extended ? 2u : 1u)) {
      notes.note(util::ErrorClass::kTreatAsWithdraw, update_err::kMalformedAttributeList,
                 {attr.flags, attr.code}, "attribute length field overruns attribute list");
      body.skip(body.remaining());
      break;
    }
    value_len = extended ? body.u16() : body.u8();
    if (!body.has(value_len)) {
      notes.note(util::ErrorClass::kTreatAsWithdraw, update_err::kMalformedAttributeList,
                 {attr.flags, attr.code}, "attribute value overruns attribute list");
      body.skip(body.remaining());
      break;
    }
    auto value = body.bytes(value_len);
    attr.value.assign(value.begin(), value.end());
    // Clear the extended-length bit: it is an encoding detail, not semantics,
    // and normalising it keeps AttributeSet equality canonical.
    attr.flags &= static_cast<std::uint8_t>(~attr_flag::kExtendedLength);

    // Duplicate attribute: keep the first occurrence, discard the rest
    // (RFC 7606 §3 (g)).
    if (out.has(attr.code)) {
      ++notes.attrs_discarded;
      notes.note(util::ErrorClass::kAttributeDiscard, update_err::kMalformedAttributeList,
                 attr_bytes(attr), "duplicate path attribute");
      continue;
    }

    const AttrSpec* spec = attr_spec(attr.code);
    if (spec == nullptr) {
      if (attr.optional()) {
        out.put(std::move(attr));  // unknown optional: pass through unchanged
      } else {
        // Unrecognised well-known attribute. RFC 4271 resets the session;
        // we take the RFC 7606 spirit one step further and degrade
        // treat-as-withdraw — the route is lost but the session survives.
        notes.note(util::ErrorClass::kTreatAsWithdraw, update_err::kUnrecognizedWellKnown,
                   attr_bytes(attr), "unrecognised well-known attribute");
      }
      continue;
    }
    const std::uint8_t type_bits = attr.flags & (attr_flag::kOptional | attr_flag::kTransitive);
    if (type_bits != spec->expected_flags) {
      notes.note(spec->tier, update_err::kAttributeFlagsError, attr_bytes(attr),
                 "attribute flags conflict with attribute type");
      if (spec->tier == util::ErrorClass::kAttributeDiscard) ++notes.attrs_discarded;
      continue;
    }
    if (const std::uint8_t sub = check_attr_value(attr); sub != 0) {
      notes.note(spec->tier, sub, attr_bytes(attr), "malformed attribute value");
      if (spec->tier == util::ErrorClass::kAttributeDiscard) ++notes.attrs_discarded;
      continue;
    }
    out.put(std::move(attr));
  }
}

}  // namespace

MessageType type_of(const Message& m) {
  if (std::holds_alternative<OpenMessage>(m)) return MessageType::kOpen;
  if (std::holds_alternative<UpdateMessage>(m)) return MessageType::kUpdate;
  if (std::holds_alternative<NotificationMessage>(m)) return MessageType::kNotification;
  if (std::holds_alternative<RouteRefreshMessage>(m)) return MessageType::kRouteRefresh;
  return MessageType::kKeepalive;
}

void encode_prefix(util::ByteWriter& w, const util::Prefix& prefix) {
  w.u8(prefix.length());
  const std::uint32_t addr = prefix.addr().value();
  const std::size_t nbytes = (prefix.length() + 7) / 8;
  for (std::size_t i = 0; i < nbytes; ++i) {
    w.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

util::Result<util::Prefix> decode_prefix(util::ByteReader& r) {
  if (!r.has(1)) {
    return reset(NotifCode::kUpdateMessageError, update_err::kInvalidNetworkField,
                 "truncated NLRI");
  }
  const std::uint8_t len = r.u8();
  if (len > 32) {
    return reset(NotifCode::kUpdateMessageError, update_err::kInvalidNetworkField,
                 "prefix length > 32", {len});
  }
  const std::size_t nbytes = (len + 7) / 8;
  if (!r.has(nbytes)) {
    return reset(NotifCode::kUpdateMessageError, update_err::kInvalidNetworkField,
                 "truncated NLRI", {len});
  }
  std::uint32_t addr = 0;
  for (std::size_t i = 0; i < nbytes; ++i) {
    addr |= static_cast<std::uint32_t>(r.u8()) << (24 - 8 * i);
  }
  return util::Prefix(util::Ipv4Addr(addr), len);
}

std::vector<std::uint8_t> encode_open(const OpenMessage& open) {
  util::ByteWriter body;
  body.u8(open.version);
  body.u16(open.asn > 0xFFFF ? OpenMessage::kAsTrans
                             : (open.my_as_2octet ? open.my_as_2octet
                                                  : static_cast<std::uint16_t>(open.asn)));
  body.u16(open.hold_time);
  body.u32(open.bgp_id);
  // Optional parameters: one capability parameter with the 4-octet-AS cap.
  body.u8(8);                   // optional params total length
  body.u8(kParamCapability);    // param type
  body.u8(6);                   // param length
  body.u8(kCapFourOctetAs);     // capability code
  body.u8(4);                   // capability length
  body.u32(open.asn);
  return with_header(MessageType::kOpen, body.view());
}

util::Result<OpenMessage> decode_open(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  OpenMessage open;
  if (!r.has(10)) return reset(NotifCode::kOpenMessageError, 0, "truncated OPEN");
  open.version = r.u8();
  open.my_as_2octet = r.u16();
  open.hold_time = r.u16();
  open.bgp_id = r.u32();
  open.asn = open.my_as_2octet;  // until a 4-octet capability says otherwise
  const std::size_t params_len = r.u8();
  if (!r.has(params_len)) return reset(NotifCode::kOpenMessageError, 0, "truncated OPEN");
  util::ByteReader params = r.sub(params_len);
  while (!params.empty()) {
    if (!params.has(2)) return reset(NotifCode::kOpenMessageError, 0, "truncated OPEN");
    const std::uint8_t param_type = params.u8();
    const std::size_t param_len = params.u8();
    if (!params.has(param_len)) return reset(NotifCode::kOpenMessageError, 0, "truncated OPEN");
    util::ByteReader param = params.sub(param_len);
    if (param_type != kParamCapability) continue;
    while (!param.empty()) {
      if (!param.has(2)) return reset(NotifCode::kOpenMessageError, 0, "truncated OPEN");
      const std::uint8_t cap_code = param.u8();
      const std::size_t cap_len = param.u8();
      if (!param.has(cap_len)) return reset(NotifCode::kOpenMessageError, 0, "truncated OPEN");
      util::ByteReader cap = param.sub(cap_len);
      if (cap_code == kCapFourOctetAs && cap_len == 4) {
        open.asn = cap.u32();
      }
    }
  }
  if (open.version != 4) {
    return reset(NotifCode::kOpenMessageError, 1, "unsupported version", {open.version});
  }
  return open;
}

std::vector<std::uint8_t> encode_update(const UpdateMessage& update) {
  util::ByteWriter body;
  // Withdrawn routes.
  body.u16(0);  // patched below
  const std::size_t withdrawn_start = body.size();
  for (const auto& p : update.withdrawn) encode_prefix(body, p);
  body.patch_u16(0, static_cast<std::uint16_t>(body.size() - withdrawn_start));
  // Path attributes.
  const std::size_t attr_len_at = body.size();
  body.u16(0);  // patched below
  const std::size_t attrs_start = body.size();
  update.attrs.encode(body);
  body.patch_u16(attr_len_at, static_cast<std::uint16_t>(body.size() - attrs_start));
  // NLRI.
  for (const auto& p : update.nlri) encode_prefix(body, p);
  if (kHeaderSize + body.size() > kMaxMessageSize) {
    throw std::length_error("UPDATE exceeds 4096 bytes");
  }
  return with_header(MessageType::kUpdate, body.view());
}

util::Result<UpdateMessage> decode_update(std::span<const std::uint8_t> body,
                                          UpdateNotes* notes) {
  util::ByteReader r(body);
  UpdateMessage update;
  UpdateNotes local;
  UpdateNotes& n = notes ? *notes : local;
  // Withdrawn Routes Length and Total Path Attribute Length frame the rest of
  // the message; when they lie the message cannot be parsed at all, so these
  // stay session-reset (RFC 7606 §5.1).
  if (!r.has(2)) {
    return reset(NotifCode::kUpdateMessageError, update_err::kMalformedAttributeList,
                 "truncated UPDATE (withdrawn routes length)");
  }
  const std::size_t withdrawn_len = r.u16();
  if (!r.has(withdrawn_len)) {
    return reset(NotifCode::kUpdateMessageError, update_err::kMalformedAttributeList,
                 "withdrawn routes overrun message");
  }
  util::ByteReader withdrawn = r.sub(withdrawn_len);
  while (!withdrawn.empty()) {
    auto p = decode_prefix(withdrawn);
    if (!p.has_value()) return p.status();
    update.withdrawn.push_back(*p);
  }
  if (!r.has(2)) {
    return reset(NotifCode::kUpdateMessageError, update_err::kMalformedAttributeList,
                 "truncated UPDATE (attribute list length)");
  }
  const std::size_t attrs_len = r.u16();
  if (!r.has(attrs_len)) {
    return reset(NotifCode::kUpdateMessageError, update_err::kMalformedAttributeList,
                 "attribute list overruns message");
  }
  util::ByteReader attrs = r.sub(attrs_len);
  decode_attrs(attrs, update.attrs, n);
  // NLRI errors remain session-reset (RFC 7606 §5.3): a bad prefix length
  // desynchronises the field, so nothing after it can be trusted.
  while (!r.empty()) {
    auto p = decode_prefix(r);
    if (!p.has_value()) return p.status();
    update.nlri.push_back(*p);
  }
  // Missing mandatory attributes with reachable NLRI: treat-as-withdraw,
  // data = the missing attribute's type code (RFC 4271 §6.3 / RFC 7606 §3).
  if (!update.nlri.empty()) {
    for (std::uint8_t code :
         {attr_code::kOrigin, attr_code::kAsPath, attr_code::kNextHop}) {
      if (!update.attrs.has(code)) {
        n.note(util::ErrorClass::kTreatAsWithdraw, update_err::kMissingWellKnown, {code},
               "missing mandatory attribute");
      }
    }
  }
  return update;
}

std::vector<std::uint8_t> encode_notification(const NotificationMessage& notif) {
  util::ByteWriter body;
  body.u8(static_cast<std::uint8_t>(notif.code));
  body.u8(notif.subcode);
  body.bytes(notif.data);
  return with_header(MessageType::kNotification, body.view());
}

util::Result<NotificationMessage> decode_notification(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  NotificationMessage notif;
  if (!r.has(2)) {
    return reset(NotifCode::kMessageHeaderError, 2, "truncated NOTIFICATION");
  }
  notif.code = static_cast<NotifCode>(r.u8());
  notif.subcode = r.u8();
  auto rest = r.bytes(r.remaining());
  notif.data.assign(rest.begin(), rest.end());
  return notif;
}

std::vector<std::uint8_t> encode_keepalive() {
  return with_header(MessageType::kKeepalive, {});
}

std::vector<std::uint8_t> encode_route_refresh(const RouteRefreshMessage& refresh) {
  util::ByteWriter body;
  body.u16(refresh.afi);
  body.u8(0);  // reserved
  body.u8(refresh.safi);
  return with_header(MessageType::kRouteRefresh, body.view());
}

util::Result<RouteRefreshMessage> decode_route_refresh(std::span<const std::uint8_t> body) {
  if (body.size() != 4) {
    return reset(NotifCode::kMessageHeaderError, 2, "bad ROUTE-REFRESH length");
  }
  RouteRefreshMessage refresh;
  refresh.afi = static_cast<std::uint16_t>((body[0] << 8) | body[1]);
  refresh.safi = body[3];
  return refresh;
}

std::vector<std::uint8_t> encode(const Message& message) {
  return std::visit(
      [](const auto& m) -> std::vector<std::uint8_t> {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenMessage>) return encode_open(m);
        else if constexpr (std::is_same_v<T, UpdateMessage>) return encode_update(m);
        else if constexpr (std::is_same_v<T, NotificationMessage>) return encode_notification(m);
        else if constexpr (std::is_same_v<T, RouteRefreshMessage>) return encode_route_refresh(m);
        else return encode_keepalive();
      },
      message);
}

util::Result<Frame> try_frame(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderSize) return util::Status::incomplete();
  for (std::size_t i = 0; i < 16; ++i) {
    if (buffer[i] != kMarkerByte) {
      return reset(NotifCode::kMessageHeaderError, 1, "bad marker");
    }
  }
  const std::size_t total =
      (static_cast<std::size_t>(buffer[16]) << 8) | buffer[17];
  if (total < kHeaderSize || total > kMaxMessageSize) {
    // Data field: the erroneous Length field (RFC 4271 §6.1).
    return reset(NotifCode::kMessageHeaderError, 2, "bad message length",
                 {buffer[16], buffer[17]});
  }
  const std::uint8_t type = buffer[18];
  if (type < 1 || type > 5) {
    // Data field: the erroneous Type field.
    return reset(NotifCode::kMessageHeaderError, 3, "bad message type", {type});
  }
  if (buffer.size() < total) return util::Status::incomplete();
  return Frame{static_cast<MessageType>(type), total,
               buffer.subspan(kHeaderSize, total - kHeaderSize)};
}

util::Result<Message> decode_body(MessageType type, std::span<const std::uint8_t> body,
                                  UpdateNotes* notes) {
  switch (type) {
    case MessageType::kOpen: {
      auto r = decode_open(body);
      if (!r.has_value()) return r.status();
      return Message{*std::move(r)};
    }
    case MessageType::kUpdate: {
      auto r = decode_update(body, notes);
      if (!r.has_value()) return r.status();
      return Message{*std::move(r)};
    }
    case MessageType::kNotification: {
      auto r = decode_notification(body);
      if (!r.has_value()) return r.status();
      return Message{*std::move(r)};
    }
    case MessageType::kKeepalive:
      if (!body.empty()) {
        return reset(NotifCode::kMessageHeaderError, 2, "KEEPALIVE with body");
      }
      return Message{KeepaliveMessage{}};
    case MessageType::kRouteRefresh: {
      auto r = decode_route_refresh(body);
      if (!r.has_value()) return r.status();
      return Message{*std::move(r)};
    }
  }
  return reset(NotifCode::kMessageHeaderError, 3, "bad message type",
               {static_cast<std::uint8_t>(type)});
}

}  // namespace xb::bgp
