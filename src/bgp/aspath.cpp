#include "bgp/aspath.hpp"

namespace xb::bgp {

namespace {
// Each AS_SEQUENCE segment carries at most 255 members on the wire.
constexpr std::size_t kMaxSegmentLen = 255;
}  // namespace

AsPath::AsPath(std::vector<Asn> sequence) {
  if (!sequence.empty()) {
    segments_.push_back(AsSegment{SegmentType::kAsSequence, std::move(sequence)});
  }
}

void AsPath::prepend(Asn asn) {
  if (segments_.empty() || segments_.front().type != SegmentType::kAsSequence ||
      segments_.front().asns.size() >= kMaxSegmentLen) {
    segments_.insert(segments_.begin(), AsSegment{SegmentType::kAsSequence, {asn}});
    return;
  }
  auto& seq = segments_.front().asns;
  seq.insert(seq.begin(), asn);
}

std::size_t AsPath::length() const noexcept {
  std::size_t len = 0;
  for (const auto& seg : segments_) {
    len += seg.type == SegmentType::kAsSequence ? seg.asns.size() : 1;
  }
  return len;
}

bool AsPath::contains(Asn asn) const noexcept {
  for (const auto& seg : segments_) {
    for (Asn a : seg.asns) {
      if (a == asn) return true;
    }
  }
  return false;
}

bool AsPath::contains_adjacent_pair(Asn first, Asn second) const noexcept {
  std::optional<Asn> prev;
  for (const auto& seg : segments_) {
    if (seg.type != SegmentType::kAsSequence) {
      prev.reset();  // adjacency through an AS_SET is undefined
      continue;
    }
    for (Asn a : seg.asns) {
      if (prev && *prev == first && a == second) return true;
      prev = a;
    }
  }
  return false;
}

std::optional<Asn> AsPath::first_asn() const noexcept {
  if (segments_.empty()) return std::nullopt;
  const auto& seg = segments_.front();
  if (seg.type != SegmentType::kAsSequence || seg.asns.empty()) return std::nullopt;
  return seg.asns.front();
}

std::optional<Asn> AsPath::origin_asn() const noexcept {
  if (segments_.empty()) return std::nullopt;
  const auto& seg = segments_.back();
  if (seg.type != SegmentType::kAsSequence || seg.asns.empty()) return std::nullopt;
  return seg.asns.back();
}

std::vector<Asn> AsPath::flatten() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_) out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  return out;
}

WireAttr AsPath::to_attr() const {
  std::vector<std::uint8_t> value;
  for (const auto& seg : segments_) {
    value.push_back(static_cast<std::uint8_t>(seg.type));
    value.push_back(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn a : seg.asns) {
      value.push_back(static_cast<std::uint8_t>(a >> 24));
      value.push_back(static_cast<std::uint8_t>(a >> 16));
      value.push_back(static_cast<std::uint8_t>(a >> 8));
      value.push_back(static_cast<std::uint8_t>(a));
    }
  }
  return WireAttr{attr_flag::kTransitive, attr_code::kAsPath, std::move(value)};
}

std::optional<AsPath> AsPath::from_attr(const WireAttr& attr) {
  AsPath path;
  std::size_t i = 0;
  const auto& v = attr.value;
  while (i < v.size()) {
    if (i + 2 > v.size()) return std::nullopt;
    const auto type = v[i];
    const std::size_t count = v[i + 1];
    i += 2;
    if (type != 1 && type != 2) return std::nullopt;
    if (count == 0 || i + count * 4 > v.size()) return std::nullopt;
    AsSegment seg;
    seg.type = static_cast<SegmentType>(type);
    seg.asns.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      seg.asns.push_back((static_cast<Asn>(v[i]) << 24) | (static_cast<Asn>(v[i + 1]) << 16) |
                         (static_cast<Asn>(v[i + 2]) << 8) | v[i + 3]);
      i += 4;
    }
    path.segments_.push_back(std::move(seg));
  }
  return path;
}

}  // namespace xb::bgp
