#include "bgp/attr.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace xb::bgp {

void AttributeSet::put(WireAttr attr) {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr.code,
                             [](const WireAttr& a, std::uint8_t code) { return a.code < code; });
  if (it != attrs_.end() && it->code == attr.code) {
    *it = std::move(attr);
  } else {
    attrs_.insert(it, std::move(attr));
  }
}

bool AttributeSet::remove(std::uint8_t code) {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), code,
                             [](const WireAttr& a, std::uint8_t c) { return a.code < c; });
  if (it == attrs_.end() || it->code != code) return false;
  attrs_.erase(it);
  return true;
}

const WireAttr* AttributeSet::find(std::uint8_t code) const noexcept {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), code,
                             [](const WireAttr& a, std::uint8_t c) { return a.code < c; });
  if (it == attrs_.end() || it->code != code) return nullptr;
  return &*it;
}

void AttributeSet::encode_one(util::ByteWriter& w, const WireAttr& attr) {
  std::uint8_t flags = attr.flags;
  const bool extended = attr.value.size() > 255;
  if (extended) {
    flags |= attr_flag::kExtendedLength;
  } else {
    flags &= static_cast<std::uint8_t>(~attr_flag::kExtendedLength);
  }
  w.u8(flags);
  w.u8(attr.code);
  if (extended) {
    w.u16(static_cast<std::uint16_t>(attr.value.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(attr.value.size()));
  }
  w.bytes(attr.value);
}

void AttributeSet::encode(util::ByteWriter& w) const {
  for (const auto& attr : attrs_) encode_one(w, attr);
}

AttributeSet AttributeSet::decode(util::ByteReader& r, std::size_t len) {
  AttributeSet out;
  util::ByteReader body = r.sub(len);
  while (!body.empty()) {
    WireAttr attr;
    attr.flags = body.u8();
    attr.code = body.u8();
    const std::size_t value_len =
        (attr.flags & attr_flag::kExtendedLength) ? body.u16() : body.u8();
    auto value = body.bytes(value_len);
    attr.value.assign(value.begin(), value.end());
    // Clear the extended-length bit: it is an encoding detail, not semantics,
    // and normalising it keeps AttributeSet equality canonical.
    attr.flags &= static_cast<std::uint8_t>(~attr_flag::kExtendedLength);
    out.put(std::move(attr));
  }
  return out;
}

// --- typed attribute helpers --------------------------------------------------

namespace {
WireAttr wk(std::uint8_t code, std::vector<std::uint8_t> value) {
  // Well-known attributes are mandatory/discretionary but always transitive.
  return WireAttr{attr_flag::kTransitive, code, std::move(value)};
}
WireAttr opt(std::uint8_t code, std::vector<std::uint8_t> value, bool transitive) {
  std::uint8_t flags = attr_flag::kOptional;
  if (transitive) flags |= attr_flag::kTransitive;
  return WireAttr{flags, code, std::move(value)};
}
std::vector<std::uint8_t> be32_bytes(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}
std::uint32_t read_be32(std::span<const std::uint8_t> b) {
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
}
}  // namespace

WireAttr make_origin(Origin origin) {
  return wk(attr_code::kOrigin, {static_cast<std::uint8_t>(origin)});
}

std::optional<Origin> parse_origin(const WireAttr& attr) {
  if (attr.value.size() != 1 || attr.value[0] > 2) return std::nullopt;
  return static_cast<Origin>(attr.value[0]);
}

WireAttr make_next_hop(util::Ipv4Addr nh) {
  return wk(attr_code::kNextHop, be32_bytes(nh.value()));
}

std::optional<util::Ipv4Addr> parse_next_hop(const WireAttr& attr) {
  if (attr.value.size() != 4) return std::nullopt;
  return util::Ipv4Addr(read_be32(attr.value));
}

WireAttr make_med(std::uint32_t med) {
  return opt(attr_code::kMed, be32_bytes(med), /*transitive=*/false);
}

std::optional<std::uint32_t> parse_med(const WireAttr& attr) {
  if (attr.value.size() != 4) return std::nullopt;
  return read_be32(attr.value);
}

WireAttr make_local_pref(std::uint32_t pref) {
  return wk(attr_code::kLocalPref, be32_bytes(pref));
}

std::optional<std::uint32_t> parse_local_pref(const WireAttr& attr) {
  if (attr.value.size() != 4) return std::nullopt;
  return read_be32(attr.value);
}

WireAttr make_communities(std::span<const std::uint32_t> communities) {
  std::vector<std::uint8_t> value;
  value.reserve(communities.size() * 4);
  for (auto c : communities) {
    auto b = be32_bytes(c);
    value.insert(value.end(), b.begin(), b.end());
  }
  return opt(attr_code::kCommunities, std::move(value), /*transitive=*/true);
}

std::vector<std::uint32_t> parse_communities(const WireAttr& attr) {
  std::vector<std::uint32_t> out;
  if (attr.value.size() % 4 != 0) return out;
  for (std::size_t i = 0; i < attr.value.size(); i += 4) {
    out.push_back(read_be32(std::span(attr.value).subspan(i, 4)));
  }
  return out;
}

WireAttr make_originator_id(RouterId id) {
  return opt(attr_code::kOriginatorId, be32_bytes(id), /*transitive=*/false);
}

std::optional<RouterId> parse_originator_id(const WireAttr& attr) {
  if (attr.value.size() != 4) return std::nullopt;
  return read_be32(attr.value);
}

WireAttr make_cluster_list(std::span<const std::uint32_t> clusters) {
  std::vector<std::uint8_t> value;
  value.reserve(clusters.size() * 4);
  for (auto c : clusters) {
    auto b = be32_bytes(c);
    value.insert(value.end(), b.begin(), b.end());
  }
  return opt(attr_code::kClusterList, std::move(value), /*transitive=*/false);
}

std::vector<std::uint32_t> parse_cluster_list(const WireAttr& attr) {
  std::vector<std::uint32_t> out;
  if (attr.value.size() % 4 != 0) return out;
  for (std::size_t i = 0; i < attr.value.size(); i += 4) {
    out.push_back(read_be32(std::span(attr.value).subspan(i, 4)));
  }
  return out;
}

WireAttr make_geoloc(std::int32_t lat_microdeg, std::int32_t lon_microdeg) {
  std::vector<std::uint8_t> value;
  auto lat = be32_bytes(static_cast<std::uint32_t>(lat_microdeg));
  auto lon = be32_bytes(static_cast<std::uint32_t>(lon_microdeg));
  value.insert(value.end(), lat.begin(), lat.end());
  value.insert(value.end(), lon.begin(), lon.end());
  return opt(attr_code::kGeoLoc, std::move(value), /*transitive=*/true);
}

std::optional<GeoLoc> parse_geoloc(const WireAttr& attr) {
  if (attr.value.size() != 8) return std::nullopt;
  GeoLoc g;
  g.lat_microdeg = static_cast<std::int32_t>(read_be32(std::span(attr.value).subspan(0, 4)));
  g.lon_microdeg = static_cast<std::int32_t>(read_be32(std::span(attr.value).subspan(4, 4)));
  return g;
}

}  // namespace xb::bgp
