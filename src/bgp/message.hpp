// BGP message model (RFC 4271 §4).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "bgp/attr.hpp"
#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace xb::bgp {

struct OpenMessage {
  std::uint8_t version = 4;
  /// The 2-octet My-AS field; AS_TRANS (23456) when the real ASN is 4-octet.
  std::uint16_t my_as_2octet = 0;
  std::uint16_t hold_time = kDefaultHoldTime;
  RouterId bgp_id = 0;
  /// Real 4-octet ASN, carried in the RFC 6793 capability.
  Asn asn = 0;

  static constexpr std::uint16_t kAsTrans = 23456;

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

struct UpdateMessage {
  std::vector<util::Prefix> withdrawn;
  AttributeSet attrs;
  std::vector<util::Prefix> nlri;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

struct NotificationMessage {
  NotifCode code = NotifCode::kCease;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  friend bool operator==(const NotificationMessage&, const NotificationMessage&) = default;
};

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&, const KeepaliveMessage&) = default;
};

/// RFC 2918 ROUTE-REFRESH: asks the peer to re-advertise its Adj-RIB-Out,
/// so changed import policy (or a newly loaded extension) can be applied
/// without flapping the session.
struct RouteRefreshMessage {
  std::uint16_t afi = 1;   // IPv4
  std::uint8_t safi = 1;   // unicast
  friend bool operator==(const RouteRefreshMessage&, const RouteRefreshMessage&) = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage, KeepaliveMessage,
                             RouteRefreshMessage>;

[[nodiscard]] MessageType type_of(const Message& m);

}  // namespace xb::bgp
