// One BGP session: transport framing + the RFC 4271 finite state machine.
//
// A PeerSession owns one end of a Duplex, frames the byte stream into
// messages, drives the handshake (Idle -> OpenSent -> OpenConfirm ->
// Established), and maintains the hold and keepalive timers on the event
// loop. Routing logic lives above, in the host routers: the session only
// surfaces established/update/down events.
//
// Error handling follows RFC 7606: the codec classifies UPDATE errors and
// the session resets only on session-reset tier failures (framing/header
// corruption, FSM violations). Treat-as-withdraw and attribute-discard
// UPDATEs are delivered upward with their UpdateNotes and counted here; no
// NOTIFICATION is sent for them and the session stays up.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bgp/codec.hpp"
#include "bgp/message.hpp"
#include "net/channel.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"

namespace xb::bgp {

enum class SessionState : std::uint8_t {
  kIdle,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

[[nodiscard]] const char* to_string(SessionState s);

class PeerSession {
 public:
  struct Config {
    Asn local_asn = 0;
    Asn peer_asn = 0;  // expected remote ASN; mismatch tears the session down
    RouterId local_id = 0;
    util::Ipv4Addr local_addr;
    util::Ipv4Addr peer_addr;
    std::uint16_t hold_time = kDefaultHoldTime;
    std::uint32_t keepalive_interval = kDefaultKeepaliveTime;
  };

  PeerSession(net::EventLoop& loop, net::Duplex::End end, Config config);

  PeerSession(const PeerSession&) = delete;
  PeerSession& operator=(const PeerSession&) = delete;

  /// Begins the handshake (sends OPEN). Idempotent once started.
  void start();

  /// Sends a NOTIFICATION (Cease) and drops to Idle.
  void stop();

  void send_update(const UpdateMessage& update) { send_bytes(encode_update(update)); }

  /// Asks the peer to re-advertise its Adj-RIB-Out (RFC 2918).
  void send_route_refresh() { send_bytes(encode_route_refresh(RouteRefreshMessage{})); }
  /// Sends pre-encoded message bytes (hosts pre-encode to batch NLRI).
  void send_bytes(std::span<const std::uint8_t> wire) { end_.write(wire); }

  [[nodiscard]] SessionState state() const noexcept { return state_; }
  [[nodiscard]] bool established() const noexcept { return state_ == SessionState::kEstablished; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] PeerType peer_type() const noexcept {
    return config_.local_asn == config_.peer_asn ? PeerType::kIbgp : PeerType::kEbgp;
  }
  /// Remote BGP identifier, valid once the peer's OPEN has been accepted.
  [[nodiscard]] RouterId peer_id() const noexcept { return peer_id_; }

  // --- upcalls --------------------------------------------------------------
  /// Fired on transition into Established.
  std::function<void()> on_established;
  /// Fired per received UPDATE; `notes` is the RFC 7606 degradation report
  /// (clean() when nothing was wrong); `raw` is the full wire message
  /// (header included) for the BGP_RECEIVE_MESSAGE insertion point.
  std::function<void(UpdateMessage&&, const UpdateNotes& notes,
                     std::span<const std::uint8_t> raw)>
      on_update;
  /// Fired when the session leaves Established / fails to come up.
  std::function<void(const std::string& reason)> on_down;
  /// Fired when the peer requests re-advertisement (RFC 2918).
  std::function<void()> on_route_refresh;

  // --- statistics -------------------------------------------------------------
  // The per-peer RFC 7606 tier counters live on the telemetry registry when
  // one is attached (the host registers one labelled series per peer); the
  // accessors below are thin shims that read back the registry series, so
  // callers are unaffected. Without a registry the counters fall back to the
  // local members.

  /// Registry handles for this session's counters. All session counting
  /// happens on the event-loop thread, so the cells use slot 0.
  struct Telemetry {
    obs::Registry* registry = nullptr;
    obs::Registry::Id updates_received = 0;
    obs::Registry::Id updates_sent = 0;
    obs::Registry::Id treat_as_withdraw = 0;
    obs::Registry::Id attrs_discarded = 0;
    obs::Registry::Id notifications_sent = 0;
  };
  /// Serial-phase; attach before traffic flows.
  void set_telemetry(const Telemetry& telemetry) noexcept { obs_ = telemetry; }

  [[nodiscard]] std::uint64_t updates_received() const noexcept {
    return read_counter(obs_.updates_received, updates_received_);
  }
  [[nodiscard]] std::uint64_t updates_sent() const noexcept {
    return read_counter(obs_.updates_sent, updates_sent_);
  }
  void count_update_sent() noexcept { bump(obs_.updates_sent, updates_sent_); }
  /// UPDATEs degraded to withdraws instead of resetting (RFC 7606).
  [[nodiscard]] std::uint64_t treat_as_withdraw_count() const noexcept {
    return read_counter(obs_.treat_as_withdraw, treat_as_withdraw_);
  }
  /// Path attributes stripped at the attribute-discard tier.
  [[nodiscard]] std::uint64_t attrs_discarded() const noexcept {
    return read_counter(obs_.attrs_discarded, attrs_discarded_);
  }
  /// NOTIFICATIONs this side originated (fail + administrative stop).
  [[nodiscard]] std::uint64_t notifications_sent() const noexcept {
    return read_counter(obs_.notifications_sent, notifications_sent_);
  }

 private:
  void handle_readable();
  void process_frame(const Frame& frame, std::span<const std::uint8_t> raw);
  void handle_open(const OpenMessage& open);
  void handle_keepalive();
  /// Sends a NOTIFICATION and tears the session down. `data` carries the
  /// offending bytes for the NOTIFICATION data field (RFC 4271 §6.3).
  void fail(NotifCode code, std::uint8_t subcode, const std::string& reason,
            std::vector<std::uint8_t> data = {});
  /// Same, from a session-reset tier Status off the typed error spine.
  void fail(const util::Status& status);
  void go_down(const std::string& reason);
  void arm_hold_timer();
  void arm_keepalive_timer();

  void bump(obs::Registry::Id id, std::uint64_t& fallback, std::uint64_t n = 1) noexcept {
    if (obs_.registry != nullptr) {
      obs_.registry->add(id, n, 0);
    } else {
      fallback += n;
    }
  }
  [[nodiscard]] std::uint64_t read_counter(obs::Registry::Id id,
                                           std::uint64_t fallback) const noexcept {
    return obs_.registry != nullptr ? obs_.registry->value(id) : fallback;
  }

  net::EventLoop& loop_;
  net::Duplex::End end_;
  Config config_;
  SessionState state_ = SessionState::kIdle;
  RouterId peer_id_ = 0;
  std::vector<std::uint8_t> rx_buffer_;
  std::size_t rx_consumed_ = 0;
  net::TimePoint last_rx_ = 0;
  bool started_ = false;
  std::uint64_t updates_received_ = 0;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t treat_as_withdraw_ = 0;
  std::uint64_t attrs_discarded_ = 0;
  std::uint64_t notifications_sent_ = 0;
  Telemetry obs_;
};

}  // namespace xb::bgp
