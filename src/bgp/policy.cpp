#include "bgp/policy.hpp"

#include <algorithm>
#include <sstream>

namespace xb::bgp::policy {

bool MatchPrefixList::matches(RouteFacts& facts) const {
  for (const auto& rule : rules_) {
    const std::uint8_t ge = rule.ge == 0 ? rule.prefix.length() : rule.ge;
    if (facts.prefix.length() >= ge && facts.prefix.length() <= rule.le &&
        rule.prefix.covers(facts.prefix)) {
      return true;
    }
  }
  return false;
}

std::string MatchPrefixList::describe() const {
  std::ostringstream os;
  os << "prefix-list(" << rules_.size() << " rules)";
  return os.str();
}

bool MatchAsPathContains::matches(RouteFacts& facts) const {
  return std::find(facts.as_path.begin(), facts.as_path.end(), asn_) != facts.as_path.end();
}

std::string MatchAsPathContains::describe() const {
  return "as-path contains " + std::to_string(asn_);
}

bool MatchCommunity::matches(RouteFacts& facts) const {
  return std::find(facts.communities.begin(), facts.communities.end(), community_) !=
         facts.communities.end();
}

std::string MatchCommunity::describe() const {
  return "community " + std::to_string(community_ >> 16) + ":" +
         std::to_string(community_ & 0xFFFF);
}

bool MatchAsPathLength::matches(RouteFacts& facts) const {
  return facts.as_path.size() >= min_ && facts.as_path.size() <= max_;
}

std::string MatchAsPathLength::describe() const {
  return "as-path length in [" + std::to_string(min_) + ", " + std::to_string(max_) + "]";
}

bool MatchRpki::matches(RouteFacts& facts) const {
  // FRR semantics: the validation state is computed here, on every
  // evaluation — the per-prefix lookup the paper measures (§3.4).
  rpki::Validity validity = rpki::Validity::kNotFound;
  if (table_ != nullptr && facts.origin_asn.has_value()) {
    validity = table_->validate(facts.prefix, *facts.origin_asn);
  }
  facts.new_meta = static_cast<std::uint32_t>(validity);
  switch (want_) {
    case Want::kValid: return validity == rpki::Validity::kValid;
    case Want::kInvalid: return validity == rpki::Validity::kInvalid;
    case Want::kNotFound: return validity == rpki::Validity::kNotFound;
    case Want::kAny: return true;
  }
  return false;
}

std::string MatchRpki::describe() const {
  switch (want_) {
    case Want::kValid: return "rpki valid";
    case Want::kInvalid: return "rpki invalid";
    case Want::kNotFound: return "rpki notfound";
    case Want::kAny: return "rpki any";
  }
  return "rpki ?";
}

bool MatchNexthopMetricAtMost::matches(RouteFacts& facts) const {
  return facts.igp_metric_to_nexthop <= max_;
}

std::string MatchNexthopMetricAtMost::describe() const {
  return "nexthop metric <= " + std::to_string(max_);
}

std::string SetLocalPref::describe() const { return "set local-pref " + std::to_string(value_); }
std::string SetMed::describe() const { return "set med " + std::to_string(value_); }
std::string AddCommunity::describe() const {
  return "add community " + std::to_string(community_ >> 16) + ":" +
         std::to_string(community_ & 0xFFFF);
}

Entry& RouteMap::add_entry(int seq, Action action) {
  Entry entry;
  entry.seq = seq;
  entry.action = action;
  auto it = std::lower_bound(entries_.begin(), entries_.end(), seq,
                             [](const Entry& e, int s) { return e.seq < s; });
  it = entries_.insert(it, std::move(entry));
  return *it;
}

Verdict RouteMap::evaluate(RouteFacts& facts) const {
  for (const auto& entry : entries_) {
    bool all = true;
    for (const auto& match : entry.matches) {
      clauses_evaluated_.fetch_add(1, std::memory_order_relaxed);
      if (!match->matches(facts)) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    for (const auto& set : entry.sets) set->apply(facts);
    return Verdict{entry.action == Action::kPermit, entry.seq};
  }
  return Verdict{default_action_ == Action::kPermit, -1};
}

std::string RouteMap::describe() const {
  std::ostringstream os;
  os << "route-map " << name_ << "\n";
  for (const auto& entry : entries_) {
    os << "  " << (entry.action == Action::kPermit ? "permit" : "deny") << " " << entry.seq
       << "\n";
    for (const auto& m : entry.matches) os << "    match " << m->describe() << "\n";
    for (const auto& s : entry.sets) os << "    " << s->describe() << "\n";
  }
  return os.str();
}

RouteMap standard_import_policy(const rpki::RoaTable* rpki_table) {
  RouteMap map("IMPORT", Action::kDeny);
  // Entry 10: drop bogons / special-use space (RFC 5735-style list).
  auto& bogons = map.add_entry(10, Action::kDeny);
  bogons.matches.push_back(std::make_unique<MatchPrefixList>(std::vector<PrefixRule>{
      {util::Prefix::parse("0.0.0.0/8"), 0, 32},
      {util::Prefix::parse("127.0.0.0/8"), 0, 32},
      {util::Prefix::parse("169.254.0.0/16"), 0, 32},
      {util::Prefix::parse("192.0.0.0/24"), 0, 32},
      {util::Prefix::parse("198.18.0.0/15"), 0, 32},
      {util::Prefix::parse("224.0.0.0/4"), 0, 32},
      {util::Prefix::parse("240.0.0.0/4"), 0, 32},
  }));
  // Entry 20: drop absurdly long AS paths (route-leak guard).
  auto& longpath = map.add_entry(20, Action::kDeny);
  longpath.matches.push_back(std::make_unique<MatchAsPathLength>(64, 10'000));
  // Entry 30: customer tag lifts preference.
  auto& customer = map.add_entry(30, Action::kPermit);
  customer.matches.push_back(std::make_unique<MatchCommunity>((65000u << 16) | 100));
  customer.sets.push_back(std::make_unique<SetLocalPref>(200));
  // Entry 40: permit the rest (validating origins when RPKI is configured;
  // `any` tags the route without discarding, as in the paper's §3.4 test).
  auto& rest = map.add_entry(40, Action::kPermit);
  if (rpki_table != nullptr) {
    rest.matches.push_back(std::make_unique<MatchRpki>(rpki_table, MatchRpki::Want::kAny));
  }
  return map;
}

RouteMap standard_export_policy() {
  RouteMap map("EXPORT", Action::kDeny);
  // Entry 10: never export special-use space.
  auto& bogons = map.add_entry(10, Action::kDeny);
  bogons.matches.push_back(std::make_unique<MatchPrefixList>(std::vector<PrefixRule>{
      {util::Prefix::parse("10.0.0.0/8"), 0, 32},
      {util::Prefix::parse("172.16.0.0/12"), 0, 32},
      {util::Prefix::parse("192.168.0.0/16"), 0, 32},
  }));
  // Entry 20: permit everything else.
  map.add_entry(20, Action::kPermit);
  return map;
}

}  // namespace xb::bgp::policy
