#include "obs/export.hpp"

#include <set>

namespace xb::obs {

namespace {

struct SplitName {
  std::string_view base;    // up to '{'
  std::string_view labels;  // inside the braces, no braces; empty if none
};

SplitName split_name(std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

std::string with_label(const SplitName& n, std::string_view suffix,
                       std::string_view extra_label) {
  std::string out(n.base);
  out += suffix;
  if (!n.labels.empty() || !extra_label.empty()) {
    out += '{';
    out += n.labels;
    if (!n.labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::set<std::string, std::less<>> headered;
  for (const auto& m : snap.metrics) {
    const SplitName n = split_name(m.name);
    if (headered.insert(std::string(n.base)).second) {
      out += "# HELP ";
      out += n.base;
      out += ' ';
      out += m.help.empty() ? std::string(n.base) : m.help;
      out += "\n# TYPE ";
      out += n.base;
      out += ' ';
      out += kind_name(m.kind);
      out += '\n';
    }
    if (m.kind == MetricKind::kHistogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        cum += m.buckets[i];
        const std::string le =
            i < m.bounds.size() ? "le=\"" + std::to_string(m.bounds[i]) + "\""
                                : std::string("le=\"+Inf\"");
        out += with_label(n, "_bucket", le);
        out += ' ';
        out += std::to_string(cum);
        out += '\n';
      }
      out += with_label(n, "_sum", {});
      out += ' ';
      out += std::to_string(m.sum);
      out += '\n';
      out += with_label(n, "_count", {});
      out += ' ';
      out += std::to_string(m.count);
      out += '\n';
    } else {
      out += m.name;
      out += ' ';
      out += std::to_string(m.value);
      out += '\n';
    }
  }
  return out;
}

std::string to_jsonl(std::span<const Span> spans, const OpNamer& op_name,
                     const FaultNamer& fault_name) {
  std::string out;
  for (const Span& s : spans) {
    out += "{\"ts\":";
    out += std::to_string(s.start_ns);
    out += ",\"dur_ns\":";
    out += std::to_string(s.duration_ns);
    out += ",\"point\":\"";
    if (op_name) {
      append_json_escaped(out, op_name(s.op));
    } else {
      out += std::to_string(s.op);
    }
    out += "\",\"program\":\"";
    append_json_escaped(out, s.program);
    out += "\",\"insns\":";
    out += std::to_string(s.instructions);
    out += ",\"helpers\":";
    out += std::to_string(s.helper_calls);
    out += ",\"slot\":";
    out += std::to_string(s.slot);
    out += ",\"verdict\":\"";
    out += to_string(s.verdict);
    out += '"';
    if (s.fault_class != kSpanNoFault) {
      out += ",\"fault\":\"";
      if (fault_name) {
        append_json_escaped(out, fault_name(s.fault_class));
      } else {
        out += std::to_string(s.fault_class);
      }
      out += '"';
    }
    out += "}\n";
  }
  return out;
}

}  // namespace xb::obs
