#include "obs/export.hpp"

#include <set>

namespace xb::obs {

namespace {

struct SplitName {
  std::string_view base;    // up to '{'
  std::string_view labels;  // inside the braces, no braces; empty if none
};

SplitName split_name(std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

// Prometheus 0.0.4 label-value escaping: backslash, double quote, newline.
void append_label_value_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

// HELP text escapes only backslash and newline (quotes are legal there).
void append_help_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

// Re-emits a label section (`k="v",k2="v2"`) with the values escaped.
// Callers splice raw label values (peer names, program names) into metric
// names, so a value may itself contain quotes; a quote only terminates a
// value when it is the last character or is followed by ','.
void append_escaped_labels(std::string& out, std::string_view labels) {
  std::size_t i = 0;
  while (i < labels.size()) {
    while (i < labels.size() && labels[i] != '=') out += labels[i++];
    if (i >= labels.size()) break;
    out += '=';
    ++i;
    if (i < labels.size() && labels[i] == '"') {
      out += '"';
      ++i;
    }
    const std::size_t start = i;
    while (i < labels.size() &&
           !(labels[i] == '"' &&
             (i + 1 == labels.size() || labels[i + 1] == ','))) {
      ++i;
    }
    append_label_value_escaped(out, labels.substr(start, i - start));
    if (i < labels.size()) {
      out += '"';
      ++i;
    }
    if (i < labels.size() && labels[i] == ',') {
      out += ',';
      ++i;
    }
  }
}

std::string with_label(const SplitName& n, std::string_view suffix,
                       std::string_view extra_label) {
  std::string out(n.base);
  out += suffix;
  if (!n.labels.empty() || !extra_label.empty()) {
    out += '{';
    append_escaped_labels(out, n.labels);
    if (!n.labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::set<std::string, std::less<>> headered;
  for (const auto& m : snap.metrics) {
    const SplitName n = split_name(m.name);
    if (headered.insert(std::string(n.base)).second) {
      out += "# HELP ";
      out += n.base;
      out += ' ';
      append_help_escaped(out, m.help.empty() ? n.base : std::string_view(m.help));
      out += "\n# TYPE ";
      out += n.base;
      out += ' ';
      out += kind_name(m.kind);
      out += '\n';
    }
    if (m.kind == MetricKind::kHistogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        cum += m.buckets[i];
        const std::string le =
            i < m.bounds.size() ? "le=\"" + std::to_string(m.bounds[i]) + "\""
                                : std::string("le=\"+Inf\"");
        out += with_label(n, "_bucket", le);
        out += ' ';
        out += std::to_string(cum);
        out += '\n';
      }
      out += with_label(n, "_sum", {});
      out += ' ';
      out += std::to_string(m.sum);
      out += '\n';
      out += with_label(n, "_count", {});
      out += ' ';
      out += std::to_string(m.count);
      out += '\n';
    } else {
      out += with_label(n, "", {});
      out += ' ';
      out += std::to_string(m.value);
      out += '\n';
    }
  }
  return out;
}

std::string to_jsonl(std::span<const Span> spans, const OpNamer& op_name,
                     const FaultNamer& fault_name) {
  std::string out;
  for (const Span& s : spans) {
    out += "{\"ts\":";
    out += std::to_string(s.start_ns);
    out += ",\"dur_ns\":";
    out += std::to_string(s.duration_ns);
    out += ",\"point\":\"";
    if (op_name) {
      append_json_escaped(out, op_name(s.op));
    } else {
      out += std::to_string(s.op);
    }
    out += "\",\"program\":\"";
    append_json_escaped(out, s.program);
    out += "\",\"insns\":";
    out += std::to_string(s.instructions);
    out += ",\"helpers\":";
    out += std::to_string(s.helper_calls);
    out += ",\"slot\":";
    out += std::to_string(s.slot);
    out += ",\"verdict\":\"";
    out += to_string(s.verdict);
    out += '"';
    if (s.fault_class != kSpanNoFault) {
      out += ",\"fault\":\"";
      if (fault_name) {
        append_json_escaped(out, fault_name(s.fault_class));
      } else {
        out += std::to_string(s.fault_class);
      }
      out += '"';
    }
    out += "}\n";
  }
  return out;
}

namespace {

void append_prefix(std::string& out, std::uint32_t addr, std::uint8_t len) {
  out += std::to_string((addr >> 24) & 0xFF);
  out += '.';
  out += std::to_string((addr >> 16) & 0xFF);
  out += '.';
  out += std::to_string((addr >> 8) & 0xFF);
  out += '.';
  out += std::to_string(addr & 0xFF);
  out += '/';
  out += std::to_string(len);
}

void append_peer_field(std::string& out, std::string_view field,
                       std::uint32_t peer, const PeerNamer& peer_name) {
  out += ",\"";
  out += field;
  out += "\":";
  std::string_view name;
  if (peer_name) name = peer_name(peer);
  if (!name.empty()) {
    out += '"';
    append_json_escaped(out, name);
    out += '"';
  } else {
    out += std::to_string(peer);
  }
}

}  // namespace

std::string to_jsonl(std::span<const Event> events, const PeerNamer& peer_name,
                     const OpNamer& op_name, const ProgramNamer& program_name) {
  std::string out;
  for (const Event& e : events) {
    out += "{\"serial\":";
    out += std::to_string(e.serial);
    out += ",\"ts_ns\":";
    out += std::to_string(e.ts_ns);
    out += ",\"kind\":\"";
    out += to_string(e.kind);
    out += '"';
    const bool session = e.kind == EventKind::kSessionUp ||
                         e.kind == EventKind::kSessionDown;
    if (!session) {
      out += ",\"prefix\":\"";
      append_prefix(out, e.prefix_addr, e.prefix_len);
      out += '"';
    }
    out += ",\"slot\":";
    out += std::to_string(e.slot);
    if (e.peer != kEventNoPeer) append_peer_field(out, "peer", e.peer, peer_name);
    if (e.old_peer != kEventNoPeer)
      append_peer_field(out, "old_peer", e.old_peer, peer_name);
    if (e.route_serial != 0) {
      out += ",\"route_serial\":";
      out += std::to_string(e.route_serial);
    }
    if (e.old_route_serial != 0) {
      out += ",\"old_route_serial\":";
      out += std::to_string(e.old_route_serial);
    }
    if (e.program != kEventNoProgram) {
      out += ",\"program\":";
      std::string_view name;
      if (program_name) name = program_name(e.program);
      if (!name.empty()) {
        out += '"';
        append_json_escaped(out, name);
        out += '"';
      } else {
        out += std::to_string(e.program);
      }
      out += ",\"point\":";
      if (op_name) {
        out += '"';
        append_json_escaped(out, op_name(e.op));
        out += '"';
      } else {
        out += std::to_string(e.op);
      }
    }
    out += "}\n";
  }
  return out;
}

}  // namespace xb::obs
