// Metrics registry: the storage half of the telemetry spine
// (docs/observability.md).
//
// Named counters, gauges and fixed-bucket histograms. Every metric owns one
// cell per execution slot, and the hot path writes the cell for the slot it
// is running as with a plain (non-atomic) add — the same ownership pattern
// as the per-slot Vmm stats: during a fork-join region each slot index is
// exclusively held by one thread, and the pool join publishes the writes to
// the reader. Folding across slots happens on read, in the serial phase.
//
// Registration (counter()/gauge()/histogram()/add_collector()) and reading
// (value()/snapshot()) are serial-phase operations; only add()/observe()/
// gauge_set() may run inside a parallel region.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xb::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// Default histogram bounds for latencies in nanoseconds: exponential from
// 250 ns to ~1 s, the range an extension invocation or a pipeline phase can
// plausibly occupy. The last implicit bucket is +Inf.
inline constexpr std::uint64_t kLatencyBucketBoundsNs[] = {
    250,        500,        1'000,      2'000,      4'000,      8'000,
    16'000,     32'000,     64'000,     128'000,    256'000,    512'000,
    1'000'000,  2'000'000,  4'000'000,  8'000'000,  16'000'000, 64'000'000,
    256'000'000, 1'000'000'000};

// One folded metric inside a Snapshot.
struct MetricValue {
  std::string name;  // full series name, may embed labels: foo_total{x="y"}
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;             // counter / gauge
  std::vector<std::uint64_t> bounds;   // histogram upper bounds (exclusive of +Inf)
  std::vector<std::uint64_t> buckets;  // per-bucket counts, bounds.size()+1 (+Inf last)
  std::uint64_t count = 0;             // histogram observation count
  std::uint64_t sum = 0;               // histogram sum of observed values

  // Interpolated quantile (q in [0,1]) from the bucket counts; histogram
  // only. Returns 0 with no observations.
  [[nodiscard]] double quantile(double q) const;
};

// The folded, point-in-time view handed to exporters. Collectors append to
// it with counter()/gauge() so subsystems that already keep their own
// fold-on-read stats (Vmm, ThreadPool) pay nothing on the hot path.
class Snapshot {
 public:
  void counter(std::string name, std::string help, std::uint64_t v);
  void gauge(std::string name, std::string help, std::uint64_t v);

  [[nodiscard]] const MetricValue* find(std::string_view name) const;

  std::vector<MetricValue> metrics;
};

class Registry {
 public:
  using Id = std::uint32_t;

  // `slots` = number of execution slots (>=1); slot 0 is the serial/main
  // slot. A disabled registry still hands out ids but add/observe/value are
  // no-ops returning zero — used to A/B the instrumentation cost in
  // bench/obs_overhead.
  explicit Registry(std::size_t slots = 1, bool enabled = true);

  // Registration is idempotent by name: re-registering an existing series
  // returns its id (kind must match).
  Id counter(std::string name, std::string help);
  Id gauge(std::string name, std::string help);
  Id histogram(std::string name, std::string help,
               std::span<const std::uint64_t> bounds = kLatencyBucketBoundsNs);

  // Hot path. `slot` must be exclusively owned by the calling thread.
  void add(Id id, std::uint64_t delta = 1, std::size_t slot = 0) noexcept {
    if (!enabled_) return;
    families_[id].scalar[slot].v += delta;
  }
  void gauge_set(Id id, std::uint64_t v, std::size_t slot = 0) noexcept {
    if (!enabled_) return;
    families_[id].scalar[slot].v = v;
  }
  void observe(Id id, std::uint64_t v, std::size_t slot = 0) noexcept;

  // Folded reads (serial phase). value() is the cross-slot sum for
  // counters/gauges and the observation count for histograms.
  [[nodiscard]] std::uint64_t value(Id id) const noexcept;

  // Pull-model collector, run at snapshot() time.
  void add_collector(std::function<void(Snapshot&)> fn);

  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::size_t series_count() const noexcept { return families_.size(); }

  // Zero every cell (benches/tests); registrations and collectors survive.
  void reset();

 private:
  // 64-byte stride so two slots' cells never share a cache line.
  struct alignas(64) ScalarCell {
    std::uint64_t v = 0;
  };
  struct alignas(64) HistCell {
    std::vector<std::uint64_t> buckets;  // bounds.size()+1
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<std::uint64_t> bounds;
    std::vector<ScalarCell> scalar;  // counter/gauge: one per slot
    std::vector<HistCell> hist;      // histogram: one per slot
  };

  Id register_family(std::string name, std::string help, MetricKind kind,
                     std::span<const std::uint64_t> bounds);

  std::size_t slots_;
  bool enabled_;
  std::vector<Family> families_;
  std::vector<std::function<void(Snapshot&)>> collectors_;
};

}  // namespace xb::obs
