// The telemetry bundle a host threads through its subsystems: one metrics
// registry + one trace ring + the tracing switch.
//
// Counters are always on (they replace the ad-hoc stats structs and are a
// plain per-slot add); tracing — spans and latency histograms, which need
// two clock reads per invocation — is off by default and flipped with
// set_tracing(). The flag is an atomic so a controller thread may toggle it
// while workers run; writers read it relaxed once per chain execution.

#pragma once

#include <atomic>
#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xb::obs {

struct Options {
  std::size_t slots = 1;            // execution slots (>= pipeline parallelism)
  std::size_t trace_capacity = 65536;  // spans retained per slot
  bool tracing = false;             // spans + latency histograms at startup
  bool enabled = true;              // false: registry no-ops (bench baseline)
};

class Telemetry {
 public:
  explicit Telemetry(const Options& opt = {})
      : registry_(opt.slots, opt.enabled),
        trace_(opt.trace_capacity, opt.slots),
        tracing_(opt.tracing) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }
  [[nodiscard]] TraceRing& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRing& trace() const noexcept { return trace_; }

  [[nodiscard]] bool tracing() const noexcept {
    return tracing_.load(std::memory_order_relaxed);
  }
  void set_tracing(bool on) noexcept {
    tracing_.store(on, std::memory_order_relaxed);
  }

 private:
  Registry registry_;
  TraceRing trace_;
  std::atomic<bool> tracing_;
};

}  // namespace xb::obs
