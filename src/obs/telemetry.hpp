// The telemetry bundle a host threads through its subsystems: one metrics
// registry + one trace ring + the control-plane flight recorder (event log
// and flap detector) + the tracing switch.
//
// Counters are always on (they replace the ad-hoc stats structs and are a
// plain per-slot add); tracing — spans and latency histograms, which need
// two clock reads per invocation — is off by default and flipped with
// set_tracing(). The flag is an atomic so a controller thread may toggle it
// while workers run; writers read it relaxed once per chain execution. The
// flight recorder ships on by default (its hot-path cost is one ring write
// per routing event, covered by the obs_overhead gate) and follows the
// registry's master switch: enabled=false disables it too.

#pragma once

#include <atomic>
#include <cstddef>

#include "obs/eventlog.hpp"
#include "obs/flap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xb::obs {

struct Options {
  std::size_t slots = 1;            // execution slots (>= pipeline parallelism)
  std::size_t trace_capacity = 65536;  // spans retained per slot
  // Flight-recorder events per slot. Sized so the whole ring (48 B/cell ×
  // slots) stays cache-resident: the ring cycles continuously under load,
  // and a ring larger than L2 turns every append into a miss — that alone
  // can eat the 2% overhead budget. 1024 cells × 8 slots ≈ 384 KB.
  std::size_t event_capacity = 1024;
  bool tracing = false;             // spans + latency histograms at startup
  bool enabled = true;              // false: registry no-ops (bench baseline)
  bool recorder = true;             // event log + provenance + flap oracle
  FlapOptions flap;
};

class Telemetry {
 public:
  explicit Telemetry(const Options& opt = {})
      : registry_(opt.slots, opt.enabled),
        trace_(opt.trace_capacity, opt.slots),
        events_(opt.event_capacity, opt.slots),
        flap_(opt.flap, opt.slots),
        tracing_(opt.tracing),
        recorder_(opt.recorder && opt.enabled) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }
  [[nodiscard]] TraceRing& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRing& trace() const noexcept { return trace_; }
  [[nodiscard]] EventLog& events() noexcept { return events_; }
  [[nodiscard]] const EventLog& events() const noexcept { return events_; }
  [[nodiscard]] FlapDetector& flap() noexcept { return flap_; }
  [[nodiscard]] const FlapDetector& flap() const noexcept { return flap_; }

  [[nodiscard]] bool tracing() const noexcept {
    return tracing_.load(std::memory_order_relaxed);
  }
  void set_tracing(bool on) noexcept {
    tracing_.store(on, std::memory_order_relaxed);
  }

  // True when routing events and provenance should be recorded; fixed at
  // construction (hot paths read a plain bool).
  [[nodiscard]] bool recorder() const noexcept { return recorder_; }

 private:
  Registry registry_;
  TraceRing trace_;
  EventLog events_;
  FlapDetector flap_;
  std::atomic<bool> tracing_;
  bool recorder_;
};

}  // namespace xb::obs
