#include "obs/trace.hpp"

#include <algorithm>

namespace xb::obs {

std::string_view to_string(SpanVerdict v) {
  switch (v) {
    case SpanVerdict::kHandled: return "handled";
    case SpanVerdict::kNext: return "next";
    case SpanVerdict::kFault: return "fault";
    case SpanVerdict::kNativeFallback: return "native-fallback";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity_per_slot, std::size_t slots)
    : capacity_(capacity_per_slot == 0 ? 1 : capacity_per_slot),
      rings_(slots == 0 ? 1 : slots) {
  for (auto& r : rings_) r.spans.resize(capacity_);
}

std::uint64_t TraceRing::recorded_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r.total;
  return total;
}

std::uint64_t TraceRing::dropped_total() const noexcept {
  std::uint64_t dropped = 0;
  for (const auto& r : rings_)
    if (r.total > r.spans.size()) dropped += r.total - r.spans.size();
  return dropped;
}

std::vector<Span> TraceRing::collect() const {
  std::vector<Span> out;
  for (const auto& r : rings_) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(r.total, r.spans.size()));
    // With wraparound the live window is the last `capacity_` appends and
    // cell (total % cap) is the oldest surviving span; before wraparound the
    // ring is simply [0, total).
    const std::size_t start =
        r.total > r.spans.size() ? static_cast<std::size_t>(r.total % r.spans.size()) : 0;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(r.spans[(start + i) % r.spans.size()]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) { return a.start_ns < b.start_ns; });
  return out;
}

void TraceRing::clear() {
  for (auto& r : rings_) r.total = 0;
}

}  // namespace xb::obs
