#include "obs/eventlog.hpp"

#include <algorithm>

namespace xb::obs {

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kRouteLearned: return "route-learned";
    case EventKind::kRouteReplaced: return "route-replaced";
    case EventKind::kRouteWithdrawn: return "route-withdrawn";
    case EventKind::kBestChanged: return "best-changed";
    case EventKind::kSessionUp: return "session-up";
    case EventKind::kSessionDown: return "session-down";
    case EventKind::kExtensionMutation: return "extension-mutation";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity_per_slot, std::size_t slots)
    : capacity_(capacity_per_slot == 0 ? 1 : capacity_per_slot),
      rings_(slots == 0 ? 1 : slots) {
  for (auto& r : rings_) r.events.resize(capacity_);
}

std::uint64_t EventLog::recorded_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r.total;
  return total;
}

std::uint64_t EventLog::dropped_total() const noexcept {
  std::uint64_t dropped = 0;
  for (const auto& r : rings_)
    if (r.total > r.events.size()) dropped += r.total - r.events.size();
  return dropped;
}

std::vector<Event> EventLog::collect() const {
  std::vector<Event> out;
  for (const auto& r : rings_) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(r.total, r.events.size()));
    // Same live-window arithmetic as TraceRing::collect(): cell
    // (total % cap) is the oldest surviving event after wraparound.
    const std::size_t start = r.total > r.events.size() ? r.head : 0;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(r.events[(start + i) % r.events.size()]);
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.serial < b.serial;
  });
  return out;
}

void EventLog::clear() {
  for (auto& r : rings_) {
    r.total = 0;
    r.head = 0;
    r.serial_next = 0;
    r.serial_limit = 0;
  }
  next_serial_.store(0, std::memory_order_relaxed);
}

}  // namespace xb::obs
