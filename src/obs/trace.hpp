// Execution tracing: bounded per-slot ring buffers of spans, one span per
// extension invocation (docs/observability.md).
//
// A span records which program ran at which insertion point, how long it
// took, how much it executed (instructions, helper calls) and how it ended
// (handled / next() / fault / native fallback). Recording follows the same
// slot-ownership discipline as the metrics registry: append(slot) may only
// be called by the thread currently holding that slot; collect()/clear()
// are serial-phase.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace xb::obs {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

enum class SpanVerdict : std::uint8_t {
  kHandled = 0,         // extension returned a terminal verdict
  kNext = 1,            // fell through to the next program in the chain
  kFault = 2,           // aborted; fault_class says why
  kNativeFallback = 3,  // last program yielded next() with no successor —
                        // the host's native logic ran instead
};

[[nodiscard]] std::string_view to_string(SpanVerdict v);

inline constexpr std::uint8_t kSpanNoFault = 0xFF;

struct Span {
  std::uint64_t start_ns = 0;     // steady-clock timestamp
  std::uint64_t duration_ns = 0;  // wall-clock time inside the VM
  std::uint32_t instructions = 0;
  std::uint32_t helper_calls = 0;
  std::uint8_t op = 0;  // xbgp::Op insertion point
  SpanVerdict verdict = SpanVerdict::kHandled;
  std::uint8_t fault_class = kSpanNoFault;  // xbgp::FaultClass, 0xFF = none
  std::uint8_t slot = 0;
  char program[36] = {};  // NUL-terminated, truncated extension name
};

inline void set_span_program(Span& s, std::string_view name) {
  const std::size_t n = std::min(name.size(), sizeof(s.program) - 1);
  std::memcpy(s.program, name.data(), n);
  s.program[n] = '\0';
}

class TraceRing {
 public:
  TraceRing(std::size_t capacity_per_slot, std::size_t slots);

  // Hands back the next ring cell for `slot` to fill in place; overwrites
  // the oldest span once the ring is full. Never allocates.
  Span* append(std::size_t slot) noexcept {
    SlotRing& r = rings_[slot];
    Span* s = &r.spans[r.total % r.spans.size()];
    ++r.total;
    return s;
  }

  [[nodiscard]] std::uint64_t recorded(std::size_t slot) const noexcept {
    return rings_[slot].total;
  }
  [[nodiscard]] std::uint64_t recorded_total() const noexcept;
  // Spans overwritten before anyone collected them.
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;
  [[nodiscard]] std::size_t capacity_per_slot() const noexcept { return capacity_; }

  // Serial phase: surviving spans across all slots, sorted by start_ns.
  [[nodiscard]] std::vector<Span> collect() const;

  void clear();

 private:
  struct SlotRing {
    std::vector<Span> spans;
    std::uint64_t total = 0;  // spans ever appended to this slot
  };
  std::size_t capacity_;
  std::vector<SlotRing> rings_;
};

}  // namespace xb::obs
