// Control-plane flight recorder: a bounded per-slot ring of typed routing
// events (docs/observability.md).
//
// Same ownership discipline as TraceRing: append(slot) may only be called
// by the thread currently holding that slot (plain writes into the slot's
// own ring); collect()/clear() are serial-phase. The one shared piece of
// state is the router-wide event serial — slots draw blocks of serials from
// a relaxed fetch_add counter (one shared-line write per kSerialBlock
// appends, not per event) — which keeps serials unique across all slots
// without any other coordination. Serial VALUES interleave
// nondeterministically across slots at parallelism > 1 and may leave gaps
// (unused block tails); consumers needing determinism sort by content, not
// serial (see tests/differential_host_test.cpp).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace xb::obs {

enum class EventKind : std::uint8_t {
  kRouteLearned = 0,       // new Adj-RIB-In entry
  kRouteReplaced = 1,      // Adj-RIB-In entry overwritten (implicit withdraw)
  kRouteWithdrawn = 2,     // Adj-RIB-In entry removed
  kBestChanged = 3,        // Loc-RIB winner changed (old/new in the record)
  kSessionUp = 4,          // peer session established
  kSessionDown = 5,        // peer session lost
  kExtensionMutation = 6,  // an extension program mutated attributes
};

[[nodiscard]] std::string_view to_string(EventKind k);

inline constexpr std::uint32_t kEventNoPeer = 0xFFFFFFFF;
inline constexpr std::uint16_t kEventNoProgram = 0xFFFF;

struct Event {
  std::uint64_t serial = 0;       // router-wide monotonic event serial
  std::uint64_t ts_ns = 0;        // event-loop virtual time
  std::uint64_t route_serial = 0;      // ingest serial of the (new) route
  std::uint64_t old_route_serial = 0;  // previous winner / replaced route
  std::uint32_t prefix_addr = 0;
  std::uint32_t peer = kEventNoPeer;      // acting / new-winner peer
  std::uint32_t old_peer = kEventNoPeer;  // previous winner (kBestChanged)
  std::uint16_t program = kEventNoProgram;  // kExtensionMutation only
  std::uint8_t prefix_len = 0;
  EventKind kind = EventKind::kRouteLearned;
  std::uint8_t op = 0;    // xbgp::Op for kExtensionMutation
  std::uint8_t slot = 0;  // execution slot that recorded the event
};

class EventLog {
 public:
  EventLog(std::size_t capacity_per_slot, std::size_t slots);

  // Hands back the next ring cell for `slot`, reset to defaults with the
  // serial and slot already stamped; overwrites the oldest event once the
  // ring is full. Never allocates.
  Event* append(std::size_t slot) noexcept {
    SlotRing& r = rings_[slot];
    // head is total % capacity maintained incrementally: a compare-and-reset
    // is far cheaper than a division on every hot-path append.
    Event* e = &r.events[r.head];
    if (++r.head == capacity_) r.head = 0;
    ++r.total;
    // Serials come from a slot-local block so the shared counter's cache
    // line is written once per kSerialBlock appends, not once per event —
    // at parallelism 8 a per-append fetch_add is a line bouncing between
    // every worker. Serials stay unique and ascending per slot; values may
    // have gaps (unused block tails) and interleave across slots, which
    // the header contract already allows.
    if (r.serial_next == r.serial_limit) {
      r.serial_next =
          next_serial_.fetch_add(kSerialBlock, std::memory_order_relaxed);
      r.serial_limit = r.serial_next + kSerialBlock;
    }
    *e = Event{};
    e->serial = ++r.serial_next;
    e->slot = static_cast<std::uint8_t>(slot);
    return e;
  }

  [[nodiscard]] std::uint64_t recorded(std::size_t slot) const noexcept {
    return rings_[slot].total;
  }
  [[nodiscard]] std::uint64_t recorded_total() const noexcept;
  // Events overwritten before anyone collected them.
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;
  [[nodiscard]] std::size_t capacity_per_slot() const noexcept {
    return capacity_;
  }

  // Serial phase: surviving events across all slots, sorted by serial.
  [[nodiscard]] std::vector<Event> collect() const;

  void clear();

 private:
  // One block of serials is handed to a slot per shared-counter touch.
  static constexpr std::uint64_t kSerialBlock = 256;

  struct SlotRing {
    std::vector<Event> events;
    std::uint64_t total = 0;   // events ever appended to this slot
    std::size_t head = 0;      // next cell to write == total % events.size()
    std::uint64_t serial_next = 0;   // last serial handed out in this block
    std::uint64_t serial_limit = 0;  // block exhausted when next == limit
  };
  std::size_t capacity_;
  std::vector<SlotRing> rings_;
  // Own cache line: every slot reads rings_.data() on the hot path, and a
  // blockrefill write to a line shared with it would invalidate that read
  // for every other worker.
  alignas(64) std::atomic<std::uint64_t> next_serial_{0};
};

}  // namespace xb::obs
