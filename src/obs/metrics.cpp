#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace xb::obs {

double MetricValue::quantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) >= rank && buckets[i] > 0) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      // +Inf bucket: no upper bound to interpolate towards, report its floor.
      if (i >= bounds.size()) return lo;
      const double hi = static_cast<double>(bounds[i]);
      const double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

void Snapshot::counter(std::string name, std::string help, std::uint64_t v) {
  MetricValue m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.kind = MetricKind::kCounter;
  m.value = v;
  metrics.push_back(std::move(m));
}

void Snapshot::gauge(std::string name, std::string help, std::uint64_t v) {
  MetricValue m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.kind = MetricKind::kGauge;
  m.value = v;
  metrics.push_back(std::move(m));
}

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

Registry::Registry(std::size_t slots, bool enabled)
    : slots_(slots == 0 ? 1 : slots), enabled_(enabled) {}

Registry::Id Registry::register_family(std::string name, std::string help,
                                       MetricKind kind,
                                       std::span<const std::uint64_t> bounds) {
  for (std::size_t i = 0; i < families_.size(); ++i) {
    if (families_[i].name == name) {
      if (families_[i].kind != kind)
        throw std::invalid_argument("obs: metric '" + name +
                                    "' re-registered with different kind");
      return static_cast<Id>(i);
    }
  }
  Family f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.kind = kind;
  if (kind == MetricKind::kHistogram) {
    f.bounds.assign(bounds.begin(), bounds.end());
    if (!std::is_sorted(f.bounds.begin(), f.bounds.end()))
      throw std::invalid_argument("obs: histogram bounds must be sorted");
    f.hist.resize(slots_);
    for (auto& h : f.hist) h.buckets.assign(f.bounds.size() + 1, 0);
  } else {
    f.scalar.resize(slots_);
  }
  families_.push_back(std::move(f));
  return static_cast<Id>(families_.size() - 1);
}

Registry::Id Registry::counter(std::string name, std::string help) {
  return register_family(std::move(name), std::move(help), MetricKind::kCounter, {});
}

Registry::Id Registry::gauge(std::string name, std::string help) {
  return register_family(std::move(name), std::move(help), MetricKind::kGauge, {});
}

Registry::Id Registry::histogram(std::string name, std::string help,
                                 std::span<const std::uint64_t> bounds) {
  return register_family(std::move(name), std::move(help), MetricKind::kHistogram,
                         bounds);
}

void Registry::observe(Id id, std::uint64_t v, std::size_t slot) noexcept {
  if (!enabled_) return;
  Family& f = families_[id];
  HistCell& cell = f.hist[slot];
  // First bucket whose bound >= v; values above every bound land in +Inf.
  const auto it = std::lower_bound(f.bounds.begin(), f.bounds.end(), v);
  ++cell.buckets[static_cast<std::size_t>(it - f.bounds.begin())];
  ++cell.count;
  cell.sum += v;
}

std::uint64_t Registry::value(Id id) const noexcept {
  const Family& f = families_[id];
  std::uint64_t total = 0;
  if (f.kind == MetricKind::kHistogram) {
    for (const auto& h : f.hist) total += h.count;
  } else {
    for (const auto& c : f.scalar) total += c.v;
  }
  return total;
}

void Registry::add_collector(std::function<void(Snapshot&)> fn) {
  collectors_.push_back(std::move(fn));
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  out.metrics.reserve(families_.size());
  for (const auto& f : families_) {
    MetricValue m;
    m.name = f.name;
    m.help = f.help;
    m.kind = f.kind;
    if (f.kind == MetricKind::kHistogram) {
      m.bounds = f.bounds;
      m.buckets.assign(f.bounds.size() + 1, 0);
      for (const auto& h : f.hist) {
        for (std::size_t i = 0; i < h.buckets.size(); ++i) m.buckets[i] += h.buckets[i];
        m.count += h.count;
        m.sum += h.sum;
      }
    } else {
      for (const auto& c : f.scalar) m.value += c.v;
    }
    out.metrics.push_back(std::move(m));
  }
  for (const auto& fn : collectors_) fn(out);
  return out;
}

void Registry::reset() {
  for (auto& f : families_) {
    for (auto& c : f.scalar) c.v = 0;
    for (auto& h : f.hist) {
      std::fill(h.buckets.begin(), h.buckets.end(), 0);
      h.count = 0;
      h.sum = 0;
    }
  }
}

}  // namespace xb::obs
