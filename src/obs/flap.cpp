#include "obs/flap.hpp"

#include <algorithm>
#include <cmath>

namespace xb::obs {

FlapDetector::FlapDetector(const FlapOptions& opt, std::size_t shards)
    : opt_(opt),
      shards_(shards == 0 ? 1 : shards),
      pending_(shards == 0 ? 1 : shards) {}

std::uint64_t FlapDetector::decayed(const PrefixFlapState& s,
                                    std::uint64_t now_ns) const noexcept {
  if (s.penalty == 0 || opt_.half_life_ns == 0) return s.penalty;
  const std::uint64_t dt = now_ns > s.last_change_ns ? now_ns - s.last_change_ns : 0;
  const double halves = static_cast<double>(dt) / static_cast<double>(opt_.half_life_ns);
  if (halves > 63.0) return 0;  // fully decayed; exp2 would underflow anyway
  return static_cast<std::uint64_t>(static_cast<double>(s.penalty) *
                                    std::exp2(-halves));
}

void FlapDetector::drain_shard(std::size_t shard) const {
  auto& pending = pending_[shard];
  if (pending.empty()) return;
  auto& map = shards_[shard];
  // Upper bound: every pending key is new. Exact for the common converging
  // case (one change per prefix) and saves the rehash chain either way.
  map.reserve(map.size() + pending.size());
  for (const PendingChange& c : pending) {
    PrefixFlapState& s = map[c.key];
    s.penalty = decayed(s, c.now_ns) + opt_.penalty_per_change;
    if (!s.burst_open || c.now_ns - s.last_change_ns > opt_.quiet_ns) {
      // A change after a quiet gap starts a new burst (the previous one
      // was — or will be — reported by sweep()).
      s.burst_start_ns = c.now_ns;
      s.burst_open = true;
    }
    ++s.changes;
    s.last_change_ns = c.now_ns;
  }
  pending.clear();
}

void FlapDetector::drain() const {
  for (std::size_t i = 0; i < pending_.size(); ++i) drain_shard(i);
}

FlapVerdict FlapDetector::verdict(std::uint64_t now_ns) const {
  drain();
  FlapVerdict v;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) {
      ++v.tracked_prefixes;
      v.total_changes += s.changes;
      const std::uint64_t p = decayed(s, now_ns);
      v.max_penalty = std::max(v.max_penalty, p);
      if (now_ns - s.last_change_ns <= opt_.quiet_ns) ++v.active_prefixes;
      if (p >= opt_.suppress_threshold) ++v.suppressed_prefixes;
    }
  }
  v.quiescent = v.active_prefixes == 0 && v.suppressed_prefixes == 0;
  return v;
}

void FlapDetector::sweep(
    std::uint64_t now_ns,
    const std::function<void(std::uint64_t burst_ns)>& observe) {
  drain();
  for (auto& shard : shards_) {
    for (auto& [key, s] : shard) {
      if (!s.burst_open) continue;
      if (now_ns - s.last_change_ns <= opt_.quiet_ns) continue;  // still hot
      s.burst_open = false;
      if (observe) observe(s.last_change_ns - s.burst_start_ns);
    }
  }
}

std::vector<FlapEntry> FlapDetector::top(std::size_t n,
                                         std::uint64_t now_ns) const {
  drain();
  std::vector<FlapEntry> all;
  for (const auto& shard : shards_) {
    for (const auto& [key, s] : shard) {
      all.push_back(FlapEntry{key, s.changes, decayed(s, now_ns),
                              s.last_change_ns});
    }
  }
  std::sort(all.begin(), all.end(), [](const FlapEntry& a, const FlapEntry& b) {
    if (a.penalty != b.penalty) return a.penalty > b.penalty;
    if (a.changes != b.changes) return a.changes > b.changes;
    return a.key < b.key;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::uint64_t FlapDetector::total_changes() const {
  drain();
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (const auto& [key, s] : shard) total += s.changes;
  return total;
}

void FlapDetector::clear() {
  for (auto& shard : shards_) shard.clear();
  for (auto& pending : pending_) pending.clear();
}

}  // namespace xb::obs
