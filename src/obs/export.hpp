// Exposition formats for the telemetry spine: Prometheus text for metric
// snapshots, JSONL for trace spans (docs/observability.md).

#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xb::obs {

// Prometheus text exposition (version 0.0.4): HELP/TYPE once per family
// (series sharing a base name before '{' share one header), histograms as
// cumulative _bucket{le=...} plus _sum/_count, labels merged. Label values
// are escaped per the text format (backslash, double quote and newline).
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

// Resolves a Span's numeric insertion-point id to a printable name; wired
// to xbgp::to_string(Op) by callers (obs does not depend on xbgp).
using OpNamer = std::function<std::string_view(std::uint8_t)>;
using FaultNamer = std::function<std::string_view(std::uint8_t)>;

// One JSON object per line:
// {"ts":..,"dur_ns":..,"point":"..","program":"..","insns":..,"helpers":..,
//  "slot":..,"verdict":".."[,"fault":".."]}
[[nodiscard]] std::string to_jsonl(std::span<const Span> spans,
                                   const OpNamer& op_name = {},
                                   const FaultNamer& fault_name = {});

// Resolves an Event's numeric peer / program ids to printable names; wired
// to the router's peer table and Vmm program registry by callers.
using PeerNamer = std::function<std::string_view(std::uint32_t)>;
using ProgramNamer = std::function<std::string_view(std::uint16_t)>;

// Flight-recorder exposition, one JSON object per line:
// {"serial":..,"ts_ns":..,"kind":"..","prefix":"a.b.c.d/len","slot":..
//  [,"peer":..][,"old_peer":..][,"route_serial":..][,"old_route_serial":..]
//  [,"program":..][,"point":..]}
// Peer/program render as names when a namer is given, numeric ids otherwise.
[[nodiscard]] std::string to_jsonl(std::span<const Event> events,
                                   const PeerNamer& peer_name = {},
                                   const OpNamer& op_name = {},
                                   const ProgramNamer& program_name = {});

}  // namespace xb::obs
