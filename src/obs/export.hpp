// Exposition formats for the telemetry spine: Prometheus text for metric
// snapshots, JSONL for trace spans (docs/observability.md).

#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xb::obs {

// Prometheus text exposition (version 0.0.4): HELP/TYPE once per family
// (series sharing a base name before '{' share one header), histograms as
// cumulative _bucket{le=...} plus _sum/_count, labels merged.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

// Resolves a Span's numeric insertion-point id to a printable name; wired
// to xbgp::to_string(Op) by callers (obs does not depend on xbgp).
using OpNamer = std::function<std::string_view(std::uint8_t)>;
using FaultNamer = std::function<std::string_view(std::uint8_t)>;

// One JSON object per line:
// {"ts":..,"dur_ns":..,"point":"..","program":"..","insns":..,"helpers":..,
//  "slot":..,"verdict":".."[,"fault":".."]}
[[nodiscard]] std::string to_jsonl(std::span<const Span> spans,
                                   const OpNamer& op_name = {},
                                   const FaultNamer& fault_name = {});

}  // namespace xb::obs
