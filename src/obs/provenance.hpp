// Route provenance: a compact per-route causality record answering "why is
// this prefix routed this way" (docs/observability.md).
//
// Every Adj-RIB-In / Loc-RIB / Adj-RIB-Out entry carries one. It is written
// on the hot path under the same slot-ownership discipline as the metrics
// registry — the record lives inside the route entry its owning shard
// mutates, so no synchronization is needed — and read in the serial phase
// by tests and the xbgp_why CLI.
//
// The record is deliberately small (32 bytes): source peer, the decision
// step that selected the route (bgp::DecisionStep, or a sentinel when no
// native comparison ran), the ordered list of extension programs that
// mutated attributes on the way in or out, and the router-wide ingest
// serial the update was assigned. The mutator list is bounded; overflow is
// recorded by saturating mutation_count so "some mutations were not
// attributed" stays visible.

#pragma once

#include <cstddef>
#include <cstdint>

namespace xb::obs {

inline constexpr std::uint32_t kProvNoPeer = 0xFFFFFFFF;   // locally originated
inline constexpr std::uint16_t kProvNoProgram = 0xFFFF;    // no extension
inline constexpr std::size_t kProvMaxMutators = 4;

// decision_step values above bgp::DecisionStep's range:
inline constexpr std::uint8_t kProvStepUnset = 0xFF;      // never decided
inline constexpr std::uint8_t kProvStepExtension = 0xFE;  // a BGP_DECISION
                                                          // extension decided
inline constexpr std::uint8_t kProvStepOnlyRoute = 0xFD;  // sole candidate
inline constexpr std::uint8_t kProvStepLocal = 0xFC;      // local/static route

struct Provenance {
  std::uint64_t ingest_serial = 0;        // router-wide monotonic serial
  std::uint32_t src_peer = kProvNoPeer;   // PeerId the route was learned from
  std::uint8_t decision_step = kProvStepUnset;
  std::uint8_t mutation_count = 0;        // total mutations (may exceed list)
  std::uint16_t mutators[kProvMaxMutators] = {
      kProvNoProgram, kProvNoProgram, kProvNoProgram, kProvNoProgram};
  std::uint8_t mutator_ops[kProvMaxMutators] = {};  // xbgp::Op per mutator

  // Records "program P mutated attributes at insertion point op". A program
  // often writes several attributes per invocation; consecutive identical
  // (program, op) entries are deduped so the bounded list covers the chain,
  // not one program's attribute count. Returns false on such a dedupe —
  // callers use it to suppress duplicate flight-recorder events too.
  bool note_mutation(std::uint16_t program, std::uint8_t op) noexcept {
    const std::uint8_t n = mutation_count;
    if (n > 0 && n <= kProvMaxMutators && mutators[n - 1] == program &&
        mutator_ops[n - 1] == op) {
      return false;  // same program, same point: one causal entry
    }
    if (n < kProvMaxMutators) {
      mutators[n] = program;
      mutator_ops[n] = op;
    }
    if (mutation_count < 0xFF) ++mutation_count;
    return true;
  }

  [[nodiscard]] std::size_t mutator_entries() const noexcept {
    return mutation_count < kProvMaxMutators
               ? mutation_count
               : kProvMaxMutators;
  }

  [[nodiscard]] bool recorded() const noexcept {
    return ingest_serial != 0 || src_peer != kProvNoPeer ||
           decision_step != kProvStepUnset;
  }

  friend bool operator==(const Provenance& a, const Provenance& b) noexcept {
    if (a.ingest_serial != b.ingest_serial || a.src_peer != b.src_peer ||
        a.decision_step != b.decision_step ||
        a.mutation_count != b.mutation_count) {
      return false;
    }
    for (std::size_t i = 0; i < kProvMaxMutators; ++i) {
      if (a.mutators[i] != b.mutators[i] ||
          a.mutator_ops[i] != b.mutator_ops[i]) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace xb::obs
