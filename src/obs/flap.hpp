// Route churn / flap detector with an RFC 2439-style exponential-decay
// penalty, plus the quiescence verdict ROADMAP item 3's divergence oracle
// consumes (docs/observability.md).
//
// Per-prefix state is sharded exactly like the RIBs: on_change(shard, ...)
// may only be called by the thread owning that shard (the Router calls it
// from run_decision, which already runs under shard ownership), so the maps
// need no locks. verdict()/sweep()/top() are serial-phase.
//
// on_change is deliberately dumb — it appends (key, timestamp) to a
// per-shard pending vector and nothing else, keeping the hot path free of
// hash-map node allocation and the decay exponential. The pending changes
// are folded into the per-prefix state lazily, either by the owning shard
// itself once a shard's backlog hits kDrainBatch (so memory stays bounded
// during long parallel phases) or by the serial-phase queries, which all
// drain first. Either way the fold runs under the same ownership the map
// always required, and changes apply in call order per shard — identical
// state to folding eagerly.
//
// Keys are (prefix_addr << 8) | prefix_len so obs stays free of util/bgp
// dependencies; the Router packs them via flap_key().
//
// Penalty model (RFC 2439 shape, fixed figures): every best-path change adds
// penalty_per_change; the accumulated penalty halves every half_life_ns.
// A prefix whose decayed penalty is at or above suppress_threshold is
// "suppressed" (we only report it — this reproduction does not dampen the
// route itself). Convergence is measured per burst: a run of changes closer
// together than quiet_ns is one burst, and once a burst has been stable for
// quiet_ns, sweep() reports its duration (last change minus burst start) as
// one convergence sample.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace xb::obs {

struct FlapOptions {
  std::uint64_t penalty_per_change = 1000;
  std::uint64_t suppress_threshold = 3000;
  std::uint64_t half_life_ns = 15'000'000'000;  // 15 s of (virtual) time
  std::uint64_t quiet_ns = 2'000'000'000;       // stable this long = converged
};

struct FlapVerdict {
  bool quiescent = true;
  std::size_t tracked_prefixes = 0;
  std::size_t active_prefixes = 0;      // changed within the quiet window
  std::size_t suppressed_prefixes = 0;  // decayed penalty >= threshold
  std::uint64_t total_changes = 0;
  std::uint64_t max_penalty = 0;  // largest decayed penalty right now
};

struct FlapEntry {
  std::uint64_t key = 0;  // (prefix_addr << 8) | prefix_len
  std::uint64_t changes = 0;
  std::uint64_t penalty = 0;  // decayed to the query time
  std::uint64_t last_change_ns = 0;
};

inline constexpr std::uint64_t flap_key(std::uint32_t prefix_addr,
                                        std::uint8_t prefix_len) noexcept {
  return (static_cast<std::uint64_t>(prefix_addr) << 8) | prefix_len;
}

class FlapDetector {
 public:
  FlapDetector(const FlapOptions& opt, std::size_t shards);

  // Hot path, shard-owned: one best-path change for `key` at `now`.
  // Amortized O(1), no per-change node allocation (see header comment).
  void on_change(std::size_t shard, std::uint64_t key,
                 std::uint64_t now_ns) {
    auto& pending = pending_[shard % pending_.size()];
    pending.push_back(PendingChange{key, now_ns});
    if (pending.size() >= kDrainBatch) drain_shard(shard % pending_.size());
  }

  // Serial phase: the oracle's answer. Quiescent means no prefix changed
  // within the quiet window AND no decayed penalty is at the suppression
  // threshold.
  [[nodiscard]] FlapVerdict verdict(std::uint64_t now_ns) const;

  // Serial phase: closes every burst that has been stable for quiet_ns and
  // reports its duration (0 for a single isolated change) through
  // `observe`; each burst is reported once.
  void sweep(std::uint64_t now_ns,
             const std::function<void(std::uint64_t burst_ns)>& observe);

  // Serial phase: the n worst offenders by decayed penalty (then changes).
  [[nodiscard]] std::vector<FlapEntry> top(std::size_t n,
                                           std::uint64_t now_ns) const;

  [[nodiscard]] std::uint64_t total_changes() const;

  void clear();

 private:
  struct PrefixFlapState {
    std::uint64_t penalty = 0;
    std::uint64_t changes = 0;
    std::uint64_t last_change_ns = 0;
    std::uint64_t burst_start_ns = 0;
    bool burst_open = false;
  };

  struct PendingChange {
    std::uint64_t key = 0;
    std::uint64_t now_ns = 0;
  };

  // Backlog bound per shard before the owning thread folds inline.
  static constexpr std::size_t kDrainBatch = 1u << 16;

  [[nodiscard]] std::uint64_t decayed(const PrefixFlapState& s,
                                      std::uint64_t now_ns) const noexcept;

  // Folds one shard's pending changes into its map. Caller must hold the
  // shard (hot path) or be in the serial phase (drain()).
  void drain_shard(std::size_t shard) const;
  // Serial phase only: folds every shard's backlog.
  void drain() const;

  FlapOptions opt_;
  // mutable: the serial-phase queries (verdict/top/total_changes) stay
  // const for callers but fold the pending backlog before answering.
  mutable std::vector<std::unordered_map<std::uint64_t, PrefixFlapState>>
      shards_;
  mutable std::vector<std::vector<PendingChange>> pending_;
};

}  // namespace xb::obs
