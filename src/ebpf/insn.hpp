// The 8-byte eBPF instruction word.
#pragma once

#include <cstdint>
#include <vector>

#include "ebpf/opcodes.hpp"

namespace xb::ebpf {

/// One eBPF instruction slot. `lddw` (64-bit immediate load) occupies two
/// consecutive slots; the second carries the high 32 bits in `imm`.
struct Insn {
  std::uint8_t opcode = 0;
  std::uint8_t dst = 0;   // destination register (low nibble on the wire)
  std::uint8_t src = 0;   // source register (high nibble on the wire)
  std::int16_t offset = 0;
  std::int32_t imm = 0;

  [[nodiscard]] constexpr std::uint8_t cls() const noexcept { return opcode & 0x07; }

  friend constexpr bool operator==(const Insn&, const Insn&) = default;
};

/// Serialises instructions to the 8-byte-per-slot eBPF object format
/// (little-endian fields, as produced by clang -target bpf). Used to prove
/// that the very same program image is loaded by both host implementations.
std::vector<std::uint8_t> serialize(const std::vector<Insn>& insns);

/// Parses the 8-byte-per-slot format back. Throws std::invalid_argument if
/// the byte count is not a multiple of 8 or a register nibble is invalid.
std::vector<Insn> deserialize(const std::vector<std::uint8_t>& bytes);

}  // namespace xb::ebpf
