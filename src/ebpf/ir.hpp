// Pre-decoded IR for the tiered execution engine (tier 1).
//
// The translator lowers verified eBPF bytecode into this form once, at load
// time; the direct-threaded interpreter in vm_fast.cpp then executes it with
// none of the per-step decode work the reference interpreter (tier 0) pays:
//
//   * opcodes are split into dense per-form ops (imm vs reg operand, 32- vs
//     64-bit width), so the hot loop does one table-indexed dispatch instead
//     of class/op/src bit tests,
//   * immediates arrive pre-sign-extended (and shift amounts pre-masked),
//   * `lddw` pairs are fused into a single instruction carrying the full
//     64-bit immediate,
//   * jump targets are resolved to IR indices,
//   * byte swaps are resolved against the host endianness at translation
//     time (a `to_le` on a little-endian host becomes a plain mask or a
//     budget-only no-op),
//   * loads and stores the abstract interpreter proved in-bounds — stack
//     accesses inside the 512-byte frame, and accesses through non-null
//     helper-returned objects within their contract-guaranteed extent — use
//     `*Stk` forms that skip the MemoryModel bounds check entirely; the
//     remaining accesses carry a precomputed (offset, width, write) triple
//     so the runtime check is a single region probe.
//
// Execution semantics (result values, fault kinds, fault pcs, helper-call
// sequences, instruction budget accounting) are bit-identical to tier 0 —
// the differential fuzz gate in tests/ebpf_differential_test.cpp holds the
// two engines to that contract.
#pragma once

#include <cstdint>
#include <vector>

namespace xb::ebpf {

// Every IR opcode. The list order defines the dispatch-table index: the
// enum below and the computed-goto label table in vm_fast.cpp are both
// generated from this macro, so they cannot drift apart.
//
// Grouped load/store ops must stay in B, H, W, Dw order (the translator
// selects them by log2 of the access width), with the check-elided `Stk`
// block mirroring the checked block.
#define XB_IR_OP_LIST(X)                                                     \
  /* control */                                                              \
  X(kNop) X(kExit) X(kCall) X(kJa) X(kTrapEnd) X(kLddw)                      \
  /* 64-bit ALU (imm pre-sign-extended, shift amounts pre-masked) */         \
  X(kAdd64Imm) X(kAdd64Reg) X(kSub64Imm) X(kSub64Reg)                        \
  X(kMul64Imm) X(kMul64Reg) X(kDiv64Imm) X(kDiv64Reg)                        \
  X(kMod64Imm) X(kMod64Reg) X(kOr64Imm) X(kOr64Reg)                          \
  X(kAnd64Imm) X(kAnd64Reg) X(kXor64Imm) X(kXor64Reg)                        \
  X(kLsh64Imm) X(kLsh64Reg) X(kRsh64Imm) X(kRsh64Reg)                        \
  X(kArsh64Imm) X(kArsh64Reg) X(kMov64Imm) X(kMov64Reg) X(kNeg64)            \
  /* 32-bit ALU (results zero-extended to 64 bits) */                        \
  X(kAdd32Imm) X(kAdd32Reg) X(kSub32Imm) X(kSub32Reg)                        \
  X(kMul32Imm) X(kMul32Reg) X(kDiv32Imm) X(kDiv32Reg)                        \
  X(kMod32Imm) X(kMod32Reg) X(kOr32Imm) X(kOr32Reg)                          \
  X(kAnd32Imm) X(kAnd32Reg) X(kXor32Imm) X(kXor32Reg)                        \
  X(kLsh32Imm) X(kLsh32Reg) X(kRsh32Imm) X(kRsh32Reg)                        \
  X(kArsh32Imm) X(kArsh32Reg) X(kMov32Imm) X(kMov32Reg) X(kNeg32)            \
  /* byte swaps, host endianness resolved at translation time */             \
  X(kBswap16) X(kBswap32) X(kBswap64) X(kZext16) X(kZext32)                  \
  /* loads: checked, then analyzer-proven (bounds check elided) */           \
  X(kLdxB) X(kLdxH) X(kLdxW) X(kLdxDw)                                       \
  X(kLdxBStk) X(kLdxHStk) X(kLdxWStk) X(kLdxDwStk)                           \
  /* register stores */                                                      \
  X(kStxB) X(kStxH) X(kStxW) X(kStxDw)                                       \
  X(kStxBStk) X(kStxHStk) X(kStxWStk) X(kStxDwStk)                           \
  /* immediate stores (value pre-sign-extended into imm) */                  \
  X(kStB) X(kStH) X(kStW) X(kStDw)                                           \
  X(kStBStk) X(kStHStk) X(kStWStk) X(kStDwStk)                               \
  /* 64-bit conditional jumps */                                             \
  X(kJeq64Imm) X(kJeq64Reg) X(kJne64Imm) X(kJne64Reg)                        \
  X(kJgt64Imm) X(kJgt64Reg) X(kJge64Imm) X(kJge64Reg)                        \
  X(kJlt64Imm) X(kJlt64Reg) X(kJle64Imm) X(kJle64Reg)                        \
  X(kJset64Imm) X(kJset64Reg)                                                \
  X(kJsgt64Imm) X(kJsgt64Reg) X(kJsge64Imm) X(kJsge64Reg)                    \
  X(kJslt64Imm) X(kJslt64Reg) X(kJsle64Imm) X(kJsle64Reg)                    \
  /* 32-bit conditional jumps (operands truncated to u32) */                 \
  X(kJeq32Imm) X(kJeq32Reg) X(kJne32Imm) X(kJne32Reg)                        \
  X(kJgt32Imm) X(kJgt32Reg) X(kJge32Imm) X(kJge32Reg)                        \
  X(kJlt32Imm) X(kJlt32Reg) X(kJle32Imm) X(kJle32Reg)                        \
  X(kJset32Imm) X(kJset32Reg)                                                \
  X(kJsgt32Imm) X(kJsgt32Reg) X(kJsge32Imm) X(kJsge32Reg)                    \
  X(kJslt32Imm) X(kJslt32Reg) X(kJsle32Imm) X(kJsle32Reg)

enum class IrOp : std::uint8_t {
#define XB_IR_OP_ENUM(name) name,
  XB_IR_OP_LIST(XB_IR_OP_ENUM)
#undef XB_IR_OP_ENUM
};

inline constexpr std::size_t kIrOpCount = 0
#define XB_IR_OP_COUNT(name) +1
    XB_IR_OP_LIST(XB_IR_OP_COUNT)
#undef XB_IR_OP_COUNT
    ;

/// One pre-decoded instruction (24 bytes). Field use by op family:
///   * loads/stores: `off` is the sign-extended memory offset; immediate
///     stores carry the pre-extended value in `imm`,
///   * jumps: `jt` is the taken-branch target as an IR index; `imm` holds
///     the pre-extended (64-bit) or pre-truncated (32-bit) comparison
///     operand,
///   * kCall: `imm` is the helper id,
///   * kLddw: `imm` is the fused 64-bit immediate.
/// `pc` is always the source bytecode index, used for fault reporting and
/// budget accounting parity with tier 0.
struct IrInsn {
  IrOp op = IrOp::kTrapEnd;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  std::uint8_t unused = 0;
  std::int32_t off = 0;
  std::int32_t jt = 0;
  std::int32_t pc = 0;
  std::uint64_t imm = 0;
};

static_assert(sizeof(IrInsn) == 24, "IrInsn is sized for cache-friendly dispatch");

/// A translated program: immutable after Translator::translate, shared
/// read-only across all per-slot VMs running the same bytecode.
struct IrProgram {
  std::vector<IrInsn> insns;        // terminated by a kTrapEnd sentinel
  std::size_t source_len = 0;       // bytecode slots translated
  std::uint32_t elided_checks = 0;  // accesses proven in-bounds (Stk forms)
  std::uint32_t elided_obj_checks = 0;  // subset through helper-returned objects
  std::uint32_t checked_accesses = 0;   // accesses still runtime-checked

  [[nodiscard]] bool empty() const noexcept { return insns.empty(); }
};

}  // namespace xb::ebpf
