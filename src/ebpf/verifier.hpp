// Static verification of eBPF programs before they may be attached.
//
// The verifier enforces the structural safety properties the VMM depends on:
// no unknown opcodes, no jumps outside the program or into the second slot of
// a `lddw`, no fall-through off the end, no writes to the frame pointer, no
// statically-zero divisors, and no helper calls outside the set declared in
// the program's manifest entry. Dynamic properties (memory bounds, runtime
// divide-by-zero, instruction budget) are enforced by the interpreter and
// reported to the VMM as faults.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "ebpf/program.hpp"

namespace xb::ebpf {

struct VerifyError {
  std::size_t insn_index = 0;
  std::string reason;
};

class Verifier {
 public:
  /// Maximum accepted program length (matches the kernel's classic limit).
  static constexpr std::size_t kMaxInsns = 4096;

  /// Returns std::nullopt if the program is acceptable, else the first error.
  /// `allowed_helpers` is the manifest-declared whitelist; every `call` must
  /// target a member.
  [[nodiscard]] static std::optional<VerifyError> verify(
      const Program& program, const std::set<std::int32_t>& allowed_helpers);
};

}  // namespace xb::ebpf
