#include "ebpf/cfg.hpp"

#include <algorithm>
#include <map>

#include "ebpf/opcodes.hpp"

namespace xb::ebpf {

namespace {

bool is_jump_class(const Insn& insn) {
  const std::uint8_t cls = insn.cls();
  return cls == kClsJmp || cls == kClsJmp32;
}

/// True when the instruction transfers control (ends a basic block).
bool is_terminator(const Insn& insn) {
  if (!is_jump_class(insn)) return false;
  const std::uint8_t op = insn.opcode & 0xf0;
  return op != kJmpCall;  // calls fall through to the next instruction
}

bool is_exit(const Insn& insn) {
  return insn.cls() == kClsJmp && (insn.opcode & 0xf0) == kJmpExit;
}

bool is_unconditional(const Insn& insn) {
  return insn.cls() == kClsJmp && (insn.opcode & 0xf0) == kJmpJa;
}

}  // namespace

bool NaturalLoop::contains(std::size_t block) const {
  return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::string Cfg::label(std::size_t block) { return "L" + std::to_string(block); }

Cfg Cfg::build(const Program& program) {
  Cfg cfg;
  const auto& insns = program.insns();
  const std::size_t n = insns.size();

  cfg.lddw_tail_.assign(n, false);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!cfg.lddw_tail_[i] && insns[i].opcode == kOpLddw) cfg.lddw_tail_[i + 1] = true;
  }

  // Leaders: instruction 0, every jump target, and every instruction after a
  // terminator.  The verifier guarantees targets never hit an lddw tail.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (cfg.lddw_tail_[i]) continue;
    const Insn& insn = insns[i];
    if (is_terminator(insn)) {
      if (!is_exit(insn)) {
        const auto target = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(i) + 1 + insn.offset);
        leader[target] = true;
      }
      if (i + 1 < n) leader[i + 1] = true;
    }
  }

  // Carve blocks between leaders; an lddw tail never starts a block.
  cfg.block_of_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i] && !cfg.lddw_tail_[i]) {
      BasicBlock bb;
      bb.first = i;
      cfg.blocks_.push_back(bb);
    }
    cfg.block_of_[i] = cfg.blocks_.size() - 1;
    cfg.blocks_.back().last = i;
  }

  // Edges from each block's final instruction.
  for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& bb = cfg.blocks_[b];
    const Insn& term = insns[bb.last];
    auto add_edge = [&](std::size_t to) {
      bb.succs.push_back(to);
      cfg.blocks_[to].preds.push_back(b);
    };
    if (cfg.lddw_tail_[bb.last] || !is_terminator(term)) {
      // Block ends because the next instruction is a jump target.
      if (bb.last + 1 < n) add_edge(cfg.block_of_[bb.last + 1]);
      continue;
    }
    if (is_exit(term)) continue;
    const auto target = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(bb.last) + 1 + term.offset);
    add_edge(cfg.block_of_[target]);
    if (!is_unconditional(term) && bb.last + 1 < n) add_edge(cfg.block_of_[bb.last + 1]);
  }

  cfg.compute_reachability();
  cfg.compute_dominators();
  cfg.classify_edges();
  cfg.build_loops();
  return cfg;
}

void Cfg::compute_reachability() {
  reachable_.assign(blocks_.size(), false);
  std::vector<std::size_t> stack{0};
  reachable_[0] = true;
  while (!stack.empty()) {
    const std::size_t b = stack.back();
    stack.pop_back();
    for (std::size_t s : blocks_[b].succs) {
      if (!reachable_[s]) {
        reachable_[s] = true;
        stack.push_back(s);
      }
    }
  }
}

void Cfg::compute_dominators() {
  const std::size_t nb = blocks_.size();
  const std::size_t words = (nb + 63) / 64;

  // Reverse postorder over reachable blocks (iterative DFS with an explicit
  // "children done" marker).
  std::vector<std::size_t> postorder;
  postorder.reserve(nb);
  {
    std::vector<std::uint8_t> state(nb, 0);  // 0=unseen 1=open 2=closed
    std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
    state[0] = 1;
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      if (next < blocks_[b].succs.size()) {
        const std::size_t s = blocks_[b].succs[next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[b] = 2;
        postorder.push_back(b);
        stack.pop_back();
      }
    }
  }
  std::vector<std::size_t> rpo(postorder.rbegin(), postorder.rend());
  rpo_index_.assign(nb, nb);  // nb == "unreachable"
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index_[rpo[i]] = i;

  // Iterative bit-set dataflow: dom(entry) = {entry};
  // dom(b) = {b} ∪ ⋂ dom(reachable preds).
  dom_.assign(nb, std::vector<std::uint64_t>(words, ~0ull));
  dom_[0].assign(words, 0);
  dom_[0][0] = 1;
  bool changed = true;
  std::vector<std::uint64_t> tmp(words);
  while (changed) {
    changed = false;
    for (std::size_t b : rpo) {
      if (b == 0) continue;
      std::fill(tmp.begin(), tmp.end(), ~0ull);
      for (std::size_t p : blocks_[b].preds) {
        if (!reachable_[p]) continue;
        for (std::size_t w = 0; w < words; ++w) tmp[w] &= dom_[p][w];
      }
      tmp[b / 64] |= (1ull << (b % 64));
      if (tmp != dom_[b]) {
        dom_[b] = tmp;
        changed = true;
      }
    }
  }
}

bool Cfg::dominates(std::size_t a, std::size_t b) const {
  return (dom_[b][a / 64] >> (a % 64)) & 1;
}

void Cfg::classify_edges() {
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (!reachable_[b]) continue;
    for (std::size_t s : blocks_[b].succs) {
      if (dominates(s, b)) {
        back_edges_.push_back({b, s});
      } else if (rpo_index_[s] <= rpo_index_[b]) {
        // Retreating but not dominated: a cycle entered from more than one
        // place.  The loop analyzer cannot reason about these.
        irreducible_edges_.push_back({b, s});
      }
    }
  }
}

void Cfg::build_loops() {
  std::map<std::size_t, NaturalLoop> by_header;
  for (const CfgEdge& e : back_edges_) {
    NaturalLoop& loop = by_header[e.to];
    loop.header = e.to;
    loop.back_edge_sources.push_back(e.from);
    // Natural loop body: header plus everything that reaches the back-edge
    // source without passing through the header.
    std::vector<bool> in(blocks_.size(), false);
    in[e.to] = true;
    std::vector<std::size_t> stack;
    if (!in[e.from]) {
      in[e.from] = true;
      stack.push_back(e.from);
    }
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      for (std::size_t p : blocks_[b].preds) {
        if (!reachable_[p] || in[p]) continue;
        in[p] = true;
        stack.push_back(p);
      }
    }
    for (std::size_t b = 0; b < in.size(); ++b) {
      if (in[b]) loop.blocks.push_back(b);
    }
  }
  for (auto& [header, loop] : by_header) {
    std::sort(loop.blocks.begin(), loop.blocks.end());
    loop.blocks.erase(std::unique(loop.blocks.begin(), loop.blocks.end()), loop.blocks.end());
    std::sort(loop.back_edge_sources.begin(), loop.back_edge_sources.end());
    loop.back_edge_sources.erase(
        std::unique(loop.back_edge_sources.begin(), loop.back_edge_sources.end()),
        loop.back_edge_sources.end());
    loops_.push_back(std::move(loop));
  }
}

}  // namespace xb::ebpf
