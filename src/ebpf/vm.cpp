#include "ebpf/vm.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "ebpf/opcodes.hpp"

namespace xb::ebpf {

namespace {

std::uint64_t bswap(std::uint64_t v, std::int32_t bits) {
  switch (bits) {
    case 16: {
      auto x = static_cast<std::uint16_t>(v);
      return static_cast<std::uint16_t>((x << 8) | (x >> 8));
    }
    case 32: {
      auto x = static_cast<std::uint32_t>(v);
      return ((x & 0x000000FFu) << 24) | ((x & 0x0000FF00u) << 8) | ((x & 0x00FF0000u) >> 8) |
             ((x & 0xFF000000u) >> 24);
    }
    default: {
      std::uint64_t x = v;
      x = ((x & 0x00000000FFFFFFFFull) << 32) | ((x & 0xFFFFFFFF00000000ull) >> 32);
      x = ((x & 0x0000FFFF0000FFFFull) << 16) | ((x & 0xFFFF0000FFFF0000ull) >> 16);
      x = ((x & 0x00FF00FF00FF00FFull) << 8) | ((x & 0xFF00FF00FF00FF00ull) >> 8);
      return x;
    }
  }
}

constexpr bool kHostIsLittleEndian = std::endian::native == std::endian::little;

}  // namespace

Vm::Vm() : helpers_(kHelperTableSize) {
  // The stack is part of the permanent base region set; per-invocation
  // arenas are layered on top by the VMM and dropped via reset_to_base().
  memory_.add_region(stack_, kStackSize, /*writable=*/true, "stack");
  memory_.mark_base();
}

void Vm::set_helper(std::int32_t id, HelperFn fn) {
  if (id < 0 || static_cast<std::size_t>(id) >= kHelperTableSize) {
    throw std::out_of_range("helper id out of table range");
  }
  helpers_[static_cast<std::size_t>(id)] = std::move(fn);
}

bool Vm::has_helper(std::int32_t id) const noexcept {
  return id >= 0 && static_cast<std::size_t>(id) < kHelperTableSize &&
         static_cast<bool>(helpers_[static_cast<std::size_t>(id)]);
}

void Vm::zero_stack() noexcept { std::memset(stack_, 0, kStackSize); }

RunResult Vm::run(const Program& program, std::uint64_t r1, std::uint64_t r2, std::uint64_t r3,
                  std::uint64_t r4, std::uint64_t r5) {
  switch (effective_mode()) {
    case ExecMode::kJit:
      return run_jit(*jit_, r1, r2, r3, r4, r5);
    case ExecMode::kFast:
      return run_translated(*translated_, r1, r2, r3, r4, r5);
    default:
      return run_reference(program, r1, r2, r3, r4, r5);
  }
}

RunResult Vm::run_reference(const Program& program, std::uint64_t r1, std::uint64_t r2,
                            std::uint64_t r3, std::uint64_t r4, std::uint64_t r5) {
  const std::vector<Insn>& insns = program.insns();
  const std::size_t n = insns.size();

  std::uint64_t reg[kNumRegisters] = {};
  reg[1] = r1;
  reg[2] = r2;
  reg[3] = r3;
  reg[4] = r4;
  reg[5] = r5;

  // The stack is zeroed once at Vm construction, not per run: it is private
  // to this VM (one VM per attached program), so stale bytes can only reach
  // later invocations of the same program — the same policy ubpf applies.
  reg[kFramePointer] = reinterpret_cast<std::uint64_t>(stack_) + kStackSize;

  std::uint64_t remaining = budget_;
  std::size_t pc = 0;
  std::size_t cur = 0;

  // Faults carry static literals and the index of the faulting instruction
  // (budget exhaustion: the one about to execute) — the fault path must not
  // allocate, and both tiers report identical (kind, pc, detail) triples.
  auto fault = [&](FaultKind kind, const char* detail) {
    retired_ += budget_ - remaining;
    RunResult r;
    r.status = RunResult::Status::kFault;
    r.fault = Fault{kind, cur, detail};
    return r;
  };

  while (pc < n) {
    if (remaining == 0) {
      cur = pc;
      return fault(FaultKind::kBudgetExhausted, "instruction budget exhausted");
    }
    --remaining;
    const Insn& insn = insns[pc];
    const std::uint8_t op = insn.opcode;
    cur = pc;
    ++pc;

    switch (op & 0x07) {
      case kClsAlu64:
      case kClsAlu: {
        const bool is64 = (op & 0x07) == kClsAlu64;
        const std::uint64_t src_val =
            (op & kSrcX) ? reg[insn.src] : static_cast<std::uint64_t>(
                                               static_cast<std::int64_t>(insn.imm));
        std::uint64_t& dst = reg[insn.dst];
        const std::uint8_t aluop = op & 0xf0;
        std::uint64_t result;
        switch (aluop) {
          case kAluAdd: result = dst + src_val; break;
          case kAluSub: result = dst - src_val; break;
          case kAluMul:
            result = is64 ? dst * src_val
                          : static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst) *
                                                       static_cast<std::uint32_t>(src_val));
            break;
          case kAluDiv: {
            const std::uint64_t divisor =
                is64 ? src_val : static_cast<std::uint32_t>(src_val);
            if (divisor == 0) return fault(FaultKind::kDivisionByZero, "division by zero");
            result = is64 ? dst / divisor : static_cast<std::uint32_t>(dst) / divisor;
            break;
          }
          case kAluMod: {
            const std::uint64_t divisor =
                is64 ? src_val : static_cast<std::uint32_t>(src_val);
            if (divisor == 0) return fault(FaultKind::kDivisionByZero, "modulo by zero");
            result = is64 ? dst % divisor : static_cast<std::uint32_t>(dst) % divisor;
            break;
          }
          case kAluOr: result = dst | src_val; break;
          case kAluAnd: result = dst & src_val; break;
          case kAluXor: result = dst ^ src_val; break;
          case kAluLsh: result = is64 ? dst << (src_val & 63)
                                      : static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)
                                                                   << (src_val & 31));
            break;
          case kAluRsh: result = is64 ? dst >> (src_val & 63)
                                      : static_cast<std::uint32_t>(dst) >> (src_val & 31);
            break;
          case kAluArsh:
            result = is64 ? static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                                       (src_val & 63))
                          : static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)) >>
                                (src_val & 31)));
            break;
          case kAluNeg:
            result = is64 ? ~dst + 1
                          : static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(~static_cast<std::uint32_t>(dst) + 1));
            break;
          case kAluMov: result = src_val; break;
          case kAluEnd: {
            // kSrcX = to big-endian, kSrcK = to little-endian.
            const bool to_be = (op & kSrcX) != 0;
            const bool need_swap = kHostIsLittleEndian == to_be;
            std::uint64_t v = dst;
            if (insn.imm == 16) v &= 0xFFFFull;
            else if (insn.imm == 32) v &= 0xFFFFFFFFull;
            result = need_swap ? bswap(v, insn.imm) : v;
            break;
          }
          default:
            return fault(FaultKind::kIllegalInstruction, "bad ALU op");
        }
        dst = is64 || aluop == kAluEnd ? result
                                       : static_cast<std::uint64_t>(
                                             static_cast<std::uint32_t>(result));
        break;
      }

      case kClsLd: {
        // lddw: verified to be well-formed (two slots).
        if (op != kOpLddw) return fault(FaultKind::kIllegalInstruction, "bad LD opcode");
        const std::uint64_t lo = static_cast<std::uint32_t>(insn.imm);
        const std::uint64_t hi = static_cast<std::uint32_t>(insns[pc].imm);
        reg[insn.dst] = lo | (hi << 32);
        ++pc;
        break;
      }

      case kClsLdx: {
        const std::size_t len = std::size_t{1}
                                << ((op & 0x18) == kSizeDw  ? 3
                                    : (op & 0x18) == kSizeW ? 2
                                    : (op & 0x18) == kSizeH ? 1
                                                            : 0);
        const std::uint64_t addr = reg[insn.src] + static_cast<std::int64_t>(insn.offset);
        if (!memory_.check(addr, len, /*write=*/false)) {
          return fault(FaultKind::kBadMemoryAccess, "memory read out of bounds");
        }
        std::uint64_t v = 0;
        std::memcpy(&v, reinterpret_cast<const void*>(addr), len);
        reg[insn.dst] = v;
        break;
      }

      case kClsSt:
      case kClsStx: {
        const std::size_t len = std::size_t{1}
                                << ((op & 0x18) == kSizeDw  ? 3
                                    : (op & 0x18) == kSizeW ? 2
                                    : (op & 0x18) == kSizeH ? 1
                                                            : 0);
        const std::uint64_t addr = reg[insn.dst] + static_cast<std::int64_t>(insn.offset);
        if (!memory_.check(addr, len, /*write=*/true)) {
          return fault(FaultKind::kBadMemoryAccess, "memory write out of bounds");
        }
        const std::uint64_t v = (op & 0x07) == kClsStx
                                    ? reg[insn.src]
                                    : static_cast<std::uint64_t>(
                                          static_cast<std::int64_t>(insn.imm));
        std::memcpy(reinterpret_cast<void*>(addr), &v, len);
        break;
      }

      case kClsJmp: {
        const std::uint8_t jop = op & 0xf0;
        if (jop == kJmpExit) {
          retired_ += budget_ - remaining;
          RunResult r;
          r.status = RunResult::Status::kOk;
          r.value = reg[0];
          return r;
        }
        if (jop == kJmpCall) {
          const auto id = insn.imm;
          if (id < 0 || static_cast<std::size_t>(id) >= helpers_.size() ||
              !helpers_[static_cast<std::size_t>(id)]) {
            return fault(FaultKind::kUnknownHelper, "helper not bound");
          }
          ++helper_calls_;
          HelperResult hr =
              helpers_[static_cast<std::size_t>(id)](reg[1], reg[2], reg[3], reg[4], reg[5]);
          switch (hr.action) {
            case HelperAction::kContinue:
              reg[0] = hr.value;
              // r1-r5 are clobbered by calls per the eBPF ABI.
              reg[1] = reg[2] = reg[3] = reg[4] = reg[5] = 0;
              break;
            case HelperAction::kNext: {
              retired_ += budget_ - remaining;
              RunResult r;
              r.status = RunResult::Status::kNext;
              return r;
            }
            case HelperAction::kFault:
              return fault(FaultKind::kHelperError, hr.error);
          }
          break;
        }
        const std::uint64_t a = reg[insn.dst];
        const std::uint64_t b = (op & kSrcX) ? reg[insn.src]
                                             : static_cast<std::uint64_t>(
                                                   static_cast<std::int64_t>(insn.imm));
        const auto sa = static_cast<std::int64_t>(a);
        const auto sb = static_cast<std::int64_t>(b);
        bool taken;
        switch (jop) {
          case kJmpJa: taken = true; break;
          case kJmpJeq: taken = a == b; break;
          case kJmpJne: taken = a != b; break;
          case kJmpJgt: taken = a > b; break;
          case kJmpJge: taken = a >= b; break;
          case kJmpJlt: taken = a < b; break;
          case kJmpJle: taken = a <= b; break;
          case kJmpJset: taken = (a & b) != 0; break;
          case kJmpJsgt: taken = sa > sb; break;
          case kJmpJsge: taken = sa >= sb; break;
          case kJmpJslt: taken = sa < sb; break;
          case kJmpJsle: taken = sa <= sb; break;
          default:
            return fault(FaultKind::kIllegalInstruction, "bad JMP op");
        }
        if (taken) pc = cur + 1 + insn.offset;
        break;
      }

      case kClsJmp32: {
        const std::uint8_t jop = op & 0xf0;
        const auto a = static_cast<std::uint32_t>(reg[insn.dst]);
        const auto b = (op & kSrcX)
                           ? static_cast<std::uint32_t>(reg[insn.src])
                           : static_cast<std::uint32_t>(insn.imm);
        const auto sa = static_cast<std::int32_t>(a);
        const auto sb = static_cast<std::int32_t>(b);
        bool taken;
        switch (jop) {
          case kJmpJa: taken = true; break;
          case kJmpJeq: taken = a == b; break;
          case kJmpJne: taken = a != b; break;
          case kJmpJgt: taken = a > b; break;
          case kJmpJge: taken = a >= b; break;
          case kJmpJlt: taken = a < b; break;
          case kJmpJle: taken = a <= b; break;
          case kJmpJset: taken = (a & b) != 0; break;
          case kJmpJsgt: taken = sa > sb; break;
          case kJmpJsge: taken = sa >= sb; break;
          case kJmpJslt: taken = sa < sb; break;
          case kJmpJsle: taken = sa <= sb; break;
          default:
            return fault(FaultKind::kIllegalInstruction, "bad JMP32 op");
        }
        if (taken) pc = cur + 1 + insn.offset;
        break;
      }

      default:
        return fault(FaultKind::kIllegalInstruction, "unknown instruction class");
    }
  }

  // Unreachable for verified programs (no fall-through off the end).
  cur = pc;
  return fault(FaultKind::kIllegalInstruction, "fell off the end of the program");
}

}  // namespace xb::ebpf
