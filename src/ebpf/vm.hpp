// The eBPF interpreter.
//
// One Vm executes one Program per invocation under an instruction budget,
// with all memory accesses bounds-checked via MemoryModel and helper calls
// dispatched through a per-VM table. Execution never touches host memory
// that was not explicitly registered, and any violation terminates the run
// with a Fault that the VMM uses to fall back to native code (paper §2.1).
//
// Three execution tiers share this class (docs/execution_engine.md):
//   tier 0  the reference interpreter — decodes each instruction on every
//           step; the semantic ground truth,
//   tier 1  the fast engine (vm_fast.cpp) — runs pre-decoded IR produced by
//           Translator with direct-threaded dispatch and verifier-proven
//           bounds-check elision,
//   tier 2  the x86-64 JIT (jit.cpp) — runs native code compiled from the
//           same IR, deopting to tier 1 for the budget tail.
// All produce bit-identical RunResults; the differential fuzz gate holds
// them to it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ebpf/memory.hpp"
#include "ebpf/program.hpp"

namespace xb::ebpf {

struct IrProgram;
class JitProgram;

enum class FaultKind {
  kNone,
  kBadMemoryAccess,
  kDivisionByZero,
  kUnknownHelper,
  kHelperError,
  kBudgetExhausted,
  kIllegalInstruction,
};

/// Which tier executes Vm::run.
enum class ExecMode : std::uint8_t {
  kReference = 0,  // tier 0: decode-per-step reference interpreter
  kFast = 1,       // tier 1: pre-decoded IR, direct-threaded dispatch
  kJit = 2,        // tier 2: native x86-64 code compiled from the IR
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  /// Index of the faulting instruction; for budget exhaustion, the
  /// instruction that was about to execute.
  std::size_t pc = 0;
  /// Static literal — faults are on the hot path and must not allocate.
  /// Feeds FaultInfo::detail (a string_view) unchanged.
  const char* detail = "";
};

/// What a helper asks the interpreter to do after it returns.
enum class HelperAction {
  kContinue,  // normal return; value goes to r0
  kNext,      // terminate this program: VMM should run the next one in chain
  kFault,     // terminate with kHelperError; VMM falls back to native code
};

struct HelperResult {
  std::uint64_t value = 0;
  HelperAction action = HelperAction::kContinue;
  /// Static diagnostic for kFault (kept as a literal: helper results are
  /// constructed on the interpreter's hot path).
  const char* error = "";

  static HelperResult ok(std::uint64_t v = 0) {
    return HelperResult{v, HelperAction::kContinue, ""};
  }
  static HelperResult next() { return HelperResult{0, HelperAction::kNext, ""}; }
  static HelperResult fail(const char* why) {
    return HelperResult{0, HelperAction::kFault, why};
  }
};

/// Host helper callable. Receives the five eBPF argument registers r1..r5.
using HelperFn = std::function<HelperResult(std::uint64_t, std::uint64_t, std::uint64_t,
                                            std::uint64_t, std::uint64_t)>;

/// Outcome of one program execution.
struct RunResult {
  enum class Status { kOk, kNext, kFault };
  Status status = Status::kOk;
  std::uint64_t value = 0;  // r0 at exit (kOk only)
  Fault fault;              // populated when status == kFault

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
  [[nodiscard]] bool yielded_next() const noexcept { return status == Status::kNext; }
  [[nodiscard]] bool faulted() const noexcept { return status == Status::kFault; }
};

class Vm {
 public:
  Vm();

  /// Registers a helper under a stable id (must fit the table; ids are small).
  void set_helper(std::int32_t id, HelperFn fn);
  [[nodiscard]] bool has_helper(std::int32_t id) const noexcept;

  /// Upper bound on executed instructions per run (runaway-loop guard).
  void set_instruction_budget(std::uint64_t budget) noexcept { budget_ = budget; }
  [[nodiscard]] std::uint64_t instruction_budget() const noexcept { return budget_; }

  /// Memory regions the program may touch, in addition to its own stack
  /// (which the Vm registers automatically for each run).
  MemoryModel& memory() noexcept { return memory_; }
  const MemoryModel& memory() const noexcept { return memory_; }

  /// Executes `program` with r1..r5 preloaded from `args`. Dispatches to
  /// the fast tier when it is selected and a translated image is attached;
  /// otherwise runs the reference interpreter.
  RunResult run(const Program& program, std::uint64_t r1 = 0, std::uint64_t r2 = 0,
                std::uint64_t r3 = 0, std::uint64_t r4 = 0, std::uint64_t r5 = 0);

  /// Selects the execution tier. kFast takes effect only once a translated
  /// image is attached via set_translated (effective_mode tells the truth).
  void set_exec_mode(ExecMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] ExecMode exec_mode() const noexcept { return mode_; }

  /// Attaches the pre-decoded image for the fast tier. The IrProgram must
  /// outlive this Vm (the Vmm owns it per manifest entry, shared read-only
  /// across all per-slot VMs). Pass nullptr to detach.
  void set_translated(const IrProgram* ir) noexcept { translated_ = ir; }
  [[nodiscard]] const IrProgram* translated() const noexcept { return translated_; }

  /// Attaches the native image for the JIT tier. Same lifetime contract as
  /// set_translated; the JitProgram carries its own IR pointer for deopt
  /// resume, so kJit does not require set_translated.
  void set_jit(const JitProgram* jit) noexcept { jit_ = jit; }
  [[nodiscard]] const JitProgram* jit() const noexcept { return jit_; }

  /// The tier run() will actually use right now: the selected tier if its
  /// image is attached, degrading kJit → kFast → kReference otherwise.
  [[nodiscard]] ExecMode effective_mode() const noexcept {
    if (mode_ == ExecMode::kJit && jit_ != nullptr) return ExecMode::kJit;
    if (mode_ != ExecMode::kReference && translated_ != nullptr) return ExecMode::kFast;
    return ExecMode::kReference;
  }

  /// Zeroes the stack frame. Runs deliberately do NOT do this (ubpf policy:
  /// the stack is private to one attached program); the differential
  /// harness calls it so back-to-back tier runs start from identical state.
  void zero_stack() noexcept;

  /// Cumulative count of instructions retired across runs (for benchmarks).
  [[nodiscard]] std::uint64_t instructions_retired() const noexcept { return retired_; }

  /// Cumulative count of helper invocations across runs (for telemetry
  /// spans; counts calls that reached a bound helper).
  [[nodiscard]] std::uint64_t helper_calls() const noexcept { return helper_calls_; }

 private:
  static constexpr std::size_t kHelperTableSize = 64;

  RunResult run_reference(const Program& program, std::uint64_t r1, std::uint64_t r2,
                          std::uint64_t r3, std::uint64_t r4, std::uint64_t r5);
  RunResult run_translated(const IrProgram& ir, std::uint64_t r1, std::uint64_t r2,
                           std::uint64_t r3, std::uint64_t r4, std::uint64_t r5);
  /// Tier-1 entry at an arbitrary instruction with live register/budget
  /// state — the JIT's deopt path (jit.cpp) resumes the interpreter here so
  /// the budget tail gets exact per-instruction accounting.
  RunResult run_translated_from(const IrProgram& ir, const std::uint64_t* entry_regs,
                                std::size_t start_index, std::uint64_t remaining_budget);
  /// Implemented in jit.cpp: enters the native image and folds its exit
  /// state back into a RunResult (or deopts into run_translated_from).
  RunResult run_jit(const JitProgram& jit, std::uint64_t r1, std::uint64_t r2,
                    std::uint64_t r3, std::uint64_t r4, std::uint64_t r5);

  MemoryModel memory_;
  std::vector<HelperFn> helpers_;
  std::uint64_t budget_ = 1'000'000;
  std::uint64_t retired_ = 0;
  std::uint64_t helper_calls_ = 0;
  const IrProgram* translated_ = nullptr;
  const JitProgram* jit_ = nullptr;
  ExecMode mode_ = ExecMode::kReference;
  alignas(8) std::uint8_t stack_[kStackSize] = {};
};

}  // namespace xb::ebpf
