// Control-flow graph over an eBPF instruction stream.
//
// The CFG is the substrate for every analysis pass beyond the structural
// verifier: it partitions a program into basic blocks, computes the edge
// relation and reachability from the entry block, derives dominators, and
// classifies back-edges (loops).  Natural loops that share a header are
// merged, matching the classic dragon-book treatment, so the analyzer can
// reason about one loop body per header regardless of how many `continue`
// paths the bytecode grew.
//
// Building a Cfg assumes the program already passed `Verifier::verify`
// (pass 0): every jump target is in range, no branch lands in the second
// slot of an `lddw`, and the final instruction terminates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ebpf/program.hpp"

namespace xb::ebpf {

/// Half-open instruction range [first, last] where `last` is the index of the
/// block's terminator (the final instruction of the block, inclusive).
struct BasicBlock {
  std::size_t first = 0;
  std::size_t last = 0;
  std::vector<std::size_t> succs;  // successor block indices
  std::vector<std::size_t> preds;  // predecessor block indices
};

struct CfgEdge {
  std::size_t from = 0;  // block index
  std::size_t to = 0;    // block index

  friend bool operator==(const CfgEdge&, const CfgEdge&) = default;
};

/// A merged natural loop: all back-edges targeting `header` contribute their
/// natural-loop bodies, unioned.
struct NaturalLoop {
  std::size_t header = 0;                      // block index
  std::vector<std::size_t> blocks;             // sorted, includes header
  std::vector<std::size_t> back_edge_sources;  // blocks with an edge to header

  [[nodiscard]] bool contains(std::size_t block) const;
};

class Cfg {
 public:
  /// Requires a structurally-verified program (see file comment).
  [[nodiscard]] static Cfg build(const Program& program);

  [[nodiscard]] const std::vector<BasicBlock>& blocks() const noexcept { return blocks_; }

  /// Block index containing instruction `insn` (lddw tails map to the block
  /// of their first slot).
  [[nodiscard]] std::size_t block_of(std::size_t insn) const { return block_of_[insn]; }

  /// True for the second slot of an `lddw`.
  [[nodiscard]] bool is_lddw_tail(std::size_t insn) const { return lddw_tail_[insn]; }

  /// True when `block` is reachable from the entry block.
  [[nodiscard]] bool reachable(std::size_t block) const { return reachable_[block]; }

  /// True when `a` dominates `b` (every path from entry to `b` passes through
  /// `a`).  Both must be reachable; a block dominates itself.
  [[nodiscard]] bool dominates(std::size_t a, std::size_t b) const;

  /// Edges u->h where h dominates u: each one closes a natural loop.
  [[nodiscard]] const std::vector<CfgEdge>& back_edges() const noexcept { return back_edges_; }

  /// Retreating edges whose target does NOT dominate the source: the loop has
  /// more than one entry (irreducible control flow).
  [[nodiscard]] const std::vector<CfgEdge>& irreducible_edges() const noexcept {
    return irreducible_edges_;
  }

  /// One entry per distinct loop header, back-edges merged.
  [[nodiscard]] const std::vector<NaturalLoop>& loops() const noexcept { return loops_; }

  /// Display label for a block, e.g. "L3".
  [[nodiscard]] static std::string label(std::size_t block);

 private:
  Cfg() = default;

  void compute_reachability();
  void compute_dominators();
  void classify_edges();
  void build_loops();

  std::vector<BasicBlock> blocks_;
  std::vector<std::size_t> block_of_;
  std::vector<bool> lddw_tail_;
  std::vector<bool> reachable_;
  // Dominator sets as bitsets: dom_[b] has bit a set iff a dominates b.
  std::vector<std::vector<std::uint64_t>> dom_;
  std::vector<std::size_t> rpo_index_;  // reverse-postorder position per block
  std::vector<CfgEdge> back_edges_;
  std::vector<CfgEdge> irreducible_edges_;
  std::vector<NaturalLoop> loops_;
};

}  // namespace xb::ebpf
