// eBPF instruction-set opcode constants.
//
// Encoding follows the classic eBPF ISA used by the Linux kernel and ubpf
// (the VM the paper embeds): an 8-bit opcode whose low 3 bits select the
// instruction class, with class-specific layout of the remaining bits.
#pragma once

#include <cstdint>

namespace xb::ebpf {

// --- Instruction classes (opcode & 0x07) ---------------------------------
inline constexpr std::uint8_t kClsLd = 0x00;    // non-standard load (lddw)
inline constexpr std::uint8_t kClsLdx = 0x01;   // load from memory into reg
inline constexpr std::uint8_t kClsSt = 0x02;    // store immediate to memory
inline constexpr std::uint8_t kClsStx = 0x03;   // store register to memory
inline constexpr std::uint8_t kClsAlu = 0x04;   // 32-bit arithmetic
inline constexpr std::uint8_t kClsJmp = 0x05;   // 64-bit compare-and-jump
inline constexpr std::uint8_t kClsJmp32 = 0x06; // 32-bit compare-and-jump
inline constexpr std::uint8_t kClsAlu64 = 0x07; // 64-bit arithmetic

// --- Source modifier for ALU/JMP (opcode & 0x08) --------------------------
inline constexpr std::uint8_t kSrcK = 0x00;  // use 32-bit immediate
inline constexpr std::uint8_t kSrcX = 0x08;  // use source register

// --- ALU operation (opcode & 0xf0) ----------------------------------------
inline constexpr std::uint8_t kAluAdd = 0x00;
inline constexpr std::uint8_t kAluSub = 0x10;
inline constexpr std::uint8_t kAluMul = 0x20;
inline constexpr std::uint8_t kAluDiv = 0x30;
inline constexpr std::uint8_t kAluOr = 0x40;
inline constexpr std::uint8_t kAluAnd = 0x50;
inline constexpr std::uint8_t kAluLsh = 0x60;
inline constexpr std::uint8_t kAluRsh = 0x70;
inline constexpr std::uint8_t kAluNeg = 0x80;
inline constexpr std::uint8_t kAluMod = 0x90;
inline constexpr std::uint8_t kAluXor = 0xa0;
inline constexpr std::uint8_t kAluMov = 0xb0;
inline constexpr std::uint8_t kAluArsh = 0xc0;
inline constexpr std::uint8_t kAluEnd = 0xd0;  // byte swap; kSrcK=to-LE, kSrcX=to-BE

// --- JMP operation (opcode & 0xf0) ----------------------------------------
inline constexpr std::uint8_t kJmpJa = 0x00;
inline constexpr std::uint8_t kJmpJeq = 0x10;
inline constexpr std::uint8_t kJmpJgt = 0x20;
inline constexpr std::uint8_t kJmpJge = 0x30;
inline constexpr std::uint8_t kJmpJset = 0x40;
inline constexpr std::uint8_t kJmpJne = 0x50;
inline constexpr std::uint8_t kJmpJsgt = 0x60;
inline constexpr std::uint8_t kJmpJsge = 0x70;
inline constexpr std::uint8_t kJmpCall = 0x80;
inline constexpr std::uint8_t kJmpExit = 0x90;
inline constexpr std::uint8_t kJmpJlt = 0xa0;
inline constexpr std::uint8_t kJmpJle = 0xb0;
inline constexpr std::uint8_t kJmpJslt = 0xc0;
inline constexpr std::uint8_t kJmpJsle = 0xd0;

// --- Load/store size (opcode & 0x18) ---------------------------------------
inline constexpr std::uint8_t kSizeW = 0x00;   // 4 bytes
inline constexpr std::uint8_t kSizeH = 0x08;   // 2 bytes
inline constexpr std::uint8_t kSizeB = 0x10;   // 1 byte
inline constexpr std::uint8_t kSizeDw = 0x18;  // 8 bytes

// --- Load/store mode (opcode & 0xe0) ---------------------------------------
inline constexpr std::uint8_t kModeImm = 0x00;  // 64-bit immediate (two slots)
inline constexpr std::uint8_t kModeMem = 0x60;  // register + offset

// --- Fully assembled opcodes used by the assembler and interpreter ---------
inline constexpr std::uint8_t kOpLddw = kClsLd | kSizeDw | kModeImm;  // 0x18

inline constexpr std::uint8_t op_ldx(std::uint8_t size) {
  return static_cast<std::uint8_t>(kClsLdx | size | kModeMem);
}
inline constexpr std::uint8_t op_stx(std::uint8_t size) {
  return static_cast<std::uint8_t>(kClsStx | size | kModeMem);
}
inline constexpr std::uint8_t op_st(std::uint8_t size) {
  return static_cast<std::uint8_t>(kClsSt | size | kModeMem);
}

// Register file: r0 (return value), r1-r5 (arguments / caller-saved),
// r6-r9 (callee-saved), r10 (read-only frame pointer).
inline constexpr int kNumRegisters = 11;
inline constexpr int kFramePointer = 10;
inline constexpr int kStackSize = 512;  // bytes per VM invocation, as in ubpf

}  // namespace xb::ebpf
