#include "ebpf/insn.hpp"

#include <stdexcept>

namespace xb::ebpf {

std::vector<std::uint8_t> serialize(const std::vector<Insn>& insns) {
  std::vector<std::uint8_t> out;
  out.reserve(insns.size() * 8);
  for (const auto& insn : insns) {
    out.push_back(insn.opcode);
    out.push_back(static_cast<std::uint8_t>((insn.src << 4) | (insn.dst & 0x0F)));
    out.push_back(static_cast<std::uint8_t>(insn.offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>((insn.offset >> 8) & 0xFF));
    auto imm = static_cast<std::uint32_t>(insn.imm);
    out.push_back(static_cast<std::uint8_t>(imm & 0xFF));
    out.push_back(static_cast<std::uint8_t>((imm >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((imm >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((imm >> 24) & 0xFF));
  }
  return out;
}

std::vector<Insn> deserialize(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() % 8 != 0) {
    throw std::invalid_argument("eBPF image size must be a multiple of 8 bytes");
  }
  std::vector<Insn> out;
  out.reserve(bytes.size() / 8);
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    Insn insn;
    insn.opcode = bytes[i];
    insn.dst = bytes[i + 1] & 0x0F;
    insn.src = bytes[i + 1] >> 4;
    insn.offset = static_cast<std::int16_t>(bytes[i + 2] | (bytes[i + 3] << 8));
    insn.imm = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(bytes[i + 4]) | (static_cast<std::uint32_t>(bytes[i + 5]) << 8) |
        (static_cast<std::uint32_t>(bytes[i + 6]) << 16) |
        (static_cast<std::uint32_t>(bytes[i + 7]) << 24));
    out.push_back(insn);
  }
  return out;
}

}  // namespace xb::ebpf
