// Tier-2 x86-64 code generator. See jit.hpp for the code shape overview and
// docs/execution_engine.md for the full tier-2 section.
//
// The backend is a single-pass emitter over the IR with a fixup pass for
// branch targets. eBPF registers live in host registers for the whole run
// (the classic ubpf mapping); r9-r11 are scratch, r12 pins the JitState.
// Out-of-line stubs (budget deopt, bounds-check miss, helper slow path,
// faults) are appended after the main body so the hot path stays straight.
//
// Parity contract (enforced by tests/ebpf_differential_test.cpp): identical
// RunResult, Fault{kind, pc, detail-literal}, retired counts and helper-call
// sequences as tiers 0/1 on every program, including mid-run faults.
#include "ebpf/jit.hpp"

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "ebpf/ir.hpp"
#include "ebpf/memory.hpp"
#include "ebpf/opcodes.hpp"
#include "ebpf/vm.hpp"

namespace xb::ebpf {

namespace {

// ---------------------------------------------------------------------------
// Runtime shims, called from generated code via absolute-address trampolines.
// SysV calling convention; generated call sites keep rsp 16-byte aligned.

/// Helper-call trampoline. The call site stores the helper id into
/// JitState::helper_id and passes r1..r5; this shim reproduces tier 0/1
/// dispatch exactly: unbound id → kUnknownHelper before the call counter,
/// bound helper → counter increment, then action decoding.
std::uint32_t helper_shim(JitState* st, std::uint64_t a1, std::uint64_t a2, std::uint64_t a3,
                          std::uint64_t a4, std::uint64_t a5) {
  const auto id = static_cast<std::size_t>(st->helper_id);
  const auto* helpers = static_cast<const HelperFn*>(st->helpers);
  if (id >= st->helper_count || !helpers[id]) {
    st->fault_kind = static_cast<std::uint64_t>(FaultKind::kUnknownHelper);
    st->fault_detail = "helper not bound";
    return kJitExitFault;
  }
  ++*st->helper_calls;
  const HelperResult hr = helpers[id](a1, a2, a3, a4, a5);
  if (hr.action == HelperAction::kContinue) {
    st->helper_ret = hr.value;
    return kJitExitOk;
  }
  if (hr.action == HelperAction::kNext) return kJitExitNext;
  st->fault_kind = static_cast<std::uint64_t>(FaultKind::kHelperError);
  st->fault_detail = hr.error;
  return kJitExitFault;
}

/// Bounds-check slow path: consults the MemoryModel exactly like tier 0/1's
/// check(), and on success caches the containing region's bounds so the
/// inline two-compare form hits next time. Only regions of at least 8 bytes
/// fill the cache, so the inline `end - len` comparison can never underflow.
std::uint32_t probe_shim(JitState* st, std::uint64_t addr, std::uint64_t len,
                         std::uint64_t write) {
  const auto* region = st->memory->lookup(addr, static_cast<std::size_t>(len), write != 0);
  if (region == nullptr) return 0;
  if (region->size >= 8) {
    const std::uint64_t base = region->base;
    const std::uint64_t end = region->base + region->size;
    if (write != 0) {
      st->wcache_base = base;
      st->wcache_end = end;
    } else {
      st->rcache_base = base;
      st->rcache_end = end;
    }
  }
  return 1;
}

// ---------------------------------------------------------------------------
// x86-64 instruction emitter (the subset the lowering needs).

// Host register numbers.
constexpr unsigned RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
                   R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15;

/// eBPF r0..r10 → host register (ubpf mapping). r9-r11 stay scratch and r12
/// pins the JitState pointer.
constexpr unsigned kHostReg[kNumRegisters] = {RAX, RDI, RSI, RDX, RCX, R8,
                                              RBX, R13, R14, R15, RBP};

// Condition codes for 0F 8x jcc.
constexpr std::uint8_t CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6,
                       CC_A = 0x7, CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF;

class Asm {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& code() const noexcept { return code_; }
  [[nodiscard]] std::size_t pos() const noexcept { return code_.size(); }

  void byte(std::uint8_t v) { code_.push_back(v); }
  void word(std::uint16_t v) {
    byte(static_cast<std::uint8_t>(v));
    byte(static_cast<std::uint8_t>(v >> 8));
  }
  void dword(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void qword(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void patch32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) code_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  /// Patches a rel32 slot at `at` to land on `target`.
  void patch_rel32(std::size_t at, std::size_t target) {
    patch32(at, static_cast<std::uint32_t>(target - (at + 4)));
  }

  void rex(bool w, unsigned reg, unsigned rm, bool force = false) {
    const auto r = static_cast<std::uint8_t>(0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | (rm >> 3));
    if (r != 0x40 || force) byte(r);
  }
  void modrm_rr(unsigned reg, unsigned rm) {
    byte(static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }
  /// [base + disp32]; emits a SIB byte when the base's low bits collide with
  /// the SIB escape (rsp/r12).
  void modrm_mem(unsigned reg, unsigned base, std::int32_t disp) {
    if ((base & 7) == 4) {
      byte(static_cast<std::uint8_t>(0x84 | ((reg & 7) << 3)));
      byte(0x24);
    } else {
      byte(static_cast<std::uint8_t>(0x80 | ((reg & 7) << 3) | (base & 7)));
    }
    dword(static_cast<std::uint32_t>(disp));
  }

  // Register-register / register-immediate forms.
  void mov_rr(bool w, unsigned dst, unsigned src) {
    rex(w, src, dst);
    byte(0x89);
    modrm_rr(src, dst);
  }
  void movabs(unsigned dst, std::uint64_t imm) {
    rex(true, 0, dst);
    byte(static_cast<std::uint8_t>(0xB8 | (dst & 7)));
    qword(imm);
  }
  /// mov r64, sign-extended imm32.
  void mov_ri_sext(unsigned dst, std::uint32_t imm) {
    rex(true, 0, dst);
    byte(0xC7);
    modrm_rr(0, dst);
    dword(imm);
  }
  /// mov r32, imm32 (zero-extends into the full register).
  void mov_ri32(unsigned dst, std::uint32_t imm) {
    rex(false, 0, dst);
    byte(0xC7);
    modrm_rr(0, dst);
    dword(imm);
  }
  /// 81 /slash group: add 0, or 1, and 4, sub 5, xor 6, cmp 7.
  void alu_ri(bool w, unsigned slash, unsigned dst, std::uint32_t imm) {
    rex(w, 0, dst);
    byte(0x81);
    modrm_rr(slash, dst);
    dword(imm);
  }
  void alu_ri8(bool w, unsigned slash, unsigned dst, std::uint8_t imm) {
    rex(w, 0, dst);
    byte(0x83);
    modrm_rr(slash, dst);
    byte(imm);
  }
  /// "r/m, reg" opcode byte: add 01, or 09, and 21, sub 29, xor 31, cmp 39,
  /// test 85, mov 89.
  void alu_rr(bool w, std::uint8_t opcode, unsigned dst, unsigned src) {
    rex(w, src, dst);
    byte(opcode);
    modrm_rr(src, dst);
  }
  void imul_rr(bool w, unsigned dst, unsigned src) {
    rex(w, dst, src);
    byte(0x0F);
    byte(0xAF);
    modrm_rr(dst, src);
  }
  void imul_rri(bool w, unsigned dst, unsigned src, std::uint32_t imm) {
    rex(w, dst, src);
    byte(0x69);
    modrm_rr(dst, src);
    dword(imm);
  }
  /// F7 group: test-imm 0, neg 3, div 6.
  void f7(bool w, unsigned slash, unsigned rm) {
    rex(w, 0, rm);
    byte(0xF7);
    modrm_rr(slash, rm);
  }
  void test_ri(bool w, unsigned dst, std::uint32_t imm) {
    rex(w, 0, dst);
    byte(0xF7);
    modrm_rr(0, dst);
    dword(imm);
  }
  /// C1 group: rol 0, ror 1, shl 4, shr 5, sar 7.
  void shift_i(bool w, unsigned slash, unsigned dst, std::uint8_t imm) {
    rex(w, 0, dst);
    byte(0xC1);
    modrm_rr(slash, dst);
    byte(imm);
  }
  void shift_cl(bool w, unsigned slash, unsigned dst) {
    rex(w, 0, dst);
    byte(0xD3);
    modrm_rr(slash, dst);
  }
  void bswap(bool w, unsigned dst) {
    rex(w, 0, dst);
    byte(0x0F);
    byte(static_cast<std::uint8_t>(0xC8 | (dst & 7)));
  }
  void movzx16_rr(unsigned dst, unsigned src) {
    rex(false, dst, src);
    byte(0x0F);
    byte(0xB7);
    modrm_rr(dst, src);
  }
  void ror16_i(unsigned dst, std::uint8_t imm) {
    byte(0x66);
    rex(false, 0, dst);
    byte(0xC1);
    modrm_rr(1, dst);
    byte(imm);
  }
  void xor_self32(unsigned r) { alu_rr(false, 0x31, r, r); }
  void push(unsigned r) {
    if (r >= 8) byte(0x41);
    byte(static_cast<std::uint8_t>(0x50 | (r & 7)));
  }
  void pop(unsigned r) {
    if (r >= 8) byte(0x41);
    byte(static_cast<std::uint8_t>(0x58 | (r & 7)));
  }
  void lea(unsigned dst, unsigned base, std::int32_t disp) {
    rex(true, dst, base);
    byte(0x8D);
    modrm_mem(dst, base, disp);
  }

  // Loads from [base+disp32]; 8/16-bit forms zero-extend via movzx, the
  // 32-bit form zero-extends architecturally.
  void load8z(unsigned dst, unsigned base, std::int32_t disp) {
    rex(false, dst, base);
    byte(0x0F);
    byte(0xB6);
    modrm_mem(dst, base, disp);
  }
  void load16z(unsigned dst, unsigned base, std::int32_t disp) {
    rex(false, dst, base);
    byte(0x0F);
    byte(0xB7);
    modrm_mem(dst, base, disp);
  }
  void load32(unsigned dst, unsigned base, std::int32_t disp) {
    rex(false, dst, base);
    byte(0x8B);
    modrm_mem(dst, base, disp);
  }
  void load64(unsigned dst, unsigned base, std::int32_t disp) {
    rex(true, dst, base);
    byte(0x8B);
    modrm_mem(dst, base, disp);
  }

  // Stores to [base+disp32]. The 8-bit form forces a REX prefix so source
  // registers 4-7 select sil/dil rather than ah-family halves.
  void store8(unsigned base, std::int32_t disp, unsigned src) {
    rex(false, src, base, /*force=*/true);
    byte(0x88);
    modrm_mem(src, base, disp);
  }
  void store16(unsigned base, std::int32_t disp, unsigned src) {
    byte(0x66);
    rex(false, src, base);
    byte(0x89);
    modrm_mem(src, base, disp);
  }
  void store32(unsigned base, std::int32_t disp, unsigned src) {
    rex(false, src, base);
    byte(0x89);
    modrm_mem(src, base, disp);
  }
  void store64(unsigned base, std::int32_t disp, unsigned src) {
    rex(true, src, base);
    byte(0x89);
    modrm_mem(src, base, disp);
  }
  void store_i8(unsigned base, std::int32_t disp, std::uint8_t imm) {
    rex(false, 0, base);
    byte(0xC6);
    modrm_mem(0, base, disp);
    byte(imm);
  }
  void store_i16(unsigned base, std::int32_t disp, std::uint16_t imm) {
    byte(0x66);
    rex(false, 0, base);
    byte(0xC7);
    modrm_mem(0, base, disp);
    word(imm);
  }
  void store_i32(unsigned base, std::int32_t disp, std::uint32_t imm) {
    rex(false, 0, base);
    byte(0xC7);
    modrm_mem(0, base, disp);
    dword(imm);
  }
  /// mov qword [base+disp32], sign-extended imm32.
  void store_i32_sext64(unsigned base, std::int32_t disp, std::uint32_t imm) {
    rex(true, 0, base);
    byte(0xC7);
    modrm_mem(0, base, disp);
    dword(imm);
  }
  void cmp_r_mem(unsigned reg, unsigned base, std::int32_t disp) {
    rex(true, reg, base);
    byte(0x3B);
    modrm_mem(reg, base, disp);
  }
  /// 81 /slash on a qword memory operand (add 0, sub 5).
  void alu_mem_i32(unsigned slash, unsigned base, std::int32_t disp, std::uint32_t imm) {
    rex(true, 0, base);
    byte(0x81);
    modrm_mem(slash, base, disp);
    dword(imm);
  }
  void call_reg(unsigned r) {
    rex(false, 0, r);
    byte(0xFF);
    modrm_rr(2, r);
  }
  void ret() { byte(0xC3); }

  /// jmp rel32 with an unresolved target; returns the rel32 slot position.
  [[nodiscard]] std::size_t jmp32() {
    byte(0xE9);
    dword(0);
    return pos() - 4;
  }
  /// jcc rel32 with an unresolved target; returns the rel32 slot position.
  [[nodiscard]] std::size_t jcc32(std::uint8_t cc) {
    byte(0x0F);
    byte(static_cast<std::uint8_t>(0x80 | cc));
    dword(0);
    return pos() - 4;
  }
  /// jmp rel32 to an already-emitted target.
  void jmp32_to(std::size_t target) {
    byte(0xE9);
    dword(static_cast<std::uint32_t>(target - (pos() + 4)));
  }

 private:
  std::vector<std::uint8_t> code_;
};

[[nodiscard]] bool fits_i32(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v) ==
         static_cast<std::int64_t>(static_cast<std::int32_t>(static_cast<std::uint32_t>(v)));
}

// JitState field displacements (the struct is standard-layout; the layout is
// part of the JIT ABI, see jit.hpp).
constexpr auto kOffRemaining = static_cast<std::int32_t>(offsetof(JitState, remaining));
constexpr auto kOffStackTop = static_cast<std::int32_t>(offsetof(JitState, stack_top));
constexpr auto kOffR0Out = static_cast<std::int32_t>(offsetof(JitState, r0_out));
constexpr auto kOffHelperId = static_cast<std::int32_t>(offsetof(JitState, helper_id));
constexpr auto kOffHelperRet = static_cast<std::int32_t>(offsetof(JitState, helper_ret));
constexpr auto kOffFaultPc = static_cast<std::int32_t>(offsetof(JitState, fault_pc));
constexpr auto kOffFaultKind = static_cast<std::int32_t>(offsetof(JitState, fault_kind));
constexpr auto kOffFaultDetail = static_cast<std::int32_t>(offsetof(JitState, fault_detail));
constexpr auto kOffRcacheBase = static_cast<std::int32_t>(offsetof(JitState, rcache_base));
constexpr auto kOffRcacheEnd = static_cast<std::int32_t>(offsetof(JitState, rcache_end));
constexpr auto kOffWcacheBase = static_cast<std::int32_t>(offsetof(JitState, wcache_base));
constexpr auto kOffWcacheEnd = static_cast<std::int32_t>(offsetof(JitState, wcache_end));
constexpr auto kOffRegs = static_cast<std::int32_t>(offsetof(JitState, regs));
constexpr auto kOffDeoptIp = static_cast<std::int32_t>(offsetof(JitState, deopt_ip));

// ---------------------------------------------------------------------------
// The compiler: basic-block analysis + lowering + stub/fixup emission.

class Compiler {
 public:
  Compiler(const IrProgram& ir, const Jit::Options& opts) : ir_(ir), opts_(opts) {}

  [[nodiscard]] bool compile();
  [[nodiscard]] const std::vector<std::uint8_t>& code() const noexcept { return a_.code(); }

 private:
  // Shared epilogue labels, resolved after stub emission.
  enum class Label : std::uint8_t { kDeopt, kEpOk, kEpNext, kEpFault };

  struct JumpFix {
    std::size_t at;
    std::int32_t target_ir;
  };
  struct SharedFix {
    std::size_t at;
    Label label;
  };
  struct DeoptSite {
    std::size_t fix;
    std::int32_t leader_ir;
    std::int32_t charge;
  };
  struct FaultSite {
    std::size_t fix;
    std::int32_t pc;
    std::int32_t addback;
    FaultKind kind;
    const char* detail;
  };
  struct CallSite {
    std::size_t fix;
    std::int32_t pc;
    std::int32_t addback;
  };
  struct MemSite {
    std::size_t fix_lo;
    std::size_t fix_hi;
    std::size_t resume;
    unsigned base_reg;
    std::int32_t off;
    std::uint8_t len;
    bool write;
    std::int32_t pc;
    std::int32_t addback;
  };

  [[nodiscard]] static bool is_jump(IrOp op) noexcept {
    return op == IrOp::kJa || op >= IrOp::kJeq64Imm;
  }
  [[nodiscard]] static unsigned host(std::uint8_t ebpf_reg) noexcept {
    return kHostReg[ebpf_reg];
  }
  /// Budget units to hand back when instruction `i` leaves its block early:
  /// the block was pre-charged in full, and executing `i` consumed exactly
  /// `pos_in_block` units (1-based, including `i` itself).
  [[nodiscard]] std::int32_t addback(std::size_t i) const noexcept {
    return block_len_[static_cast<std::size_t>(block_leader_[i])] - pos_[i];
  }

  [[nodiscard]] bool analyze_blocks();
  void emit_prologue();
  [[nodiscard]] bool lower(const IrInsn& insn, std::size_t i);
  void emit_addback(std::int32_t units);
  void emit_fault_body(FaultKind kind, std::int32_t pc, const char* detail,
                       std::int32_t units_back);
  void lower_div(const IrInsn& insn, std::size_t i, bool is64, bool is_mod, bool is_imm);
  void lower_shift_reg(const IrInsn& insn, bool is64, unsigned slash);
  void lower_cond_jump(const IrInsn& insn, std::uint8_t cc, bool is64, bool is_imm,
                       bool is_set);
  /// Emits the inline two-compare bounds check; leaves the access address in
  /// r9 and registers the out-of-line miss stub.
  void emit_bounds_check(const IrInsn& insn, std::size_t i, unsigned base_reg,
                         std::uint8_t len, bool write);
  void emit_stubs();
  void resolve_fixups();

  const IrProgram& ir_;
  const Jit::Options& opts_;
  Asm a_;

  std::vector<bool> leader_;
  std::vector<std::int32_t> block_leader_;  // per-insn: IR index of its block's leader
  std::vector<std::int32_t> block_len_;     // per-leader: block length in IR insns
  std::vector<std::int32_t> pos_;           // per-insn: 1-based position in its block
  std::vector<std::size_t> insn_off_;       // per-insn: native code offset

  std::vector<JumpFix> jumps_;
  std::vector<SharedFix> shared_;
  std::vector<DeoptSite> deopts_;
  std::vector<FaultSite> faults_;
  std::vector<CallSite> calls_;
  std::vector<MemSite> mems_;
  std::size_t label_off_[4] = {};
};

bool Compiler::analyze_blocks() {
  const std::size_t n = ir_.insns.size();
  leader_.assign(n, false);
  leader_[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const IrInsn& insn = ir_.insns[i];
    if (!is_jump(insn.op)) continue;
    if (insn.jt < 0 || static_cast<std::size_t>(insn.jt) >= n) return false;
    leader_[static_cast<std::size_t>(insn.jt)] = true;
    // Jumps terminate their block on both edges: the fallthrough starts a
    // new block so the taken path never pre-pays for untaken instructions.
    if (i + 1 < n) leader_[i + 1] = true;
  }
  block_leader_.assign(n, 0);
  block_len_.assign(n, 0);
  pos_.assign(n, 0);
  std::int32_t cur = 0;
  std::int32_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (leader_[i]) {
      cur = static_cast<std::int32_t>(i);
      p = 0;
    }
    ++p;
    block_leader_[i] = cur;
    pos_[i] = p;
    block_len_[static_cast<std::size_t>(cur)] = p;
  }
  return true;
}

void Compiler::emit_prologue() {
  for (unsigned r : {RBX, RBP, R12, R13, R14, R15}) a_.push(r);
  // Six pushes put rsp back to entry alignment - 8; one more slot restores
  // 16-byte alignment so calls out of generated code meet the SysV ABI.
  a_.alu_ri8(true, 5, RSP, 8);
  a_.mov_rr(true, R12, RDI);  // JitState pointer
  a_.mov_rr(true, RDI, RSI);  // r1
  a_.mov_rr(true, RSI, RDX);  // r2
  a_.mov_rr(true, RDX, RCX);  // r3
  a_.mov_rr(true, RCX, R8);   // r4
  a_.mov_rr(true, R8, R9);    // r5
  a_.xor_self32(RAX);         // r0
  a_.xor_self32(RBX);         // r6
  a_.xor_self32(R13);         // r7
  a_.xor_self32(R14);         // r8
  a_.xor_self32(R15);         // r9
  a_.load64(RBP, R12, kOffStackTop);  // r10
}

void Compiler::emit_addback(std::int32_t units) {
  if (units > 0) a_.alu_mem_i32(0, R12, kOffRemaining, static_cast<std::uint32_t>(units));
}

void Compiler::emit_fault_body(FaultKind kind, std::int32_t pc, const char* detail,
                               std::int32_t units_back) {
  a_.store_i32_sext64(R12, kOffFaultKind, static_cast<std::uint32_t>(kind));
  a_.store_i32_sext64(R12, kOffFaultPc, static_cast<std::uint32_t>(pc));
  a_.movabs(R11, reinterpret_cast<std::uintptr_t>(detail));
  a_.store64(R12, kOffFaultDetail, R11);
  emit_addback(units_back);
  shared_.push_back({a_.jmp32(), Label::kEpFault});
}

void Compiler::lower_div(const IrInsn& insn, std::size_t i, bool is64, bool is_mod,
                         bool is_imm) {
  const unsigned dst = host(insn.dst);
  if (is_imm) {
    // Translator rejects zero immediates, so no runtime test. The 64-bit
    // immediate is a sign-extended i32 (fit checked by the caller).
    if (is64) {
      a_.mov_ri_sext(R11, static_cast<std::uint32_t>(insn.imm));
    } else {
      a_.mov_ri32(R11, static_cast<std::uint32_t>(insn.imm));
    }
  } else {
    a_.mov_rr(is64, R11, host(insn.src));
    a_.alu_rr(is64, 0x85, R11, R11);  // test r11, r11
    faults_.push_back({a_.jcc32(CC_E), insn.pc, addback(i), FaultKind::kDivisionByZero,
                       is_mod ? "modulo by zero" : "division by zero"});
  }
  // rax/rdx double as eBPF r0/r3: save both, divide through r11, restore,
  // then write the result (restore-before-write keeps dst==r0/r3 correct).
  a_.mov_rr(true, R9, RAX);
  a_.mov_rr(true, R10, RDX);
  a_.mov_rr(is64, RAX, dst);
  a_.xor_self32(RDX);
  a_.f7(is64, 6, R11);  // div r11
  a_.mov_rr(is64, R11, is_mod ? RDX : RAX);
  a_.mov_rr(true, RDX, R10);
  a_.mov_rr(true, RAX, R9);
  a_.mov_rr(true, dst, R11);
}

void Compiler::lower_shift_reg(const IrInsn& insn, bool is64, unsigned slash) {
  const unsigned dst = host(insn.dst);
  // rcx doubles as eBPF r4; shift through r11 with the count staged in cl.
  // The 32-bit value move zero-extends up front, so a masked count of zero
  // (which leaves the destination unwritten) still yields a zero-extended
  // result exactly like tiers 0/1.
  a_.mov_rr(true, R10, RCX);
  a_.mov_rr(is64, R11, dst);
  a_.mov_rr(true, RCX, host(insn.src));
  a_.shift_cl(is64, slash, R11);  // hardware masks the count to 63/31
  a_.mov_rr(true, RCX, R10);
  a_.mov_rr(true, dst, R11);
}

void Compiler::lower_cond_jump(const IrInsn& insn, std::uint8_t cc, bool is64, bool is_imm,
                               bool is_set) {
  const unsigned dst = host(insn.dst);
  if (is_set) {
    if (is_imm) {
      a_.test_ri(is64, dst, static_cast<std::uint32_t>(insn.imm));
    } else {
      a_.alu_rr(is64, 0x85, dst, host(insn.src));
    }
    cc = CC_NE;
  } else if (is_imm) {
    a_.alu_ri(is64, 7, dst, static_cast<std::uint32_t>(insn.imm));  // cmp
  } else {
    a_.alu_rr(is64, 0x39, dst, host(insn.src));
  }
  jumps_.push_back({a_.jcc32(cc), insn.jt});
}

void Compiler::emit_bounds_check(const IrInsn& insn, std::size_t i, unsigned base_reg,
                                 std::uint8_t len, bool write) {
  a_.lea(R9, base_reg, insn.off);
  a_.cmp_r_mem(R9, R12, write ? kOffWcacheBase : kOffRcacheBase);
  const std::size_t fix_lo = a_.jcc32(CC_B);
  a_.load64(R10, R12, write ? kOffWcacheEnd : kOffRcacheEnd);
  // Compare against end - len rather than addr + len: the access address can
  // wrap but `end - len` cannot (filled caches have end >= base + 8 and the
  // empty sentinel has end = 8), so this form has no overflow false-accept.
  a_.alu_ri8(true, 5, R10, len);
  a_.alu_rr(true, 0x39, R9, R10);
  const std::size_t fix_hi = a_.jcc32(CC_A);
  mems_.push_back(
      {fix_lo, fix_hi, a_.pos(), base_reg, insn.off, len, write, insn.pc, addback(i)});
}

bool Compiler::lower(const IrInsn& insn, std::size_t i) {
  if (opts_.reject_ops_for_test) return false;
  const unsigned dst = host(insn.dst);
  const unsigned src = host(insn.src);
  const auto imm32 = static_cast<std::uint32_t>(insn.imm);
  switch (insn.op) {
    case IrOp::kNop:
      return true;

    case IrOp::kExit:
      a_.store64(R12, kOffR0Out, RAX);
      emit_addback(addback(i));
      shared_.push_back({a_.jmp32(), Label::kEpOk});
      return true;

    case IrOp::kTrapEnd:
      emit_fault_body(FaultKind::kIllegalInstruction, insn.pc,
                      "fell off the end of the program", addback(i));
      return true;

    case IrOp::kCall: {
      if (fits_i32(insn.imm)) {
        a_.store_i32_sext64(R12, kOffHelperId, imm32);
      } else {
        a_.movabs(R11, insn.imm);
        a_.store64(R12, kOffHelperId, R11);
      }
      // Shift r1..r5 into the shim's argument slots and make room for the
      // JitState pointer; each source is read before it is overwritten.
      a_.mov_rr(true, R9, R8);
      a_.mov_rr(true, R8, RCX);
      a_.mov_rr(true, RCX, RDX);
      a_.mov_rr(true, RDX, RSI);
      a_.mov_rr(true, RSI, RDI);
      a_.mov_rr(true, RDI, R12);
      a_.movabs(R11, reinterpret_cast<std::uintptr_t>(&helper_shim));
      a_.call_reg(R11);
      a_.alu_rr(false, 0x85, RAX, RAX);  // test eax, eax
      calls_.push_back({a_.jcc32(CC_NE), insn.pc, addback(i)});
      a_.load64(RAX, R12, kOffHelperRet);
      // r1-r5 are clobbered by calls per the eBPF ABI.
      a_.xor_self32(RDI);
      a_.xor_self32(RSI);
      a_.xor_self32(RDX);
      a_.xor_self32(RCX);
      a_.xor_self32(R8);
      return true;
    }

    case IrOp::kJa:
      jumps_.push_back({a_.jmp32(), insn.jt});
      return true;

    case IrOp::kLddw:
      a_.movabs(dst, insn.imm);
      return true;

    // --- 64-bit ALU (immediates are pre-sign-extended i32) -----------------
    case IrOp::kAdd64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.alu_ri(true, 0, dst, imm32);
      return true;
    case IrOp::kSub64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.alu_ri(true, 5, dst, imm32);
      return true;
    case IrOp::kOr64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.alu_ri(true, 1, dst, imm32);
      return true;
    case IrOp::kAnd64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.alu_ri(true, 4, dst, imm32);
      return true;
    case IrOp::kXor64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.alu_ri(true, 6, dst, imm32);
      return true;
    case IrOp::kMul64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.imul_rri(true, dst, dst, imm32);
      return true;
    case IrOp::kMov64Imm:
      if (!fits_i32(insn.imm)) return false;
      a_.mov_ri_sext(dst, imm32);
      return true;
    case IrOp::kDiv64Imm:
      if (!fits_i32(insn.imm)) return false;
      lower_div(insn, i, true, false, true);
      return true;
    case IrOp::kMod64Imm:
      if (!fits_i32(insn.imm)) return false;
      lower_div(insn, i, true, true, true);
      return true;
    case IrOp::kLsh64Imm:
      if ((insn.imm & 63) != 0) a_.shift_i(true, 4, dst, insn.imm & 63);
      return true;
    case IrOp::kRsh64Imm:
      if ((insn.imm & 63) != 0) a_.shift_i(true, 5, dst, insn.imm & 63);
      return true;
    case IrOp::kArsh64Imm:
      if ((insn.imm & 63) != 0) a_.shift_i(true, 7, dst, insn.imm & 63);
      return true;

    case IrOp::kAdd64Reg:
      a_.alu_rr(true, 0x01, dst, src);
      return true;
    case IrOp::kSub64Reg:
      a_.alu_rr(true, 0x29, dst, src);
      return true;
    case IrOp::kOr64Reg:
      a_.alu_rr(true, 0x09, dst, src);
      return true;
    case IrOp::kAnd64Reg:
      a_.alu_rr(true, 0x21, dst, src);
      return true;
    case IrOp::kXor64Reg:
      a_.alu_rr(true, 0x31, dst, src);
      return true;
    case IrOp::kMul64Reg:
      a_.imul_rr(true, dst, src);
      return true;
    case IrOp::kMov64Reg:
      a_.mov_rr(true, dst, src);
      return true;
    case IrOp::kDiv64Reg:
      lower_div(insn, i, true, false, false);
      return true;
    case IrOp::kMod64Reg:
      lower_div(insn, i, true, true, false);
      return true;
    case IrOp::kLsh64Reg:
      lower_shift_reg(insn, true, 4);
      return true;
    case IrOp::kRsh64Reg:
      lower_shift_reg(insn, true, 5);
      return true;
    case IrOp::kArsh64Reg:
      lower_shift_reg(insn, true, 7);
      return true;
    case IrOp::kNeg64:
      a_.f7(true, 3, dst);
      return true;

    // --- 32-bit ALU (results zero-extend architecturally) ------------------
    case IrOp::kAdd32Imm:
      a_.alu_ri(false, 0, dst, imm32);
      return true;
    case IrOp::kSub32Imm:
      a_.alu_ri(false, 5, dst, imm32);
      return true;
    case IrOp::kOr32Imm:
      a_.alu_ri(false, 1, dst, imm32);
      return true;
    case IrOp::kAnd32Imm:
      a_.alu_ri(false, 4, dst, imm32);
      return true;
    case IrOp::kXor32Imm:
      a_.alu_ri(false, 6, dst, imm32);
      return true;
    case IrOp::kMul32Imm:
      a_.imul_rri(false, dst, dst, imm32);
      return true;
    case IrOp::kMov32Imm:
      a_.mov_ri32(dst, imm32);
      return true;
    case IrOp::kDiv32Imm:
      lower_div(insn, i, false, false, true);
      return true;
    case IrOp::kMod32Imm:
      lower_div(insn, i, false, true, true);
      return true;
    // A masked count of zero leaves the destination unwritten on x86, but
    // tiers 0/1 still zero-extend — emit the explicit zero-extension.
    case IrOp::kLsh32Imm:
      if ((insn.imm & 31) != 0) {
        a_.shift_i(false, 4, dst, insn.imm & 31);
      } else {
        a_.mov_rr(false, dst, dst);
      }
      return true;
    case IrOp::kRsh32Imm:
      if ((insn.imm & 31) != 0) {
        a_.shift_i(false, 5, dst, insn.imm & 31);
      } else {
        a_.mov_rr(false, dst, dst);
      }
      return true;
    case IrOp::kArsh32Imm:
      if ((insn.imm & 31) != 0) {
        a_.shift_i(false, 7, dst, insn.imm & 31);
      } else {
        a_.mov_rr(false, dst, dst);
      }
      return true;

    case IrOp::kAdd32Reg:
      a_.alu_rr(false, 0x01, dst, src);
      return true;
    case IrOp::kSub32Reg:
      a_.alu_rr(false, 0x29, dst, src);
      return true;
    case IrOp::kOr32Reg:
      a_.alu_rr(false, 0x09, dst, src);
      return true;
    case IrOp::kAnd32Reg:
      a_.alu_rr(false, 0x21, dst, src);
      return true;
    case IrOp::kXor32Reg:
      a_.alu_rr(false, 0x31, dst, src);
      return true;
    case IrOp::kMul32Reg:
      a_.imul_rr(false, dst, src);
      return true;
    case IrOp::kMov32Reg:
      a_.mov_rr(false, dst, src);
      return true;
    case IrOp::kDiv32Reg:
      lower_div(insn, i, false, false, false);
      return true;
    case IrOp::kMod32Reg:
      lower_div(insn, i, false, true, false);
      return true;
    case IrOp::kLsh32Reg:
      lower_shift_reg(insn, false, 4);
      return true;
    case IrOp::kRsh32Reg:
      lower_shift_reg(insn, false, 5);
      return true;
    case IrOp::kArsh32Reg:
      lower_shift_reg(insn, false, 7);
      return true;
    case IrOp::kNeg32:
      a_.f7(false, 3, dst);
      return true;

    // --- byte swaps --------------------------------------------------------
    case IrOp::kBswap16:
      a_.movzx16_rr(dst, dst);
      a_.ror16_i(dst, 8);
      return true;
    case IrOp::kBswap32:
      a_.bswap(false, dst);
      return true;
    case IrOp::kBswap64:
      a_.bswap(true, dst);
      return true;
    case IrOp::kZext16:
      a_.alu_ri(true, 4, dst, 0xFFFF);
      return true;
    case IrOp::kZext32:
      a_.mov_rr(false, dst, dst);
      return true;

    // --- memory: checked forms (inline probe + miss stub) ------------------
    case IrOp::kLdxB:
      emit_bounds_check(insn, i, src, 1, false);
      a_.load8z(dst, R9, 0);
      return true;
    case IrOp::kLdxH:
      emit_bounds_check(insn, i, src, 2, false);
      a_.load16z(dst, R9, 0);
      return true;
    case IrOp::kLdxW:
      emit_bounds_check(insn, i, src, 4, false);
      a_.load32(dst, R9, 0);
      return true;
    case IrOp::kLdxDw:
      emit_bounds_check(insn, i, src, 8, false);
      a_.load64(dst, R9, 0);
      return true;
    case IrOp::kStxB:
      emit_bounds_check(insn, i, dst, 1, true);
      a_.store8(R9, 0, src);
      return true;
    case IrOp::kStxH:
      emit_bounds_check(insn, i, dst, 2, true);
      a_.store16(R9, 0, src);
      return true;
    case IrOp::kStxW:
      emit_bounds_check(insn, i, dst, 4, true);
      a_.store32(R9, 0, src);
      return true;
    case IrOp::kStxDw:
      emit_bounds_check(insn, i, dst, 8, true);
      a_.store64(R9, 0, src);
      return true;
    case IrOp::kStB:
      emit_bounds_check(insn, i, dst, 1, true);
      a_.store_i8(R9, 0, static_cast<std::uint8_t>(insn.imm));
      return true;
    case IrOp::kStH:
      emit_bounds_check(insn, i, dst, 2, true);
      a_.store_i16(R9, 0, static_cast<std::uint16_t>(insn.imm));
      return true;
    case IrOp::kStW:
      emit_bounds_check(insn, i, dst, 4, true);
      a_.store_i32(R9, 0, imm32);
      return true;
    case IrOp::kStDw:
      if (!fits_i32(insn.imm)) return false;
      emit_bounds_check(insn, i, dst, 8, true);
      a_.store_i32_sext64(R9, 0, imm32);
      return true;

    // --- memory: analyzer-proven forms (check fully elided) ----------------
    case IrOp::kLdxBStk:
      a_.load8z(dst, src, insn.off);
      return true;
    case IrOp::kLdxHStk:
      a_.load16z(dst, src, insn.off);
      return true;
    case IrOp::kLdxWStk:
      a_.load32(dst, src, insn.off);
      return true;
    case IrOp::kLdxDwStk:
      a_.load64(dst, src, insn.off);
      return true;
    case IrOp::kStxBStk:
      a_.store8(dst, insn.off, src);
      return true;
    case IrOp::kStxHStk:
      a_.store16(dst, insn.off, src);
      return true;
    case IrOp::kStxWStk:
      a_.store32(dst, insn.off, src);
      return true;
    case IrOp::kStxDwStk:
      a_.store64(dst, insn.off, src);
      return true;
    case IrOp::kStBStk:
      a_.store_i8(dst, insn.off, static_cast<std::uint8_t>(insn.imm));
      return true;
    case IrOp::kStHStk:
      a_.store_i16(dst, insn.off, static_cast<std::uint16_t>(insn.imm));
      return true;
    case IrOp::kStWStk:
      a_.store_i32(dst, insn.off, imm32);
      return true;
    case IrOp::kStDwStk:
      if (!fits_i32(insn.imm)) return false;
      a_.store_i32_sext64(dst, insn.off, imm32);
      return true;

    // --- conditional jumps -------------------------------------------------
    case IrOp::kJeq64Imm:
    case IrOp::kJne64Imm:
    case IrOp::kJgt64Imm:
    case IrOp::kJge64Imm:
    case IrOp::kJlt64Imm:
    case IrOp::kJle64Imm:
    case IrOp::kJset64Imm:
    case IrOp::kJsgt64Imm:
    case IrOp::kJsge64Imm:
    case IrOp::kJslt64Imm:
    case IrOp::kJsle64Imm:
      if (!fits_i32(insn.imm)) return false;
      [[fallthrough]];
    case IrOp::kJeq64Reg:
    case IrOp::kJne64Reg:
    case IrOp::kJgt64Reg:
    case IrOp::kJge64Reg:
    case IrOp::kJlt64Reg:
    case IrOp::kJle64Reg:
    case IrOp::kJset64Reg:
    case IrOp::kJsgt64Reg:
    case IrOp::kJsge64Reg:
    case IrOp::kJslt64Reg:
    case IrOp::kJsle64Reg:
    case IrOp::kJeq32Imm:
    case IrOp::kJne32Imm:
    case IrOp::kJgt32Imm:
    case IrOp::kJge32Imm:
    case IrOp::kJlt32Imm:
    case IrOp::kJle32Imm:
    case IrOp::kJset32Imm:
    case IrOp::kJsgt32Imm:
    case IrOp::kJsge32Imm:
    case IrOp::kJslt32Imm:
    case IrOp::kJsle32Imm:
    case IrOp::kJeq32Reg:
    case IrOp::kJne32Reg:
    case IrOp::kJgt32Reg:
    case IrOp::kJge32Reg:
    case IrOp::kJlt32Reg:
    case IrOp::kJle32Reg:
    case IrOp::kJset32Reg:
    case IrOp::kJsgt32Reg:
    case IrOp::kJsge32Reg:
    case IrOp::kJslt32Reg:
    case IrOp::kJsle32Reg: {
      // Decode (cc, width, form) from the op's position in its group: ops
      // come in (imm, reg) pairs in eq, ne, gt, ge, lt, le, set, sgt, sge,
      // slt, sle order for each width.
      static constexpr std::uint8_t kCc[11] = {CC_E,  CC_NE, CC_A,  CC_AE, CC_B, CC_BE,
                                               CC_NE, CC_G,  CC_GE, CC_L,  CC_LE};
      const auto op_index = static_cast<std::size_t>(insn.op);
      const auto base64 = static_cast<std::size_t>(IrOp::kJeq64Imm);
      const auto base32 = static_cast<std::size_t>(IrOp::kJeq32Imm);
      const bool is64 = op_index < base32;
      const std::size_t rel = op_index - (is64 ? base64 : base32);
      const std::size_t kind = rel / 2;
      const bool is_imm = (rel % 2) == 0;
      lower_cond_jump(insn, kCc[kind], is64, is_imm, kind == 6);
      return true;
    }
  }
  return false;
}

void Compiler::emit_stubs() {
  // Per-block deopt: refund the whole pre-charge and hand the block's leader
  // index to the shared spill tail; tier 1 re-runs the tail exactly.
  for (const DeoptSite& d : deopts_) {
    a_.patch_rel32(d.fix, a_.pos());
    a_.alu_mem_i32(0, R12, kOffRemaining, static_cast<std::uint32_t>(d.charge));
    a_.mov_ri32(R9, static_cast<std::uint32_t>(d.leader_ir));
    shared_.push_back({a_.jmp32(), Label::kDeopt});
  }
  for (const FaultSite& f : faults_) {
    a_.patch_rel32(f.fix, a_.pos());
    emit_fault_body(f.kind, f.pc, f.detail, f.addback);
  }
  // Helper slow path: the shim already set fault kind/detail (or asked for
  // next()); record the call site's pc and route on the exit code.
  for (const CallSite& c : calls_) {
    a_.patch_rel32(c.fix, a_.pos());
    emit_addback(c.addback);
    a_.store_i32_sext64(R12, kOffFaultPc, static_cast<std::uint32_t>(c.pc));
    a_.alu_ri8(false, 7, RAX, kJitExitNext);  // cmp eax, 1
    shared_.push_back({a_.jcc32(CC_E), Label::kEpNext});
    shared_.push_back({a_.jmp32(), Label::kEpFault});
  }
  // Bounds-check miss: preserve the live caller-saved eBPF registers, ask
  // the MemoryModel, and either refill r9 and resume or fault.
  for (const MemSite& m : mems_) {
    a_.patch_rel32(m.fix_lo, a_.pos());
    a_.patch_rel32(m.fix_hi, a_.pos());
    for (unsigned r : {RAX, RDI, RSI, RDX, RCX, R8}) a_.push(r);  // 48 bytes: stays aligned
    a_.mov_rr(true, RSI, R9);  // addr
    a_.mov_rr(true, RDI, R12);
    a_.mov_ri32(RDX, m.len);
    a_.mov_ri32(RCX, m.write ? 1 : 0);
    a_.movabs(R11, reinterpret_cast<std::uintptr_t>(&probe_shim));
    a_.call_reg(R11);
    a_.alu_rr(false, 0x85, RAX, RAX);
    const std::size_t jfail = a_.jcc32(CC_E);
    for (unsigned r : {R8, RCX, RDX, RSI, RDI, RAX}) a_.pop(r);
    a_.lea(R9, m.base_reg, m.off);
    a_.jmp32_to(m.resume);
    a_.patch_rel32(jfail, a_.pos());
    a_.alu_ri8(true, 0, RSP, 48);  // drop the spilled registers
    emit_fault_body(FaultKind::kBadMemoryAccess, m.pc,
                    m.write ? "memory write out of bounds" : "memory read out of bounds",
                    m.addback);
  }

  // Shared tails. Deopt spills every eBPF register for the interpreter.
  label_off_[static_cast<std::size_t>(Label::kDeopt)] = a_.pos();
  for (std::size_t r = 0; r < kNumRegisters; ++r) {
    a_.store64(R12, kOffRegs + static_cast<std::int32_t>(8 * r), kHostReg[r]);
  }
  a_.store64(R12, kOffDeoptIp, R9);
  a_.mov_ri32(RAX, kJitExitDeopt);
  const std::size_t j1 = a_.jmp32();
  label_off_[static_cast<std::size_t>(Label::kEpOk)] = a_.pos();
  a_.mov_ri32(RAX, kJitExitOk);
  const std::size_t j2 = a_.jmp32();
  label_off_[static_cast<std::size_t>(Label::kEpNext)] = a_.pos();
  a_.mov_ri32(RAX, kJitExitNext);
  const std::size_t j3 = a_.jmp32();
  label_off_[static_cast<std::size_t>(Label::kEpFault)] = a_.pos();
  a_.mov_ri32(RAX, kJitExitFault);
  const std::size_t common = a_.pos();
  a_.alu_ri8(true, 0, RSP, 8);
  for (unsigned r : {R15, R14, R13, R12, RBP, RBX}) a_.pop(r);
  a_.ret();
  a_.patch_rel32(j1, common);
  a_.patch_rel32(j2, common);
  a_.patch_rel32(j3, common);
}

void Compiler::resolve_fixups() {
  for (const JumpFix& j : jumps_) {
    a_.patch_rel32(j.at, insn_off_[static_cast<std::size_t>(j.target_ir)]);
  }
  for (const SharedFix& s : shared_) {
    a_.patch_rel32(s.at, label_off_[static_cast<std::size_t>(s.label)]);
  }
}

bool Compiler::compile() {
  const std::size_t n = ir_.insns.size();
  if (n == 0 || n > (1u << 30)) return false;
  if (!analyze_blocks()) return false;
  emit_prologue();
  insn_off_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Jump targets land on their block's budget pre-charge.
    insn_off_[i] = a_.pos();
    if (leader_[i]) {
      const std::int32_t m = block_len_[i];
      a_.alu_mem_i32(5, R12, kOffRemaining, static_cast<std::uint32_t>(m));
      deopts_.push_back({a_.jcc32(CC_B), static_cast<std::int32_t>(i), m});
    }
    if (!lower(ir_.insns[i], i)) return false;
  }
  emit_stubs();
  resolve_fixups();
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.

bool Jit::supported() noexcept {
#if defined(XBGP_JIT_DISABLED)
  return false;
#elif defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  return true;
#else
  return false;
#endif
}

bool Jit::enabled_by_env() noexcept {
  const char* v = std::getenv("XBGP_JIT");
  if (v == nullptr || v[0] == '\0') return true;
  return std::strcmp(v, "off") != 0 && std::strcmp(v, "OFF") != 0 &&
         std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0;
}

ExecMode Jit::preferred_exec_mode() noexcept {
  return supported() ? ExecMode::kJit : ExecMode::kFast;
}

Jit::Result Jit::compile(const IrProgram& ir, const Options& options) {
  Result result;
  if (!supported()) {
    result.declined = JitFallback::kUnsupportedArch;
    return result;
  }
  if (!enabled_by_env()) {
    result.declined = JitFallback::kDisabled;
    return result;
  }
  Compiler compiler(ir, options);
  if (!compiler.compile()) {
    result.declined = JitFallback::kUnsupportedOp;
    return result;
  }
  const std::vector<std::uint8_t>& code = compiler.code();
  CodeBuf buf = CodeBuf::allocate(code.size());
  if (!buf.valid()) {
    result.declined = JitFallback::kAllocFailed;
    return result;
  }
  std::memcpy(buf.data(), code.data(), code.size());
  if (!buf.finalize()) {
    result.declined = JitFallback::kAllocFailed;
    return result;
  }
  result.program.reset(new JitProgram(std::move(buf), &ir, code.size()));
  return result;
}

// ---------------------------------------------------------------------------
// Vm entry: set up the per-run state block, enter the native image, and fold
// its exit back into a RunResult (or deopt into the tier-1 interpreter).

RunResult Vm::run_jit(const JitProgram& jit, std::uint64_t r1, std::uint64_t r2,
                      std::uint64_t r3, std::uint64_t r4, std::uint64_t r5) {
  JitState st;
  st.remaining = budget_;
  st.stack_top = reinterpret_cast<std::uint64_t>(stack_) + kStackSize;
  st.memory = &memory_;
  st.helpers = helpers_.data();
  st.helper_count = helpers_.size();
  st.helper_calls = &helper_calls_;

  const std::uint32_t exit_code = jit.entry()(&st, r1, r2, r3, r4, r5);

  if (exit_code == kJitExitDeopt) {
    // The block pre-charge overdrew: tier 1 finishes the tail (bounded by
    // remaining < block length) with exact per-instruction accounting.
    return run_translated_from(jit.ir(), st.regs, static_cast<std::size_t>(st.deopt_ip),
                               st.remaining);
  }

  retired_ += budget_ - st.remaining;
  RunResult result;
  switch (exit_code) {
    case kJitExitOk:
      result.value = st.r0_out;
      break;
    case kJitExitNext:
      result.status = RunResult::Status::kNext;
      break;
    default:
      result.status = RunResult::Status::kFault;
      result.fault = Fault{static_cast<FaultKind>(st.fault_kind),
                           static_cast<std::size_t>(st.fault_pc), st.fault_detail};
      break;
  }
  return result;
}

}  // namespace xb::ebpf
