#include "ebpf/codebuf.hpp"

#include <atomic>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define XB_CODEBUF_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define XB_CODEBUF_HAVE_MMAP 0
#endif

namespace xb::ebpf {

namespace {

std::atomic<bool> g_fail_allocations{false};

#if XB_CODEBUF_HAVE_MMAP
std::size_t page_size() noexcept {
  static const std::size_t ps = [] {
    const long v = ::sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{4096};
  }();
  return ps;
}
#endif

}  // namespace

void CodeBuf::set_fail_allocations_for_test(bool fail) noexcept {
  g_fail_allocations.store(fail, std::memory_order_relaxed);
}

CodeBuf CodeBuf::allocate(std::size_t size) {
  CodeBuf buf;
  if (size == 0 || g_fail_allocations.load(std::memory_order_relaxed)) return buf;
#if XB_CODEBUF_HAVE_MMAP
  const std::size_t ps = page_size();
  const std::size_t rounded = (size + ps - 1) / ps * ps;
  if (rounded < size) return buf;  // overflow
  void* p = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return buf;
  buf.data_ = static_cast<std::uint8_t*>(p);
  buf.size_ = rounded;
#endif
  return buf;
}

bool CodeBuf::finalize() noexcept {
#if XB_CODEBUF_HAVE_MMAP
  if (data_ == nullptr || executable_) return executable_;
  if (::mprotect(data_, size_, PROT_READ | PROT_EXEC) != 0) return false;
  executable_ = true;
  return true;
#else
  return false;
#endif
}

CodeBuf::~CodeBuf() {
#if XB_CODEBUF_HAVE_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
}

CodeBuf::CodeBuf(CodeBuf&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      executable_(std::exchange(other.executable_, false)) {}

CodeBuf& CodeBuf::operator=(CodeBuf&& other) noexcept {
  if (this != &other) {
#if XB_CODEBUF_HAVE_MMAP
    if (data_ != nullptr) ::munmap(data_, size_);
#endif
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    executable_ = std::exchange(other.executable_, false);
  }
  return *this;
}

}  // namespace xb::ebpf
