// A small assembler DSL for authoring eBPF programs in C++.
//
// The paper's extensions are C programs compiled with clang to eBPF and then
// loaded from a manifest. This repository has no cross-compiler available, so
// use cases are written against this assembler instead; the output is genuine
// eBPF bytecode (verifier-checked, serialisable to the standard 8-byte image
// format) and the same Program object is loaded into every host.
//
// Example — `return a > b ? 1 : 0`:
//   Assembler a;
//   auto yes = a.make_label();
//   a.jgt(Reg::R1, Reg::R2, yes);
//   a.mov64(Reg::R0, 0);
//   a.exit_();
//   a.place(yes);
//   a.mov64(Reg::R0, 1);
//   a.exit_();
//   Program p = a.build("gt");
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ebpf/insn.hpp"
#include "ebpf/program.hpp"

namespace xb::ebpf {

enum class Reg : std::uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10
};

class Assembler {
 public:
  /// Opaque forward-referenceable jump target.
  class Label {
   public:
    Label() = default;
   private:
    friend class Assembler;
    explicit Label(std::size_t id) : id_(id) {}
    std::size_t id_ = static_cast<std::size_t>(-1);
  };

  [[nodiscard]] Label make_label();
  /// Binds `l` to the next emitted instruction. Each label is placed once.
  void place(Label l);

  // --- 64-bit ALU -----------------------------------------------------------
  Assembler& mov64(Reg dst, Reg src) { return alu(kClsAlu64, kAluMov, dst, src); }
  Assembler& mov64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluMov, dst, imm); }
  Assembler& add64(Reg dst, Reg src) { return alu(kClsAlu64, kAluAdd, dst, src); }
  Assembler& add64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluAdd, dst, imm); }
  Assembler& sub64(Reg dst, Reg src) { return alu(kClsAlu64, kAluSub, dst, src); }
  Assembler& sub64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluSub, dst, imm); }
  Assembler& mul64(Reg dst, Reg src) { return alu(kClsAlu64, kAluMul, dst, src); }
  Assembler& mul64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluMul, dst, imm); }
  Assembler& div64(Reg dst, Reg src) { return alu(kClsAlu64, kAluDiv, dst, src); }
  Assembler& div64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluDiv, dst, imm); }
  Assembler& mod64(Reg dst, Reg src) { return alu(kClsAlu64, kAluMod, dst, src); }
  Assembler& mod64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluMod, dst, imm); }
  Assembler& or64(Reg dst, Reg src) { return alu(kClsAlu64, kAluOr, dst, src); }
  Assembler& or64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluOr, dst, imm); }
  Assembler& and64(Reg dst, Reg src) { return alu(kClsAlu64, kAluAnd, dst, src); }
  Assembler& and64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluAnd, dst, imm); }
  Assembler& xor64(Reg dst, Reg src) { return alu(kClsAlu64, kAluXor, dst, src); }
  Assembler& xor64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluXor, dst, imm); }
  Assembler& lsh64(Reg dst, Reg src) { return alu(kClsAlu64, kAluLsh, dst, src); }
  Assembler& lsh64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluLsh, dst, imm); }
  Assembler& rsh64(Reg dst, Reg src) { return alu(kClsAlu64, kAluRsh, dst, src); }
  Assembler& rsh64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluRsh, dst, imm); }
  Assembler& arsh64(Reg dst, Reg src) { return alu(kClsAlu64, kAluArsh, dst, src); }
  Assembler& arsh64(Reg dst, std::int32_t imm) { return alu(kClsAlu64, kAluArsh, dst, imm); }
  Assembler& neg64(Reg dst) { return alu(kClsAlu64, kAluNeg, dst, std::int32_t{0}); }

  // --- 32-bit ALU (results are zero-extended to 64 bits) ---------------------
  Assembler& mov32(Reg dst, Reg src) { return alu(kClsAlu, kAluMov, dst, src); }
  Assembler& mov32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluMov, dst, imm); }
  Assembler& add32(Reg dst, Reg src) { return alu(kClsAlu, kAluAdd, dst, src); }
  Assembler& add32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluAdd, dst, imm); }
  Assembler& sub32(Reg dst, Reg src) { return alu(kClsAlu, kAluSub, dst, src); }
  Assembler& sub32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluSub, dst, imm); }
  Assembler& mul32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluMul, dst, imm); }
  Assembler& and32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluAnd, dst, imm); }
  Assembler& or32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluOr, dst, imm); }
  Assembler& rsh32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluRsh, dst, imm); }
  Assembler& lsh32(Reg dst, std::int32_t imm) { return alu(kClsAlu, kAluLsh, dst, imm); }

  // --- byte swaps -------------------------------------------------------------
  /// Convert dst to big-endian interpretation of its low `bits` (16/32/64).
  Assembler& to_be(Reg dst, std::int32_t bits);
  Assembler& to_le(Reg dst, std::int32_t bits);

  /// Load a full 64-bit immediate (occupies two instruction slots).
  Assembler& lddw(Reg dst, std::uint64_t imm);

  // --- memory ------------------------------------------------------------------
  Assembler& ldxdw(Reg dst, Reg src, std::int16_t off) { return ldst(op_ldx(kSizeDw), dst, src, off, 0); }
  Assembler& ldxw(Reg dst, Reg src, std::int16_t off) { return ldst(op_ldx(kSizeW), dst, src, off, 0); }
  Assembler& ldxh(Reg dst, Reg src, std::int16_t off) { return ldst(op_ldx(kSizeH), dst, src, off, 0); }
  Assembler& ldxb(Reg dst, Reg src, std::int16_t off) { return ldst(op_ldx(kSizeB), dst, src, off, 0); }
  Assembler& stxdw(Reg dst, std::int16_t off, Reg src) { return ldst(op_stx(kSizeDw), dst, src, off, 0); }
  Assembler& stxw(Reg dst, std::int16_t off, Reg src) { return ldst(op_stx(kSizeW), dst, src, off, 0); }
  Assembler& stxh(Reg dst, std::int16_t off, Reg src) { return ldst(op_stx(kSizeH), dst, src, off, 0); }
  Assembler& stxb(Reg dst, std::int16_t off, Reg src) { return ldst(op_stx(kSizeB), dst, src, off, 0); }
  Assembler& stdw(Reg dst, std::int16_t off, std::int32_t imm) { return ldst(op_st(kSizeDw), dst, Reg::R0, off, imm); }
  Assembler& stw(Reg dst, std::int16_t off, std::int32_t imm) { return ldst(op_st(kSizeW), dst, Reg::R0, off, imm); }
  Assembler& sth(Reg dst, std::int16_t off, std::int32_t imm) { return ldst(op_st(kSizeH), dst, Reg::R0, off, imm); }
  Assembler& stb(Reg dst, std::int16_t off, std::int32_t imm) { return ldst(op_st(kSizeB), dst, Reg::R0, off, imm); }

  // --- control flow -------------------------------------------------------------
  Assembler& ja(Label target) { return jmp(kJmpJa, Reg::R0, std::int32_t{0}, target, false); }
  Assembler& jeq(Reg dst, Reg src, Label t) { return jmp(kJmpJeq, dst, src, t); }
  Assembler& jeq(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJeq, dst, imm, t, false); }
  Assembler& jne(Reg dst, Reg src, Label t) { return jmp(kJmpJne, dst, src, t); }
  Assembler& jne(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJne, dst, imm, t, false); }
  Assembler& jgt(Reg dst, Reg src, Label t) { return jmp(kJmpJgt, dst, src, t); }
  Assembler& jgt(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJgt, dst, imm, t, false); }
  Assembler& jge(Reg dst, Reg src, Label t) { return jmp(kJmpJge, dst, src, t); }
  Assembler& jge(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJge, dst, imm, t, false); }
  Assembler& jlt(Reg dst, Reg src, Label t) { return jmp(kJmpJlt, dst, src, t); }
  Assembler& jlt(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJlt, dst, imm, t, false); }
  Assembler& jle(Reg dst, Reg src, Label t) { return jmp(kJmpJle, dst, src, t); }
  Assembler& jle(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJle, dst, imm, t, false); }
  Assembler& jsgt(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJsgt, dst, imm, t, false); }
  Assembler& jsge(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJsge, dst, imm, t, false); }
  Assembler& jslt(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJslt, dst, imm, t, false); }
  Assembler& jsle(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJsle, dst, imm, t, false); }
  Assembler& jset(Reg dst, std::int32_t imm, Label t) { return jmp(kJmpJset, dst, imm, t, false); }

  /// Call the host helper with the given stable id.
  Assembler& call(std::int32_t helper_id);
  Assembler& exit_();

  /// Resolve all labels and return the finished, relocated program.
  /// Throws std::logic_error on unplaced labels or out-of-range jumps.
  [[nodiscard]] Program build(std::string name) const;

  [[nodiscard]] std::size_t size() const noexcept { return insns_.size(); }

 private:
  Assembler& alu(std::uint8_t cls, std::uint8_t op, Reg dst, Reg src);
  Assembler& alu(std::uint8_t cls, std::uint8_t op, Reg dst, std::int32_t imm);
  Assembler& ldst(std::uint8_t opcode, Reg dst, Reg src, std::int16_t off, std::int32_t imm);
  Assembler& jmp(std::uint8_t op, Reg dst, Reg src, Label target);
  Assembler& jmp(std::uint8_t op, Reg dst, std::int32_t imm, Label target, bool src_is_reg);

  struct Fixup {
    std::size_t insn_index;
    std::size_t label_id;
  };

  std::vector<Insn> insns_;
  std::vector<std::ptrdiff_t> label_positions_;  // -1 until placed
  std::vector<Fixup> fixups_;
  std::set<std::int32_t> helpers_;
};

}  // namespace xb::ebpf
