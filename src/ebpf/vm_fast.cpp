// Tier-1 interpreter: executes the pre-decoded IR produced by Translator.
//
// Dispatch is direct-threaded (computed goto) on GCC/Clang, with a plain
// switch loop behind -DXBGP_SWITCH_DISPATCH (and on compilers without the
// labels-as-values extension). The label table is generated from the same
// XB_IR_OP_LIST X-macro that defines IrOp, so the two cannot drift apart.
//
// Semantics are bit-identical to run_reference in vm.cpp — same results,
// same fault (kind, pc, detail) triples, same helper-call sequences, same
// instruction-budget accounting (one unit per IR instruction; the fused
// lddw costs one, exactly like tier 0's single loop iteration for the
// pair). The differential fuzz gate (tests/ebpf_differential_test.cpp)
// enforces the contract over a mutant corpus and every shipped extension.
#include <bit>
#include <cstring>

#include "ebpf/ir.hpp"
#include "ebpf/opcodes.hpp"
#include "ebpf/vm.hpp"

namespace xb::ebpf {

namespace {

inline std::uint16_t bswap16(std::uint16_t x) {
  return static_cast<std::uint16_t>((x << 8) | (x >> 8));
}

inline std::uint32_t bswap32(std::uint32_t x) {
  return ((x & 0x000000FFu) << 24) | ((x & 0x0000FF00u) << 8) | ((x & 0x00FF0000u) >> 8) |
         ((x & 0xFF000000u) >> 24);
}

inline std::uint64_t bswap64(std::uint64_t x) {
  x = ((x & 0x00000000FFFFFFFFull) << 32) | ((x & 0xFFFFFFFF00000000ull) >> 32);
  x = ((x & 0x0000FFFF0000FFFFull) << 16) | ((x & 0xFFFF0000FFFF0000ull) >> 16);
  x = ((x & 0x00FF00FF00FF00FFull) << 8) | ((x & 0xFF00FF00FF00FF00ull) >> 8);
  return x;
}

}  // namespace

// The handler bodies are shared between both dispatch builds; only the
// XB_OP/XB_NEXT plumbing differs. Every handler either terminates the run
// or ends in XB_NEXT(), which performs the budget check and dispatches the
// instruction `ip` now points at.
#if defined(XBGP_SWITCH_DISPATCH) || !(defined(__GNUC__) || defined(__clang__))
#define XB_FAST_SWITCH 1
#else
#define XB_FAST_SWITCH 0
#endif

RunResult Vm::run_translated(const IrProgram& program, std::uint64_t r1, std::uint64_t r2,
                             std::uint64_t r3, std::uint64_t r4, std::uint64_t r5) {
  std::uint64_t reg[kNumRegisters] = {};
  reg[1] = r1;
  reg[2] = r2;
  reg[3] = r3;
  reg[4] = r4;
  reg[5] = r5;
  // Same stack policy as tier 0: zeroed at construction, not per run.
  reg[kFramePointer] = reinterpret_cast<std::uint64_t>(stack_) + kStackSize;
  return run_translated_from(program, reg, 0, budget_);
}

// Entry at an arbitrary instruction with live register/budget state. Besides
// backing run_translated, this is the JIT deopt target: tier 2 charges the
// budget per basic block and hands the final sub-block tail to this loop,
// whose per-instruction accounting makes exhaustion pc and retired counts
// exact. `retired_ += budget_ - remaining` stays correct across the handoff
// because `remaining` is continuous between the tiers.
RunResult Vm::run_translated_from(const IrProgram& program, const std::uint64_t* entry_regs,
                                  std::size_t start_index, std::uint64_t remaining_budget) {
  const IrInsn* const code = program.insns.data();
  const IrInsn* ip = code + start_index;

  std::uint64_t reg[kNumRegisters];
  std::memcpy(reg, entry_regs, sizeof(reg));

  std::uint64_t remaining = remaining_budget;
  const HelperFn* const helpers = helpers_.data();
  const std::size_t helper_count = helpers_.size();

  RunResult result;

#define XB_FAULT(kind_, msg_)                                                \
  do {                                                                       \
    retired_ += budget_ - remaining;                                         \
    result.status = RunResult::Status::kFault;                               \
    result.fault = Fault{(kind_), static_cast<std::size_t>(ip->pc), (msg_)}; \
    return result;                                                           \
  } while (0)

#if XB_FAST_SWITCH

#define XB_OP(name) case IrOp::name:
#define XB_NEXT() goto dispatch

dispatch:
  if (remaining == 0) goto budget_exhausted;
  --remaining;
  switch (ip->op) {

#else  // computed goto

#define XB_OP(name) lbl_##name:
#define XB_NEXT()                                           \
  do {                                                      \
    if (remaining == 0) goto budget_exhausted;              \
    --remaining;                                            \
    goto* kDispatch[static_cast<std::size_t>(ip->op)];      \
  } while (0)

  static const void* const kDispatch[kIrOpCount] = {
#define XB_IR_OP_LABEL(name) &&lbl_##name,
      XB_IR_OP_LIST(XB_IR_OP_LABEL)
#undef XB_IR_OP_LABEL
  };

  XB_NEXT();

#endif

  // --- control ------------------------------------------------------------

  XB_OP(kNop) { ++ip; }
  XB_NEXT();

  XB_OP(kExit) {
    retired_ += budget_ - remaining;
    result.status = RunResult::Status::kOk;
    result.value = reg[0];
    return result;
  }

  XB_OP(kTrapEnd)
  XB_FAULT(FaultKind::kIllegalInstruction, "fell off the end of the program");

  XB_OP(kCall) {
    const auto id = static_cast<std::size_t>(ip->imm);
    if (id >= helper_count || !helpers[id]) {
      XB_FAULT(FaultKind::kUnknownHelper, "helper not bound");
    }
    ++helper_calls_;
    const HelperResult hr = helpers[id](reg[1], reg[2], reg[3], reg[4], reg[5]);
    if (hr.action == HelperAction::kContinue) {
      reg[0] = hr.value;
      // r1-r5 are clobbered by calls per the eBPF ABI.
      reg[1] = reg[2] = reg[3] = reg[4] = reg[5] = 0;
      ++ip;
    } else if (hr.action == HelperAction::kNext) {
      retired_ += budget_ - remaining;
      result.status = RunResult::Status::kNext;
      return result;
    } else {
      XB_FAULT(FaultKind::kHelperError, hr.error);
    }
  }
  XB_NEXT();

  XB_OP(kJa) { ip = code + ip->jt; }
  XB_NEXT();

  XB_OP(kLddw) {
    reg[ip->dst] = ip->imm;
    ++ip;
  }
  XB_NEXT();

  // --- ALU ----------------------------------------------------------------

#define XB_ALU64(name, expr)                  \
  XB_OP(k##name##64Imm) {                     \
    const std::uint64_t a = reg[ip->dst];     \
    const std::uint64_t b = ip->imm;          \
    reg[ip->dst] = (expr);                    \
    ++ip;                                     \
  }                                           \
  XB_NEXT();                                  \
  XB_OP(k##name##64Reg) {                     \
    const std::uint64_t a = reg[ip->dst];     \
    const std::uint64_t b = reg[ip->src];     \
    reg[ip->dst] = (expr);                    \
    ++ip;                                     \
  }                                           \
  XB_NEXT();

#define XB_ALU32(name, expr)                                           \
  XB_OP(k##name##32Imm) {                                              \
    const auto a = static_cast<std::uint32_t>(reg[ip->dst]);           \
    const auto b = static_cast<std::uint32_t>(ip->imm);                \
    reg[ip->dst] = static_cast<std::uint32_t>(expr);                   \
    ++ip;                                                              \
  }                                                                    \
  XB_NEXT();                                                           \
  XB_OP(k##name##32Reg) {                                              \
    const auto a = static_cast<std::uint32_t>(reg[ip->dst]);           \
    const auto b = static_cast<std::uint32_t>(reg[ip->src]);           \
    reg[ip->dst] = static_cast<std::uint32_t>(expr);                   \
    ++ip;                                                              \
  }                                                                    \
  XB_NEXT();

  XB_ALU64(Add, a + b)
  XB_ALU64(Sub, a - b)
  XB_ALU64(Mul, a * b)
  XB_ALU64(Or, a | b)
  XB_ALU64(And, a & b)
  XB_ALU64(Xor, a ^ b)
  XB_ALU64(Lsh, a << (b & 63))
  XB_ALU64(Rsh, a >> (b & 63))
  XB_ALU64(Arsh, static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> (b & 63)))
  XB_ALU64(Mov, (static_cast<void>(a), b))

  XB_ALU32(Add, a + b)
  XB_ALU32(Sub, a - b)
  XB_ALU32(Mul, a * b)
  XB_ALU32(Or, a | b)
  XB_ALU32(And, a & b)
  XB_ALU32(Xor, a ^ b)
  XB_ALU32(Lsh, a << (b & 31))
  XB_ALU32(Rsh, a >> (b & 31))
  XB_ALU32(Arsh, static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31)))
  XB_ALU32(Mov, (static_cast<void>(a), b))

#undef XB_ALU64
#undef XB_ALU32

  // Division and modulo need the zero check on the register forms; the
  // translator rejects zero immediates (as pass 0 does), so the imm forms
  // divide unconditionally.
  XB_OP(kDiv64Imm) {
    reg[ip->dst] /= ip->imm;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kDiv64Reg) {
    const std::uint64_t b = reg[ip->src];
    if (b == 0) XB_FAULT(FaultKind::kDivisionByZero, "division by zero");
    reg[ip->dst] /= b;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kMod64Imm) {
    reg[ip->dst] %= ip->imm;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kMod64Reg) {
    const std::uint64_t b = reg[ip->src];
    if (b == 0) XB_FAULT(FaultKind::kDivisionByZero, "modulo by zero");
    reg[ip->dst] %= b;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kDiv32Imm) {
    reg[ip->dst] = static_cast<std::uint32_t>(reg[ip->dst]) /
                   static_cast<std::uint32_t>(ip->imm);
    ++ip;
  }
  XB_NEXT();
  XB_OP(kDiv32Reg) {
    const auto b = static_cast<std::uint32_t>(reg[ip->src]);
    if (b == 0) XB_FAULT(FaultKind::kDivisionByZero, "division by zero");
    reg[ip->dst] = static_cast<std::uint32_t>(reg[ip->dst]) / b;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kMod32Imm) {
    reg[ip->dst] = static_cast<std::uint32_t>(reg[ip->dst]) %
                   static_cast<std::uint32_t>(ip->imm);
    ++ip;
  }
  XB_NEXT();
  XB_OP(kMod32Reg) {
    const auto b = static_cast<std::uint32_t>(reg[ip->src]);
    if (b == 0) XB_FAULT(FaultKind::kDivisionByZero, "modulo by zero");
    reg[ip->dst] = static_cast<std::uint32_t>(reg[ip->dst]) % b;
    ++ip;
  }
  XB_NEXT();

  XB_OP(kNeg64) {
    reg[ip->dst] = ~reg[ip->dst] + 1;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kNeg32) {
    reg[ip->dst] =
        static_cast<std::uint32_t>(~static_cast<std::uint32_t>(reg[ip->dst]) + 1);
    ++ip;
  }
  XB_NEXT();

  XB_OP(kBswap16) {
    reg[ip->dst] = bswap16(static_cast<std::uint16_t>(reg[ip->dst]));
    ++ip;
  }
  XB_NEXT();
  XB_OP(kBswap32) {
    reg[ip->dst] = bswap32(static_cast<std::uint32_t>(reg[ip->dst]));
    ++ip;
  }
  XB_NEXT();
  XB_OP(kBswap64) {
    reg[ip->dst] = bswap64(reg[ip->dst]);
    ++ip;
  }
  XB_NEXT();
  XB_OP(kZext16) {
    reg[ip->dst] &= 0xFFFFull;
    ++ip;
  }
  XB_NEXT();
  XB_OP(kZext32) {
    reg[ip->dst] &= 0xFFFFFFFFull;
    ++ip;
  }
  XB_NEXT();

  // --- memory -------------------------------------------------------------
  // The `Stk` forms execute accesses the abstract interpreter proved always
  // in-bounds (analyzer ProofTable: stack accesses inside the 512-byte
  // frame, or non-null helper-returned objects within their contract
  // extent): no runtime check. Checked forms keep the MemoryModel probe.

#define XB_LOAD(name, T)                                                           \
  XB_OP(kLdx##name) {                                                              \
    const std::uint64_t addr = reg[ip->src] + static_cast<std::int64_t>(ip->off);  \
    if (!memory_.check(addr, sizeof(T), /*write=*/false)) {                        \
      XB_FAULT(FaultKind::kBadMemoryAccess, "memory read out of bounds");          \
    }                                                                              \
    T v;                                                                           \
    std::memcpy(&v, reinterpret_cast<const void*>(addr), sizeof(T));               \
    reg[ip->dst] = v;                                                              \
    ++ip;                                                                          \
  }                                                                                \
  XB_NEXT();

#define XB_LOAD_STK(name, T)                                                       \
  XB_OP(kLdx##name##Stk) {                                                         \
    const std::uint64_t addr = reg[ip->src] + static_cast<std::int64_t>(ip->off);  \
    T v;                                                                           \
    std::memcpy(&v, reinterpret_cast<const void*>(addr), sizeof(T));               \
    reg[ip->dst] = v;                                                              \
    ++ip;                                                                          \
  }                                                                                \
  XB_NEXT();

#define XB_STORE(name, T, value_expr)                                              \
  XB_OP(name) {                                                                    \
    const std::uint64_t addr = reg[ip->dst] + static_cast<std::int64_t>(ip->off);  \
    if (!memory_.check(addr, sizeof(T), /*write=*/true)) {                         \
      XB_FAULT(FaultKind::kBadMemoryAccess, "memory write out of bounds");         \
    }                                                                              \
    const T v = static_cast<T>(value_expr);                                        \
    std::memcpy(reinterpret_cast<void*>(addr), &v, sizeof(T));                     \
    ++ip;                                                                          \
  }                                                                                \
  XB_NEXT();

#define XB_STORE_STK(name, T, value_expr)                                          \
  XB_OP(name) {                                                                    \
    const std::uint64_t addr = reg[ip->dst] + static_cast<std::int64_t>(ip->off);  \
    const T v = static_cast<T>(value_expr);                                        \
    std::memcpy(reinterpret_cast<void*>(addr), &v, sizeof(T));                     \
    ++ip;                                                                          \
  }                                                                                \
  XB_NEXT();

  XB_LOAD(B, std::uint8_t)
  XB_LOAD(H, std::uint16_t)
  XB_LOAD(W, std::uint32_t)
  XB_LOAD(Dw, std::uint64_t)
  XB_LOAD_STK(B, std::uint8_t)
  XB_LOAD_STK(H, std::uint16_t)
  XB_LOAD_STK(W, std::uint32_t)
  XB_LOAD_STK(Dw, std::uint64_t)

  XB_STORE(kStxB, std::uint8_t, reg[ip->src])
  XB_STORE(kStxH, std::uint16_t, reg[ip->src])
  XB_STORE(kStxW, std::uint32_t, reg[ip->src])
  XB_STORE(kStxDw, std::uint64_t, reg[ip->src])
  XB_STORE_STK(kStxBStk, std::uint8_t, reg[ip->src])
  XB_STORE_STK(kStxHStk, std::uint16_t, reg[ip->src])
  XB_STORE_STK(kStxWStk, std::uint32_t, reg[ip->src])
  XB_STORE_STK(kStxDwStk, std::uint64_t, reg[ip->src])

  XB_STORE(kStB, std::uint8_t, ip->imm)
  XB_STORE(kStH, std::uint16_t, ip->imm)
  XB_STORE(kStW, std::uint32_t, ip->imm)
  XB_STORE(kStDw, std::uint64_t, ip->imm)
  XB_STORE_STK(kStBStk, std::uint8_t, ip->imm)
  XB_STORE_STK(kStHStk, std::uint16_t, ip->imm)
  XB_STORE_STK(kStWStk, std::uint32_t, ip->imm)
  XB_STORE_STK(kStDwStk, std::uint64_t, ip->imm)

#undef XB_LOAD
#undef XB_LOAD_STK
#undef XB_STORE
#undef XB_STORE_STK

  // --- conditional jumps --------------------------------------------------

#define XB_JMP64(name, cond)                  \
  XB_OP(kJ##name##64Imm) {                    \
    const std::uint64_t a = reg[ip->dst];     \
    const std::uint64_t b = ip->imm;          \
    ip = (cond) ? code + ip->jt : ip + 1;     \
  }                                           \
  XB_NEXT();                                  \
  XB_OP(kJ##name##64Reg) {                    \
    const std::uint64_t a = reg[ip->dst];     \
    const std::uint64_t b = reg[ip->src];     \
    ip = (cond) ? code + ip->jt : ip + 1;     \
  }                                           \
  XB_NEXT();

#define XB_JMP32(name, cond)                                   \
  XB_OP(kJ##name##32Imm) {                                     \
    const auto a = static_cast<std::uint32_t>(reg[ip->dst]);   \
    const auto b = static_cast<std::uint32_t>(ip->imm);        \
    ip = (cond) ? code + ip->jt : ip + 1;                      \
  }                                                            \
  XB_NEXT();                                                   \
  XB_OP(kJ##name##32Reg) {                                     \
    const auto a = static_cast<std::uint32_t>(reg[ip->dst]);   \
    const auto b = static_cast<std::uint32_t>(reg[ip->src]);   \
    ip = (cond) ? code + ip->jt : ip + 1;                      \
  }                                                            \
  XB_NEXT();

  XB_JMP64(eq, a == b)
  XB_JMP64(ne, a != b)
  XB_JMP64(gt, a > b)
  XB_JMP64(ge, a >= b)
  XB_JMP64(lt, a < b)
  XB_JMP64(le, a <= b)
  XB_JMP64(set, (a & b) != 0)
  XB_JMP64(sgt, static_cast<std::int64_t>(a) > static_cast<std::int64_t>(b))
  XB_JMP64(sge, static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b))
  XB_JMP64(slt, static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b))
  XB_JMP64(sle, static_cast<std::int64_t>(a) <= static_cast<std::int64_t>(b))

  XB_JMP32(eq, a == b)
  XB_JMP32(ne, a != b)
  XB_JMP32(gt, a > b)
  XB_JMP32(ge, a >= b)
  XB_JMP32(lt, a < b)
  XB_JMP32(le, a <= b)
  XB_JMP32(set, (a & b) != 0)
  XB_JMP32(sgt, static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b))
  XB_JMP32(sge, static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b))
  XB_JMP32(slt, static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b))
  XB_JMP32(sle, static_cast<std::int32_t>(a) <= static_cast<std::int32_t>(b))

#undef XB_JMP64
#undef XB_JMP32

#if XB_FAST_SWITCH
  }
#endif

budget_exhausted:
  // `ip` points at the instruction that was about to execute — the same pc
  // tier 0 reports.
  XB_FAULT(FaultKind::kBudgetExhausted, "instruction budget exhausted");

#undef XB_FAULT
#undef XB_OP
#undef XB_NEXT
}

}  // namespace xb::ebpf
