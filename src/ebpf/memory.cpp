#include "ebpf/memory.hpp"

#include <sstream>

namespace xb::ebpf {

std::string MemoryModel::describe_fault(std::uint64_t addr, std::size_t len, bool write) const {
  std::ostringstream os;
  os << (write ? "store" : "load") << " of " << len << " bytes at 0x" << std::hex << addr
     << std::dec << " outside the " << regions_.size() << " registered region(s)";
  for (const auto& r : regions_) {
    os << " [" << r.tag << ": 0x" << std::hex << r.base << "+0x" << r.size << std::dec
       << (r.writable ? " rw" : " ro") << "]";
  }
  return os.str();
}

}  // namespace xb::ebpf
