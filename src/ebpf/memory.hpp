// Region-based memory isolation for the eBPF interpreter.
//
// Every load and store executed by extension bytecode is checked against a
// table of registered regions. A VM only ever has regions for: its own stack,
// the per-invocation ephemeral arena, and its program's persistent arena.
// Host implementation memory is never registered, so extension code cannot
// read or write it — the isolation property §2.1 of the paper relies on.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace xb::ebpf {

class MemoryModel {
 public:
  struct Region {
    std::uintptr_t base = 0;
    std::size_t size = 0;
    bool writable = false;
    std::string tag;  // for fault diagnostics
  };

  /// Registers [base, base+size) with the given permission. Regions may be
  /// added and dropped between runs; they must not be mutated mid-run.
  void add_region(const void* base, std::size_t size, bool writable, std::string tag) {
    regions_.push_back(
        Region{reinterpret_cast<std::uintptr_t>(base), size, writable, std::move(tag)});
  }

  /// Marks the current region set as the permanent base (e.g. the VM stack).
  /// reset_to_base() drops everything added after this point.
  void mark_base() noexcept { base_count_ = regions_.size(); }

  /// Drops all regions registered since mark_base(). Called by the VMM
  /// between invocations so per-run arenas never leak across executions.
  void reset_to_base() noexcept {
    regions_.resize(base_count_);
    last_hit_ = 0;
  }

  void clear() noexcept {
    regions_.clear();
    base_count_ = 0;
    last_hit_ = 0;
  }

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }

  /// True if [addr, addr+len) lies entirely inside one registered region with
  /// sufficient permission. Hot path: the most recently matched region is
  /// probed first (accesses cluster strongly by region).
  [[nodiscard]] bool check(std::uint64_t addr, std::size_t len, bool write) const noexcept {
    return lookup(addr, len, write) != nullptr;
  }

  /// check(), but returns the containing region so the caller can cache its
  /// bounds (the JIT's inline two-compare probe). The pointer is valid until
  /// the region table is next mutated.
  [[nodiscard]] const Region* lookup(std::uint64_t addr, std::size_t len,
                                     bool write) const noexcept {
    if (last_hit_ < regions_.size() && fits(regions_[last_hit_], addr, len, write)) {
      return &regions_[last_hit_];
    }
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      if (fits(regions_[i], addr, len, write)) {
        last_hit_ = i;
        return &regions_[i];
      }
    }
    return nullptr;
  }

  /// Human-readable description of why an access faulted.
  [[nodiscard]] std::string describe_fault(std::uint64_t addr, std::size_t len, bool write) const;

 private:
  static bool fits(const Region& r, std::uint64_t addr, std::size_t len, bool write) noexcept {
    return addr >= r.base && len <= r.size && addr - r.base <= r.size - len &&
           (!write || r.writable);
  }

  std::vector<Region> regions_;
  std::size_t base_count_ = 0;
  mutable std::size_t last_hit_ = 0;
};

}  // namespace xb::ebpf
