// A verified-loadable eBPF program image.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ebpf/insn.hpp"

namespace xb::ebpf {

/// An immutable eBPF program: the instruction stream plus metadata describing
/// what the program needs from its host (helper functions, by id).
///
/// A Program carries no host state; the same Program object can be attached
/// to any number of virtual machines in any number of hosts — this is how the
/// paper runs identical bytecode on FRRouting and BIRD.
class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Insn> insns, std::set<std::int32_t> required_helpers)
      : name_(std::move(name)),
        insns_(std::move(insns)),
        required_helpers_(std::move(required_helpers)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Insn>& insns() const noexcept { return insns_; }
  [[nodiscard]] const std::set<std::int32_t>& required_helpers() const noexcept {
    return required_helpers_;
  }
  [[nodiscard]] bool empty() const noexcept { return insns_.empty(); }

  /// The canonical byte image (clang/ubpf object layout). Byte-for-byte equal
  /// images mean byte-for-byte equal behaviour across hosts.
  [[nodiscard]] std::vector<std::uint8_t> image() const { return serialize(insns_); }

 private:
  std::string name_;
  std::vector<Insn> insns_;
  std::set<std::int32_t> required_helpers_;
};

}  // namespace xb::ebpf
