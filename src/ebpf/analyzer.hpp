// Abstract-interpretation analyzer for eBPF programs — verifier pass 1+.
//
// The structural `Verifier` (pass 0) guarantees the instruction stream is
// well-formed; this analyzer proves value-level safety properties before a
// program may attach.  It runs three cooperating abstract domains over a
// worklist fixpoint with widening at loop heads:
//
//   * a value-range (interval) domain on every register, with branch
//     refinement on immediate comparisons,
//   * a region / points-to domain classifying every pointer as stack,
//     context object, helper-returned attribute buffer, or plain scalar —
//     seeded from per-helper contracts (arity, returned-object extent,
//     writability, nullability),
//   * a taint domain marking wire-derived values (attribute bytes, message
//     arguments, their lengths) so tainted arithmetic flowing into memory
//     offsets or helper size arguments is flagged.  Taint survives a stack
//     round-trip: a per-byte frame map records every slot a tainted scalar
//     was ever spilled to, and reloads from those bytes come back tainted.
//     The map is flow-insensitive (bits never clear), so reusing a
//     once-tainted slot for clean data can over-warn; taint written through
//     helper out-parameters or object buffers is NOT tracked — those
//     diagnostics remain best-effort.
//
// The proofs the domains establish are published as a per-instruction
// `ProofTable`: for each memory operation the proven base region, the offset
// hull of the access window and its alignment, and whether the runtime
// bounds check is provably redundant; for each helper call the proven
// argument ranges.  The execution-engine translator consumes the table to
// elide checks, and the future native tier will consume the same artifact.
//
// Findings are structured diagnostics with a severity: errors make the
// program unloadable, warnings (unreachable code, dead stores, misaligned
// stack access, tainted offsets, unchecked helper returns) are reported but
// do not block attachment.  Whatever the analyzer cannot prove stays
// deferred to the interpreter's memory model — the runtime backstop.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ebpf/program.hpp"

namespace xb::ebpf {

enum class Severity : std::uint8_t { kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

/// One analyzer finding, anchored to an instruction.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::size_t insn_index = 0;
  int reg = -1;  // register involved, -1 when not register-specific
  std::string reason;

  /// e.g. "error at insn 5 (r3): read of uninitialized register"
  [[nodiscard]] std::string to_string() const;
};

/// Region classification for the base pointer of a memory operation.
enum class Region : std::uint8_t {
  kNone,     // not a memory operation
  kStack,    // r10-relative access into the 512-byte frame
  kCtx,      // helper-returned context object (peer info, nexthop, alloc)
  kAttr,     // helper-returned attribute / wire-data buffer
  kUnknown,  // base is a scalar or mixed-provenance pointer
};

[[nodiscard]] constexpr const char* to_string(Region r) {
  switch (r) {
    case Region::kStack: return "stack";
    case Region::kCtx: return "ctx";
    case Region::kAttr: return "attr";
    case Region::kUnknown: return "unknown";
    case Region::kNone: break;
  }
  return "-";
}

/// Per-instruction proofs the abstract interpreter established, consumed by
/// the execution-engine translator's check-elision pass (and, eventually,
/// the native tier).  `mem` has one row per bytecode slot; rows for slots
/// that are not memory operations keep `region == Region::kNone`.  The whole
/// table is empty when the program was rejected: facts from a failed
/// analysis must never drive elision.
struct ProofTable {
  struct MemFact {
    Region region = Region::kNone;  // proven base-pointer region
    std::int64_t lo = 0;            // proven access window [lo, hi) ...
    std::int64_t hi = 0;            // ... relative to the region base
    std::uint8_t align = 1;         // proven offset alignment (power of two)
    bool elide = false;             // window proven in-bounds: check droppable
  };
  struct CallFact {
    std::int32_t helper = -1;
    std::uint8_t arity = 0;               // argument slots proven below
    std::array<std::int64_t, 5> arg_lo{};  // proven range of r1..r5 ...
    std::array<std::int64_t, 5> arg_hi{};  // ... at the call site
  };

  std::vector<MemFact> mem;              // one row per bytecode slot
  std::map<std::size_t, CallFact> calls;  // keyed by call-insn index

  [[nodiscard]] bool covers(std::size_t n) const noexcept {
    return mem.size() == n;
  }
  [[nodiscard]] bool empty() const noexcept { return mem.empty(); }
  [[nodiscard]] std::size_t elidable() const noexcept {
    std::size_t n = 0;
    for (const auto& f : mem) n += f.elide;
    return n;
  }
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;  // sorted by instruction index
  ProofTable facts;                     // per-instruction proofs (ok() only)

  [[nodiscard]] bool ok() const noexcept;  // true when no error-severity finding
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] const Diagnostic* first_error() const noexcept;
};

/// What the analyzer may assume about one helper, beyond its arity.  The
/// table is part of the trusted base exactly like the arity table: every
/// claim must hold for the helpers actually bound at run time, because a
/// proven fact built on it can remove a runtime check.
struct HelperContract {
  /// r0 after the call is either 0 or a pointer into a registered region.
  bool returns_pointer = false;
  /// Region class of a non-null return (kCtx or kAttr).
  Region region = Region::kCtx;
  /// Bytes guaranteed dereferenceable behind a non-null return (0: unknown).
  std::uint32_t extent = 0;
  /// The returned object is exactly `extent` bytes (fixed-layout context
  /// structs); accesses past it are flagged even though the surrounding
  /// arena region may make the runtime check pass.
  bool exact_extent = false;
  /// The pointed-to region is writable (stores may be elided).
  bool writable = false;
  /// The helper can return 0; dereferences need a dominating null check.
  bool may_return_null = true;
  /// The pointed-to bytes are wire-derived (taint source).
  bool tainted_data = false;
  /// The scalar return value is wire-derived (taint source).
  bool tainted_return = false;
  /// Bit i set: argument r(i+1) is a size/length the helper consumes raw —
  /// a tainted, unbounded value flowing in is flagged.
  std::uint8_t size_arg_mask = 0;
  /// Non-null extent equals the (singleton) value of r1 / r2 at the call
  /// (ctx_malloc(size) / shm_new(key, size)).
  bool extent_from_arg1 = false;
  bool extent_from_arg2 = false;
};

class Analyzer {
 public:
  struct Options {
    /// Argument count per helper id: r1..r<arity> must hold initialized
    /// values at the call site.  Unknown ids default to arity 0 (no
    /// argument requirement) — conservative towards acceptance, since the
    /// helper whitelist was already enforced by pass 0.
    std::map<std::int32_t, int> helper_arity;
    /// Pointer/taint contracts per helper id.  Unknown ids default to an
    /// opaque scalar return — sound, because every dereference of an
    /// unproven pointer keeps its runtime check.
    std::map<std::int32_t, HelperContract> helper_contracts;
    /// When false, warning-severity findings are suppressed (errors are
    /// always reported).
    bool warnings = true;
  };

  /// Runs the full pipeline: structural pass 0, CFG construction, abstract
  /// interpretation, and the loop-bound induction check.  Never throws on
  /// bad bytecode — badness comes back as diagnostics.
  [[nodiscard]] static AnalysisResult analyze(const Program& program,
                                              const std::set<std::int32_t>& allowed_helpers,
                                              const Options& options);
  [[nodiscard]] static AnalysisResult analyze(const Program& program,
                                              const std::set<std::int32_t>& allowed_helpers);
};

}  // namespace xb::ebpf
