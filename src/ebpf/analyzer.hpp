// Abstract-interpretation analyzer for eBPF programs — verifier pass 1+.
//
// The structural `Verifier` (pass 0) guarantees the instruction stream is
// well-formed; this analyzer proves value-level safety properties before a
// program may attach:
//
//   * every register is written before it is read,
//   * r10-relative memory accesses stay inside the 512-byte stack frame
//     (misaligned accesses are flagged as warnings — packed wire buffers
//     are legitimate),
//   * helper calls receive initialized arguments, clobber r1-r5 and
//     define r0 (per the eBPF calling convention),
//   * r0 carries a value at every `exit`,
//   * every loop has a monotone induction register and a dominating exit
//     test, so its trip count is bounded.
//
// Findings are structured diagnostics with a severity: errors make the
// program unloadable, warnings (unreachable code, dead stores, misaligned
// stack access) are reported but do not block attachment.  Accesses through
// helper-returned pointers are deferred to the interpreter's memory model,
// which stays in place as the runtime backstop.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ebpf/program.hpp"

namespace xb::ebpf {

enum class Severity : std::uint8_t { kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

/// One analyzer finding, anchored to an instruction.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::size_t insn_index = 0;
  int reg = -1;  // register involved, -1 when not register-specific
  std::string reason;

  /// e.g. "error at insn 5 (r3): read of uninitialized register"
  [[nodiscard]] std::string to_string() const;
};

/// Value-level facts the abstract interpreter proved per instruction,
/// consumed by the execution-engine translator's check-elision pass.
/// `stack_safe[i]` is nonzero when instruction i is a load or store whose
/// base register is provably a stack pointer and whose whole access window
/// — the hull of the offset interval across every path reaching i — lies
/// inside the 512-byte frame, so the runtime bounds check may be dropped.
/// Empty when the program was rejected: facts from a failed analysis must
/// never drive elision.
struct SafetyFacts {
  std::vector<std::uint8_t> stack_safe;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;  // sorted by instruction index
  SafetyFacts facts;                    // per-instruction proofs (ok() only)

  [[nodiscard]] bool ok() const noexcept;  // true when no error-severity finding
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] const Diagnostic* first_error() const noexcept;
};

class Analyzer {
 public:
  struct Options {
    /// Argument count per helper id: r1..r<arity> must hold initialized
    /// values at the call site.  Unknown ids default to arity 0 (no
    /// argument requirement) — conservative towards acceptance, since the
    /// helper whitelist was already enforced by pass 0.
    std::map<std::int32_t, int> helper_arity;
    /// When false, warning-severity findings are suppressed (errors are
    /// always reported).
    bool warnings = true;
  };

  /// Runs the full pipeline: structural pass 0, CFG construction, abstract
  /// interpretation, and the loop-bound induction check.  Never throws on
  /// bad bytecode — badness comes back as diagnostics.
  [[nodiscard]] static AnalysisResult analyze(const Program& program,
                                              const std::set<std::int32_t>& allowed_helpers,
                                              const Options& options);
  [[nodiscard]] static AnalysisResult analyze(const Program& program,
                                              const std::set<std::int32_t>& allowed_helpers);
};

}  // namespace xb::ebpf
