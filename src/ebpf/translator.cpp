#include "ebpf/translator.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "ebpf/opcodes.hpp"

namespace xb::ebpf {

namespace {

constexpr bool kHostIsLittleEndian = std::endian::native == std::endian::little;

[[noreturn]] void bad(const char* what) {
  throw std::invalid_argument(std::string("translator: ") + what +
                              " (program is not pass-0 valid)");
}

IrOp ir_plus(IrOp base, int delta) {
  return static_cast<IrOp>(static_cast<int>(base) + delta);
}

int size_log2(std::uint8_t op) {
  switch (op & 0x18) {
    case kSizeB: return 0;
    case kSizeH: return 1;
    case kSizeW: return 2;
    default: return 3;  // kSizeDw
  }
}

// Maps an ALU operation nibble to the IR op for the imm form; the reg form
// is always the next enum entry (the XB_IR_OP_LIST ordering guarantees it).
IrOp alu_base(std::uint8_t aluop, bool is64) {
  switch (aluop) {
    case kAluAdd: return is64 ? IrOp::kAdd64Imm : IrOp::kAdd32Imm;
    case kAluSub: return is64 ? IrOp::kSub64Imm : IrOp::kSub32Imm;
    case kAluMul: return is64 ? IrOp::kMul64Imm : IrOp::kMul32Imm;
    case kAluDiv: return is64 ? IrOp::kDiv64Imm : IrOp::kDiv32Imm;
    case kAluMod: return is64 ? IrOp::kMod64Imm : IrOp::kMod32Imm;
    case kAluOr: return is64 ? IrOp::kOr64Imm : IrOp::kOr32Imm;
    case kAluAnd: return is64 ? IrOp::kAnd64Imm : IrOp::kAnd32Imm;
    case kAluXor: return is64 ? IrOp::kXor64Imm : IrOp::kXor32Imm;
    case kAluLsh: return is64 ? IrOp::kLsh64Imm : IrOp::kLsh32Imm;
    case kAluRsh: return is64 ? IrOp::kRsh64Imm : IrOp::kRsh32Imm;
    case kAluArsh: return is64 ? IrOp::kArsh64Imm : IrOp::kArsh32Imm;
    case kAluMov: return is64 ? IrOp::kMov64Imm : IrOp::kMov32Imm;
    default: bad("unknown ALU operation");
  }
}

// Condition order matches the IR jump blocks: each condition contributes an
// adjacent (imm, reg) pair starting at kJeq{64,32}Imm.
int jmp_cond_index(std::uint8_t jop) {
  switch (jop) {
    case kJmpJeq: return 0;
    case kJmpJne: return 1;
    case kJmpJgt: return 2;
    case kJmpJge: return 3;
    case kJmpJlt: return 4;
    case kJmpJle: return 5;
    case kJmpJset: return 6;
    case kJmpJsgt: return 7;
    case kJmpJsge: return 8;
    case kJmpJslt: return 9;
    case kJmpJsle: return 10;
    default: return -1;
  }
}

}  // namespace

IrProgram Translator::translate(const Program& program, const ProofTable* facts) {
  const std::vector<Insn>& insns = program.insns();
  const std::size_t n = insns.size();

  // Facts must cover every bytecode slot; a stale or mismatched table
  // (e.g. from a different program revision) silently disables elision
  // rather than eliding on the wrong instruction.
  const bool use_facts = facts != nullptr && facts->covers(n);
  auto account = [&](IrProgram& out, std::size_t i) -> bool {
    const bool elide = use_facts && facts->mem[i].elide;
    if (elide) {
      ++out.elided_checks;
      if (facts->mem[i].region != Region::kStack) ++out.elided_obj_checks;
    } else {
      ++out.checked_accesses;
    }
    return elide;
  };

  // Pass 1: bytecode index -> IR index. lddw tails collapse into their head
  // and keep -1 so jumps into them are detectable.
  std::vector<std::int32_t> ir_index(n, -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ir_index[i] = next++;
    if (insns[i].opcode == kOpLddw) {
      if (i + 1 >= n) bad("lddw missing second slot");
      ++i;  // tail slot keeps ir_index == -1
    }
  }

  IrProgram out;
  out.source_len = n;
  out.insns.reserve(static_cast<std::size_t>(next) + 1);

  auto resolve_jump = [&](std::size_t i, std::int16_t offset) -> std::int32_t {
    const std::ptrdiff_t target = static_cast<std::ptrdiff_t>(i) + 1 + offset;
    if (target < 0 || target >= static_cast<std::ptrdiff_t>(n)) {
      bad("jump target out of bounds");
    }
    const std::int32_t t = ir_index[static_cast<std::size_t>(target)];
    if (t < 0) bad("jump into the middle of lddw");
    return t;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Insn& insn = insns[i];
    IrInsn ir;
    ir.dst = insn.dst;
    ir.src = insn.src;
    ir.pc = static_cast<std::int32_t>(i);
    const std::uint8_t cls = insn.cls();

    switch (cls) {
      case kClsAlu:
      case kClsAlu64: {
        const bool is64 = cls == kClsAlu64;
        const std::uint8_t aluop = insn.opcode & 0xf0;
        const bool reg_form = (insn.opcode & kSrcX) != 0;
        if (aluop == kAluNeg) {
          ir.op = is64 ? IrOp::kNeg64 : IrOp::kNeg32;
          break;
        }
        if (aluop == kAluEnd) {
          if (is64) bad("byte swap is only valid in the 32-bit ALU class");
          // kSrcX = to big-endian, kSrcK = to little-endian; resolved here
          // against the host so the hot loop never asks.
          const bool need_swap = kHostIsLittleEndian == reg_form;
          switch (insn.imm) {
            case 16: ir.op = need_swap ? IrOp::kBswap16 : IrOp::kZext16; break;
            case 32: ir.op = need_swap ? IrOp::kBswap32 : IrOp::kZext32; break;
            case 64: ir.op = need_swap ? IrOp::kBswap64 : IrOp::kNop; break;
            default: bad("byte swap width must be 16/32/64");
          }
          break;
        }
        if (!reg_form && (aluop == kAluDiv || aluop == kAluMod) && insn.imm == 0) {
          bad("division by zero immediate");
        }
        ir.op = ir_plus(alu_base(aluop, is64), reg_form ? 1 : 0);
        if (!reg_form) {
          const bool shift = aluop == kAluLsh || aluop == kAluRsh || aluop == kAluArsh;
          if (is64) {
            ir.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(insn.imm));
            if (shift) ir.imm &= 63;
          } else {
            ir.imm = static_cast<std::uint32_t>(insn.imm);
            if (shift) ir.imm &= 31;
          }
        }
        break;
      }

      case kClsLd: {
        if (insn.opcode != kOpLddw) bad("unsupported LD-class opcode");
        // Tail slot presence was validated in pass 1; fuse the 64-bit
        // immediate. Budget parity: tier 0 charges one unit for the pair,
        // and so does the single fused IR instruction.
        const std::uint64_t lo = static_cast<std::uint32_t>(insn.imm);
        const std::uint64_t hi = static_cast<std::uint32_t>(insns[i + 1].imm);
        ir.op = IrOp::kLddw;
        ir.imm = lo | (hi << 32);
        out.insns.push_back(ir);
        ++i;  // consume the tail slot
        continue;
      }

      case kClsLdx: {
        if ((insn.opcode & 0xe0) != kModeMem) bad("unsupported LDX mode");
        const bool elide = account(out, i);
        ir.op = ir_plus(IrOp::kLdxB, size_log2(insn.opcode) + (elide ? 4 : 0));
        ir.off = insn.offset;
        break;
      }

      case kClsSt:
      case kClsStx: {
        if ((insn.opcode & 0xe0) != kModeMem) bad("unsupported store mode");
        const bool elide = account(out, i);
        const IrOp base = cls == kClsStx ? IrOp::kStxB : IrOp::kStB;
        ir.op = ir_plus(base, size_log2(insn.opcode) + (elide ? 4 : 0));
        ir.off = insn.offset;
        if (cls == kClsSt) {
          ir.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(insn.imm));
        }
        break;
      }

      case kClsJmp: {
        const std::uint8_t jop = insn.opcode & 0xf0;
        if (jop == kJmpExit) {
          ir.op = IrOp::kExit;
          break;
        }
        if (jop == kJmpCall) {
          ir.op = IrOp::kCall;
          // A negative id sign-extends to a huge index, which the runtime
          // rejects as kUnknownHelper — identical to tier 0's id < 0 path.
          ir.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(insn.imm));
          break;
        }
        if (jop == kJmpJa) {
          ir.op = IrOp::kJa;
          ir.jt = resolve_jump(i, insn.offset);
          break;
        }
        const int cond = jmp_cond_index(jop);
        if (cond < 0) bad("unknown JMP operation");
        const bool reg_form = (insn.opcode & kSrcX) != 0;
        ir.op = ir_plus(IrOp::kJeq64Imm, cond * 2 + (reg_form ? 1 : 0));
        if (!reg_form) {
          ir.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(insn.imm));
        }
        ir.jt = resolve_jump(i, insn.offset);
        break;
      }

      case kClsJmp32: {
        const std::uint8_t jop = insn.opcode & 0xf0;
        const int cond = jmp_cond_index(jop);
        if (cond < 0 || jop == kJmpJa) bad("unsupported JMP32 operation");
        const bool reg_form = (insn.opcode & kSrcX) != 0;
        ir.op = ir_plus(IrOp::kJeq32Imm, cond * 2 + (reg_form ? 1 : 0));
        if (!reg_form) ir.imm = static_cast<std::uint32_t>(insn.imm);
        ir.jt = resolve_jump(i, insn.offset);
        break;
      }

      default:
        bad("unknown instruction class");
    }
    out.insns.push_back(ir);
  }

  // Defensive sentinel. Pass 0 forbids falling off the end, so this is
  // unreachable for verified programs; if an unverified one gets here the
  // fault matches tier 0's report at pc == program length.
  IrInsn sentinel;
  sentinel.op = IrOp::kTrapEnd;
  sentinel.pc = static_cast<std::int32_t>(n);
  out.insns.push_back(sentinel);
  return out;
}

}  // namespace xb::ebpf
