#include "ebpf/verifier.hpp"

#include <vector>

#include "ebpf/opcodes.hpp"

namespace xb::ebpf {

namespace {

bool valid_alu_op(std::uint8_t op, std::uint8_t cls) {
  switch (op) {
    case kAluAdd: case kAluSub: case kAluMul: case kAluDiv: case kAluOr:
    case kAluAnd: case kAluLsh: case kAluRsh: case kAluNeg: case kAluMod:
    case kAluXor: case kAluMov: case kAluArsh:
      return true;
    case kAluEnd:
      // Byte swap is encoded only in the 32-bit ALU class; 0xd7/0xdf
      // (ALU64|END) are not instructions in this ISA subset.
      return cls == kClsAlu;
    default:
      return false;
  }
}

bool valid_jmp_op(std::uint8_t op) {
  switch (op) {
    case kJmpJa: case kJmpJeq: case kJmpJgt: case kJmpJge: case kJmpJset:
    case kJmpJne: case kJmpJsgt: case kJmpJsge: case kJmpCall: case kJmpExit:
    case kJmpJlt: case kJmpJle: case kJmpJslt: case kJmpJsle:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::optional<VerifyError> Verifier::verify(const Program& program,
                                            const std::set<std::int32_t>& allowed_helpers) {
  const auto& insns = program.insns();
  const std::size_t n = insns.size();
  if (n == 0) return VerifyError{0, "empty program"};
  if (n > kMaxInsns) return VerifyError{0, "program exceeds instruction limit"};

  // First pass: mark the second slots of lddw so jump-target checks can
  // reject branches into them.
  std::vector<bool> is_lddw_tail(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_lddw_tail[i]) continue;
    if (insns[i].opcode == kOpLddw) {
      if (i + 1 >= n) return VerifyError{i, "lddw missing second slot"};
      if (insns[i + 1].opcode != 0) return VerifyError{i + 1, "lddw second slot must be zero"};
      is_lddw_tail[i + 1] = true;
    }
  }

  bool saw_exit = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_lddw_tail[i]) continue;
    const Insn& insn = insns[i];
    const std::uint8_t cls = insn.cls();

    if (insn.dst >= kNumRegisters) return VerifyError{i, "invalid destination register"};
    if (insn.src >= kNumRegisters) return VerifyError{i, "invalid source register"};

    switch (cls) {
      case kClsAlu:
      case kClsAlu64: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (op == kAluEnd && cls == kClsAlu64) {
          return VerifyError{i, "byte swap is only valid in the 32-bit ALU class"};
        }
        if (!valid_alu_op(op, cls)) return VerifyError{i, "unknown ALU operation"};
        if (insn.dst == kFramePointer) return VerifyError{i, "write to frame pointer r10"};
        if ((op == kAluDiv || op == kAluMod) && (insn.opcode & kSrcX) == 0 && insn.imm == 0) {
          return VerifyError{i, "division by zero immediate"};
        }
        if (op == kAluEnd && insn.imm != 16 && insn.imm != 32 && insn.imm != 64) {
          return VerifyError{i, "byte swap width must be 16/32/64"};
        }
        if ((op == kAluLsh || op == kAluRsh || op == kAluArsh) && (insn.opcode & kSrcX) == 0) {
          const std::int32_t width = (cls == kClsAlu64) ? 64 : 32;
          if (insn.imm < 0 || insn.imm >= width) return VerifyError{i, "shift out of range"};
        }
        break;
      }
      case kClsLd: {
        if (insn.opcode != kOpLddw) return VerifyError{i, "unsupported LD-class opcode"};
        if (insn.dst == kFramePointer) return VerifyError{i, "write to frame pointer r10"};
        break;
      }
      case kClsLdx: {
        if ((insn.opcode & 0xe0) != kModeMem) return VerifyError{i, "unsupported LDX mode"};
        if (insn.dst == kFramePointer) return VerifyError{i, "write to frame pointer r10"};
        break;
      }
      case kClsSt:
      case kClsStx: {
        if ((insn.opcode & 0xe0) != kModeMem) return VerifyError{i, "unsupported store mode"};
        break;
      }
      case kClsJmp: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (!valid_jmp_op(op)) return VerifyError{i, "unknown JMP operation"};
        if (op == kJmpCall) {
          if (!allowed_helpers.contains(insn.imm)) {
            return VerifyError{i, "call to helper " + std::to_string(insn.imm) +
                                      " not in manifest whitelist"};
          }
          break;
        }
        if (op == kJmpExit) {
          saw_exit = true;
          break;
        }
        const std::ptrdiff_t target =
            static_cast<std::ptrdiff_t>(i) + 1 + insn.offset;
        if (target < 0 || target >= static_cast<std::ptrdiff_t>(n)) {
          return VerifyError{i, "jump target out of bounds"};
        }
        if (is_lddw_tail[static_cast<std::size_t>(target)]) {
          return VerifyError{i, "jump into the middle of lddw"};
        }
        break;
      }
      case kClsJmp32: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (op == kJmpJa) {
          return VerifyError{i, "unconditional jump has no 32-bit form"};
        }
        if (!valid_jmp_op(op) || op == kJmpCall || op == kJmpExit) {
          return VerifyError{i, "unsupported JMP32 operation"};
        }
        const std::ptrdiff_t target = static_cast<std::ptrdiff_t>(i) + 1 + insn.offset;
        if (target < 0 || target >= static_cast<std::ptrdiff_t>(n)) {
          return VerifyError{i, "jump target out of bounds"};
        }
        if (is_lddw_tail[static_cast<std::size_t>(target)]) {
          return VerifyError{i, "jump into the middle of lddw"};
        }
        break;
      }
      default:
        return VerifyError{i, "unknown instruction class"};
    }
  }

  // No fall-through off the end: the final slot must terminate or jump away.
  const Insn& last = insns[n - 1];
  const bool last_terminates =
      !is_lddw_tail[n - 1] && last.cls() == kClsJmp &&
      ((last.opcode & 0xf0) == kJmpExit || (last.opcode & 0xf0) == kJmpJa);
  if (!last_terminates) return VerifyError{n - 1, "program can fall off the end"};
  if (!saw_exit) return VerifyError{n - 1, "program has no exit instruction"};

  return std::nullopt;
}

}  // namespace xb::ebpf
