#include "ebpf/assembler.hpp"

#include <limits>
#include <stdexcept>

namespace xb::ebpf {

Assembler::Label Assembler::make_label() {
  label_positions_.push_back(-1);
  return Label(label_positions_.size() - 1);
}

void Assembler::place(Label l) {
  if (l.id_ >= label_positions_.size()) throw std::logic_error("label from another assembler");
  if (label_positions_[l.id_] != -1) throw std::logic_error("label placed twice");
  label_positions_[l.id_] = static_cast<std::ptrdiff_t>(insns_.size());
}

Assembler& Assembler::alu(std::uint8_t cls, std::uint8_t op, Reg dst, Reg src) {
  insns_.push_back(Insn{static_cast<std::uint8_t>(cls | kSrcX | op),
                        static_cast<std::uint8_t>(dst), static_cast<std::uint8_t>(src), 0, 0});
  return *this;
}

Assembler& Assembler::alu(std::uint8_t cls, std::uint8_t op, Reg dst, std::int32_t imm) {
  insns_.push_back(Insn{static_cast<std::uint8_t>(cls | kSrcK | op),
                        static_cast<std::uint8_t>(dst), 0, 0, imm});
  return *this;
}

Assembler& Assembler::to_be(Reg dst, std::int32_t bits) {
  if (bits != 16 && bits != 32 && bits != 64) throw std::logic_error("to_be: bits must be 16/32/64");
  insns_.push_back(Insn{static_cast<std::uint8_t>(kClsAlu | kSrcX | kAluEnd),
                        static_cast<std::uint8_t>(dst), 0, 0, bits});
  return *this;
}

Assembler& Assembler::to_le(Reg dst, std::int32_t bits) {
  if (bits != 16 && bits != 32 && bits != 64) throw std::logic_error("to_le: bits must be 16/32/64");
  insns_.push_back(Insn{static_cast<std::uint8_t>(kClsAlu | kSrcK | kAluEnd),
                        static_cast<std::uint8_t>(dst), 0, 0, bits});
  return *this;
}

Assembler& Assembler::lddw(Reg dst, std::uint64_t imm) {
  insns_.push_back(Insn{kOpLddw, static_cast<std::uint8_t>(dst), 0, 0,
                        static_cast<std::int32_t>(imm & 0xFFFFFFFFu)});
  insns_.push_back(Insn{0, 0, 0, 0, static_cast<std::int32_t>(imm >> 32)});
  return *this;
}

Assembler& Assembler::ldst(std::uint8_t opcode, Reg dst, Reg src, std::int16_t off,
                           std::int32_t imm) {
  insns_.push_back(Insn{opcode, static_cast<std::uint8_t>(dst), static_cast<std::uint8_t>(src),
                        off, imm});
  return *this;
}

Assembler& Assembler::jmp(std::uint8_t op, Reg dst, Reg src, Label target) {
  insns_.push_back(Insn{static_cast<std::uint8_t>(kClsJmp | kSrcX | op),
                        static_cast<std::uint8_t>(dst), static_cast<std::uint8_t>(src), 0, 0});
  fixups_.push_back(Fixup{insns_.size() - 1, target.id_});
  return *this;
}

Assembler& Assembler::jmp(std::uint8_t op, Reg dst, std::int32_t imm, Label target,
                          bool /*src_is_reg*/) {
  insns_.push_back(Insn{static_cast<std::uint8_t>(kClsJmp | kSrcK | op),
                        static_cast<std::uint8_t>(dst), 0, 0, imm});
  fixups_.push_back(Fixup{insns_.size() - 1, target.id_});
  return *this;
}

Assembler& Assembler::call(std::int32_t helper_id) {
  insns_.push_back(Insn{static_cast<std::uint8_t>(kClsJmp | kJmpCall), 0, 0, 0, helper_id});
  helpers_.insert(helper_id);
  return *this;
}

Assembler& Assembler::exit_() {
  insns_.push_back(Insn{static_cast<std::uint8_t>(kClsJmp | kJmpExit), 0, 0, 0, 0});
  return *this;
}

Program Assembler::build(std::string name) const {
  auto insns = insns_;
  for (const auto& fixup : fixups_) {
    if (fixup.label_id >= label_positions_.size() || label_positions_[fixup.label_id] < 0) {
      throw std::logic_error("unplaced label in program '" + name + "'");
    }
    std::ptrdiff_t delta =
        label_positions_[fixup.label_id] - static_cast<std::ptrdiff_t>(fixup.insn_index) - 1;
    if (delta < std::numeric_limits<std::int16_t>::min() ||
        delta > std::numeric_limits<std::int16_t>::max()) {
      throw std::logic_error("jump out of int16 range in program '" + name + "'");
    }
    insns[fixup.insn_index].offset = static_cast<std::int16_t>(delta);
  }
  return Program(std::move(name), std::move(insns), helpers_);
}

}  // namespace xb::ebpf
