#include "ebpf/disasm.hpp"

#include <sstream>

#include "ebpf/cfg.hpp"
#include "ebpf/opcodes.hpp"

namespace xb::ebpf {

namespace {

const char* alu_name(std::uint8_t op) {
  switch (op) {
    case kAluAdd: return "add";
    case kAluSub: return "sub";
    case kAluMul: return "mul";
    case kAluDiv: return "div";
    case kAluOr: return "or";
    case kAluAnd: return "and";
    case kAluLsh: return "lsh";
    case kAluRsh: return "rsh";
    case kAluNeg: return "neg";
    case kAluMod: return "mod";
    case kAluXor: return "xor";
    case kAluMov: return "mov";
    case kAluArsh: return "arsh";
    default: return "alu?";
  }
}

const char* jmp_name(std::uint8_t op) {
  switch (op) {
    case kJmpJa: return "ja";
    case kJmpJeq: return "jeq";
    case kJmpJgt: return "jgt";
    case kJmpJge: return "jge";
    case kJmpJset: return "jset";
    case kJmpJne: return "jne";
    case kJmpJsgt: return "jsgt";
    case kJmpJsge: return "jsge";
    case kJmpJlt: return "jlt";
    case kJmpJle: return "jle";
    case kJmpJslt: return "jslt";
    case kJmpJsle: return "jsle";
    default: return "jmp?";
  }
}

const char* size_suffix(std::uint8_t op) {
  switch (op & 0x18) {
    case kSizeW: return "w";
    case kSizeH: return "h";
    case kSizeB: return "b";
    default: return "dw";
  }
}

}  // namespace

std::string disassemble_insn(const Insn& insn, bool lddw_tail) {
  std::ostringstream os;
  if (lddw_tail) {
    os << "lddw-hi 0x" << std::hex << static_cast<std::uint32_t>(insn.imm);
    return os.str();
  }
  const std::uint8_t cls = insn.cls();
  switch (cls) {
    case kClsAlu:
    case kClsAlu64: {
      const std::uint8_t op = insn.opcode & 0xf0;
      const char* width = cls == kClsAlu64 ? "64" : "32";
      if (op == kAluEnd) {
        os << ((insn.opcode & kSrcX) ? "be" : "le") << insn.imm << " r"
           << static_cast<int>(insn.dst);
      } else if (op == kAluNeg) {
        os << "neg" << width << " r" << static_cast<int>(insn.dst);
      } else if (insn.opcode & kSrcX) {
        os << alu_name(op) << width << " r" << static_cast<int>(insn.dst) << ", r"
           << static_cast<int>(insn.src);
      } else {
        os << alu_name(op) << width << " r" << static_cast<int>(insn.dst) << ", " << insn.imm;
      }
      break;
    }
    case kClsLd:
      os << "lddw r" << static_cast<int>(insn.dst) << ", 0x" << std::hex
         << static_cast<std::uint32_t>(insn.imm);
      break;
    case kClsLdx:
      os << "ldx" << size_suffix(insn.opcode) << " r" << static_cast<int>(insn.dst) << ", [r"
         << static_cast<int>(insn.src) << (insn.offset >= 0 ? "+" : "") << insn.offset << "]";
      break;
    case kClsSt:
      os << "st" << size_suffix(insn.opcode) << " [r" << static_cast<int>(insn.dst)
         << (insn.offset >= 0 ? "+" : "") << insn.offset << "], " << insn.imm;
      break;
    case kClsStx:
      os << "stx" << size_suffix(insn.opcode) << " [r" << static_cast<int>(insn.dst)
         << (insn.offset >= 0 ? "+" : "") << insn.offset << "], r" << static_cast<int>(insn.src);
      break;
    case kClsJmp: {
      const std::uint8_t op = insn.opcode & 0xf0;
      if (op == kJmpExit) {
        os << "exit";
      } else if (op == kJmpCall) {
        os << "call " << insn.imm;
      } else if (op == kJmpJa) {
        os << "ja " << (insn.offset >= 0 ? "+" : "") << insn.offset;
      } else if (insn.opcode & kSrcX) {
        os << jmp_name(op) << " r" << static_cast<int>(insn.dst) << ", r"
           << static_cast<int>(insn.src) << ", " << (insn.offset >= 0 ? "+" : "") << insn.offset;
      } else {
        os << jmp_name(op) << " r" << static_cast<int>(insn.dst) << ", " << insn.imm << ", "
           << (insn.offset >= 0 ? "+" : "") << insn.offset;
      }
      break;
    }
    case kClsJmp32: {
      const std::uint8_t op = insn.opcode & 0xf0;
      if (insn.opcode & kSrcX) {
        os << jmp_name(op) << "32 r" << static_cast<int>(insn.dst) << ", r"
           << static_cast<int>(insn.src) << ", " << (insn.offset >= 0 ? "+" : "") << insn.offset;
      } else {
        os << jmp_name(op) << "32 r" << static_cast<int>(insn.dst) << ", " << insn.imm << ", "
           << (insn.offset >= 0 ? "+" : "") << insn.offset;
      }
      break;
    }
    default:
      os << "??? opcode=0x" << std::hex << static_cast<int>(insn.opcode);
  }
  return os.str();
}

std::string disassemble(const Program& program) {
  std::ostringstream os;
  const auto& insns = program.insns();
  bool tail = false;
  for (std::size_t i = 0; i < insns.size(); ++i) {
    os << i << ": " << disassemble_insn(insns[i], tail) << "\n";
    tail = !tail && insns[i].opcode == kOpLddw;
  }
  return os.str();
}

std::string jump_annotation(const Program& program, const Cfg& cfg, std::size_t index) {
  if (cfg.is_lddw_tail(index)) return {};
  const Insn& insn = program.insns()[index];
  const std::uint8_t cls = insn.cls();
  if (cls != kClsJmp && cls != kClsJmp32) return {};
  const std::uint8_t op = insn.opcode & 0xf0;
  if (op == kJmpCall || op == kJmpExit) return {};
  const auto target =
      static_cast<std::size_t>(static_cast<std::ptrdiff_t>(index) + 1 + insn.offset);
  std::string out = "; -> " + Cfg::label(cfg.block_of(target));
  const bool conditional = !(cls == kClsJmp && op == kJmpJa);
  if (conditional && index + 1 < program.insns().size()) {
    out += " else " + Cfg::label(cfg.block_of(index + 1));
  }
  return out;
}

std::string disassemble_with_cfg(const Program& program, const Cfg& cfg) {
  std::ostringstream os;
  const auto& insns = program.insns();
  for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
    os << Cfg::label(b) << ":";
    if (!cfg.reachable(b)) os << "  ; unreachable";
    os << "\n";
    const BasicBlock& bb = cfg.blocks()[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      os << "  " << i << ": " << disassemble_insn(insns[i], cfg.is_lddw_tail(i));
      const std::string annot = jump_annotation(program, cfg, i);
      if (!annot.empty()) os << "  " << annot;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace xb::ebpf
