// Bytecode → IR lowering for the tiered execution engine.
//
// `Translator::translate` runs once per loaded program (the Vmm caches the
// result and shares it read-only across all per-slot VMs). It requires
// pass-0-valid input — `Verifier::verify` must have accepted the program —
// and throws std::invalid_argument on any structural violation it would
// otherwise have to lower into a runtime trap (unknown opcode, truncated
// lddw, jump into an lddw tail, ...). The analyzer's `ProofTable` is
// optional: with `facts == nullptr` every load/store keeps its runtime
// bounds check, which makes the fast tier semantically identical to tier 0
// for *any* pass-0-valid program — the property the differential fuzz gate
// relies on to push analyzer-rejected mutants through both engines. With
// facts, any access whose row carries `elide` (stack in-frame, or a
// non-null helper-returned object within its proven extent) is lowered to
// the unchecked `*Stk` form.
#pragma once

#include "ebpf/analyzer.hpp"
#include "ebpf/ir.hpp"
#include "ebpf/program.hpp"

namespace xb::ebpf {

class Translator {
 public:
  /// Lowers `program` into pre-decoded IR. When `facts` is non-null and
  /// covers the program, loads/stores the analyzer proved in-bounds (stack
  /// frame, or helper-returned objects within their contract extent) are
  /// emitted as check-elided `*Stk` forms. Throws std::invalid_argument on
  /// bytecode that pass 0 would have rejected.
  [[nodiscard]] static IrProgram translate(const Program& program,
                                           const ProofTable* facts = nullptr);
};

}  // namespace xb::ebpf
