#include "ebpf/analyzer.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <deque>
#include <limits>
#include <optional>

#include "ebpf/cfg.hpp"
#include "ebpf/opcodes.hpp"
#include "ebpf/verifier.hpp"

namespace xb::ebpf {

namespace {

constexpr std::int64_t kValMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kValMax = std::numeric_limits<std::int64_t>::max();

std::int64_t sat(__int128 v) {
  if (v > kValMax) return kValMax;
  if (v < kValMin) return kValMin;
  return static_cast<std::int64_t>(v);
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return sat(static_cast<__int128>(a) + b);
}

/// Closed interval over int64.  Arithmetic that would carry an endpoint
/// outside the int64 range widens to `full()` rather than saturating: the VM
/// wraps mod 2^64, so a clamped endpoint could EXCLUDE the true (wrapped)
/// value and later arithmetic would yield tight-but-wrong claims — e.g.
/// INT64_MAX + INT64_MAX saturated to point(INT64_MAX) misses the actual -2,
/// and subtracting INT64_MAX back then "proves" 0.  full() is always sound.
struct Interval {
  std::int64_t lo = kValMin;
  std::int64_t hi = kValMax;

  static Interval full() { return {kValMin, kValMax}; }
  static Interval point(std::int64_t v) { return {v, v}; }

  [[nodiscard]] bool singleton() const { return lo == hi; }
  [[nodiscard]] bool is_full() const { return lo == kValMin && hi == kValMax; }

  [[nodiscard]] Interval hull(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
  [[nodiscard]] Interval add(const Interval& o) const {
    const __int128 nlo = static_cast<__int128>(lo) + o.lo;
    const __int128 nhi = static_cast<__int128>(hi) + o.hi;
    if (nlo < kValMin || nhi > kValMax) return full();
    return {static_cast<std::int64_t>(nlo), static_cast<std::int64_t>(nhi)};
  }
  [[nodiscard]] Interval sub(const Interval& o) const {
    const __int128 nlo = static_cast<__int128>(lo) - o.hi;
    const __int128 nhi = static_cast<__int128>(hi) - o.lo;
    if (nlo < kValMin || nhi > kValMax) return full();
    return {static_cast<std::int64_t>(nlo), static_cast<std::int64_t>(nhi)};
  }

  // Saturating variants for the LOOP-ANALYSIS symbolic domain only.  There
  // kValMin/kValMax endpoints are widening artifacts meaning "unbounded",
  // and "unbounded + step" must stay unbounded on that side while the other
  // endpoint keeps accumulating per-iteration progress — widening to full()
  // would erase the monotone-induction evidence for every widened counter.
  // The imprecision at genuine ±2^63 magnitudes is acceptable because these
  // intervals only gate loop-boundedness (the runtime instruction budget is
  // the backstop) and are never published to the elision ProofTable.
  [[nodiscard]] Interval add_sat(const Interval& o) const {
    return {sat_add(lo, o.lo), sat_add(hi, o.hi)};
  }
  [[nodiscard]] Interval sub_sat(const Interval& o) const {
    return {sat(static_cast<__int128>(lo) - o.hi), sat(static_cast<__int128>(hi) - o.lo)};
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

constexpr std::int64_t kU32Max = 0xFFFFFFFFll;

// --- Main abstract domain ---------------------------------------------------

enum class Kind : std::uint8_t {
  kUninit,    // never written on some path
  kScalar,    // plain value, bounds in `range`
  kStackPtr,  // r10 + offset, offset bounds in `range`
  kObjPtr,    // helper-returned pointer; provenance in the region fields
};

/// One register's abstract value across the three domains: the interval
/// (`range` — the value for scalars, the region-relative offset for
/// pointers), the region/points-to facts (provenance, extent, nullability,
/// writability for kObjPtr), and the taint bits.
struct AbsVal {
  Kind kind = Kind::kUninit;
  Interval range = Interval::full();
  // kObjPtr provenance, seeded from the originating helper's contract.
  Region region = Region::kNone;   // kCtx / kAttr / kUnknown
  std::uint32_t extent = 0;        // guaranteed dereferenceable bytes (0: unknown)
  std::int32_t helper = -1;        // originating helper id (-1: mixed)
  bool exact = false;              // extent is the object's exact size
  bool nonnull = false;            // proven != 0 (dominating null check)
  bool writable = false;           // stores through it may be elided
  // Taint: for scalars `tainted` marks a wire-derived value; for kObjPtr it
  // marks wire-derived pointed-to bytes, and `off_tainted` marks offset
  // arithmetic that consumed a tainted scalar.
  bool tainted = false;
  bool off_tainted = false;

  static AbsVal uninit() { return {}; }
  static AbsVal scalar(Interval r) {
    AbsVal v;
    v.kind = Kind::kScalar;
    v.range = r;
    return v;
  }
  static AbsVal scalar_t(Interval r, bool taint) {
    AbsVal v = scalar(r);
    v.tainted = taint;
    return v;
  }
  static AbsVal stack(Interval r) {
    AbsVal v;
    v.kind = Kind::kStackPtr;
    v.range = r;
    return v;
  }

  [[nodiscard]] bool initialized() const { return kind != Kind::kUninit; }
  [[nodiscard]] bool is_ptr() const {
    return kind == Kind::kStackPtr || kind == Kind::kObjPtr;
  }

  friend bool operator==(const AbsVal&, const AbsVal&) = default;
};

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == Kind::kUninit || b.kind == Kind::kUninit) return AbsVal::uninit();
  if (a.kind == b.kind) {
    AbsVal v = a;
    v.range = a.range.hull(b.range);
    v.tainted = a.tainted || b.tainted;
    if (a.kind == Kind::kObjPtr) {
      v.region = a.region == b.region ? a.region : Region::kUnknown;
      v.extent = std::min(a.extent, b.extent);
      v.helper = a.helper == b.helper ? a.helper : -1;
      v.exact = a.exact && b.exact;
      v.nonnull = a.nonnull && b.nonnull;
      v.writable = a.writable && b.writable;
      v.off_tainted = a.off_tainted || b.off_tainted;
    } else {
      v.region = Region::kNone;
      v.extent = 0;
      v.helper = -1;
      v.exact = v.nonnull = v.writable = v.off_tainted = false;
    }
    return v;
  }
  // Mixed initialized kinds: sound as an unknown scalar — any dereference
  // through it is bounds-checked by the interpreter's memory model.
  return AbsVal::scalar_t(Interval::full(), a.tainted || b.tainted);
}

using RegState = std::array<AbsVal, kNumRegisters>;

RegState entry_state() {
  RegState s;
  for (auto& v : s) v = AbsVal::uninit();
  // Vm::run preloads r1..r5 from the invocation arguments (the VMM passes
  // the insertion-point id in r1 and zeroes the rest).
  for (int r = 1; r <= 5; ++r) s[r] = AbsVal::scalar(Interval::full());
  s[kFramePointer] = AbsVal::stack(Interval::point(0));
  return s;
}

int mem_size(std::uint8_t opcode) {
  switch (opcode & 0x18) {
    case kSizeB: return 1;
    case kSizeH: return 2;
    case kSizeW: return 4;
    default: return 8;
  }
}

Interval load_range(int size) {
  switch (size) {
    case 1: return {0, 0xFF};
    case 2: return {0, 0xFFFF};
    case 4: return {0, kU32Max};
    default: return Interval::full();
  }
}

/// Largest power-of-two (capped at 8) dividing every offset in the hull —
/// the alignment claim published in the proof table.
std::uint8_t hull_alignment(std::int64_t lo, std::int64_t hi) {
  if (lo != hi) return 1;  // variable offsets carry no alignment proof
  if (lo == 0) return 8;
  const auto mag = static_cast<std::uint64_t>(lo < 0 ? -lo : lo);
  const int tz = std::countr_zero(mag);
  return static_cast<std::uint8_t>(std::min(8, 1 << std::min(tz, 3)));
}

// --- Loop-analysis symbolic domain ------------------------------------------
//
// Values relative to the register file at loop-header entry:
//   kTop     unknown
//   kVal     a plain value within `delta` (may differ per iteration;
//            a singleton is a loop-invariant constant)
//   kAnchor  header-entry value of register `base` plus `delta`
//
// A register whose value at every back-edge is anchored on itself with a
// strictly positive (or strictly negative) delta is a monotone induction
// register.

struct SymVal {
  enum class K : std::uint8_t { kTop, kVal, kAnchor };
  K k = K::kTop;
  int base = -1;
  Interval delta = Interval::full();

  static SymVal top() { return {K::kTop, -1, Interval::full()}; }
  static SymVal val(Interval r) { return {K::kVal, -1, r}; }
  static SymVal anchor(int reg, Interval d) { return {K::kAnchor, reg, d}; }

  friend bool operator==(const SymVal&, const SymVal&) = default;
};

SymVal sym_join(const SymVal& a, const SymVal& b) {
  if (a.k == SymVal::K::kAnchor && b.k == SymVal::K::kAnchor && a.base == b.base) {
    return SymVal::anchor(a.base, a.delta.hull(b.delta));
  }
  if (a.k == SymVal::K::kVal && b.k == SymVal::K::kVal) {
    return SymVal::val(a.delta.hull(b.delta));
  }
  return SymVal::top();
}

using SymState = std::array<SymVal, kNumRegisters>;

// --- Normalized branch predicates -------------------------------------------

enum class Cmp : std::uint8_t { kEq, kNe, kGt, kGe, kLt, kLe, kSgt, kSge, kSlt, kSle, kNone };

Cmp cmp_of(std::uint8_t op) {
  switch (op) {
    case kJmpJeq: return Cmp::kEq;
    case kJmpJne: return Cmp::kNe;
    case kJmpJgt: return Cmp::kGt;
    case kJmpJge: return Cmp::kGe;
    case kJmpJlt: return Cmp::kLt;
    case kJmpJle: return Cmp::kLe;
    case kJmpJsgt: return Cmp::kSgt;
    case kJmpJsge: return Cmp::kSge;
    case kJmpJslt: return Cmp::kSlt;
    case kJmpJsle: return Cmp::kSle;
    default: return Cmp::kNone;  // ja / call / exit / jset
  }
}

Cmp invert(Cmp c) {
  switch (c) {
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kGt: return Cmp::kLe;
    case Cmp::kLe: return Cmp::kGt;
    case Cmp::kGe: return Cmp::kLt;
    case Cmp::kLt: return Cmp::kGe;
    case Cmp::kSgt: return Cmp::kSle;
    case Cmp::kSle: return Cmp::kSgt;
    case Cmp::kSge: return Cmp::kSlt;
    case Cmp::kSlt: return Cmp::kSge;
    default: return Cmp::kNone;
  }
}

const char* cmp_text(Cmp c) {
  switch (c) {
    case Cmp::kEq: return "==";
    case Cmp::kNe: return "!=";
    case Cmp::kGt: return ">";
    case Cmp::kGe: return ">=";
    case Cmp::kLt: return "<";
    case Cmp::kLe: return "<=";
    case Cmp::kSgt: return "s>";
    case Cmp::kSge: return "s>=";
    case Cmp::kSlt: return "s<";
    case Cmp::kSle: return "s<=";
    default: return "?";
  }
}

/// Decides `range CMP K` when the interval makes it a foregone conclusion.
/// Unsigned predicates are only decided over provably non-negative operands,
/// where unsigned and signed order coincide.
std::optional<bool> decide(Cmp c, const Interval& r, std::int64_t k) {
  const bool uns = c == Cmp::kGt || c == Cmp::kGe || c == Cmp::kLt || c == Cmp::kLe;
  if (uns && (r.lo < 0 || k < 0)) return std::nullopt;
  switch (c) {
    case Cmp::kEq:
      if (r.singleton() && r.lo == k) return true;
      if (k < r.lo || k > r.hi) return false;
      return std::nullopt;
    case Cmp::kNe:
      if (r.singleton() && r.lo == k) return false;
      if (k < r.lo || k > r.hi) return true;
      return std::nullopt;
    case Cmp::kGt:
    case Cmp::kSgt:
      if (r.lo > k) return true;
      if (r.hi <= k) return false;
      return std::nullopt;
    case Cmp::kGe:
    case Cmp::kSge:
      if (r.lo >= k) return true;
      if (r.hi < k) return false;
      return std::nullopt;
    case Cmp::kLt:
    case Cmp::kSlt:
      if (r.hi < k) return true;
      if (r.lo >= k) return false;
      return std::nullopt;
    case Cmp::kLe:
    case Cmp::kSle:
      if (r.hi <= k) return true;
      if (r.lo > k) return false;
      return std::nullopt;
    default: return std::nullopt;
  }
}

/// Narrows `v` under the assumption that `v CMP K` evaluated to `taken`.
/// Scalars get their interval clamped; helper-returned pointers compared
/// against 0 gain (or lose) the non-null fact.  A clamp that would empty the
/// interval is skipped — the edge is infeasible, but reachability pruning is
/// deliberately left to the diagnostics, not the state propagation.
void refine(AbsVal& v, Cmp cmp, std::int64_t k, bool taken) {
  if (v.kind == Kind::kObjPtr && k == 0 && (cmp == Cmp::kEq || cmp == Cmp::kNe)) {
    const bool null_path = (cmp == Cmp::kEq) == taken;
    if (null_path) {
      // rX == 0 on this edge: whatever its provenance, its value is 0.
      v = AbsVal::scalar(Interval::point(0));
    } else if (v.range == Interval::point(0)) {
      // rX != 0 proves the BASE non-null only while the offset is exactly 0;
      // base + 8 != 0 says nothing about base.
      v.nonnull = true;
    }
    return;
  }
  if (v.kind != Kind::kScalar) return;
  Cmp c = taken ? cmp : invert(cmp);
  const bool uns = c == Cmp::kGt || c == Cmp::kGe || c == Cmp::kLt || c == Cmp::kLe;
  if (uns) {
    // Unsigned order only matches the signed interval when both sides are
    // provably non-negative.
    if (v.range.lo < 0 || k < 0) return;
    switch (c) {
      case Cmp::kGt: c = Cmp::kSgt; break;
      case Cmp::kGe: c = Cmp::kSge; break;
      case Cmp::kLt: c = Cmp::kSlt; break;
      default: c = Cmp::kSle; break;
    }
  }
  Interval r = v.range;
  switch (c) {
    case Cmp::kEq:
      if (k < r.lo || k > r.hi) return;  // infeasible edge: keep unrefined
      r = Interval::point(k);
      break;
    case Cmp::kNe:
      return;  // shaving a single interior point is not representable
    case Cmp::kSgt:
      if (k == kValMax) return;
      r.lo = std::max(r.lo, k + 1);
      break;
    case Cmp::kSge: r.lo = std::max(r.lo, k); break;
    case Cmp::kSlt:
      if (k == kValMin) return;
      r.hi = std::min(r.hi, k - 1);
      break;
    case Cmp::kSle: r.hi = std::min(r.hi, k); break;
    default: return;
  }
  if (r.lo > r.hi) return;  // infeasible edge: keep unrefined
  v.range = r;
}

// --- The analysis proper ----------------------------------------------------

class Analysis {
 public:
  Analysis(const Program& program, const std::set<std::int32_t>& allowed_helpers,
           const Analyzer::Options& options)
      : program_(program), allowed_helpers_(allowed_helpers), options_(options) {}

  AnalysisResult run() {
    // Pass 0: the structural verifier.  Its single error gates everything
    // else — without it the CFG is not well-defined.
    if (auto err = Verifier::verify(program_, allowed_helpers_)) {
      emit(Severity::kError, err->insn_index, -1, err->reason);
      return finish();
    }
    facts_.mem.assign(program_.insns().size(), ProofTable::MemFact{});
    cfg_ = Cfg::build(program_);

    if (options_.warnings) {
      for (std::size_t b = 0; b < cfg_->blocks().size(); ++b) {
        if (!cfg_->reachable(b)) {
          emit(Severity::kWarning, cfg_->blocks()[b].first, -1,
               "unreachable code (basic block " + Cfg::label(b) + " is never executed)");
        }
      }
    }

    // Stack-taint bits accumulate monotonically across passes; iterate until
    // they stop growing so spilled-then-reloaded taint reaches every load
    // site before the report pass reads the final states.
    while (true) {
      const auto taint_before = stack_taint_;
      fixpoint();
      if (stack_taint_ == taint_before) break;
    }
    report_pass();
    for (const NaturalLoop& loop : cfg_->loops()) check_loop(loop);
    for (const CfgEdge& e : cfg_->irreducible_edges()) {
      emit(Severity::kError, cfg_->blocks()[e.from].last, -1,
           "irreducible control flow: jump back into " + Cfg::label(e.to) +
               " which does not dominate " + Cfg::label(e.from));
    }
    return finish();
  }

 private:
  // ---- diagnostics ----
  void emit(Severity sev, std::size_t insn, int reg, std::string reason) {
    if (sev == Severity::kWarning && !options_.warnings) return;
    diags_.push_back(Diagnostic{sev, insn, reg, std::move(reason)});
  }

  AnalysisResult finish() {
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.insn_index < b.insn_index;
                     });
    // A rejected program's facts must never reach the translator's
    // check-elision pass: any error voids them wholesale.
    const bool rejected = std::any_of(
        diags_.begin(), diags_.end(),
        [](const Diagnostic& d) { return d.severity == Severity::kError; });
    if (rejected) {
      facts_.mem.clear();
      facts_.calls.clear();
    }
    return AnalysisResult{std::move(diags_), std::move(facts_)};
  }

  const HelperContract* contract_of(std::int32_t id) const {
    auto it = options_.helper_contracts.find(id);
    return it == options_.helper_contracts.end() ? nullptr : &it->second;
  }

  // ---- main abstract interpretation ----

  /// Reads a register for its value; reports (once per site, in the report
  /// pass) when it may be uninitialized and recovers to an unknown scalar.
  AbsVal read_reg(RegState& s, int reg, std::size_t insn, bool reporting) {
    if (!s[reg].initialized()) {
      if (reporting) {
        emit(Severity::kError, insn, reg,
             "read of uninitialized register r" + std::to_string(reg));
      }
      s[reg] = AbsVal::scalar(Interval::full());
    }
    return s[reg];
  }

  // ---- stack taint ----
  //
  // Per-byte taint for the 512-byte frame, so taint survives a stack
  // round-trip (spill a wire-derived scalar, reload it).  The map is
  // flow-INsensitive — bits only turn on, an untainted overwrite does not
  // clear them — which over-approximates (possible spurious warnings after a
  // slot is reused) but never loses taint.  Because a load executed early in
  // a pass can miss a bit set later in the same pass, run() iterates the
  // fixpoint until the map stops growing.

  void taint_stack_bytes(std::int64_t lo, std::int64_t end) {
    lo = std::max<std::int64_t>(lo, -kStackSize);
    end = std::min<std::int64_t>(end, 0);
    for (std::int64_t o = lo; o < end; ++o) stack_taint_[o + kStackSize] = true;
  }

  [[nodiscard]] bool stack_bytes_tainted(std::int64_t lo, std::int64_t end) const {
    lo = std::max<std::int64_t>(lo, -kStackSize);
    end = std::min<std::int64_t>(end, 0);
    for (std::int64_t o = lo; o < end; ++o) {
      if (stack_taint_[o + kStackSize]) return true;
    }
    return false;
  }

  void check_stack_access(std::size_t insn, const AbsVal& base, std::int16_t off, int size,
                          bool reporting) {
    const std::int64_t lo = sat_add(base.range.lo, off);
    const std::int64_t hi = sat_add(base.range.hi, off);
    const std::int64_t end = sat_add(hi, size);
    if (lo < -kStackSize || end > 0) {
      if (reporting) {
        emit(Severity::kError, insn, -1,
             "stack access out of bounds (bytes [" + std::to_string(lo) + ", " +
                 std::to_string(end) + ") relative to r10; the frame is [-" +
                 std::to_string(kStackSize) + ", 0))");
      }
      return;
    }
    // In-frame on every path reaching this site: record the proof so the
    // translator may elide the runtime bounds check. The report pass visits
    // each reachable block exactly once from its fixpoint in-state, so the
    // interval here is already the hull over all paths.
    if (reporting) {
      facts_.mem[insn] =
          ProofTable::MemFact{Region::kStack, lo, end, hull_alignment(lo, hi), true};
    }
    if (reporting && base.range.singleton() && size > 1 && (lo % size) != 0) {
      emit(Severity::kWarning, insn, -1,
           "misaligned stack access (offset " + std::to_string(lo) + " is not " +
               std::to_string(size) + "-byte aligned)");
    }
  }

  /// Memory access whose base is a helper-returned pointer or a plain
  /// scalar.  Publishes the region/offset-hull proof, decides elision
  /// (non-null base, window inside the guaranteed extent, writable for
  /// stores), and raises the pointer-hygiene diagnostics.
  void check_ptr_access(std::size_t insn, const AbsVal& base, std::int16_t off, int size,
                        bool is_store, bool reporting) {
    if (!reporting) return;
    const std::int64_t lo = sat_add(base.range.lo, off);
    const std::int64_t end = sat_add(sat_add(base.range.hi, off), size);
    if (base.kind != Kind::kObjPtr) {
      facts_.mem[insn] = ProofTable::MemFact{Region::kUnknown, off,
                                             sat_add(off, size), 1, false};
      if (base.kind == Kind::kScalar && base.tainted) {
        emit(Severity::kWarning, insn, -1,
             "tainted offset: wire-derived value used as a memory address (the "
             "runtime bounds check is load-bearing)");
      }
      return;
    }
    const bool in_extent = base.extent > 0 && lo >= 0 &&
                           end <= static_cast<std::int64_t>(base.extent);
    const bool elide = base.nonnull && in_extent && (!is_store || base.writable);
    facts_.mem[insn] = ProofTable::MemFact{
        base.region, lo, end, hull_alignment(lo, sat_add(base.range.hi, off)), elide};
    const std::string who =
        base.helper >= 0 ? "helper " + std::to_string(base.helper) : "a helper";
    if (!base.nonnull && base.region != Region::kUnknown) {
      emit(Severity::kWarning, insn, -1,
           "possibly-NULL return of " + who + " dereferenced without a null check");
    } else if (base.nonnull && base.range.lo >= 0 && lo < 0) {
      emit(Severity::kWarning, insn, -1,
           "access before the start of the object returned by " + who + " (bytes [" +
               std::to_string(lo) + ", " + std::to_string(end) + "))");
    } else if (base.nonnull && base.exact && base.extent > 0 &&
               end > static_cast<std::int64_t>(base.extent)) {
      emit(Severity::kWarning, insn, -1,
           "access past the end of the " + std::to_string(base.extent) +
               "-byte object returned by " + who + " (bytes [" + std::to_string(lo) +
               ", " + std::to_string(end) + "))");
    }
    if (base.off_tainted && !elide) {
      emit(Severity::kWarning, insn, -1,
           "tainted offset: wire-derived length flows into this access (the "
           "runtime bounds check is load-bearing)");
    }
  }

  /// Dead-store bookkeeping, active only in the report pass: last unread
  /// store per exact slot within one basic block.  `base == -1` is a stack
  /// slot; otherwise the register that held the helper-returned pointer
  /// (dropped as soon as that register is clobbered, so both stores are
  /// known to target the same object).
  struct PendingStore {
    int base = -1;
    std::int64_t off = 0;
    int size = 0;
    std::size_t insn = 0;
  };

  void stores_clear(std::vector<PendingStore>* pending) {
    if (pending != nullptr) pending->clear();
  }

  void stores_clear_obj(std::vector<PendingStore>* pending) {
    if (pending != nullptr) {
      std::erase_if(*pending, [](const PendingStore& p) { return p.base != -1; });
    }
  }

  void stores_clobber_reg(std::vector<PendingStore>* pending, int reg) {
    if (pending != nullptr) {
      std::erase_if(*pending, [&](const PendingStore& p) { return p.base == reg; });
    }
  }

  void stores_load(std::vector<PendingStore>* pending, int base, std::int64_t off,
                   int size) {
    if (pending == nullptr) return;
    std::erase_if(*pending, [&](const PendingStore& p) {
      return p.base == base && off < p.off + p.size && p.off < off + size;
    });
  }

  void stores_store(std::vector<PendingStore>* pending, int base, std::int64_t off,
                    int size, std::size_t insn) {
    if (pending == nullptr) return;
    for (const PendingStore& p : *pending) {
      if (p.base == base && p.off == off && p.size == size) {
        const std::string slot =
            base == -1 ? "stack slot [r10" + std::to_string(off) + "]"
                       : "helper-returned buffer [r" + std::to_string(base) + "+" +
                             std::to_string(off) + "]";
        emit(Severity::kWarning, p.insn, -1,
             "dead store to " + slot + " (overwritten at insn " + std::to_string(insn) +
                 " with no intervening load)");
      }
    }
    std::erase_if(*pending, [&](const PendingStore& p) {
      return p.base == base && off < p.off + p.size && p.off < off + size;
    });
    pending->push_back({base, off, size, insn});
  }

  /// Emits the redundant-guard warning when proven value ranges decide a
  /// conditional branch statically: the check always goes one way, so the
  /// other path (and the check itself) is unreachable at run time.
  void check_redundant_guard(std::size_t i, const Insn& insn, const RegState& s) {
    if ((insn.opcode & kSrcX) != 0) return;  // imm comparisons only
    const Cmp cmp = cmp_of(insn.opcode & 0xf0);
    if (cmp == Cmp::kNone) return;
    if (insn.offset == 0) return;  // branch to fall-through: not a real guard
    const AbsVal& v = s[insn.dst];
    const auto k = static_cast<std::int64_t>(insn.imm);
    if (v.kind == Kind::kObjPtr && k == 0 && (cmp == Cmp::kEq || cmp == Cmp::kNe) &&
        v.nonnull && v.range == Interval::point(0)) {
      emit(Severity::kWarning, i, insn.dst,
           std::string("redundant check: r") + std::to_string(insn.dst) +
               " is proven non-null, so the " +
               (cmp == Cmp::kEq ? "taken" : "fall-through") + " path is unreachable");
      return;
    }
    if (v.kind != Kind::kScalar) return;
    if (const auto verdict = decide(cmp, v.range, k)) {
      emit(Severity::kWarning, i, insn.dst,
           "redundant check: r" + std::to_string(insn.dst) + " " + cmp_text(cmp) + " " +
               std::to_string(k) + " is always " + (*verdict ? "true" : "false") +
               " for the proven range [" + std::to_string(v.range.lo) + ", " +
               std::to_string(v.range.hi) + "], so the " +
               (*verdict ? "fall-through" : "taken") + " path is unreachable");
    }
  }

  /// Transfer function for one instruction.  `pending` is non-null only in
  /// the report pass (which also makes read_reg/check_*_access emit).
  void exec_insn(RegState& s, std::size_t i, std::vector<PendingStore>* pending) {
    const bool reporting = pending != nullptr;
    const auto& insns = program_.insns();
    const Insn& insn = insns[i];
    const std::uint8_t cls = insn.cls();

    switch (cls) {
      case kClsAlu:
      case kClsAlu64:
        exec_alu(s, i, insn, cls == kClsAlu64, reporting);
        stores_clobber_reg(pending, insn.dst);
        break;
      case kClsLd: {  // lddw
        const std::uint64_t imm64 =
            static_cast<std::uint32_t>(insn.imm) |
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(insns[i + 1].imm)) << 32);
        s[insn.dst] = imm64 <= static_cast<std::uint64_t>(kValMax)
                          ? AbsVal::scalar(Interval::point(static_cast<std::int64_t>(imm64)))
                          : AbsVal::scalar(Interval::full());
        stores_clobber_reg(pending, insn.dst);
        break;
      }
      case kClsLdx: {
        const AbsVal base = read_reg(s, insn.src, i, reporting);
        const int size = mem_size(insn.opcode);
        bool loaded_taint = base.kind == Kind::kObjPtr && base.tainted;
        if (base.kind == Kind::kStackPtr) {
          check_stack_access(i, base, insn.offset, size, reporting);
          loaded_taint = stack_bytes_tainted(
              sat_add(base.range.lo, insn.offset),
              sat_add(sat_add(base.range.hi, insn.offset), size));
          if (base.range.singleton()) {
            stores_load(pending, -1, sat_add(base.range.lo, insn.offset), size);
          } else {
            stores_clear(pending);
          }
        } else if (base.kind == Kind::kObjPtr) {
          check_ptr_access(i, base, insn.offset, size, /*is_store=*/false, reporting);
          // Aliasing between object pointers is untracked: any object load
          // may observe any pending object store.
          stores_clear_obj(pending);
        } else {
          check_ptr_access(i, base, insn.offset, size, /*is_store=*/false, reporting);
          // A load through an unknown pointer may read any region the memory
          // model exposes — including the stack frame.
          stores_clear(pending);
        }
        s[insn.dst] = AbsVal::scalar_t(load_range(size), loaded_taint);
        stores_clobber_reg(pending, insn.dst);
        break;
      }
      case kClsSt:
      case kClsStx: {
        const AbsVal base = read_reg(s, insn.dst, i, reporting);
        if (cls == kClsStx) (void)read_reg(s, insn.src, i, reporting);
        const int size = mem_size(insn.opcode);
        if (base.kind == Kind::kStackPtr) {
          check_stack_access(i, base, insn.offset, size, reporting);
          if (cls == kClsStx && s[insn.src].tainted) {
            taint_stack_bytes(sat_add(base.range.lo, insn.offset),
                              sat_add(sat_add(base.range.hi, insn.offset), size));
          }
          if (base.range.singleton()) {
            stores_store(pending, -1, sat_add(base.range.lo, insn.offset), size, i);
          } else {
            stores_clear(pending);
          }
        } else if (base.kind == Kind::kObjPtr) {
          check_ptr_access(i, base, insn.offset, size, /*is_store=*/true, reporting);
          if (base.range.singleton() && base.nonnull) {
            stores_store(pending, insn.dst, sat_add(base.range.lo, insn.offset), size, i);
          } else {
            stores_clear_obj(pending);
          }
        } else {
          check_ptr_access(i, base, insn.offset, size, /*is_store=*/true, reporting);
          stores_clear(pending);
        }
        break;
      }
      case kClsJmp: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (op == kJmpCall) {
          exec_call(s, i, insn, reporting);
          stores_clear(pending);  // helpers may read the stack through passed pointers
          break;
        }
        if (op == kJmpExit) {
          if (reporting && !s[0].initialized()) {
            emit(Severity::kError, i, 0, "r0 is not set before exit");
          }
          break;
        }
        if (op == kJmpJa) break;
        (void)read_reg(s, insn.dst, i, reporting);
        if (insn.opcode & kSrcX) (void)read_reg(s, insn.src, i, reporting);
        if (reporting) check_redundant_guard(i, insn, s);
        break;
      }
      case kClsJmp32: {
        (void)read_reg(s, insn.dst, i, reporting);
        if (insn.opcode & kSrcX) (void)read_reg(s, insn.src, i, reporting);
        break;
      }
      default:
        break;  // pass 0 rejected unknown classes already
    }
  }

  void exec_alu(RegState& s, std::size_t i, const Insn& insn, bool is64, bool reporting) {
    const std::uint8_t op = insn.opcode & 0xf0;

    if (op == kAluEnd) {
      const AbsVal v = read_reg(s, insn.dst, i, reporting);
      Interval r = Interval::full();
      if (insn.imm == 16) r = {0, 0xFFFF};
      if (insn.imm == 32) r = {0, kU32Max};
      s[insn.dst] = AbsVal::scalar_t(r, v.tainted);
      return;
    }
    if (op == kAluNeg) {
      const AbsVal v = read_reg(s, insn.dst, i, reporting);
      Interval r = Interval::full();
      if (is64 && v.kind == Kind::kScalar && !v.range.is_full()) {
        r = Interval::point(0).sub(v.range);
      }
      if (!is64) r = {0, kU32Max};
      s[insn.dst] = AbsVal::scalar_t(r, v.tainted);
      return;
    }
    if (op == kAluMov) {
      if ((insn.opcode & kSrcX) == 0) {
        const std::int64_t v = is64 ? static_cast<std::int64_t>(insn.imm)
                                    : static_cast<std::int64_t>(
                                          static_cast<std::uint32_t>(insn.imm));
        s[insn.dst] = AbsVal::scalar(Interval::point(v));
        return;
      }
      const AbsVal v = read_reg(s, insn.src, i, reporting);
      if (is64) {
        s[insn.dst] = v;
      } else if (v.kind == Kind::kScalar && v.range.lo >= 0 && v.range.hi <= kU32Max) {
        s[insn.dst] = v;
      } else {
        s[insn.dst] = AbsVal::scalar_t({0, kU32Max}, v.tainted);
      }
      return;
    }

    // Binary operations.
    const AbsVal dst = read_reg(s, insn.dst, i, reporting);
    AbsVal operand = AbsVal::scalar(Interval::point(insn.imm));
    if (insn.opcode & kSrcX) operand = read_reg(s, insn.src, i, reporting);
    const bool taint = dst.tainted || operand.tainted;

    if (!is64) {
      // 32-bit ALU zero-extends; we only track that the result fits in u32.
      s[insn.dst] = AbsVal::scalar_t({0, kU32Max}, taint);
      return;
    }

    switch (op) {
      case kAluAdd:
        if (dst.kind == Kind::kStackPtr && operand.kind == Kind::kScalar) {
          s[insn.dst] = AbsVal::stack(dst.range.add(operand.range));
        } else if (dst.kind == Kind::kScalar && operand.kind == Kind::kStackPtr) {
          s[insn.dst] = AbsVal::stack(operand.range.add(dst.range));
        } else if (dst.kind == Kind::kObjPtr && operand.kind == Kind::kScalar) {
          AbsVal v = dst;
          v.range = dst.range.add(operand.range);
          v.off_tainted = dst.off_tainted || operand.tainted;
          s[insn.dst] = v;
        } else if (dst.kind == Kind::kScalar && operand.kind == Kind::kObjPtr) {
          AbsVal v = operand;
          v.range = operand.range.add(dst.range);
          v.off_tainted = operand.off_tainted || dst.tainted;
          s[insn.dst] = v;
        } else if (dst.is_ptr() || operand.is_ptr()) {
          // ptr + ptr (stack+stack, obj+obj, stack+obj): the runtime value is
          // a sum of host addresses, not of region-relative offsets — summing
          // the tracked offsets would let the bogus "scalar" flow back into a
          // pointer and fabricate an in-bounds proof.  Unknown scalar only.
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(dst.range.add(operand.range), taint);
        }
        break;
      case kAluSub:
        if (dst.kind == Kind::kStackPtr && operand.kind == Kind::kScalar) {
          s[insn.dst] = AbsVal::stack(dst.range.sub(operand.range));
        } else if (dst.kind == Kind::kObjPtr && operand.kind == Kind::kScalar) {
          AbsVal v = dst;
          v.range = dst.range.sub(operand.range);
          v.off_tainted = dst.off_tainted || operand.tainted;
          s[insn.dst] = v;
        } else if (!dst.is_ptr() && !operand.is_ptr()) {
          s[insn.dst] = AbsVal::scalar_t(dst.range.sub(operand.range), taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        }
        break;
      case kAluAnd:
        if ((insn.opcode & kSrcX) == 0 && insn.imm >= 0) {
          s[insn.dst] = AbsVal::scalar_t({0, insn.imm}, taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        }
        break;
      case kAluLsh:
        if ((insn.opcode & kSrcX) == 0 && dst.kind == Kind::kScalar && dst.range.lo >= 0 &&
            dst.range.hi <= (kValMax >> insn.imm)) {
          s[insn.dst] = AbsVal::scalar_t(
              {dst.range.lo << insn.imm, dst.range.hi << insn.imm}, taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        }
        break;
      case kAluRsh:
        if ((insn.opcode & kSrcX) == 0 && insn.imm > 0) {
          if (dst.kind == Kind::kScalar && dst.range.lo >= 0) {
            s[insn.dst] = AbsVal::scalar_t(
                {dst.range.lo >> insn.imm, dst.range.hi >> insn.imm}, taint);
          } else {
            // A u64 shifted right by >=1 fits in a non-negative int64.
            s[insn.dst] = AbsVal::scalar_t(
                {0, static_cast<std::int64_t>(~0ull >> insn.imm)}, taint);
          }
        } else if ((insn.opcode & kSrcX) == 0 && insn.imm == 0) {
          s[insn.dst] = dst.is_ptr() ? AbsVal::scalar_t(Interval::full(), taint)
                                     : AbsVal::scalar_t(dst.range, taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        }
        break;
      case kAluDiv:
        if ((insn.opcode & kSrcX) == 0 && insn.imm > 0 && dst.kind == Kind::kScalar &&
            dst.range.lo >= 0) {
          s[insn.dst] = AbsVal::scalar_t({dst.range.lo / insn.imm, dst.range.hi / insn.imm},
                                         taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        }
        break;
      case kAluMul:
        if (dst.kind == Kind::kScalar && operand.kind == Kind::kScalar && dst.range.lo >= 0 &&
            operand.range.lo >= 0 && dst.range.hi <= (1ll << 31) &&
            operand.range.hi <= (1ll << 31)) {
          s[insn.dst] = AbsVal::scalar_t(
              {dst.range.lo * operand.range.lo, dst.range.hi * operand.range.hi}, taint);
        } else {
          s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        }
        break;
      default:  // or, xor, mod, arsh: tracked as unknown scalars
        s[insn.dst] = AbsVal::scalar_t(Interval::full(), taint);
        break;
    }
  }

  void exec_call(RegState& s, std::size_t i, const Insn& insn, bool reporting) {
    int arity = 0;
    if (auto it = options_.helper_arity.find(insn.imm); it != options_.helper_arity.end()) {
      arity = it->second;
    }
    const HelperContract* c = contract_of(insn.imm);
    for (int r = 1; r <= arity; ++r) {
      if (reporting && !s[r].initialized()) {
        emit(Severity::kError, i, r,
             "helper " + std::to_string(insn.imm) + " called with uninitialized argument r" +
                 std::to_string(r));
      }
    }
    if (reporting) {
      // Publish the proven argument ranges (full for pointers/uninit) and
      // flag tainted, unbounded lengths flowing into raw size arguments.
      ProofTable::CallFact cf;
      cf.helper = insn.imm;
      cf.arity = static_cast<std::uint8_t>(std::min(arity, 5));
      for (int r = 1; r <= 5; ++r) {
        const bool scalar = s[r].kind == Kind::kScalar;
        cf.arg_lo[r - 1] = scalar ? s[r].range.lo : kValMin;
        cf.arg_hi[r - 1] = scalar ? s[r].range.hi : kValMax;
      }
      facts_.calls[i] = cf;
      if (c != nullptr) {
        for (int r = 1; r <= 5; ++r) {
          if ((c->size_arg_mask & (1u << (r - 1))) == 0) continue;
          if (s[r].kind == Kind::kScalar && s[r].tainted && !s[r].range.singleton()) {
            emit(Severity::kWarning, i, r,
                 "tainted length: wire-derived value (range [" +
                     std::to_string(s[r].range.lo) + ", " + std::to_string(s[r].range.hi) +
                     "]) flows into size argument r" + std::to_string(r) + " of helper " +
                     std::to_string(insn.imm));
          }
        }
      }
    }
    // Capture size-seeding arguments before the clobber.
    const AbsVal a1 = s[1];
    const AbsVal a2 = s[2];
    for (int r = 1; r <= 5; ++r) s[r] = AbsVal::uninit();  // caller-saved
    if (c != nullptr && c->returns_pointer) {
      AbsVal v;
      v.kind = Kind::kObjPtr;
      v.range = Interval::point(0);
      v.region = c->region;
      v.extent = c->extent;
      v.helper = insn.imm;
      v.exact = c->exact_extent;
      v.nonnull = !c->may_return_null;
      v.writable = c->writable;
      v.tainted = c->tainted_data;
      auto seed_extent = [&](const AbsVal& a) {
        if (a.kind == Kind::kScalar && a.range.singleton() && a.range.lo > 0 &&
            a.range.lo <= (1ll << 30)) {
          v.extent = static_cast<std::uint32_t>(a.range.lo);
        }
      };
      if (c->extent_from_arg1) seed_extent(a1);
      if (c->extent_from_arg2) seed_extent(a2);
      s[0] = v;
    } else {
      s[0] = AbsVal::scalar_t(Interval::full(), c != nullptr && c->tainted_return);
    }
  }

  void exec_block(RegState& s, std::size_t b, std::vector<PendingStore>* pending) {
    const BasicBlock& bb = cfg_->blocks()[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      if (cfg_->is_lddw_tail(i)) continue;
      exec_insn(s, i, pending);
    }
  }

  /// Per-edge narrowing: if block `b` ends in an immediate-form conditional
  /// (64-bit JMP class), the taken/fall-through edges learn the predicate.
  void refine_edge(RegState& s, std::size_t b, std::size_t succ) {
    const BasicBlock& bb = cfg_->blocks()[b];
    const Insn& term = program_.insns()[bb.last];
    if (term.cls() != kClsJmp || (term.opcode & kSrcX) != 0) return;
    const Cmp cmp = cmp_of(term.opcode & 0xf0);
    if (cmp == Cmp::kNone) return;
    const auto target = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(bb.last) + 1 + term.offset);
    const std::size_t taken = cfg_->block_of(target);
    const std::size_t fall = cfg_->block_of(bb.last + 1);
    if (taken == fall) return;  // both edges land together: nothing learned
    if (succ != taken && succ != fall) return;
    refine(s[term.dst], cmp, static_cast<std::int64_t>(term.imm), succ == taken);
  }

  void fixpoint() {
    const std::size_t nb = cfg_->blocks().size();
    in_state_.assign(nb, RegState{});
    has_in_.assign(nb, false);
    std::vector<std::size_t> visits(nb, 0);
    std::vector<bool> queued(nb, false);

    // Widening points: loop heads only (targets of retreating edges — both
    // the dominating back-edges and irreducible ones, so every cycle holds
    // at least one).  Widening anywhere else would also snap loop-BODY
    // bounds that a branch refinement off the widened header keeps finite,
    // turning bounded accesses into false out-of-bounds reports.
    std::vector<bool> widen_point(nb, false);
    for (const CfgEdge& e : cfg_->back_edges()) widen_point[e.to] = true;
    for (const CfgEdge& e : cfg_->irreducible_edges()) widen_point[e.to] = true;

    in_state_[0] = entry_state();
    has_in_[0] = true;
    std::deque<std::size_t> work{0};
    queued[0] = true;

    while (!work.empty()) {
      const std::size_t b = work.front();
      work.pop_front();
      queued[b] = false;
      ++visits[b];

      RegState out = in_state_[b];
      exec_block(out, b, nullptr);

      for (std::size_t succ : cfg_->blocks()[b].succs) {
        RegState edge = out;
        refine_edge(edge, b, succ);
        RegState next;
        if (!has_in_[succ]) {
          next = edge;
        } else {
          next = in_state_[succ];
          for (int r = 0; r < kNumRegisters; ++r) next[r] = join(next[r], edge[r]);
          // Widen once a loop head has been revisited a few times: any bound
          // still moving is snapped to the saturation point, guaranteeing
          // termination without bounding precision-relevant constants.
          // Non-header blocks converge without widening: their in-states are
          // hulls of already-stable (possibly widened-then-refined) edges.
          if (widen_point[succ] && visits[succ] > kWidenAfter) {
            for (int r = 0; r < kNumRegisters; ++r) {
              if (next[r].kind != in_state_[succ][r].kind) continue;
              if (next[r].range.lo < in_state_[succ][r].range.lo) next[r].range.lo = kValMin;
              if (next[r].range.hi > in_state_[succ][r].range.hi) next[r].range.hi = kValMax;
            }
          }
        }
        if (!has_in_[succ] || next != in_state_[succ]) {
          in_state_[succ] = next;
          has_in_[succ] = true;
          if (!queued[succ]) {
            work.push_back(succ);
            queued[succ] = true;
          }
        }
      }
    }
  }

  /// Re-executes every reachable block once, from its fixpoint in-state, with
  /// diagnostics enabled.  Each potential fault site reports exactly once.
  void report_pass() {
    for (std::size_t b = 0; b < cfg_->blocks().size(); ++b) {
      if (!cfg_->reachable(b) || !has_in_[b]) continue;
      RegState s = in_state_[b];
      std::vector<PendingStore> pending;
      exec_block(s, b, &pending);
    }
  }

  // ---- loop trip-count induction check ----

  void sym_exec_insn(SymState& s, std::size_t i) {
    const auto& insns = program_.insns();
    const Insn& insn = insns[i];
    const std::uint8_t cls = insn.cls();
    using K = SymVal::K;

    auto set_val_full = [&](int reg) { s[reg] = SymVal::val(Interval::full()); };

    switch (cls) {
      case kClsAlu:
      case kClsAlu64: {
        const std::uint8_t op = insn.opcode & 0xf0;
        const bool is64 = cls == kClsAlu64;
        if (op == kAluMov) {
          if ((insn.opcode & kSrcX) == 0) {
            const std::int64_t v = is64 ? static_cast<std::int64_t>(insn.imm)
                                        : static_cast<std::int64_t>(
                                              static_cast<std::uint32_t>(insn.imm));
            s[insn.dst] = SymVal::val(Interval::point(v));
          } else if (is64) {
            s[insn.dst] = s[insn.src];
          } else if (s[insn.src].k == K::kVal && s[insn.src].delta.lo >= 0 &&
                     s[insn.src].delta.hi <= kU32Max) {
            s[insn.dst] = s[insn.src];
          } else {
            s[insn.dst] = SymVal::val({0, kU32Max});
          }
          return;
        }
        if ((op == kAluAdd || op == kAluSub) && is64) {
          SymVal operand = SymVal::val(Interval::point(insn.imm));
          if (insn.opcode & kSrcX) operand = s[insn.src];
          const SymVal dst = s[insn.dst];
          if (operand.k == K::kVal) {
            if (dst.k == K::kAnchor) {
              s[insn.dst] = SymVal::anchor(dst.base,
                                           op == kAluAdd ? dst.delta.add_sat(operand.delta)
                                                         : dst.delta.sub_sat(operand.delta));
              return;
            }
            if (dst.k == K::kVal) {
              s[insn.dst] = SymVal::val(op == kAluAdd ? dst.delta.add_sat(operand.delta)
                                                      : dst.delta.sub_sat(operand.delta));
              return;
            }
          } else if (operand.k == K::kAnchor && dst.k == K::kVal && op == kAluAdd) {
            s[insn.dst] = SymVal::anchor(operand.base, operand.delta.add_sat(dst.delta));
            return;
          }
          s[insn.dst] = SymVal::top();
          return;
        }
        if (op == kAluAnd && is64 && (insn.opcode & kSrcX) == 0 && insn.imm >= 0) {
          s[insn.dst] = SymVal::val({0, insn.imm});
          return;
        }
        if (op == kAluLsh && is64 && (insn.opcode & kSrcX) == 0 &&
            s[insn.dst].k == K::kVal && s[insn.dst].delta.lo >= 0 &&
            s[insn.dst].delta.hi <= (kValMax >> insn.imm)) {
          s[insn.dst] = SymVal::val(
              {s[insn.dst].delta.lo << insn.imm, s[insn.dst].delta.hi << insn.imm});
          return;
        }
        // Everything else produces an unknown per-iteration value.
        set_val_full(insn.dst);
        return;
      }
      case kClsLd: {
        const std::uint64_t imm64 =
              static_cast<std::uint32_t>(insn.imm) |
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(insns[i + 1].imm)) << 32);
        s[insn.dst] = imm64 <= static_cast<std::uint64_t>(kValMax)
                          ? SymVal::val(Interval::point(static_cast<std::int64_t>(imm64)))
                          : SymVal::val(Interval::full());
        return;
      }
      case kClsLdx: {
        const int size = mem_size(insn.opcode);
        s[insn.dst] = size == 8 ? SymVal::val(Interval::full()) : SymVal::val(load_range(size));
        return;
      }
      case kClsSt:
      case kClsStx:
        return;
      case kClsJmp: {
        const std::uint8_t op = insn.opcode & 0xf0;
        if (op == kJmpCall) {
          for (int r = 1; r <= 5; ++r) s[r] = SymVal::top();
          s[0] = SymVal::val(Interval::full());
        }
        return;
      }
      default:
        return;
    }
  }

  SymState sym_exec_block(const SymState& in, std::size_t b, bool stop_before_terminator) {
    SymState s = in;
    const BasicBlock& bb = cfg_->blocks()[b];
    const std::size_t end = stop_before_terminator ? bb.last : bb.last + 1;
    for (std::size_t i = bb.first; i < end; ++i) {
      if (cfg_->is_lddw_tail(i)) continue;
      sym_exec_insn(s, i);
    }
    return s;
  }

  void check_loop(const NaturalLoop& loop) {
    const auto& insns = program_.insns();
    const auto& blocks = cfg_->blocks();
    const std::size_t report_at = blocks[loop.back_edge_sources.front()].last;

    // Which registers are written anywhere in the loop (for invariance).
    std::array<bool, kNumRegisters> written{};
    for (std::size_t b : loop.blocks) {
      for (std::size_t i = blocks[b].first; i <= blocks[b].last; ++i) {
        if (cfg_->is_lddw_tail(i)) continue;
        const Insn& insn = insns[i];
        const std::uint8_t cls = insn.cls();
        if (cls == kClsAlu || cls == kClsAlu64 || cls == kClsLdx || cls == kClsLd) {
          written[insn.dst] = true;
        } else if (cls == kClsJmp && (insn.opcode & 0xf0) == kJmpCall) {
          for (int r = 0; r <= 5; ++r) written[r] = true;
        }
      }
    }

    // Exit edges: loop block -> non-loop block.  A loop no path leaves is
    // unconditionally divergent.
    struct ExitEdge {
      std::size_t block;
      bool exit_on_true;  // the branch-taken successor leaves the loop
    };
    std::vector<ExitEdge> exits;
    bool has_any_exit = false;
    for (std::size_t b : loop.blocks) {
      const Insn& term = insns[blocks[b].last];
      const bool cond = term.cls() == kClsJmp && cmp_of(term.opcode & 0xf0) != Cmp::kNone;
      for (std::size_t succ : blocks[b].succs) {
        if (loop.contains(succ)) continue;
        has_any_exit = true;
        if (!cond) continue;
        const auto target = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(blocks[b].last) + 1 + term.offset);
        exits.push_back({b, cfg_->block_of(target) == succ});
      }
    }
    if (!has_any_exit) {
      emit(Severity::kError, report_at, -1,
           "unbounded loop: no path leaves the loop headed by " + Cfg::label(loop.header));
      return;
    }

    // Symbolic fixpoint over the loop body, back-edges cut at the header.
    std::map<std::size_t, SymState> in_sym;
    std::map<std::size_t, std::size_t> visits;
    SymState seed;
    for (int r = 0; r < kNumRegisters; ++r) {
      const bool init =
          has_in_[loop.header] && in_state_[loop.header][r].initialized();
      seed[r] = init ? SymVal::anchor(r, Interval::point(0)) : SymVal::top();
    }
    in_sym[loop.header] = seed;
    std::deque<std::size_t> work{loop.header};
    while (!work.empty()) {
      const std::size_t b = work.front();
      work.pop_front();
      if (++visits[b] > kLoopFixpointCap) {
        // The cap fired before this block converged.  Dropping its successor
        // updates would leave in_sym a stale NON-fixpoint, and induction
        // facts read from it could certify a loop that is not actually
        // bounded.  Snap the block to top instead: top absorbs every join,
        // so propagation still terminates, the final map is a genuine
        // over-approximation, and a loop whose evidence lived in the
        // snapped state is rejected conservatively.
        for (SymVal& v : in_sym[b]) v = SymVal::top();
      }
      const SymState out = sym_exec_block(in_sym[b], b, /*stop_before_terminator=*/false);
      for (std::size_t succ : cfg_->blocks()[b].succs) {
        if (!loop.contains(succ) || succ == loop.header) continue;
        auto it = in_sym.find(succ);
        if (it == in_sym.end()) {
          in_sym[succ] = out;
          work.push_back(succ);
          continue;
        }
        SymState next = it->second;
        bool changed = false;
        for (int r = 0; r < kNumRegisters; ++r) {
          SymVal j = sym_join(next[r], out[r]);
          if (visits[succ] > kWidenAfter && j.k != SymVal::K::kTop) {
            if (j.delta.lo < next[r].delta.lo) j.delta.lo = kValMin;
            if (j.delta.hi > next[r].delta.hi) j.delta.hi = kValMax;
          }
          if (!(j == next[r])) {
            next[r] = j;
            changed = true;
          }
        }
        if (changed) {
          it->second = next;
          work.push_back(succ);
        }
      }
    }

    // Induction candidates: anchored on themselves with strict progress at
    // every back-edge.
    std::array<Interval, kNumRegisters> step;
    std::array<bool, kNumRegisters> increasing{};
    std::array<bool, kNumRegisters> decreasing{};
    for (int r = 0; r < kNumRegisters; ++r) {
      increasing[r] = decreasing[r] = true;
      step[r] = {kValMax, kValMin};  // inverted-empty: hull() adopts the first delta
    }
    for (std::size_t u : loop.back_edge_sources) {
      auto it = in_sym.find(u);
      if (it == in_sym.end()) {  // back-edge source unreached in the sym walk
        increasing.fill(false);
        decreasing.fill(false);
        break;
      }
      const SymState out = sym_exec_block(it->second, u, /*stop_before_terminator=*/false);
      for (int r = 0; r < kNumRegisters; ++r) {
        const SymVal& v = out[r];
        const bool anchored = v.k == SymVal::K::kAnchor && v.base == r;
        if (!anchored || v.delta.lo < 1) increasing[r] = false;
        if (!anchored || v.delta.hi > -1) decreasing[r] = false;
        step[r] = anchored ? step[r].hull(v.delta) : Interval::full();
      }
    }

    auto invariant = [&](const SymVal& v) {
      if (v.k == SymVal::K::kVal) return v.delta.singleton();
      if (v.k == SymVal::K::kAnchor) return !written[v.base] && v.delta.singleton();
      return false;
    };

    // An exit test bounds the loop when it dominates every back-edge, one
    // operand tracks a monotone counter and the other is loop-invariant, and
    // the comparison direction matches the counter's direction.
    auto compatible = [&](const ExitEdge& e) {
      for (std::size_t u : loop.back_edge_sources) {
        if (!cfg_->dominates(e.block, u)) return false;
      }
      const Insn& term = insns[blocks[e.block].last];
      if (term.cls() != kClsJmp) return false;  // 32-bit compares not accepted
      Cmp cmp = cmp_of(term.opcode & 0xf0);
      if (cmp == Cmp::kNone) return false;
      if (!e.exit_on_true) cmp = invert(cmp);
      auto it = in_sym.find(e.block);
      if (it == in_sym.end()) return false;
      const SymState at = sym_exec_block(it->second, e.block, /*stop_before_terminator=*/true);
      const SymVal dst = at[term.dst];
      const SymVal src = (term.opcode & kSrcX) ? at[term.src]
                                               : SymVal::val(Interval::point(term.imm));

      auto matches = [&](const SymVal& counter_side, const SymVal& bound_side,
                         bool counter_is_dst) {
        if (counter_side.k != SymVal::K::kAnchor) return false;
        const int r = counter_side.base;
        if (r < 0 || r >= kNumRegisters) return false;
        if (!increasing[r] && !decreasing[r]) return false;
        if (!invariant(bound_side)) return false;
        const bool step_one = step[r].singleton() &&
                              (step[r].lo == 1 || step[r].lo == -1);
        if (cmp == Cmp::kNe) return true;  // strict progress leaves equality in <=2 steps
        if (cmp == Cmp::kEq) return step_one;  // unit step sweeps every value (mod 2^64)
        const bool counter_greater_exits =
            cmp == Cmp::kGt || cmp == Cmp::kGe || cmp == Cmp::kSgt || cmp == Cmp::kSge;
        const bool counter_less_exits =
            cmp == Cmp::kLt || cmp == Cmp::kLe || cmp == Cmp::kSlt || cmp == Cmp::kSle;
        // With the counter on the src side, "dst OP src" reads backwards.
        const bool exits_when_counter_high = counter_is_dst ? counter_greater_exits
                                                            : counter_less_exits;
        const bool exits_when_counter_low = counter_is_dst ? counter_less_exits
                                                           : counter_greater_exits;
        return (increasing[r] && exits_when_counter_high) ||
               (decreasing[r] && exits_when_counter_low);
      };
      return matches(dst, src, /*counter_is_dst=*/true) ||
             matches(src, dst, /*counter_is_dst=*/false);
    };

    for (const ExitEdge& e : exits) {
      if (compatible(e)) return;
    }
    emit(Severity::kError, report_at, -1,
         "cannot bound loop trip count (header " + Cfg::label(loop.header) +
             "): no monotone induction register with a dominating, loop-invariant exit test");
  }

  static constexpr std::size_t kWidenAfter = 4;
  static constexpr std::size_t kLoopFixpointCap = 64;

  const Program& program_;
  const std::set<std::int32_t>& allowed_helpers_;
  const Analyzer::Options& options_;
  std::optional<Cfg> cfg_;
  std::vector<RegState> in_state_;
  std::vector<bool> has_in_;
  std::array<bool, kStackSize> stack_taint_{};
  std::vector<Diagnostic> diags_;
  ProofTable facts_;
};

}  // namespace

std::string Diagnostic::to_string() const {
  std::string out = ebpf::to_string(severity);
  out += " at insn ";
  out += std::to_string(insn_index);
  if (reg >= 0) {
    out += " (r";
    out += std::to_string(reg);
    out += ")";
  }
  out += ": ";
  out += reason;
  return out;
}

bool AnalysisResult::ok() const noexcept { return error_count() == 0; }

std::size_t AnalysisResult::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics) n += d.severity == Severity::kError;
  return n;
}

std::size_t AnalysisResult::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

const Diagnostic* AnalysisResult::first_error() const noexcept {
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

AnalysisResult Analyzer::analyze(const Program& program,
                                 const std::set<std::int32_t>& allowed_helpers,
                                 const Options& options) {
  Analysis analysis(program, allowed_helpers, options);
  return analysis.run();
}

AnalysisResult Analyzer::analyze(const Program& program,
                                 const std::set<std::int32_t>& allowed_helpers) {
  return analyze(program, allowed_helpers, Options());
}

}  // namespace xb::ebpf
